// Symbolic Padé closed forms, the Taylor ablation model, and C export.
#include <gtest/gtest.h>

#include <dlfcn.h>
#include <unistd.h>

#include <cmath>
#include <cstdlib>
#include <fstream>

#include "awe/moments.hpp"
#include "awe/pade.hpp"
#include "circuits/fig1_rc.hpp"
#include "core/awesymbolic.hpp"
#include "core/taylor_model.hpp"

namespace awe::core {
namespace {

TEST(SymbolicPade, Order2CoefficientsMatchNumericPade) {
  circuits::Fig1Values base;
  auto fig = circuits::make_fig1(base);
  const auto model = CompiledModel::build(fig.netlist, {"g2", "c2"},
                                          circuits::Fig1Circuit::kInput, fig.v2,
                                          {.order = 2});
  const auto den = model.symbolic_denominator();
  const auto num = model.symbolic_numerator();
  ASSERT_EQ(den.size(), 3u);
  ASSERT_EQ(num.size(), 2u);

  for (const double g2 : {0.5, 1.0, 2.0}) {
    for (const double c2 : {0.5, 1.0, 3.0}) {
      const std::vector<double> vals{g2, c2};
      // Numeric Padé at the same point.
      circuits::Fig1Values v = base;
      v.g2 = g2;
      v.c2 = c2;
      auto ref = circuits::make_fig1(v);
      const auto m = engine::MomentGenerator(ref.netlist)
                         .transfer_moments(circuits::Fig1Circuit::kInput, ref.v2, 4);
      const auto pade = engine::pade_from_moments(m, 2);
      EXPECT_NEAR(den[1].evaluate(vals), pade.denominator[1],
                  1e-6 * std::abs(pade.denominator[1]));
      EXPECT_NEAR(den[2].evaluate(vals), pade.denominator[2],
                  1e-6 * std::abs(pade.denominator[2]));
      // a1 is exactly zero symbolically (constant numerator) while the
      // numeric path carries round-off of order eps * |a0|.
      EXPECT_NEAR(num[0].evaluate(vals), pade.numerator[0],
                  1e-6 * std::abs(pade.numerator[0]) + 1e-15);
      EXPECT_NEAR(num[1].evaluate(vals), pade.numerator[1],
                  1e-6 * std::abs(pade.numerator[1]) +
                      1e-9 * std::abs(pade.numerator[0]));
    }
  }
}

TEST(SymbolicPade, Order2DenominatorIsExactForTwoPoleCircuit) {
  // For the 2-pole Fig.1 circuit, the order-2 Padé denominator equals the
  // true characteristic polynomial (normalized to D(0)=1): eqn (5).
  circuits::Fig1Values v{.g1 = 2.0, .g2 = 3.0, .c1 = 0.5, .c2 = 0.25};
  auto fig = circuits::make_fig1(v);
  const auto ex = circuits::fig1_exact(v);
  const auto model = CompiledModel::build(fig.netlist, {"c1"},
                                          circuits::Fig1Circuit::kInput, fig.v2,
                                          {.order = 2});
  const auto den = model.symbolic_denominator();
  const std::vector<double> pt{v.c1};
  EXPECT_NEAR(den[1].evaluate(pt), ex.den_s1 / ex.den_s0, 1e-9);
  EXPECT_NEAR(den[2].evaluate(pt), ex.den_s2 / ex.den_s0, 1e-9);
}

TEST(SymbolicPade, HigherOrdersThrow) {
  auto fig = circuits::make_fig1();
  const auto model = CompiledModel::build(fig.netlist, {"g2"},
                                          circuits::Fig1Circuit::kInput, fig.v2,
                                          {.order = 3});
  EXPECT_THROW(model.symbolic_denominator(), std::invalid_argument);
  EXPECT_THROW(model.symbolic_numerator(), std::invalid_argument);
}

TEST(TaylorModel, ExactAtExpansionPointAndFirstOrderAway) {
  circuits::Fig1Values base;
  auto fig = circuits::make_fig1(base);
  const auto taylor = TaylorMomentModel::build(fig.netlist, {"g2", "c2"},
                                               circuits::Fig1Circuit::kInput, fig.v2,
                                               {.order = 2});
  const auto exact_model = CompiledModel::build(fig.netlist, {"g2", "c2"},
                                                circuits::Fig1Circuit::kInput, fig.v2,
                                                {.order = 2});
  // At the expansion point the moments agree to round-off.
  const std::vector<double> nominal{base.g2, base.c2};
  const auto mt = taylor.moments_at(nominal);
  const auto me = exact_model.moments_at(nominal);
  for (std::size_t k = 0; k < 4; ++k)
    EXPECT_NEAR(mt[k], me[k], 1e-9 * (std::abs(me[k]) + 1e-15));

  // Error grows quadratically with the perturbation (first-order model).
  auto err = [&](double rel) {
    const std::vector<double> v{base.g2 * (1 + rel), base.c2 * (1 + rel)};
    const auto a = taylor.moments_at(v);
    const auto b = exact_model.moments_at(v);
    double e = 0.0;
    for (std::size_t k = 0; k < 4; ++k)
      e = std::max(e, std::abs(a[k] - b[k]) / (std::abs(b[k]) + 1e-15));
    return e;
  };
  const double e1 = err(0.01), e2 = err(0.1);
  EXPECT_LT(e1, 1e-3);
  EXPECT_GT(e2 / e1, 20.0);  // ~quadratic growth (100x ideal)
}

TEST(TaylorModel, Validation) {
  auto fig = circuits::make_fig1();
  EXPECT_THROW(TaylorMomentModel::build(fig.netlist, {}, "vin", fig.v2, {.order = 2}),
               std::invalid_argument);
  EXPECT_THROW(TaylorMomentModel::build(fig.netlist, {"ghost"}, "vin", fig.v2,
                                        {.order = 2}),
               std::invalid_argument);
  EXPECT_THROW(TaylorMomentModel::build(fig.netlist, {"vin"}, "vin", fig.v2,
                                        {.order = 2}),
               std::invalid_argument);
  const auto t = TaylorMomentModel::build(fig.netlist, {"g2"}, "vin", fig.v2,
                                          {.order = 1});
  EXPECT_THROW(t.moments_at(std::vector<double>{1.0, 2.0}), std::invalid_argument);
  EXPECT_EQ(t.symbol_names().size(), 1u);
  EXPECT_EQ(t.expansion_point().size(), 1u);
}

TEST(ExportC, EmitsCompilableLookingSource) {
  auto fig = circuits::make_fig1();
  const auto model = CompiledModel::build(fig.netlist, {"g2", "c2"},
                                          circuits::Fig1Circuit::kInput, fig.v2,
                                          {.order = 2});
  const auto src = model.export_c_source("eval_moments");
  EXPECT_NE(src.find("void eval_moments(const double* in, double* out)"),
            std::string::npos);
  EXPECT_NE(src.find("out[4]"), std::string::npos);  // det(Y0) output
  EXPECT_NE(src.find("in[0]"), std::string::npos);
  EXPECT_NE(src.find("in[1]"), std::string::npos);
  // Every output of the program is assigned.
  for (std::size_t k = 0; k <= 4; ++k)
    EXPECT_NE(src.find("out[" + std::to_string(k) + "] = "), std::string::npos) << k;
}

TEST(ExportC, CompiledSharedObjectMatchesInterpreter) {
  // Full round trip: emit C, compile it with the system compiler, load it
  // and check it computes the same moments as the interpreter.
  auto fig = circuits::make_fig1();
  const auto model = CompiledModel::build(fig.netlist, {"g2", "c2"},
                                          circuits::Fig1Circuit::kInput, fig.v2,
                                          {.order = 2});
  const auto src = model.export_c_source("eval_moments");

  char dir_template[] = "/tmp/awe_export_XXXXXX";
  ASSERT_NE(mkdtemp(dir_template), nullptr);
  const std::string dir = dir_template;
  {
    std::ofstream out(dir + "/model.c");
    out << src;
  }
  const std::string cmd =
      "cc -O2 -shared -fPIC -o " + dir + "/model.so " + dir + "/model.c 2>/dev/null";
  if (std::system(cmd.c_str()) != 0) GTEST_SKIP() << "no working C compiler";

  void* handle = dlopen((dir + "/model.so").c_str(), RTLD_NOW);
  ASSERT_NE(handle, nullptr) << dlerror();
  using Fn = void (*)(const double*, double*);
  auto fn = reinterpret_cast<Fn>(dlsym(handle, "eval_moments"));
  ASSERT_NE(fn, nullptr);

  for (const double g2 : {0.5, 1.0, 2.0}) {
    const double in[2] = {g2, 1.5};  // internal symbols: conductance, capacitance
    double out[5];
    fn(in, out);
    // moment k = out[k] / out[4]^{k+1}; g2 is a conductance element, so the
    // internal symbol equals the element value (no reciprocal transform).
    const auto ref = model.moments_at(std::vector<double>{g2, 1.5});
    double dp = out[4];
    for (std::size_t k = 0; k < 4; ++k) {
      EXPECT_NEAR(out[k] / dp, ref[k], 1e-12 * (std::abs(ref[k]) + 1e-15)) << "k=" << k;
      dp *= out[4];
    }
  }
  dlclose(handle);
}

TEST(ExportC, InterpreterAndSourceSemanticsAgree) {
  // Emit C, then mimic its semantics by re-running the interpreter —
  // and spot-check a constant embedded in the source.
  auto fig = circuits::make_fig1();
  const auto model = CompiledModel::build(fig.netlist, {"g2"},
                                          circuits::Fig1Circuit::kInput, fig.v2,
                                          {.order = 1});
  const auto src = model.export_c_source("f");
  EXPECT_GT(src.size(), 100u);
  // The program must reference its single input.
  EXPECT_NE(src.find("in[0]"), std::string::npos);
  EXPECT_EQ(src.find("in[1]"), std::string::npos);
}

}  // namespace
}  // namespace awe::core
