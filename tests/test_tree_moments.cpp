// O(n) path-tracing moments for RC trees vs the sparse-LU generator.
#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "awe/moments.hpp"
#include "awe/tree_moments.hpp"
#include "circuits/ladders.hpp"

namespace awe::engine {
namespace {

using circuit::kGround;
using circuit::Netlist;

TEST(TreeMoments, LadderMatchesSparseLu) {
  circuits::LadderValues v;
  v.segments = 25;
  v.c_load = 3e-12;
  auto lad = circuits::make_rc_ladder(v);
  const auto tree = RcTreeAnalyzer::build(lad.netlist, circuits::LadderCircuit::kInput);
  ASSERT_TRUE(tree.has_value());
  const auto m_tree = tree->transfer_moments(lad.out, 6);
  const auto m_ref = MomentGenerator(lad.netlist)
                         .transfer_moments(circuits::LadderCircuit::kInput, lad.out, 6);
  for (std::size_t k = 0; k < 6; ++k)
    EXPECT_NEAR(m_tree[k], m_ref[k], 1e-10 * (std::abs(m_ref[k]) + 1e-30)) << "k=" << k;
}

TEST(TreeMoments, BinaryTreeAllNodesMatch) {
  circuits::TreeValues v;
  v.depth = 4;
  auto t = circuits::make_rc_tree(v);
  const auto tree = RcTreeAnalyzer::build(t.netlist, circuits::TreeCircuit::kInput);
  ASSERT_TRUE(tree.has_value());

  MomentGenerator gen(t.netlist);
  const auto xs = gen.state_moments(circuits::TreeCircuit::kInput, 4);
  const auto all = tree->all_node_moments(4);
  const auto& lay = gen.assembler().layout();
  for (circuit::NodeId node = 1; node <= t.netlist.num_nodes(); ++node) {
    for (std::size_t k = 0; k < 4; ++k) {
      const double ref = xs[k][lay.node_unknown(node)];
      EXPECT_NEAR(all[k][node], ref, 1e-10 * (std::abs(ref) + 1e-30))
          << "node=" << node << " k=" << k;
    }
  }
}

TEST(TreeMoments, FirstMomentIsMinusElmore) {
  // For the ladder: Elmore(out) = sum over nodes of R_path * C_node.
  circuits::LadderValues v;
  v.segments = 5;
  auto lad = circuits::make_rc_ladder(v);
  const auto tree = RcTreeAnalyzer::build(lad.netlist, circuits::LadderCircuit::kInput);
  ASSERT_TRUE(tree.has_value());
  const auto m = tree->transfer_moments(lad.out, 2);
  // Hand computation: node j (0..5) has path resistance Rdrv + j*Rseg.
  double elmore = 0.0;
  for (int j = 0; j <= 5; ++j) elmore += (v.r_driver + j * v.r_seg) * v.c_seg;
  EXPECT_NEAR(m[1], -elmore, 1e-15);
  EXPECT_DOUBLE_EQ(m[0], 1.0);
}

TEST(TreeMoments, RejectsNonTrees) {
  // Bridge (cycle).
  {
    auto lad = circuits::make_rc_ladder({.segments = 4});
    lad.netlist.add_resistor("bridge", *lad.netlist.find_node("n0"),
                             *lad.netlist.find_node("n2"), 1e3);
    EXPECT_FALSE(
        RcTreeAnalyzer::build(lad.netlist, circuits::LadderCircuit::kInput).has_value());
  }
  // Resistor to ground.
  {
    auto lad = circuits::make_rc_ladder({.segments = 4});
    lad.netlist.add_resistor("leak", *lad.netlist.find_node("n1"), kGround, 1e6);
    EXPECT_FALSE(
        RcTreeAnalyzer::build(lad.netlist, circuits::LadderCircuit::kInput).has_value());
  }
  // Coupling capacitor.
  {
    auto lad = circuits::make_rc_ladder({.segments = 4});
    lad.netlist.add_capacitor("ccpl", *lad.netlist.find_node("n1"),
                              *lad.netlist.find_node("n3"), 1e-12);
    EXPECT_FALSE(
        RcTreeAnalyzer::build(lad.netlist, circuits::LadderCircuit::kInput).has_value());
  }
  // Inductor.
  {
    auto lad = circuits::make_rc_ladder({.segments = 4});
    lad.netlist.add_inductor("l1", *lad.netlist.find_node("n1"), kGround, 1e-9);
    EXPECT_FALSE(
        RcTreeAnalyzer::build(lad.netlist, circuits::LadderCircuit::kInput).has_value());
  }
  // Unknown source / wrong source kind.
  {
    auto lad = circuits::make_rc_ladder({.segments = 4});
    EXPECT_FALSE(RcTreeAnalyzer::build(lad.netlist, "nope").has_value());
    EXPECT_FALSE(RcTreeAnalyzer::build(lad.netlist, "r0").has_value());
  }
}

TEST(TreeMoments, RandomTreesMatchSparseLu) {
  std::mt19937 rng(31);
  std::uniform_real_distribution<double> rdist(10.0, 1e3);
  std::uniform_real_distribution<double> cdist(0.1e-12, 5e-12);
  for (int trial = 0; trial < 10; ++trial) {
    Netlist nl;
    const auto in = nl.node("in");
    nl.add_voltage_source("vin", in, kGround, 1.0);
    std::vector<circuit::NodeId> nodes{in};
    const std::size_t extra = 5 + rng() % 20;
    for (std::size_t i = 0; i < extra; ++i) {
      const auto parent = nodes[rng() % nodes.size()];
      const auto child = nl.node("t" + std::to_string(i));
      nl.add_resistor("r" + std::to_string(i), parent, child, rdist(rng));
      nl.add_capacitor("c" + std::to_string(i), child, kGround, cdist(rng));
      nodes.push_back(child);
    }
    const auto tree = RcTreeAnalyzer::build(nl, "vin");
    ASSERT_TRUE(tree.has_value()) << "trial " << trial;
    const auto out = nodes.back();
    const auto m_tree = tree->transfer_moments(out, 5);
    const auto m_ref = MomentGenerator(nl).transfer_moments("vin", out, 5);
    for (std::size_t k = 0; k < 5; ++k)
      EXPECT_NEAR(m_tree[k], m_ref[k], 1e-9 * (std::abs(m_ref[k]) + 1e-30))
          << "trial " << trial << " k=" << k;
  }
}

TEST(TreeMoments, CapacitorAtSourceNodeIgnoredSafely) {
  // A cap across the ideal source cannot affect any transfer moment.
  auto lad = circuits::make_rc_ladder({.segments = 3});
  const auto m_before =
      RcTreeAnalyzer::build(lad.netlist, circuits::LadderCircuit::kInput)
          ->transfer_moments(lad.out, 4);
  lad.netlist.add_capacitor("csrc", *lad.netlist.find_node("in"), kGround, 1e-9);
  const auto tree = RcTreeAnalyzer::build(lad.netlist, circuits::LadderCircuit::kInput);
  ASSERT_TRUE(tree.has_value());
  const auto m_after = tree->transfer_moments(lad.out, 4);
  for (std::size_t k = 0; k < 4; ++k) EXPECT_DOUBLE_EQ(m_before[k], m_after[k]);
}

}  // namespace
}  // namespace awe::engine
