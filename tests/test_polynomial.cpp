#include <gtest/gtest.h>

#include <random>

#include "symbolic/polynomial.hpp"

namespace awe::symbolic {
namespace {

Polynomial x(std::size_t nv, std::size_t i) { return Polynomial::variable(nv, i); }

TEST(Polynomial, ZeroAndConstant) {
  Polynomial z(2);
  EXPECT_TRUE(z.is_zero());
  EXPECT_TRUE(z.is_constant());
  EXPECT_DOUBLE_EQ(z.constant_value(), 0.0);

  const auto c = Polynomial::constant(2, 3.5);
  EXPECT_FALSE(c.is_zero());
  EXPECT_TRUE(c.is_constant());
  EXPECT_DOUBLE_EQ(c.constant_value(), 3.5);
  EXPECT_EQ(Polynomial::constant(2, 0.0).term_count(), 0u);
}

TEST(Polynomial, AdditionMergesAndCancels) {
  const auto p = x(2, 0) + x(2, 1);
  const auto q = x(2, 0) - x(2, 1);
  const auto s = p + q;  // 2 x0
  EXPECT_EQ(s.term_count(), 1u);
  EXPECT_DOUBLE_EQ(s.evaluate(std::vector<double>{3.0, 100.0}), 6.0);
}

TEST(Polynomial, MultiplicationExpands) {
  // (x0 + 1)(x0 - 1) = x0^2 - 1
  const auto p = x(1, 0) + Polynomial::constant(1, 1.0);
  const auto q = x(1, 0) - Polynomial::constant(1, 1.0);
  const auto r = p * q;
  EXPECT_EQ(r.term_count(), 2u);
  EXPECT_DOUBLE_EQ(r.evaluate(std::vector<double>{4.0}), 15.0);
  EXPECT_EQ(r.total_degree(), 2u);
}

TEST(Polynomial, MultilinearProduct) {
  // (a + b)(c + d) has 4 multilinear terms (symbols a,b,c,d).
  const auto p = x(4, 0) + x(4, 1);
  const auto q = x(4, 2) + x(4, 3);
  const auto r = p * q;
  EXPECT_EQ(r.term_count(), 4u);
  for (const auto& t : r.terms())
    for (const auto e : t.exponents) EXPECT_LE(e, 1);
}

TEST(Polynomial, NvarsMismatchThrows) {
  EXPECT_THROW(x(1, 0) + x(2, 0), std::invalid_argument);
  EXPECT_THROW(x(1, 0) * x(2, 0), std::invalid_argument);
}

TEST(Polynomial, DegreeQueries) {
  // x0^2 x1 + x1^3
  const auto p = x(2, 0) * x(2, 0) * x(2, 1) + x(2, 1) * x(2, 1) * x(2, 1);
  EXPECT_EQ(p.total_degree(), 3u);
  EXPECT_EQ(p.degree_in(0), 2u);
  EXPECT_EQ(p.degree_in(1), 3u);
}

TEST(Polynomial, Derivative) {
  // d/dx0 (3 x0^2 x1 + x1) = 6 x0 x1
  const auto p = 3.0 * x(2, 0) * x(2, 0) * x(2, 1) + x(2, 1);
  const auto d = p.derivative(0);
  const std::vector<double> pt{2.0, 5.0};
  EXPECT_DOUBLE_EQ(d.evaluate(pt), 60.0);
  EXPECT_TRUE(Polynomial::constant(2, 7.0).derivative(1).is_zero());
}

TEST(Polynomial, Substitute) {
  // p = x0 x1 + x0; substitute x1 = 3 -> 4 x0
  const auto p = x(2, 0) * x(2, 1) + x(2, 0);
  const auto s = p.substitute(1, 3.0);
  EXPECT_DOUBLE_EQ(s.evaluate(std::vector<double>{2.0, 999.0}), 8.0);
  EXPECT_EQ(s.degree_in(1), 0u);
}

TEST(Polynomial, EvaluateArityChecked) {
  EXPECT_THROW(x(2, 0).evaluate(std::vector<double>{1.0}), std::invalid_argument);
}

TEST(Polynomial, FromTermsNormalizes) {
  std::vector<Term> terms;
  terms.push_back({{1, 0}, 2.0});
  terms.push_back({{1, 0}, 3.0});
  terms.push_back({{0, 1}, 0.0});
  const auto p = Polynomial::from_terms(2, std::move(terms));
  EXPECT_EQ(p.term_count(), 1u);
  EXPECT_DOUBLE_EQ(p.evaluate(std::vector<double>{1.0, 1.0}), 5.0);
}

TEST(Polynomial, CleanedDropsDebris) {
  const auto p = Polynomial::constant(1, 1.0) + Polynomial::constant(1, 1e-20) * x(1, 0);
  const auto c = p.cleaned(1e-14);
  EXPECT_EQ(c.term_count(), 1u);
}

TEST(Polynomial, ToString) {
  const auto p = 2.0 * x(2, 0) * x(2, 1) - Polynomial::constant(2, 1.0);
  const std::vector<std::string> names{"g", "c"};
  EXPECT_EQ(p.to_string(names), "2*g*c - 1");
  EXPECT_EQ(Polynomial(2).to_string(names), "0");
}

TEST(PolynomialProperty, RingAxiomsOnRandomInputs) {
  std::mt19937 rng(99);
  std::uniform_real_distribution<double> coeff(-2.0, 2.0);
  std::uniform_int_distribution<int> expo(0, 3);
  auto random_poly = [&](std::size_t nv) {
    std::vector<Term> terms;
    const int nt = 1 + static_cast<int>(rng() % 5);
    for (int t = 0; t < nt; ++t) {
      Monomial m(nv);
      for (auto& e : m) e = static_cast<std::uint16_t>(expo(rng));
      terms.push_back({m, coeff(rng)});
    }
    return Polynomial::from_terms(nv, std::move(terms));
  };
  for (int trial = 0; trial < 40; ++trial) {
    const std::size_t nv = 3;
    const auto a = random_poly(nv), b = random_poly(nv), c = random_poly(nv);
    std::vector<double> pt(nv);
    for (auto& v : pt) v = coeff(rng);
    const double av = a.evaluate(pt), bv = b.evaluate(pt), cv = c.evaluate(pt);
    // Evaluation is a ring homomorphism.
    EXPECT_NEAR((a + b).evaluate(pt), av + bv, 1e-9);
    EXPECT_NEAR((a * b).evaluate(pt), av * bv, 1e-8);
    EXPECT_NEAR((b + c).evaluate(pt), bv + cv, 1e-9);
    // Distributivity as a polynomial identity (up to coefficient round-off
    // from the different association orders).
    const auto dist_residual = a * (b + c) - (a * b + a * c);
    EXPECT_LE(dist_residual.max_abs_coeff(),
              1e-12 * (1.0 + (a * b).max_abs_coeff() + (a * c).max_abs_coeff()));
    // Commutativity is exact (same multiset of coefficient products).
    EXPECT_EQ(a + b, b + a);
  }
}

}  // namespace
}  // namespace awe::symbolic
