// Netlist serialization round trips and multi-output compiled models.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "awe/moments.hpp"
#include "circuit/parser.hpp"
#include "circuit/writer.hpp"
#include "circuits/coupled_lines.hpp"
#include "circuits/fig1_rc.hpp"
#include "core/awesymbolic.hpp"
#include "partition/partitioner.hpp"
#include "symbolic/compile.hpp"

namespace awe {
namespace {

using circuit::deck_to_string;
using circuit::parse_deck_string;

TEST(Writer, RoundTripPreservesEverything) {
  const std::string original = R"(* round trip deck
Vin in 0 1
R1 in a 1000
C1 a 0 1.0000000000000001e-11
L1 a b 9.9999999999999998e-09
R2 b out 2000
C2 out 0 5.0000000000000001e-12
G1 out 0 a 0 0.001
E1 e 0 a 0 2
R3 e 0 1000
F1 0 out Vin 0.5
H1 h 0 Vin 100
R4 h 0 1000
.symbol R2
.symbol C2
.input vin
.output out
.end
)";
  const auto deck1 = parse_deck_string(original);
  const auto text = deck_to_string(deck1);
  const auto deck2 = parse_deck_string(text);

  ASSERT_EQ(deck1.netlist.elements().size(), deck2.netlist.elements().size());
  for (std::size_t i = 0; i < deck1.netlist.elements().size(); ++i) {
    const auto& a = deck1.netlist.elements()[i];
    const auto& b = deck2.netlist.elements()[i];
    EXPECT_EQ(a.kind, b.kind) << a.name;
    EXPECT_EQ(a.name, b.name);
    EXPECT_DOUBLE_EQ(a.value, b.value) << a.name;
    EXPECT_EQ(deck1.netlist.node_name(a.pos), deck2.netlist.node_name(b.pos));
    EXPECT_EQ(deck1.netlist.node_name(a.neg), deck2.netlist.node_name(b.neg));
  }
  EXPECT_EQ(deck1.symbol_elements, deck2.symbol_elements);
  EXPECT_EQ(deck1.input_source, deck2.input_source);
  EXPECT_EQ(deck1.output_node, deck2.output_node);
}

TEST(Writer, MutualRoundTrip) {
  const auto deck1 = parse_deck_string(R"(
L1 a 0 0.001
L2 b 0 0.002
K1 L1 L2 0.75
R1 a 0 10
R2 b 0 10
)");
  const auto deck2 = parse_deck_string(deck_to_string(deck1));
  const auto idx = *deck2.netlist.find_element("k1");
  EXPECT_EQ(deck2.netlist.elements()[idx].ctrl_source, "l1");
  EXPECT_EQ(deck2.netlist.elements()[idx].ctrl_source2, "l2");
  EXPECT_DOUBLE_EQ(deck2.netlist.elements()[idx].value, 0.75);
}

TEST(Writer, ConductanceSubstitution) {
  circuit::Netlist nl;
  nl.add_conductance("g1", nl.node("a"), circuit::kGround, 2e-3);
  nl.add_voltage_source("v1", nl.node("a"), circuit::kGround, 1.0);
  std::ostringstream os;
  circuit::write_netlist(os, nl);
  // Parses back as a 500-ohm resistor named rg1.
  const auto deck = parse_deck_string(os.str());
  const auto idx = deck.netlist.find_element("rg1");
  ASSERT_TRUE(idx.has_value());
  EXPECT_EQ(deck.netlist.elements()[*idx].kind, circuit::ElementKind::kResistor);
  EXPECT_DOUBLE_EQ(deck.netlist.elements()[*idx].value, 500.0);

  circuit::WriteOptions strict;
  strict.strict = true;
  std::ostringstream os2;
  EXPECT_THROW(circuit::write_netlist(os2, nl, strict), std::invalid_argument);
}

TEST(Writer, RoundTripElectricallyIdentical) {
  // Moments of the reparsed circuit equal moments of the original.
  auto fig = circuits::make_fig1({.g1 = 1e-3, .g2 = 2e-3, .c1 = 2e-12, .c2 = 5e-12});
  std::ostringstream os;
  circuit::write_netlist(os, fig.netlist);
  const auto deck = parse_deck_string(os.str());
  const auto m1 = engine::MomentGenerator(fig.netlist)
                      .transfer_moments("vin", fig.v2, 4);
  const auto m2 = engine::MomentGenerator(deck.netlist)
                      .transfer_moments("vin", *deck.netlist.find_node("v2"), 4);
  for (std::size_t k = 0; k < 4; ++k)
    EXPECT_NEAR(m1[k], m2[k], 1e-12 * (std::abs(m1[k]) + 1e-20));
}

// ---------------------------------------------------------------------------

TEST(MultiOutput, MatchesSingleOutputModels) {
  circuits::CoupledLineValues v;
  v.segments = 40;
  auto c = circuits::make_coupled_lines(v);
  const std::vector<std::string> symbols{
      circuits::CoupledLinesCircuit::kSymbolRdriver,
      circuits::CoupledLinesCircuit::kSymbolCload};

  const auto multi = core::MultiOutputModel::build(
      c.netlist, symbols, circuits::CoupledLinesCircuit::kInput,
      {c.line1_out, c.line2_out}, {.order = 2});
  ASSERT_EQ(multi.output_count(), 2u);
  EXPECT_EQ(multi.output_node(0), c.line1_out);

  const auto single1 = core::CompiledModel::build(
      c.netlist, symbols, circuits::CoupledLinesCircuit::kInput, c.line1_out,
      {.order = 2});
  const auto single2 = core::CompiledModel::build(
      c.netlist, symbols, circuits::CoupledLinesCircuit::kInput, c.line2_out,
      {.order = 2});

  for (const double r : {50.0, 200.0}) {
    const std::vector<double> vals{r, v.c_load};
    const auto m1m = multi.moments_at(0, vals);
    const auto m1s = single1.moments_at(vals);
    const auto m2m = multi.moments_at(1, vals);
    const auto m2s = single2.moments_at(vals);
    for (std::size_t k = 0; k < 4; ++k) {
      EXPECT_NEAR(m1m[k], m1s[k], 1e-9 * (std::abs(m1s[k]) + 1e-20));
      EXPECT_NEAR(m2m[k], m2s[k], 1e-9 * (std::abs(m2s[k]) + 1e-20));
    }
  }
}

TEST(MultiOutput, CrossOutputCseSharesWork) {
  // Compile the same multi-output symbolic moments (a) as one shared
  // program and (b) as two independent per-output programs, and verify the
  // shared program is strictly smaller — det(Y0) and the common moment
  // subexpressions are emitted once.
  circuits::CoupledLineValues v;
  v.segments = 40;
  auto c = circuits::make_coupled_lines(v);
  const std::vector<std::string> symbols{
      circuits::CoupledLinesCircuit::kSymbolRdriver,
      circuits::CoupledLinesCircuit::kSymbolCload};
  part::MomentPartitioner partitioner(c.netlist, symbols,
                                      circuits::CoupledLinesCircuit::kInput,
                                      std::vector<circuit::NodeId>{c.line1_out,
                                                                   c.line2_out});
  const auto sym = partitioner.compute_all(4);

  auto compile_outputs = [&](std::span<const std::size_t> outs) {
    symbolic::ExprGraph g;
    std::vector<symbolic::NodeId> vars{g.input(0), g.input(1)};
    std::vector<symbolic::NodeId> roots;
    for (const std::size_t o : outs)
      for (const auto& numerator : sym.numerators[o])
        roots.push_back(lower_polynomial(g, numerator, vars));
    roots.push_back(lower_polynomial(g, sym.det_y0, vars));
    return symbolic::CompiledProgram(g, roots).instruction_count();
  };
  const std::size_t shared = compile_outputs(std::vector<std::size_t>{0, 1});
  const std::size_t separate = compile_outputs(std::vector<std::size_t>{0}) +
                               compile_outputs(std::vector<std::size_t>{1});
  EXPECT_LT(shared, separate);
}

TEST(MultiOutput, BusVictimAttenuationDecaysWithDistance) {
  circuits::CoupledBusValues v;
  v.lines = 4;
  v.segments = 30;
  auto bus = circuits::make_coupled_bus(v);
  // Victims at distance d couple through d capacitive stages, so their
  // leading moments vanish up to m_{d}; order 3 keeps every output feasible.
  const auto multi = core::MultiOutputModel::build(
      bus.netlist, {"rdrv1", "cload2"}, circuits::CoupledBusCircuit::kInput,
      bus.line_outs, {.order = 3});
  ASSERT_EQ(multi.output_count(), 4u);

  const std::vector<double> vals{v.r_driver, v.c_load};
  auto peak = [&](std::size_t o) {
    const auto rom = multi.evaluate(o, vals);
    double p = 0.0;
    for (double t = 0; t <= 300e-9; t += 1e-9)
      p = std::max(p, std::abs(rom.step_response(t)));
    return p;
  };
  const double direct = peak(0);
  const double v1 = peak(1);
  const double v2 = peak(2);
  EXPECT_NEAR(direct, 1.0, 0.05);  // aggressor settles to 1
  EXPECT_GT(v1, v2);               // coupling decays with distance
  EXPECT_GT(v1, 1e-3);
  EXPECT_LT(v2, v1);
}

TEST(MultiOutput, Validation) {
  auto fig = circuits::make_fig1();
  EXPECT_THROW(core::MultiOutputModel::build(fig.netlist, {"g2"}, "vin", {},
                                             {.order = 2}),
               std::invalid_argument);
  const auto multi = core::MultiOutputModel::build(fig.netlist, {"g2"}, "vin",
                                                   {fig.v1, fig.v2}, {.order = 2});
  EXPECT_THROW(multi.moments_at(5, std::vector<double>{1.0}), std::out_of_range);
  EXPECT_THROW(multi.moments_at(0, std::vector<double>{1.0, 2.0}),
               std::invalid_argument);
  EXPECT_EQ(multi.symbol_names().size(), 1u);
}

TEST(CoupledBus, GeneratorValidation) {
  EXPECT_THROW(circuits::make_coupled_bus({.lines = 1}), std::invalid_argument);
  EXPECT_THROW(circuits::make_coupled_bus({.lines = 3, .segments = 0}),
               std::invalid_argument);
  auto bus = circuits::make_coupled_bus({.lines = 3, .segments = 5});
  EXPECT_TRUE(bus.netlist.validate().empty());
  // 3 lines x (V + Rdrv + 5R + 5C + load) + 2 x 5 coupling caps.
  EXPECT_EQ(bus.netlist.elements().size(), 3u * 13u + 10u);
}

}  // namespace
}  // namespace awe
