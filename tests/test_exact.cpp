// Exact symbolic analysis (the traditional baseline) — including the
// literal reproduction of the paper's eqn (5) and eqn (6).
#include <gtest/gtest.h>

#include <cmath>

#include "awe/moments.hpp"
#include "circuits/fig1_rc.hpp"
#include "core/awesymbolic.hpp"
#include "exact/exact_symbolic.hpp"

namespace awe::exact {
namespace {

using circuit::kGround;
using circuit::Netlist;
using symbolic::Polynomial;

TEST(Exact, Equation5FullSymbolic) {
  // Paper eqn (5): with all four elements symbolic,
  //   H(s) = G1 G2 / (C1 C2 s^2 + (G2 C1 + G2 C2 + G1 C2) s + G1 G2).
  auto fig = circuits::make_fig1();
  const auto xf = exact_symbolic_transfer(fig.netlist, {"g1", "g2", "c1", "c2"},
                                          circuits::Fig1Circuit::kInput, fig.v2);
  ASSERT_EQ(xf.variable_names.size(), 5u);  // s + 4 symbols

  const auto num = xf.numerator_in_s();
  const auto den = xf.denominator_in_s();
  ASSERT_GE(den.size(), 3u);

  // Evaluate coefficient polynomials at several symbol points and compare
  // with the closed form.  The exact forms are only defined up to a common
  // factor, so compare the RATIOS to the denominator's s^0 coefficient.
  const std::vector<std::string> vars{"s", "g1", "g2", "c1", "c2"};
  for (const auto& v : std::vector<std::vector<double>>{
           {0.0, 1.0, 2.0, 3.0, 4.0}, {0.0, 5.0, 0.5, 1.5, 2.5}}) {
    const double g1 = v[1], g2 = v[2], c1 = v[3], c2 = v[4];
    const double d0_ref = g1 * g2;
    const double d1_ref = g2 * c1 + g2 * c2 + g1 * c2;
    const double d2_ref = c1 * c2;
    const double n0_ref = g1 * g2;
    const double d0 = den[0].evaluate(v);
    ASSERT_NE(d0, 0.0);
    EXPECT_NEAR(num[0].evaluate(v) / d0, n0_ref / d0_ref, 1e-9);
    EXPECT_NEAR(den[1].evaluate(v) / d0, d1_ref / d0_ref, 1e-9);
    EXPECT_NEAR(den[2].evaluate(v) / d0, d2_ref / d0_ref, 1e-9);
  }

  // The numerator has no s term (constant numerator).
  for (std::size_t k = 1; k < num.size(); ++k)
    EXPECT_LE(num[k].max_abs_coeff(), 1e-12 * num[0].max_abs_coeff()) << "k=" << k;
}

TEST(Exact, Equation6MixedNumericSymbolic) {
  // Paper eqn (6): G1 fixed at 5 S, the rest symbolic:
  //   H = 5 G2 / (C1 C2 s^2 + (G2 C1 + G2 C2 + 5 C2) s + 5 G2).
  circuits::Fig1Values vals;
  vals.g1 = 5.0;
  auto fig = circuits::make_fig1(vals);
  const auto xf = exact_symbolic_transfer(fig.netlist, {"g2", "c1", "c2"},
                                          circuits::Fig1Circuit::kInput, fig.v2);
  const auto num = xf.numerator_in_s();
  const auto den = xf.denominator_in_s();
  for (const auto& v : std::vector<std::vector<double>>{
           {0.0, 2.0, 3.0, 4.0}, {0.0, 0.5, 1.5, 2.5}}) {
    const double g2 = v[1], c1 = v[2], c2 = v[3];
    const double d0 = den[0].evaluate(v);
    EXPECT_NEAR(num[0].evaluate(v) / d0, 1.0, 1e-9);  // 5 G2 / 5 G2
    EXPECT_NEAR(den[1].evaluate(v) / d0, (g2 * c1 + g2 * c2 + 5 * c2) / (5 * g2), 1e-9);
    EXPECT_NEAR(den[2].evaluate(v) / d0, (c1 * c2) / (5 * g2), 1e-9);
  }
}

TEST(Exact, MomentsMatchAweSymbolicEverywhere) {
  // The Maclaurin series of the exact forms equals the partitioned
  // symbolic moments — exact vs AWEsymbolic cross-validation.
  auto fig = circuits::make_fig1();
  const std::vector<std::string> symbols{"g2", "c2"};
  const auto xf = exact_symbolic_transfer(fig.netlist, symbols,
                                          circuits::Fig1Circuit::kInput, fig.v2);
  const auto model = core::CompiledModel::build(fig.netlist, symbols,
                                                circuits::Fig1Circuit::kInput, fig.v2,
                                                {.order = 3});
  for (const double g2 : {0.5, 1.0, 2.0}) {
    for (const double c2 : {0.5, 2.0}) {
      const std::vector<double> vals{g2, c2};
      const auto m_exact = xf.moments(vals, 6);
      const auto m_sym = model.moments_at(vals);
      for (std::size_t k = 0; k < 6; ++k)
        EXPECT_NEAR(m_exact[k], m_sym[k], 1e-9 * (std::abs(m_sym[k]) + 1e-15))
            << "g2=" << g2 << " c2=" << c2 << " k=" << k;
    }
  }
}

TEST(Exact, EvaluateMatchesFrequencyResponse) {
  // H evaluated on the negative real axis matches the resolvent solve.
  circuit::Netlist nl;
  const auto in = nl.node("in");
  const auto out = nl.node("out");
  nl.add_voltage_source("vin", in, kGround, 1.0);
  nl.add_resistor("r1", in, out, 1e3);
  nl.add_capacitor("c1", out, kGround, 1e-9);
  const auto xf = exact_symbolic_transfer(nl, {"c1"}, "vin", out);
  for (const double s : {0.0, -1e5, -2e6}) {
    for (const double c : {1e-10, 1e-9}) {
      const double expected = 1.0 / (1.0 + s * 1e3 * c);
      EXPECT_NEAR(xf.evaluate(s, std::vector<double>{c}), expected,
                  1e-9 * std::abs(expected));
    }
  }
}

TEST(Exact, ResistorSymbolReciprocal) {
  circuit::Netlist nl;
  const auto in = nl.node("in");
  const auto out = nl.node("out");
  nl.add_voltage_source("vin", in, kGround, 1.0);
  nl.add_resistor("rsym", in, out, 1e3);
  nl.add_resistor("rl", out, kGround, 1e3);
  const auto xf = exact_symbolic_transfer(nl, {"rsym"}, "vin", out);
  ASSERT_TRUE(xf.reciprocal[0]);
  // Divider: H = RL/(R+RL).
  EXPECT_NEAR(xf.evaluate(0.0, std::vector<double>{3e3}), 0.25, 1e-12);
}

TEST(Exact, SizeCapEnforced) {
  // 20-node ladder -> MNA dim > 16 -> must refuse.
  circuit::Netlist nl;
  auto prev = nl.node("in");
  nl.add_voltage_source("vin", prev, kGround, 1.0);
  for (int i = 0; i < 20; ++i) {
    const auto n = nl.node("n" + std::to_string(i));
    nl.add_resistor("r" + std::to_string(i), prev, n, 100.0);
    nl.add_capacitor("c" + std::to_string(i), n, kGround, 1e-12);
    prev = n;
  }
  EXPECT_THROW(exact_symbolic_transfer(nl, {"c0"}, "vin", prev), std::invalid_argument);
}

TEST(Exact, InputValidation) {
  auto fig = circuits::make_fig1();
  EXPECT_THROW(exact_symbolic_transfer(fig.netlist, {"g1"}, "vin", kGround),
               std::invalid_argument);
  EXPECT_THROW(exact_symbolic_transfer(fig.netlist, {"ghost"}, "vin", fig.v2),
               std::invalid_argument);
  EXPECT_THROW(exact_symbolic_transfer(fig.netlist, {"g1"}, "ghost", fig.v2),
               std::invalid_argument);
  EXPECT_THROW(exact_symbolic_transfer(fig.netlist, {"vin"}, "vin", fig.v2),
               std::invalid_argument);
  const auto xf = exact_symbolic_transfer(fig.netlist, {"g1"},
                                          circuits::Fig1Circuit::kInput, fig.v2);
  EXPECT_THROW(xf.evaluate(0.0, std::vector<double>{1.0, 2.0}), std::invalid_argument);
  EXPECT_THROW(xf.moments(std::vector<double>{1.0, 2.0}, 2), std::invalid_argument);
}

TEST(Exact, ExpressionComplexityGrowsWithCircuitSize) {
  // The paper's motivation, measured: exact-form term counts blow up with
  // circuit size even with ONE symbol, while the AWEsymbolic compiled
  // program stays port-sized.
  auto term_count = [](std::size_t nodes) {
    circuit::Netlist nl;
    auto prev = nl.node("in");
    nl.add_voltage_source("vin", prev, kGround, 1.0);
    circuit::NodeId last = prev;
    for (std::size_t i = 0; i < nodes; ++i) {
      const auto n = nl.node("n" + std::to_string(i));
      nl.add_resistor("r" + std::to_string(i), last, n, 100.0 * (i + 1));
      nl.add_capacitor("c" + std::to_string(i), n, kGround, 1e-12 * (i + 1));
      last = n;
    }
    const auto xf = exact_symbolic_transfer(nl, {"c0"}, "vin", last);
    return xf.h.den().term_count();
  };
  const auto t3 = term_count(3);
  const auto t6 = term_count(6);
  EXPECT_GT(t6, 1.8 * t3);
}

}  // namespace
}  // namespace awe::exact
