#include <gtest/gtest.h>

#include <random>

#include "symbolic/rational.hpp"

namespace awe::symbolic {
namespace {

Polynomial x(std::size_t nv, std::size_t i) { return Polynomial::variable(nv, i); }

TEST(RationalFunction, ZeroDenominatorThrows) {
  EXPECT_THROW(RationalFunction(x(1, 0), Polynomial(1)), std::invalid_argument);
}

TEST(RationalFunction, NvarsMismatchThrows) {
  EXPECT_THROW(RationalFunction(x(1, 0), Polynomial::constant(2, 1.0)),
               std::invalid_argument);
}

TEST(RationalFunction, EvaluateSimple) {
  // (x0 + 1) / (x0 - 1)
  const RationalFunction r(x(1, 0) + Polynomial::constant(1, 1.0),
                           x(1, 0) - Polynomial::constant(1, 1.0));
  EXPECT_DOUBLE_EQ(r.evaluate(std::vector<double>{3.0}), 2.0);
  EXPECT_THROW(r.evaluate(std::vector<double>{1.0}), std::domain_error);
}

TEST(RationalFunction, ArithmeticMatchesNumericEvaluation) {
  std::mt19937 rng(5);
  std::uniform_real_distribution<double> dist(0.5, 2.0);
  const auto a = RationalFunction(x(2, 0), x(2, 1) + Polynomial::constant(2, 1.0));
  const auto b = RationalFunction(x(2, 1) * x(2, 0), Polynomial::constant(2, 2.0));
  for (int i = 0; i < 20; ++i) {
    const std::vector<double> pt{dist(rng), dist(rng)};
    const double av = a.evaluate(pt), bv = b.evaluate(pt);
    EXPECT_NEAR((a + b).evaluate(pt), av + bv, 1e-12);
    EXPECT_NEAR((a - b).evaluate(pt), av - bv, 1e-12);
    EXPECT_NEAR((a * b).evaluate(pt), av * bv, 1e-12);
    EXPECT_NEAR((a / b).evaluate(pt), av / bv, 1e-12);
    EXPECT_NEAR((-a).evaluate(pt), -av, 1e-12);
    EXPECT_NEAR((a * 3.0).evaluate(pt), 3.0 * av, 1e-12);
  }
}

TEST(RationalFunction, SharedDenominatorAdditionStaysCompact) {
  const auto den = x(1, 0) + Polynomial::constant(1, 1.0);
  const RationalFunction a(Polynomial::constant(1, 1.0), den);
  const RationalFunction b(x(1, 0), den);
  const auto s = a + b;
  // Denominators identical -> no den*den blowup.
  EXPECT_EQ(s.den(), den);
}

TEST(RationalFunction, DivisionByZeroRationalThrows) {
  const auto a = RationalFunction::constant(1, 1.0);
  const auto zero = RationalFunction::constant(1, 0.0);
  EXPECT_THROW(a / zero, std::domain_error);
}

TEST(RationalFunction, DerivativeQuotientRule) {
  // r = x0 / (x0 + 1); dr/dx0 = 1/(x0+1)^2
  const RationalFunction r(x(1, 0), x(1, 0) + Polynomial::constant(1, 1.0));
  const auto d = r.derivative(0);
  for (double v : {0.0, 1.0, 2.5}) {
    const std::vector<double> pt{v};
    EXPECT_NEAR(d.evaluate(pt), 1.0 / ((v + 1.0) * (v + 1.0)), 1e-12);
  }
}

TEST(RationalFunction, NormalizedScalesDenominator) {
  const RationalFunction r(Polynomial::constant(1, 4.0),
                           Polynomial::constant(1, 2.0));
  const auto n = r.normalized();
  EXPECT_DOUBLE_EQ(n.den().constant_value(), 1.0);
  EXPECT_DOUBLE_EQ(n.num().constant_value(), 2.0);
}

TEST(RationalFunction, NormalizedCancelsIdentical) {
  const auto p = x(1, 0) + Polynomial::constant(1, 2.0);
  const RationalFunction r(p, p);
  const auto n = r.normalized();
  EXPECT_TRUE(n.num().is_constant());
  EXPECT_DOUBLE_EQ(n.evaluate(std::vector<double>{5.0}), 1.0);
}

TEST(RationalFunction, ToString) {
  const RationalFunction r(x(1, 0), x(1, 0) + Polynomial::constant(1, 1.0));
  const std::vector<std::string> names{"g"};
  EXPECT_EQ(r.to_string(names), "(g) / (g + 1)");
  EXPECT_EQ(RationalFunction::from_polynomial(x(1, 0)).to_string(names), "g");
}

}  // namespace
}  // namespace awe::symbolic
