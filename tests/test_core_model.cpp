#include <gtest/gtest.h>

#include <cmath>

#include "awe/awe.hpp"
#include "circuits/fig1_rc.hpp"
#include "circuits/opamp741.hpp"
#include "core/awesymbolic.hpp"

namespace awe::core {
namespace {

TEST(CompiledModel, MomentsIdenticalToFullAwe) {
  // Paper: "the results are identical to those obtained by a numeric AWE
  // analysis."  Compiled path vs full re-analysis across a value grid.
  circuits::Fig1Values base;
  auto fig = circuits::make_fig1(base);
  const auto model = CompiledModel::build(fig.netlist, {"g2", "c2"},
                                          circuits::Fig1Circuit::kInput, fig.v2,
                                          {.order = 2});
  for (const double g2 : {0.3, 1.0, 3.0}) {
    for (const double c2 : {0.5, 1.0, 2.0}) {
      const auto m = model.moments_at(std::vector<double>{g2, c2});
      circuits::Fig1Values vals = base;
      vals.g2 = g2;
      vals.c2 = c2;
      auto ref = circuits::make_fig1(vals);
      const auto m_ref =
          engine::MomentGenerator(ref.netlist)
              .transfer_moments(circuits::Fig1Circuit::kInput, ref.v2, 4);
      for (std::size_t k = 0; k < 4; ++k)
        EXPECT_NEAR(m[k], m_ref[k], 1e-9 * (std::abs(m_ref[k]) + 1e-15));
    }
  }
}

TEST(CompiledModel, CompiledEqualsUncompiled) {
  auto fig = circuits::make_fig1();
  const auto model = CompiledModel::build(fig.netlist, {"g1", "c1"},
                                          circuits::Fig1Circuit::kInput, fig.v2,
                                          {.order = 2});
  for (const double g1 : {0.1, 1.0, 10.0}) {
    const std::vector<double> vals{g1, 2.0};
    const auto fast = model.moments_at(vals);
    const auto slow = model.moments_uncompiled(vals);
    ASSERT_EQ(fast.size(), slow.size());
    for (std::size_t k = 0; k < fast.size(); ++k)
      EXPECT_NEAR(fast[k], slow[k], 1e-10 * (std::abs(slow[k]) + 1e-15));
  }
}

TEST(CompiledModel, EvaluateProducesSameRomAsFullAwe) {
  circuits::Fig1Values base;
  auto fig = circuits::make_fig1(base);
  const auto model = CompiledModel::build(fig.netlist, {"g2", "c2"},
                                          circuits::Fig1Circuit::kInput, fig.v2,
                                          {.order = 2});
  const std::vector<double> vals{2.0, 0.7};
  const auto rom = model.evaluate(vals);

  circuits::Fig1Values v2 = base;
  v2.g2 = vals[0];
  v2.c2 = vals[1];
  auto ref = circuits::make_fig1(v2);
  const auto rom_ref =
      engine::run_awe(ref.netlist, circuits::Fig1Circuit::kInput, ref.v2, {.order = 2});

  ASSERT_EQ(rom.order(), rom_ref.order());
  for (std::size_t i = 0; i < rom.order(); ++i) {
    double best = 1e300;
    for (std::size_t j = 0; j < rom_ref.order(); ++j)
      best = std::min(best, std::abs(rom.poles()[i] - rom_ref.poles()[j]));
    EXPECT_LT(best, 1e-6 * std::abs(rom.poles()[i]));
  }
  EXPECT_NEAR(rom.dc_gain(), rom_ref.dc_gain(), 1e-9 * std::abs(rom_ref.dc_gain()));
}

TEST(CompiledModel, WorkspaceReuseMatchesAllocatingPath) {
  auto fig = circuits::make_fig1();
  const auto model = CompiledModel::build(fig.netlist, {"g2", "c2"},
                                          circuits::Fig1Circuit::kInput, fig.v2,
                                          {.order = 2});
  auto ws = model.make_workspace();
  const std::vector<double> vals{1.5, 0.8};
  model.moments_at(vals, ws);
  const auto ref = model.moments_at(vals);
  for (std::size_t k = 0; k < ref.size(); ++k) EXPECT_DOUBLE_EQ(ws.moments[k], ref[k]);
}

TEST(CompiledModel, WorkspaceFromDifferentModelRejected) {
  // Regression: a workspace built by another model's make_workspace() used
  // to drive out-of-bounds writes; the documented precondition is now
  // enforced with an explicit size check.
  auto fig = circuits::make_fig1();
  const auto two_sym = CompiledModel::build(fig.netlist, {"g2", "c2"},
                                            circuits::Fig1Circuit::kInput, fig.v2,
                                            {.order = 2});
  const auto one_sym = CompiledModel::build(fig.netlist, {"c1"},
                                            circuits::Fig1Circuit::kInput, fig.v2,
                                            {.order = 1});
  auto foreign = one_sym.make_workspace();
  EXPECT_THROW(two_sym.moments_at(std::vector<double>{1.0, 1.0}, foreign),
               std::invalid_argument);
  auto own = two_sym.make_workspace();
  EXPECT_NO_THROW(two_sym.moments_at(std::vector<double>{1.0, 1.0}, own));

  // Same contract on the batched path.
  auto foreign_batch = one_sym.make_batch_workspace(8);
  std::vector<double> pts(2 * 8, 1.0), out(two_sym.moment_count() * 8);
  std::vector<unsigned char> ok(8);
  EXPECT_THROW(two_sym.moments_batch(pts, 8, 8, foreign_batch, out, 8, ok),
               std::invalid_argument);
  auto own_batch = two_sym.make_batch_workspace(8);
  EXPECT_NO_THROW(two_sym.moments_batch(pts, 8, 8, own_batch, out, 8, ok));
}

TEST(CompiledModel, ClosedFormsFirstOrder) {
  // Single-pole RC with symbolic C: p1 = m0/m1 = -1/(RC), A0 = 1.
  circuit::Netlist nl;
  const auto in = nl.node("in");
  const auto out = nl.node("out");
  nl.add_voltage_source("vin", in, circuit::kGround, 1.0);
  nl.add_resistor("r1", in, out, 1e3);
  nl.add_capacitor("csym", out, circuit::kGround, 1e-9);
  const auto model = CompiledModel::build(nl, {"csym"}, "vin", out, {.order = 1});

  const auto gain = model.dc_gain_expression();
  const auto pole = model.first_order_pole_expression();
  for (const double c : {1e-10, 1e-9, 3e-9}) {
    const std::vector<double> pt{c};
    EXPECT_NEAR(gain.evaluate(pt), 1.0, 1e-9);
    EXPECT_NEAR(pole.evaluate(pt), -1.0 / (1e3 * c), 1e-6 / (1e3 * c));
  }
}

TEST(CompiledModel, InputValidation) {
  auto fig = circuits::make_fig1();
  EXPECT_THROW(CompiledModel::build(fig.netlist, {"g1"}, "vin", fig.v2, {.order = 0}),
               std::invalid_argument);
  EXPECT_THROW(CompiledModel::build(fig.netlist, {"g1"}, "vin", std::string("ghost"),
                                    ModelOptions{}),
               std::invalid_argument);
  const auto model = CompiledModel::build(fig.netlist, {"g1"},
                                          circuits::Fig1Circuit::kInput, fig.v2, {});
  EXPECT_THROW(model.moments_at(std::vector<double>{1.0, 2.0}), std::invalid_argument);
}

TEST(CompiledModel, ReciprocalSymbolGuards) {
  circuit::Netlist nl;
  const auto in = nl.node("in");
  const auto out = nl.node("out");
  nl.add_voltage_source("vin", in, circuit::kGround, 1.0);
  nl.add_resistor("rsym", in, out, 1e3);
  nl.add_capacitor("c1", out, circuit::kGround, 1e-9);
  const auto model = CompiledModel::build(nl, {"rsym"}, "vin", out, {.order = 1});
  EXPECT_THROW(model.moments_at(std::vector<double>{0.0}), std::domain_error);
  const auto m = model.moments_at(std::vector<double>{2e3});
  EXPECT_NEAR(m[0], 1.0, 1e-12);
  EXPECT_NEAR(m[1], -2e-6, 1e-15);
}

TEST(SelectSymbols, ReturnsRequestedCount) {
  auto amp = circuits::make_opamp741();
  const auto names =
      select_symbols(amp.netlist, circuits::Opamp741Circuit::kInput, amp.out, 2, 2);
  ASSERT_EQ(names.size(), 2u);
}

TEST(CompiledModel, ProgramStatsPopulated) {
  auto fig = circuits::make_fig1();
  const auto model = CompiledModel::build(fig.netlist, {"g2", "c2"},
                                          circuits::Fig1Circuit::kInput, fig.v2,
                                          {.order = 2});
  EXPECT_GT(model.instruction_count(), 0u);
  EXPECT_GT(model.register_count(), 0u);
  EXPECT_EQ(model.moment_count(), 4u);
  EXPECT_GE(model.port_count(), 2u);
  const auto names = model.symbol_names();
  ASSERT_EQ(names.size(), 2u);
}

}  // namespace
}  // namespace awe::core
