// Hierarchical subcircuit (.subckt / X) expansion.
#include <gtest/gtest.h>

#include "awe/awe.hpp"
#include "circuit/parser.hpp"

namespace awe::circuit {
namespace {

TEST(Subckt, BasicExpansion) {
  const auto deck = parse_deck_string(R"(* rc cell reuse
.subckt rccell a b
R1 a b 1k
C1 b 0 1p
.ends
Vin in 0 1
X1 in m1 rccell
X2 m1 out rccell
.input vin
.output out
.end
)");
  const auto& nl = deck.netlist;
  // 1 source + 2 instances x 2 elements.
  EXPECT_EQ(nl.elements().size(), 5u);
  EXPECT_TRUE(nl.find_element("x1.r1").has_value());
  EXPECT_TRUE(nl.find_element("x2.c1").has_value());
  EXPECT_TRUE(nl.find_node("m1").has_value());
  EXPECT_FALSE(nl.find_node("a").has_value());  // port names don't leak
  EXPECT_TRUE(nl.validate().empty());
}

TEST(Subckt, InternalNodesAreScoped) {
  const auto deck = parse_deck_string(R"(
.subckt divider top bot
R1 top mid 1k
R2 mid bot 1k
.ends
Vin in 0 1
X1 in 0 divider
X2 in 0 divider
)");
  // Each instance has a private 'mid'.
  EXPECT_TRUE(deck.netlist.find_node("x1.mid").has_value());
  EXPECT_TRUE(deck.netlist.find_node("x2.mid").has_value());
  EXPECT_FALSE(deck.netlist.find_node("mid").has_value());
}

TEST(Subckt, GroundIsGlobal) {
  const auto deck = parse_deck_string(R"(
.subckt gcell a
R1 a 0 1k
.ends
Vin in 0 1
X1 in gcell
)");
  const auto idx = *deck.netlist.find_element("x1.r1");
  EXPECT_EQ(deck.netlist.elements()[idx].neg, kGround);
}

TEST(Subckt, NestedInstances) {
  const auto deck = parse_deck_string(R"(
.subckt leaf a b
R1 a b 100
.ends
.subckt pair a c
X1 a m leaf
X2 m c leaf
.ends
Vin in 0 1
Xtop in out pair
Rload out 0 1k
)");
  // 2 leaves x 1 resistor + source + load.
  EXPECT_EQ(deck.netlist.elements().size(), 4u);
  EXPECT_TRUE(deck.netlist.find_element("xtop.x1.r1").has_value());
  EXPECT_TRUE(deck.netlist.find_node("xtop.m").has_value());
  // Electrical check: in -> out is 200 ohms in series.
  const auto rom = engine::run_awe(deck.netlist, "vin", std::string("out"), {.order = 1});
  EXPECT_NEAR(rom.dc_gain(), 1e3 / (1e3 + 200.0), 1e-9);
}

TEST(Subckt, ControlledSourceRefsAreScoped) {
  const auto deck = parse_deck_string(R"(
.subckt sense a b
Vs a x 0
R1 x b 1k
F1 0 b Vs 2
.ends
Vin in 0 1
X1 in out sense
Rl out 0 1k
)");
  const auto idx = *deck.netlist.find_element("x1.f1");
  EXPECT_EQ(deck.netlist.elements()[idx].ctrl_source, "x1.vs");
  EXPECT_TRUE(deck.netlist.validate().empty());
}

TEST(Subckt, MutualInductorRefsAreScoped) {
  const auto deck = parse_deck_string(R"(
.subckt xfmr p s
Lp p 0 1m
Ls s 0 1m
K1 Lp Ls 0.9
.ends
Vin in 0 1
X1 in out xfmr
Rl out 0 1k
)");
  const auto idx = *deck.netlist.find_element("x1.k1");
  EXPECT_EQ(deck.netlist.elements()[idx].ctrl_source, "x1.lp");
  EXPECT_EQ(deck.netlist.elements()[idx].ctrl_source2, "x1.ls");
  EXPECT_TRUE(deck.netlist.validate().empty());
}

TEST(Subckt, Errors) {
  EXPECT_THROW(parse_deck_string(".subckt foo\n.ends\n"), std::runtime_error);
  EXPECT_THROW(parse_deck_string(".ends\n"), std::runtime_error);
  EXPECT_THROW(parse_deck_string(".subckt foo a\nR1 a 0 1\n"), std::runtime_error);
  EXPECT_THROW(parse_deck_string("X1 a b ghost\n"), std::runtime_error);
  EXPECT_THROW(parse_deck_string(R"(
.subckt foo a b
R1 a b 1
.ends
X1 n1 foo
)"),
               std::runtime_error);  // wrong port count
  EXPECT_THROW(parse_deck_string(R"(
.subckt foo a
R1 a 0 1
.ends
.subckt foo a
R2 a 0 2
.ends
)"),
               std::runtime_error);  // duplicate definition
  EXPECT_THROW(parse_deck_string(R"(
.subckt foo a
.input vin
.ends
)"),
               std::runtime_error);  // directive inside subckt
}

TEST(Subckt, SelfRecursionIsCaught) {
  EXPECT_THROW(parse_deck_string(R"(
.subckt loop a
X1 a loop
.ends
X0 n loop
)"),
               std::runtime_error);
}

TEST(Subckt, SymbolDirectiveCanNameExpandedElement) {
  const auto deck = parse_deck_string(R"(
.subckt cell a b
R1 a b 1k
C1 b 0 2p
.ends
Vin in 0 1
X1 in out cell
.symbol x1.c1
.input vin
.output out
)");
  ASSERT_EQ(deck.symbol_elements.size(), 1u);
  EXPECT_EQ(deck.symbol_elements[0], "x1.c1");
  EXPECT_TRUE(deck.netlist.find_element("x1.c1").has_value());
}

}  // namespace
}  // namespace awe::circuit
