#include <gtest/gtest.h>

#include <random>

#include "symbolic/compile.hpp"
#include "symbolic/expr.hpp"

namespace awe::symbolic {
namespace {

TEST(ExprGraph, HashConsingDeduplicates) {
  ExprGraph g;
  const auto x = g.input(0);
  const auto y = g.input(1);
  const auto a = g.add(x, y);
  const auto b = g.add(y, x);  // commutative canonicalization
  EXPECT_EQ(a, b);
  const auto m1 = g.mul(a, a);
  const auto m2 = g.mul(a, a);
  EXPECT_EQ(m1, m2);
}

TEST(ExprGraph, ConstantFolding) {
  ExprGraph g;
  const auto c = g.add(g.constant(2.0), g.constant(3.0));
  EXPECT_EQ(g.node(c).op, OpCode::kConst);
  EXPECT_DOUBLE_EQ(g.node(c).value, 5.0);
}

TEST(ExprGraph, AlgebraicIdentities) {
  ExprGraph g;
  const auto x = g.input(0);
  EXPECT_EQ(g.add(x, g.constant(0.0)), x);
  EXPECT_EQ(g.mul(x, g.constant(1.0)), x);
  EXPECT_EQ(g.node(g.mul(x, g.constant(0.0))).op, OpCode::kConst);
  EXPECT_EQ(g.sub(x, g.constant(0.0)), x);
  EXPECT_EQ(g.div(x, g.constant(1.0)), x);
  EXPECT_EQ(g.neg(g.neg(x)), x);
  EXPECT_EQ(g.node(g.sub(x, x)).op, OpCode::kConst);
  EXPECT_EQ(g.node(g.div(x, x)).op, OpCode::kConst);
}

TEST(ExprGraph, DivByConstantZeroThrows) {
  ExprGraph g;
  EXPECT_THROW(g.div(g.input(0), g.constant(0.0)), std::domain_error);
}

TEST(ExprGraph, PowBinaryExponentiation) {
  ExprGraph g;
  const auto x = g.input(0);
  const auto p = g.pow(x, 13);
  const double v = g.evaluate_node(p, std::vector<double>{1.5});
  EXPECT_NEAR(v, std::pow(1.5, 13), 1e-9);
  EXPECT_EQ(g.node(g.pow(x, 0)).op, OpCode::kConst);
  EXPECT_EQ(g.pow(x, 1), x);
}

TEST(CompiledProgram, MatchesReferenceEvaluation) {
  ExprGraph g;
  const auto x = g.input(0);
  const auto y = g.input(1);
  const auto e1 = g.add(g.mul(x, y), g.constant(2.0));
  const auto e2 = g.div(g.sub(x, y), e1);
  const auto e3 = g.neg(g.mul(e1, e2));
  const std::vector<NodeId> roots{e1, e2, e3};
  CompiledProgram prog(g, roots);
  EXPECT_EQ(prog.output_count(), 3u);

  std::mt19937 rng(17);
  std::uniform_real_distribution<double> dist(-2.0, 2.0);
  for (int i = 0; i < 30; ++i) {
    const std::vector<double> in{dist(rng), dist(rng)};
    std::vector<double> out(3);
    prog.run(in, out);
    for (std::size_t k = 0; k < roots.size(); ++k)
      EXPECT_NEAR(out[k], g.evaluate_node(roots[k], in), 1e-12);
  }
}

TEST(CompiledProgram, RegisterRecyclingBoundsRegisterCount) {
  // A long chain a_{i+1} = a_i * a_i + x should need O(1) registers.
  ExprGraph g;
  NodeId acc = g.input(0);
  for (int i = 0; i < 100; ++i) acc = g.add(g.mul(acc, acc), g.input(0));
  CompiledProgram prog(g, std::vector<NodeId>{acc});
  EXPECT_LE(prog.register_count(), 8u);
}

TEST(CompiledProgram, SharedSubgraphEvaluatedOnce) {
  ExprGraph g;
  const auto x = g.input(0);
  const auto shared = g.mul(g.add(x, g.constant(1.0)), g.add(x, g.constant(1.0)));
  const auto r1 = g.add(shared, g.constant(2.0));
  const auto r2 = g.mul(shared, g.constant(3.0));
  CompiledProgram prog(g, std::vector<NodeId>{r1, r2});
  // x, x+1, shared(=mul of same node -> 1 op), r1, r2, plus 3 consts.
  EXPECT_LE(prog.instruction_count(), 8u);
}

TEST(LowerPolynomial, HornerEvaluationCorrect) {
  // p = 3 x0^3 + 2 x0 x1 + x1^2 + 5
  const auto nv = 2u;
  const auto x0 = Polynomial::variable(nv, 0);
  const auto x1 = Polynomial::variable(nv, 1);
  const auto p = 3.0 * x0 * x0 * x0 + 2.0 * x0 * x1 + x1 * x1 +
                 Polynomial::constant(nv, 5.0);
  ExprGraph g;
  const std::vector<NodeId> vars{g.input(0), g.input(1)};
  const auto root = lower_polynomial(g, p, vars);
  CompiledProgram prog(g, std::vector<NodeId>{root});
  std::mt19937 rng(23);
  std::uniform_real_distribution<double> dist(-3.0, 3.0);
  for (int i = 0; i < 30; ++i) {
    const std::vector<double> pt{dist(rng), dist(rng)};
    std::vector<double> out(1);
    prog.run(pt, out);
    EXPECT_NEAR(out[0], p.evaluate(pt), 1e-9 * (1.0 + std::abs(p.evaluate(pt))));
  }
}

TEST(LowerPolynomial, ZeroPolynomial) {
  ExprGraph g;
  const std::vector<NodeId> vars{g.input(0)};
  const auto root = lower_polynomial(g, Polynomial(1), vars);
  EXPECT_EQ(g.node(root).op, OpCode::kConst);
  EXPECT_DOUBLE_EQ(g.node(root).value, 0.0);
}

TEST(LowerRational, DividesNumeratorByDenominator) {
  const auto x0 = Polynomial::variable(1, 0);
  const RationalFunction rf(x0 + Polynomial::constant(1, 1.0),
                            x0 + Polynomial::constant(1, 2.0));
  ExprGraph g;
  const std::vector<NodeId> vars{g.input(0)};
  const auto root = lower_rational(g, rf, vars);
  CompiledProgram prog(g, std::vector<NodeId>{root});
  std::vector<double> out(1);
  prog.run(std::vector<double>{3.0}, out);
  EXPECT_NEAR(out[0], 4.0 / 5.0, 1e-12);
}

TEST(CompiledProgram, HornerOpCountBeatsTermByTerm) {
  // Dense degree-8 univariate polynomial: Horner should need ~8 mults +
  // 8 adds (plus constant loads), far below the naive 36 multiplications.
  std::vector<Term> terms;
  for (std::uint16_t e = 0; e <= 8; ++e)
    terms.push_back({Monomial{e}, static_cast<double>(e + 1)});
  const auto p = Polynomial::from_terms(1, std::move(terms));
  ExprGraph g;
  const std::vector<NodeId> vars{g.input(0)};
  const auto root = lower_polynomial(g, p, vars);
  CompiledProgram prog(g, std::vector<NodeId>{root});
  EXPECT_LE(prog.instruction_count(), 30u);
}

}  // namespace
}  // namespace awe::symbolic
