// Gradient-driven optimizer (engine/optimize, the awe_opt core): measures
// and their gradients, nominal re-centering, worst-case corner search, and
// the golden 741 yield-improvement scenario.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "circuits/fig1_rc.hpp"
#include "circuits/ladders.hpp"
#include "circuits/opamp741.hpp"
#include "core/awesymbolic.hpp"
#include "engine/optimize.hpp"
#include "engine/sweep.hpp"

namespace awe::opt {
namespace {

constexpr double kTwoPi = 6.283185307179586476925286766559;

core::CompiledModel ladder_model() {
  auto ladder = circuits::make_rc_ladder({.segments = 6});
  return core::CompiledModel::build(ladder.netlist, {"rdrv", "r2", "c3"},
                                    circuits::LadderCircuit::kInput, ladder.out,
                                    {.order = 2, .with_gradients = true});
}

TEST(Optimize, MeasureParsingRoundTrips) {
  for (const Measure m : {Measure::kDcGain, Measure::kElmoreDelay, Measure::kPole1Hz}) {
    Measure back;
    ASSERT_TRUE(parse_measure(to_string(m), back));
    EXPECT_EQ(back, m);
  }
  Measure ignored;
  EXPECT_FALSE(parse_measure("bogus", ignored));
}

TEST(Optimize, MeasureGradientsMatchFiniteDifferences) {
  const auto model = ladder_model();
  const std::vector<double> x{50.0, 100.0, 1e-12};
  for (const Measure m : {Measure::kDcGain, Measure::kElmoreDelay, Measure::kPole1Hz}) {
    const auto mv = eval_measure(model, m, x);
    for (std::size_t i = 0; i < x.size(); ++i) {
      const double h = 1e-6 * x[i];
      auto hi = x, lo = x;
      hi[i] += h;
      lo[i] -= h;
      const double fd =
          (eval_measure(model, m, hi).value - eval_measure(model, m, lo).value) /
          (2.0 * h);
      EXPECT_NEAR(mv.gradient[i], fd,
                  1e-4 * std::abs(fd) + 1e-9 * std::abs(mv.value / x[i]))
          << to_string(m) << " symbol " << i;
    }
  }
}

TEST(Optimize, RecenterHitsElmoreTarget) {
  const auto model = ladder_model();
  const std::vector<double> x0{50.0, 100.0, 1e-12};
  const double delay0 = eval_measure(model, Measure::kElmoreDelay, x0).value;
  ASSERT_GT(delay0, 0.0);

  RecenterOptions opts;
  opts.measure = Measure::kElmoreDelay;
  opts.target = 2.5 * delay0;  // slow the ladder down by 2.5x
  const auto res = recenter_nominal(model, opts, x0);
  EXPECT_TRUE(res.converged);
  EXPECT_NEAR(res.value, opts.target, 1e-8 * opts.target);
  for (const double v : res.x) EXPECT_GT(v, 0.0);  // log-space: stays positive
  // The residual history is monotone non-increasing (backtracking only
  // ever accepts improvements).
  for (std::size_t i = 1; i < res.residual_history.size(); ++i)
    EXPECT_LE(res.residual_history[i], res.residual_history[i - 1]);
}

TEST(Optimize, RecenterRejectsBadInputs) {
  const auto model = ladder_model();
  RecenterOptions opts;
  EXPECT_THROW(recenter_nominal(model, opts, std::vector<double>{1.0}),
               std::invalid_argument);  // wrong arity
  EXPECT_THROW(recenter_nominal(model, opts, std::vector<double>{1.0, -2.0, 3.0}),
               std::invalid_argument);  // negative start
}

TEST(Optimize, WorstCaseCornerFindsTheTrueExtreme) {
  // The Elmore delay of an RC ladder is monotone increasing in every R and
  // C, so the gradient-sign fixed point must land on the all-hi corner —
  // verified against brute force over all 2^3 corners, not just asserted.
  const auto model = ladder_model();
  const std::vector<double> nominal{50.0, 100.0, 1e-12};
  CornerSearchOptions opts;
  opts.measure = Measure::kElmoreDelay;
  opts.lo.resize(3);
  opts.hi.resize(3);
  for (std::size_t i = 0; i < 3; ++i) {
    opts.lo[i] = 0.7 * nominal[i];
    opts.hi[i] = 1.4 * nominal[i];
  }

  for (const bool maximize : {true, false}) {
    opts.maximize = maximize;
    const auto res = worst_case_corner(model, opts);
    EXPECT_TRUE(res.converged);
    double best = maximize ? -HUGE_VAL : HUGE_VAL;
    for (unsigned mask = 0; mask < 8; ++mask) {
      std::vector<double> x(3);
      for (std::size_t i = 0; i < 3; ++i)
        x[i] = (mask >> i) & 1 ? opts.hi[i] : opts.lo[i];
      const double v = eval_measure(model, Measure::kElmoreDelay, x).value;
      best = maximize ? std::max(best, v) : std::min(best, v);
    }
    EXPECT_DOUBLE_EQ(res.value, best) << (maximize ? "max" : "min");
  }
}

TEST(Optimize, Recenter741ImprovesYield) {
  // The golden awe_opt scenario: the 741 judged against a pole-location
  // spec TIGHTER than its design point (|Re p1|/2pi < 5 Hz while the
  // nominal sits near 6.5 Hz), so nearly every manufactured sample fails.
  // Re-centering the nominal onto a first-order pole target of 3 Hz with
  // the compiled gradients must recover most of the yield.
  auto amp = circuits::make_opamp741();
  const auto model = core::CompiledModel::build(
      amp.netlist,
      {circuits::Opamp741Circuit::kSymbolGout, circuits::Opamp741Circuit::kSymbolCcomp},
      circuits::Opamp741Circuit::kInput, amp.out, {.order = 2, .with_gradients = true});
  const circuits::Opamp741Values nom;
  const std::vector<double> x0{nom.gout_q14, nom.c_comp};

  const auto yield_at = [&](const std::vector<double>& center) {
    const std::vector<sweep::Distribution> process{
        sweep::Distribution::lognormal(center[0], 0.2),
        sweep::Distribution::lognormal(center[1], 0.2)};
    sweep::SweepOptions opts;
    opts.threads = 1;
    opts.with_rom = true;
    opts.pass_predicate = [](const engine::ReducedOrderModel& rom) {
      const auto p1 = rom.dominant_pole();
      return rom.is_stable() && p1.has_value() &&
             std::abs(p1->real()) / kTwoPi < 5.0;
    };
    return sweep::monte_carlo(model, process, 400, /*seed=*/1992, opts).yield();
  };

  const double yield_before = yield_at(x0);
  EXPECT_LT(yield_before, 0.5) << "spec should be tight at the design nominal";

  RecenterOptions ropts;
  ropts.measure = Measure::kPole1Hz;
  ropts.target = 3.0;
  const auto rec = recenter_nominal(model, ropts, x0);
  EXPECT_TRUE(rec.converged);
  EXPECT_NEAR(rec.value, 3.0, 1e-6);

  const double yield_after = yield_at(rec.x);
  EXPECT_GT(yield_after, yield_before + 0.3)
      << "recentering must demonstrably improve yield: " << yield_before << " -> "
      << yield_after;
  EXPECT_GT(yield_after, 0.8);
}

TEST(Optimize, RequiresGradientModel) {
  auto fig = circuits::make_fig1();
  const auto model = core::CompiledModel::build(
      fig.netlist, {"g2"}, circuits::Fig1Circuit::kInput, fig.v2, {.order = 2});
  EXPECT_THROW(eval_measure(model, Measure::kDcGain, std::vector<double>{1.0}),
               std::logic_error);
}

}  // namespace
}  // namespace awe::opt
