// Property tests for the batched SoA interpreter and the sweep engine's
// determinism guarantee: run_batch must match scalar run() BIT-FOR-BIT on
// every lane for any batch width (including odd remainder tails), and a
// sweep's results must be bit-identical whatever the thread count.
#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <random>
#include <vector>

#include "circuits/fig1_rc.hpp"
#include "core/awesymbolic.hpp"
#include "engine/sweep.hpp"
#include "symbolic/compile.hpp"
#include "symbolic/expr.hpp"

namespace awe {
namespace {

std::uint64_t bits(double v) { return std::bit_cast<std::uint64_t>(v); }

/// Random straight-line program over `ninputs` inputs.  Division is kept
/// pole-free (denominator b*b + c with c > 0) so lanes stay finite-ish;
/// bitwise comparison would survive inf/NaN anyway.
symbolic::CompiledProgram random_program(std::mt19937& rng, std::size_t ninputs,
                                         std::size_t nops, std::size_t nroots) {
  symbolic::ExprGraph g;
  std::vector<symbolic::NodeId> pool;
  for (std::size_t i = 0; i < ninputs; ++i)
    pool.push_back(g.input(static_cast<std::uint32_t>(i)));
  std::uniform_real_distribution<double> cdist(-1.5, 1.5);
  for (int i = 0; i < 4; ++i) pool.push_back(g.constant(cdist(rng)));

  std::uniform_int_distribution<std::size_t> op(0, 4);
  for (std::size_t i = 0; i < nops; ++i) {
    std::uniform_int_distribution<std::size_t> pick(0, pool.size() - 1);
    const auto a = pool[pick(rng)];
    const auto b = pool[pick(rng)];
    switch (op(rng)) {
      case 0: pool.push_back(g.add(a, b)); break;
      case 1: pool.push_back(g.sub(a, b)); break;
      case 2: pool.push_back(g.mul(a, b)); break;
      case 3: pool.push_back(g.div(a, g.add(g.mul(b, b), g.constant(0.25)))); break;
      default: pool.push_back(g.neg(a)); break;
    }
  }
  std::vector<symbolic::NodeId> roots;
  std::uniform_int_distribution<std::size_t> pick(0, pool.size() - 1);
  for (std::size_t k = 0; k < nroots; ++k) roots.push_back(pool[pick(rng)]);
  return symbolic::CompiledProgram(g, roots);
}

TEST(RunBatch, BitIdenticalToScalarAcrossWidthsAndTails) {
  std::mt19937 rng(2024);
  std::uniform_real_distribution<double> vdist(-2.0, 2.0);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t ninputs = 1 + trial % 4;
    const auto prog = random_program(rng, ninputs, 40 + 7 * trial, 3);
    const std::size_t nout = prog.output_count();

    // n chosen so every width below leaves an odd remainder tail.
    const std::size_t n = 131;
    std::vector<double> points(ninputs * n);
    for (double& v : points) v = vdist(rng);

    // Scalar reference, point by point.
    std::vector<double> ref(nout * n);
    std::vector<double> in(ninputs), out(nout);
    for (std::size_t p = 0; p < n; ++p) {
      for (std::size_t i = 0; i < ninputs; ++i) in[i] = points[i * n + p];
      prog.run(in, out);
      for (std::size_t k = 0; k < nout; ++k) ref[k * n + p] = out[k];
    }

    for (const std::size_t width : {std::size_t{1}, std::size_t{3}, std::size_t{8},
                                    std::size_t{64}}) {
      std::vector<double> soa_in(ninputs * width), soa_out(nout * width);
      std::vector<double> scratch(prog.register_count() * width);
      for (std::size_t b = 0; b < n; b += width) {
        const std::size_t w = std::min(width, n - b);
        for (std::size_t i = 0; i < ninputs; ++i)
          for (std::size_t l = 0; l < w; ++l) soa_in[i * w + l] = points[i * n + b + l];
        prog.run_batch(std::span<const double>(soa_in.data(), ninputs * w),
                       std::span<double>(soa_out.data(), nout * w),
                       std::span<double>(scratch.data(), prog.register_count() * w), w);
        for (std::size_t k = 0; k < nout; ++k)
          for (std::size_t l = 0; l < w; ++l)
            ASSERT_EQ(bits(soa_out[k * w + l]), bits(ref[k * n + b + l]))
                << "trial " << trial << " width " << width << " point " << b + l
                << " output " << k;
      }
    }
  }
}

TEST(RunBatch, RejectsUndersizedSpans) {
  std::mt19937 rng(5);
  const auto prog = random_program(rng, 2, 20, 2);
  std::vector<double> in(2 * 4), out(2 * 4), scratch(prog.register_count() * 4);
  EXPECT_NO_THROW(prog.run_batch(in, out, scratch, 4));
  EXPECT_THROW(prog.run_batch(std::span<const double>(in.data(), 3), out, scratch, 4),
               std::invalid_argument);
  EXPECT_THROW(prog.run_batch(in, std::span<double>(out.data(), 3), scratch, 4),
               std::invalid_argument);
  EXPECT_THROW(prog.run_batch(in, out, std::span<double>(scratch.data(), 1), 4),
               std::invalid_argument);
}

TEST(MomentsBatch, BitIdenticalToScalarMomentsAt) {
  auto fig = circuits::make_fig1();
  const auto model = core::CompiledModel::build(fig.netlist, {"g2", "c2"},
                                                circuits::Fig1Circuit::kInput, fig.v2,
                                                {.order = 2});
  const std::size_t nsym = model.symbol_count();
  const std::size_t nm = model.moment_count();
  const std::size_t n = 77;

  std::mt19937 rng(99);
  std::uniform_real_distribution<double> vdist(0.2, 3.0);
  std::vector<double> points(nsym * n);
  for (double& v : points) v = vdist(rng);

  std::vector<double> ref(nm * n);
  std::vector<double> vals(nsym);
  for (std::size_t p = 0; p < n; ++p) {
    for (std::size_t i = 0; i < nsym; ++i) vals[i] = points[i * n + p];
    const auto m = model.moments_at(vals);
    for (std::size_t k = 0; k < nm; ++k) ref[k * n + p] = m[k];
  }

  for (const std::size_t width : {std::size_t{1}, std::size_t{3}, std::size_t{8},
                                  std::size_t{64}}) {
    auto ws = model.make_batch_workspace(width);
    std::vector<double> out(nm * n, 0.0);
    std::vector<unsigned char> ok(n, 0);
    for (std::size_t b = 0; b < n; b += width) {
      const std::size_t w = std::min(width, n - b);
      model.moments_batch(std::span<const double>(points.data() + b, points.size() - b), n,
                          w, ws, std::span<double>(out.data() + b, out.size() - b), n,
                          std::span<unsigned char>(ok.data() + b, w));
    }
    for (std::size_t p = 0; p < n; ++p) ASSERT_TRUE(ok[p]);
    for (std::size_t k = 0; k < nm; ++k)
      for (std::size_t p = 0; p < n; ++p)
        ASSERT_EQ(bits(out[k * n + p]), bits(ref[k * n + p]))
            << "width " << width << " moment " << k << " point " << p;
  }
}

TEST(MomentsBatch, FlagsFailedLanesWhereScalarThrows) {
  // A lane where the scalar path throws must be flagged ok=0 without
  // poisoning its neighbors.  g2 = 0 makes the output float at DC, so
  // det(Y0) — a multiple of g2 — evaluates to exactly zero there.
  auto fig = circuits::make_fig1();
  const auto model = core::CompiledModel::build(fig.netlist, {"g2", "c2"},
                                                circuits::Fig1Circuit::kInput, fig.v2,
                                                {.order = 1});
  const std::size_t n = 5;
  std::vector<double> points{1.0, 0.0, 2.0, 1.5, 0.5,   // g2 row (point 1 singular)
                             1.0, 1.0, 1.0, 1.0, 1.0};  // c2 row
  auto ws = model.make_batch_workspace(n);
  std::vector<double> out(model.moment_count() * n);
  std::vector<unsigned char> ok(n, 1);
  model.moments_batch(points, n, n, ws, out, n, ok);
  EXPECT_FALSE(ok[1]);
  for (const std::size_t p : {0u, 2u, 3u, 4u}) {
    EXPECT_TRUE(ok[p]);
    const auto ref = model.moments_at(std::vector<double>{points[p], 1.0});
    for (std::size_t k = 0; k < model.moment_count(); ++k)
      EXPECT_EQ(bits(out[k * n + p]), bits(ref[k]));
  }
  EXPECT_THROW(model.moments_at(std::vector<double>{0.0, 1.0}), std::domain_error);
}

TEST(SweepDeterminism, IdenticalAcrossThreadCountsAndBatchWidths) {
  auto fig = circuits::make_fig1();
  const auto model = core::CompiledModel::build(fig.netlist, {"g2", "c2"},
                                                circuits::Fig1Circuit::kInput, fig.v2,
                                                {.order = 2});
  const std::vector<sweep::Distribution> dists{sweep::Distribution::uniform(0.3, 3.0),
                                               sweep::Distribution::lognormal(1.0, 0.3)};
  const std::size_t n = 501;  // odd => remainder tails at every width

  sweep::SweepOptions base;
  base.threads = 1;
  base.batch_width = 64;
  base.with_rom = true;
  base.pass_predicate = [](const engine::ReducedOrderModel& rom) {
    return rom.is_stable();
  };
  const auto ref = sweep::monte_carlo(model, dists, n, 7, base);
  ASSERT_EQ(ref.num_points, n);
  ASSERT_EQ(ref.ok_count, n);

  for (const std::size_t threads : {std::size_t{2}, std::size_t{8}}) {
    for (const std::size_t width : {std::size_t{1}, std::size_t{3}, std::size_t{64}}) {
      sweep::SweepOptions opts = base;
      opts.threads = threads;
      opts.batch_width = width;
      const auto got = sweep::monte_carlo(model, dists, n, 7, opts);
      ASSERT_EQ(got.points.size(), ref.points.size());
      for (std::size_t i = 0; i < ref.points.size(); ++i)
        ASSERT_EQ(bits(got.points[i]), bits(ref.points[i]));
      for (std::size_t i = 0; i < ref.moments.size(); ++i)
        ASSERT_EQ(bits(got.moments[i]), bits(ref.moments[i]))
            << "threads " << threads << " width " << width << " slot " << i;
      ASSERT_EQ(got.pass, ref.pass);
      ASSERT_EQ(got.ok, ref.ok);
      ASSERT_EQ(got.pass_count, ref.pass_count);
      ASSERT_TRUE(got.rom && ref.rom);
      for (std::size_t i = 0; i < ref.rom->dc_gain.size(); ++i)
        ASSERT_EQ(bits(got.rom->dc_gain[i]), bits(ref.rom->dc_gain[i]));
      for (std::size_t i = 0; i < ref.rom->poles.size(); ++i) {
        ASSERT_EQ(bits(got.rom->poles[i].real()), bits(ref.rom->poles[i].real()));
        ASSERT_EQ(bits(got.rom->poles[i].imag()), bits(ref.rom->poles[i].imag()));
      }
      for (std::size_t k = 0; k < ref.moment_stats.size(); ++k) {
        ASSERT_EQ(bits(got.moment_stats[k].mean), bits(ref.moment_stats[k].mean));
        ASSERT_EQ(bits(got.moment_stats[k].stddev), bits(ref.moment_stats[k].stddev));
      }
    }
  }
}

}  // namespace
}  // namespace awe
