// Parser error-path audit: every diagnostic must carry the line number of
// the offending card (or, for unterminated blocks, of the opening line),
// so fuzzer-minimized decks and user decks alike fail with an actionable
// message.
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "circuit/parser.hpp"

namespace awe::circuit {
namespace {

/// Parse and return the diagnostic, asserting it mentions `line`.
std::string diag_at(const std::string& deck, std::size_t line) {
  try {
    parse_deck_string(deck);
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("netlist line " + std::to_string(line) + ":"), std::string::npos)
        << "diagnostic '" << what << "' does not point at line " << line;
    return what;
  }
  ADD_FAILURE() << "deck parsed cleanly:\n" << deck;
  return {};
}

TEST(ParserDiagnostics, MalformedCardReportsItsLine) {
  const auto what = diag_at("* title\nr1 1 0 1k\nc1 1\nr2 1 0 2k\n.end\n", 3);
  EXPECT_NE(what.find("expected at least 3 fields"), std::string::npos) << what;
}

TEST(ParserDiagnostics, BadValueSuffixReportsItsLine) {
  const auto what = diag_at("* title\nr1 1 0 1k\nc2 1 0 10q#\n.end\n", 3);
  EXPECT_NE(what.find("bad numeric value"), std::string::npos) << what;
}

TEST(ParserDiagnostics, UnknownCardReportsItsLine) {
  diag_at("* title\nr1 1 0 1k\nq1 1 0 2 model\n.end\n", 3);
}

TEST(ParserDiagnostics, UnknownDirectiveReportsItsLine) {
  diag_at("* title\nr1 1 0 1k\n.tran 1n 1u\n.end\n", 3);
}

TEST(ParserDiagnostics, NegativeResistanceReportsItsLine) {
  const auto what = diag_at("* title\nr1 1 0 1k\nr2 1 0 -5\n.end\n", 3);
  EXPECT_NE(what.find("positive resistance"), std::string::npos) << what;
}

TEST(ParserDiagnostics, DuplicateElementReportsItsLine) {
  diag_at("* title\nr1 1 0 1k\nr1 2 0 2k\n.end\n", 3);
}

TEST(ParserDiagnostics, UnterminatedSubcktReportsTheOpeningLine) {
  // The .subckt opens on line 4 and never closes; pointing at EOF would
  // send the user to the wrong end of the file.
  const auto what = diag_at("* title\nr1 1 0 1k\n\n.subckt pi a b\nrs a b 1k\n", 4);
  EXPECT_NE(what.find("unterminated .subckt 'pi'"), std::string::npos) << what;
}

TEST(ParserDiagnostics, DuplicateSubcktReportsTheSecondDefinition) {
  const auto what = diag_at(
      "* title\n.subckt pi a b\nrs a b 1k\n.ends\n.subckt pi a b\nrs a b 1k\n.ends\n"
      "r1 1 0 1k\n.end\n",
      5);
  EXPECT_NE(what.find("duplicate .subckt 'pi'"), std::string::npos) << what;
}

TEST(ParserDiagnostics, EndsWithoutSubcktReportsItsLine) {
  diag_at("* title\nr1 1 0 1k\n.ends\n.end\n", 3);
}

TEST(ParserDiagnostics, DirectiveInsideSubcktReportsItsLine) {
  diag_at("* title\n.subckt pi a b\n.symbol rs\nrs a b 1k\n.ends\nr1 1 0 1\n.end\n", 3);
}

TEST(ParserDiagnostics, InstanceArityMismatchReportsTheInstanceLine) {
  const auto what = diag_at(
      "* title\n.subckt pi a b\nrs a b 1k\n.ends\nr1 1 0 1k\nx1 1 2 3 pi\n.end\n", 6);
  EXPECT_NE(what.find("expects 2 nodes, got 3"), std::string::npos) << what;
}

TEST(ParserDiagnostics, UnknownSubcktReportsTheInstanceLine) {
  diag_at("* title\nr1 1 0 1k\nx1 1 2 nosuch\n.end\n", 3);
}

TEST(ParserDiagnostics, BadCardInsideSubcktReportsTheBodyLine) {
  // The instance is on line 6, but the broken card lives on line 3 of the
  // definition body — that is where the fix goes.
  const auto what =
      diag_at("* title\n.subckt pi a b\nrs a b nope!\n.ends\nr1 1 0 1k\nx1 1 2 pi\n.end\n", 3);
  EXPECT_NE(what.find("bad numeric value"), std::string::npos) << what;
}

TEST(ParserDiagnostics, ContentAfterEndReportsItsLine) {
  diag_at("* title\nr1 1 0 1k\n.end\nr2 1 0 2k\n", 4);
}

TEST(ParserDiagnostics, MutualCouplingRangeReportsItsLine) {
  const auto what = diag_at(
      "* title\nr1 1 0 1k\nl1 1 2 1n\nl2 2 0 1n\nk1 l1 l2 1.5\n.end\n", 5);
  EXPECT_NE(what.find("coupling"), std::string::npos) << what;
}

TEST(ParserDiagnostics, DottedNameClassifiesByBasename) {
  // Flattened hierarchical names (writer output for expanded instances)
  // parse as their basename kind, not as X instance cards.
  const auto deck = parse_deck_string(
      "* flat\nvin in 0 1\nx1.rs1 in x1.m 1k\nx1.cs1 x1.m 0 1p\n.end\n");
  ASSERT_EQ(deck.netlist.elements().size(), 3u);
  EXPECT_EQ(deck.netlist.elements()[1].kind, ElementKind::kResistor);
  EXPECT_EQ(deck.netlist.elements()[1].name, "x1.rs1");
  EXPECT_EQ(deck.netlist.elements()[2].kind, ElementKind::kCapacitor);
}

}  // namespace
}  // namespace awe::circuit
