// N-port AWE macromodels: port admittance moments and pole/residue fits.
#include <gtest/gtest.h>

#include <cmath>
#include <complex>
#include <string>
#include <utility>
#include <vector>

#include "engine/thread_pool.hpp"
#include "partition/macromodel.hpp"
#include "partition/port_moments.hpp"

namespace awe::part {
namespace {

using circuit::kGround;
using circuit::Netlist;

TEST(PortMoments, SingleResistorBetweenPorts) {
  Netlist nl;
  const auto a = nl.node("a");
  const auto b = nl.node("b");
  nl.add_resistor("r1", a, b, 500.0);
  const auto yk = port_admittance_moments(nl, {a, b}, 3);
  const double g = 1.0 / 500.0;
  EXPECT_NEAR(yk[0][0], g, 1e-12);
  EXPECT_NEAR(yk[0][1], -g, 1e-12);
  EXPECT_NEAR(yk[0][2], -g, 1e-12);
  EXPECT_NEAR(yk[0][3], g, 1e-12);
  for (int i = 0; i < 4; ++i) EXPECT_NEAR(yk[1][i], 0.0, 1e-18);
  EXPECT_THROW(port_admittance_moments(nl, {}, 2), std::invalid_argument);
  EXPECT_THROW(port_admittance_moments(nl, {kGround}, 2), std::invalid_argument);
}

TEST(PortMoments, ReciprocityOfRcNetworks) {
  // Passive reciprocal network -> every Y_k block is symmetric.
  Netlist nl;
  const auto a = nl.node("a");
  const auto b = nl.node("b");
  const auto m = nl.node("m");
  nl.add_resistor("r1", a, m, 100.0);
  nl.add_resistor("r2", m, b, 300.0);
  nl.add_capacitor("c1", m, kGround, 2e-12);
  nl.add_capacitor("c2", a, b, 1e-12);
  const auto yk = port_admittance_moments(nl, {a, b}, 5);
  for (std::size_t k = 0; k < 5; ++k)
    EXPECT_NEAR(yk[k][0 * 2 + 1], yk[k][1 * 2 + 0],
                1e-12 * (std::abs(yk[k][1]) + 1e-20))
        << "k=" << k;
}

TEST(PortMoments, InternalSourcesAreZeroed) {
  Netlist nl;
  const auto a = nl.node("a");
  nl.add_resistor("r1", a, kGround, 1e3);
  nl.add_voltage_source("vbias", nl.node("x"), kGround, 5.0);
  nl.add_resistor("rx", nl.node("x"), a, 1e3);
  const auto yk = port_admittance_moments(nl, {a}, 2);
  // With vbias zeroed (short), looking into a: 1k || 1k = 500 ohm.
  EXPECT_NEAR(yk[0][0], 1.0 / 500.0, 1e-12);
}

TEST(Macromodel, OnePortRcExactFit) {
  // Port --R-- internal node --C-- ground:
  //   y(s) = sC/(1+sRC) = 1/R - (1/(R^2 C)) / (s + 1/(RC)).
  const double r = 1e3, cap = 1e-9;
  Netlist nl;
  const auto p = nl.node("p");
  const auto m = nl.node("m");
  nl.add_resistor("r1", p, m, r);
  nl.add_capacitor("c1", m, kGround, cap);
  const auto mm = PortMacromodel::build(nl, {p}, {.order = 2, .moments = 8});
  ASSERT_EQ(mm.port_count(), 1u);
  const auto& e = mm.entry(0, 0);
  // One physical pole (order fallback may keep just it).
  ASSERT_GE(e.poles.size(), 1u);
  double best = 1e300;
  for (const auto& pole : e.poles) best = std::min(best, std::abs(pole - (-1.0 / (r * cap))));
  EXPECT_LT(best, 1e-3 / (r * cap));
  EXPECT_NEAR(e.d0, 1.0 / r, 1e-6 / r);
  // Frequency-domain agreement with the exact formula.
  for (const double f : {1e3, 1e5, 1e6, 1e8}) {
    const std::complex<double> s{0.0, 2 * M_PI * f};
    const auto exact = s * cap / (1.0 + s * r * cap);
    const auto got = mm.admittance(0, 0, s);
    EXPECT_LT(std::abs(got - exact), 1e-4 * std::abs(exact) + 1e-15) << "f=" << f;
  }
}

TEST(Macromodel, FrequencyFlatEntries) {
  // Pure RC at the port plane with no internal dynamics: y11 = G + sC.
  Netlist nl;
  const auto a = nl.node("a");
  const auto b = nl.node("b");
  nl.add_resistor("r1", a, b, 2e3);
  nl.add_capacitor("c1", a, kGround, 3e-12);
  const auto mm = PortMacromodel::build(nl, {a, b}, {.order = 2, .moments = 6});
  const auto& e00 = mm.entry(0, 0);
  EXPECT_TRUE(e00.poles.empty());
  EXPECT_NEAR(e00.d0, 1.0 / 2e3, 1e-15);
  EXPECT_NEAR(e00.d1, 3e-12, 1e-24);
  const auto& e01 = mm.entry(0, 1);
  EXPECT_NEAR(e01.d0, -1.0 / 2e3, 1e-15);
  EXPECT_NEAR(e01.d1, 0.0, 1e-24);
}

TEST(Macromodel, TwoPortPiNetworkMatchesExact) {
  // p1 --R1-- m --R2-- p2 with C at m: classic bridged-tee entry behavior.
  const double r1 = 100.0, r2 = 300.0, cm = 5e-12;
  Netlist nl;
  const auto p1 = nl.node("p1");
  const auto p2 = nl.node("p2");
  const auto m = nl.node("m");
  nl.add_resistor("r1", p1, m, r1);
  nl.add_resistor("r2", m, p2, r2);
  nl.add_capacitor("cm", m, kGround, cm);
  const auto mm = PortMacromodel::build(nl, {p1, p2}, {.order = 2, .moments = 8});

  // Exact 2-port Y by elimination of node m:
  //   y_m = 1/r1 + 1/r2 + sC;  y11 = g1 - g1^2/y_m;  y12 = -g1 g2 / y_m.
  for (const double f : {1e5, 1e7, 1e9}) {
    const std::complex<double> s{0.0, 2 * M_PI * f};
    const std::complex<double> ym = 1.0 / r1 + 1.0 / r2 + s * cm;
    const std::complex<double> y11 = 1.0 / r1 - (1.0 / r1) * (1.0 / r1) / ym;
    const std::complex<double> y12 = -(1.0 / r1) * (1.0 / r2) / ym;
    EXPECT_LT(std::abs(mm.admittance(0, 0, s) - y11), 1e-6 * std::abs(y11)) << f;
    EXPECT_LT(std::abs(mm.admittance(0, 1, s) - y12), 1e-6 * std::abs(y12)) << f;
    EXPECT_LT(std::abs(mm.admittance(1, 0, s) - mm.admittance(0, 1, s)),
              1e-12 * std::abs(y12));
  }
}

TEST(Macromodel, LadderReductionAccuracy) {
  // Reduce a 30-segment RC ladder seen from its two ends to order 3 and
  // check the transfer admittance across two decades.
  Netlist nl;
  auto prev = nl.node("p1");
  for (int i = 0; i < 30; ++i) {
    const auto n = (i == 29) ? nl.node("p2") : nl.node("n" + std::to_string(i));
    nl.add_resistor("r" + std::to_string(i), prev, n, 50.0);
    nl.add_capacitor("c" + std::to_string(i), n, kGround, 0.2e-12);
    prev = n;
  }
  const auto a = *nl.find_node("p1");
  const auto b = *nl.find_node("p2");
  const auto mm = PortMacromodel::build(nl, {a, b}, {.order = 3, .moments = 10});
  // Reference: moment blocks re-summed at low frequency (series converges
  // for f << 1/(2 pi R_total C_total)).
  const auto& yk = mm.moment_blocks();
  for (const double f : {1e6, 1e7}) {
    const std::complex<double> s{0.0, 2 * M_PI * f};
    std::complex<double> ref{0, 0};
    std::complex<double> sk{1, 0};
    for (std::size_t k = 0; k < yk.size(); ++k) {
      ref += yk[k][0 * 2 + 1] * sk;
      sk *= s;
    }
    const auto got = mm.admittance(0, 1, s);
    EXPECT_LT(std::abs(got - ref), 1e-3 * std::abs(ref)) << "f=" << f;
  }
}

TEST(Macromodel, BuildManyMatchesPerPartitionBuilds) {
  // Six RC ladder sections of different lengths; the pooled batch build
  // must be bit-identical to six serial single builds.
  std::vector<Netlist> sections;
  std::vector<PortMacromodel::PartitionSpec> parts;
  sections.reserve(6);
  for (int s = 0; s < 6; ++s) {
    Netlist nl;
    auto prev = nl.node("in");
    const int len = 5 + 3 * s;
    for (int i = 0; i < len; ++i) {
      const auto n = (i == len - 1) ? nl.node("out") : nl.node("n" + std::to_string(i));
      nl.add_resistor("r" + std::to_string(i), prev, n, 40.0 + s);
      nl.add_capacitor("c" + std::to_string(i), n, kGround, (0.1 + 0.02 * s) * 1e-12);
      prev = n;
    }
    sections.push_back(std::move(nl));
  }
  for (Netlist& nl : sections)
    parts.push_back({&nl, {*nl.find_node("in"), *nl.find_node("out")}});

  const PortMacromodel::Options opts{.order = 2, .moments = 8};
  sweep::ThreadPool pool(3);
  const auto pooled = PortMacromodel::build_many(parts, opts, &pool);
  ASSERT_EQ(pooled.size(), parts.size());
  for (std::size_t i = 0; i < parts.size(); ++i) {
    const auto single = PortMacromodel::build(*parts[i].netlist, parts[i].ports, opts);
    ASSERT_EQ(pooled[i].port_count(), single.port_count()) << i;
    EXPECT_EQ(pooled[i].moment_blocks(), single.moment_blocks()) << i;
    for (std::size_t r = 0; r < 2; ++r)
      for (std::size_t c = 0; c < 2; ++c) {
        const auto& a = pooled[i].entry(r, c);
        const auto& b = single.entry(r, c);
        EXPECT_EQ(a.d0, b.d0) << i;
        EXPECT_EQ(a.d1, b.d1) << i;
        EXPECT_EQ(a.poles, b.poles) << i;
        EXPECT_EQ(a.residues, b.residues) << i;
      }
  }
}

TEST(Macromodel, BuildManyValidationAndFailurePropagation) {
  EXPECT_TRUE(PortMacromodel::build_many({}, {.order = 1}).empty());
  EXPECT_THROW(PortMacromodel::build_many({{nullptr, {}}}, {.order = 1}),
               std::invalid_argument);

  // One healthy partition plus one whose port is DC-shorted by an ideal
  // inductor: the batch rethrows the partition failure.
  Netlist good;
  good.add_resistor("r1", good.node("a"), kGround, 1e3);
  Netlist bad;
  bad.add_inductor("l1", bad.node("a"), kGround, 1e-9);
  std::vector<PortMacromodel::PartitionSpec> parts{
      {&good, {*good.find_node("a")}}, {&bad, {*bad.find_node("a")}}};
  sweep::ThreadPool pool(2);
  EXPECT_THROW(PortMacromodel::build_many(parts, {.order = 1}, &pool),
               std::runtime_error);
  EXPECT_THROW(PortMacromodel::build_many(parts, {.order = 1}), std::runtime_error);
}

TEST(Macromodel, Validation) {
  Netlist nl;
  nl.add_resistor("r1", nl.node("a"), kGround, 1.0);
  EXPECT_THROW(PortMacromodel::build(nl, {*nl.find_node("a")}, {.order = 0}),
               std::invalid_argument);
  const auto mm = PortMacromodel::build(nl, {*nl.find_node("a")}, {.order = 1});
  EXPECT_THROW(mm.entry(1, 0), std::out_of_range);
}

}  // namespace
}  // namespace awe::part
