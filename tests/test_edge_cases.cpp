// Assorted edge cases and failure paths across the stack.
#include <gtest/gtest.h>

#include <cmath>

#include "awe/ac.hpp"
#include "awe/awe.hpp"
#include "awe/pade.hpp"
#include "circuit/mna.hpp"
#include "circuits/fig1_rc.hpp"
#include "core/awesymbolic.hpp"
#include "linalg/eig.hpp"
#include "linalg/lu.hpp"
#include "linalg/sparse_lu.hpp"
#include "symbolic/compile.hpp"
#include "transim/transim.hpp"

namespace awe {
namespace {

using circuit::kGround;
using circuit::Netlist;

TEST(EdgeCases, TinyMatrices) {
  // 1x1 systems everywhere.
  linalg::Matrix a{{4.0}};
  auto lu = linalg::LuFactorization::factor(a);
  ASSERT_TRUE(lu.has_value());
  EXPECT_DOUBLE_EQ(lu->solve({8.0})[0], 2.0);
  EXPECT_DOUBLE_EQ(lu->determinant(), 4.0);

  linalg::TripletMatrix t(1, 1);
  t.add(0, 0, 3.0);
  auto slu = linalg::SparseLu::factor(t.compress());
  ASSERT_TRUE(slu.has_value());
  EXPECT_DOUBLE_EQ(slu->solve({6.0})[0], 2.0);

  EXPECT_TRUE(linalg::eigenvalues(linalg::Matrix(0, 0)).empty());
  const auto e1 = linalg::eigenvalues(linalg::Matrix{{7.0}});
  ASSERT_EQ(e1.size(), 1u);
  EXPECT_DOUBLE_EQ(e1[0].real(), 7.0);
}

TEST(EdgeCases, Eigenvalues2x2DefectiveLike) {
  // Jordan-block-like matrix (defective): eigenvalues still correct.
  linalg::Matrix a{{2.0, 1.0}, {0.0, 2.0}};
  const auto e = linalg::eigenvalues(a);
  ASSERT_EQ(e.size(), 2u);
  EXPECT_NEAR(e[0].real(), 2.0, 1e-6);
  EXPECT_NEAR(e[1].real(), 2.0, 1e-6);
}

TEST(EdgeCases, PadeRepeatedPoleRecoversDenominator) {
  // Moments of 1/(1+s)^2: m_k = (-1)^k (k+1) — a repeated pole at -1.
  // The denominator must come out as (1+s)^2 = 1 + 2s + s^2; the residue
  // form either throws (exact repetition) or splits the pole into a
  // nearly-coincident pair whose rational evaluation stays faithful.
  std::vector<double> m{1.0, -2.0, 3.0, -4.0};
  try {
    const auto pade = engine::pade_from_moments(m, 2);
    ASSERT_EQ(pade.denominator.size(), 3u);
    EXPECT_NEAR(pade.denominator[1], 2.0, 1e-6);
    EXPECT_NEAR(pade.denominator[2], 1.0, 1e-6);
    EXPECT_NEAR(evaluate_pade(pade, {0.0, 0.0}).real(), 1.0, 1e-9);
    EXPECT_NEAR(evaluate_pade(pade, {1.0, 0.0}).real(), 0.25, 1e-6);
  } catch (const std::runtime_error&) {
    SUCCEED();  // exact repetition detected — also acceptable
  }
}

TEST(EdgeCases, MomentGeneratorZeroCount) {
  auto fig = circuits::make_fig1();
  engine::MomentGenerator gen(fig.netlist);
  EXPECT_TRUE(gen.transfer_moments("vin", fig.v2, 0).empty());
  EXPECT_TRUE(gen.state_moments("vin", 0).empty());
  EXPECT_TRUE(gen.adjoint_moments(fig.v2, 0).empty());
}

TEST(EdgeCases, TransimSineSteadyStateMatchesAc) {
  // Drive an RC with a sine, compare the settled amplitude to |H(jw)|.
  Netlist nl;
  const auto in = nl.node("in");
  const auto out = nl.node("out");
  nl.add_voltage_source("vin", in, kGround, 0.0);
  nl.add_resistor("r1", in, out, 1e3);
  nl.add_capacitor("c1", out, kGround, 1e-9);
  const double f = 200e3;

  transim::TransientSimulator sim(nl);
  sim.set_waveform("vin", transim::sine(1.0, f));
  transim::TransientOptions opts;
  opts.t_stop = 40e-6;  // many periods + settle
  opts.dt = 5e-9;
  const auto res = sim.run(opts);
  const auto v = res.node_voltage(sim.layout(), out);
  double amp = 0.0;
  for (std::size_t k = v.size() / 2; k < v.size(); ++k) amp = std::max(amp, std::abs(v[k]));

  engine::AcAnalysis ac(nl, "vin", out);
  EXPECT_NEAR(amp, std::abs(ac.transfer(f)), 2e-3);
}

TEST(EdgeCases, TransimPwlRampIntoRc) {
  // PWL ramp then hold: final value equals the hold level.
  Netlist nl;
  const auto in = nl.node("in");
  const auto out = nl.node("out");
  nl.add_voltage_source("vin", in, kGround, 0.0);
  nl.add_resistor("r1", in, out, 100.0);
  nl.add_capacitor("c1", out, kGround, 1e-9);
  transim::TransientSimulator sim(nl);
  sim.set_waveform("vin", transim::pwl({{0.0, 0.0}, {1e-7, 2.5}, {1e-6, 2.5}}));
  transim::TransientOptions opts;
  opts.t_stop = 2e-6;
  opts.dt = 1e-9;
  const auto res = sim.run(opts);
  EXPECT_NEAR(res.node_voltage(sim.layout(), out).back(), 2.5, 1e-6);
}

TEST(EdgeCases, CompiledProgramSingleConstantRoot) {
  symbolic::ExprGraph g;
  const auto root = g.constant(42.0);
  symbolic::CompiledProgram prog(g, std::vector<symbolic::NodeId>{root});
  std::vector<double> out(1);
  prog.run(std::vector<double>{}, out);
  EXPECT_DOUBLE_EQ(out[0], 42.0);
}

TEST(EdgeCases, CompiledProgramDuplicateRoots) {
  symbolic::ExprGraph g;
  const auto x = g.input(0);
  const auto r = g.mul(x, x);
  symbolic::CompiledProgram prog(g, std::vector<symbolic::NodeId>{r, r, x});
  std::vector<double> out(3);
  prog.run(std::vector<double>{3.0}, out);
  EXPECT_DOUBLE_EQ(out[0], 9.0);
  EXPECT_DOUBLE_EQ(out[1], 9.0);
  EXPECT_DOUBLE_EQ(out[2], 3.0);
}

TEST(EdgeCases, ScratchTooSmallRejected) {
  symbolic::ExprGraph g;
  const auto r = g.add(g.input(0), g.constant(1.0));
  symbolic::CompiledProgram prog(g, std::vector<symbolic::NodeId>{r});
  std::vector<double> out(1), scratch;
  EXPECT_THROW(prog.run_with_scratch(std::vector<double>{1.0}, out, scratch),
               std::invalid_argument);
  std::vector<double> in;
  std::vector<double> scratch2(prog.register_count());
  EXPECT_THROW(prog.run_with_scratch(in, out, scratch2), std::invalid_argument);
}

TEST(EdgeCases, VcvsLoopHasUniqueSolution) {
  // Two VCVS in a ring with attenuation < 1 is solvable; gain 1 ring with
  // a forcing conflict would be singular — check both behaviors.
  Netlist nl;
  const auto a = nl.node("a");
  const auto b = nl.node("b");
  nl.add_voltage_source("vin", nl.node("in"), kGround, 1.0);
  nl.add_resistor("rin", nl.node("in"), a, 1e3);
  nl.add_vcvs("e1", b, kGround, a, kGround, 0.5);
  nl.add_resistor("rfb", b, a, 1e3);
  circuit::MnaAssembler asem(nl);
  auto lu = linalg::SparseLu::factor(asem.build_g());
  ASSERT_TRUE(lu.has_value());
  const auto x = lu->solve(asem.rhs("vin", 1.0));
  // KVL: v_a = (v_in + v_b)/2 with v_b = v_a/2 -> v_a = 2/3, v_b = 1/3.
  EXPECT_NEAR(x[asem.layout().node_unknown(a)], 2.0 / 3.0, 1e-9);
  EXPECT_NEAR(x[asem.layout().node_unknown(b)], 1.0 / 3.0, 1e-9);
}

TEST(EdgeCases, CompiledModelOrderHigherThanCircuit) {
  // Requesting order 4 of a 2-pole circuit: symbolic moments exist, Padé
  // falls back to the feasible order at evaluation.
  auto fig = circuits::make_fig1();
  const auto model = core::CompiledModel::build(fig.netlist, {"g2"},
                                                circuits::Fig1Circuit::kInput, fig.v2,
                                                {.order = 4});
  const auto rom = model.evaluate(std::vector<double>{1.0});
  EXPECT_LE(rom.order(), 2u);
  EXPECT_NEAR(rom.dc_gain(), 1.0, 1e-9);
}

TEST(EdgeCases, AcAtZeroFrequencyEqualsDcSolve) {
  auto fig = circuits::make_fig1();
  engine::AcAnalysis ac(fig.netlist, "vin", fig.v2);
  const auto h0 = ac.transfer(0.0);
  EXPECT_NEAR(h0.real(), 1.0, 1e-12);
  EXPECT_NEAR(h0.imag(), 0.0, 1e-12);
}

TEST(EdgeCases, SelfLoopResistorHasNoEffect) {
  Netlist nl;
  const auto a = nl.node("a");
  nl.add_voltage_source("vin", nl.node("in"), kGround, 1.0);
  nl.add_resistor("r1", nl.node("in"), a, 1e3);
  nl.add_resistor("rload", a, kGround, 1e3);
  nl.add_resistor("rself", a, a, 50.0);  // self loop: stamps cancel
  circuit::MnaAssembler asem(nl);
  auto lu = linalg::SparseLu::factor(asem.build_g());
  ASSERT_TRUE(lu.has_value());
  const auto x = lu->solve(asem.rhs("vin", 1.0));
  EXPECT_NEAR(x[asem.layout().node_unknown(a)], 0.5, 1e-12);
}

}  // namespace
}  // namespace awe
