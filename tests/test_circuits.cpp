#include <gtest/gtest.h>

#include <cmath>

#include "awe/awe.hpp"
#include "circuits/coupled_lines.hpp"
#include "circuits/fig1_rc.hpp"
#include "circuits/ladders.hpp"
#include "circuits/opamp741.hpp"

namespace awe::circuits {
namespace {

TEST(Fig1, StructureAndExactness) {
  auto fig = make_fig1();
  EXPECT_EQ(fig.netlist.elements().size(), 5u);
  EXPECT_TRUE(fig.netlist.validate().empty());
}

TEST(Opamp741, MatchesPaperStatistics) {
  auto amp = make_opamp741();
  // "the small signal circuit contains 170 linear elements, 62 of which
  // are energy storage elements"
  EXPECT_EQ(amp.netlist.elements().size(), 170u);
  EXPECT_EQ(amp.netlist.num_storage_elements(), 62u);
  EXPECT_TRUE(amp.netlist.validate().empty());
}

TEST(Opamp741, DcGainAndBandwidthInDesignRange) {
  auto amp = make_opamp741();
  const auto rom = engine::run_awe(amp.netlist, Opamp741Circuit::kInput, amp.out,
                                   {.order = 2});
  const double a0 = std::abs(rom.dc_gain());
  // Classic 741: gain ~ 2e5 (within a factor of a few), f_unity ~ 1 MHz.
  EXPECT_GT(a0, 3e4);
  EXPECT_LT(a0, 2e6);
  const double fu = rom.unity_gain_frequency();
  EXPECT_GT(fu, 1e5);
  EXPECT_LT(fu, 1e7);
  // Dominant pole in the Hz..tens-of-Hz range.
  const auto p1 = rom.dominant_pole();
  ASSERT_TRUE(p1.has_value());
  const double f1 = std::abs(p1->real()) / (2 * M_PI);
  EXPECT_GT(f1, 0.2);
  EXPECT_LT(f1, 200.0);
  EXPECT_TRUE(rom.is_stable());
}

TEST(Opamp741, StableAcrossSymbolRange) {
  // Paper: "The symbolic form is stable for all values of gout_q14 and
  // c_comp, as is the case with the real circuit."
  for (const double gout : {1.0 / 300.0, 1.0 / 75.0, 1.0 / 20.0}) {
    for (const double cc : {10e-12, 30e-12, 100e-12}) {
      Opamp741Values v;
      v.gout_q14 = gout;
      v.c_comp = cc;
      auto amp = make_opamp741(v);
      const auto rom = engine::run_awe(amp.netlist, Opamp741Circuit::kInput, amp.out,
                                       {.order = 2, .enforce_stability = false});
      EXPECT_TRUE(rom.is_stable()) << "gout=" << gout << " cc=" << cc;
    }
  }
}

TEST(CoupledLines, StructureScalesWithSegments) {
  CoupledLineValues v;
  v.segments = 10;
  auto c = make_coupled_lines(v);
  // 2 sources + 2 drivers' R + 2*(10 R + 10 C) + 10 coupling + 2 loads
  EXPECT_EQ(c.netlist.elements().size(), 2u + 2u + 40u + 10u + 2u);
  EXPECT_TRUE(c.netlist.validate().empty());
  EXPECT_THROW(make_coupled_lines({.segments = 0}), std::invalid_argument);
}

TEST(CoupledLines, DirectTransmissionIsMonotoneLowPass) {
  CoupledLineValues v;
  v.segments = 50;
  auto c = make_coupled_lines(v);
  const auto rom = engine::run_awe(c.netlist, CoupledLinesCircuit::kInput, c.line1_out,
                                   {.order = 1});
  EXPECT_NEAR(rom.dc_gain(), 1.0, 1e-6);
  EXPECT_TRUE(rom.is_stable());
}

TEST(CoupledLines, CrosstalkDcIsZeroAndTransientNonMonotonic) {
  CoupledLineValues v;
  v.segments = 50;
  auto c = make_coupled_lines(v);
  const auto rom = engine::run_awe(c.netlist, CoupledLinesCircuit::kInput, c.line2_out,
                                   {.order = 2});
  // Purely capacitive coupling: no DC transfer to the victim line.
  EXPECT_NEAR(rom.dc_gain(), 0.0, 1e-6);
  // Cross-talk pulse: rises then returns to zero -> non-monotonic.
  double peak = 0.0;
  for (double t = 0; t <= 2e-7; t += 1e-9)
    peak = std::max(peak, std::abs(rom.step_response(t)));
  EXPECT_GT(peak, 1e-3);                    // visible coupling
  EXPECT_LT(std::abs(rom.step_response(2e-6)), 0.2 * peak);  // decays back
}

TEST(Ladders, ElmoreDelayOrderOfMagnitude) {
  LadderValues v;
  v.segments = 20;
  auto lad = make_rc_ladder(v);
  const auto rom = engine::run_awe(lad.netlist, LadderCircuit::kInput, lad.out,
                                   {.order = 2});
  // Elmore delay (first moment) ~ sum_k R_path C_k.
  const double elmore = -rom.moments()[1];
  EXPECT_GT(elmore, 0.0);
  const auto t50 = rom.step_crossing_time(0.5, 100 * elmore);
  ASSERT_TRUE(t50.has_value());
  EXPECT_GT(*t50, 0.1 * elmore);
  EXPECT_LT(*t50, 3.0 * elmore);
}

TEST(Trees, AllLeavesReachable) {
  TreeValues v;
  v.depth = 3;
  auto tree = make_rc_tree(v);
  EXPECT_TRUE(tree.netlist.validate().empty());
  const auto rom = engine::run_awe(tree.netlist, TreeCircuit::kInput, tree.first_leaf,
                                   {.order = 2});
  EXPECT_NEAR(rom.dc_gain(), 1.0, 1e-9);
  EXPECT_TRUE(rom.is_stable());
  EXPECT_THROW(make_rc_tree({.depth = 0}), std::invalid_argument);
}

}  // namespace
}  // namespace awe::circuits
