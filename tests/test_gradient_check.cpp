// End-to-end gradient checking of the reverse-mode subsystem (DESIGN.md
// §14): every compiled gradient is validated by at least two independent
// mechanisms —
//   * a finite-difference property harness (central differences with a
//     step-size sweep and Richardson extrapolation) on golden circuits
//     AND on a population of generated well-posed netlists, with
//     tolerances scaled by the moments' cancellation condition;
//   * tight cross-validation against the adjoint numeric
//     moment_sensitivities machinery (a completely separate derivation:
//     numeric MNA recursion vs compiled symbolic DAG);
//   * bit-identity of the batched gradient path against the scalar path,
//     and of sweep gradients across thread counts and batch widths.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <string>
#include <vector>

#include "awe/sensitivity.hpp"
#include "circuits/fig1_rc.hpp"
#include "circuits/ladders.hpp"
#include "circuits/opamp741.hpp"
#include "core/awesymbolic.hpp"
#include "engine/sweep.hpp"
#include "testing/netlist_gen.hpp"

namespace awe {
namespace {

struct GoldenCase {
  std::string name;
  circuit::Netlist netlist;
  std::vector<std::string> symbols;
  std::string input;
  circuit::NodeId out = 0;
};

std::vector<GoldenCase> golden_cases() {
  std::vector<GoldenCase> cases;
  {
    auto fig = circuits::make_fig1();
    cases.push_back({"fig1", fig.netlist, {"g2", "c2"},
                     circuits::Fig1Circuit::kInput, fig.v2});
  }
  {
    auto ladder = circuits::make_rc_ladder({.segments = 6});
    cases.push_back({"ladder6", ladder.netlist, {"rdrv", "r2", "c3"},
                     circuits::LadderCircuit::kInput, ladder.out});
  }
  {
    auto amp = circuits::make_opamp741();
    cases.push_back({"opamp741", amp.netlist,
                     {circuits::Opamp741Circuit::kSymbolGout,
                      circuits::Opamp741Circuit::kSymbolCcomp},
                     circuits::Opamp741Circuit::kInput, amp.out});
  }
  return cases;
}

std::vector<double> nominal_values(const GoldenCase& c) {
  std::vector<double> values;
  for (const auto& name : c.symbols)
    values.push_back(c.netlist.elements()[*c.netlist.find_element(name)].value);
  return values;
}

/// Cancellation factor of moment k against its natural magnitude
/// |m_0| tau^k (tau from the dominant moment ratio): how many digits the
/// recursion lost to subtraction, hence how much tolerance it has earned.
double cancellation(const std::vector<double>& m, std::size_t k) {
  if (m.empty() || m[0] == 0.0 || m[k] == 0.0) return 1.0;
  const double tau = m.size() > 1 && m[1] != 0.0 ? std::abs(m[1] / m[0]) : 1.0;
  const double natural = std::abs(m[0]) * std::pow(tau, static_cast<double>(k));
  return std::max(1.0, natural / std::abs(m[k]));
}

/// Central difference of moment k w.r.t. symbol i at relative step h_rel.
double central_fd(const core::CompiledModel& model, std::vector<double> values,
                  std::size_t i, std::size_t k, double h_rel) {
  const double h = h_rel * std::abs(values[i]);
  auto hi = values, lo = values;
  hi[i] += h;
  lo[i] -= h;
  return (model.moments_at(hi)[k] - model.moments_at(lo)[k]) / (2.0 * h);
}

/// Richardson-extrapolated central difference: the O(h^2) truncation terms
/// of D(h) and D(h/2) cancel, leaving O(h^4) + roundoff noise.
double richardson_fd(const core::CompiledModel& model, const std::vector<double>& values,
                     std::size_t i, std::size_t k, double h_rel) {
  const double d1 = central_fd(model, values, i, k, h_rel);
  const double d2 = central_fd(model, values, i, k, 0.5 * h_rel);
  return (4.0 * d2 - d1) / 3.0;
}

TEST(GradientCheck, FiniteDifferenceRichardsonOnGoldenCircuits) {
  for (const auto& c : golden_cases()) {
    const auto model =
        core::CompiledModel::build(c.netlist, c.symbols, c.input, c.out,
                                   {.order = 2, .with_gradients = true});
    const auto values = nominal_values(c);
    const auto mg = model.moments_and_gradients(values);
    const std::size_t nm = mg.moments.size();
    for (std::size_t i = 0; i < c.symbols.size(); ++i) {
      for (std::size_t k = 0; k < nm; ++k) {
        const double rev = mg.dm[k][i];
        // Step-size sweep: FD noise is step-dependent, so the check is
        // "SOME step in the sweep confirms the analytic value", never a
        // single-step lottery.
        double best_err = HUGE_VAL, best_scale = 0.0;
        for (const double h_rel : {1e-3, 1e-4, 1e-5}) {
          const double fd = richardson_fd(model, values, i, k, h_rel);
          const double err = std::abs(rev - fd);
          if (err < best_err) {
            best_err = err;
            best_scale = std::max(std::abs(rev), std::abs(fd));
          }
        }
        // Condition-scaled tolerance: the gradient inherits the moment's
        // cancellation, and the absolute floor is the moment's own scale
        // divided by the value (what "zero gradient" means dimensionally).
        const double cond = cancellation(mg.moments, k);
        const double floor =
            1e-9 * std::abs(mg.moments[k]) / std::max(std::abs(values[i]), 1e-300);
        EXPECT_LE(best_err, 1e-6 * cond * best_scale + floor)
            << c.name << " symbol " << c.symbols[i] << " moment " << k
            << " rev=" << rev << " cond=" << cond;
      }
    }
  }
}

TEST(GradientCheck, FiniteDifferenceOnGeneratedNetlists) {
  // The same property over 50 generated well-posed decks: reverse-mode
  // agrees with BOTH the adjoint machinery and a Richardson FD on every
  // differentiable symbol, condition-permitting.  Skips are counted and
  // bounded so the test cannot silently degenerate into a no-op.
  std::size_t decks_checked = 0, pairs_checked = 0, pairs_skipped = 0;
  for (std::size_t case_i = 0; case_i < 50; ++case_i) {
    testing::GenOptions gen;
    gen.seed = testing::case_seed(20260808, case_i);
    const auto deck = testing::generate_deck(gen);
    const auto out_node = deck.parsed.netlist.find_node(deck.parsed.output_node);
    ASSERT_TRUE(out_node) << deck.text;

    core::CompiledModel model = [&] {
      return core::CompiledModel::build(
          deck.parsed.netlist, deck.parsed.symbol_elements,
          deck.parsed.input_source, *out_node, {.order = 2, .with_gradients = true});
    }();
    const auto names = model.symbol_names();
    std::vector<double> values(names.size());
    for (std::size_t i = 0; i < names.size(); ++i)
      values[i] = deck.parsed.netlist.elements()[*deck.parsed.netlist.find_element(names[i])]
                      .value;

    const auto mg = model.moments_and_gradients(values);
    const std::size_t nm = mg.moments.size();
    bool finite = true;
    for (const double m : mg.moments)
      finite = finite && std::isfinite(m) && std::abs(m) < 1e100;
    if (!finite) {
      pairs_skipped += names.size() * nm;
      continue;  // near-singular deck: no meaningful gradient to check
    }
    ++decks_checked;

    engine::MomentGenerator mgen(deck.parsed.netlist);
    const auto ms = engine::moment_sensitivities(mgen, deck.parsed.input_source,
                                                 *out_node, nm);
    for (std::size_t i = 0; i < names.size(); ++i) {
      const std::size_t eidx = *deck.parsed.netlist.find_element(names[i]);
      if (!ms.differentiable[eidx]) {
        pairs_skipped += nm;
        continue;
      }
      for (std::size_t k = 0; k < nm; ++k) {
        const double cond = cancellation(mg.moments, k);
        if (cond > 1e9) {
          ++pairs_skipped;  // the moment itself is cancellation noise
          continue;
        }
        const double rev = mg.dm[k][i];
        const double adj = ms.dm[k][eidx];
        const double floor =
            1e-12 * std::abs(mg.moments[k]) / std::max(std::abs(values[i]), 1e-300);
        const double scale_a = std::max(std::abs(rev), std::abs(adj));
        EXPECT_LE(std::abs(rev - adj), 1e-9 * cond * scale_a + floor)
            << "seed " << gen.seed << " symbol " << names[i] << " moment " << k
            << "\n" << deck.text;
        const double fd = richardson_fd(model, values, i, k, 1e-5);
        const double scale_f = std::max(scale_a, std::abs(fd));
        EXPECT_LE(std::abs(rev - fd), 1e-4 * cond * scale_f + 1e3 * floor)
            << "seed " << gen.seed << " symbol " << names[i] << " moment " << k
            << "\n" << deck.text;
        ++pairs_checked;
      }
    }
  }
  // The generator must keep producing decks this harness can actually
  // check; these bounds fail loudly if the population drifts degenerate.
  EXPECT_GE(decks_checked, 35u);
  EXPECT_GE(pairs_checked, 200u);
  EXPECT_LE(pairs_skipped, pairs_checked);
}

TEST(GradientCheck, AdjointCrossValidationIsTight) {
  // Reverse-mode (compiled symbolic DAG) vs adjoint (numeric MNA
  // recursion): two machine-precision derivations of the same quantity
  // must agree to ~1e-12 RELATIVE on every differentiable element of the
  // golden circuits, with only the moment's own cancellation as slack.
  for (const auto& c : golden_cases()) {
    const auto model =
        core::CompiledModel::build(c.netlist, c.symbols, c.input, c.out,
                                   {.order = 2, .with_gradients = true});
    const auto values = nominal_values(c);
    const auto mg = model.moments_and_gradients(values);
    const std::size_t nm = mg.moments.size();
    engine::MomentGenerator gen(c.netlist);
    const auto ms = engine::moment_sensitivities(gen, c.input, c.out, nm);
    for (std::size_t i = 0; i < c.symbols.size(); ++i) {
      const std::size_t eidx = *c.netlist.find_element(c.symbols[i]);
      ASSERT_TRUE(ms.differentiable[eidx]) << c.name << " " << c.symbols[i];
      for (std::size_t k = 0; k < nm; ++k) {
        const double rev = mg.dm[k][i];
        const double adj = ms.dm[k][eidx];
        const double cond = cancellation(mg.moments, k);
        const double floor =
            1e-15 * std::abs(mg.moments[k]) / std::max(std::abs(values[i]), 1e-300);
        EXPECT_LE(std::abs(rev - adj),
                  1e-12 * cond * std::max(std::abs(rev), std::abs(adj)) + floor)
            << c.name << " symbol " << c.symbols[i] << " moment " << k
            << " rev=" << rev << " adj=" << adj << " cond=" << cond;
      }
    }
  }
}

TEST(GradientCheck, BatchGradientsBitIdenticalToScalar) {
  for (const auto& c : golden_cases()) {
    const auto model =
        core::CompiledModel::build(c.netlist, c.symbols, c.input, c.out,
                                   {.order = 2, .with_gradients = true});
    const auto nominal = nominal_values(c);
    const std::size_t nsym = nominal.size();
    const std::size_t nm = 2 * model.order();

    // A small SoA batch of scaled design points around the nominal.
    const std::vector<double> factors{0.5, 0.9, 1.0, 1.3, 2.0};
    const std::size_t n = factors.size();
    std::vector<double> points(nsym * n);
    for (std::size_t i = 0; i < nsym; ++i)
      for (std::size_t p = 0; p < n; ++p)
        points[i * n + p] = nominal[i] * factors[p];

    auto ws = model.make_gradient_batch_workspace(n);
    std::vector<double> moments(nm * n), grads(nsym * nm * n);
    std::vector<unsigned char> ok(n, 0);
    model.moments_and_gradients_batch(points, n, n, ws, moments, n, grads, n, ok);

    for (std::size_t p = 0; p < n; ++p) {
      ASSERT_TRUE(ok[p]) << c.name << " point " << p;
      std::vector<double> values(nsym);
      for (std::size_t i = 0; i < nsym; ++i) values[i] = points[i * n + p];
      const auto mg = model.moments_and_gradients(values);
      for (std::size_t k = 0; k < nm; ++k) {
        // Strict batch lanes run the scalar instruction order: bit-equal.
        EXPECT_EQ(moments[k * n + p], mg.moments[k]) << c.name << " k=" << k;
        for (std::size_t i = 0; i < nsym; ++i)
          EXPECT_EQ(grads[(i * nm + k) * n + p], mg.dm[k][i])
              << c.name << " k=" << k << " i=" << i << " p=" << p;
      }
    }
  }
}

TEST(GradientCheck, SweepGradientsBitIdenticalAcrossThreadCounts) {
  auto ladder = circuits::make_rc_ladder({.segments = 6});
  const auto model = core::CompiledModel::build(
      ladder.netlist, {"rdrv", "r2", "c3"}, circuits::LadderCircuit::kInput,
      ladder.out, {.order = 2, .with_gradients = true});

  std::vector<sweep::Distribution> process;
  for (const double v : nominal_values({"", ladder.netlist, {"rdrv", "r2", "c3"}, "", 0}))
    process.push_back(sweep::Distribution::lognormal(v, 0.25));

  const std::size_t n = 64;
  auto run = [&](std::size_t threads, std::size_t width) {
    sweep::SweepOptions opts;
    opts.threads = threads;
    opts.batch_width = width;
    opts.gradients = true;
    opts.pole_sensitivities = true;
    return sweep::monte_carlo(model, process, n, 4242, opts);
  };

  const auto base = run(1, 64);
  ASSERT_EQ(base.gradients.size(), 3 * base.num_moments * n);
  ASSERT_TRUE(base.sensitivities.has_value());
  std::size_t sens_ok = 0;
  for (const auto f : base.sensitivities->ok) sens_ok += f;
  EXPECT_GE(sens_ok, n / 2) << "pole sensitivity chain should mostly succeed";

  for (const auto& [threads, width] :
       std::vector<std::pair<std::size_t, std::size_t>>{{4, 16}, {8, 5}}) {
    const auto other = run(threads, width);
    ASSERT_EQ(other.gradients.size(), base.gradients.size());
    // memcmp, not EXPECT_DOUBLE_EQ: the determinism contract is BYTES.
    EXPECT_EQ(std::memcmp(base.gradients.data(), other.gradients.data(),
                          base.gradients.size() * sizeof(double)),
              0)
        << "threads=" << threads << " width=" << width;
    EXPECT_EQ(std::memcmp(base.moments.data(), other.moments.data(),
                          base.moments.size() * sizeof(double)),
              0);
    ASSERT_TRUE(other.sensitivities.has_value());
    EXPECT_EQ(base.sensitivities->ok, other.sensitivities->ok);
    EXPECT_EQ(std::memcmp(base.sensitivities->dpole.data(),
                          other.sensitivities->dpole.data(),
                          base.sensitivities->dpole.size() *
                              sizeof(std::complex<double>)),
              0)
        << "threads=" << threads << " width=" << width;
  }

  // And the sweep's gradients are the scalar path's, bit-for-bit.
  for (std::size_t p = 0; p < n; p += 7) {
    if (!base.ok[p]) continue;
    std::vector<double> values(3);
    for (std::size_t i = 0; i < 3; ++i) values[i] = base.point(i, p);
    const auto mg = model.moments_and_gradients(values);
    for (std::size_t k = 0; k < base.num_moments; ++k)
      for (std::size_t i = 0; i < 3; ++i)
        EXPECT_EQ(base.gradient(i, k, p), mg.dm[k][i]) << "p=" << p;
  }
}

TEST(GradientCheck, SweepGradientsRequireGradientModel) {
  auto fig = circuits::make_fig1();
  const auto model =
      core::CompiledModel::build(fig.netlist, {"g2"}, circuits::Fig1Circuit::kInput,
                                 fig.v2, {.order = 2});
  sweep::SweepOptions opts;
  opts.gradients = true;
  EXPECT_THROW(sweep::run_sweep(model, {1.0}, 1, opts), std::invalid_argument);
}

}  // namespace
}  // namespace awe
