#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <complex>
#include <numeric>
#include <random>

#include "linalg/eig.hpp"
#include "linalg/polyroots.hpp"

namespace awe::linalg {
namespace {

void expect_contains_root(const CVector& roots, std::complex<double> expected,
                          double tol = 1e-8) {
  const double best = std::transform_reduce(
      roots.begin(), roots.end(), 1e300,
      [](double a, double b) { return std::min(a, b); },
      [&](const std::complex<double>& r) { return std::abs(r - expected); });
  EXPECT_LT(best, tol) << "missing root " << expected.real() << "+" << expected.imag() << "i";
}

TEST(Eigenvalues, DiagonalMatrix) {
  Matrix a{{3, 0, 0}, {0, -1, 0}, {0, 0, 7}};
  const auto e = eigenvalues(a);
  ASSERT_EQ(e.size(), 3u);
  expect_contains_root(e, {3, 0});
  expect_contains_root(e, {-1, 0});
  expect_contains_root(e, {7, 0});
}

TEST(Eigenvalues, RotationGivesComplexPair) {
  Matrix a{{0, -1}, {1, 0}};
  const auto e = eigenvalues(a);
  ASSERT_EQ(e.size(), 2u);
  expect_contains_root(e, {0, 1});
  expect_contains_root(e, {0, -1});
}

TEST(Eigenvalues, TraceAndDeterminantInvariants) {
  std::mt19937 rng(11);
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t n = 2 + trial % 6;
    Matrix a(n, n);
    double trace = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < n; ++j) a(i, j) = dist(rng);
      trace += a(i, i);
    }
    const auto e = eigenvalues(a);
    ASSERT_EQ(e.size(), n);
    std::complex<double> sum{0, 0};
    for (const auto& v : e) sum += v;
    EXPECT_NEAR(sum.real(), trace, 1e-7 * (1.0 + std::abs(trace)));
    EXPECT_NEAR(sum.imag(), 0.0, 1e-7);
  }
}

TEST(PolyRoots, LinearAndQuadratic) {
  expect_contains_root(poly_roots(std::vector<double>{-6.0, 2.0}), {3, 0});
  // (x-1)(x-2) = 2 - 3x + x^2
  const auto r = poly_roots(std::vector<double>{2.0, -3.0, 1.0});
  expect_contains_root(r, {1, 0});
  expect_contains_root(r, {2, 0});
  // x^2 + 1
  const auto rc = poly_roots(std::vector<double>{1.0, 0.0, 1.0});
  expect_contains_root(rc, {0, 1});
  expect_contains_root(rc, {0, -1});
}

TEST(PolyRoots, ZeroRootsFromTrailingZeroCoefficients) {
  // x^2 (x - 5)
  const auto r = poly_roots(std::vector<double>{0.0, 0.0, -5.0, 1.0});
  ASSERT_EQ(r.size(), 3u);
  expect_contains_root(r, {0, 0});
  expect_contains_root(r, {5, 0});
}

TEST(PolyRoots, ZeroPolynomialThrows) {
  EXPECT_THROW(poly_roots(std::vector<double>{0.0, 0.0}), std::invalid_argument);
}

TEST(PolyRoots, WideMagnitudeSpread) {
  // Roots at -1e3, -1e6, -1e9 (AWE pole magnitudes).
  const double p1 = 1e3, p2 = 1e6, p3 = 1e9;
  // (x+p1)(x+p2)(x+p3)
  const std::vector<double> c{p1 * p2 * p3, p1 * p2 + p1 * p3 + p2 * p3, p1 + p2 + p3, 1.0};
  const auto r = poly_roots(c);
  expect_contains_root(r, {-p1, 0}, 1e-3);
  expect_contains_root(r, {-p2, 0}, 1.0);
  expect_contains_root(r, {-p3, 0}, 1e3);
}

class RandomPolyRoots : public ::testing::TestWithParam<int> {};

TEST_P(RandomPolyRoots, CompanionAndAberthAgree) {
  std::mt19937 rng(GetParam());
  std::uniform_real_distribution<double> dist(-3.0, 3.0);
  const std::size_t deg = 2 + static_cast<std::size_t>(GetParam() % 6);
  std::vector<double> c(deg + 1);
  for (auto& v : c) v = dist(rng);
  if (std::abs(c.back()) < 0.1) c.back() = 1.0;
  if (std::abs(c.front()) < 0.1) c.front() = 1.0;  // avoid zero roots for matching

  const auto a = poly_roots(c);
  const auto b = poly_roots_aberth(c);
  ASSERT_EQ(a.size(), b.size());
  for (const auto& ra : a) expect_contains_root(b, ra, 1e-5 * (1.0 + std::abs(ra)));
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomPolyRoots, ::testing::Range(1, 25));

TEST(PolyEval, HornerMatchesDirect) {
  const std::vector<double> c{1.0, -2.0, 0.5, 3.0};
  const std::complex<double> x{0.3, -0.7};
  const auto direct = c[0] + c[1] * x + c[2] * x * x + c[3] * x * x * x;
  EXPECT_LT(std::abs(poly_eval(c, x) - direct), 1e-12);
  const auto ddirect = c[1] + 2.0 * c[2] * x + 3.0 * c[3] * x * x;
  EXPECT_LT(std::abs(poly_eval_derivative(c, x) - ddirect), 1e-12);
}

}  // namespace
}  // namespace awe::linalg
