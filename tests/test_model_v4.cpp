// Model format v4 + zero-copy open + shared hot-swap store (DESIGN.md §15).
//
// What must hold, and what these tests pin down:
//   - pack -> load -> pack is BYTE-identical, whether the reload went
//     through the stream parser, mmap, or shared memory (the v4 format's
//     fixed-point property, which also makes `awe_build --pack-v4`
//     idempotent);
//   - a view-backed model (heap / mmap(MAP_PRIVATE) / shm) is
//     BIT-identical to the owned stream-parsed model — moments AND
//     gradients, scalar AND swept across thread counts;
//   - cross-version behavior is exact: the committed v3 golden fixtures
//     still load (and repack to v4 with bit-identical evaluation), a v2
//     fixture fails with the documented error text, as do truncated and
//     bit-flipped inputs;
//   - the endianness/alignment guard rejects a misaligned region with
//     FailClass::kModelFormat, not UB;
//   - the cache's mapped open quarantines damage exactly like the parsing
//     path (miss + <entry>.bad, then a rebuild stores a fresh entry);
//   - SharedModelStore publishes atomically: a sweep pinned on generation
//     N completes bit-identically while N+1..N+k publish underneath it,
//     and a failed publish leaves the store on its old generation.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "circuit/parser.hpp"
#include "core/awesymbolic.hpp"
#include "core/model_blob.hpp"
#include "core/model_cache.hpp"
#include "core/model_store.hpp"
#include "engine/sweep.hpp"
#include "health/status.hpp"

namespace awe::core {
namespace {

namespace fs = std::filesystem;

constexpr const char* kDeck = R"(* v4 test deck
Vin in 0 1
R1 in a 1k
C1 a 0 10p
R2 a out 2k
C2 out 0 5p
.symbol R2
.symbol C2
.input vin
.output out
.end
)";

CompiledModel build_model(bool gradients) {
  auto deck = circuit::parse_deck_string(kDeck);
  ModelOptions opts;
  opts.order = 2;
  opts.with_gradients = gradients;
  return CompiledModel::build(deck.netlist, deck.symbol_elements, deck.input_source,
                              *deck.netlist.find_node(deck.output_node), opts);
}

std::string serialize(const CompiledModel& model) {
  std::ostringstream os;
  model.save(os);
  return os.str();
}

CompiledModel stream_load(const std::string& bytes) {
  std::istringstream is(bytes);
  return CompiledModel::load(is);
}

struct TempDir {
  fs::path path;
  TempDir() {
    path = fs::temp_directory_path() /
           ("awe_v4_test_" + std::to_string(::getpid()) + "_" +
            std::to_string(reinterpret_cast<std::uintptr_t>(this)));
    fs::create_directories(path);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
};

void write_file(const fs::path& p, const std::string& bytes) {
  std::ofstream out(p, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good());
}

std::string read_file(const fs::path& p) {
  std::ifstream in(p, std::ios::binary);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

std::vector<double> nominal_values(const CompiledModel& model) {
  // Matches the deck above: R2 = 2k, C2 = 5p.
  EXPECT_EQ(model.symbol_count(), 2u);
  return {2e3, 5e-12};
}

// -- format fixed point ---------------------------------------------------

TEST(ModelV4, PackIsVersion4AndAligned) {
  const std::string blob = serialize(build_model(false));
  ASSERT_GE(blob.size(), sizeof(v4::Header));
  EXPECT_EQ(blob.compare(0, 4, "AWEM"), 0);
  std::uint32_t version = 0;
  std::memcpy(&version, blob.data() + 4, 4);
  EXPECT_EQ(version, 4u);
  EXPECT_EQ(blob.size() % 64, 0u) << "v4 blobs are padded to the 64-byte alignment";
}

TEST(ModelV4, RepackByteDeterminismAcrossBackings) {
  TempDir tmp;
  const std::string blob = serialize(build_model(true));

  // Stream (heap-owned) reload.
  EXPECT_EQ(serialize(stream_load(blob)), blob);

  // mmap reload.
  const fs::path file = tmp.path / "m.awemodel";
  write_file(file, blob);
  const CompiledModel mapped = CompiledModel::map_file(file);
  EXPECT_TRUE(mapped.view_backed());
  EXPECT_EQ(serialize(mapped), blob);

  // Shared-memory reload.
  auto shm = create_shm_blob("awe_v4_repack_test", std::as_bytes(std::span(
                                 blob.data(), blob.size())));
  const CompiledModel shmm = CompiledModel::from_blob(shm, /*verify_checksum=*/true);
  EXPECT_EQ(serialize(shmm), blob);
  unlink_shm_blob("awe_v4_repack_test");
}

TEST(ModelV4, ChecksumCoversPayload) {
  std::string blob = serialize(build_model(false));
  // make_heap_blob gives the 64-byte-aligned region ModelView requires; a
  // raw std::string buffer is only coincidentally aligned.
  const auto good = make_heap_blob(blob);
  EXPECT_TRUE(ModelView::open(good->bytes()).verify_checksum());
  blob[blob.size() - 70] ^= 0x01;  // damage inside the payload
  const auto bad = make_heap_blob(blob);
  EXPECT_FALSE(ModelView::open(bad->bytes()).verify_checksum());
}

// -- bit identity: heap vs mmap vs shm, scalar and swept ------------------

TEST(ModelV4, MappedModelBitIdenticalScalar) {
  TempDir tmp;
  const CompiledModel owned = build_model(true);
  const std::string blob = serialize(owned);
  const fs::path file = tmp.path / "m.awemodel";
  write_file(file, blob);
  const CompiledModel mapped = CompiledModel::map_file(file);
  const CompiledModel heap = stream_load(blob);

  const std::vector<double> at = nominal_values(owned);
  const std::vector<double> m0 = owned.moments_at(at);
  EXPECT_EQ(m0, mapped.moments_at(at));
  EXPECT_EQ(m0, heap.moments_at(at));

  const auto g0 = owned.moments_and_gradients(at);
  const auto g1 = mapped.moments_and_gradients(at);
  EXPECT_EQ(g0.moments, g1.moments);
  EXPECT_EQ(g0.dm, g1.dm);
}

TEST(ModelV4, SweepBitIdenticalAcrossBackingsAndThreads) {
  TempDir tmp;
  const CompiledModel owned = build_model(true);
  const std::string blob = serialize(owned);
  const fs::path file = tmp.path / "m.awemodel";
  write_file(file, blob);
  const CompiledModel mapped = CompiledModel::map_file(file);

  SharedModelStore store("awe_v4_sweep_test", SharedModelStore::Backing::kShm);
  store.publish_packed(blob);
  const auto pinned = store.acquire();
  ASSERT_NE(pinned, nullptr);

  std::vector<sweep::Distribution> dists = {
      sweep::Distribution::lognormal(2e3, 0.2),
      sweep::Distribution::lognormal(5e-12, 0.2)};
  sweep::SweepOptions base;
  base.gradients = true;

  sweep::SweepOptions ref_opts = base;
  ref_opts.threads = 1;
  const auto ref = sweep::monte_carlo(owned, dists, 64, 7, ref_opts);
  ASSERT_EQ(ref.ok_count, ref.num_points);

  for (const std::size_t threads : {1u, 4u, 8u}) {
    sweep::SweepOptions opts = base;
    opts.threads = threads;
    for (const CompiledModel* m : {&owned, &mapped, pinned.get()}) {
      const auto r = sweep::monte_carlo(*m, dists, 64, 7, opts);
      EXPECT_EQ(r.moments, ref.moments) << "threads=" << threads;
      EXPECT_EQ(r.gradients, ref.gradients) << "threads=" << threads;
      EXPECT_EQ(r.ok, ref.ok) << "threads=" << threads;
    }
  }
}

TEST(ModelV4, LazySymbolicsMatchOwnedClosedForms) {
  const CompiledModel owned = build_model(false);
  const CompiledModel heap = stream_load(serialize(owned));
  EXPECT_TRUE(heap.view_backed());
  // The closed forms force the lazy kSymbolics parse; they must agree
  // with the owned model's exactly.
  const auto names = owned.symbol_names();
  EXPECT_EQ(heap.symbol_names(), names);
  EXPECT_EQ(heap.dc_gain_expression().to_string(names),
            owned.dc_gain_expression().to_string(names));
  const auto d0 = owned.symbolic_denominator();
  const auto d1 = heap.symbolic_denominator();
  ASSERT_EQ(d0.size(), d1.size());
  for (std::size_t j = 0; j < d0.size(); ++j)
    EXPECT_EQ(d1[j].to_string(names), d0[j].to_string(names));
}

// -- cross-version loads and exact error texts ----------------------------

std::string fixture(const char* name) {
  const std::string bytes = read_file(fs::path(AWE_DATA_DIR) / name);
  EXPECT_FALSE(bytes.empty()) << name;
  return bytes;
}

TEST(ModelV4, GoldenV3FixturesStillLoad) {
  for (const char* name : {"golden_v3.awemodel", "golden_v3_nograd.awemodel"}) {
    const std::string v3 = fixture(name);
    const CompiledModel model = stream_load(v3);
    EXPECT_GE(model.symbol_count(), 1u);
    EXPECT_EQ(model.moment_count(), 2 * model.order());
  }
}

TEST(ModelV4, GoldenV3RepacksToV4WithBitIdenticalEvaluation) {
  const CompiledModel v3 = stream_load(fixture("golden_v3.awemodel"));
  const std::string v4_blob = serialize(v3);
  std::uint32_t version = 0;
  std::memcpy(&version, v4_blob.data() + 4, 4);
  ASSERT_EQ(version, 4u);
  const CompiledModel v4 = stream_load(v4_blob);

  std::vector<double> at(v3.symbol_count());
  for (std::size_t i = 0; i < at.size(); ++i) at[i] = 1e3 * static_cast<double>(i + 1);
  EXPECT_EQ(v3.moments_at(at), v4.moments_at(at));
  if (v3.options().with_gradients) {
    const auto g3 = v3.moments_and_gradients(at);
    const auto g4 = v4.moments_and_gradients(at);
    EXPECT_EQ(g3.moments, g4.moments);
    EXPECT_EQ(g3.dm, g4.dm);
  }
}

TEST(ModelV4, GoldenV2FailsWithExactErrorText) {
  const std::string v2 = fixture("golden_v2.awemodel");
  try {
    (void)stream_load(v2);
    FAIL() << "v2 fixture must not load";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "CompiledModel::load: unsupported format version");
  }
}

TEST(ModelV4, BadMagicFailsWithExactErrorText) {
  std::string blob = serialize(build_model(false));
  blob[0] = 'X';
  try {
    (void)stream_load(blob);
    FAIL() << "bad magic must not load";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "CompiledModel::load: bad magic");
  }
}

TEST(ModelV4, TruncatedV4FailsWithExactErrorText) {
  const std::string blob = serialize(build_model(false));
  try {
    (void)stream_load(blob.substr(0, blob.size() / 2));
    FAIL() << "truncated blob must not load";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "CompiledModel::load: truncated payload");
  }
}

TEST(ModelV4, BitFlippedV4FailsAsCacheCorrupt) {
  std::string blob = serialize(build_model(false));
  blob[blob.size() - 70] ^= 0x10;
  try {
    (void)stream_load(blob);
    FAIL() << "damaged blob must not load";
  } catch (const health::FailError& e) {
    EXPECT_EQ(e.fail_class(), health::FailClass::kCacheCorrupt);
    EXPECT_STREQ(e.what(), "CompiledModel::load: payload checksum mismatch");
  }
}

TEST(ModelV4, TruncatedV3FailsWithExactErrorText) {
  const std::string v3 = fixture("golden_v3.awemodel");
  try {
    (void)stream_load(v3.substr(0, v3.size() - 7));
    FAIL() << "truncated v3 must not load";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "CompiledModel::load: truncated payload");
  }
}

TEST(ModelV4, BitFlippedV3FailsAsCacheCorrupt) {
  std::string v3 = fixture("golden_v3.awemodel");
  v3[v3.size() - 70] ^= 0x10;
  try {
    (void)stream_load(v3);
    FAIL() << "damaged v3 must not load";
  } catch (const health::FailError& e) {
    EXPECT_EQ(e.fail_class(), health::FailClass::kCacheCorrupt);
    EXPECT_STREQ(e.what(), "CompiledModel::load: payload checksum mismatch");
  }
}

TEST(ModelV4, MisalignedRegionRejectedAsModelFormat) {
  const std::string blob = serialize(build_model(false));
  std::vector<std::byte> buf(blob.size() + 64);
  std::byte* base = buf.data();
  // Force a pointer 64-aligned + 8: still 8-aligned (no hardware fault on
  // the Header read below the check), but violating the format contract.
  auto addr = reinterpret_cast<std::uintptr_t>(base);
  std::byte* misaligned = base + (64 - addr % 64) % 64 + 8;
  std::memcpy(misaligned, blob.data(), blob.size());
  try {
    (void)ModelView::open(std::span<const std::byte>(misaligned, blob.size()));
    FAIL() << "misaligned region must be rejected";
  } catch (const health::FailError& e) {
    EXPECT_EQ(e.fail_class(), health::FailClass::kModelFormat);
    EXPECT_STREQ(e.what(), "ModelView::open: model region not 64-byte aligned");
  }
}

// -- cache integration: mapped loads, quarantine, rebuild -----------------

TEST(ModelV4, CacheMapFileServesV4AndFallsBackOnV3) {
  TempDir tmp;
  const std::string v4_blob = serialize(build_model(false));
  const fs::path v4_path = tmp.path / "a.awemodel";
  write_file(v4_path, v4_blob);
  bool quarantined = true;
  auto mapped = ModelCache::map_file(v4_path.string(), &quarantined);
  ASSERT_TRUE(mapped.has_value());
  EXPECT_FALSE(quarantined);
  EXPECT_TRUE(mapped->view_backed());

  const fs::path v3_path = tmp.path / "b.awemodel";
  write_file(v3_path, fixture("golden_v3_nograd.awemodel"));
  auto legacy = ModelCache::map_file(v3_path.string(), &quarantined);
  ASSERT_TRUE(legacy.has_value());
  EXPECT_FALSE(quarantined);
  EXPECT_FALSE(legacy->view_backed()) << "v3 entries fall back to the parsing path";
}

TEST(ModelV4, TruncatedMappedEntryQuarantinedThenRebuilt) {
  TempDir tmp;
  auto deck = circuit::parse_deck_string(kDeck);
  ModelOptions mopts;
  mopts.order = 2;
  BuildOptions bopts;
  bopts.cache_dir = tmp.path.string();
  bopts.map_model = true;

  const auto out = *deck.netlist.find_node(deck.output_node);
  // Cold build stores the entry; the warm mapped load must hit it.
  (void)CompiledModel::build(deck.netlist, deck.symbol_elements, deck.input_source,
                             out, mopts, bopts);
  fs::path entry;
  for (const auto& e : fs::directory_iterator(tmp.path))
    if (e.path().extension() == ".awemodel") entry = e.path();
  ASSERT_FALSE(entry.empty());
  const std::string good = read_file(entry);
  std::vector<double> warm_moments;
  {
    const CompiledModel warm = CompiledModel::build(
        deck.netlist, deck.symbol_elements, deck.input_source, out, mopts, bopts);
    EXPECT_TRUE(warm.view_backed());
    // Evaluate (and drop the mapping) BEFORE damaging the file below:
    // MAP_PRIVATE copies pages on OUR writes, not the file's — a live
    // mapping observes external rewrites of pages it never touched.
    warm_moments = warm.moments_at(nominal_values(warm));
  }

  // Torn publish: truncate the entry mid-file.  The mapped open must
  // quarantine it to <entry>.bad and the build must rebuild and re-store.
  write_file(entry, good.substr(0, good.size() / 2));
  const CompiledModel rebuilt = CompiledModel::build(
      deck.netlist, deck.symbol_elements, deck.input_source, out, mopts, bopts);
  EXPECT_TRUE(fs::exists(ModelCache::quarantine_path(entry.string())));
  EXPECT_EQ(read_file(entry), good) << "rebuild must restore the identical entry";
  EXPECT_EQ(rebuilt.moments_at(nominal_values(rebuilt)), warm_moments);
}

// -- shared hot-swap store ------------------------------------------------

TEST(ModelV4, StorePinSurvivesHotSwap) {
  auto deck = circuit::parse_deck_string(kDeck);
  ModelOptions opts;
  opts.order = 2;
  const auto out = *deck.netlist.find_node(deck.output_node);
  const CompiledModel gen1 = CompiledModel::build(
      deck.netlist, deck.symbol_elements, deck.input_source, out, opts);
  deck.netlist.set_value("r1", 2e3);  // a genuinely different generation
  const CompiledModel gen2 = CompiledModel::build(
      deck.netlist, deck.symbol_elements, deck.input_source, out, opts);

  SharedModelStore store("awe_v4_swap_test", SharedModelStore::Backing::kShm);
  EXPECT_EQ(store.generation(), 0u);
  EXPECT_EQ(store.acquire(), nullptr);
  EXPECT_EQ(store.publish(gen1), 1u);
  const auto pin = store.acquire();
  ASSERT_NE(pin, nullptr);

  EXPECT_EQ(store.publish(gen2), 2u);
  EXPECT_EQ(store.generation(), 2u);
  EXPECT_EQ(store.live_generations(), 2u) << "pin keeps generation 1 alive";

  const std::vector<double> at = nominal_values(gen1);
  // The pin still evaluates generation 1 bit-identically; a fresh acquire
  // sees generation 2 (different model, different moments).
  EXPECT_EQ(pin->moments_at(at), gen1.moments_at(at));
  const auto now = store.acquire();
  EXPECT_EQ(now->moments_at(at), gen2.moments_at(at));
  EXPECT_NE(pin->moments_at(at), now->moments_at(at));
}

TEST(ModelV4, SweepOnPinnedGenerationWhilePublishing) {
  const CompiledModel model = build_model(false);
  SharedModelStore store("awe_v4_publish_race_test",
                         SharedModelStore::Backing::kShm);
  store.publish(model);

  std::vector<sweep::Distribution> dists = {
      sweep::Distribution::lognormal(2e3, 0.2),
      sweep::Distribution::lognormal(5e-12, 0.2)};
  sweep::SweepOptions opts;
  opts.threads = 2;
  const auto ref = sweep::monte_carlo(model, dists, 256, 11, opts);

  const auto pinned = store.acquire();
  std::atomic<bool> stop{false};
  std::thread publisher([&] {
    while (!stop.load()) store.publish(model);
  });
  const auto swept = sweep::monte_carlo(*pinned, dists, 256, 11, opts);
  stop.store(true);
  publisher.join();

  EXPECT_EQ(swept.moments, ref.moments);
  EXPECT_EQ(swept.ok, ref.ok);
  EXPECT_GE(store.generation(), 2u);
}

TEST(ModelV4, RunSweepStoreOverloadPinsOnce) {
  const CompiledModel model = build_model(false);
  SharedModelStore store("awe_v4_overload_test");
  try {
    (void)sweep::run_sweep(store, {}, 0);
    FAIL() << "empty store must throw";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(),
                 "run_sweep: model store 'awe_v4_overload_test' has no published model");
  }
  store.publish(model);
  std::vector<double> pts = {2e3, 2.2e3, 5e-12, 5.5e-12};  // SoA, 2 points
  const auto viaStore = sweep::run_sweep(store, pts, 2);
  const auto direct = sweep::run_sweep(model, pts, 2);
  EXPECT_EQ(viaStore.moments, direct.moments);
}

TEST(ModelV4, FailedPublishLeavesStoreUnchanged) {
  const CompiledModel model = build_model(false);
  SharedModelStore store("awe_v4_failed_publish_test",
                         SharedModelStore::Backing::kShm);
  store.publish(model);
  const auto before = store.acquire();

  std::string damaged = serialize(model);
  damaged[damaged.size() - 70] ^= 0x01;
  EXPECT_THROW(store.publish_packed(damaged), std::exception);
  EXPECT_EQ(store.generation(), 1u);
  EXPECT_EQ(store.acquire(), before);
}

}  // namespace
}  // namespace awe::core
