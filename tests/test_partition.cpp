#include <gtest/gtest.h>

#include <cmath>

#include "awe/moments.hpp"
#include "circuits/fig1_rc.hpp"
#include "partition/partitioner.hpp"

namespace awe::part {
namespace {

using circuit::kGround;
using circuit::Netlist;

TEST(Partitioner, ValidatesInputs) {
  auto fig = circuits::make_fig1();
  EXPECT_THROW(MomentPartitioner(fig.netlist, {"g1"}, "vin", kGround),
               std::invalid_argument);
  EXPECT_THROW(MomentPartitioner(fig.netlist, {}, "vin", fig.v2), std::invalid_argument);
  EXPECT_THROW(MomentPartitioner(fig.netlist, {"ghost"}, "vin", fig.v2),
               std::invalid_argument);
  EXPECT_THROW(MomentPartitioner(fig.netlist, {"g1"}, "ghost", fig.v2),
               std::invalid_argument);
  EXPECT_THROW(MomentPartitioner(fig.netlist, {"g1"}, "g2", fig.v2),
               std::invalid_argument);
  EXPECT_THROW(MomentPartitioner(fig.netlist, {"vin"}, "vin", fig.v2),
               std::invalid_argument);
}

TEST(Partitioner, PortsCoverSymbolsAndIo) {
  auto fig = circuits::make_fig1();
  MomentPartitioner p(fig.netlist, {"g2"}, "vin", fig.v2);
  // g2 spans v1-v2; input node in; output v2 -> ports {in, v1, v2}.
  EXPECT_EQ(p.ports().size(), 3u);
}

TEST(Partitioner, NumericPortMomentsMatchSingleResistor) {
  // Numeric partition reduced to a single resistor R between two ports:
  // Y0 = (1/R) [[1,-1],[-1,1]], Y1 = 0.
  Netlist nl;
  const auto a = nl.node("a");
  const auto b = nl.node("b");
  nl.add_voltage_source("vin", a, kGround, 1.0);
  nl.add_resistor("rnum", a, b, 2000.0);
  nl.add_capacitor("csym", b, kGround, 1e-12);  // symbolic -> not in partition
  MomentPartitioner p(nl, {"csym"}, "vin", b);
  const auto yk = p.numeric_port_moments(2);
  ASSERT_EQ(p.ports().size(), 2u);
  const double g = 1.0 / 2000.0;
  EXPECT_NEAR(yk[0][0 * 2 + 0], g, 1e-12);
  EXPECT_NEAR(yk[0][0 * 2 + 1], -g, 1e-12);
  EXPECT_NEAR(yk[0][1 * 2 + 0], -g, 1e-12);
  EXPECT_NEAR(yk[0][1 * 2 + 1], g, 1e-12);
  for (int i = 0; i < 4; ++i) EXPECT_NEAR(yk[1][i], 0.0, 1e-18);
}

TEST(Partitioner, NumericPortMomentsOfInternalRc) {
  // Partition: port -- R -- internal node with C to ground.
  // Y(s) = (1/R) * sRC/(1+sRC) = sC - s^2 R C^2 + ...
  Netlist nl;
  const auto a = nl.node("a");
  const auto m = nl.node("m");
  nl.add_voltage_source("vin", a, kGround, 1.0);
  nl.add_resistor("r1", a, m, 1e3);
  nl.add_capacitor("c1", m, kGround, 1e-9);
  nl.add_conductance("gsym", a, kGround, 1e-4);  // symbolic
  MomentPartitioner p(nl, {"gsym"}, "vin", a);
  ASSERT_EQ(p.ports().size(), 1u);
  const auto yk = p.numeric_port_moments(3);
  EXPECT_NEAR(yk[0][0], 0.0, 1e-15);
  EXPECT_NEAR(yk[1][0], 1e-9, 1e-18);          // sC
  EXPECT_NEAR(yk[2][0], -1e3 * 1e-18, 1e-24);  // -R C^2
}

TEST(Partitioner, Fig1FullSymbolicMatchesEquation5) {
  // All four elements symbolic: the composite moments must reproduce the
  // Maclaurin series of eqn (5) symbolically.
  auto fig = circuits::make_fig1();
  MomentPartitioner p(fig.netlist, {"g1", "g2", "c1", "c2"},
                      circuits::Fig1Circuit::kInput, fig.v2);
  const auto sym = p.compute(4);
  ASSERT_EQ(sym.symbols.size(), 4u);

  // Check against the closed form at random-ish points.
  for (const auto& vals : std::vector<std::vector<double>>{
           {1e-3, 2e-3, 1e-12, 3e-12},
           {5e-3, 5e-4, 7e-12, 2e-12},
           {1.0, 2.0, 3.0, 4.0}}) {
    const double g1 = vals[0], g2 = vals[1], c1 = vals[2], c2 = vals[3];
    const double d0 = g1 * g2;
    const double d1 = g2 * c1 + g2 * c2 + g1 * c2;
    const double d2 = c1 * c2;
    std::vector<double> expected(4);
    expected[0] = 1.0;
    expected[1] = -d1 / d0;
    expected[2] = (-d1 * expected[1] - d2 * expected[0]) / d0;
    expected[3] = (-d1 * expected[2] - d2 * expected[1]) / d0;
    const auto got = sym.evaluate(vals);
    for (std::size_t k = 0; k < 4; ++k)
      EXPECT_NEAR(got[k], expected[k], 1e-9 * (std::abs(expected[k]) + 1e-12))
          << "k=" << k;
  }
}

TEST(Partitioner, MomentsMatchFullAweAcrossSymbolValues) {
  // The central claim: symbolic moments evaluated at any symbol values are
  // identical to a full numeric AWE moment computation at those values.
  circuits::Fig1Values base;
  auto fig = circuits::make_fig1(base);
  MomentPartitioner p(fig.netlist, {"g2", "c2"}, circuits::Fig1Circuit::kInput, fig.v2);
  const auto sym = p.compute(6);

  for (const double g2 : {0.5, 1.0, 4.0}) {
    for (const double c2 : {0.25, 1.0, 8.0}) {
      const auto m_sym = sym.evaluate(std::vector<double>{g2, c2});
      circuits::Fig1Values vals = base;
      vals.g2 = g2;
      vals.c2 = c2;
      auto ref = circuits::make_fig1(vals);
      const auto m_ref = engine::MomentGenerator(ref.netlist)
                             .transfer_moments(circuits::Fig1Circuit::kInput, ref.v2, 6);
      for (std::size_t k = 0; k < 6; ++k)
        EXPECT_NEAR(m_sym[k], m_ref[k], 1e-8 * (std::abs(m_ref[k]) + 1e-15))
            << "g2=" << g2 << " c2=" << c2 << " k=" << k;
    }
  }
}

TEST(Partitioner, ResistorSymbolUsesReciprocal) {
  Netlist nl;
  const auto in = nl.node("in");
  const auto out = nl.node("out");
  nl.add_voltage_source("vin", in, kGround, 1.0);
  nl.add_resistor("rsym", in, out, 1e3);
  nl.add_capacitor("cl", out, kGround, 1e-9);
  MomentPartitioner p(nl, {"rsym"}, "vin", out);
  const auto sym = p.compute(4);
  ASSERT_TRUE(sym.symbols[0].reciprocal);
  // m_k = (-RC)^k; evaluate at R = 2k.
  const auto m = sym.evaluate(std::vector<double>{2e3});
  const double rc = 2e3 * 1e-9;
  for (std::size_t k = 0; k < 4; ++k)
    EXPECT_NEAR(m[k], std::pow(-rc, static_cast<double>(k)), 1e-10 * std::pow(rc, k));
}

TEST(Partitioner, InductorSymbol) {
  // R in numeric partition, L symbolic: H = R/(R + sL) across the R?
  // Output across L: H = sL/(R+sL): m1 = L/R, m2 = -(L/R)^2 L... use AWE ref.
  Netlist nl;
  const auto in = nl.node("in");
  const auto out = nl.node("out");
  nl.add_voltage_source("vin", in, kGround, 1.0);
  nl.add_resistor("r1", in, out, 50.0);
  nl.add_inductor("lsym", out, kGround, 1e-6);
  MomentPartitioner p(nl, {"lsym"}, "vin", out);
  const auto sym = p.compute(4);
  for (const double lval : {1e-7, 1e-6, 5e-6}) {
    nl.set_value("lsym", lval);
    const auto m_ref = engine::MomentGenerator(nl).transfer_moments("vin", out, 4);
    const auto m_sym = sym.evaluate(std::vector<double>{lval});
    for (std::size_t k = 0; k < 4; ++k)
      EXPECT_NEAR(m_sym[k], m_ref[k], 1e-9 * (std::abs(m_ref[k]) + 1e-18)) << "k=" << k;
  }
}

TEST(Partitioner, VccsSymbol) {
  Netlist nl;
  const auto in = nl.node("in");
  const auto a = nl.node("a");
  const auto out = nl.node("out");
  nl.add_voltage_source("vin", in, kGround, 1.0);
  nl.add_resistor("r1", in, a, 1e3);
  nl.add_capacitor("c1", a, kGround, 1e-12);
  nl.add_vccs("gmsym", out, kGround, a, kGround, 1e-3);
  nl.add_resistor("r2", out, kGround, 5e3);
  nl.add_capacitor("c2", out, kGround, 2e-12);
  MomentPartitioner p(nl, {"gmsym"}, "vin", out);
  const auto sym = p.compute(4);
  for (const double gm : {1e-4, 1e-3, 5e-3}) {
    nl.set_value("gmsym", gm);
    const auto m_ref = engine::MomentGenerator(nl).transfer_moments("vin", out, 4);
    const auto m_sym = sym.evaluate(std::vector<double>{gm});
    for (std::size_t k = 0; k < 4; ++k)
      EXPECT_NEAR(m_sym[k], m_ref[k], 1e-9 * (std::abs(m_ref[k]) + 1e-18)) << "k=" << k;
  }
}

TEST(Partitioner, CurrentSourceInput) {
  // Input as a current source into an RC with symbolic C.
  Netlist nl;
  const auto a = nl.node("a");
  nl.add_current_source("iin", kGround, a, 1.0);
  nl.add_resistor("r1", a, kGround, 1e3);
  nl.add_capacitor("csym", a, kGround, 1e-9);
  MomentPartitioner p(nl, {"csym"}, "iin", a);
  const auto sym = p.compute(3);
  // H(s) = R/(1+sRC): m0 = R, m1 = -R^2 C, m2 = R^3 C^2.
  const auto m = sym.evaluate(std::vector<double>{1e-9});
  EXPECT_NEAR(m[0], 1e3, 1e-9);
  EXPECT_NEAR(m[1], -1e6 * 1e-9, 1e-9);
  EXPECT_NEAR(m[2], 1e9 * 1e-18, 1e-12);
}

TEST(Partitioner, MultilinearFirstTwoMoments) {
  // With MNA stamps linear per symbol, det(Y0) and N_0 are multilinear —
  // the property the paper notes for first-order forms.
  auto fig = circuits::make_fig1();
  MomentPartitioner p(fig.netlist, {"g1", "g2"}, circuits::Fig1Circuit::kInput, fig.v2);
  const auto sym = p.compute(2);
  for (const auto& t : sym.det_y0.terms())
    for (const auto e : t.exponents) EXPECT_LE(e, 1);
  for (const auto& t : sym.numerators[0].terms())
    for (const auto e : t.exponents) EXPECT_LE(e, 1);
}

TEST(SymbolicMoments, MomentAccessorAndNames) {
  auto fig = circuits::make_fig1();
  MomentPartitioner p(fig.netlist, {"g2", "c2"}, circuits::Fig1Circuit::kInput, fig.v2);
  const auto sym = p.compute(2);
  const auto names = sym.symbol_names();
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "g2");
  EXPECT_EQ(names[1], "c2");
  const auto m0 = sym.moment(0);
  const std::vector<double> pt{1.0, 1.0};
  EXPECT_NEAR(m0.evaluate(pt), 1.0, 1e-9);
  EXPECT_THROW(sym.evaluate(std::vector<double>{1.0}), std::invalid_argument);
}

}  // namespace
}  // namespace awe::part
