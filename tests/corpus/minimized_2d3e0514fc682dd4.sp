* awe_fuzz generated deck seed=3260048767954988500
rsp3 n3 n1 1000
rb8 n1 0 100
iin n1 0 1
.symbol rsp3
.input iin
.output n1
.end
