// Compiled symbolic gradient programs (exact dm/de over the symbol range).
#include <gtest/gtest.h>

#include <cmath>

#include "awe/sensitivity.hpp"
#include "circuits/fig1_rc.hpp"
#include "circuits/opamp741.hpp"
#include "core/awesymbolic.hpp"

namespace awe::core {
namespace {

TEST(Gradients, RequiresOptIn) {
  auto fig = circuits::make_fig1();
  const auto model = CompiledModel::build(fig.netlist, {"g2"},
                                          circuits::Fig1Circuit::kInput, fig.v2,
                                          {.order = 2});
  EXPECT_FALSE(model.has_gradients());
  EXPECT_THROW(model.moments_and_gradients(std::vector<double>{1.0}), std::logic_error);
}

TEST(Gradients, MatchFiniteDifferencesAcrossTheRange) {
  auto fig = circuits::make_fig1();
  const auto model = CompiledModel::build(
      fig.netlist, {"g2", "c2"}, circuits::Fig1Circuit::kInput, fig.v2,
      {.order = 2, .with_gradients = true});
  ASSERT_TRUE(model.has_gradients());

  const double rel = 1e-6;
  for (const double g2 : {0.3, 1.0, 4.0}) {
    for (const double c2 : {0.5, 2.0}) {
      const std::vector<double> vals{g2, c2};
      const auto mg = model.moments_and_gradients(vals);
      // Moments agree with the plain path.
      const auto m_plain = model.moments_at(vals);
      for (std::size_t k = 0; k < 4; ++k)
        EXPECT_NEAR(mg.moments[k], m_plain[k], 1e-12 * (std::abs(m_plain[k]) + 1e-15));
      // Gradients vs central differences.
      for (std::size_t i = 0; i < 2; ++i) {
        auto hi = vals, lo = vals;
        hi[i] *= 1 + rel;
        lo[i] *= 1 - rel;
        const auto mh = model.moments_at(hi);
        const auto ml = model.moments_at(lo);
        for (std::size_t k = 0; k < 4; ++k) {
          const double fd = (mh[k] - ml[k]) / (2 * rel * vals[i]);
          EXPECT_NEAR(mg.dm[k][i], fd, 1e-4 * std::abs(fd) + 1e-9 * std::abs(mg.moments[k] / vals[i]))
              << "g2=" << g2 << " c2=" << c2 << " k=" << k << " i=" << i;
        }
      }
    }
  }
}

TEST(Gradients, ReciprocalChainRuleForResistors) {
  circuit::Netlist nl;
  const auto in = nl.node("in");
  const auto out = nl.node("out");
  nl.add_voltage_source("vin", in, circuit::kGround, 1.0);
  nl.add_resistor("rsym", in, out, 1e3);
  nl.add_capacitor("c1", out, circuit::kGround, 1e-9);
  const auto model = CompiledModel::build(nl, {"rsym"}, "vin", out,
                                          {.order = 1, .with_gradients = true});
  // m1 = -R C; dm1/dR = -C.
  const auto mg = model.moments_and_gradients(std::vector<double>{2e3});
  EXPECT_NEAR(mg.moments[1], -2e3 * 1e-9, 1e-18);
  EXPECT_NEAR(mg.dm[1][0], -1e-9, 1e-16);
  EXPECT_NEAR(mg.dm[0][0], 0.0, 1e-16);  // DC gain independent of R here
}

TEST(Gradients, AgreeWithAdjointSensitivitiesAtNominal) {
  // Two independent sensitivity machineries (adjoint numeric vs compiled
  // symbolic differentiation) must agree at the nominal point.
  auto amp = circuits::make_opamp741();
  const std::vector<std::string> symbols{circuits::Opamp741Circuit::kSymbolGout,
                                         circuits::Opamp741Circuit::kSymbolCcomp};
  const auto model = CompiledModel::build(
      amp.netlist, symbols, circuits::Opamp741Circuit::kInput, amp.out,
      {.order = 2, .with_gradients = true});

  engine::MomentGenerator gen(amp.netlist);
  const auto ms = engine::moment_sensitivities(gen, circuits::Opamp741Circuit::kInput,
                                               amp.out, 4);
  const circuits::Opamp741Values nom;
  const auto mg =
      model.moments_and_gradients(std::vector<double>{nom.gout_q14, nom.c_comp});
  for (std::size_t i = 0; i < 2; ++i) {
    const auto idx = *amp.netlist.find_element(symbols[i]);
    for (std::size_t k = 0; k < 4; ++k)
      EXPECT_NEAR(mg.dm[k][i], ms.dm[k][idx],
                  1e-6 * (std::abs(ms.dm[k][idx]) + 1e-30))
          << "i=" << i << " k=" << k;
  }
}

TEST(Gradients, GradientDrivenNewtonFindsTargetDelay) {
  // The optimizer use case: find C2 such that the Elmore delay -m1 hits a
  // target, by Newton iteration on the compiled gradients.
  auto fig = circuits::make_fig1();
  const auto model = CompiledModel::build(
      fig.netlist, {"c2"}, circuits::Fig1Circuit::kInput, fig.v2,
      {.order = 2, .with_gradients = true});
  const double target = 3.0;  // seconds (unit-valued circuit)
  double c2 = 0.3;
  for (int it = 0; it < 50; ++it) {
    const auto mg = model.moments_and_gradients(std::vector<double>{c2});
    const double f = -mg.moments[1] - target;
    const double df = -mg.dm[1][0];
    if (std::abs(f) < 1e-12) break;
    c2 -= f / df;
  }
  const auto m = model.moments_at(std::vector<double>{c2});
  EXPECT_NEAR(-m[1], target, 1e-9);
  EXPECT_GT(c2, 0.0);
}

}  // namespace
}  // namespace awe::core
