#include <gtest/gtest.h>

#include <cmath>
#include <complex>

#include "awe/awe.hpp"
#include "awe/pade.hpp"
#include "awe/rom.hpp"
#include "circuits/fig1_rc.hpp"

namespace awe::engine {
namespace {

std::vector<double> moments_of_poles(const std::vector<std::complex<double>>& poles,
                                     const std::vector<std::complex<double>>& residues,
                                     std::size_t count) {
  // m_k = -sum_i r_i / p_i^{k+1}
  std::vector<double> m(count, 0.0);
  for (std::size_t k = 0; k < count; ++k) {
    std::complex<double> s{0, 0};
    for (std::size_t i = 0; i < poles.size(); ++i)
      s -= residues[i] / std::pow(poles[i], static_cast<double>(k + 1));
    m[k] = s.real();
  }
  return m;
}

TEST(Pade, RecoversExactSecondOrderSystem) {
  const std::vector<std::complex<double>> poles{{-1e6, 0}, {-5e7, 0}};
  const std::vector<std::complex<double>> residues{{2e6, 0}, {-1e7, 0}};
  const auto m = moments_of_poles(poles, residues, 4);
  const auto pade = pade_from_moments(m, 2);
  ASSERT_EQ(pade.poles.size(), 2u);
  // Both exact poles recovered.
  for (const auto& p : poles) {
    double best = 1e300;
    for (const auto& got : pade.poles) best = std::min(best, std::abs(got - p));
    EXPECT_LT(best, 1e-3 * std::abs(p));
  }
  // Residues too.
  for (std::size_t i = 0; i < 2; ++i) {
    double best = 1e300;
    for (std::size_t j = 0; j < 2; ++j)
      if (std::abs(pade.poles[j] - poles[i]) < 1e-2 * std::abs(poles[i]))
        best = std::min(best, std::abs(pade.residues[j] - residues[i]));
    EXPECT_LT(best, 1e-3 * std::abs(residues[i]));
  }
}

TEST(Pade, RecoversComplexPolePair) {
  const std::vector<std::complex<double>> poles{{-1e5, 3e5}, {-1e5, -3e5}};
  const std::vector<std::complex<double>> residues{{1e5, -2e4}, {1e5, 2e4}};
  const auto m = moments_of_poles(poles, residues, 4);
  const auto pade = pade_from_moments(m, 2);
  double best = 1e300;
  for (const auto& got : pade.poles) best = std::min(best, std::abs(got - poles[0]));
  EXPECT_LT(best, 1e-2 * std::abs(poles[0]));
}

TEST(Pade, InputValidation) {
  const std::vector<double> m{1.0, -1.0};
  EXPECT_THROW(pade_from_moments(m, 0), std::invalid_argument);
  EXPECT_THROW(pade_from_moments(m, 2), std::invalid_argument);
}

TEST(Pade, DegenerateMomentsRejected) {
  // Moments of a 1-pole system cannot support order 2 (singular Hankel).
  const std::vector<double> m{1.0, -1.0, 1.0, -1.0};
  EXPECT_THROW(pade_from_moments(m, 2), std::runtime_error);
  EXPECT_EQ(max_feasible_order(m), 1u);
}

TEST(Pade, MomentsPreservedByApproximant) {
  // The defining property: the Padé matches its own first 2q moments.
  auto fig = circuits::make_fig1(
      {.g1 = 1e-3, .g2 = 2e-3, .c1 = 1e-12, .c2 = 4e-12});
  const auto rom = run_awe(fig.netlist, circuits::Fig1Circuit::kInput, fig.v2,
                           {.order = 2});
  const auto& m = rom.moments();
  // Reconstruct moments from the pole/residue form.
  for (std::size_t k = 0; k < m.size(); ++k) {
    std::complex<double> s{0, 0};
    for (std::size_t i = 0; i < rom.poles().size(); ++i)
      s -= rom.residues()[i] / std::pow(rom.poles()[i], static_cast<double>(k + 1));
    EXPECT_NEAR(s.real(), m[k], 1e-6 * std::abs(m[k])) << "k=" << k;
    EXPECT_NEAR(s.imag(), 0.0, 1e-6 * std::abs(m[k]));
  }
}

TEST(Rom, Fig1ExactPolesAtFullOrder) {
  // Order 2 on a 2-pole circuit is exact: poles are the roots of eqn (5).
  circuits::Fig1Values vals{.g1 = 1e-3, .g2 = 1e-3, .c1 = 2e-12, .c2 = 1e-12};
  auto fig = circuits::make_fig1(vals);
  const auto ex = circuits::fig1_exact(vals);
  const auto rom = run_awe(fig.netlist, circuits::Fig1Circuit::kInput, fig.v2,
                           {.order = 2});
  ASSERT_EQ(rom.order(), 2u);
  // Roots of d2 s^2 + d1 s + d0.
  const double disc = ex.den_s1 * ex.den_s1 - 4.0 * ex.den_s2 * ex.den_s0;
  ASSERT_GT(disc, 0.0);
  const double p1 = (-ex.den_s1 + std::sqrt(disc)) / (2.0 * ex.den_s2);
  const double p2 = (-ex.den_s1 - std::sqrt(disc)) / (2.0 * ex.den_s2);
  for (const double p : {p1, p2}) {
    double best = 1e300;
    for (const auto& got : rom.poles()) best = std::min(best, std::abs(got - p));
    EXPECT_LT(best, 1e-4 * std::abs(p));
  }
  EXPECT_TRUE(rom.is_stable());
  EXPECT_NEAR(rom.dc_gain(), 1.0, 1e-9);
}

TEST(Rom, StepResponseLimits) {
  auto fig = circuits::make_fig1({.g1 = 1e-3, .g2 = 1e-3, .c1 = 1e-12, .c2 = 1e-12});
  const auto rom = run_awe(fig.netlist, circuits::Fig1Circuit::kInput, fig.v2,
                           {.order = 2});
  EXPECT_NEAR(rom.step_response(0.0), 0.0, 1e-9);
  EXPECT_NEAR(rom.step_response(1.0), rom.step_final_value(), 1e-6);
  const auto t50 = rom.step_crossing_time(0.5, 1e-6);
  ASSERT_TRUE(t50.has_value());
  EXPECT_GT(*t50, 0.0);
  EXPECT_NEAR(rom.step_response(*t50), 0.5 * rom.step_final_value(), 1e-6);
}

TEST(Rom, ImpulseIsDerivativeOfStep) {
  auto fig = circuits::make_fig1({.g1 = 1e-3, .g2 = 2e-3, .c1 = 3e-12, .c2 = 1e-12});
  const auto rom = run_awe(fig.netlist, circuits::Fig1Circuit::kInput, fig.v2,
                           {.order = 2});
  const double t = 2e-9, h = 1e-13;
  const double numeric = (rom.step_response(t + h) - rom.step_response(t - h)) / (2 * h);
  EXPECT_NEAR(rom.impulse_response(t), numeric, 1e-4 * std::abs(numeric));
}

TEST(Rom, FrequencyDomainMeasures) {
  auto fig = circuits::make_fig1({.g1 = 1e-3, .g2 = 1e-3, .c1 = 1e-12, .c2 = 1e-12});
  const auto rom = run_awe(fig.netlist, circuits::Fig1Circuit::kInput, fig.v2,
                           {.order = 2});
  EXPECT_NEAR(rom.dc_gain(), 1.0, 1e-9);
  // Unity-gain: |H(0)| = 1 exactly, low-pass -> crossing reported as 0.
  EXPECT_DOUBLE_EQ(rom.unity_gain_frequency(), 0.0);
  // Magnitude decreases with frequency for the low-pass.
  EXPECT_GT(rom.magnitude(1e6), rom.magnitude(1e9));
  // Phase lags.
  EXPECT_LT(rom.phase_deg(1e8), 0.0);
  const auto dom = rom.dominant_pole();
  ASSERT_TRUE(dom.has_value());
  EXPECT_LT(dom->real(), 0.0);
}

TEST(Rom, OrderFallbackOnDegenerateCircuit) {
  // Single-pole circuit, order-3 request: falls back to order 1.
  circuit::Netlist nl;
  const auto in = nl.node("in");
  const auto out = nl.node("out");
  nl.add_voltage_source("vin", in, circuit::kGround, 1.0);
  nl.add_resistor("r1", in, out, 1e3);
  nl.add_capacitor("c1", out, circuit::kGround, 1e-9);
  const auto rom = run_awe(nl, "vin", out, {.order = 3});
  EXPECT_EQ(rom.order(), 1u);
  EXPECT_NEAR(rom.poles()[0].real(), -1e6, 1e-2);
}

TEST(Rom, UnknownOutputNodeNameThrows) {
  auto fig = circuits::make_fig1();
  EXPECT_THROW(
      run_awe(fig.netlist, circuits::Fig1Circuit::kInput, std::string("nope"), {}),
      std::invalid_argument);
}

TEST(SolveComplexDense, KnownSystem) {
  using C = std::complex<double>;
  // [1 i; -i 2] x = [1+i; 0]
  std::vector<C> a{C(1, 0), C(0, 1), C(0, -1), C(2, 0)};
  const auto x = solve_complex_dense(a, {C(1, 1), C(0, 0)});
  // Verify residual.
  const C r0 = C(1, 0) * x[0] + C(0, 1) * x[1] - C(1, 1);
  const C r1 = C(0, -1) * x[0] + C(2, 0) * x[1];
  EXPECT_LT(std::abs(r0), 1e-12);
  EXPECT_LT(std::abs(r1), 1e-12);
}

}  // namespace
}  // namespace awe::engine
