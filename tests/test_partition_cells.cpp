// Property tests for partition-cell keying (DESIGN.md §13).
//
// The per-cell canonical encoding is the contract the incremental rebuild
// stands on: keys must be invariant under everything that does not change
// the circuit (node renames, element-addition order) and must move for
// exactly the cells an edit touches.  A wrong key in either direction is
// catastrophic — too sticky reuses stale blocks, too loose rebuilds the
// world and the incremental path silently degenerates to cold builds.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "circuit/netlist.hpp"
#include "partition/cells.hpp"
#include "partition/partitioner.hpp"

namespace awe::part {
namespace {

using circuit::kGround;
using circuit::Netlist;
using circuit::NodeId;

std::vector<std::string> sorted_keys(const CellPlan& plan, std::size_t count) {
  std::vector<std::string> keys;
  keys.reserve(plan.cells.size());
  for (const Cell& c : plan.cells) keys.push_back(cell_key(c, count));
  std::sort(keys.begin(), keys.end());
  return keys;
}

TEST(CellKeys, InvariantUnderNodeRenames) {
  // Same circuit, every node (including the port) renamed and interned in
  // a different order.  The encoding labels nodes by first-encounter
  // order in the canonical element scan, so names must never leak in.
  Netlist a;
  const NodeId ap = a.node("p");
  const NodeId ax = a.node("x");
  a.add_resistor("r1", ap, ax, 100.0);
  a.add_capacitor("c1", ax, kGround, 1e-12);

  Netlist b;
  const NodeId by = b.node("some_mid");   // interned before the port
  const NodeId bp = b.node("the_port");
  b.add_resistor("r1", bp, by, 100.0);
  b.add_capacitor("c1", by, kGround, 1e-12);

  const NodeId pa[] = {ap};
  const NodeId pb[] = {bp};
  const CellPlan plan_a = plan_cells(a, pa);
  const CellPlan plan_b = plan_cells(b, pb);
  ASSERT_EQ(plan_a.cells.size(), 1u);
  ASSERT_EQ(plan_b.cells.size(), 1u);
  EXPECT_EQ(cell_key(plan_a.cells[0], 4), cell_key(plan_b.cells[0], 4));
  // The moment count is part of the key: blocks of different depth must
  // never collide in the store.
  EXPECT_NE(cell_key(plan_a.cells[0], 4), cell_key(plan_a.cells[0], 6));
}

TEST(CellKeys, InvariantUnderElementReorder) {
  // Two components hanging off one port, elements added in opposite
  // orders.  Cells scan elements by name, so addition order is invisible.
  Netlist a;
  const NodeId ap = a.node("p");
  const NodeId ax = a.node("x");
  const NodeId ay = a.node("y");
  a.add_resistor("r1", ap, ax, 100.0);
  a.add_capacitor("c1", ax, kGround, 1e-12);
  a.add_resistor("r2", ap, ay, 200.0);
  a.add_capacitor("c2", ay, kGround, 2e-12);

  Netlist b;
  const NodeId bp = b.node("p");
  const NodeId by = b.node("y");
  const NodeId bx = b.node("x");
  b.add_capacitor("c2", by, kGround, 2e-12);
  b.add_resistor("r2", bp, by, 200.0);
  b.add_capacitor("c1", bx, kGround, 1e-12);
  b.add_resistor("r1", bp, bx, 100.0);

  const NodeId pa[] = {ap};
  const NodeId pb[] = {bp};
  const CellPlan plan_a = plan_cells(a, pa);
  const CellPlan plan_b = plan_cells(b, pb);
  ASSERT_EQ(plan_a.cells.size(), 2u);
  EXPECT_EQ(sorted_keys(plan_a, 4), sorted_keys(plan_b, 4));
}

// One port feeding three disjoint RC branches — three cells, since the
// branches share only the cut node.
Netlist three_branch(NodeId* port, double r2 = 200.0) {
  Netlist nl;
  const NodeId p = nl.node("p");
  const NodeId x = nl.node("x");
  const NodeId y = nl.node("y");
  const NodeId z = nl.node("z");
  nl.add_resistor("r1", p, x, 100.0);
  nl.add_capacitor("c1", x, kGround, 1e-12);
  nl.add_resistor("r2", p, y, r2);
  nl.add_capacitor("c2", y, kGround, 2e-12);
  nl.add_resistor("r3", p, z, 300.0);
  nl.add_capacitor("c3", z, kGround, 3e-12);
  *port = p;
  return nl;
}

TEST(CellKeys, ValueEditDirtiesExactlyOneCell) {
  NodeId pa = 0;
  NodeId pb = 0;
  const Netlist base = three_branch(&pa);
  const Netlist edited = three_branch(&pb, 250.0);  // r2 value changed

  const NodeId ports_a[] = {pa};
  const NodeId ports_b[] = {pb};
  const auto keys_base = sorted_keys(plan_cells(base, ports_a), 4);
  const auto keys_edit = sorted_keys(plan_cells(edited, ports_b), 4);
  ASSERT_EQ(keys_base.size(), 3u);
  ASSERT_EQ(keys_edit.size(), 3u);

  std::vector<std::string> shared;
  std::set_intersection(keys_base.begin(), keys_base.end(), keys_edit.begin(),
                        keys_edit.end(), std::back_inserter(shared));
  // Exactly the r2 cell is dirty: two of three keys survive the edit.
  EXPECT_EQ(shared.size(), 2u);
}

TEST(CellKeys, TopologyEditAcrossBoundaryDirtiesBothCells) {
  NodeId pa = 0;
  NodeId pb = 0;
  const Netlist base = three_branch(&pa);
  Netlist bridged = three_branch(&pb);
  // New resistor between branch-1 and branch-2 internals: the two cells
  // merge, both old keys die, and branch 3 must be untouched.
  bridged.add_resistor("rbridge", *bridged.find_node("x"), *bridged.find_node("y"),
                       50.0);

  const NodeId ports_a[] = {pa};
  const NodeId ports_b[] = {pb};
  const auto keys_base = sorted_keys(plan_cells(base, ports_a), 4);
  const auto keys_new = sorted_keys(plan_cells(bridged, ports_b), 4);
  ASSERT_EQ(keys_base.size(), 3u);
  ASSERT_EQ(keys_new.size(), 2u);  // branches 1+2 merged, branch 3 alone

  std::vector<std::string> shared;
  std::set_intersection(keys_base.begin(), keys_base.end(), keys_new.begin(),
                        keys_new.end(), std::back_inserter(shared));
  EXPECT_EQ(shared.size(), 1u);  // only branch 3's key survives
}

TEST(CellKeys, CoupledElementsShareACell) {
  // CCCS reads its controlling V source by name; they must land in one
  // cell even with no shared internal node, or the cell sub-circuit could
  // not resolve the reference.
  Netlist nl;
  const NodeId p = nl.node("p");
  const NodeId x = nl.node("x");
  const NodeId y = nl.node("y");
  nl.add_voltage_source("vsense", p, x, 0.0);
  nl.add_resistor("rin", x, kGround, 100.0);
  nl.add_cccs("f1", y, kGround, "vsense", 2.0);
  nl.add_resistor("rout", y, p, 500.0);
  const NodeId ports[] = {p};
  const CellPlan plan = plan_cells(nl, ports);
  ASSERT_EQ(plan.cells.size(), 1u);
  EXPECT_EQ(plan.cells[0].elements.size(), 4u);
}

TEST(CellExtraction, ForcedSplitMatchesUnsplitExtraction) {
  // An RC ladder long enough that cell_target=2 forces BFS splitting with
  // promoted seam nodes; the split-extract-Schur pipeline must agree with
  // the unsplit single-cell extraction to fp-roundoff.
  Netlist nl;
  const NodeId in = nl.node("in");
  nl.add_voltage_source("vin", in, kGround, 1.0);
  NodeId prev = in;
  for (int i = 0; i < 12; ++i) {
    const NodeId n = nl.node("m" + std::to_string(i));
    nl.add_resistor("r" + std::to_string(i), prev, n, 100.0 + 7.0 * i);
    nl.add_capacitor("c" + std::to_string(i), n, kGround, 1e-12 * (1 + i % 3));
    prev = n;
  }
  nl.add_capacitor("csym", prev, kGround, 1e-12);  // symbolic -> port at prev

  MomentPartitioner part(nl, {"csym"}, "vin", prev);
  const auto whole = part.numeric_port_moments(6);

  ExtractOptions split_opts;
  split_opts.cell_target = 2;
  const auto split = part.numeric_port_moments(6, split_opts);

  ASSERT_EQ(split.size(), whole.size());
  for (std::size_t k = 0; k < whole.size(); ++k) {
    ASSERT_EQ(split[k].size(), whole[k].size());
    for (std::size_t i = 0; i < whole[k].size(); ++i) {
      const double scale = std::max(1e-30, std::abs(whole[k][i]));
      EXPECT_NEAR(split[k][i], whole[k][i], 1e-9 * scale)
          << "moment " << k << " entry " << i;
    }
  }
}

}  // namespace
}  // namespace awe::part
