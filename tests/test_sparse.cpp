#include <gtest/gtest.h>

#include "linalg/sparse.hpp"

namespace awe::linalg {
namespace {

TEST(TripletMatrix, DuplicatesAreSummedOnCompress) {
  TripletMatrix t(3, 3);
  t.add(0, 0, 1.0);
  t.add(0, 0, 2.0);
  t.add(2, 1, -4.0);
  const auto s = t.compress();
  EXPECT_EQ(s.nnz(), 2u);
  EXPECT_DOUBLE_EQ(s.at(0, 0), 3.0);
  EXPECT_DOUBLE_EQ(s.at(2, 1), -4.0);
  EXPECT_DOUBLE_EQ(s.at(1, 1), 0.0);
}

TEST(TripletMatrix, ExplicitZeroCancellationDropped) {
  TripletMatrix t(2, 2);
  t.add(0, 1, 5.0);
  t.add(0, 1, -5.0);
  EXPECT_EQ(t.compress().nnz(), 0u);
  EXPECT_EQ(t.compress(/*keep_zeros=*/true).nnz(), 1u);
}

TEST(SparseMatrix, RowIndicesSortedWithinColumns) {
  TripletMatrix t(4, 2);
  t.add(3, 0, 1.0);
  t.add(1, 0, 2.0);
  t.add(2, 0, 3.0);
  const auto s = t.compress();
  const auto ri = s.row_idx();
  ASSERT_EQ(ri.size(), 3u);
  EXPECT_TRUE(ri[0] < ri[1] && ri[1] < ri[2]);
}

TEST(SparseMatrix, MultiplyMatchesDense) {
  TripletMatrix t(3, 3);
  t.add(0, 0, 2.0);
  t.add(1, 0, -1.0);
  t.add(1, 1, 3.0);
  t.add(2, 2, 4.0);
  t.add(0, 2, 1.0);
  const auto s = t.compress();
  const auto d = s.to_dense();
  const Vector x{1.0, 2.0, 3.0};
  const auto ys = s.multiply(x);
  const auto yd = d * x;
  for (std::size_t i = 0; i < 3; ++i) EXPECT_DOUBLE_EQ(ys[i], yd[i]);
}

TEST(SparseMatrix, MultiplyTransposedMatchesDense) {
  TripletMatrix t(3, 3);
  t.add(0, 1, 2.0);
  t.add(2, 0, -1.5);
  t.add(1, 2, 0.5);
  const auto s = t.compress();
  const auto dt = s.to_dense().transposed();
  const Vector x{1.0, -1.0, 2.0};
  const auto ys = s.multiply_transposed(x);
  const auto yd = dt * x;
  for (std::size_t i = 0; i < 3; ++i) EXPECT_DOUBLE_EQ(ys[i], yd[i]);
}

TEST(SparseMatrix, SizeMismatchThrows) {
  TripletMatrix t(2, 3);
  const auto s = t.compress();
  EXPECT_THROW(s.multiply(Vector{1.0}), std::invalid_argument);
  EXPECT_THROW(s.multiply_transposed(Vector{1.0}), std::invalid_argument);
}

}  // namespace
}  // namespace awe::linalg
