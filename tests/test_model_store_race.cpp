// SharedModelStore publish/acquire/release hammer (DESIGN.md §15.4).
//
// Eight threads — publishers republishing the model as fast as they can,
// readers acquiring, evaluating and releasing — beat on one store.  Run
// under TSan (the sanitizer CI matrix builds these tests with
// -DAWE_SANITIZE=thread) this pins the store's concurrency contract:
//   - every publish returns a UNIQUE generation, even when several
//     publishers race one swap (the reservation counter in
//     model_store.cpp; before it, two publishers could mint one shm name
//     and the loser's stale-unlink ripped the winner's region away);
//   - generations observed through acquire(&gen) are monotone per reader
//     and the pinned model matches the pinned generation — the pin and
//     the generation number are one atomic step;
//   - a pinned model keeps evaluating bit-identically while any number of
//     publishes retire its generation underneath it;
//   - the store converges: when the dust settles, generation() equals the
//     highest generation any publisher minted.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <set>
#include <sstream>
#include <thread>
#include <vector>

#include "circuit/parser.hpp"
#include "core/awesymbolic.hpp"
#include "core/model_store.hpp"

namespace awe::core {
namespace {

constexpr const char* kDeck = R"(* store race deck
Vin in 0 1
R1 in a 1k
C1 a 0 10p
R2 a out 2k
C2 out 0 5p
.symbol R2
.symbol C2
.input vin
.output out
.end
)";

CompiledModel build_model() {
  std::istringstream in(kDeck);
  circuit::ParsedDeck deck = circuit::parse_deck(in);
  return CompiledModel::build(deck.netlist, deck.symbol_elements,
                              deck.input_source, deck.output_node, {.order = 2});
}

void hammer(SharedModelStore& store, const CompiledModel& model) {
  constexpr std::size_t kPublishers = 2;
  constexpr std::size_t kReaders = 6;
  constexpr std::size_t kPublishesEach = 40;

  store.publish(model);
  const std::vector<double> at = {2e3, 5e-12};
  const auto reference = model.moments_at(at);

  std::atomic<bool> stop{false};
  std::vector<std::vector<std::uint64_t>> minted(kPublishers);
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kPublishers; ++t)
    threads.emplace_back([&, t] {
      for (std::size_t i = 0; i < kPublishesEach; ++i)
        minted[t].push_back(store.publish(model));
    });
  std::atomic<std::size_t> failures{0};
  for (std::size_t t = 0; t < kReaders; ++t)
    threads.emplace_back([&] {
      std::uint64_t last_gen = 0;
      while (!stop.load(std::memory_order_acquire)) {
        std::uint64_t gen = 0;
        const auto pinned = store.acquire(&gen);
        if (!pinned || gen < last_gen || pinned->moments_at(at) != reference)
          failures.fetch_add(1, std::memory_order_relaxed);
        last_gen = gen;
      }
    });
  for (std::size_t t = 0; t < kPublishers; ++t) threads[t].join();
  stop.store(true, std::memory_order_release);
  for (std::size_t t = kPublishers; t < threads.size(); ++t) threads[t].join();

  EXPECT_EQ(failures.load(), 0u);

  // Initial publish + every minted generation: all distinct.
  std::set<std::uint64_t> gens{1};
  std::uint64_t highest = 1;
  for (const auto& per_thread : minted)
    for (const std::uint64_t g : per_thread) {
      EXPECT_TRUE(gens.insert(g).second) << "generation " << g << " minted twice";
      highest = std::max(highest, g);
    }
  EXPECT_EQ(gens.size(), 1 + kPublishers * kPublishesEach);
  EXPECT_EQ(store.generation(), highest);

  // No readers pinned: only the current generation's region stays mapped.
  EXPECT_EQ(store.live_generations(), 1u);

  std::uint64_t final_gen = 0;
  const auto final_model = store.acquire(&final_gen);
  ASSERT_NE(final_model, nullptr);
  EXPECT_EQ(final_gen, highest);
  EXPECT_EQ(final_model->moments_at(at), reference);
}

TEST(ModelStoreRace, PublishAcquireHammerHeap) {
  const CompiledModel model = build_model();
  SharedModelStore store("awe_store_race_heap");
  hammer(store, model);
}

TEST(ModelStoreRace, PublishAcquireHammerShm) {
  const CompiledModel model = build_model();
  SharedModelStore store("awe_store_race_shm", SharedModelStore::Backing::kShm);
  hammer(store, model);
}

}  // namespace
}  // namespace awe::core
