// Native backend failure paths (DESIGN.md §12): every rung of the
// emit -> compile -> cache -> dlopen -> validate pipeline can fail, and the
// contract is uniform — the model stays interpreter-only, the attach
// outcome names FailClass::kNativeBackend (kInjectedFault for armed
// failpoints), the global native counters record the fallback, and kNative
// evaluation requests keep returning bit-identical interpreter results.
// "Zero wrong answers": no failure mode below is allowed to change a
// single moment.
//
// The matrix covered here:
//   - no C compiler at all (AWE_CC pointed at a non-executable path);
//   - compiler present but failing (AWE_CC=/bin/false);
//   - cached .so truncated/corrupted on disk (quarantine + recompile);
//   - corrupted .so AND no compiler (quarantine, then clean fallback);
//   - valid module with the wrong checksum (cross-model .so swap);
//   - valid shared object missing the awe_* symbol set;
//   - armed native.compile / native.dlopen failpoints (deterministic
//     injection, no real fault needed).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <optional>
#include <string>
#include <vector>

#include "circuits/fig1_rc.hpp"
#include "core/awesymbolic.hpp"
#include "core/native_backend.hpp"
#include "health/failpoints.hpp"
#include "health/report.hpp"

namespace awe {
namespace {

namespace fp = health::failpoints;
using core::CompiledModel;
using core::EvalBackend;
using core::EvalMode;

struct TempDir {
  std::filesystem::path path;
  TempDir() {
    static int counter = 0;
    path = std::filesystem::temp_directory_path() /
           ("awe_fallback_test_" + std::to_string(::getpid()) + "_" +
            std::to_string(counter++));
    std::filesystem::create_directories(path);
  }
  ~TempDir() {
    std::error_code ec;
    std::filesystem::remove_all(path, ec);
  }
  std::string str() const { return path.string(); }
};

/// Scoped environment override restoring the previous value on exit.
struct EnvVarGuard {
  std::string name;
  std::optional<std::string> saved;
  EnvVarGuard(const char* n, const char* value) : name(n) {
    if (const char* v = std::getenv(n)) saved = v;
    ::setenv(n, value, 1);
  }
  ~EnvVarGuard() {
    if (saved)
      ::setenv(name.c_str(), saved->c_str(), 1);
    else
      ::unsetenv(name.c_str());
  }
};

struct FailpointGuard {
  FailpointGuard() { fp::reset(); }
  ~FailpointGuard() { fp::reset(); }
};

bool have_compiler() { return !core::native::find_compiler().empty(); }

CompiledModel make_model() {
  auto fig = circuits::make_fig1();
  return CompiledModel::build(fig.netlist, {"g2", "c2"}, circuits::Fig1Circuit::kInput,
                              fig.v2, {.order = 2});
}

/// Snapshot of the process-global native counters (for before/after deltas;
/// the counters are process-global, so only relative assertions are valid).
struct NativeCounters {
  std::uint64_t compiled, fallbacks, backend_class, injected_class;
  static NativeCounters now() {
    const auto& g = health::global_counters();
    return {g.native_compiled.load(), g.native_fallbacks.load(),
            g.native_fail_counts[static_cast<std::size_t>(
                                     health::FailClass::kNativeBackend)]
                .load(),
            g.native_fail_counts[static_cast<std::size_t>(
                                     health::FailClass::kInjectedFault)]
                .load()};
  }
};

/// kNative requests against a fallen-back model must be bit-identical to
/// the interpreter — the "zero wrong answers" clause.
void expect_interpreter_answers(const CompiledModel& model) {
  const std::size_t n = 8;
  std::vector<double> pts(2 * n);
  for (std::size_t p = 0; p < n; ++p) {
    pts[p] = 0.5 + 0.25 * static_cast<double>(p);      // g2
    pts[n + p] = 2.0 - 0.125 * static_cast<double>(p); // c2
  }
  const std::size_t nm = model.moment_count();
  std::vector<double> a(nm * n, 0.0), b(nm * n, 1.0);
  std::vector<unsigned char> oka(n, 1), okb(n, 1);
  auto wsa = model.make_batch_workspace(n);
  auto wsb = model.make_batch_workspace(n);
  model.moments_batch(pts, n, n, wsa, a, n, oka, EvalMode::kStrict,
                      EvalBackend::kInterpreter);
  model.moments_batch(pts, n, n, wsb, b, n, okb, EvalMode::kStrict,
                      EvalBackend::kNative);
  EXPECT_EQ(oka, okb);
  EXPECT_EQ(a, b);
}

/// The single content-addressed module under `dir` ("" when none).
std::filesystem::path find_module(const std::filesystem::path& dir) {
  for (const auto& e : std::filesystem::directory_iterator(dir))
    if (e.path().extension() == ".so") return e.path();
  return {};
}

TEST(NativeFallbackTest, MissingCompilerDegradesWithNativeBackendClass) {
  EnvVarGuard cc("AWE_CC", "/nonexistent/awe-no-such-compiler");
  TempDir dir;
  auto model = make_model();
  const auto before = NativeCounters::now();
  const health::Status st = model.attach_native(dir.str());
  const auto after = NativeCounters::now();

  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.fail_class, health::FailClass::kNativeBackend);
  EXPECT_FALSE(model.has_native());
  EXPECT_EQ(after.fallbacks, before.fallbacks + 1);
  EXPECT_EQ(after.backend_class, before.backend_class + 1);
  EXPECT_EQ(after.compiled, before.compiled);
  EXPECT_TRUE(find_module(dir.path).empty());  // nothing half-written
  expect_interpreter_answers(model);
}

TEST(NativeFallbackTest, FailingCompilerDegradesWithNativeBackendClass) {
  if (!std::filesystem::exists("/bin/false")) GTEST_SKIP() << "no /bin/false";
  EnvVarGuard cc("AWE_CC", "/bin/false");
  TempDir dir;
  auto model = make_model();
  const auto before = NativeCounters::now();
  const health::Status st = model.attach_native(dir.str());
  const auto after = NativeCounters::now();

  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.fail_class, health::FailClass::kNativeBackend);
  EXPECT_FALSE(model.has_native());
  EXPECT_EQ(after.fallbacks, before.fallbacks + 1);
  EXPECT_TRUE(find_module(dir.path).empty());
  expect_interpreter_answers(model);
}

TEST(NativeFallbackTest, CorruptedModuleIsQuarantinedAndRecompiled) {
  if (!have_compiler()) GTEST_SKIP() << "no C compiler available";
  TempDir dir;
  {
    auto warm = make_model();
    ASSERT_TRUE(warm.attach_native(dir.str()).ok());
  }
  const auto so = find_module(dir.path);
  ASSERT_FALSE(so.empty());
  {  // truncate + garbage: dlopen must reject it
    std::ofstream out(so, std::ios::trunc | std::ios::binary);
    out << "this is not an ELF shared object";
  }

  auto model = make_model();
  const auto before = NativeCounters::now();
  EXPECT_TRUE(model.attach_native(dir.str()).ok());
  EXPECT_TRUE(model.has_native());
  EXPECT_EQ(NativeCounters::now().compiled, before.compiled + 1);
  // Quarantine evidence plus a fresh valid module in its place.
  EXPECT_TRUE(std::filesystem::exists(so.string() + ".bad"));
  EXPECT_TRUE(std::filesystem::exists(so));
  expect_interpreter_answers(model);
}

TEST(NativeFallbackTest, CorruptedModuleWithoutCompilerFallsBackCleanly) {
  if (!have_compiler()) GTEST_SKIP() << "no C compiler available";
  TempDir dir;
  {
    auto warm = make_model();
    ASSERT_TRUE(warm.attach_native(dir.str()).ok());
  }
  const auto so = find_module(dir.path);
  ASSERT_FALSE(so.empty());
  {
    std::ofstream out(so, std::ios::trunc | std::ios::binary);
    out << "garbage";
  }

  EnvVarGuard cc("AWE_CC", "/nonexistent/awe-no-such-compiler");
  auto model = make_model();
  const auto before = NativeCounters::now();
  const health::Status st = model.attach_native(dir.str());
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.fail_class, health::FailClass::kNativeBackend);
  EXPECT_FALSE(model.has_native());
  EXPECT_EQ(NativeCounters::now().fallbacks, before.fallbacks + 1);
  EXPECT_TRUE(std::filesystem::exists(so.string() + ".bad"));
  expect_interpreter_answers(model);
}

TEST(NativeFallbackTest, WrongChecksumModuleIsRejectedAndRecompiled) {
  if (!have_compiler()) GTEST_SKIP() << "no C compiler available";
  // Compile the module of a DIFFERENT program (extra symbol -> different
  // checksum), then plant it at this model's content address.  Validation
  // must reject it on the checksum — a valid module is not enough.
  TempDir dir_other, dir;
  {
    auto fig = circuits::make_fig1();
    auto other = CompiledModel::build(fig.netlist, {"g1", "g2", "c2"},
                                      circuits::Fig1Circuit::kInput, fig.v2,
                                      {.order = 2});
    ASSERT_TRUE(other.attach_native(dir_other.str()).ok());
  }
  {
    auto warm = make_model();
    ASSERT_TRUE(warm.attach_native(dir.str()).ok());
  }
  const auto other_so = find_module(dir_other.path);
  const auto so = find_module(dir.path);
  ASSERT_FALSE(other_so.empty());
  ASSERT_FALSE(so.empty());
  EXPECT_NE(other_so.filename(), so.filename());  // distinct content addresses
  std::filesystem::copy_file(other_so, so,
                             std::filesystem::copy_options::overwrite_existing);

  auto model = make_model();
  EXPECT_TRUE(model.attach_native(dir.str()).ok());
  EXPECT_TRUE(model.has_native());
  EXPECT_TRUE(std::filesystem::exists(so.string() + ".bad"));
  expect_interpreter_answers(model);
}

TEST(NativeFallbackTest, ModuleMissingSymbolsIsRejectedAndRecompiled) {
  if (!have_compiler()) GTEST_SKIP() << "no C compiler available";
  TempDir dir;
  {
    auto warm = make_model();
    ASSERT_TRUE(warm.attach_native(dir.str()).ok());
  }
  const auto so = find_module(dir.path);
  ASSERT_FALSE(so.empty());
  // A perfectly loadable shared object that simply is not an awe module.
  const auto src = dir.path / "dummy.c";
  {
    std::ofstream out(src);
    out << "int awe_unrelated = 0;\n";
  }
  const std::string cmd = core::native::find_compiler() + " -shared -fPIC -o '" +
                          so.string() + "' '" + src.string() + "'";
  ASSERT_EQ(std::system(cmd.c_str()), 0);

  auto model = make_model();
  EXPECT_TRUE(model.attach_native(dir.str()).ok());
  EXPECT_TRUE(model.has_native());
  EXPECT_TRUE(std::filesystem::exists(so.string() + ".bad"));
  expect_interpreter_answers(model);
}

TEST(NativeFallbackTest, CompileFailpointInjectsDeterministically) {
  FailpointGuard guard;
  fp::arm(fp::sites::kNativeCompile, "always");
  TempDir dir;
  auto model = make_model();
  const auto before = NativeCounters::now();
  const health::Status st = model.attach_native(dir.str());
  const auto after = NativeCounters::now();

  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.fail_class, health::FailClass::kInjectedFault);
  EXPECT_FALSE(model.has_native());
  EXPECT_EQ(after.fallbacks, before.fallbacks + 1);
  EXPECT_EQ(after.injected_class, before.injected_class + 1);
  EXPECT_GE(fp::fire_count(fp::sites::kNativeCompile), 1u);
  expect_interpreter_answers(model);
}

TEST(NativeFallbackTest, DlopenFailpointInjectsAfterSuccessfulCompile) {
  if (!have_compiler()) GTEST_SKIP() << "no C compiler available";
  FailpointGuard guard;
  fp::arm(fp::sites::kNativeDlopen, "once");
  TempDir dir;
  auto model = make_model();
  const health::Status st = model.attach_native(dir.str());

  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.fail_class, health::FailClass::kInjectedFault);
  EXPECT_FALSE(model.has_native());
  // The compile itself succeeded: the module is on disk and a later
  // attach (failpoint disarmed by "once") loads it without recompiling.
  ASSERT_FALSE(find_module(dir.path).empty());
  auto retry = make_model();
  EXPECT_TRUE(retry.attach_native(dir.str()).ok());
  EXPECT_TRUE(retry.has_native());
  expect_interpreter_answers(model);
}

TEST(NativeFallbackTest, FallbacksSurfaceInHealthReportJson) {
  EnvVarGuard cc("AWE_CC", "/nonexistent/awe-no-such-compiler");
  TempDir dir;
  auto model = make_model();
  (void)model.attach_native(dir.str());

  health::HealthReport report;
  health::absorb_global_counters(report);
  EXPECT_GE(report.native_fallbacks, 1u);
  const std::string json = report.to_json();
  EXPECT_NE(json.find("\"native\": {\"compiled\": "), std::string::npos) << json;
  EXPECT_NE(json.find("\"fallbacks\": "), std::string::npos) << json;
}

}  // namespace
}  // namespace awe
