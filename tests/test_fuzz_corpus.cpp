// Regression corpus replay.
//
// tests/corpus/ holds decks the fuzzer generated (and, for any historical
// failure, the shrinker minimized).  Every deck is replayed through the
// five-oracle cross-check on each test run: a corpus deck reporting a
// mismatch means a regression in one of the evaluation paths.  The corpus
// also re-asserts the writer round-trip on real committed artifacts.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "circuit/parser.hpp"
#include "circuit/writer.hpp"
#include "testing/compare.hpp"
#include "testing/oracles.hpp"

namespace awe::testing {
namespace {

std::vector<std::filesystem::path> corpus_files() {
  std::vector<std::filesystem::path> files;
  for (const auto& entry : std::filesystem::directory_iterator(AWE_CORPUS_DIR))
    if (entry.path().extension() == ".sp") files.push_back(entry.path());
  std::sort(files.begin(), files.end());
  return files;
}

std::string slurp(const std::filesystem::path& path) {
  std::ifstream is(path);
  std::ostringstream os;
  os << is.rdbuf();
  return os.str();
}

TEST(FuzzCorpus, HasCommittedDecks) {
  const auto files = corpus_files();
  EXPECT_GE(files.size(), 10u) << "corpus at " << AWE_CORPUS_DIR << " is too small";
  // At least one deck must be a shrinker-minimized historical failure.
  EXPECT_TRUE(std::any_of(files.begin(), files.end(), [](const auto& p) {
    return p.filename().string().rfind("minimized_", 0) == 0;
  })) << "no minimized_*.sp fault artifact in the corpus";
}

TEST(FuzzCorpus, ReplayAllDecksThroughOracles) {
  for (const auto& path : corpus_files()) {
    SCOPED_TRACE(path.filename().string());
    circuit::ParsedDeck deck;
    ASSERT_NO_THROW(deck = circuit::parse_deck_string(slurp(path)));
    const OracleResult r = run_oracles(deck);
    // Classification (ill-conditioned / singular) is acceptable; a genuine
    // mismatch is the regression this test exists to catch.
    EXPECT_NE(r.status, OracleStatus::kMismatch) << r.detail;
  }
}

TEST(FuzzCorpus, AllDecksRoundTripThroughWriter) {
  for (const auto& path : corpus_files()) {
    SCOPED_TRACE(path.filename().string());
    const circuit::ParsedDeck deck = circuit::parse_deck_string(slurp(path));
    const circuit::ParsedDeck again =
        circuit::parse_deck_string(circuit::deck_to_string(deck));
    std::string why;
    EXPECT_TRUE(decks_identical(deck, again, &why)) << why;
  }
}

}  // namespace
}  // namespace awe::testing
