// Thread-safety stress tests for the sweep layer: many threads hammering
// one shared const CompiledModel through per-thread workspaces, plus
// ThreadPool lifecycle/exception coverage.  Run these under
// -DAWE_SANITIZE=thread to let TSan check the claimed const-safety.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <random>
#include <stdexcept>
#include <thread>
#include <vector>

#include "circuits/fig1_rc.hpp"
#include "core/awesymbolic.hpp"
#include "engine/sweep.hpp"
#include "engine/thread_pool.hpp"

namespace awe {
namespace {

TEST(SweepStress, ManyThreadsShareOneConstModel) {
  auto fig = circuits::make_fig1();
  const auto model = core::CompiledModel::build(fig.netlist, {"g2", "c2"},
                                                circuits::Fig1Circuit::kInput, fig.v2,
                                                {.order = 2});
  const std::size_t nm = model.moment_count();

  // Shared read-only point set; every thread evaluates all of it.
  const std::size_t npts = 64;
  std::vector<double> points(2 * npts);
  std::mt19937 rng(31);
  std::uniform_real_distribution<double> vdist(0.25, 4.0);
  for (double& v : points) v = vdist(rng);

  std::vector<double> ref(nm * npts);
  for (std::size_t p = 0; p < npts; ++p) {
    const auto m = model.moments_at(std::vector<double>{points[p], points[npts + p]});
    for (std::size_t k = 0; k < nm; ++k) ref[k * npts + p] = m[k];
  }

  constexpr int kThreads = 8;
  constexpr int kIters = 50;
  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      // Per-thread workspaces; the model itself is shared and const.
      auto ws = model.make_workspace();
      auto bws = model.make_batch_workspace(16);
      std::vector<double> vals(2), out(nm * npts);
      std::vector<unsigned char> ok(npts);
      for (int it = 0; it < kIters; ++it) {
        // Scalar path.
        const std::size_t p = static_cast<std::size_t>((t * kIters + it) % npts);
        vals[0] = points[p];
        vals[1] = points[npts + p];
        model.moments_at(vals, ws);
        for (std::size_t k = 0; k < nm; ++k)
          if (ws.moments[k] != ref[k * npts + p]) mismatches.fetch_add(1);
        // Batched path over the whole set.
        for (std::size_t b = 0; b < npts; b += 16) {
          const std::size_t w = std::min<std::size_t>(16, npts - b);
          model.moments_batch(
              std::span<const double>(points.data() + b, points.size() - b), npts, w, bws,
              std::span<double>(out.data() + b, out.size() - b), npts,
              std::span<unsigned char>(ok.data() + b, w));
        }
        for (std::size_t i = 0; i < out.size(); ++i)
          if (out[i] != ref[i]) mismatches.fetch_add(1);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(mismatches.load(), 0);
}

TEST(SweepStress, ConcurrentSweepsOverOneModel) {
  auto fig = circuits::make_fig1();
  const auto model = core::CompiledModel::build(fig.netlist, {"g2", "c2"},
                                                circuits::Fig1Circuit::kInput, fig.v2,
                                                {.order = 2});
  const std::vector<sweep::Distribution> dists{sweep::Distribution::uniform(0.3, 3.0),
                                               sweep::Distribution::uniform(0.3, 3.0)};
  sweep::SweepOptions serial;
  serial.threads = 1;
  const auto ref = sweep::monte_carlo(model, dists, 200, 11, serial);

  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      // Each concurrent caller runs its own multi-threaded sweep.
      sweep::SweepOptions opts;
      opts.threads = 3;
      const auto got = sweep::monte_carlo(model, dists, 200, 11, opts);
      if (got.moments != ref.moments || got.ok != ref.ok) mismatches.fetch_add(1);
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(mismatches.load(), 0);
}

TEST(ThreadPool, CoversEveryIndexExactlyOnce) {
  sweep::ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4u);
  for (const std::size_t n : {std::size_t{0}, std::size_t{1}, std::size_t{3},
                              std::size_t{4}, std::size_t{1000}}) {
    std::vector<std::atomic<int>> hits(n);
    pool.parallel_chunks(n, [&](std::size_t, std::size_t begin, std::size_t end) {
      for (std::size_t i = begin; i < end; ++i) hits[i].fetch_add(1);
    });
    for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(hits[i].load(), 1) << "n " << n;
  }
}

TEST(ThreadPool, SingleThreadRunsInline) {
  sweep::ThreadPool pool(1);
  EXPECT_EQ(pool.size(), 1u);
  const auto caller = std::this_thread::get_id();
  std::thread::id seen;
  pool.parallel_chunks(10, [&](std::size_t worker, std::size_t begin, std::size_t end) {
    EXPECT_EQ(worker, 0u);
    EXPECT_EQ(begin, 0u);
    EXPECT_EQ(end, 10u);
    seen = std::this_thread::get_id();
  });
  EXPECT_EQ(seen, caller);
}

TEST(ThreadPool, PropagatesExceptionsAndStaysUsable) {
  sweep::ThreadPool pool(3);
  for (int round = 0; round < 3; ++round) {
    EXPECT_THROW(
        pool.parallel_chunks(30,
                             [&](std::size_t, std::size_t begin, std::size_t) {
                               if (begin == 0) throw std::runtime_error("chunk failed");
                             }),
        std::runtime_error);
    // Pool must have drained and be reusable for a clean job.
    std::atomic<std::size_t> total{0};
    pool.parallel_chunks(30, [&](std::size_t, std::size_t begin, std::size_t end) {
      total.fetch_add(end - begin);
    });
    EXPECT_EQ(total.load(), 30u);
  }
}

TEST(ThreadPool, ReusedAcrossSweepsMatchesFreshPool) {
  auto fig = circuits::make_fig1();
  const auto model = core::CompiledModel::build(fig.netlist, {"g2", "c2"},
                                                circuits::Fig1Circuit::kInput, fig.v2,
                                                {.order = 2});
  const std::vector<sweep::Distribution> dists{sweep::Distribution::normal(1.0, 0.1),
                                               sweep::Distribution::normal(1.0, 0.1)};
  sweep::ThreadPool pool(3);
  sweep::SweepOptions shared;
  shared.pool = &pool;
  for (const std::uint64_t seed : {1u, 2u, 3u}) {
    const auto a = sweep::monte_carlo(model, dists, 150, seed, shared);
    sweep::SweepOptions fresh;
    fresh.threads = 2;
    const auto b = sweep::monte_carlo(model, dists, 150, seed, fresh);
    EXPECT_EQ(a.moments, b.moments);
    EXPECT_EQ(a.ok_count, b.ok_count);
  }
}

}  // namespace
}  // namespace awe
