#include <gtest/gtest.h>

#include <random>

#include "linalg/dense.hpp"
#include "linalg/lu.hpp"
#include "linalg/sparse_lu.hpp"

namespace awe::linalg {
namespace {

SparseMatrix random_spd_like(std::size_t n, double density, std::mt19937& rng) {
  std::uniform_real_distribution<double> val(-1.0, 1.0);
  std::uniform_real_distribution<double> coin(0.0, 1.0);
  TripletMatrix t(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    t.add(i, i, 5.0 + std::abs(val(rng)));
    for (std::size_t j = 0; j < n; ++j)
      if (i != j && coin(rng) < density) t.add(i, j, val(rng));
  }
  return t.compress();
}

class SparseLuParam : public ::testing::TestWithParam<std::tuple<std::size_t, OrderingKind>> {};

TEST_P(SparseLuParam, MatchesDenseSolve) {
  const auto [n, ordering] = GetParam();
  std::mt19937 rng(static_cast<unsigned>(n) * 7 + 1);
  const auto a = random_spd_like(n, 0.2, rng);

  SparseLu::Options opts;
  opts.ordering = ordering;
  auto lu = SparseLu::factor(a, opts);
  ASSERT_TRUE(lu.has_value());

  std::uniform_real_distribution<double> val(-1.0, 1.0);
  Vector b(n);
  for (auto& v : b) v = val(rng);

  const auto x = lu->solve(b);
  const auto x_ref = solve_dense(a.to_dense(), b);
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(x[i], x_ref[i], 1e-8);

  const auto xt = lu->solve_transposed(b);
  const auto xt_ref = solve_dense(a.to_dense().transposed(), b);
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(xt[i], xt_ref[i], 1e-8);
}

INSTANTIATE_TEST_SUITE_P(
    SizesAndOrderings, SparseLuParam,
    ::testing::Combine(::testing::Values<std::size_t>(1, 2, 5, 20, 60, 150),
                       ::testing::Values(OrderingKind::kNatural, OrderingKind::kMinDegree)));

TEST(SparseLu, SingularMatrixRejected) {
  TripletMatrix t(2, 2);
  t.add(0, 0, 1.0);
  t.add(0, 1, 2.0);
  t.add(1, 0, 2.0);
  t.add(1, 1, 4.0);
  EXPECT_FALSE(SparseLu::factor(t.compress()).has_value());
}

TEST(SparseLu, StructurallySingularRejected) {
  TripletMatrix t(3, 3);
  t.add(0, 0, 1.0);
  t.add(1, 1, 1.0);  // row/col 2 empty
  EXPECT_FALSE(SparseLu::factor(t.compress()).has_value());
}

TEST(SparseLu, TridiagonalLargeSystem) {
  const std::size_t n = 5000;
  TripletMatrix t(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    t.add(i, i, 2.0);
    if (i + 1 < n) {
      t.add(i, i + 1, -1.0);
      t.add(i + 1, i, -1.0);
    }
  }
  const auto a = t.compress();
  auto lu = SparseLu::factor(a);
  ASSERT_TRUE(lu.has_value());
  // Fill-in for a tridiagonal matrix should stay linear in n.
  EXPECT_LT(lu->l_nnz() + lu->u_nnz(), 4 * n);
  Vector b(n, 1.0);
  const auto x = lu->solve(b);
  // Residual check.
  const auto ax = a.multiply(x);
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(ax[i], 1.0, 1e-9);
}

TEST(ComputeOrdering, NaturalIsIdentity) {
  TripletMatrix t(4, 4);
  for (std::size_t i = 0; i < 4; ++i) t.add(i, i, 1.0);
  const auto ord = compute_ordering(t.compress(), OrderingKind::kNatural);
  for (std::size_t i = 0; i < 4; ++i) EXPECT_EQ(ord[i], i);
}

TEST(ComputeOrdering, MinDegreeIsPermutation) {
  std::mt19937 rng(3);
  const auto a = random_spd_like(30, 0.15, rng);
  const auto ord = compute_ordering(a, OrderingKind::kMinDegree);
  std::vector<bool> seen(30, false);
  for (const auto p : ord) {
    ASSERT_LT(p, 30u);
    EXPECT_FALSE(seen[p]);
    seen[p] = true;
  }
}

}  // namespace
}  // namespace awe::linalg
