// Tests for the compile-time peephole/fusion pass and the EvalMode
// contract: the strict stream stays bit-for-bit identical to run() across
// every batch width, the fused stream stays within a small ULP bound of
// strict, and undersized spans are rejected instead of read out of bounds.
#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <random>
#include <vector>

#include "circuits/fig1_rc.hpp"
#include "core/awesymbolic.hpp"
#include "engine/sweep.hpp"
#include "symbolic/compile.hpp"
#include "symbolic/expr.hpp"

namespace awe::symbolic {
namespace {

std::uint64_t bits(double v) { return std::bit_cast<std::uint64_t>(v); }

/// Random expression DAG whose nodes we keep so the test can compute a
/// magnitude scale for the ULP bound.  Division is kept pole-free
/// (denominator b*b + c with c > 0) so lanes stay finite.
struct RandomDag {
  ExprGraph graph;
  std::vector<NodeId> nodes;
  std::vector<NodeId> roots;
};

RandomDag random_dag(std::mt19937& rng, std::size_t ninputs, std::size_t nops,
                     std::size_t nroots) {
  RandomDag d;
  for (std::size_t i = 0; i < ninputs; ++i)
    d.nodes.push_back(d.graph.input(static_cast<std::uint32_t>(i)));
  std::uniform_real_distribution<double> cdist(-1.5, 1.5);
  for (int i = 0; i < 4; ++i) d.nodes.push_back(d.graph.constant(cdist(rng)));

  std::uniform_int_distribution<std::size_t> op(0, 5);
  for (std::size_t i = 0; i < nops; ++i) {
    std::uniform_int_distribution<std::size_t> pick(0, d.nodes.size() - 1);
    const auto a = d.nodes[pick(rng)];
    const auto b = d.nodes[pick(rng)];
    ExprGraph& g = d.graph;
    switch (op(rng)) {
      case 0: d.nodes.push_back(g.add(a, b)); break;
      case 1: d.nodes.push_back(g.sub(a, b)); break;
      case 2: d.nodes.push_back(g.mul(a, b)); break;
      case 3: d.nodes.push_back(g.div(a, g.add(g.mul(b, b), g.constant(0.25)))); break;
      case 4: d.nodes.push_back(g.neg(a)); break;
      // Bias toward the Horner shape the fusion pass targets.
      default: d.nodes.push_back(g.add(g.mul(a, b), d.nodes[pick(rng)])); break;
    }
  }
  std::uniform_int_distribution<std::size_t> pick(0, d.nodes.size() - 1);
  for (std::size_t k = 0; k < nroots; ++k) d.roots.push_back(d.nodes[pick(rng)]);
  return d;
}

constexpr std::size_t kWidths[] = {1, 3, 8, 64};

TEST(FusionPass, StrictBatchBitIdenticalToRunAcrossWidths) {
  std::mt19937 rng(71);
  std::uniform_real_distribution<double> vdist(-2.0, 2.0);
  for (int trial = 0; trial < 12; ++trial) {
    const std::size_t ninputs = 1 + trial % 4;
    auto dag = random_dag(rng, ninputs, 50 + 9 * trial, 3);
    const CompiledProgram prog(dag.graph, dag.roots);
    const std::size_t nout = prog.output_count();
    ASSERT_LE(prog.fused_instruction_count(), prog.instruction_count());

    const std::size_t n = 131;  // odd tail at every width above
    std::vector<double> points(ninputs * n);
    for (double& v : points) v = vdist(rng);

    std::vector<double> ref(nout * n);
    std::vector<double> in(ninputs), out(nout);
    for (std::size_t p = 0; p < n; ++p) {
      for (std::size_t i = 0; i < ninputs; ++i) in[i] = points[i * n + p];
      prog.run(in, out);
      for (std::size_t k = 0; k < nout; ++k) ref[k * n + p] = out[k];
    }

    for (const std::size_t width : kWidths) {
      std::vector<double> soa_in(ninputs * width), soa_out(nout * width);
      std::vector<double> scratch(prog.register_count() * width);
      for (std::size_t b = 0; b < n; b += width) {
        const std::size_t w = std::min(width, n - b);
        for (std::size_t i = 0; i < ninputs; ++i)
          for (std::size_t l = 0; l < w; ++l) soa_in[i * w + l] = points[i * n + b + l];
        prog.run_batch(std::span<const double>(soa_in.data(), ninputs * w),
                       std::span<double>(soa_out.data(), nout * w),
                       std::span<double>(scratch.data(), prog.register_count() * w), w,
                       EvalMode::kStrict);
        for (std::size_t k = 0; k < nout; ++k)
          for (std::size_t l = 0; l < w; ++l)
            ASSERT_EQ(bits(soa_out[k * w + l]), bits(ref[k * n + b + l]))
                << "trial " << trial << " width " << width << " point " << b + l;
      }
    }
  }
}

TEST(FusionPass, FastWithinUlpBoundOfStrictAcrossWidths) {
  std::mt19937 rng(2025);
  std::uniform_real_distribution<double> vdist(-2.0, 2.0);
  for (int trial = 0; trial < 12; ++trial) {
    const std::size_t ninputs = 1 + trial % 4;
    const std::size_t nops = 50 + 9 * trial;
    auto dag = random_dag(rng, ninputs, nops, 3);
    const CompiledProgram prog(dag.graph, dag.roots);
    const std::size_t nout = prog.output_count();

    const std::size_t n = 131;
    std::vector<double> points(ninputs * n);
    for (double& v : points) v = vdist(rng);

    // Strict reference plus, per point, the largest intermediate magnitude
    // anywhere in the DAG — the natural scale for FMA contraction error
    // (a fused op's rounding differs from strict by at most ~1 ulp of the
    // product term, which cancellation can make large relative to the
    // OUTPUT but never relative to the intermediates).
    std::vector<double> ref(nout * n), scale(n, 1.0);
    std::vector<double> in(ninputs), out(nout);
    for (std::size_t p = 0; p < n; ++p) {
      for (std::size_t i = 0; i < ninputs; ++i) in[i] = points[i * n + p];
      prog.run(in, out);
      for (std::size_t k = 0; k < nout; ++k) ref[k * n + p] = out[k];
      for (const NodeId id : dag.nodes) {
        const double v = std::abs(dag.graph.evaluate_node(id, in));
        if (std::isfinite(v)) scale[p] = std::max(scale[p], v);
      }
    }
    const double tol = 1e-12 * static_cast<double>(nops);

    for (const std::size_t width : kWidths) {
      std::vector<double> soa_in(ninputs * width), soa_out(nout * width);
      std::vector<double> scratch(prog.register_count() * width);
      for (std::size_t b = 0; b < n; b += width) {
        const std::size_t w = std::min(width, n - b);
        for (std::size_t i = 0; i < ninputs; ++i)
          for (std::size_t l = 0; l < w; ++l) soa_in[i * w + l] = points[i * n + b + l];
        prog.run_batch(std::span<const double>(soa_in.data(), ninputs * w),
                       std::span<double>(soa_out.data(), nout * w),
                       std::span<double>(scratch.data(), prog.register_count() * w), w,
                       EvalMode::kFast);
        for (std::size_t k = 0; k < nout; ++k)
          for (std::size_t l = 0; l < w; ++l) {
            const std::size_t p = b + l;
            ASSERT_NEAR(soa_out[k * w + l], ref[k * n + p], tol * scale[p])
                << "trial " << trial << " width " << width << " point " << p
                << " output " << k;
          }
      }
    }
  }
}

TEST(FusionPass, ContractsHornerChainIntoFma) {
  // Dense degree-8 univariate Horner chain: every mul+add step must fuse,
  // roughly halving the arithmetic stream.
  std::vector<Term> terms;
  for (std::uint16_t e = 0; e <= 8; ++e)
    terms.push_back({Monomial{e}, static_cast<double>(e + 1)});
  const auto p = Polynomial::from_terms(1, std::move(terms));
  ExprGraph g;
  const std::vector<NodeId> vars{g.input(0)};
  const auto root = lower_polynomial(g, p, vars);
  CompiledProgram prog(g, std::vector<NodeId>{root});
  // 8 mul+add Horner steps fuse into 8 fma: at least 8 instructions drop.
  EXPECT_LE(prog.fused_instruction_count() + 8, prog.instruction_count());

  const std::string fast_src = prog.to_c_source("poly", EvalMode::kFast);
  EXPECT_NE(fast_src.find("fma("), std::string::npos);
  const std::string strict_src = prog.to_c_source("poly", EvalMode::kStrict);
  EXPECT_EQ(strict_src.find("fma("), std::string::npos);
}

TEST(FusionPass, FusesMulSubAndFoldsNeg) {
  // sub(mul(x,y), z) -> kFms: one instruction saved.
  {
    ExprGraph g;
    const auto r = g.sub(g.mul(g.input(0), g.input(1)), g.input(2));
    CompiledProgram prog(g, std::vector<NodeId>{r});
    EXPECT_EQ(prog.instruction_count(), 5u);        // 3 inputs + mul + sub
    EXPECT_EQ(prog.fused_instruction_count(), 4u);  // 3 inputs + fms
    const std::string src = prog.to_c_source("f", EvalMode::kFast);
    EXPECT_NE(src.find("fma("), std::string::npos);
  }
  // add(x, neg(y)) -> kSub: the neg disappears from the fused stream.
  {
    ExprGraph g;
    const auto r = g.add(g.input(0), g.neg(g.input(1)));
    CompiledProgram prog(g, std::vector<NodeId>{r});
    EXPECT_EQ(prog.instruction_count(), 4u);        // 2 inputs + neg + add
    EXPECT_EQ(prog.fused_instruction_count(), 3u);  // 2 inputs + sub
  }
  // sub(x, neg(mul(y,z))) -> add(x, mul) -> kFma: both folds cascade.
  {
    ExprGraph g;
    const auto r = g.sub(g.input(0), g.neg(g.mul(g.input(1), g.input(2))));
    CompiledProgram prog(g, std::vector<NodeId>{r});
    EXPECT_EQ(prog.instruction_count(), 6u);        // 3 inputs + mul + neg + sub
    EXPECT_EQ(prog.fused_instruction_count(), 4u);  // 3 inputs + fma
  }
  // Numeric spot check for all three shapes.
  {
    ExprGraph g;
    const auto x = g.input(0), y = g.input(1), z = g.input(2);
    const std::vector<NodeId> roots{g.sub(g.mul(x, y), z), g.add(x, g.neg(y)),
                                    g.sub(x, g.neg(g.mul(y, z)))};
    CompiledProgram prog(g, roots);
    const std::vector<double> in{1.25, -0.5, 3.0};
    std::vector<double> strict_out(3), fast_out(3);
    std::vector<double> scratch(prog.register_count());
    prog.run_batch(in, strict_out, scratch, 1, EvalMode::kStrict);
    prog.run_batch(in, fast_out, scratch, 1, EvalMode::kFast);
    for (int k = 0; k < 3; ++k) {
      EXPECT_NEAR(fast_out[k], strict_out[k], 1e-14) << "output " << k;
      EXPECT_NEAR(strict_out[k], g.evaluate_node(roots[k], in), 1e-14);
    }
  }
}

TEST(FusionPass, SharedMulIsNotFused) {
  // A mul with two consumers must stay materialized: fusing it into one
  // consumer would force the other to recompute (or read a dead register).
  ExprGraph g;
  const auto m = g.mul(g.input(0), g.input(1));
  const auto r1 = g.add(m, g.input(2));
  const auto r2 = g.sub(m, g.input(3));
  CompiledProgram prog(g, std::vector<NodeId>{r1, r2, m});  // m also a root
  const std::vector<double> in{1.5, 2.5, 0.25, -1.0};
  std::vector<double> strict_out(3), fast_out(3);
  std::vector<double> scratch(prog.register_count());
  prog.run_batch(in, strict_out, scratch, 1, EvalMode::kStrict);
  prog.run_batch(in, fast_out, scratch, 1, EvalMode::kFast);
  for (int k = 0; k < 3; ++k) EXPECT_NEAR(fast_out[k], strict_out[k], 1e-14);
  EXPECT_DOUBLE_EQ(fast_out[2], 1.5 * 2.5);  // the shared mul's own value
}

TEST(RunWithScratch, ValidatesSpanSizes) {
  // Regression for the documented preconditions: undersized spans must be
  // rejected up front, never read or written out of bounds.
  ExprGraph g;
  const auto r = g.add(g.mul(g.input(0), g.input(1)), g.input(2));
  CompiledProgram prog(g, std::vector<NodeId>{r});
  std::vector<double> in(3, 1.0), out(1), scratch(prog.register_count());
  EXPECT_NO_THROW(prog.run_with_scratch(in, out, scratch));
  EXPECT_THROW(prog.run_with_scratch(std::span<const double>(in.data(), 2), out, scratch),
               std::invalid_argument);
  std::vector<double> out2(2);
  EXPECT_THROW(prog.run_with_scratch(in, out2, scratch), std::invalid_argument);
  EXPECT_THROW(prog.run_with_scratch(in, std::span<double>(out.data(), 0), scratch),
               std::invalid_argument);
  EXPECT_THROW(
      prog.run_with_scratch(in, out, std::span<double>(scratch.data(), 0)),
      std::invalid_argument);
}

TEST(RunBatch, FastModeValidatesSpanSizesAndZeroCountIsNoop) {
  ExprGraph g;
  const auto r = g.add(g.mul(g.input(0), g.input(1)), g.input(0));
  CompiledProgram prog(g, std::vector<NodeId>{r});
  const std::size_t w = 4;
  std::vector<double> in(2 * w, 1.0), out(w), scratch(prog.register_count() * w);
  EXPECT_NO_THROW(prog.run_batch(in, out, scratch, w, EvalMode::kFast));
  EXPECT_THROW(prog.run_batch(std::span<const double>(in.data(), 2 * w - 1), out,
                              scratch, w, EvalMode::kFast),
               std::invalid_argument);
  EXPECT_THROW(prog.run_batch(in, std::span<double>(out.data(), w - 1), scratch, w,
                              EvalMode::kFast),
               std::invalid_argument);
  EXPECT_THROW(prog.run_batch(in, out, std::span<double>(scratch.data(), 1), w,
                              EvalMode::kFast),
               std::invalid_argument);
  // count == 0 touches nothing, in either mode.
  std::vector<double> empty;
  EXPECT_NO_THROW(prog.run_batch(empty, empty, empty, 0, EvalMode::kStrict));
  EXPECT_NO_THROW(prog.run_batch(empty, empty, empty, 0, EvalMode::kFast));
}

}  // namespace
}  // namespace awe::symbolic

namespace awe {
namespace {

TEST(SweepFastMode, MatchesStrictWithinTolerance) {
  auto fig = circuits::make_fig1();
  const auto model = core::CompiledModel::build(fig.netlist, {"g2", "c2"},
                                                circuits::Fig1Circuit::kInput, fig.v2,
                                                {.order = 2});
  EXPECT_LE(model.fused_instruction_count(), model.instruction_count());
  const std::vector<sweep::Distribution> dists{sweep::Distribution::uniform(0.3, 3.0),
                                               sweep::Distribution::lognormal(1.0, 0.3)};
  const std::size_t n = 501;

  sweep::SweepOptions strict;
  strict.threads = 1;
  strict.batch_width = 64;
  const auto ref = sweep::monte_carlo(model, dists, n, 7, strict);
  ASSERT_EQ(ref.ok_count, n);

  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    for (const std::size_t width : {std::size_t{3}, std::size_t{64}}) {
      sweep::SweepOptions fast = strict;
      fast.threads = threads;
      fast.batch_width = width;
      fast.mode = core::EvalMode::kFast;
      const auto got = sweep::monte_carlo(model, dists, n, 7, fast);
      ASSERT_EQ(got.ok, ref.ok);
      for (std::size_t i = 0; i < ref.moments.size(); ++i)
        ASSERT_NEAR(got.moments[i], ref.moments[i],
                    1e-10 * (1.0 + std::abs(ref.moments[i])))
            << "threads " << threads << " width " << width << " slot " << i;
    }
  }
}

TEST(SweepFastMode, FlagsFailedLanesLikeStrict) {
  auto fig = circuits::make_fig1();
  const auto model = core::CompiledModel::build(fig.netlist, {"g2", "c2"},
                                                circuits::Fig1Circuit::kInput, fig.v2,
                                                {.order = 1});
  const std::size_t n = 5;
  std::vector<double> points{1.0, 0.0, 2.0, 1.5, 0.5,   // g2 row (point 1 singular)
                             1.0, 1.0, 1.0, 1.0, 1.0};  // c2 row
  auto ws = model.make_batch_workspace(n);
  std::vector<double> out(model.moment_count() * n);
  std::vector<unsigned char> ok(n, 1);
  model.moments_batch(points, n, n, ws, out, n, ok, core::EvalMode::kFast);
  EXPECT_FALSE(ok[1]);
  for (const std::size_t p : {0u, 2u, 3u, 4u}) EXPECT_TRUE(ok[p]);
}

}  // namespace
}  // namespace awe
