// Error taxonomy, degradation ladder and health reporting (DESIGN.md §11).
//
// What must hold, and what these tests pin down:
//   - FailError carries a stable FailClass and still IS a
//     std::runtime_error, so pre-taxonomy catch sites keep working;
//   - every previously-untested ROM failure path throws the right class:
//     all-poles-unstable (plain and shifted), order collapse — and the
//     shifted-moment expansion RECOVERS a deck whose Maclaurin expansion
//     is singular;
//   - the sweep engine never aborts on pathological points: each point is
//     fitted, degraded-with-stage, or quarantined-with-FailClass, the
//     disposition counters sum to num_points, and a strict-mode sweep is
//     bit-identical across thread counts — ladder included;
//   - HealthReport arithmetic and JSON are deterministic.
#include <gtest/gtest.h>

#include <cstring>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#include "awe/moments.hpp"
#include "awe/rom.hpp"
#include "circuit/parser.hpp"
#include "core/awesymbolic.hpp"
#include "engine/sweep.hpp"
#include "health/report.hpp"
#include "health/status.hpp"
#include "testing/fuzz.hpp"
#include "testing/oracles.hpp"

namespace awe {
namespace {

using health::FailClass;
using health::FailError;
using health::HealthReport;

// -- taxonomy basics -----------------------------------------------------

TEST(FailClassTest, CodesAreUniqueAndStable) {
  std::set<std::string> codes;
  for (std::size_t i = 0; i < health::kFailClassCount; ++i) {
    const auto c = static_cast<FailClass>(i);
    EXPECT_STRNE(health::to_string(c), "?");
    EXPECT_TRUE(codes.insert(health::code(c)).second)
        << "duplicate code " << health::code(c);
  }
  // Codes appear in JSON reports and fuzz signatures: they must not drift.
  EXPECT_STREQ(health::code(FailClass::kSingularY0), "singular-y0");
  EXPECT_STREQ(health::code(FailClass::kHankelIllConditioned),
               "hankel-ill-conditioned");
  EXPECT_STREQ(health::code(FailClass::kTaskException), "task-exception");
}

TEST(FailClassTest, FailErrorIsRuntimeErrorWithClass) {
  const FailError e(FailClass::kOrderCollapse, "no feasible order");
  EXPECT_EQ(e.fail_class(), FailClass::kOrderCollapse);
  EXPECT_STREQ(e.what(), "no feasible order");
  // Pre-taxonomy EXPECT_THROW(..., std::runtime_error) sites keep passing.
  EXPECT_THROW(throw FailError(FailClass::kSingularY0, "x"), std::runtime_error);
  EXPECT_EQ(health::fail_class_of(e), FailClass::kOrderCollapse);
  const std::runtime_error plain("plain");
  EXPECT_EQ(health::fail_class_of(plain), FailClass::kUnknown);
}

TEST(HealthReportTest, MergeSumsAndJsonIsDeterministic) {
  HealthReport a;
  a.points_total = 10;
  a.points_ok = 8;
  a.points_degraded = 1;
  a.points_quarantined = 1;
  a.strict_reevals = 2;
  a.record_failure(FailClass::kSingularY0);
  HealthReport b = a;
  b.merge(a);
  EXPECT_EQ(b.points_total, 20u);
  EXPECT_EQ(b.strict_reevals, 4u);
  EXPECT_EQ(b.failures(FailClass::kSingularY0), 2u);
  EXPECT_EQ(a.to_json(), a.to_json());
  // Every class key is present whether or not it fired.
  for (std::size_t i = 1; i < health::kFailClassCount; ++i)
    EXPECT_NE(a.to_json().find(health::code(static_cast<FailClass>(i))),
              std::string::npos);
}

// -- ROM failure paths (previously untested) -----------------------------

TEST(RomFailureTest, AllPolesUnstableThrowsClassified) {
  // H = m0 + m1 s with m1/m0 = 1 fits a single pole at +1: the stability
  // filter discards it and nothing remains.
  const std::vector<double> m{1.0, 1.0};
  try {
    (void)engine::ReducedOrderModel::from_moments(
        m, {.order = 1, .enforce_stability = true});
    FAIL() << "expected FailError";
  } catch (const FailError& e) {
    EXPECT_EQ(e.fail_class(), FailClass::kAllPolesUnstable);
  }
}

TEST(RomFailureTest, OrderCollapseThrowsClassified) {
  // All-zero moments admit no Padé order at all, even with fallback.
  const std::vector<double> m{0.0, 0.0};
  try {
    (void)engine::ReducedOrderModel::from_moments(
        m, {.order = 1, .enforce_stability = true, .allow_order_fallback = true});
    FAIL() << "expected FailError";
  } catch (const FailError& e) {
    EXPECT_EQ(e.fail_class(), FailClass::kOrderCollapse);
  }
}

TEST(RomFailureTest, ShiftedAllPolesUnstableThrowsClassified) {
  // Sigma-domain pole at +1 shifts back to +1.5: still unstable.
  const std::vector<double> m{1.0, 1.0};
  try {
    (void)engine::ReducedOrderModel::from_shifted_moments(
        m, {.order = 1, .enforce_stability = true}, 0.5);
    FAIL() << "expected FailError";
  } catch (const FailError& e) {
    EXPECT_EQ(e.fail_class(), FailClass::kAllPolesUnstable);
  }
}

TEST(RomFailureTest, ShiftedExpansionRecoversMaclaurinSingularDeck) {
  // Capacitive divider: no DC path from the output to ground, so G is
  // singular and the s = 0 expansion does not exist — but the transfer
  //   H(s) = [C1/(C1+C2)] / (1 + s R1 C1C2/(C1+C2))
  // is perfectly regular: pole -2e6, high-frequency/divider gain 0.5.
  const auto deck = circuit::parse_deck_string(
      "vin in 0 1\n"
      "r1 in a 1k\n"
      "c1 a b 1n\n"
      "c2 b 0 1n\n"
      ".input vin\n"
      ".output b\n"
      ".end\n");
  const auto out = deck.netlist.find_node("b");
  ASSERT_TRUE(out.has_value());
  EXPECT_THROW(engine::MomentGenerator(deck.netlist), std::runtime_error);

  const double s0 = 1e6;
  engine::MomentGenerator gen(deck.netlist, s0);
  const auto m = gen.transfer_moments("vin", *out, 4);
  const auto rom = engine::ReducedOrderModel::from_shifted_moments(
      m, {.order = 2, .enforce_stability = true}, s0);
  ASSERT_GE(rom.order(), 1u);
  EXPECT_TRUE(rom.is_stable());
  const auto p1 = rom.dominant_pole();
  ASSERT_TRUE(p1.has_value());
  EXPECT_NEAR(p1->real(), -2e6, 2e6 * 1e-6);
  EXPECT_NEAR(rom.dc_gain(), 0.5, 1e-6);
}

// -- sweep degradation ladder --------------------------------------------

core::CompiledModel twopole_model(const core::ModelOptions& mopts = {.order = 2}) {
  const auto deck = circuit::parse_deck_string(
      "vin in 0 1\n"
      "r1 in a 1k\n"
      "c1 a 0 10p\n"
      "r2 a out 2k\n"
      "c2 out 0 5p\n"
      ".symbol r2\n"
      ".symbol c2\n"
      ".input vin\n"
      ".output out\n"
      ".end\n");
  return core::CompiledModel::build(deck.netlist, deck.symbol_elements, "vin",
                                    *deck.netlist.find_node("out"), mopts);
}

TEST(SweepLadderTest, OrderFallbackDegradesInsteadOfFailing) {
  // A one-pole RC compiled at order 2 with the fallback DISABLED: the
  // primary fit hits a singular Hankel system on every point, and the
  // ladder's own order-fallback stage must recover each one.
  const auto deck = circuit::parse_deck_string(
      "vin in 0 1\n"
      "r1 in out 1k\n"
      "c1 out 0 1n\n"
      ".symbol r1\n"
      ".input vin\n"
      ".output out\n"
      ".end\n");
  const auto model = core::CompiledModel::build(
      deck.netlist, deck.symbol_elements, "vin", *deck.netlist.find_node("out"),
      {.order = 2, .enforce_stability = true, .allow_order_fallback = false});

  const std::size_t n = 64;
  std::vector<double> pts(n);
  for (std::size_t p = 0; p < n; ++p) pts[p] = 500.0 + 50.0 * static_cast<double>(p);
  sweep::SweepOptions opts;
  opts.threads = 2;
  opts.with_rom = true;
  const auto res = sweep::run_sweep(model, pts, n, opts);

  EXPECT_EQ(res.ok_count, n);
  EXPECT_EQ(res.health.points_ok, 0u);
  EXPECT_EQ(res.health.points_degraded, n);
  EXPECT_EQ(res.health.points_quarantined, 0u);
  EXPECT_EQ(res.health.order_fallbacks, n);
  for (std::size_t p = 0; p < n; ++p) {
    EXPECT_EQ(res.point_stage(p), sweep::LadderStage::kOrderFallback);
    EXPECT_EQ(res.point_fail_class(p), FailClass::kNone);
    EXPECT_EQ(res.rom->order[p], 1);
  }
}

TEST(SweepLadderTest, PathologicalSweepNeverAbortsAndIsBitIdentical) {
  // 10k-point Monte Carlo with planted singular points (r2 == 0 turns the
  // reciprocal symbol into the scalar path's throw condition).  The sweep
  // must complete, classify every point, keep the disposition counters
  // summing to num_points, and stay bit-identical across thread counts in
  // strict mode — quarantine logic included.
  const auto model = twopole_model();
  const std::size_t n = 10000;
  const std::vector<sweep::Distribution> dists{
      sweep::Distribution::lognormal(2e3, 0.4),
      sweep::Distribution::lognormal(5e-12, 0.4)};
  std::vector<double> pts = sweep::sample_points(dists, n, 20260805);
  std::size_t planted = 0;
  for (std::size_t p = 0; p < n; p += 97) {
    pts[p] = 0.0;  // r2 lane
    ++planted;
  }

  std::vector<sweep::SweepResult> runs;
  for (const std::size_t threads : {1u, 4u, 8u}) {
    sweep::SweepOptions opts;
    opts.threads = threads;
    opts.with_rom = true;
    runs.push_back(sweep::run_sweep(model, pts, n, opts));
  }

  for (const auto& res : runs) {
    EXPECT_EQ(res.health.points_total, n);
    EXPECT_EQ(res.health.points_ok + res.health.points_degraded +
                  res.health.points_quarantined,
              n);
    EXPECT_EQ(res.health.points_quarantined, planted);
    EXPECT_EQ(res.health.failures(FailClass::kSingularY0), planted);
    for (std::size_t p = 0; p < n; ++p) {
      if (p % 97 == 0) {
        EXPECT_EQ(res.point_stage(p), sweep::LadderStage::kQuarantined);
        EXPECT_EQ(res.point_fail_class(p), FailClass::kSingularY0);
        EXPECT_EQ(res.ok[p], 0);
      } else {
        EXPECT_NE(res.point_stage(p), sweep::LadderStage::kQuarantined);
        EXPECT_EQ(res.point_fail_class(p), FailClass::kNone);
      }
    }
  }

  // Bit-identity across 1/4/8 threads: numeric arrays compare bytewise
  // (quarantined lanes hold NaN, so operator== would be false there even
  // for identical bits).
  const auto bytes_equal = [](const auto& a, const auto& b) {
    return a.size() == b.size() &&
           std::memcmp(a.data(), b.data(), a.size() * sizeof(a[0])) == 0;
  };
  const auto& ref = runs[0];
  for (std::size_t i = 1; i < runs.size(); ++i) {
    const auto& r = runs[i];
    EXPECT_TRUE(bytes_equal(r.moments, ref.moments));
    EXPECT_EQ(r.ok, ref.ok);
    EXPECT_EQ(r.fail_class, ref.fail_class);
    EXPECT_EQ(r.ladder_stage, ref.ladder_stage);
    ASSERT_TRUE(r.rom && ref.rom);
    EXPECT_EQ(r.rom->order, ref.rom->order);
    EXPECT_TRUE(bytes_equal(r.rom->poles, ref.rom->poles));
    EXPECT_TRUE(bytes_equal(r.rom->dc_gain, ref.rom->dc_gain));
    EXPECT_EQ(r.health.points_ok, ref.health.points_ok);
    EXPECT_EQ(r.health.points_degraded, ref.health.points_degraded);
    EXPECT_EQ(r.health.fail_counts, ref.health.fail_counts);
  }
}

TEST(SweepLadderTest, MultiOutputCarriesPerOutputHealth) {
  const auto deck = circuit::parse_deck_string(
      "vin in 0 1\n"
      "r1 in a 1k\n"
      "c1 a 0 10p\n"
      "r2 a out 2k\n"
      "c2 out 0 5p\n"
      ".symbol r2\n"
      ".input vin\n"
      ".output a\n"
      ".output out\n"
      ".end\n");
  const auto model = core::MultiOutputModel::build(
      deck.netlist, deck.symbol_elements, "vin",
      {*deck.netlist.find_node("a"), *deck.netlist.find_node("out")}, {.order = 2});
  const std::size_t n = 100;
  std::vector<double> pts(n, 2e3);
  pts[7] = 0.0;  // planted singular point hits BOTH outputs
  sweep::SweepOptions opts;
  opts.threads = 2;
  opts.with_rom = true;
  const auto results = sweep::run_sweep(model, pts, n, opts);
  ASSERT_EQ(results.size(), 2u);
  for (const auto& r : results) {
    EXPECT_EQ(r.health.points_total, n);
    EXPECT_EQ(r.health.points_quarantined, 1u);
    EXPECT_EQ(r.point_fail_class(7), FailClass::kSingularY0);
    EXPECT_EQ(r.health.points_ok + r.health.points_degraded +
                  r.health.points_quarantined,
              n);
  }
}

// -- oracle / fuzz routing ----------------------------------------------

TEST(OracleHealthTest, CleanDeckReportsNoFailures) {
  const auto deck = circuit::parse_deck_string(
      "vin in 0 1\n"
      "r1 in out 1k\n"
      "c1 out 0 1n\n"
      ".symbol r1\n"
      ".input vin\n"
      ".output out\n"
      ".end\n");
  const auto r = testing::run_oracles(deck);
  EXPECT_EQ(r.status, testing::OracleStatus::kAgree);
  for (std::size_t i = 0; i < health::kFailClassCount; ++i)
    EXPECT_EQ(r.health.fail_counts[i], 0u) << health::code(static_cast<FailClass>(i));
}

TEST(OracleHealthTest, FuzzSummaryJsonEmbedsHealth) {
  testing::FuzzSummary sum;
  sum.health.record_failure(FailClass::kHankelIllConditioned);
  const std::string json = sum.to_json();
  EXPECT_NE(json.find("\"health\": {"), std::string::npos);
  EXPECT_NE(json.find("\"hankel-ill-conditioned\": 1"), std::string::npos);
  EXPECT_EQ(json, sum.to_json());
}

}  // namespace
}  // namespace awe
