// Property-based sweeps over randomized circuits: invariants that must
// hold for every RC(L) circuit, not just the curated benchmarks.
#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "awe/awe.hpp"
#include "awe/moments.hpp"
#include "circuit/netlist.hpp"
#include "core/awesymbolic.hpp"
#include "partition/partitioner.hpp"

namespace awe {
namespace {

using circuit::kGround;
using circuit::Netlist;

/// Random connected RC ladder-with-bridges circuit; always has a DC path
/// from every node (R to the previous node), so G is nonsingular.
struct RandomRc {
  Netlist netlist;
  circuit::NodeId out;
  std::vector<std::string> caps;  // candidate symbols
};

RandomRc random_rc(std::mt19937& rng, std::size_t nodes) {
  std::uniform_real_distribution<double> rdist(100.0, 10e3);
  std::uniform_real_distribution<double> cdist(0.1e-12, 10e-12);
  RandomRc out;
  auto& nl = out.netlist;
  const auto in = nl.node("in");
  nl.add_voltage_source("vin", in, kGround, 1.0);
  std::vector<circuit::NodeId> ns{in};
  for (std::size_t k = 0; k < nodes; ++k) {
    const auto n = nl.node("n" + std::to_string(k));
    // Chain resistor to a random earlier node keeps the circuit a tree
    // (plus bridges below) and guarantees connectivity.
    const auto prev = ns[rng() % ns.size()];
    nl.add_resistor("r" + std::to_string(k), prev, n, rdist(rng));
    const std::string cname = "c" + std::to_string(k);
    nl.add_capacitor(cname, n, kGround, cdist(rng));
    out.caps.push_back(cname);
    ns.push_back(n);
  }
  // A few resistive bridges make it non-tree.
  for (std::size_t b = 0; b < nodes / 3; ++b) {
    const auto a = ns[rng() % ns.size()];
    const auto c = ns[rng() % ns.size()];
    if (a == c) continue;
    nl.add_resistor("rb" + std::to_string(b), a, c, rdist(rng));
  }
  out.out = ns.back();
  return out;
}

class RandomRcProperty : public ::testing::TestWithParam<int> {};

TEST_P(RandomRcProperty, StabilityEnforcementYieldsStableAccurateModels) {
  // Low-order Padé on a high-order RC circuit can throw off right-half-
  // plane artifact poles — the standard AWE failure mode.  With stability
  // enforcement the returned model must be stable, keep the exact DC gain
  // (m0 is always matched) and settle to it.
  std::mt19937 rng(GetParam() * 1234 + 5);
  auto rc = random_rc(rng, 8 + GetParam() % 8);
  const auto rom = engine::run_awe(rc.netlist, "vin", rc.out, {.order = 2});
  EXPECT_TRUE(rom.is_stable());
  EXPECT_NEAR(rom.dc_gain(), 1.0, 1e-6);  // resistive path to output
  // Step response settles to the DC gain (stability in the time domain).
  const auto dom = rom.dominant_pole();
  ASSERT_TRUE(dom.has_value());
  const double t_settle = 20.0 / std::abs(dom->real());
  EXPECT_NEAR(rom.step_response(t_settle), rom.dc_gain(), 1e-4);
}

TEST_P(RandomRcProperty, SymbolicMomentsMatchFullAweEverywhere) {
  // For random circuits and random symbol choices, the compiled symbolic
  // moments must equal full AWE moments at random evaluation points.
  std::mt19937 rng(GetParam() * 777 + 3);
  auto rc = random_rc(rng, 6 + GetParam() % 6);
  // Pick two random capacitors as symbols.
  const std::string s1 = rc.caps[rng() % rc.caps.size()];
  std::string s2 = rc.caps[rng() % rc.caps.size()];
  if (s2 == s1) s2 = rc.caps[(rng() % rc.caps.size())];
  std::vector<std::string> symbols{s1};
  if (s2 != s1) symbols.push_back(s2);

  const auto model =
      core::CompiledModel::build(rc.netlist, symbols, "vin", rc.out, {.order = 2});

  std::uniform_real_distribution<double> cdist(0.1e-12, 20e-12);
  for (int trial = 0; trial < 3; ++trial) {
    std::vector<double> vals;
    for (std::size_t i = 0; i < symbols.size(); ++i) vals.push_back(cdist(rng));
    const auto m_sym = model.moments_at(vals);

    Netlist mutated = rc.netlist;
    for (std::size_t i = 0; i < symbols.size(); ++i)
      mutated.set_value(symbols[i], vals[i]);
    const auto m_ref = engine::MomentGenerator(mutated).transfer_moments("vin", rc.out, 4);
    for (std::size_t k = 0; k < 4; ++k)
      EXPECT_NEAR(m_sym[k], m_ref[k], 1e-7 * (std::abs(m_ref[k]) + 1e-25))
          << "seed=" << GetParam() << " k=" << k;
  }
}

TEST_P(RandomRcProperty, MomentScalingInvariance) {
  // Scaling all impedances leaves the voltage transfer's DC gain intact
  // and scales m1 (time constant) linearly.
  std::mt19937 rng(GetParam() * 31 + 7);
  auto rc = random_rc(rng, 8);
  const auto m1 = engine::MomentGenerator(rc.netlist).transfer_moments("vin", rc.out, 2);

  Netlist scaled = rc.netlist;
  for (std::size_t i = 0; i < scaled.elements().size(); ++i) {
    auto& e = scaled.element(i);
    if (e.kind == circuit::ElementKind::kCapacitor) scaled.set_value(i, e.value * 10.0);
  }
  const auto m2 = engine::MomentGenerator(scaled).transfer_moments("vin", rc.out, 2);
  EXPECT_NEAR(m2[0], m1[0], 1e-9);
  EXPECT_NEAR(m2[1], 10.0 * m1[1], 1e-9 * std::abs(m1[1]) * 10.0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomRcProperty, ::testing::Range(1, 13));

TEST(Property, MomentCountMonotonicity) {
  // More moments never change the earlier ones (the recursion is causal).
  std::mt19937 rng(2024);
  auto rc = random_rc(rng, 10);
  engine::MomentGenerator gen(rc.netlist);
  const auto m4 = gen.transfer_moments("vin", rc.out, 4);
  const auto m8 = gen.transfer_moments("vin", rc.out, 8);
  for (std::size_t k = 0; k < 4; ++k) EXPECT_DOUBLE_EQ(m4[k], m8[k]);
}

}  // namespace
}  // namespace awe
