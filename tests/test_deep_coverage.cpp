// Deeper coverage: cross-module combinations and device-model corners.
#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "awe/ac.hpp"
#include "awe/awe.hpp"
#include "awe/sensitivity.hpp"
#include "circuit/parser.hpp"
#include "circuits/mesh.hpp"
#include "core/awesymbolic.hpp"
#include "nonlinear/dc_solver.hpp"
#include "partition/macromodel.hpp"
#include "transim/transim.hpp"

namespace awe {
namespace {

using circuit::kGround;
using circuit::Netlist;

TEST(DeepCoverage, MosTriodeRegionLinearization) {
  // Bias the NMOS into triode (Vds < Vov) and finite-difference check the
  // linearized gm/gds against the device equations.
  nonlinear::NonlinearCircuit ckt;
  auto& nl = ckt.linear;
  const auto d = nl.node("d");
  const auto g = nl.node("g");
  nl.add_voltage_source("vd", d, kGround, 0.2);   // small Vds
  nl.add_voltage_source("vg", g, kGround, 2.0);   // Vov = 1.0 > Vds
  nonlinear::MosParams m;
  m.k = 1e-3;
  m.vth = 1.0;
  ckt.add_nmos("m1", d, g, kGround, m);
  const auto op = nonlinear::solve_dc(ckt);
  ASSERT_TRUE(op.converged);

  auto id_of = [&](double vgs, double vds) {
    const double vov = vgs - m.vth;
    return (vds < vov) ? m.k * (vov * vds - 0.5 * vds * vds)
                       : 0.5 * m.k * vov * vov;
  };
  const double h = 1e-6;
  const double gm_fd = (id_of(2.0 + h, 0.2) - id_of(2.0 - h, 0.2)) / (2 * h);
  const double gds_fd = (id_of(2.0, 0.2 + h) - id_of(2.0, 0.2 - h)) / (2 * h);
  EXPECT_NEAR(op.device_ss[0].gm, gm_fd, 1e-6 * gm_fd);
  EXPECT_NEAR(op.device_ss[0].gds, gds_fd, 1e-5 * gds_fd);
  EXPECT_NEAR(op.device_ss[0].i_main, id_of(2.0, 0.2), 1e-12);
}

TEST(DeepCoverage, DiodeBridgeRectifierDc) {
  // Four-diode bridge with a DC source: two diodes conduct, two block.
  nonlinear::NonlinearCircuit ckt;
  auto& nl = ckt.linear;
  const auto acp = nl.node("acp");
  const auto acn = nl.node("acn");
  const auto pos = nl.node("pos");
  nl.add_voltage_source("vsrc", acp, acn, 5.0);
  nl.add_resistor("rload", pos, kGround, 1e3);
  nl.add_resistor("rsrc", acn, kGround, 10.0);  // reference the bridge
  ckt.add_diode("d1", acp, pos);
  ckt.add_diode("d2", acn, pos);
  ckt.add_diode("d3", kGround, acp);
  ckt.add_diode("d4", kGround, acn);
  const auto op = nonlinear::solve_dc(ckt);
  ASSERT_TRUE(op.converged) << op.iterations;
  circuit::MnaAssembler asem(nl);
  const double vpos = op.x[asem.layout().node_unknown(pos)];
  EXPECT_GT(vpos, 3.0);   // ~5V minus a couple of diode drops and sag
  EXPECT_LT(vpos, 5.0);
  // d1 conducts, d2 blocks.
  EXPECT_GT(op.device_ss[0].i_main, 1e-4);
  EXPECT_LT(op.device_ss[1].i_main, 1e-6);
}

TEST(DeepCoverage, MacromodelOfMeshDrivingPoint) {
  // Reduce an 8x8 mesh seen from two opposite corners; check symmetry and
  // agreement with the exact AC driving-point admittance at low frequency.
  circuits::MeshValues v;
  v.width = 8;
  v.height = 8;
  auto mesh = circuits::make_rc_mesh(v);
  // Strip the driver so the mesh itself is the subnetwork.
  Netlist sub;
  for (const auto& e : mesh.netlist.elements()) {
    if (e.name == "vin" || e.name == "rdrv") continue;
    if (e.kind == circuit::ElementKind::kResistor)
      sub.add_resistor(e.name, sub.node(mesh.netlist.node_name(e.pos)),
                       sub.node(mesh.netlist.node_name(e.neg)), e.value);
    else if (e.kind == circuit::ElementKind::kCapacitor)
      sub.add_capacitor(e.name, sub.node(mesh.netlist.node_name(e.pos)),
                        sub.node(mesh.netlist.node_name(e.neg)), e.value);
  }
  const auto a = *sub.find_node("m0_0");
  const auto b = *sub.find_node("far");
  const auto mm = part::PortMacromodel::build(sub, {a, b}, {.order = 3, .moments = 10});
  // Reciprocity.
  const std::complex<double> s{0.0, 2 * M_PI * 1e6};
  EXPECT_LT(std::abs(mm.admittance(0, 1, s) - mm.admittance(1, 0, s)),
            1e-10 * std::abs(mm.admittance(0, 1, s)));
  // DC entry equals the resistive mesh conductance (from the moments).
  EXPECT_NEAR(mm.admittance(0, 0, {0, 0}).real(), mm.moment_blocks()[0][0], 1e-9);
}

TEST(DeepCoverage, GradientsOnMeshSymbolicModel) {
  circuits::MeshValues v;
  v.width = 6;
  v.height = 6;
  auto mesh = circuits::make_rc_mesh(v);
  const auto model = core::CompiledModel::build(
      mesh.netlist, {"rdrv", "cload"}, circuits::MeshCircuit::kInput, mesh.far_corner,
      {.order = 2, .with_gradients = true});
  const std::vector<double> vals{30.0, 3e-12};
  const auto mg = model.moments_and_gradients(vals);
  const double rel = 1e-6;
  for (std::size_t i = 0; i < 2; ++i) {
    auto hi = vals, lo = vals;
    hi[i] *= 1 + rel;
    lo[i] *= 1 - rel;
    const auto mh = model.moments_at(hi);
    const auto ml = model.moments_at(lo);
    for (std::size_t k = 0; k < 4; ++k) {
      const double fd = (mh[k] - ml[k]) / (2 * rel * vals[i]);
      EXPECT_NEAR(mg.dm[k][i], fd,
                  1e-4 * std::abs(fd) + 1e-8 * std::abs(mg.moments[k] / vals[i]));
    }
  }
}

TEST(DeepCoverage, TransimMatchesAcOnTransformer) {
  // Mutual inductance through the transient path: steady-state sine
  // amplitude equals |H| from the exact AC solve.
  Netlist nl;
  const auto in = nl.node("in");
  const auto p = nl.node("p");
  const auto s = nl.node("s");
  nl.add_voltage_source("vin", in, kGround, 0.0);
  nl.add_resistor("rs", in, p, 50.0);
  nl.add_inductor("lp", p, kGround, 1e-3);
  nl.add_inductor("ls", s, kGround, 1e-3);
  nl.add_resistor("rl", s, kGround, 500.0);
  nl.add_mutual("k1", "lp", "ls", 0.8);

  const double f = 50e3;
  engine::AcAnalysis ac(nl, "vin", s);
  const double expected = std::abs(ac.transfer(f));

  transim::TransientSimulator sim(nl);
  sim.set_waveform("vin", transim::sine(1.0, f));
  transim::TransientOptions opts;
  opts.t_stop = 200e-6;
  opts.dt = 20e-9;
  const auto res = sim.run(opts);
  const auto vs = res.node_voltage(sim.layout(), s);
  double amp = 0.0;
  for (std::size_t k = vs.size() * 3 / 4; k < vs.size(); ++k)
    amp = std::max(amp, std::abs(vs[k]));
  EXPECT_NEAR(amp, expected, 0.01 * expected + 1e-4);
}

TEST(DeepCoverage, ZeroSensitivityFiniteDifference) {
  // Circuit with a genuine finite zero: shunt R with series RC bypass.
  Netlist nl;
  const auto in = nl.node("in");
  const auto out = nl.node("out");
  const auto mid = nl.node("mid");
  nl.add_voltage_source("vin", in, kGround, 1.0);
  nl.add_resistor("r1", in, out, 1e3);
  nl.add_resistor("r2", out, mid, 2e3);
  nl.add_capacitor("c1", mid, kGround, 1e-9);
  nl.add_capacitor("c2", out, kGround, 0.2e-9);
  const std::size_t order = 2;
  engine::MomentGenerator gen(nl);
  const auto m = gen.transfer_moments("vin", out, 2 * order);
  const auto ms = engine::moment_sensitivities(gen, "vin", out, 2 * order);
  const auto pz = engine::pole_zero_sensitivities(m, ms, order);
  ASSERT_FALSE(pz.zeros.empty());

  const double rel = 1e-5;
  const auto idx = *nl.find_element("c1");
  const double v0 = nl.elements()[idx].value;
  auto zeros_at = [&](double value) {
    Netlist mutated = nl;
    mutated.set_value(idx, value);
    const auto mm = engine::MomentGenerator(mutated).transfer_moments("vin", out, 4);
    const auto mms = engine::moment_sensitivities(engine::MomentGenerator(mutated),
                                                  "vin", out, 4);
    return engine::pole_zero_sensitivities(mm, mms, order).zeros;
  };
  const auto zh = zeros_at(v0 * (1 + rel));
  const auto zl = zeros_at(v0 * (1 - rel));
  for (std::size_t i = 0; i < pz.zeros.size(); ++i) {
    auto nearest = [&](const linalg::CVector& set) {
      return *std::min_element(set.begin(), set.end(), [&](auto x, auto y) {
        return std::abs(x - pz.zeros[i]) < std::abs(y - pz.zeros[i]);
      });
    };
    const auto fd = (nearest(zh) - nearest(zl)) / (2.0 * rel * v0);
    EXPECT_NEAR(pz.dzero[i][idx].real(), fd.real(), 1e-3 * (std::abs(fd) + 1.0));
  }
}

TEST(DeepCoverage, SubcktPlusSymbolicEndToEnd) {
  // Hierarchical deck -> symbolic model on an element inside an instance.
  const auto deck = circuit::parse_deck_string(R"(
.subckt seg a b
R1 a b 200
C1 b 0 2p
.ends
Vin in 0 1
X1 in n1 seg
X2 n1 n2 seg
X3 n2 out seg
.symbol x2.c1
.input vin
.output out
)");
  const auto out = *deck.netlist.find_node("out");
  const auto model = core::CompiledModel::build(deck.netlist, deck.symbol_elements,
                                                deck.input_source, out, {.order = 2});
  for (const double c : {1e-12, 4e-12}) {
    const auto m_sym = model.moments_at(std::vector<double>{c});
    Netlist mutated = deck.netlist;
    mutated.set_value("x2.c1", c);
    const auto m_ref = engine::MomentGenerator(mutated).transfer_moments("vin", out, 4);
    for (std::size_t k = 0; k < 4; ++k)
      EXPECT_NEAR(m_sym[k], m_ref[k], 1e-9 * (std::abs(m_ref[k]) + 1e-20));
  }
}

}  // namespace
}  // namespace awe
