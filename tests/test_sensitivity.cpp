#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "awe/pade.hpp"
#include "awe/sensitivity.hpp"
#include "circuits/fig1_rc.hpp"
#include "circuits/opamp741.hpp"

namespace awe::engine {
namespace {

using circuit::kGround;
using circuit::Netlist;

// Finite-difference reference for d m_k / d(value of element `name`).
std::vector<double> fd_moment_sensitivity(const Netlist& nl, const std::string& input,
                                          circuit::NodeId output, std::size_t count,
                                          const std::string& name, double rel = 1e-6) {
  const auto idx = *nl.find_element(name);
  const double v0 = nl.elements()[idx].value;
  Netlist hi = nl;
  hi.set_value(idx, v0 * (1 + rel));
  Netlist lo = nl;
  lo.set_value(idx, v0 * (1 - rel));
  const auto mh = MomentGenerator(hi).transfer_moments(input, output, count);
  const auto ml = MomentGenerator(lo).transfer_moments(input, output, count);
  std::vector<double> d(count);
  for (std::size_t k = 0; k < count; ++k) d[k] = (mh[k] - ml[k]) / (2 * rel * v0);
  return d;
}

TEST(MomentSensitivity, MatchesFiniteDifferencesOnFig1) {
  auto fig = circuits::make_fig1({.g1 = 1e-3, .g2 = 2e-3, .c1 = 2e-12, .c2 = 5e-12});
  const auto& nl = fig.netlist;
  MomentGenerator gen(nl);
  const std::size_t count = 5;
  const auto ms =
      moment_sensitivities(gen, circuits::Fig1Circuit::kInput, fig.v2, count);

  const auto m0 = gen.transfer_moments(circuits::Fig1Circuit::kInput, fig.v2, count);
  const double rel = 1e-6;
  for (const char* name : {"g1", "g2", "c1", "c2"}) {
    const auto idx = *nl.find_element(name);
    ASSERT_TRUE(ms.differentiable[idx]);
    const auto fd = fd_moment_sensitivity(nl, circuits::Fig1Circuit::kInput, fig.v2,
                                          count, name, rel);
    const double v0 = nl.elements()[idx].value;
    for (std::size_t k = 0; k < count; ++k) {
      // The central difference carries cancellation noise of order
      // eps * |m_k| / (2 * rel * v0); the comparison must allow for it.
      const double fd_noise = 1e-14 * std::abs(m0[k]) / (2.0 * rel * v0);
      EXPECT_NEAR(ms.dm[k][idx], fd[k], 1e-4 * std::abs(fd[k]) + fd_noise)
          << name << " k=" << k;
    }
  }
}

TEST(MomentSensitivity, ResistorAndInductorAndVccs) {
  Netlist nl;
  const auto in = nl.node("in");
  const auto a = nl.node("a");
  const auto out = nl.node("out");
  nl.add_voltage_source("vin", in, kGround, 1.0);
  nl.add_resistor("r1", in, a, 1e3);
  nl.add_capacitor("c1", a, kGround, 1e-12);
  nl.add_vccs("gm1", out, kGround, a, kGround, 1e-3);
  nl.add_resistor("r2", out, kGround, 5e3);
  nl.add_inductor("l1", out, kGround, 1e-5);
  nl.add_capacitor("c2", out, kGround, 2e-12);

  MomentGenerator gen(nl);
  const std::size_t count = 4;
  const auto ms = moment_sensitivities(gen, "vin", out, count);
  for (const char* name : {"r1", "r2", "gm1", "l1", "c1", "c2"}) {
    const auto idx = *nl.find_element(name);
    const auto fd = fd_moment_sensitivity(nl, "vin", out, count, name);
    for (std::size_t k = 0; k < count; ++k)
      EXPECT_NEAR(ms.dm[k][idx], fd[k], 2e-4 * (std::abs(fd[k]) + 1e-30))
          << name << " k=" << k;
  }
}

TEST(PoleSensitivity, MatchesFiniteDifferencesOnFig1) {
  circuits::Fig1Values vals{.g1 = 1e-3, .g2 = 2e-3, .c1 = 2e-12, .c2 = 5e-12};
  auto fig = circuits::make_fig1(vals);
  const auto& nl = fig.netlist;
  const std::size_t order = 2;
  MomentGenerator gen(nl);
  const auto m = gen.transfer_moments(circuits::Fig1Circuit::kInput, fig.v2, 2 * order);
  const auto ms =
      moment_sensitivities(gen, circuits::Fig1Circuit::kInput, fig.v2, 2 * order);
  const auto pz = pole_zero_sensitivities(m, ms, order);
  ASSERT_EQ(pz.poles.size(), 2u);

  const double rel = 1e-5;
  for (const char* name : {"g1", "c1"}) {
    const auto idx = *nl.find_element(name);
    const double v0 = nl.elements()[idx].value;
    Netlist hi = nl;
    hi.set_value(idx, v0 * (1 + rel));
    Netlist lo = nl;
    lo.set_value(idx, v0 * (1 - rel));
    const auto ph = pade_from_moments(
        MomentGenerator(hi).transfer_moments(circuits::Fig1Circuit::kInput, fig.v2, 4), 2);
    const auto pl = pade_from_moments(
        MomentGenerator(lo).transfer_moments(circuits::Fig1Circuit::kInput, fig.v2, 4), 2);
    for (std::size_t i = 0; i < 2; ++i) {
      // Match poles across perturbed runs by proximity.
      const auto p = pz.poles[i];
      auto nearest = [&](const linalg::CVector& set) {
        return *std::min_element(set.begin(), set.end(), [&](auto x, auto y) {
          return std::abs(x - p) < std::abs(y - p);
        });
      };
      const auto fd = (nearest(ph.poles) - nearest(pl.poles)) / (2.0 * rel * v0);
      EXPECT_NEAR(pz.dpole[i][idx].real(), fd.real(),
                  1e-3 * (std::abs(fd) + 1.0))
          << name << " pole " << i;
    }
  }
}

TEST(SymbolRanking, OpampPicksThePaperSymbols) {
  // On the 741, gout_q14 and c_comp must rank at the very top — this is
  // exactly the paper's automatic symbol identification.
  auto amp = circuits::make_opamp741();
  const auto ranked = rank_symbol_candidates(
      amp.netlist, circuits::Opamp741Circuit::kInput, amp.out, 2);
  ASSERT_GE(ranked.size(), 2u);
  std::vector<std::string> top;
  for (std::size_t i = 0; i < 6 && i < ranked.size(); ++i) top.push_back(ranked[i].name);
  EXPECT_NE(std::find(top.begin(), top.end(), circuits::Opamp741Circuit::kSymbolGout),
            top.end())
      << "gout_q14 not in top candidates";
  EXPECT_NE(std::find(top.begin(), top.end(), circuits::Opamp741Circuit::kSymbolCcomp),
            top.end())
      << "c_comp not in top candidates";
  // Scores sorted descending.
  for (std::size_t i = 1; i < ranked.size(); ++i)
    EXPECT_GE(ranked[i - 1].normalized_sensitivity, ranked[i].normalized_sensitivity);
}

TEST(SymbolRanking, NeverRanksNonDifferentiableElements) {
  // Regression pin: the candidate list must contain ONLY elements whose
  // value the sensitivity machinery can actually differentiate — an
  // independent source or a VCVS gain must never appear, however sensitive
  // the transfer function is to it.  (The compiled gradient subsystem
  // relies on this filter: every ranked candidate is a legal .symbol for a
  // with_gradients build.)
  circuit::Netlist nl;
  const auto in = nl.node("in");
  const auto mid = nl.node("mid");
  const auto amp_out = nl.node("ampout");
  const auto out = nl.node("out");
  nl.add_voltage_source("vin", in, circuit::kGround, 1.0);
  nl.add_resistor("r1", in, mid, 1e3);
  nl.add_capacitor("c1", mid, circuit::kGround, 1e-9);
  nl.add_vcvs("e1", amp_out, circuit::kGround, mid, circuit::kGround, 10.0);
  nl.add_resistor("r2", amp_out, out, 2e3);
  nl.add_capacitor("c2", out, circuit::kGround, 0.5e-9);

  MomentGenerator gen(nl);
  const auto ms = moment_sensitivities(gen, "vin", out, 4);
  const auto ranked = rank_symbol_candidates(nl, "vin", out, 2);
  ASSERT_FALSE(ranked.empty());
  for (const auto& cand : ranked) {
    EXPECT_TRUE(ms.differentiable[cand.element_index])
        << cand.name << " ranked despite being non-differentiable";
    EXPECT_NE(cand.name, "e1");
    EXPECT_NE(cand.name, "vin");
  }
  // The differentiable R/C population is all present and accounted for.
  EXPECT_EQ(ranked.size(), 4u);
}

}  // namespace
}  // namespace awe::engine
