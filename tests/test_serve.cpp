// In-process tests for the awe_serve evaluation daemon (DESIGN.md §16).
//
// serve_probe.py exercises the daemon as a black box over its CLI; these
// tests pin the same contracts at the library layer where gtest can watch
// the ServeStats counters directly:
//   - deadline semantics: a mid-sweep expiry answers ok with partial,
//     fully-accounted kDeadline points, and the worker AND connection are
//     immediately reusable;
//   - admission control: a full queue sheds with "overloaded" +
//     retry_after_ms while the queued request still completes;
//   - graceful drain: queued and in-flight work is answered, then the
//     server stops on its own and wait() returns;
//   - request containment: a malformed line is answered with
//     "bad_request" and the connection keeps serving.
#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "serve/json.hpp"
#include "serve/net.hpp"
#include "serve/server.hpp"

namespace awe::serve {
namespace {

namespace fs = std::filesystem;
using namespace std::chrono_literals;

constexpr const char* kDeck = R"(* serve test deck
Vin in 0 1
R1 in a 1k
C1 a 0 10p
R2 a out 2k
C2 out 0 5p
.symbol R2
.symbol C2
.input vin
.output out
.end
)";

/// Line-oriented JSON client over one Unix-socket connection.
class Client {
 public:
  explicit Client(const std::string& path, std::string label = "client")
      : fd_(net::connect_unix(path)), reader_(fd_, 1u << 20),
        label_(std::move(label)) {}
  ~Client() { ::close(fd_); }

  void send(const std::string& body) {
    ASSERT_TRUE(net::write_all(fd_, body + "\n", 5s, never_)) << label_;
  }

  json::Value recv(std::chrono::milliseconds timeout = 10s) {
    std::string line;
    const net::ReadStatus st = reader_.read_line(line, timeout, timeout, never_);
    EXPECT_EQ(st, net::ReadStatus::kLine) << label_;
    return json::parse(line);
  }

  json::Value request(const std::string& body) {
    send(body);
    return recv();
  }

 private:
  int fd_;
  net::LineReader reader_;
  std::string label_;
  std::atomic<bool> never_{false};
};

class ServeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("awe_serve_test_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::create_directories(dir_);
    deck_ = (dir_ / "deck.sp").string();
    std::ofstream(deck_) << kDeck;
    cfg_.deck_path = deck_;
    cfg_.unix_path = (dir_ / "s.sock").string();
    cfg_.workers = 1;
    cfg_.debug_ops = true;  // cancel_after_checks + sleep
  }

  void TearDown() override {
    server_.reset();
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }

  void start() {
    server_ = std::make_unique<Server>(cfg_);
    server_->start();
  }

  /// Spin (over a status connection) until a worker is executing a job.
  void wait_until_executing() {
    Client status(cfg_.unix_path, "status-poller");
    for (int i = 0; i < 400; ++i) {
      const json::Value st = status.request(R"({"op":"status"})");
      const json::Value* ex = st.find("executing");
      if (ex && ex->is_number() && ex->number >= 1) return;
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    FAIL() << "no worker started executing";
  }

  fs::path dir_;
  std::string deck_;
  ServerConfig cfg_;
  std::unique_ptr<Server> server_;
};

std::uint64_t num(const json::Value& v, const char* key) {
  const json::Value* f = v.find(key);
  EXPECT_NE(f, nullptr) << "missing field " << key;
  return f && f->is_number() ? static_cast<std::uint64_t>(f->number) : 0;
}

bool truthy(const json::Value& v, const char* key) {
  const json::Value* f = v.find(key);
  return f && f->is_bool() && f->boolean;
}

TEST_F(ServeTest, DeadlineMidSweepAnswersPartialAndStaysServable) {
  start();
  Client c(cfg_.unix_path);

  // cancel_after_checks=1 expires the token deterministically at the first
  // per-batch poll — no wall-clock sensitivity.
  json::Value r = c.request(
      R"({"op":"eval","mc":64,"summary":true,"cancel_after_checks":1})");
  EXPECT_TRUE(truthy(r, "ok"));
  EXPECT_TRUE(truthy(r, "deadline_expired"));
  EXPECT_GE(num(r, "deadline_points"), 1u);
  // Every point is accounted exactly once: ok + degraded + quarantined.
  EXPECT_EQ(num(r, "num_points"),
            num(r, "ok_points") + num(r, "degraded") + num(r, "quarantined"));
  EXPECT_GE(num(r, "quarantined"), num(r, "deadline_points"));

  // The SAME connection and the SAME (sole) worker serve the next request
  // cleanly — an expired token must not leak into the pool.
  json::Value r2 = c.request(R"({"op":"eval","mc":32,"summary":true})");
  EXPECT_TRUE(truthy(r2, "ok"));
  EXPECT_FALSE(truthy(r2, "deadline_expired"));
  EXPECT_EQ(num(r2, "deadline_points"), 0u);

  EXPECT_EQ(server_->stats().deadline_expired.load(), 1u);
  const auto h = server_->health_snapshot();
  EXPECT_GE(h.failures(health::FailClass::kDeadline), 1u);
}

TEST_F(ServeTest, FullQueueShedsWithRetryAfter) {
  cfg_.max_queue = 1;
  cfg_.retry_after_ms = 7;
  start();

  // Occupy the only worker, then overfill the queue of one.
  Client blocker(cfg_.unix_path);
  blocker.send(R"({"op":"sleep","ms":2000})");
  wait_until_executing();

  // The reader admits these sequentially, so the outcome is deterministic:
  // the first rides the queue, the other two find it full and are shed.
  Client c(cfg_.unix_path);
  c.send(R"({"op":"eval","mc":8,"summary":true,"id":0})");
  c.send(R"({"op":"eval","mc":8,"summary":true,"id":1})");
  c.send(R"({"op":"eval","mc":8,"summary":true,"id":2})");

  std::size_t ok = 0, shed = 0;
  for (int i = 0; i < 3; ++i) {
    const json::Value r = c.recv();
    if (truthy(r, "ok")) {
      ++ok;
    } else {
      const json::Value* code = r.find("error");
      ASSERT_NE(code, nullptr);
      EXPECT_EQ(code->str, "overloaded");
      EXPECT_EQ(num(r, "retry_after_ms"), 7u);
      ++shed;
    }
  }
  EXPECT_EQ(ok, 1u);
  EXPECT_EQ(shed, 2u);
  EXPECT_EQ(server_->stats().shed.load(), 2u);
  const auto h = server_->health_snapshot();
  EXPECT_EQ(h.failures(health::FailClass::kOverload), 2u);

  EXPECT_TRUE(truthy(blocker.recv(), "ok"));
}

TEST_F(ServeTest, DrainAnswersInFlightAndQueuedThenStops) {
  start();
  Client a(cfg_.unix_path);
  Client b(cfg_.unix_path);
  a.send(R"({"op":"sleep","ms":600})");
  wait_until_executing();  // the sleep holds the only worker
  b.send(R"({"op":"eval","mc":16,"summary":true})");
  // The eval must be ADMITTED before the drain begins, or a fast drain
  // could legitimately stop the server before the reader queues it.
  for (int i = 0; i < 400; ++i) {
    if (server_->stats().requests.load() >= 1) break;
    std::this_thread::sleep_for(5ms);
  }
  ASSERT_GE(server_->stats().requests.load(), 1u);

  server_->request_drain();
  EXPECT_TRUE(server_->draining());

  // Both the in-flight sleep and the queued eval are answered during the
  // drain window, and the server then finishes without stop() being called.
  {
    SCOPED_TRACE("in-flight sleep response");
    EXPECT_TRUE(truthy(a.recv(), "ok"));
  }
  {
    SCOPED_TRACE("queued eval response");
    EXPECT_TRUE(truthy(b.recv(), "ok"));
  }
  server_->wait();
  EXPECT_EQ(server_->stats().unavailable.load(), 0u);
}

TEST_F(ServeTest, MalformedLineIsContainedToTheRequest) {
  start();
  Client c(cfg_.unix_path);
  const json::Value bad = c.request("this is not json");
  EXPECT_FALSE(truthy(bad, "ok"));
  const json::Value* code = bad.find("error");
  ASSERT_NE(code, nullptr);
  EXPECT_EQ(code->str, "bad_request");

  // Wrong arity explicit points: also a bad_request, also non-fatal.
  const json::Value arity = c.request(R"({"op":"eval","points":[[1.0,2.0,3.0]]})");
  EXPECT_FALSE(truthy(arity, "ok"));

  const json::Value ping = c.request(R"({"op":"ping"})");
  EXPECT_TRUE(truthy(ping, "ok"));
  EXPECT_EQ(server_->stats().bad_requests.load(), 2u);
  EXPECT_EQ(server_->stats().evicted.load(), 0u);
}

TEST_F(ServeTest, DefaultDeadlineIsAppliedWhenRequestNamesNone) {
  cfg_.default_deadline_ms = 7;
  cfg_.max_deadline_ms = 5;
  start();
  Client c(cfg_.unix_path);

  // The response echoes the EFFECTIVE deadline, which makes the selection
  // rules testable without racing the clock: a request that names no
  // deadline gets the server default, clamped to max_deadline_ms ...
  const json::Value r = c.request(R"({"op":"eval","mc":8,"summary":true})");
  EXPECT_TRUE(truthy(r, "ok"));
  EXPECT_EQ(num(r, "deadline_ms"), 5u);

  // ... and an explicit per-request deadline overrides the default (still
  // under the clamp).
  const json::Value r2 =
      c.request(R"({"op":"eval","mc":8,"summary":true,"deadline_ms":3})");
  EXPECT_TRUE(truthy(r2, "ok"));
  EXPECT_EQ(num(r2, "deadline_ms"), 3u);
}

TEST_F(ServeTest, DefaultDeadlineExpiresAnUnboundedSweep) {
  cfg_.default_deadline_ms = 1;
  start();
  Client c(cfg_.unix_path);
  // MC large enough that 1ms cannot plausibly cover the sweep (the margin
  // is >10x the fastest observed point rate); once the token expires the
  // remaining points are quarantined in O(1) each, so the test stays fast.
  const json::Value r =
      c.request(R"({"op":"eval","mc":262144,"summary":true})");
  EXPECT_TRUE(truthy(r, "ok"));
  EXPECT_TRUE(truthy(r, "deadline_expired"));
  EXPECT_EQ(num(r, "num_points"),
            num(r, "ok_points") + num(r, "degraded") + num(r, "quarantined"));
}

}  // namespace
}  // namespace awe::serve
