// RC mesh workload: fill-producing sparse solves, partitioning on
// non-tree interconnect, and tree-engine rejection.
#include <gtest/gtest.h>

#include <cmath>

#include "awe/awe.hpp"
#include "awe/tree_moments.hpp"
#include "circuits/mesh.hpp"
#include "core/awesymbolic.hpp"
#include "transim/transim.hpp"

namespace awe {
namespace {

TEST(Mesh, GeneratorShape) {
  circuits::MeshValues v;
  v.width = 4;
  v.height = 3;
  auto mesh = circuits::make_rc_mesh(v);
  // V + rdrv + 12 caps + cload + edges: x-edges 3*3=9, y-edges 4*2=8.
  EXPECT_EQ(mesh.netlist.elements().size(), 2u + 12u + 1u + 9u + 8u);
  EXPECT_TRUE(mesh.netlist.validate().empty());
  EXPECT_THROW(circuits::make_rc_mesh({.width = 1}), std::invalid_argument);
}

TEST(Mesh, TreeEngineRefusesMesh) {
  auto mesh = circuits::make_rc_mesh({.width = 3, .height = 3});
  EXPECT_FALSE(engine::RcTreeAnalyzer::build(mesh.netlist, circuits::MeshCircuit::kInput)
                   .has_value());
}

TEST(Mesh, AweTracksTransient) {
  circuits::MeshValues v;
  v.width = 10;
  v.height = 10;
  auto mesh = circuits::make_rc_mesh(v);
  const auto rom = engine::run_awe(mesh.netlist, circuits::MeshCircuit::kInput,
                                   mesh.far_corner, {.order = 3});
  EXPECT_NEAR(rom.dc_gain(), 1.0, 1e-9);
  EXPECT_TRUE(rom.is_stable());

  transim::TransientSimulator sim(mesh.netlist);
  sim.set_waveform(circuits::MeshCircuit::kInput, transim::step(1.0));
  transim::TransientOptions topts;
  topts.t_stop = 20e-9;
  topts.dt = 0.01e-9;
  const auto res = sim.run(topts);
  const auto vt = res.node_voltage(sim.layout(), mesh.far_corner);
  double max_err = 0.0;
  for (std::size_t k = 0; k < vt.size(); k += 16)
    max_err = std::max(max_err, std::abs(vt[k] - rom.step_response(res.time[k])));
  EXPECT_LT(max_err, 0.02);
}

TEST(Mesh, SymbolicModelOnMesh) {
  // Symbols: driver resistance and the far-corner load — the partitioner
  // must handle mesh (non-tree) numeric partitions transparently.
  circuits::MeshValues v;
  v.width = 8;
  v.height = 8;
  auto mesh = circuits::make_rc_mesh(v);
  const auto model = core::CompiledModel::build(mesh.netlist, {"rdrv", "cload"},
                                                circuits::MeshCircuit::kInput,
                                                mesh.far_corner, {.order = 2});
  for (const double r : {10.0, 50.0}) {
    for (const double cl : {1e-12, 5e-12}) {
      const auto m_sym = model.moments_at(std::vector<double>{r, cl});
      mesh.netlist.set_value("rdrv", r);
      mesh.netlist.set_value("cload", cl);
      const auto m_ref =
          engine::MomentGenerator(mesh.netlist)
              .transfer_moments(circuits::MeshCircuit::kInput, mesh.far_corner, 4);
      for (std::size_t k = 0; k < 4; ++k)
        EXPECT_NEAR(m_sym[k], m_ref[k], 1e-8 * (std::abs(m_ref[k]) + 1e-25))
            << "r=" << r << " cl=" << cl << " k=" << k;
    }
  }
}

TEST(Mesh, ElmoreDelayGrowsWithMeshSize) {
  auto elmore = [](std::size_t n) {
    circuits::MeshValues v;
    v.width = n;
    v.height = n;
    auto mesh = circuits::make_rc_mesh(v);
    const auto rom = engine::run_awe(mesh.netlist, circuits::MeshCircuit::kInput,
                                     mesh.far_corner, {.order = 2});
    return rom.elmore_delay();
  };
  const double e4 = elmore(4), e8 = elmore(8), e16 = elmore(16);
  EXPECT_GT(e8, e4);
  EXPECT_GT(e16, e8);
}

}  // namespace
}  // namespace awe
