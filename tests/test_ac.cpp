#include <gtest/gtest.h>

#include <cmath>
#include <complex>

#include "awe/ac.hpp"
#include "awe/awe.hpp"
#include "circuits/fig1_rc.hpp"
#include "circuits/opamp741.hpp"

namespace awe::engine {
namespace {

using circuit::kGround;
using circuit::Netlist;

TEST(Ac, SingleRcPoleExact) {
  Netlist nl;
  const auto in = nl.node("in");
  const auto out = nl.node("out");
  nl.add_voltage_source("vin", in, kGround, 1.0);
  nl.add_resistor("r1", in, out, 1e3);
  nl.add_capacitor("c1", out, kGround, 1e-9);
  AcAnalysis ac(nl, "vin", out);
  const double rc = 1e-6;
  for (const double f : {1e3, 1e5, 1e6, 1e8}) {
    const std::complex<double> expected = 1.0 / (1.0 + std::complex<double>(0, 2 * M_PI * f * rc));
    const auto got = ac.transfer(f);
    EXPECT_LT(std::abs(got - expected), 1e-9 * std::abs(expected)) << "f=" << f;
  }
}

TEST(Ac, RlcResonancePeak) {
  // Series RLC: |H| across the capacitor peaks near f0 = 1/(2 pi sqrt(LC)).
  Netlist nl;
  const auto in = nl.node("in");
  const auto mid = nl.node("mid");
  const auto out = nl.node("out");
  nl.add_voltage_source("vin", in, kGround, 1.0);
  nl.add_resistor("r1", in, mid, 10.0);
  nl.add_inductor("l1", mid, out, 1e-6);
  nl.add_capacitor("c1", out, kGround, 1e-9);
  AcAnalysis ac(nl, "vin", out);
  const double f0 = 1.0 / (2 * M_PI * std::sqrt(1e-6 * 1e-9));
  EXPECT_GT(std::abs(ac.transfer(f0)), 2.0);          // resonant gain Q ~ 3.2
  EXPECT_NEAR(std::abs(ac.transfer(f0 / 100)), 1.0, 1e-3);
  EXPECT_LT(std::abs(ac.transfer(f0 * 100)), 1e-3);
}

TEST(Ac, MatchesRomOnOpamp) {
  // The order-2 ROM of the 741 must track the exact AC response through
  // the unity-gain frequency.
  auto amp = circuits::make_opamp741();
  const auto rom = run_awe(amp.netlist, circuits::Opamp741Circuit::kInput, amp.out,
                           {.order = 2});
  AcAnalysis ac(amp.netlist, circuits::Opamp741Circuit::kInput, amp.out);
  for (const double f : {1.0, 10.0, 100.0, 1e3, 1e4, 1e5, 1e6}) {
    const auto exact = ac.transfer(f);
    const auto approx = rom.transfer({0.0, 2 * M_PI * f});
    EXPECT_LT(std::abs(approx - exact), 0.05 * std::abs(exact)) << "f=" << f;
  }
}

TEST(Ac, SweepAndLogSpace) {
  const auto f = AcAnalysis::log_space(1.0, 1e6, 7);
  ASSERT_EQ(f.size(), 7u);
  EXPECT_DOUBLE_EQ(f.front(), 1.0);
  EXPECT_NEAR(f.back(), 1e6, 1e-6);
  EXPECT_NEAR(f[1] / f[0], 10.0, 1e-9);
  EXPECT_THROW(AcAnalysis::log_space(0.0, 1e3, 4), std::invalid_argument);
  EXPECT_THROW(AcAnalysis::log_space(10.0, 1.0, 4), std::invalid_argument);
  EXPECT_TRUE(AcAnalysis::log_space(1.0, 2.0, 0).empty());
  ASSERT_EQ(AcAnalysis::log_space(5.0, 9.0, 1).size(), 1u);

  auto fig = circuits::make_fig1();
  AcAnalysis ac(fig.netlist, circuits::Fig1Circuit::kInput, fig.v2);
  const auto pts = ac.sweep(std::vector<double>{0.01, 0.1, 1.0});
  ASSERT_EQ(pts.size(), 3u);
  // Low-pass: magnitude decreasing.
  EXPECT_GT(std::abs(pts[0].response), std::abs(pts[1].response));
  EXPECT_GT(std::abs(pts[1].response), std::abs(pts[2].response));
}

TEST(Ac, MomentsAreSweepDerivatives) {
  // Cross-check: m1 = dH/ds at 0 ~ (H(j e) - H(0)) / (j e) for small e.
  auto fig = circuits::make_fig1({.g1 = 1e-3, .g2 = 2e-3, .c1 = 2e-12, .c2 = 3e-12});
  AcAnalysis ac(fig.netlist, circuits::Fig1Circuit::kInput, fig.v2);
  const auto m = MomentGenerator(fig.netlist)
                     .transfer_moments(circuits::Fig1Circuit::kInput, fig.v2, 2);
  const double f_eps = 1.0;  // Hz, far below the poles
  const auto h0 = ac.transfer(0.0);
  const auto h1 = ac.transfer(f_eps);
  const auto deriv = (h1 - h0) / std::complex<double>(0.0, 2 * M_PI * f_eps);
  EXPECT_NEAR(h0.real(), m[0], 1e-9);
  EXPECT_NEAR(deriv.real(), m[1], 1e-3 * std::abs(m[1]));
}

}  // namespace
}  // namespace awe::engine
