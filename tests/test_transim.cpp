#include <gtest/gtest.h>

#include <cmath>

#include "circuits/ladders.hpp"
#include "transim/transim.hpp"

namespace awe::transim {
namespace {

using circuit::kGround;
using circuit::Netlist;

TEST(Waveforms, Shapes) {
  const auto s = step(2.0, 1e-9, 1e-9);
  EXPECT_DOUBLE_EQ(s(0.0), 0.0);
  EXPECT_DOUBLE_EQ(s(1.5e-9), 1.0);
  EXPECT_DOUBLE_EQ(s(5e-9), 2.0);
  const auto d = dc(3.0);
  EXPECT_DOUBLE_EQ(d(123.0), 3.0);
  const auto p = pwl({{0.0, 0.0}, {1.0, 2.0}, {2.0, 2.0}});
  EXPECT_DOUBLE_EQ(p(0.5), 1.0);
  EXPECT_DOUBLE_EQ(p(10.0), 2.0);
  EXPECT_DOUBLE_EQ(p(-1.0), 0.0);
  const auto sn = sine(1.0, 1.0);
  EXPECT_NEAR(sn(0.25), 1.0, 1e-12);
}

TEST(Transient, RcStepResponseMatchesAnalytic) {
  // v(t) = 1 - exp(-t/RC), RC = 1us.
  Netlist nl;
  const auto in = nl.node("in");
  const auto out = nl.node("out");
  nl.add_voltage_source("vin", in, kGround, 0.0);
  nl.add_resistor("r1", in, out, 1e3);
  nl.add_capacitor("c1", out, kGround, 1e-9);

  TransientSimulator sim(nl);
  sim.set_waveform("vin", step(1.0));
  TransientOptions opts;
  opts.t_stop = 5e-6;
  opts.dt = 5e-9;
  const auto res = sim.run(opts);
  const auto v = res.node_voltage(sim.layout(), out);
  for (std::size_t k = 0; k < res.time.size(); k += 50) {
    const double expected = 1.0 - std::exp(-res.time[k] / 1e-6);
    EXPECT_NEAR(v[k], expected, 2e-3);
  }
}

TEST(Transient, BackwardEulerAlsoConverges) {
  Netlist nl;
  const auto in = nl.node("in");
  const auto out = nl.node("out");
  nl.add_voltage_source("vin", in, kGround, 0.0);
  nl.add_resistor("r1", in, out, 1e3);
  nl.add_capacitor("c1", out, kGround, 1e-9);
  TransientSimulator sim(nl);
  sim.set_waveform("vin", step(1.0));
  TransientOptions opts;
  opts.t_stop = 5e-6;
  opts.dt = 1e-9;
  opts.integrator = Integrator::kBackwardEuler;
  const auto res = sim.run(opts);
  const auto v = res.node_voltage(sim.layout(), out);
  EXPECT_NEAR(v.back(), 1.0, 1e-2);
}

TEST(Transient, RlcResonanceEnergyDecays) {
  // Series RLC ringing: response must decay, trapezoidal must not blow up.
  Netlist nl;
  const auto in = nl.node("in");
  const auto mid = nl.node("mid");
  const auto out = nl.node("out");
  nl.add_voltage_source("vin", in, kGround, 0.0);
  nl.add_resistor("r1", in, mid, 10.0);
  nl.add_inductor("l1", mid, out, 1e-6);
  nl.add_capacitor("c1", out, kGround, 1e-9);
  TransientSimulator sim(nl);
  sim.set_waveform("vin", step(1.0));
  TransientOptions opts;
  opts.t_stop = 2e-6;
  opts.dt = 1e-9;
  const auto res = sim.run(opts);
  const auto v = res.node_voltage(sim.layout(), out);
  // Underdamped: overshoot beyond 1.0 somewhere, settles near 1.0.
  const double peak = *std::max_element(v.begin(), v.end());
  EXPECT_GT(peak, 1.05);
  EXPECT_LT(peak, 2.1);
  EXPECT_NEAR(v.back(), 1.0, 0.05);
}

TEST(Transient, DcInitialConditionStartsSettled) {
  Netlist nl;
  const auto in = nl.node("in");
  const auto out = nl.node("out");
  nl.add_voltage_source("vin", in, kGround, 1.0);  // DC source stays on
  nl.add_resistor("r1", in, out, 1e3);
  nl.add_capacitor("c1", out, kGround, 1e-9);
  TransientSimulator sim(nl);
  TransientOptions opts;
  opts.t_stop = 1e-6;
  opts.dt = 1e-9;
  const auto res = sim.run(opts);
  const auto v = res.node_voltage(sim.layout(), out);
  for (const double x : v) EXPECT_NEAR(x, 1.0, 1e-9);
}

TEST(Transient, InvalidOptionsRejected) {
  Netlist nl;
  nl.add_resistor("r1", nl.node("a"), kGround, 1.0);
  TransientSimulator sim(nl);
  TransientOptions opts;
  opts.dt = 0.0;
  EXPECT_THROW(sim.run(opts), std::invalid_argument);
  EXPECT_THROW(sim.set_waveform("ghost", dc(1.0)), std::invalid_argument);
  EXPECT_THROW(sim.set_waveform("r1", dc(1.0)), std::invalid_argument);
}

TEST(Transient, LadderDelayGrowsWithLength) {
  auto t50 = [](std::size_t segs) {
    circuits::LadderValues v;
    v.segments = segs;
    auto lad = circuits::make_rc_ladder(v);
    TransientSimulator sim(lad.netlist);
    sim.set_waveform(circuits::LadderCircuit::kInput, step(1.0));
    TransientOptions opts;
    opts.t_stop = 50e-9;
    opts.dt = 0.02e-9;
    const auto res = sim.run(opts);
    const auto vv = res.node_voltage(sim.layout(), lad.out);
    for (std::size_t k = 0; k < vv.size(); ++k)
      if (vv[k] >= 0.5) return res.time[k];
    return -1.0;
  };
  const double d10 = t50(10);
  const double d30 = t50(30);
  ASSERT_GT(d10, 0.0);
  ASSERT_GT(d30, 0.0);
  EXPECT_GT(d30, 2.0 * d10);  // Elmore delay scales ~quadratically
}

}  // namespace
}  // namespace awe::transim
