// Writer <-> parser round-trip property: for any generated deck d,
//   parse(write(parse(d))) is structurally identical to parse(d),
// and writing the re-parse reproduces the exact same text (the writer is
// a fixpoint after one pass).  Generator options are varied so the
// property covers K cards and flattened .subckt expansions, whose dotted
// element names ("x1.r1") used to misclassify as X instance cards.
#include <gtest/gtest.h>

#include <string>

#include "circuit/parser.hpp"
#include "circuit/writer.hpp"
#include "testing/compare.hpp"
#include "testing/netlist_gen.hpp"

namespace awe::testing {
namespace {

void expect_roundtrip(const circuit::ParsedDeck& original, std::uint64_t seed) {
  const std::string text1 = circuit::deck_to_string(original);
  circuit::ParsedDeck reparsed;
  ASSERT_NO_THROW(reparsed = circuit::parse_deck_string(text1))
      << "seed " << seed << ": writer output does not re-parse:\n" << text1;
  std::string why;
  EXPECT_TRUE(decks_identical(original, reparsed, &why))
      << "seed " << seed << ": " << why << "\ndeck:\n" << text1;
  // One write must be a fixpoint: writing the re-parse is byte-identical.
  EXPECT_EQ(text1, circuit::deck_to_string(reparsed)) << "seed " << seed;
}

TEST(RoundTripProperty, GeneratedDecks) {
  GenOptions gen;
  for (std::uint64_t i = 0; i < 200; ++i) {
    gen.seed = case_seed(7, i);
    const GeneratedDeck d = generate_deck(gen);
    expect_roundtrip(d.parsed, gen.seed);
  }
}

TEST(RoundTripProperty, MutualInductorDecks) {
  // Force the K-card path to appear often: inductors + mutual only.
  GenOptions gen;
  gen.allow_subckt = false;
  gen.max_decorations = 12;
  for (std::uint64_t i = 0; i < 100; ++i) {
    gen.seed = case_seed(1234, i);
    const GeneratedDeck d = generate_deck(gen);
    expect_roundtrip(d.parsed, gen.seed);
  }
}

TEST(RoundTripProperty, SubcktExpansionDecks) {
  // Hierarchical decks flatten to dotted element names; the round-trip of
  // those names is the regression this suite pins down.
  GenOptions gen;
  gen.allow_mutual = false;
  bool saw_subckt = false;
  for (std::uint64_t i = 0; i < 200; ++i) {
    gen.seed = case_seed(5678, i);
    const GeneratedDeck d = generate_deck(gen);
    for (const auto& e : d.parsed.netlist.elements())
      if (e.name.find('.') != std::string::npos) saw_subckt = true;
    expect_roundtrip(d.parsed, gen.seed);
  }
  EXPECT_TRUE(saw_subckt) << "no generated deck exercised a subckt instance";
}

TEST(RoundTripProperty, HandWrittenSubcktDeck) {
  const circuit::ParsedDeck deck = circuit::parse_deck_string(
      "* hier\n"
      ".subckt pi a b\n"
      "rs a b 1k\n"
      "cs b 0 1p\n"
      ".ends\n"
      "vin in 0 1\n"
      "x1 in mid pi\n"
      "x2 mid out pi\n"
      "rl out 0 1meg\n"
      ".symbol rl x1.rs\n"
      ".input vin\n"
      ".output out\n"
      ".end\n");
  expect_roundtrip(deck, 0);
}

TEST(RoundTripProperty, DeterministicGeneration) {
  // Same seed, same bytes — the corpus depends on this holding across
  // platforms and standard-library implementations.
  GenOptions gen;
  gen.seed = 99;
  const GeneratedDeck a = generate_deck(gen);
  const GeneratedDeck b = generate_deck(gen);
  EXPECT_EQ(a.text, b.text);
  EXPECT_EQ(a.mna_dim, b.mna_dim);
}

}  // namespace
}  // namespace awe::testing
