// Property sweeps on the symbolic engine: evaluation homomorphisms,
// substitution/evaluation consistency, compile determinism, and ordering
// invariants.
#include <gtest/gtest.h>

#include <random>

#include "symbolic/compile.hpp"
#include "symbolic/poly_matrix.hpp"
#include "symbolic/polynomial.hpp"
#include "symbolic/rational.hpp"

namespace awe::symbolic {
namespace {

Polynomial random_poly(std::mt19937& rng, std::size_t nv, int max_terms = 6,
                       int max_exp = 3) {
  std::uniform_real_distribution<double> coeff(-2.0, 2.0);
  std::vector<Term> terms;
  const int nt = 1 + static_cast<int>(rng() % max_terms);
  for (int t = 0; t < nt; ++t) {
    Monomial m(nv);
    for (auto& e : m) e = static_cast<std::uint16_t>(rng() % (max_exp + 1));
    terms.push_back({m, coeff(rng)});
  }
  return Polynomial::from_terms(nv, std::move(terms));
}

class SymbolicProperty : public ::testing::TestWithParam<int> {};

TEST_P(SymbolicProperty, SubstituteAllVariablesEqualsEvaluate) {
  std::mt19937 rng(GetParam() * 101 + 7);
  std::uniform_real_distribution<double> val(-1.5, 1.5);
  const std::size_t nv = 3;
  const auto p = random_poly(rng, nv);
  std::vector<double> pt(nv);
  for (auto& v : pt) v = val(rng);
  Polynomial cur = p;
  for (std::size_t i = 0; i < nv; ++i) cur = cur.substitute(i, pt[i]);
  ASSERT_TRUE(cur.is_constant());
  EXPECT_NEAR(cur.constant_value(), p.evaluate(pt), 1e-10);
}

TEST_P(SymbolicProperty, DerivativeMatchesFiniteDifference) {
  std::mt19937 rng(GetParam() * 31 + 3);
  std::uniform_real_distribution<double> val(0.2, 1.2);
  const std::size_t nv = 2;
  const auto p = random_poly(rng, nv);
  std::vector<double> pt{val(rng), val(rng)};
  const double h = 1e-7;
  for (std::size_t i = 0; i < nv; ++i) {
    auto hi = pt, lo = pt;
    hi[i] += h;
    lo[i] -= h;
    const double fd = (p.evaluate(hi) - p.evaluate(lo)) / (2 * h);
    EXPECT_NEAR(p.derivative(i).evaluate(pt), fd, 1e-5 * (std::abs(fd) + 1.0));
  }
}

TEST_P(SymbolicProperty, CompiledProgramIsDeterministicAndFaithful) {
  std::mt19937 rng(GetParam() * 977 + 5);
  std::uniform_real_distribution<double> val(-1.0, 1.0);
  const std::size_t nv = 3;
  const auto p = random_poly(rng, nv, 10, 4);
  const auto q = random_poly(rng, nv, 10, 4);

  auto compile_once = [&]() {
    ExprGraph g;
    std::vector<NodeId> vars;
    for (std::size_t i = 0; i < nv; ++i) vars.push_back(g.input(i));
    std::vector<NodeId> roots{lower_polynomial(g, p, vars),
                              lower_polynomial(g, q, vars)};
    return CompiledProgram(g, roots);
  };
  const auto prog1 = compile_once();
  const auto prog2 = compile_once();
  EXPECT_EQ(prog1.instruction_count(), prog2.instruction_count());
  EXPECT_EQ(prog1.register_count(), prog2.register_count());

  for (int t = 0; t < 5; ++t) {
    std::vector<double> pt(nv);
    for (auto& v : pt) v = val(rng);
    std::vector<double> out(2);
    prog1.run(pt, out);
    EXPECT_NEAR(out[0], p.evaluate(pt), 1e-8 * (1.0 + std::abs(out[0])));
    EXPECT_NEAR(out[1], q.evaluate(pt), 1e-8 * (1.0 + std::abs(out[1])));
  }
}

TEST_P(SymbolicProperty, DeterminantMultiplicativityOnConstMatrices) {
  // det(AB) = det(A) det(B) for constant polynomial matrices.
  std::mt19937 rng(GetParam() * 57 + 11);
  std::uniform_real_distribution<double> val(-1.0, 1.0);
  const std::size_t n = 3;
  PolyMatrix a(n, n, 0), b(n, n, 0);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j) {
      a(i, j) = Polynomial::constant(0, val(rng) + (i == j ? 2.0 : 0.0));
      b(i, j) = Polynomial::constant(0, val(rng) + (i == j ? 2.0 : 0.0));
    }
  const double det_ab = determinant(a * b).constant_value();
  const double prod = determinant(a).constant_value() * determinant(b).constant_value();
  EXPECT_NEAR(det_ab, prod, 1e-9 * (1.0 + std::abs(prod)));
}

TEST_P(SymbolicProperty, RationalFieldAxiomsNumeric) {
  std::mt19937 rng(GetParam() * 13 + 29);
  std::uniform_real_distribution<double> val(0.3, 1.7);
  const std::size_t nv = 2;
  const RationalFunction a(random_poly(rng, nv),
                           random_poly(rng, nv) + Polynomial::constant(nv, 4.0));
  const RationalFunction b(random_poly(rng, nv),
                           random_poly(rng, nv) + Polynomial::constant(nv, 4.0));
  std::vector<double> pt{val(rng), val(rng)};
  const double av = a.evaluate(pt), bv = b.evaluate(pt);
  // (a+b)-b == a and (a*b)/b == a pointwise.
  EXPECT_NEAR(((a + b) - b).evaluate(pt), av, 1e-8 * (1.0 + std::abs(av)));
  if (std::abs(bv) > 1e-6) {
    EXPECT_NEAR(((a * b) / b).evaluate(pt), av, 1e-8 * (1.0 + std::abs(av)));
  }
}

TEST_P(SymbolicProperty, MonomialOrderIsStrictWeakOrder) {
  std::mt19937 rng(GetParam() * 3 + 41);
  auto random_mono = [&]() {
    Monomial m(3);
    for (auto& e : m) e = static_cast<std::uint16_t>(rng() % 4);
    return m;
  };
  for (int t = 0; t < 20; ++t) {
    const auto a = random_mono(), b = random_mono(), c = random_mono();
    EXPECT_FALSE(monomial_less(a, a));  // irreflexive
    if (monomial_less(a, b)) {
      EXPECT_FALSE(monomial_less(b, a));  // asymmetric
    }
    if (monomial_less(a, b) && monomial_less(b, c)) {
      EXPECT_TRUE(monomial_less(a, c));  // transitive
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SymbolicProperty, ::testing::Range(1, 9));

}  // namespace
}  // namespace awe::symbolic
