// Supply-rail (AC ground) handling in the partitioner: symbolic elements
// attached to source-pinned nodes.
#include <gtest/gtest.h>

#include <cmath>

#include "awe/moments.hpp"
#include "core/awesymbolic.hpp"
#include "partition/partitioner.hpp"

namespace awe::part {
namespace {

using circuit::kGround;
using circuit::Netlist;

/// Amplifier-style circuit where the symbolic load resistor hangs off the
/// VDD rail (the node is pinned by an ideal source -> AC ground).
Netlist rail_circuit() {
  Netlist nl;
  const auto vdd = nl.node("vdd");
  const auto in = nl.node("in");
  const auto out = nl.node("out");
  nl.add_voltage_source("vddsrc", vdd, kGround, 5.0);
  nl.add_voltage_source("vin", in, kGround, 1.0);
  nl.add_vccs("gm1", out, kGround, in, kGround, 2e-3);
  nl.add_resistor("rload", vdd, out, 5e3);  // symbolic, touches the rail
  nl.add_capacitor("cl", out, kGround, 1e-12);
  return nl;
}

TEST(RailNodes, SymbolicElementOnRailMatchesFullAwe) {
  auto nl = rail_circuit();
  const auto out = *nl.find_node("out");
  const auto model = core::CompiledModel::build(nl, {"rload"}, "vin", out, {.order = 2});
  // The rail did not become a port.
  EXPECT_LE(model.port_count(), 2u);
  for (const double r : {1e3, 5e3, 20e3}) {
    const auto m_sym = model.moments_at(std::vector<double>{r});
    nl.set_value("rload", r);
    const auto m_ref = engine::MomentGenerator(nl).transfer_moments("vin", out, 4);
    for (std::size_t k = 0; k < 4; ++k)
      EXPECT_NEAR(m_sym[k], m_ref[k], 1e-9 * (std::abs(m_ref[k]) + 1e-20))
          << "r=" << r << " k=" << k;
  }
}

TEST(RailNodes, SymbolicCapacitorAcrossRails) {
  // Decoupling-cap-style symbol between VDD and ground: its small-signal
  // effect is null (both terminals AC ground) and the model must degrade
  // gracefully to a constant-in-that-symbol form, still matching full AWE.
  auto nl = rail_circuit();
  nl.add_capacitor("cdecap", *nl.find_node("vdd"), kGround, 1e-9);
  const auto out = *nl.find_node("out");
  const auto model = core::CompiledModel::build(nl, {"cdecap"}, "vin", out, {.order = 2});
  const auto m1 = model.moments_at(std::vector<double>{1e-9});
  const auto m2 = model.moments_at(std::vector<double>{1e-6});
  for (std::size_t k = 0; k < 4; ++k) EXPECT_DOUBLE_EQ(m1[k], m2[k]);
  nl.set_value("cdecap", 123e-9);
  const auto m_ref = engine::MomentGenerator(nl).transfer_moments("vin", out, 4);
  for (std::size_t k = 0; k < 4; ++k)
    EXPECT_NEAR(m1[k], m_ref[k], 1e-9 * (std::abs(m_ref[k]) + 1e-20));
}

TEST(RailNodes, OutputOnRailRejected) {
  auto nl = rail_circuit();
  EXPECT_THROW(
      MomentPartitioner(nl, {"rload"}, "vin", *nl.find_node("vdd")),
      std::invalid_argument);
}

TEST(RailNodes, InputPinnedByAnotherSourceRejected) {
  Netlist nl;
  const auto a = nl.node("a");
  nl.add_voltage_source("v1", a, kGround, 1.0);
  nl.add_voltage_source("v2", a, kGround, 1.0);  // parallel pin
  nl.add_resistor("r1", a, nl.node("b"), 1e3);
  nl.add_capacitor("c1", nl.node("b"), kGround, 1e-12);
  EXPECT_THROW(MomentPartitioner(nl, {"c1"}, "v1", *nl.find_node("b")),
               std::invalid_argument);
}

}  // namespace
}  // namespace awe::part
