#include <gtest/gtest.h>

#include <random>

#include "linalg/dense.hpp"
#include "linalg/lu.hpp"
#include "symbolic/poly_matrix.hpp"

namespace awe::symbolic {
namespace {

PolyMatrix random_const_matrix(std::size_t n, std::mt19937& rng) {
  std::uniform_real_distribution<double> dist(-2.0, 2.0);
  PolyMatrix m(n, n, 0);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j)
      m(i, j) = Polynomial::constant(0, dist(rng) + (i == j ? 3.0 : 0.0));
  return m;
}

double numeric_det(const PolyMatrix& m) {
  const std::size_t n = m.rows();
  linalg::Matrix d(n, n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j) d(i, j) = m(i, j).constant_value();
  auto lu = linalg::LuFactorization::factor(d);
  return lu ? lu->determinant() : 0.0;
}

class DeterminantSizes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(DeterminantSizes, MatchesNumericLuDeterminant) {
  std::mt19937 rng(static_cast<unsigned>(GetParam()) + 1);
  const auto m = random_const_matrix(GetParam(), rng);
  const auto d = determinant(m);
  const double expected = numeric_det(m);
  EXPECT_NEAR(d.constant_value(), expected, 1e-9 * (1.0 + std::abs(expected)));
}

INSTANTIATE_TEST_SUITE_P(Sizes, DeterminantSizes,
                         ::testing::Values<std::size_t>(1, 2, 3, 4, 5, 6, 7, 8));

TEST(Determinant, SymbolicTwoByTwo) {
  // [[a, 1], [1, b]] -> det = a b - 1
  PolyMatrix m(2, 2, 2);
  m(0, 0) = Polynomial::variable(2, 0);
  m(0, 1) = Polynomial::constant(2, 1.0);
  m(1, 0) = Polynomial::constant(2, 1.0);
  m(1, 1) = Polynomial::variable(2, 1);
  const auto d = determinant(m);
  const std::vector<double> pt{3.0, 5.0};
  EXPECT_DOUBLE_EQ(d.evaluate(pt), 14.0);
  EXPECT_EQ(d.term_count(), 2u);
}

TEST(Determinant, EmptyAndOversizeMatrices) {
  EXPECT_DOUBLE_EQ(determinant(PolyMatrix(0, 0, 1)).constant_value(), 1.0);
  EXPECT_THROW(determinant(PolyMatrix(17, 17, 0)), std::invalid_argument);
  EXPECT_THROW(determinant(PolyMatrix(2, 3, 0)), std::invalid_argument);
}

TEST(Adjugate, IdentityProperty) {
  // A * adj(A) = det(A) * I, verified symbolically on a 3x3 with symbols.
  std::mt19937 rng(42);
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  PolyMatrix a(3, 3, 2);
  for (std::size_t i = 0; i < 3; ++i)
    for (std::size_t j = 0; j < 3; ++j)
      a(i, j) = Polynomial::constant(2, dist(rng) + (i == j ? 2.0 : 0.0));
  a(0, 0) += Polynomial::variable(2, 0);
  a(1, 2) += Polynomial::variable(2, 1);

  const auto adj = adjugate(a);
  const auto prod = a * adj;
  const auto det = determinant(a);
  const std::vector<double> pt{0.7, -0.3};
  for (std::size_t i = 0; i < 3; ++i)
    for (std::size_t j = 0; j < 3; ++j) {
      const double expected = (i == j) ? det.evaluate(pt) : 0.0;
      EXPECT_NEAR(prod(i, j).evaluate(pt), expected, 1e-10);
    }
}

TEST(Adjugate, OneByOne) {
  PolyMatrix a(1, 1, 1);
  a(0, 0) = Polynomial::variable(1, 0);
  const auto adj = adjugate(a);
  EXPECT_DOUBLE_EQ(adj(0, 0).constant_value(), 1.0);
}

TEST(SolveWithAdjugate, CramerSolution) {
  // Numeric sanity: A x = b with A constants; x = adj(A) b / det(A).
  std::mt19937 rng(13);
  const auto a = random_const_matrix(4, rng);
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  std::vector<Polynomial> b(4);
  linalg::Vector b_num(4);
  for (std::size_t i = 0; i < 4; ++i) {
    b_num[i] = dist(rng);
    b[i] = Polynomial::constant(0, b_num[i]);
  }
  const auto adj = adjugate(a);
  const auto n = solve_with_adjugate(adj, b);
  const double det = determinant(a).constant_value();

  linalg::Matrix a_num(4, 4);
  for (std::size_t i = 0; i < 4; ++i)
    for (std::size_t j = 0; j < 4; ++j) a_num(i, j) = a(i, j).constant_value();
  const auto x_ref = linalg::solve_dense(a_num, b_num);
  for (std::size_t i = 0; i < 4; ++i)
    EXPECT_NEAR(n[i].constant_value() / det, x_ref[i], 1e-9);
}

TEST(PolyMatrix, MultiplyVector) {
  PolyMatrix a(2, 2, 1);
  a(0, 0) = Polynomial::variable(1, 0);
  a(1, 1) = Polynomial::constant(1, 2.0);
  std::vector<Polynomial> x{Polynomial::constant(1, 3.0), Polynomial::variable(1, 0)};
  const auto y = a.multiply(x);
  const std::vector<double> pt{4.0};
  EXPECT_DOUBLE_EQ(y[0].evaluate(pt), 12.0);
  EXPECT_DOUBLE_EQ(y[1].evaluate(pt), 8.0);
}

}  // namespace
}  // namespace awe::symbolic
