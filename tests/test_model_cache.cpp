// Persistent compiled-model cache + serializer (DESIGN.md §10).
//
// What must hold, and what these tests pin down:
//   - save -> load -> save is BYTE-identical (the cache-determinism
//     invariant the CI job also checks across processes);
//   - a cached (loaded) model is bit-identical to a cold build, in both
//     EvalMode::kStrict and EvalMode::kFast, over the committed corpus;
//   - the cache key covers exactly what the build output depends on —
//     stable across calls, insensitive to symbolic/input values,
//     sensitive to topology, numeric values and ModelOptions;
//   - corrupt or foreign cache entries degrade to a miss, never an error;
//   - the parallel build pipeline (threads > 1) produces the same bytes
//     as the serial one;
//   - port_admittance_moments_inplace leaves the netlist untouched on
//     every exit path (the mutate-and-restore satellite).
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "circuit/parser.hpp"
#include "circuit/writer.hpp"
#include "core/model_cache.hpp"
#include "engine/thread_pool.hpp"
#include "partition/port_moments.hpp"

namespace awe::core {
namespace {

std::vector<std::filesystem::path> corpus_files() {
  std::vector<std::filesystem::path> files;
  for (const auto& entry : std::filesystem::directory_iterator(AWE_CORPUS_DIR))
    if (entry.path().extension() == ".sp") files.push_back(entry.path());
  std::sort(files.begin(), files.end());
  return files;
}

circuit::ParsedDeck load_deck(const std::filesystem::path& path) {
  std::ifstream is(path);
  std::ostringstream os;
  os << is.rdbuf();
  return circuit::parse_deck_string(os.str());
}

/// Corpus decks whose model builds (some are deliberately singular — those
/// regression-test the oracles, not the cache).
bool buildable(const circuit::ParsedDeck& deck, const ModelOptions& opts = {}) {
  try {
    (void)CompiledModel::build(deck.netlist, deck.symbol_elements, deck.input_source,
                               deck.output_node, opts);
    return true;
  } catch (const std::exception&) {
    return false;
  }
}

std::string serialize(const CompiledModel& model) {
  std::ostringstream os;
  model.save(os);
  return os.str();
}

/// Element values of the model's symbols, read back from the deck (same
/// remap-by-name convention the oracle harness uses).
std::vector<double> symbol_values(const circuit::ParsedDeck& deck,
                                  const CompiledModel& model) {
  std::vector<double> values;
  for (const std::string& name : model.symbol_names())
    values.push_back(deck.netlist.elements()[*deck.netlist.find_element(name)].value);
  return values;
}

std::vector<double> fast_moments(const CompiledModel& model,
                                 std::span<const double> values) {
  auto ws = model.make_batch_workspace(1);
  std::vector<double> out(model.moment_count(), 0.0);
  unsigned char ok = 1;
  model.moments_batch(values, 1, 1, ws, out, 1, {&ok, 1}, EvalMode::kFast);
  EXPECT_EQ(ok, 1);
  return out;
}

/// Fresh empty directory under the test temp root.
std::filesystem::path fresh_dir(const std::string& name) {
  const std::filesystem::path dir =
      std::filesystem::path(::testing::TempDir()) / ("model_cache_" + name);
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

/// A small deck with one reciprocal (R) and one direct (C) symbol.
circuit::ParsedDeck rc_deck() {
  return circuit::parse_deck_string(
      "* rc\n"
      "r1 in mid 1k\n"
      "c1 mid 0 2p\n"
      "r2 mid out 500\n"
      "c2 out 0 1p\n"
      "vin in 0 1\n"
      ".symbol r1 c2\n"
      ".input vin\n"
      ".output out\n"
      ".end\n");
}

// -- serializer --------------------------------------------------------

TEST(ModelSerializer, SaveLoadResaveIsByteIdenticalOverCorpus) {
  std::size_t checked = 0;
  for (const auto& path : corpus_files()) {
    SCOPED_TRACE(path.filename().string());
    const auto deck = load_deck(path);
    if (!buildable(deck)) continue;
    const auto model = CompiledModel::build(deck.netlist, deck.symbol_elements,
                                            deck.input_source, deck.output_node);
    const std::string first = serialize(model);
    std::istringstream in(first);
    const CompiledModel loaded = CompiledModel::load(in);
    EXPECT_EQ(first, serialize(loaded));
    ++checked;
  }
  EXPECT_GE(checked, 5u) << "too few buildable corpus decks to be meaningful";
}

TEST(ModelSerializer, LoadedModelIsFullyFunctionalAndBitIdentical) {
  const auto deck = rc_deck();
  ModelOptions opts;
  opts.with_gradients = true;
  const auto cold = CompiledModel::build(deck.netlist, deck.symbol_elements,
                                         deck.input_source, deck.output_node, opts);
  std::istringstream in(serialize(cold));
  const CompiledModel loaded = CompiledModel::load(in);

  EXPECT_EQ(loaded.order(), cold.order());
  EXPECT_EQ(loaded.symbol_names(), cold.symbol_names());
  EXPECT_EQ(loaded.instruction_count(), cold.instruction_count());
  EXPECT_EQ(loaded.fused_instruction_count(), cold.fused_instruction_count());
  EXPECT_TRUE(loaded.has_gradients());

  const auto values = symbol_values(deck, cold);
  const auto mc = cold.moments_at(values);
  const auto ml = loaded.moments_at(values);
  ASSERT_EQ(mc.size(), ml.size());
  for (std::size_t k = 0; k < mc.size(); ++k) EXPECT_EQ(mc[k], ml[k]) << "moment " << k;
  EXPECT_EQ(fast_moments(cold, values), fast_moments(loaded, values));

  const auto gc = cold.moments_and_gradients(values);
  const auto gl = loaded.moments_and_gradients(values);
  EXPECT_EQ(gc.moments, gl.moments);
  EXPECT_EQ(gc.dm, gl.dm);

  // Closed forms survive the round trip too (they read the polynomials).
  EXPECT_EQ(cold.dc_gain_expression().to_string(),
            loaded.dc_gain_expression().to_string());
  EXPECT_NO_THROW((void)loaded.evaluate(values));
}

TEST(ModelSerializer, RejectsCorruptInput) {
  std::istringstream empty("");
  EXPECT_THROW((void)CompiledModel::load(empty), std::runtime_error);
  std::istringstream garbage("AWEMgarbage-that-is-not-a-model");
  EXPECT_THROW((void)CompiledModel::load(garbage), std::runtime_error);
  std::istringstream bad_magic("NOPE");
  EXPECT_THROW((void)CompiledModel::load(bad_magic), std::runtime_error);

  // Truncation anywhere in a valid stream must throw, never crash.
  const auto deck = rc_deck();
  const std::string bytes = serialize(CompiledModel::build(
      deck.netlist, deck.symbol_elements, deck.input_source, deck.output_node));
  for (std::size_t cut : {std::size_t{5}, bytes.size() / 2, bytes.size() - 1}) {
    std::istringstream truncated(bytes.substr(0, cut));
    EXPECT_THROW((void)CompiledModel::load(truncated), std::runtime_error);
  }
}

// -- cache key ---------------------------------------------------------

TEST(ModelCacheKey, StableAndWellFormed) {
  const auto deck = rc_deck();
  const circuit::NodeId out[] = {*deck.netlist.find_node(deck.output_node)};
  const auto key = [&](const circuit::Netlist& n) {
    return model_cache_key(n, deck.symbol_elements, deck.input_source, out, {});
  };
  const std::string k = key(deck.netlist);
  EXPECT_EQ(k.size(), 32u);
  EXPECT_EQ(k.find_first_not_of("0123456789abcdef"), std::string::npos);
  EXPECT_EQ(k, key(deck.netlist));  // deterministic
}

TEST(ModelCacheKey, InsensitiveToSymbolicAndInputValues) {
  const auto deck = rc_deck();
  const circuit::NodeId out[] = {*deck.netlist.find_node(deck.output_node)};
  const std::string base =
      model_cache_key(deck.netlist, deck.symbol_elements, deck.input_source, out, {});

  // Symbolic element values are runtime inputs; the input source value is
  // unit-normalized.  Editing them must still hit the same entry.
  circuit::Netlist edited = deck.netlist;
  edited.set_value("r1", 47e3);
  edited.set_value("c2", 5e-12);
  edited.set_value("vin", 3.3);
  EXPECT_EQ(base, model_cache_key(edited, deck.symbol_elements, deck.input_source, out, {}));
}

TEST(ModelCacheKey, SensitiveToEverythingElse) {
  const auto deck = rc_deck();
  const circuit::NodeId out[] = {*deck.netlist.find_node(deck.output_node)};
  const std::string base =
      model_cache_key(deck.netlist, deck.symbol_elements, deck.input_source, out, {});

  // Non-symbolic value (it is folded into the program constants).
  circuit::Netlist edited = deck.netlist;
  edited.set_value("r2", 501.0);
  EXPECT_NE(base,
            model_cache_key(edited, deck.symbol_elements, deck.input_source, out, {}));

  // Topology.
  circuit::Netlist extended = deck.netlist;
  extended.add_capacitor("cx", extended.node("mid"), circuit::kGround, 1e-15);
  EXPECT_NE(base,
            model_cache_key(extended, deck.symbol_elements, deck.input_source, out, {}));

  // Symbol set and symbol ORDER (the order fixes the input layout).
  const std::vector<std::string> fewer = {"r1"};
  const std::vector<std::string> swapped = {"c2", "r1"};
  EXPECT_NE(base, model_cache_key(deck.netlist, fewer, deck.input_source, out, {}));
  EXPECT_NE(base, model_cache_key(deck.netlist, swapped, deck.input_source, out, {}));

  // Output node and ModelOptions.
  const circuit::NodeId mid[] = {*deck.netlist.find_node("mid")};
  EXPECT_NE(base,
            model_cache_key(deck.netlist, deck.symbol_elements, deck.input_source, mid, {}));
  EXPECT_NE(base, model_cache_key(deck.netlist, deck.symbol_elements, deck.input_source,
                                  out, {.order = 3}));
  EXPECT_NE(base, model_cache_key(deck.netlist, deck.symbol_elements, deck.input_source,
                                  out, {.with_gradients = true}));
}

// -- persistent cache --------------------------------------------------

TEST(ModelCache, CorpusColdVsCachedBitIdenticalStrictAndFast) {
  const auto dir = fresh_dir("corpus");
  BuildOptions with_cache;
  with_cache.cache_dir = dir.string();
  std::size_t checked = 0;
  for (const auto& path : corpus_files()) {
    SCOPED_TRACE(path.filename().string());
    const auto deck = load_deck(path);
    if (!buildable(deck)) continue;
    const auto cold = CompiledModel::build(deck.netlist, deck.symbol_elements,
                                           deck.input_source, deck.output_node);
    // First cache-routed build populates the entry, second one loads it.
    (void)CompiledModel::build(deck.netlist, deck.symbol_elements, deck.input_source,
                               deck.output_node, {}, with_cache);
    const auto cached = CompiledModel::build(deck.netlist, deck.symbol_elements,
                                             deck.input_source, deck.output_node, {},
                                             with_cache);
    EXPECT_EQ(serialize(cold), serialize(cached));
    const auto values = symbol_values(deck, cold);
    EXPECT_EQ(cold.moments_at(values), cached.moments_at(values));       // kStrict
    EXPECT_EQ(fast_moments(cold, values), fast_moments(cached, values)); // kFast
    ++checked;
  }
  EXPECT_GE(checked, 5u);
  EXPECT_FALSE(std::filesystem::is_empty(dir));
}

TEST(ModelCache, CorruptEntryFallsBackToColdBuild) {
  const auto dir = fresh_dir("corrupt");
  const auto deck = rc_deck();
  const circuit::NodeId out[] = {*deck.netlist.find_node(deck.output_node)};
  const std::string key =
      model_cache_key(deck.netlist, deck.symbol_elements, deck.input_source, out, {});

  // Plant a corrupt entry under the exact key the build will probe.
  {
    std::ofstream bad(ModelCache::entry_path(dir.string(), key), std::ios::binary);
    bad << "AWEM this is not a model";
  }
  BuildOptions with_cache;
  with_cache.cache_dir = dir.string();
  const auto model = CompiledModel::build(deck.netlist, deck.symbol_elements,
                                          deck.input_source, deck.output_node, {},
                                          with_cache);
  // The rebuild repaired the entry: a fresh load now succeeds.
  const auto repaired = ModelCache::load_file(ModelCache::entry_path(dir.string(), key));
  ASSERT_TRUE(repaired.has_value());
  EXPECT_EQ(serialize(model), serialize(*repaired));
}

TEST(ModelCache, LruHitsEvictionsAndStats) {
  const auto dir = fresh_dir("lru");
  ModelCache cache(dir.string(), /*max_entries=*/2);
  const auto deck = rc_deck();

  const auto a = cache.get_or_build(deck.netlist, deck.symbol_elements, deck.input_source,
                                    deck.output_node);
  const auto b = cache.get_or_build(deck.netlist, deck.symbol_elements, deck.input_source,
                                    deck.output_node);
  EXPECT_EQ(a.get(), b.get()) << "memory hit must return the same instance";
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.stats().memory_hits, 1u);

  // Two more distinct keys overflow the 2-entry LRU.
  (void)cache.get_or_build(deck.netlist, deck.symbol_elements, deck.input_source,
                           deck.output_node, {.order = 3});
  (void)cache.get_or_build(deck.netlist, deck.symbol_elements, deck.input_source,
                           deck.output_node, {.order = 4});
  EXPECT_EQ(cache.memory_entries(), 2u);
  EXPECT_EQ(cache.stats().evictions, 1u);

  // The evicted entry comes back from DISK, not a rebuild.
  (void)cache.get_or_build(deck.netlist, deck.symbol_elements, deck.input_source,
                           deck.output_node);
  EXPECT_EQ(cache.stats().disk_hits, 1u);
  EXPECT_EQ(cache.stats().misses, 3u);
}

TEST(ModelCache, ConcurrentGetOrBuildIsCoherent) {
  const auto dir = fresh_dir("concurrent");
  ModelCache cache(dir.string());
  const auto deck = rc_deck();

  std::vector<std::shared_ptr<const CompiledModel>> got(8);
  std::vector<std::thread> workers;
  for (std::size_t t = 0; t < got.size(); ++t)
    workers.emplace_back([&, t] {
      got[t] = cache.get_or_build(deck.netlist, deck.symbol_elements, deck.input_source,
                                  deck.output_node);
    });
  for (auto& w : workers) w.join();

  const std::string bytes = serialize(*got[0]);
  for (const auto& m : got) {
    ASSERT_TRUE(m);
    EXPECT_EQ(bytes, serialize(*m));
  }
  const auto s = cache.stats();
  EXPECT_GE(s.misses, 1u);
  EXPECT_EQ(s.misses + s.memory_hits + s.disk_hits, got.size());
}

// -- parallel build pipeline -------------------------------------------

TEST(ParallelBuild, ThreadsProduceByteIdenticalModels) {
  for (const auto& path : corpus_files()) {
    const auto deck = load_deck(path);
    if (!buildable(deck)) continue;
    SCOPED_TRACE(path.filename().string());
    const auto serial = CompiledModel::build(deck.netlist, deck.symbol_elements,
                                             deck.input_source, deck.output_node);
    BuildOptions four_threads;
    four_threads.threads = 4;
    const auto parallel = CompiledModel::build(deck.netlist, deck.symbol_elements,
                                               deck.input_source, deck.output_node, {},
                                               four_threads);
    EXPECT_EQ(serialize(serial), serialize(parallel));
  }
}

TEST(ParallelBuild, SharedPoolAndMultiOutputMatchSerial) {
  const auto deck = rc_deck();
  sweep::ThreadPool pool(3);
  BuildOptions shared_pool;
  shared_pool.pool = &pool;
  const auto serial = CompiledModel::build(deck.netlist, deck.symbol_elements,
                                           deck.input_source, deck.output_node);
  const auto pooled = CompiledModel::build(deck.netlist, deck.symbol_elements,
                                           deck.input_source, deck.output_node, {},
                                           shared_pool);
  EXPECT_EQ(serialize(serial), serialize(pooled));

  const std::vector<circuit::NodeId> outs = {*deck.netlist.find_node("mid"),
                                             *deck.netlist.find_node("out")};
  const auto ms = MultiOutputModel::build(deck.netlist, deck.symbol_elements,
                                          deck.input_source, outs);
  const auto mp = MultiOutputModel::build(deck.netlist, deck.symbol_elements,
                                          deck.input_source, outs, {}, shared_pool);
  const auto values = [&] {
    std::vector<double> v;
    for (const auto& name : ms.symbol_names())
      v.push_back(deck.netlist.elements()[*deck.netlist.find_element(name)].value);
    return v;
  }();
  for (std::size_t o = 0; o < ms.output_count(); ++o)
    EXPECT_EQ(ms.moments_at(o, values), mp.moments_at(o, values)) << "output " << o;
}

// -- mutate-and-restore extraction (the deep-copy fix) ------------------

TEST(PortMomentsInplace, RestoresNetlistOnSuccessAndThrow) {
  auto deck = rc_deck();
  const std::string before = circuit::deck_to_string(deck);
  const std::vector<circuit::NodeId> ports = {*deck.netlist.find_node("mid"),
                                              *deck.netlist.find_node("out")};

  const auto yk = part::port_admittance_moments_inplace(deck.netlist, ports, 4);
  EXPECT_EQ(yk.size(), 4u);
  EXPECT_EQ(circuit::deck_to_string(deck), before)
      << "success path must restore elements and source values";

  // A port in parallel with the (zeroed) input source makes the grounded
  // DC matrix singular: the throw path must restore just as cleanly.
  const std::vector<circuit::NodeId> bad_ports = {*deck.netlist.find_node("in")};
  EXPECT_THROW((void)part::port_admittance_moments_inplace(deck.netlist, bad_ports, 4),
               std::runtime_error);
  EXPECT_EQ(circuit::deck_to_string(deck), before)
      << "throw path must restore elements and source values";

  // And the extraction itself is pool-invariant (bit-identical columns).
  sweep::ThreadPool pool(4);
  const auto yk_par = part::port_admittance_moments(deck.netlist, ports, 4, &pool);
  EXPECT_EQ(yk, yk_par);
}

}  // namespace
}  // namespace awe::core
