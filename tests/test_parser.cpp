#include <gtest/gtest.h>

#include "circuit/parser.hpp"

namespace awe::circuit {
namespace {

TEST(SpiceValue, PlainAndScientific) {
  EXPECT_DOUBLE_EQ(parse_spice_value("42"), 42.0);
  EXPECT_DOUBLE_EQ(parse_spice_value("1e-12"), 1e-12);
  EXPECT_DOUBLE_EQ(parse_spice_value("-3.5"), -3.5);
}

TEST(SpiceValue, MagnitudeSuffixes) {
  EXPECT_DOUBLE_EQ(parse_spice_value("4.7k"), 4700.0);
  EXPECT_DOUBLE_EQ(parse_spice_value("3meg"), 3e6);
  EXPECT_DOUBLE_EQ(parse_spice_value("2M"), 2e-3);  // SPICE: m = milli
  EXPECT_DOUBLE_EQ(parse_spice_value("10u"), 10e-6);
  EXPECT_DOUBLE_EQ(parse_spice_value("5n"), 5e-9);
  EXPECT_DOUBLE_EQ(parse_spice_value("30p"), 30e-12);
  EXPECT_DOUBLE_EQ(parse_spice_value("1f"), 1e-15);
  EXPECT_DOUBLE_EQ(parse_spice_value("2g"), 2e9);
  EXPECT_DOUBLE_EQ(parse_spice_value("1t"), 1e12);
}

TEST(SpiceValue, UnitTextIgnored) {
  EXPECT_DOUBLE_EQ(parse_spice_value("1kohm"), 1000.0);
  EXPECT_DOUBLE_EQ(parse_spice_value("10pF"), 10e-12);
  EXPECT_DOUBLE_EQ(parse_spice_value("5v"), 5.0);
}

TEST(SpiceValue, GarbageThrows) {
  EXPECT_THROW(parse_spice_value("abc"), std::runtime_error);
  EXPECT_THROW(parse_spice_value(""), std::runtime_error);
  EXPECT_THROW(parse_spice_value("1.2.3k!"), std::runtime_error);
}

TEST(ParseDeck, BasicRcCircuit) {
  const auto deck = parse_deck_string(R"(* test rc circuit
Vin in 0 1.0
R1 in mid 1k
C1 mid 0 10p
.input vin
.output mid
.end
)");
  EXPECT_EQ(deck.title, " test rc circuit");
  EXPECT_EQ(deck.netlist.elements().size(), 3u);
  EXPECT_EQ(deck.input_source, "vin");
  EXPECT_EQ(deck.output_node, "mid");
  const auto& r = deck.netlist.elements()[1];
  EXPECT_EQ(r.kind, ElementKind::kResistor);
  EXPECT_DOUBLE_EQ(r.value, 1000.0);
}

TEST(ParseDeck, SymbolDirectiveAccumulates) {
  const auto deck = parse_deck_string(R"(
R1 a 0 1k
C1 a 0 1p
.symbol R1
.symbol C1
)");
  ASSERT_EQ(deck.symbol_elements.size(), 2u);
  EXPECT_EQ(deck.symbol_elements[0], "r1");
  EXPECT_EQ(deck.symbol_elements[1], "c1");
}

TEST(ParseDeck, ControlledSources) {
  const auto deck = parse_deck_string(R"(
V1 in 0 1
G1 out 0 in 0 1m
E1 e1 0 in 0 10
F1 f1 0 V1 2
H1 h1 0 V1 50
R1 out 0 1k
R2 e1 0 1k
R3 f1 0 1k
R4 h1 0 1k
)");
  const auto& els = deck.netlist.elements();
  EXPECT_EQ(els[1].kind, ElementKind::kVccs);
  EXPECT_DOUBLE_EQ(els[1].value, 1e-3);
  EXPECT_EQ(els[2].kind, ElementKind::kVcvs);
  EXPECT_EQ(els[3].kind, ElementKind::kCccs);
  EXPECT_EQ(els[3].ctrl_source, "v1");
  EXPECT_EQ(els[4].kind, ElementKind::kCcvs);
  EXPECT_TRUE(deck.netlist.validate().empty());
}

TEST(ParseDeck, CommentsAndBlankLines) {
  const auto deck = parse_deck_string(R"(* title
* full comment line

R1 a 0 1k ; trailing comment
)");
  EXPECT_EQ(deck.netlist.elements().size(), 1u);
}

TEST(ParseDeck, ErrorsCarryLineNumbers) {
  try {
    parse_deck_string("R1 a 0 1k\nZ9 bogus card\n");
    FAIL() << "expected parse failure";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

TEST(ParseDeck, MissingFieldsRejected) {
  EXPECT_THROW(parse_deck_string("R1 a 0\n"), std::runtime_error);
  EXPECT_THROW(parse_deck_string("G1 a 0 b 1m\n"), std::runtime_error);
  EXPECT_THROW(parse_deck_string(".symbol\n"), std::runtime_error);
}

TEST(ParseDeck, ContentAfterEndRejected) {
  EXPECT_THROW(parse_deck_string(".end\nR1 a 0 1k\n"), std::runtime_error);
}

TEST(ParseDeck, UnknownDirectiveRejected) {
  EXPECT_THROW(parse_deck_string(".bogus x\n"), std::runtime_error);
}

TEST(ParseDeck, InductorCard) {
  const auto deck = parse_deck_string("L1 a b 10n\nR1 a 0 1\nR2 b 0 1\n");
  EXPECT_EQ(deck.netlist.elements()[0].kind, ElementKind::kInductor);
  EXPECT_DOUBLE_EQ(deck.netlist.elements()[0].value, 1e-8);
}

}  // namespace
}  // namespace awe::circuit
