// Ramp response, Elmore delay, conjugate symmetry and measure-based
// symbol ranking.
#include <gtest/gtest.h>

#include <cmath>

#include "awe/awe.hpp"
#include "awe/sensitivity.hpp"
#include "circuits/fig1_rc.hpp"
#include "circuits/ladders.hpp"
#include "circuits/opamp741.hpp"

namespace awe::engine {
namespace {

ReducedOrderModel fig1_rom() {
  auto fig = circuits::make_fig1({.g1 = 1e-3, .g2 = 2e-3, .c1 = 3e-12, .c2 = 1e-12});
  return run_awe(fig.netlist, circuits::Fig1Circuit::kInput, fig.v2, {.order = 2});
}

TEST(RomExtras, RampIsIntegralOfStep) {
  const auto rom = fig1_rom();
  // Numerically integrate the step response and compare.
  const double t_end = 20e-9;
  const std::size_t n = 20000;
  const double h = t_end / n;
  double integral = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double t0 = i * h, t1 = (i + 1) * h;
    integral += 0.5 * h * (rom.step_response(t0) + rom.step_response(t1));
  }
  EXPECT_NEAR(rom.ramp_response(t_end), integral, 1e-6 * std::abs(integral));
  EXPECT_NEAR(rom.ramp_response(0.0), 0.0, 1e-18);
}

TEST(RomExtras, RampAsymptoteLagsByElmoreDelay) {
  // For a unity-gain low-pass, the ramp response approaches (t - T_elmore)
  // asymptotically — the classic interpretation of the first moment.
  const auto rom = fig1_rom();
  const double elmore = rom.elmore_delay();
  EXPECT_GT(elmore, 0.0);
  const double t = 50.0 * elmore;
  EXPECT_NEAR(rom.ramp_response(t), t - elmore, 1e-3 * elmore);
}

TEST(RomExtras, ElmoreMatchesMomentRatio) {
  auto lad = circuits::make_rc_ladder({.segments = 12});
  const auto rom = run_awe(lad.netlist, circuits::LadderCircuit::kInput, lad.out,
                           {.order = 2});
  EXPECT_NEAR(rom.elmore_delay(), -rom.moments()[1] / rom.moments()[0], 0.0);
  // For an RC ladder the 50% delay is within ~[0.3, 1.1] Elmore.
  const auto t50 = rom.step_crossing_time(0.5, 100 * rom.elmore_delay());
  ASSERT_TRUE(t50.has_value());
  EXPECT_GT(*t50, 0.3 * rom.elmore_delay());
  EXPECT_LT(*t50, 1.1 * rom.elmore_delay());
}

TEST(RomExtras, TransferConjugateSymmetry) {
  const auto rom = fig1_rom();
  for (const double f : {1e3, 1e6, 1e9}) {
    const auto hp = rom.transfer({0.0, 2 * M_PI * f});
    const auto hm = rom.transfer({0.0, -2 * M_PI * f});
    EXPECT_NEAR(hp.real(), hm.real(), 1e-12 * std::abs(hp));
    EXPECT_NEAR(hp.imag(), -hm.imag(), 1e-12 * std::abs(hp));
  }
}

TEST(RomExtras, ResiduesComeInConjugatePairs) {
  // Build an underdamped RLC so the poles are complex.
  circuit::Netlist nl;
  const auto in = nl.node("in");
  const auto mid = nl.node("mid");
  const auto out = nl.node("out");
  nl.add_voltage_source("vin", in, circuit::kGround, 1.0);
  nl.add_resistor("r1", in, mid, 10.0);
  nl.add_inductor("l1", mid, out, 1e-6);
  nl.add_capacitor("c1", out, circuit::kGround, 1e-9);
  const auto rom = run_awe(nl, "vin", out, {.order = 2});
  ASSERT_EQ(rom.order(), 2u);
  EXPECT_NE(rom.poles()[0].imag(), 0.0);
  EXPECT_NEAR(rom.poles()[0].real(), rom.poles()[1].real(), 1e-6 * std::abs(rom.poles()[0]));
  EXPECT_NEAR(rom.poles()[0].imag(), -rom.poles()[1].imag(), 1e-6 * std::abs(rom.poles()[0]));
  EXPECT_NEAR(rom.residues()[0].imag(), -rom.residues()[1].imag(),
              1e-6 * std::abs(rom.residues()[0]));
  // Impulse response stays real.
  for (double t = 0; t < 1e-6; t += 1e-8) {
    const double h = rom.impulse_response(t);
    EXPECT_TRUE(std::isfinite(h));
  }
}

TEST(RankingMeasures, GainMeasurePicksGainCriticalElements) {
  auto amp = circuits::make_opamp741();
  const auto by_gain = rank_symbol_candidates(
      amp.netlist, circuits::Opamp741Circuit::kInput, amp.out, 2,
      RankingMeasure::kDcGain);
  ASSERT_FALSE(by_gain.empty());
  // The gain-critical elements are the transconductances/output
  // conductances of the gain path; gout_q14 must be near the top.
  std::vector<std::string> top;
  for (std::size_t i = 0; i < 6 && i < by_gain.size(); ++i) top.push_back(by_gain[i].name);
  EXPECT_NE(std::find(top.begin(), top.end(), circuits::Opamp741Circuit::kSymbolGout),
            top.end());
  // A capacitor cannot affect DC gain: its score must be ~0.
  for (const auto& cand : by_gain) {
    if (cand.name == circuits::Opamp741Circuit::kSymbolCcomp) {
      EXPECT_NEAR(cand.normalized_sensitivity, 0.0, 1e-9);
    }
  }
}

TEST(RankingMeasures, ZeroMeasureRuns) {
  auto fig = circuits::make_fig1();
  // Fig.1 has a constant numerator (no finite zeros at order 2) — the
  // ranking must still return scores (all zero) without crashing.
  const auto by_zero = rank_symbol_candidates(fig.netlist, circuits::Fig1Circuit::kInput,
                                              fig.v2, 2, RankingMeasure::kZeros);
  EXPECT_EQ(by_zero.size(), 4u);
}

TEST(RankingMeasures, PoleAndGainRankingsDiffer) {
  auto amp = circuits::make_opamp741();
  const auto by_pole = rank_symbol_candidates(
      amp.netlist, circuits::Opamp741Circuit::kInput, amp.out, 2, RankingMeasure::kPoles);
  const auto by_gain = rank_symbol_candidates(
      amp.netlist, circuits::Opamp741Circuit::kInput, amp.out, 2,
      RankingMeasure::kDcGain);
  // c_comp dominates pole placement but is irrelevant to DC gain, so the
  // two orderings cannot coincide.
  auto rank_of = [](const std::vector<SymbolCandidate>& v, const std::string& name) {
    for (std::size_t i = 0; i < v.size(); ++i)
      if (v[i].name == name) return i;
    return v.size();
  };
  EXPECT_LT(rank_of(by_pole, circuits::Opamp741Circuit::kSymbolCcomp),
            rank_of(by_gain, circuits::Opamp741Circuit::kSymbolCcomp));
}

}  // namespace
}  // namespace awe::engine
