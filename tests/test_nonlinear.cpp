// Newton DC operating point and small-signal linearization.
#include <gtest/gtest.h>

#include <cmath>

#include "awe/awe.hpp"
#include "nonlinear/dc_solver.hpp"

namespace awe::nonlinear {
namespace {

using circuit::kGround;

TEST(DcSolve, DiodeResistorBias) {
  // 5V -- 1k -- diode to ground: solve I R + nVt ln(I/Is + 1) = 5.
  NonlinearCircuit ckt;
  auto& nl = ckt.linear;
  const auto vcc = nl.node("vcc");
  const auto a = nl.node("a");
  nl.add_voltage_source("vdd", vcc, kGround, 5.0);
  nl.add_resistor("rb", vcc, a, 1e3);
  ckt.add_diode("d1", a, kGround);

  const auto op = solve_dc(ckt);
  ASSERT_TRUE(op.converged) << op.iterations;
  circuit::MnaAssembler asem(nl);
  const double vd = op.x[asem.layout().node_unknown(a)];
  // Residual check against the diode law.
  const double i_r = (5.0 - vd) / 1e3;
  const double i_d = 1e-14 * (std::exp(vd / kThermalVoltage) - 1.0);
  EXPECT_NEAR(i_r, i_d, 1e-9 * i_r);
  EXPECT_GT(vd, 0.5);
  EXPECT_LT(vd, 0.8);
  // Small-signal conductance gd = I/ (n Vt) approximately.
  EXPECT_NEAR(op.device_ss[0].gd, i_d / kThermalVoltage, 1e-3 * i_d / kThermalVoltage);
}

TEST(DcSolve, ReverseBiasedDiodeConductsNothing) {
  NonlinearCircuit ckt;
  auto& nl = ckt.linear;
  const auto vneg = nl.node("vneg");
  const auto a = nl.node("a");
  nl.add_voltage_source("vss", vneg, kGround, -5.0);
  nl.add_resistor("rb", vneg, a, 1e3);
  ckt.add_diode("d1", a, kGround);
  const auto op = solve_dc(ckt);
  ASSERT_TRUE(op.converged);
  circuit::MnaAssembler asem(nl);
  // Nearly the full -5V appears across the diode.
  EXPECT_NEAR(op.x[asem.layout().node_unknown(a)], -5.0, 1e-6);
  EXPECT_LT(std::abs(op.device_ss[0].i_main), 2e-14);
}

NonlinearCircuit common_emitter() {
  // Classic CE stage: VCC 12V, RC 4.7k, base bias divider, RE (bypassed
  // conceptually; here no RE for simplicity), BJT with beta 100.
  NonlinearCircuit ckt;
  auto& nl = ckt.linear;
  const auto vcc = nl.node("vcc");
  const auto base = nl.node("base");
  const auto coll = nl.node("coll");
  nl.add_voltage_source("vdd", vcc, kGround, 12.0);
  nl.add_resistor("rc", vcc, coll, 4.7e3);
  nl.add_resistor("rb1", vcc, base, 150e3);
  nl.add_resistor("rb2", base, kGround, 10e3);
  BjtParams q;
  q.beta_f = 100.0;
  q.vaf = 80.0;
  q.cpi = 20e-12;
  q.cmu = 3e-12;
  ckt.add_bjt_npn("q1", coll, base, kGround, q);
  return ckt;
}

TEST(DcSolve, CommonEmitterBias) {
  auto ckt = common_emitter();
  const auto op = solve_dc(ckt);
  ASSERT_TRUE(op.converged) << op.iterations;
  circuit::MnaAssembler asem(ckt.linear);
  const double vb = op.x[asem.layout().node_unknown(*ckt.linear.find_node("base"))];
  const double vc = op.x[asem.layout().node_unknown(*ckt.linear.find_node("coll"))];
  EXPECT_GT(vb, 0.6);
  EXPECT_LT(vb, 0.8);
  // Transistor in forward active: collector between ~1V and ~11V.
  EXPECT_GT(vc, 1.0);
  EXPECT_LT(vc, 11.0);
  // gm = Ic/Vt consistency.
  const double ic = op.device_ss[0].i_main;
  EXPECT_NEAR(op.device_ss[0].gm, ic / kThermalVoltage,
              0.05 * ic / kThermalVoltage);
}

TEST(Linearize, CommonEmitterSmallSignalGain) {
  auto ckt = common_emitter();
  const auto op = solve_dc(ckt);
  ASSERT_TRUE(op.converged);
  auto ss = linearize(ckt, op);

  // Drive the base through a coupling source; measure collector gain.
  const auto in = ss.node("in");
  ss.add_voltage_source("vin", in, kGround, 1.0);
  ss.add_resistor("rsig", in, *ss.find_node("base"), 1.0);  // ~direct drive

  const auto rom = engine::run_awe(ss, "vin", *ss.find_node("coll"), {.order = 2});
  const double gain = rom.dc_gain();
  // Analytic: -gm * (RC || ro), with base fully driven.
  const double gm = op.device_ss[0].gm;
  const double ro = 1.0 / op.device_ss[0].go;
  const double rc = 4.7e3;
  const double expected = -gm * (rc * ro) / (rc + ro);
  EXPECT_NEAR(gain, expected, 0.02 * std::abs(expected));
  // With cpi/cmu present the stage is a low-pass: magnitude falls.
  EXPECT_LT(rom.magnitude(100e6), std::abs(gain));
  EXPECT_TRUE(rom.is_stable());
}

TEST(DcSolve, NmosCommonSource) {
  NonlinearCircuit ckt;
  auto& nl = ckt.linear;
  const auto vdd = nl.node("vdd");
  const auto gate = nl.node("gate");
  const auto drain = nl.node("drain");
  nl.add_voltage_source("vddsrc", vdd, kGround, 5.0);
  nl.add_voltage_source("vg", gate, kGround, 1.5);
  nl.add_resistor("rd", vdd, drain, 10e3);
  MosParams m;
  m.k = 1e-3;
  m.vth = 1.0;
  m.lambda = 0.02;
  m.cgs = 50e-15;
  m.cgd = 10e-15;
  ckt.add_nmos("m1", drain, gate, kGround, m);

  const auto op = solve_dc(ckt);
  ASSERT_TRUE(op.converged);
  circuit::MnaAssembler asem(nl);
  const double vd = op.x[asem.layout().node_unknown(drain)];
  // Id ~ k/2 Vov^2 = 0.5e-3 * 0.25 = 125 uA -> Vd ~ 5 - 1.25 = 3.75 V
  EXPECT_NEAR(vd, 3.75, 0.15);
  EXPECT_GT(vd, 1.5 - 1.0);  // saturation check: Vds > Vov

  // Small-signal gain -gm (Rd || rds).
  auto ss = linearize(ckt, op);
  ss.set_value("vg", 0.0);
  const auto rom = engine::run_awe(ss, "vg", drain, {.order = 2});
  (void)rom;
  // Rebuild with a proper small-signal input at the gate: the zeroed vg
  // source itself is the input.
  const double gm = op.device_ss[0].gm;
  const double rds = 1.0 / op.device_ss[0].gds;
  const double expected = -gm * (10e3 * rds) / (10e3 + rds);
  EXPECT_NEAR(rom.dc_gain(), expected, 0.02 * std::abs(expected));
}

TEST(DcSolve, CutoffMosIsOff) {
  NonlinearCircuit ckt;
  auto& nl = ckt.linear;
  const auto vdd = nl.node("vdd");
  const auto drain = nl.node("drain");
  nl.add_voltage_source("vddsrc", vdd, kGround, 5.0);
  nl.add_voltage_source("vg", nl.node("gate"), kGround, 0.2);  // below vth
  nl.add_resistor("rd", vdd, drain, 10e3);
  ckt.add_nmos("m1", drain, nl.node("gate"), kGround, {});
  const auto op = solve_dc(ckt);
  ASSERT_TRUE(op.converged);
  circuit::MnaAssembler asem(nl);
  EXPECT_NEAR(op.x[asem.layout().node_unknown(drain)], 5.0, 1e-3);
}

TEST(Linearize, RequiresConvergence) {
  NonlinearCircuit ckt;
  ckt.linear.add_resistor("r1", ckt.linear.node("a"), kGround, 1.0);
  DcResult bogus;
  bogus.converged = false;
  EXPECT_THROW(linearize(ckt, bogus), std::invalid_argument);
}

TEST(DcSolve, LinearOnlyCircuitConvergesInOneIteration) {
  NonlinearCircuit ckt;
  auto& nl = ckt.linear;
  nl.add_voltage_source("v1", nl.node("a"), kGround, 3.0);
  nl.add_resistor("r1", nl.node("a"), nl.node("b"), 1e3);
  nl.add_resistor("r2", nl.node("b"), kGround, 2e3);
  const auto op = solve_dc(ckt);
  ASSERT_TRUE(op.converged);
  EXPECT_LE(op.iterations, 2);
  circuit::MnaAssembler asem(nl);
  EXPECT_NEAR(op.x[asem.layout().node_unknown(*nl.find_node("b"))], 2.0, 1e-9);
}

}  // namespace
}  // namespace awe::nonlinear
