// End-to-end checks of the differential fuzzing subsystem itself:
//   * a clean campaign finds zero mismatches across the oracle paths and
//     its JSON report is byte-deterministic run to run;
//   * with an injected fault in the fast path, the fuzzer detects the
//     mismatch and the shrinker reduces it to a tiny reproducing deck
//     which still mismatches under the fault and agrees without it.
#include <gtest/gtest.h>

#include <string>

#include "circuit/parser.hpp"
#include "testing/fuzz.hpp"
#include "testing/shrink.hpp"

namespace awe::testing {
namespace {

TEST(FuzzSystem, CleanCampaignHasNoMismatches) {
  FuzzOptions opts;
  opts.seed = 42;
  opts.count = 150;
  const FuzzSummary sum = run_fuzz(opts);
  EXPECT_EQ(sum.count, opts.count);
  EXPECT_EQ(sum.mismatch, 0u) << sum.to_json();
  EXPECT_TRUE(sum.failures.empty());
  // The campaign must actually compare something, not classify everything
  // away: the overwhelming majority of well-posed decks agree outright.
  EXPECT_GE(sum.agree, opts.count * 8 / 10);
  EXPECT_GT(sum.moments_compared, 0u);
  EXPECT_LE(sum.max_mna_dim, 16u);
}

TEST(FuzzSystem, JsonReportIsDeterministic) {
  FuzzOptions opts;
  opts.seed = 42;
  opts.count = 60;
  const std::string a = run_fuzz(opts).to_json();
  const std::string b = run_fuzz(opts).to_json();
  EXPECT_EQ(a, b);
  EXPECT_NE(a.find("\"seed\": 42"), std::string::npos) << a;
}

TEST(FuzzSystem, DifferentSeedsGenerateDifferentDecks) {
  GenOptions gen;
  gen.seed = case_seed(42, 0);
  const std::string a = generate_deck(gen).text;
  gen.seed = case_seed(42, 1);
  const std::string b = generate_deck(gen).text;
  EXPECT_NE(a, b);
}

TEST(FuzzSystem, InjectedFaultIsDetectedAndShrunk) {
  FuzzOptions opts;
  opts.seed = 42;
  opts.count = 40;
  opts.oracle.fault = FaultInjection::kPerturbFastMoment0;
  const FuzzSummary sum = run_fuzz(opts);
  ASSERT_GT(sum.mismatch, 0u)
      << "a 2^-10 skew of the fast path's m_0 must not survive the oracle";
  ASSERT_FALSE(sum.failures.empty());

  const FuzzFailure& f = sum.failures.front();
  ASSERT_FALSE(f.minimized.empty());
  EXPECT_LE(f.minimized_elements, 6u) << f.minimized;

  // The minimized deck must reproduce: mismatch with the fault injected...
  const circuit::ParsedDeck mini = circuit::parse_deck_string(f.minimized);
  OracleOptions with_fault = opts.oracle;
  EXPECT_EQ(run_oracles(mini, with_fault).status, OracleStatus::kMismatch)
      << f.minimized;
  // ...and no mismatch with the fault removed (the deck itself is fine).
  OracleOptions no_fault = opts.oracle;
  no_fault.fault = FaultInjection::kNone;
  EXPECT_NE(run_oracles(mini, no_fault).status, OracleStatus::kMismatch)
      << f.minimized;
}

TEST(FuzzSystem, ShrinkerRejectsPassingInput) {
  GenOptions gen;
  gen.seed = case_seed(42, 3);
  const GeneratedDeck d = generate_deck(gen);
  EXPECT_THROW(shrink_deck(d.parsed, [](const circuit::ParsedDeck&) { return false; }),
               std::invalid_argument);
}

TEST(FuzzSystem, ShrinkerReachesElementCountFixpoint) {
  // Predicate: deck keeps >= 2 elements.  The input source and one symbol
  // are pinned by the shrinker itself, so the ladder below must collapse
  // all the way down to exactly {vin, rsp2}.
  const circuit::ParsedDeck deck = circuit::parse_deck_string(
      "* ladder\n"
      "vin n1 0 1\n"
      "rsp1 n1 n2 1k\n"
      "rsp2 n2 0 1k\n"
      "rx1 n2 n3 1k\n"
      "cd1 n3 0 1p\n"
      ".symbol rsp2\n"
      ".input vin\n"
      ".output n2\n"
      ".end\n");
  const auto pred = [](const circuit::ParsedDeck& d) {
    return d.netlist.elements().size() >= 2;
  };
  const ShrinkResult r = shrink_deck(deck, pred);
  EXPECT_TRUE(pred(r.deck));
  EXPECT_EQ(r.deck.netlist.elements().size(), 2u) << r.text;
  EXPECT_TRUE(r.deck.netlist.find_element("vin"));
  EXPECT_TRUE(r.deck.netlist.find_element("rsp2"));
  // The minimized text re-parses and still satisfies the predicate.
  EXPECT_TRUE(pred(circuit::parse_deck_string(r.text)));
}

TEST(FuzzSystem, RunCaseReproducesCampaignMember) {
  FuzzOptions opts;
  opts.seed = 42;
  opts.count = 5;
  std::vector<OracleStatus> seen;
  opts.on_case = [&](const GeneratedDeck&, const OracleResult& r) {
    seen.push_back(r.status);
  };
  run_fuzz(opts);
  ASSERT_EQ(seen.size(), 5u);
  const OracleResult replay = run_case(case_seed(opts.seed, 2), opts);
  EXPECT_EQ(replay.status, seen[2]);
}

}  // namespace
}  // namespace awe::testing
