#include <gtest/gtest.h>

#include <cmath>

#include "awe/ac.hpp"
#include "awe/awe.hpp"
#include "circuit/parser.hpp"
#include "partition/partitioner.hpp"
#include "transim/transim.hpp"

namespace awe {
namespace {

using circuit::kGround;
using circuit::Netlist;

Netlist transformer(double k) {
  // Ideal-ish transformer: primary driven through Rs, secondary loaded.
  Netlist nl;
  const auto in = nl.node("in");
  const auto p = nl.node("p");
  const auto s = nl.node("s");
  nl.add_voltage_source("vin", in, kGround, 1.0);
  nl.add_resistor("rs", in, p, 50.0);
  nl.add_inductor("lp", p, kGround, 1e-3);
  nl.add_inductor("ls", s, kGround, 1e-3);
  nl.add_resistor("rl", s, kGround, 1e3);
  nl.add_mutual("k1", "lp", "ls", k);
  return nl;
}

TEST(Mutual, ValidationRules) {
  Netlist nl;
  nl.add_inductor("l1", nl.node("a"), kGround, 1e-6);
  nl.add_inductor("l2", nl.node("b"), kGround, 1e-6);
  nl.add_resistor("r1", nl.node("a"), nl.node("b"), 1.0);
  EXPECT_THROW(nl.add_mutual("k1", "l1", "l1", 0.5), std::invalid_argument);
  EXPECT_THROW(nl.add_mutual("k1", "l1", "l2", 0.0), std::invalid_argument);
  EXPECT_THROW(nl.add_mutual("k1", "l1", "l2", 1.5), std::invalid_argument);
  nl.add_mutual("k1", "l1", "l2", 0.9);
  EXPECT_TRUE(nl.validate().empty());

  Netlist bad;
  bad.add_resistor("r1", bad.node("a"), kGround, 1.0);
  bad.add_mutual("k1", "r1", "lx", 0.5);
  EXPECT_EQ(bad.validate().size(), 2u);  // both references bad
  EXPECT_THROW(circuit::MnaAssembler a(bad), std::invalid_argument);
}

TEST(Mutual, ParserCard) {
  const auto deck = circuit::parse_deck_string(R"(
L1 a 0 1m
L2 b 0 1m
K1 L1 L2 0.8
R1 a 0 1
R2 b 0 1
)");
  const auto& k = deck.netlist.elements()[2];
  EXPECT_EQ(k.kind, circuit::ElementKind::kMutual);
  EXPECT_EQ(k.ctrl_source, "l1");
  EXPECT_EQ(k.ctrl_source2, "l2");
  EXPECT_DOUBLE_EQ(k.value, 0.8);
}

TEST(Mutual, AcTransferMatchesAnalytic) {
  // Coupled inductors: V_s(jw) follows from the 2x2 impedance system
  //   (Rs + jwLp) Ip + jwM Is = Vin   (KVL primary, Lp to ground)
  //   jwM Ip + (jwLs + Rl) Is = 0
  // with V_s = -Is * Rl ... solve numerically here and compare to AC.
  const double k = 0.6, lp = 1e-3, ls = 1e-3, rs = 50.0, rl = 1e3;
  const double m = k * std::sqrt(lp * ls);
  auto nl = transformer(k);
  engine::AcAnalysis ac(nl, "vin", *nl.find_node("s"));
  for (const double f : {1e3, 1e4, 1e5, 1e6}) {
    const std::complex<double> jw{0.0, 2 * M_PI * f};
    // Mesh equations with Ip, Is the inductor branch currents (into dot).
    // Primary node p: (Vin - Vp)/Rs = Ip ; Vp = jw Lp Ip + jw M Is.
    // Secondary: Vs = jw Ls Is + jw M Ip ; node s: Is = -Vs/Rl.
    // Solve 2x2 for Ip, Is.
    const std::complex<double> a11 = rs + jw * lp, a12 = jw * m;
    const std::complex<double> a21 = jw * m, a22 = jw * ls + rl;
    const std::complex<double> det = a11 * a22 - a12 * a21;
    const std::complex<double> is = -a21 / det;  // rhs = [1, 0]
    const std::complex<double> vs = -is * rl;
    const auto got = ac.transfer(f);
    EXPECT_LT(std::abs(got - vs), 1e-6 * (1.0 + std::abs(vs))) << "f=" << f;
  }
}

TEST(Mutual, AweMomentsMatchAc) {
  auto nl = transformer(0.8);
  const auto out = *nl.find_node("s");
  const auto rom = engine::run_awe(nl, "vin", out, {.order = 3});
  engine::AcAnalysis ac(nl, "vin", out);
  for (const double f : {1e2, 1e3, 1e4}) {
    const auto exact = ac.transfer(f);
    const auto approx = rom.transfer({0.0, 2 * M_PI * f});
    EXPECT_LT(std::abs(approx - exact), 0.02 * (1e-3 + std::abs(exact))) << "f=" << f;
  }
}

TEST(Mutual, TransientEnergyTransfer) {
  auto nl = transformer(0.9);
  transim::TransientSimulator sim(nl);
  sim.set_waveform("vin", transim::sine(1.0, 1e5));
  transim::TransientOptions opts;
  opts.t_stop = 50e-6;
  opts.dt = 10e-9;
  const auto res = sim.run(opts);
  const auto vs = res.node_voltage(sim.layout(), *nl.find_node("s"));
  // Steady-state secondary amplitude is nonzero (coupling works) and
  // bounded by the source amplitude (passivity, k <= 1).
  double peak = 0.0;
  for (std::size_t i = vs.size() / 2; i < vs.size(); ++i)
    peak = std::max(peak, std::abs(vs[i]));
  EXPECT_GT(peak, 0.05);
  EXPECT_LT(peak, 1.01);
}

TEST(Mutual, SymbolicCoupledInductorRejected) {
  auto nl = transformer(0.5);
  EXPECT_THROW(part::MomentPartitioner(nl, {"lp"}, "vin", *nl.find_node("s")),
               std::invalid_argument);
  // A resistor symbol in the same circuit is fine.
  EXPECT_NO_THROW(part::MomentPartitioner(nl, {"rl"}, "vin", *nl.find_node("s")));
}

TEST(Mutual, PortShortedByInductorIsDiagnosed) {
  // The secondary node is DC-shorted by the ideal inductor; making it a
  // port means its admittance has a pole at s = 0 and no Maclaurin
  // expansion — the partitioner must fail with a diagnostic, not garbage.
  auto nl = transformer(0.5);
  part::MomentPartitioner p(nl, {"rl"}, "vin", *nl.find_node("s"));
  try {
    p.compute(4);
    FAIL() << "expected singular-partition diagnosis";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("inductor"), std::string::npos);
  }
}

TEST(Mutual, SymbolicModelWithMutualInNumericPartition) {
  // Same transformer, but the observation/symbol node is separated from
  // the inductor by a series resistor, so every port admittance is
  // expandable about s = 0.
  auto nl = transformer(0.5);
  const auto s = *nl.find_node("s");
  const auto s2 = nl.node("s2");
  // Rewire: rl moves from s to s2, rser bridges s-s2.
  nl.add_resistor("rser", s, s2, 10.0);
  const auto rl_idx = *nl.find_element("rl");
  nl.element(rl_idx).pos = s2;
  nl.element(rl_idx).neg = circuit::kGround;

  part::MomentPartitioner p(nl, {"rl"}, "vin", s2);
  const auto sym = p.compute(4);
  for (const double rl : {500.0, 1e3, 2e3}) {
    nl.set_value("rl", rl);
    const auto m_ref = engine::MomentGenerator(nl).transfer_moments("vin", s2, 4);
    const auto m_sym = sym.evaluate(std::vector<double>{rl});
    for (std::size_t k = 0; k < 4; ++k)
      EXPECT_NEAR(m_sym[k], m_ref[k], 1e-8 * (std::abs(m_ref[k]) + 1e-20)) << "k=" << k;
  }
}

}  // namespace
}  // namespace awe
