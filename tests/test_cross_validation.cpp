// Randomized cross-validation of the full stack: exact AC solve vs
// reduced-order models vs transient integration on generated RLC circuits.
#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "awe/ac.hpp"
#include "awe/awe.hpp"
#include "circuit/netlist.hpp"
#include "transim/transim.hpp"

namespace awe {
namespace {

using circuit::kGround;
using circuit::Netlist;

struct RandomRlc {
  Netlist netlist;
  circuit::NodeId out;
};

/// Random RLC interconnect: resistive tree spine with caps to ground and a
/// few series inductors (each a unique node pair, so no inductor loops).
RandomRlc random_rlc(std::mt19937& rng, std::size_t nodes) {
  std::uniform_real_distribution<double> rdist(50.0, 2e3);
  std::uniform_real_distribution<double> cdist(0.5e-12, 5e-12);
  std::uniform_real_distribution<double> ldist(0.5e-9, 5e-9);
  RandomRlc out;
  auto& nl = out.netlist;
  const auto in = nl.node("in");
  nl.add_voltage_source("vin", in, kGround, 1.0);
  std::vector<circuit::NodeId> ns{in};
  for (std::size_t k = 0; k < nodes; ++k) {
    const auto prev = ns[rng() % ns.size()];
    const auto n = nl.node("n" + std::to_string(k));
    if (k % 3 == 2) {
      // Series R + L segment (keeps a DC path and avoids L-only loops).
      const auto mid = nl.node("m" + std::to_string(k));
      nl.add_resistor("r" + std::to_string(k), prev, mid, rdist(rng));
      nl.add_inductor("l" + std::to_string(k), mid, n, ldist(rng));
    } else {
      nl.add_resistor("r" + std::to_string(k), prev, n, rdist(rng));
    }
    nl.add_capacitor("c" + std::to_string(k), n, kGround, cdist(rng));
    ns.push_back(n);
  }
  out.out = ns.back();
  return out;
}

class RlcCrossValidation : public ::testing::TestWithParam<int> {};

TEST_P(RlcCrossValidation, RomTracksExactAcBelowBandEdge) {
  std::mt19937 rng(GetParam() * 881 + 17);
  auto ckt = random_rlc(rng, 6 + GetParam() % 5);
  const auto rom = engine::run_awe(ckt.netlist, "vin", ckt.out, {.order = 4});
  engine::AcAnalysis ac(ckt.netlist, "vin", ckt.out);
  const auto dom = rom.dominant_pole();
  ASSERT_TRUE(dom.has_value());
  const double f1 = std::abs(dom->real()) / (2 * M_PI);
  // Up to 2x the dominant pole the order-4 model must track the exact
  // response within a few percent of the DC level.
  for (const double f : {0.1 * f1, 0.5 * f1, f1, 2.0 * f1}) {
    const auto exact = ac.transfer(f);
    const auto approx = rom.transfer({0.0, 2 * M_PI * f});
    EXPECT_LT(std::abs(approx - exact), 0.05 * std::abs(rom.dc_gain()) + 1e-9)
        << "seed=" << GetParam() << " f=" << f;
  }
}

TEST_P(RlcCrossValidation, RomTracksTransient) {
  std::mt19937 rng(GetParam() * 443 + 3);
  auto ckt = random_rlc(rng, 7);
  const auto rom = engine::run_awe(ckt.netlist, "vin", ckt.out, {.order = 4});
  const auto dom = rom.dominant_pole();
  ASSERT_TRUE(dom.has_value());
  const double tau = 1.0 / std::abs(dom->real());

  transim::TransientSimulator sim(ckt.netlist);
  sim.set_waveform("vin", transim::step(1.0));
  transim::TransientOptions opts;
  opts.t_stop = 8.0 * tau;
  opts.dt = tau / 400.0;
  const auto res = sim.run(opts);
  const auto v = res.node_voltage(sim.layout(), ckt.out);
  double max_err = 0.0;
  for (std::size_t k = 0; k < v.size(); k += 8)
    max_err = std::max(max_err, std::abs(v[k] - rom.step_response(res.time[k])));
  EXPECT_LT(max_err, 0.05) << "seed=" << GetParam();
  // Both settle to the DC gain.
  EXPECT_NEAR(v.back(), rom.dc_gain(), 0.02);
}

TEST_P(RlcCrossValidation, AcConjugateSymmetryAndPassivityAtInput) {
  std::mt19937 rng(GetParam() * 17 + 1);
  auto ckt = random_rlc(rng, 6);
  engine::AcAnalysis ac(ckt.netlist, "vin", ckt.out);
  for (const double f : {1e6, 1e8, 1e9}) {
    const auto hp = ac.transfer(f);
    // Passive network driven by a unit source: no voltage gain above 1
    // anywhere in an RC-dominated tree... only guaranteed |H| bounded for
    // this topology class; assert a sane bound and finiteness.
    EXPECT_TRUE(std::isfinite(hp.real()) && std::isfinite(hp.imag()));
    EXPECT_LT(std::abs(hp), 3.0) << "f=" << f;  // mild resonances allowed
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RlcCrossValidation, ::testing::Range(1, 9));

}  // namespace
}  // namespace awe
