// Golden tests for the sweep drivers (monte_carlo / grid_sweep / corners)
// on the paper's fig1 RC and coupled-line circuits, cross-validated
// point-by-point against CompiledModel::evaluate / moments_at and the
// uncompiled reference path.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "circuits/coupled_lines.hpp"
#include "circuits/fig1_rc.hpp"
#include "core/awesymbolic.hpp"
#include "engine/sweep.hpp"

namespace awe {
namespace {

core::CompiledModel fig1_model(std::size_t order = 2) {
  auto fig = circuits::make_fig1();
  return core::CompiledModel::build(fig.netlist, {"g2", "c2"},
                                    circuits::Fig1Circuit::kInput, fig.v2,
                                    {.order = order});
}

TEST(GridSweep, MatchesPerPointEvaluationAndUncompiledReference) {
  const auto model = fig1_model();
  const std::vector<sweep::Axis> axes{{.lo = 0.5, .hi = 2.0, .count = 4},
                                      {.lo = 0.25, .hi = 4.0, .count = 3, .log_scale = true}};
  sweep::SweepOptions gopts;
  gopts.threads = 2;
  gopts.batch_width = 5;
  const auto res = sweep::grid_sweep(model, axes, gopts);
  ASSERT_EQ(res.num_points, 12u);
  ASSERT_EQ(res.ok_count, 12u);
  ASSERT_EQ(res.num_moments, 4u);

  for (std::size_t p = 0; p < res.num_points; ++p) {
    const std::vector<double> vals{res.point(0, p), res.point(1, p)};
    const auto direct = model.moments_at(vals);
    const auto uncompiled = model.moments_uncompiled(vals);
    for (std::size_t k = 0; k < res.num_moments; ++k) {
      EXPECT_EQ(res.moment(k, p), direct[k]);  // same compiled path, same bits
      EXPECT_NEAR(res.moment(k, p), uncompiled[k],
                  1e-10 * (std::abs(uncompiled[k]) + 1e-15));
    }
  }

  // Grid geometry: axis 0 linear {0.5, 1.0, 1.5, 2.0}, axis 1 geometric
  // {0.25, 1.0, 4.0}, last axis fastest.
  EXPECT_DOUBLE_EQ(res.point(0, 0), 0.5);
  EXPECT_DOUBLE_EQ(res.point(1, 0), 0.25);
  EXPECT_DOUBLE_EQ(res.point(1, 1), 1.0);
  EXPECT_DOUBLE_EQ(res.point(1, 2), 4.0);
  EXPECT_DOUBLE_EQ(res.point(0, 3), 1.0);
  EXPECT_DOUBLE_EQ(res.point(0, 11), 2.0);

  // Stats agree with a direct serial reduction.
  for (std::size_t k = 0; k < res.num_moments; ++k) {
    double mn = 1e300, mx = -1e300, sum = 0.0;
    for (std::size_t p = 0; p < res.num_points; ++p) {
      mn = std::min(mn, res.moment(k, p));
      mx = std::max(mx, res.moment(k, p));
      sum += res.moment(k, p);
    }
    EXPECT_EQ(res.moment_stats[k].count, res.num_points);
    EXPECT_DOUBLE_EQ(res.moment_stats[k].min, mn);
    EXPECT_DOUBLE_EQ(res.moment_stats[k].max, mx);
    EXPECT_NEAR(res.moment_stats[k].mean, sum / 12.0,
                1e-12 * (std::abs(sum) + 1.0));
    EXPECT_GE(res.moment_stats[k].stddev, 0.0);
  }
}

TEST(Corners, EnumeratesAllCombinationsLowBitFirst) {
  const auto model = fig1_model();
  const std::vector<sweep::Corner> ext{{.lo = 0.5, .hi = 2.0}, {.lo = 0.8, .hi = 1.2}};
  sweep::SweepOptions copts;
  copts.threads = 1;
  const auto res = sweep::corners(model, ext, copts);
  ASSERT_EQ(res.num_points, 4u);
  ASSERT_EQ(res.ok_count, 4u);
  const double exp[4][2] = {{0.5, 0.8}, {2.0, 0.8}, {0.5, 1.2}, {2.0, 1.2}};
  for (std::size_t p = 0; p < 4; ++p) {
    EXPECT_DOUBLE_EQ(res.point(0, p), exp[p][0]);
    EXPECT_DOUBLE_EQ(res.point(1, p), exp[p][1]);
    const auto direct = model.moments_at(std::vector<double>{exp[p][0], exp[p][1]});
    for (std::size_t k = 0; k < res.num_moments; ++k)
      EXPECT_EQ(res.moment(k, p), direct[k]);
  }
}

TEST(MonteCarlo, RomSamplesAndYieldCrossValidateAgainstEvaluate) {
  const auto model = fig1_model();
  const std::vector<sweep::Distribution> dists{sweep::Distribution::uniform(0.4, 2.5),
                                               sweep::Distribution::normal(1.0, 0.1)};
  sweep::SweepOptions opts;
  opts.threads = 2;
  opts.batch_width = 32;
  opts.with_rom = true;
  // Pole-location yield criterion: dominant pole at least 0.2 rad/s into
  // the left half-plane.
  opts.pass_predicate = [](const engine::ReducedOrderModel& rom) {
    const auto p = rom.dominant_pole();
    return p.has_value() && p->real() < -0.2;
  };
  const std::size_t n = 300;
  const auto res = sweep::monte_carlo(model, dists, n, 123, opts);
  ASSERT_EQ(res.ok_count, n);
  ASSERT_TRUE(res.rom.has_value());
  ASSERT_TRUE(res.dc_gain_stats.has_value());
  ASSERT_EQ(res.pass.size(), n);

  // Same seed => identical run.
  const auto res2 = sweep::monte_carlo(model, dists, n, 123, opts);
  EXPECT_EQ(res.points, res2.points);
  EXPECT_EQ(res.pass_count, res2.pass_count);

  std::size_t expected_pass = 0;
  for (std::size_t p = 0; p < n; p += 7) {
    const std::vector<double> vals{res.point(0, p), res.point(1, p)};
    const auto rom = model.evaluate(vals);
    ASSERT_EQ(res.rom->order[p], rom.order());
    for (std::size_t j = 0; j < rom.order(); ++j) {
      EXPECT_EQ(res.rom->poles[p * res.rom->max_order + j], rom.poles()[j]);
      EXPECT_EQ(res.rom->residues[p * res.rom->max_order + j], rom.residues()[j]);
    }
    EXPECT_EQ(res.rom->dc_gain[p], rom.dc_gain());
    EXPECT_EQ(res.pass[p] != 0, opts.pass_predicate(rom));
  }
  for (std::size_t p = 0; p < n; ++p) expected_pass += res.pass[p];
  EXPECT_EQ(res.pass_count, expected_pass);
  EXPECT_NEAR(res.yield(), static_cast<double>(expected_pass) / n, 1e-15);

  // The fig1 RC at these values is always stable; the DC gain of the
  // two-section divider is G1G2/(G1G2) = 1 at every point.
  EXPECT_NEAR(res.dc_gain_stats->mean, 1.0, 1e-9);
  EXPECT_EQ(res.dc_gain_stats->count, n);
}

TEST(MultiOutputSweep, CoupledLinesMatchPerPointMoments) {
  circuits::CoupledLineValues cv;
  cv.segments = 20;
  auto lines = circuits::make_coupled_lines(cv);
  const auto model = core::MultiOutputModel::build(
      lines.netlist,
      {circuits::CoupledLinesCircuit::kSymbolRdriver,
       circuits::CoupledLinesCircuit::kSymbolCload},
      circuits::CoupledLinesCircuit::kInput, {lines.line1_out, lines.line2_out},
      {.order = 2});
  ASSERT_EQ(model.output_count(), 2u);

  std::size_t n = 0;
  const std::vector<sweep::Axis> axes{{.lo = 50.0, .hi = 200.0, .count = 3},
                                      {.lo = 0.5e-12, .hi = 2e-12, .count = 3}};
  const std::vector<double> pts = sweep::grid_points(axes, n);
  ASSERT_EQ(n, 9u);

  sweep::SweepOptions opts;
  opts.threads = 2;
  opts.batch_width = 4;
  opts.with_rom = true;
  const auto results = sweep::run_sweep(model, pts, n, opts);
  ASSERT_EQ(results.size(), 2u);

  for (std::size_t o = 0; o < 2; ++o) {
    const auto& res = results[o];
    ASSERT_EQ(res.ok_count, n);
    for (std::size_t p = 0; p < n; ++p) {
      const std::vector<double> vals{res.point(0, p), res.point(1, p)};
      const auto direct = model.moments_at(o, vals);
      ASSERT_EQ(direct.size(), res.num_moments);
      for (std::size_t k = 0; k < res.num_moments; ++k)
        EXPECT_EQ(res.moment(k, p), direct[k]);
      const auto rom = model.evaluate(o, vals);
      EXPECT_EQ(res.rom->dc_gain[p], rom.dc_gain());
    }
  }
  // Direct line passes ~the full signal at DC, the victim line nothing.
  EXPECT_NEAR(results[0].dc_gain_stats->mean, 1.0, 1e-6);
  EXPECT_NEAR(results[1].dc_gain_stats->mean, 0.0, 1e-6);
}

TEST(Drivers, ValidateArguments) {
  const auto model = fig1_model();
  const std::vector<sweep::Distribution> one{sweep::Distribution::normal(1.0, 0.1)};
  EXPECT_THROW(sweep::monte_carlo(model, one, 10), std::invalid_argument);
  const std::vector<sweep::Axis> bad{{.lo = -1.0, .hi = 2.0, .count = 3, .log_scale = true},
                                     {.lo = 1.0, .hi = 2.0, .count = 2}};
  EXPECT_THROW(sweep::grid_sweep(model, bad), std::invalid_argument);
  EXPECT_THROW(sweep::run_sweep(model, std::vector<double>(3), 2), std::invalid_argument);
  EXPECT_THROW(sweep::corners(model, std::vector<sweep::Corner>{{0.5, 2.0}}),
               std::invalid_argument);
}

}  // namespace
}  // namespace awe
