#include <gtest/gtest.h>

#include "circuit/mna.hpp"
#include "linalg/sparse_lu.hpp"

namespace awe::circuit {
namespace {

linalg::Vector dc_solve(const MnaAssembler& asem, const std::string& source,
                        double amplitude) {
  const auto g = asem.build_g();
  auto lu = linalg::SparseLu::factor(g);
  EXPECT_TRUE(lu.has_value());
  return lu->solve(asem.rhs(source, amplitude));
}

TEST(Mna, VoltageDividerDc) {
  Netlist nl;
  const auto in = nl.node("in");
  const auto mid = nl.node("mid");
  nl.add_voltage_source("vin", in, kGround, 0.0);
  nl.add_resistor("r1", in, mid, 1000.0);
  nl.add_resistor("r2", mid, kGround, 3000.0);
  MnaAssembler asem(nl);
  const auto x = dc_solve(asem, "vin", 4.0);
  EXPECT_NEAR(x[asem.layout().node_unknown(in)], 4.0, 1e-12);
  EXPECT_NEAR(x[asem.layout().node_unknown(mid)], 3.0, 1e-12);
  // Source branch current: 4V across 4k -> 1mA through the source.
  EXPECT_NEAR(x[asem.layout().aux_unknown(0)], -1e-3, 1e-12);
}

TEST(Mna, CurrentSourceIntoResistor) {
  Netlist nl;
  const auto a = nl.node("a");
  nl.add_current_source("i1", kGround, a, 2e-3);  // pushes current into a
  nl.add_resistor("r1", a, kGround, 500.0);
  MnaAssembler asem(nl);
  const auto x = dc_solve(asem, "i1", 2e-3);
  EXPECT_NEAR(x[asem.layout().node_unknown(a)], 1.0, 1e-12);
}

TEST(Mna, VccsAmplifier) {
  // v_out = -gm * R * v_in
  Netlist nl;
  const auto in = nl.node("in");
  const auto out = nl.node("out");
  nl.add_voltage_source("vin", in, kGround, 1.0);
  nl.add_vccs("gm", out, kGround, in, kGround, 1e-3);
  nl.add_resistor("rl", out, kGround, 10e3);
  MnaAssembler asem(nl);
  const auto x = dc_solve(asem, "vin", 1.0);
  EXPECT_NEAR(x[asem.layout().node_unknown(out)], -10.0, 1e-9);
}

TEST(Mna, VcvsGain) {
  Netlist nl;
  const auto in = nl.node("in");
  const auto out = nl.node("out");
  nl.add_voltage_source("vin", in, kGround, 1.0);
  nl.add_vcvs("e1", out, kGround, in, kGround, 5.0);
  nl.add_resistor("rl", out, kGround, 1e3);
  MnaAssembler asem(nl);
  const auto x = dc_solve(asem, "vin", 2.0);
  EXPECT_NEAR(x[asem.layout().node_unknown(out)], 10.0, 1e-9);
}

TEST(Mna, CccsCurrentMirror) {
  // Control current through vsense (1mA), CCCS gain 3 -> 3mA into r2.
  Netlist nl;
  const auto a = nl.node("a");
  const auto b = nl.node("b");
  const auto o = nl.node("o");
  nl.add_voltage_source("vin", a, kGround, 1.0);
  nl.add_voltage_source("vsense", a, b, 0.0);
  nl.add_resistor("r1", b, kGround, 1e3);
  nl.add_cccs("f1", kGround, o, "vsense", 3.0);
  nl.add_resistor("r2", o, kGround, 1e3);
  MnaAssembler asem(nl);
  const auto g = asem.build_g();
  auto lu = linalg::SparseLu::factor(g);
  ASSERT_TRUE(lu.has_value());
  const auto x = lu->solve(asem.rhs("vin", 1.0));
  EXPECT_NEAR(x[asem.layout().node_unknown(o)], 3.0, 1e-9);
}

TEST(Mna, CcvsTransresistance) {
  Netlist nl;
  const auto a = nl.node("a");
  const auto o = nl.node("o");
  nl.add_voltage_source("vin", a, kGround, 1.0);  // current 1V/1k = 1mA
  nl.add_resistor("r1", a, kGround, 1e3);
  nl.add_ccvs("h1", o, kGround, "vin", 2000.0);
  nl.add_resistor("rl", o, kGround, 1e3);
  MnaAssembler asem(nl);
  const auto x = dc_solve(asem, "vin", 1.0);
  // i(vin) = -1mA (flows out of + through circuit); v_o = 2000 * i = -2V.
  EXPECT_NEAR(x[asem.layout().node_unknown(o)], -2.0, 1e-9);
}

TEST(Mna, InductorIsDcShort) {
  Netlist nl;
  const auto in = nl.node("in");
  const auto mid = nl.node("mid");
  nl.add_voltage_source("vin", in, kGround, 1.0);
  nl.add_inductor("l1", in, mid, 1e-6);
  nl.add_resistor("r1", mid, kGround, 100.0);
  MnaAssembler asem(nl);
  const auto x = dc_solve(asem, "vin", 5.0);
  EXPECT_NEAR(x[asem.layout().node_unknown(mid)], 5.0, 1e-9);
  // Inductor branch current = 5/100.
  const auto l_idx = *nl.find_element("l1");
  EXPECT_NEAR(x[asem.layout().aux_unknown(l_idx)], 0.05, 1e-9);
}

TEST(Mna, CapacitorStampsOnlyIntoC) {
  Netlist nl;
  const auto a = nl.node("a");
  nl.add_capacitor("c1", a, kGround, 2e-12);
  nl.add_resistor("r1", a, kGround, 1.0);
  MnaAssembler asem(nl);
  const auto g = asem.build_g();
  const auto c = asem.build_c();
  EXPECT_DOUBLE_EQ(g.at(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(c.at(0, 0), 2e-12);
}

TEST(Mna, LayoutErrors) {
  Netlist nl;
  nl.add_resistor("r1", nl.node("a"), kGround, 1.0);
  MnaAssembler asem(nl);
  EXPECT_THROW(asem.layout().node_unknown(kGround), std::invalid_argument);
  EXPECT_THROW(asem.layout().aux_unknown(0), std::invalid_argument);
  EXPECT_THROW(asem.rhs("r1"), std::invalid_argument);
  EXPECT_THROW(asem.rhs("ghost"), std::invalid_argument);
}

TEST(Mna, RhsAllSources) {
  Netlist nl;
  const auto a = nl.node("a");
  nl.add_current_source("i1", kGround, a, 1e-3);
  nl.add_current_source("i2", kGround, a, 2e-3);
  nl.add_resistor("r1", a, kGround, 1e3);
  MnaAssembler asem(nl);
  const auto b = asem.rhs_all_sources();
  EXPECT_NEAR(b[asem.layout().node_unknown(a)], 3e-3, 1e-15);
}

TEST(Mna, ValueDerivativeUnsupportedKindsThrow) {
  Netlist nl;
  nl.add_voltage_source("v1", nl.node("a"), kGround, 1.0);
  MnaAssembler asem(nl);
  linalg::TripletMatrix dg(asem.layout().dim(), asem.layout().dim());
  linalg::TripletMatrix dc(asem.layout().dim(), asem.layout().dim());
  EXPECT_THROW(asem.stamp_value_derivative(0, dg, dc), std::invalid_argument);
}

TEST(Mna, ValueDerivativeFiniteDifferenceCheck) {
  Netlist nl;
  const auto a = nl.node("a");
  const auto b = nl.node("b");
  nl.add_resistor("r1", a, b, 1000.0);
  nl.add_resistor("r2", b, kGround, 500.0);
  nl.add_capacitor("c1", b, kGround, 1e-12);
  nl.add_voltage_source("v1", a, kGround, 1.0);
  MnaAssembler asem(nl);

  const double h = 1e-3;
  for (const char* name : {"r1", "r2", "c1"}) {
    const auto idx = *nl.find_element(name);
    const double v0 = nl.elements()[idx].value;

    Netlist hi = nl;
    hi.set_value(idx, v0 + h * v0);
    Netlist lo = nl;
    lo.set_value(idx, v0 - h * v0);
    const auto g_hi = MnaAssembler(hi).build_g().to_dense();
    const auto g_lo = MnaAssembler(lo).build_g().to_dense();
    const auto c_hi = MnaAssembler(hi).build_c().to_dense();
    const auto c_lo = MnaAssembler(lo).build_c().to_dense();

    linalg::TripletMatrix dg(asem.layout().dim(), asem.layout().dim());
    linalg::TripletMatrix dc(asem.layout().dim(), asem.layout().dim());
    asem.stamp_value_derivative(idx, dg, dc);
    const auto dg_d = dg.to_dense();
    const auto dc_d = dc.to_dense();
    for (std::size_t i = 0; i < asem.layout().dim(); ++i)
      for (std::size_t j = 0; j < asem.layout().dim(); ++j) {
        const double fd_g = (g_hi(i, j) - g_lo(i, j)) / (2.0 * h * v0);
        const double fd_c = (c_hi(i, j) - c_lo(i, j)) / (2.0 * h * v0);
        EXPECT_NEAR(dg_d(i, j), fd_g, 1e-4 * (1.0 + std::abs(fd_g))) << name;
        EXPECT_NEAR(dc_d(i, j), fd_c, 1e-4 * (1.0 + std::abs(fd_c))) << name;
      }
  }
}

}  // namespace
}  // namespace awe::circuit
