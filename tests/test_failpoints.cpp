// Deterministic fault injection (DESIGN.md §11).
//
// What must hold, and what these tests pin down:
//   - the failpoint registry / arming grammar behaves as documented
//     (always / once / nth:<k> / off, AWE_FAILPOINTS spec parsing,
//     unknown sites and malformed modes rejected, reset() disarms);
//   - each production site actually injects: LU and sparse-LU report a
//     singular factorization, the partition moment solve and thread-pool
//     tasks throw FailError(kInjectedFault), and the pool survives it;
//   - every cache-corruption mode (torn store, truncation, bit flip,
//     load-side corruption) degrades to quarantine + rebuild — the
//     damaged entry lands at <path>.bad, a fresh entry replaces it, and
//     NO exception ever reaches the caller.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <stdexcept>
#include <string>
#include <vector>

#include "circuit/parser.hpp"
#include "core/model_cache.hpp"
#include "engine/thread_pool.hpp"
#include "health/failpoints.hpp"
#include "health/report.hpp"
#include "health/status.hpp"
#include "linalg/lu.hpp"
#include "linalg/sparse.hpp"
#include "linalg/sparse_lu.hpp"

namespace awe {
namespace {

namespace fp = health::failpoints;
using health::FailClass;
using health::FailError;

/// Every test must leave the process with no armed sites, whatever path
/// it exits through.
struct FailpointGuard {
  FailpointGuard() { fp::reset(); }
  ~FailpointGuard() { fp::reset(); }
};

// -- registry and arming grammar -----------------------------------------

TEST(FailpointsTest, RegistryListsEverySite) {
  const auto sites = fp::registered_sites();
  for (const char* s :
       {fp::sites::kLuSingular, fp::sites::kSparseSingular,
        fp::sites::kPartitionMomentSolve, fp::sites::kCacheStoreTruncate,
        fp::sites::kCacheStoreBitflip, fp::sites::kCacheStoreCrash,
        fp::sites::kCacheLoadCorrupt, fp::sites::kThreadPoolTask,
        fp::sites::kNativeCompile, fp::sites::kNativeDlopen}) {
    EXPECT_NE(std::find(sites.begin(), sites.end(), s), sites.end()) << s;
  }
}

TEST(FailpointsTest, DisabledByDefaultAndAfterReset) {
  FailpointGuard guard;
  EXPECT_FALSE(fp::enabled());
  EXPECT_FALSE(fp::fires(fp::sites::kLuSingular));
  fp::arm(fp::sites::kLuSingular, "always");
  EXPECT_TRUE(fp::enabled());
  fp::reset();
  EXPECT_FALSE(fp::enabled());
  EXPECT_FALSE(fp::fires(fp::sites::kLuSingular));
  EXPECT_EQ(fp::fire_count(fp::sites::kLuSingular), 0u);
}

TEST(FailpointsTest, ModesFireOnSchedule) {
  FailpointGuard guard;
  fp::arm(fp::sites::kLuSingular, "once");
  EXPECT_TRUE(fp::fires(fp::sites::kLuSingular));
  EXPECT_FALSE(fp::fires(fp::sites::kLuSingular));
  EXPECT_EQ(fp::fire_count(fp::sites::kLuSingular), 1u);

  fp::reset();
  fp::arm(fp::sites::kSparseSingular, "nth:3");
  EXPECT_FALSE(fp::fires(fp::sites::kSparseSingular));
  EXPECT_FALSE(fp::fires(fp::sites::kSparseSingular));
  EXPECT_TRUE(fp::fires(fp::sites::kSparseSingular));
  EXPECT_FALSE(fp::fires(fp::sites::kSparseSingular));
  EXPECT_EQ(fp::fire_count(fp::sites::kSparseSingular), 1u);

  fp::reset();
  fp::arm(fp::sites::kLuSingular, "always");
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(fp::fires(fp::sites::kLuSingular));
  EXPECT_EQ(fp::fire_count(fp::sites::kLuSingular), 5u);
  fp::arm(fp::sites::kLuSingular, "off");
  EXPECT_FALSE(fp::fires(fp::sites::kLuSingular));
}

TEST(FailpointsTest, SpecParsingMatchesEnvGrammar) {
  FailpointGuard guard;
  fp::arm_from_spec("");  // no-op
  EXPECT_FALSE(fp::enabled());
  fp::arm_from_spec("linalg.lu_singular=once,thread_pool.task=nth:2");
  EXPECT_TRUE(fp::fires(fp::sites::kLuSingular));
  EXPECT_FALSE(fp::fires(fp::sites::kThreadPoolTask));
  EXPECT_TRUE(fp::fires(fp::sites::kThreadPoolTask));
}

TEST(FailpointsTest, RejectsUnknownSitesAndBadModes) {
  FailpointGuard guard;
  EXPECT_THROW(fp::arm("no.such_site", "always"), std::invalid_argument);
  EXPECT_THROW(fp::arm(fp::sites::kLuSingular, "sometimes"), std::invalid_argument);
  EXPECT_THROW(fp::arm(fp::sites::kLuSingular, "nth:0"), std::invalid_argument);
  EXPECT_THROW(fp::arm_from_spec("linalg.lu_singular"), std::invalid_argument);
  EXPECT_FALSE(fp::enabled());
}

TEST(FailpointsTest, MaybeFailThrowsClassifiedNamingSite) {
  FailpointGuard guard;
  fp::maybe_fail(fp::sites::kPartitionMomentSolve);  // disarmed: no-op
  fp::arm(fp::sites::kPartitionMomentSolve, "once");
  try {
    fp::maybe_fail(fp::sites::kPartitionMomentSolve);
    FAIL() << "expected FailError";
  } catch (const FailError& e) {
    EXPECT_EQ(e.fail_class(), FailClass::kInjectedFault);
    EXPECT_NE(std::string(e.what()).find(fp::sites::kPartitionMomentSolve),
              std::string::npos);
  }
  fp::maybe_fail(fp::sites::kPartitionMomentSolve);  // disarmed again
}

// -- linalg and thread-pool sites ----------------------------------------

TEST(FailpointsTest, LuSiteForcesSingularResult) {
  FailpointGuard guard;
  const linalg::Matrix id{{1.0, 0.0}, {0.0, 1.0}};
  ASSERT_TRUE(linalg::LuFactorization::factor(id).has_value());
  fp::arm(fp::sites::kLuSingular, "once");
  EXPECT_FALSE(linalg::LuFactorization::factor(id).has_value());
  EXPECT_TRUE(linalg::LuFactorization::factor(id).has_value());
}

TEST(FailpointsTest, SparseLuSiteForcesSingularResult) {
  FailpointGuard guard;
  linalg::TripletMatrix t(2, 2);
  t.add(0, 0, 1.0);
  t.add(1, 1, 1.0);
  const auto a = t.compress();
  ASSERT_TRUE(linalg::SparseLu::factor(a).has_value());
  fp::arm(fp::sites::kSparseSingular, "once");
  EXPECT_FALSE(linalg::SparseLu::factor(a).has_value());
  EXPECT_TRUE(linalg::SparseLu::factor(a).has_value());
}

TEST(FailpointsTest, ThreadPoolContainsInjectedTaskFaultAndStaysUsable) {
  FailpointGuard guard;
  sweep::ThreadPool pool(4);
  fp::arm(fp::sites::kThreadPoolTask, "once");
  std::vector<int> touched(100, 0);
  EXPECT_THROW(pool.parallel_chunks(100,
                                    [&](std::size_t, std::size_t b, std::size_t e) {
                                      for (std::size_t i = b; i < e; ++i) touched[i] = 1;
                                    }),
               FailError);
  // The pool must drain and stay usable after the injected fault.
  fp::reset();
  std::fill(touched.begin(), touched.end(), 0);
  pool.parallel_chunks(100, [&](std::size_t, std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) touched[i] = 1;
  });
  for (int v : touched) EXPECT_EQ(v, 1);
}

// -- cache corruption matrix ---------------------------------------------

const char* kDeck =
    "vin in 0 1\n"
    "r1 in a 1k\n"
    "c1 a 0 10p\n"
    "r2 a out 2k\n"
    "c2 out 0 5p\n"
    ".symbol r2\n"
    ".symbol c2\n"
    ".input vin\n"
    ".output out\n"
    ".end\n";

std::filesystem::path fresh_dir(const std::string& name) {
  const std::filesystem::path dir =
      std::filesystem::path(::testing::TempDir()) / ("failpoints_" + name);
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

/// Arm `site`, run a store-then-load cycle through the cache, and assert
/// the corruption was quarantined and rebuilt without any exception.
void check_cache_corruption(const std::string& site, bool arm_before_store) {
  FailpointGuard guard;
  const auto deck = circuit::parse_deck_string(kDeck);
  const auto dir = fresh_dir(site.substr(site.rfind('.') + 1));
  const auto before =
      health::global_counters().cache_corrupt_quarantined.load();

  if (arm_before_store) fp::arm(site, "once");
  {
    core::ModelCache cache(dir.string());
    (void)cache.get_or_build(deck.netlist, deck.symbol_elements, "vin", "out");
    EXPECT_EQ(cache.stats().misses, 1u);
  }
  if (!arm_before_store) fp::arm(site, "once");

  // One on-disk entry exists (possibly damaged).  A FRESH cache (empty
  // LRU) probing the same key must treat damage as a miss: quarantine the
  // entry to <path>.bad, rebuild cold, store a clean replacement.
  std::string entry;
  for (const auto& f : std::filesystem::directory_iterator(dir))
    if (f.path().extension() == ".awemodel") entry = f.path().string();
  ASSERT_FALSE(entry.empty());
  {
    core::ModelCache cache(dir.string());
    std::shared_ptr<const core::CompiledModel> model;
    ASSERT_NO_THROW(model = cache.get_or_build(deck.netlist, deck.symbol_elements,
                                               "vin", "out"));
    ASSERT_TRUE(model);
    const auto st = cache.stats();
    EXPECT_EQ(st.corrupt_quarantined, 1u) << site;
    EXPECT_EQ(st.rebuilds_after_quarantine, 1u) << site;
    EXPECT_EQ(st.disk_hits, 0u) << site;
  }
  EXPECT_TRUE(std::filesystem::exists(core::ModelCache::quarantine_path(entry)))
      << site;
  EXPECT_TRUE(std::filesystem::exists(entry)) << site;  // rebuilt replacement
  EXPECT_GE(health::global_counters().cache_corrupt_quarantined.load(),
            before + 1);

  // The replacement is clean: a third cache gets a plain disk hit.
  fp::reset();
  core::ModelCache cache(dir.string());
  (void)cache.get_or_build(deck.netlist, deck.symbol_elements, "vin", "out");
  EXPECT_EQ(cache.stats().disk_hits, 1u) << site;
  EXPECT_EQ(cache.stats().corrupt_quarantined, 0u) << site;
}

TEST(FailpointsTest, CacheStoreCrashIsQuarantinedAndRebuilt) {
  check_cache_corruption(fp::sites::kCacheStoreCrash, /*arm_before_store=*/true);
}

TEST(FailpointsTest, CacheStoreTruncateIsQuarantinedAndRebuilt) {
  check_cache_corruption(fp::sites::kCacheStoreTruncate, /*arm_before_store=*/true);
}

TEST(FailpointsTest, CacheStoreBitflipIsQuarantinedAndRebuilt) {
  check_cache_corruption(fp::sites::kCacheStoreBitflip, /*arm_before_store=*/true);
}

TEST(FailpointsTest, CacheLoadCorruptIsQuarantinedAndRebuilt) {
  check_cache_corruption(fp::sites::kCacheLoadCorrupt, /*arm_before_store=*/false);
}

TEST(FailpointsTest, LoadFileReportsQuarantineThroughOutParam) {
  FailpointGuard guard;
  const auto deck = circuit::parse_deck_string(kDeck);
  const auto dir = fresh_dir("load_file");
  const auto model = core::CompiledModel::build(deck.netlist, deck.symbol_elements,
                                                "vin", "out");
  core::ModelCache::store_file(dir.string(), "deadbeef", model);
  const auto path = core::ModelCache::entry_path(dir.string(), "deadbeef");

  bool quarantined = true;
  auto loaded = core::ModelCache::load_file(path, &quarantined);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_FALSE(quarantined);

  fp::arm(fp::sites::kCacheLoadCorrupt, "once");
  loaded = core::ModelCache::load_file(path, &quarantined);
  EXPECT_FALSE(loaded.has_value());
  EXPECT_TRUE(quarantined);
  EXPECT_FALSE(std::filesystem::exists(path));
  EXPECT_TRUE(std::filesystem::exists(core::ModelCache::quarantine_path(path)));
}

// -- global counters -----------------------------------------------------

TEST(FailpointsTest, FiresAreCountedInGlobalCounters) {
  FailpointGuard guard;
  const auto before = health::global_counters().failpoint_fires.load();
  fp::arm(fp::sites::kLuSingular, "always");
  (void)fp::fires(fp::sites::kLuSingular);
  (void)fp::fires(fp::sites::kLuSingular);
  EXPECT_GE(health::global_counters().failpoint_fires.load(), before + 2);
  health::HealthReport report;
  health::absorb_global_counters(report);
  EXPECT_GE(report.failpoint_fires, before + 2);
}

}  // namespace
}  // namespace awe
