#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "linalg/dense.hpp"
#include "linalg/lu.hpp"

namespace awe::linalg {
namespace {

TEST(Matrix, InitializerListAndAccess) {
  Matrix m{{1.0, 2.0}, {3.0, 4.0}};
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 2u);
  EXPECT_DOUBLE_EQ(m(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(m(1, 0), 3.0);
}

TEST(Matrix, RaggedInitializerThrows) {
  EXPECT_THROW((Matrix{{1.0, 2.0}, {3.0}}), std::invalid_argument);
}

TEST(Matrix, Identity) {
  const auto eye = Matrix::identity(3);
  for (std::size_t i = 0; i < 3; ++i)
    for (std::size_t j = 0; j < 3; ++j)
      EXPECT_DOUBLE_EQ(eye(i, j), i == j ? 1.0 : 0.0);
}

TEST(Matrix, ArithmeticAndTranspose) {
  Matrix a{{1, 2}, {3, 4}};
  Matrix b{{5, 6}, {7, 8}};
  const auto sum = a + b;
  EXPECT_DOUBLE_EQ(sum(0, 0), 6.0);
  const auto diff = b - a;
  EXPECT_DOUBLE_EQ(diff(1, 1), 4.0);
  const auto prod = a * b;
  EXPECT_DOUBLE_EQ(prod(0, 0), 19.0);
  EXPECT_DOUBLE_EQ(prod(0, 1), 22.0);
  EXPECT_DOUBLE_EQ(prod(1, 0), 43.0);
  EXPECT_DOUBLE_EQ(prod(1, 1), 50.0);
  const auto t = a.transposed();
  EXPECT_DOUBLE_EQ(t(0, 1), 3.0);
}

TEST(Matrix, MatrixVectorProduct) {
  Matrix a{{1, 2}, {3, 4}};
  Vector x{5, 6};
  const auto y = a * x;
  EXPECT_DOUBLE_EQ(y[0], 17.0);
  EXPECT_DOUBLE_EQ(y[1], 39.0);
}

TEST(Matrix, ShapeMismatchThrows) {
  Matrix a(2, 3);
  Matrix b(2, 2);
  EXPECT_THROW(a + b, std::invalid_argument);
  EXPECT_THROW(a * b, std::invalid_argument);
  const Vector v2{1.0, 2.0};
  EXPECT_THROW(a * v2, std::invalid_argument);
}

TEST(VectorOps, Norms) {
  Vector v{3.0, -4.0};
  EXPECT_DOUBLE_EQ(norm2(v), 5.0);
  EXPECT_DOUBLE_EQ(norm_inf(v), 4.0);
  EXPECT_DOUBLE_EQ(dot(v, v), 25.0);
}

TEST(LuFactorization, SolvesKnownSystem) {
  Matrix a{{2, 1, 1}, {4, -6, 0}, {-2, 7, 2}};
  auto lu = LuFactorization::factor(a);
  ASSERT_TRUE(lu.has_value());
  const Vector x = lu->solve({5, -2, 9});
  EXPECT_NEAR(x[0], 1.0, 1e-12);
  EXPECT_NEAR(x[1], 1.0, 1e-12);
  EXPECT_NEAR(x[2], 2.0, 1e-12);
}

TEST(LuFactorization, SingularReturnsNullopt) {
  Matrix a{{1, 2}, {2, 4}};
  EXPECT_FALSE(LuFactorization::factor(a).has_value());
}

TEST(LuFactorization, Determinant) {
  Matrix a{{3, 0}, {0, 2}};
  auto lu = LuFactorization::factor(a);
  ASSERT_TRUE(lu.has_value());
  EXPECT_NEAR(lu->determinant(), 6.0, 1e-12);

  Matrix b{{0, 1}, {1, 0}};  // permutation, det = -1
  auto lub = LuFactorization::factor(b);
  ASSERT_TRUE(lub.has_value());
  EXPECT_NEAR(lub->determinant(), -1.0, 1e-12);
}

TEST(LuFactorization, TransposedSolveMatchesExplicitTranspose) {
  std::mt19937 rng(42);
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t n = 5;
    Matrix a(n, n);
    for (std::size_t i = 0; i < n; ++i)
      for (std::size_t j = 0; j < n; ++j) a(i, j) = dist(rng) + (i == j ? 3.0 : 0.0);
    Vector b(n);
    for (auto& v : b) v = dist(rng);

    auto lu = LuFactorization::factor(a);
    ASSERT_TRUE(lu.has_value());
    const auto xt = lu->solve_transposed(b);

    auto lu_t = LuFactorization::factor(a.transposed());
    ASSERT_TRUE(lu_t.has_value());
    const auto expected = lu_t->solve(b);
    for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(xt[i], expected[i], 1e-10);
  }
}

TEST(LuFactorization, RandomRoundTrip) {
  std::mt19937 rng(7);
  std::uniform_real_distribution<double> dist(-2.0, 2.0);
  for (int trial = 0; trial < 50; ++trial) {
    const std::size_t n = 1 + static_cast<std::size_t>(trial % 8);
    Matrix a(n, n);
    for (std::size_t i = 0; i < n; ++i)
      for (std::size_t j = 0; j < n; ++j) a(i, j) = dist(rng) + (i == j ? 4.0 : 0.0);
    Vector x_true(n);
    for (auto& v : x_true) v = dist(rng);
    const Vector b = a * x_true;
    const Vector x = solve_dense(a, b);
    for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(x[i], x_true[i], 1e-9);
  }
}

}  // namespace
}  // namespace awe::linalg
