// End-to-end integration tests: full decks through the parser into
// AWEsymbolic, and AWE vs the transient baseline on the same circuits.
#include <gtest/gtest.h>

#include <cmath>

#include "awe/awe.hpp"
#include "circuit/parser.hpp"
#include "circuits/coupled_lines.hpp"
#include "circuits/opamp741.hpp"
#include "core/awesymbolic.hpp"
#include "transim/transim.hpp"

namespace awe {
namespace {

TEST(Integration, DeckToCompiledModel) {
  const auto deck = circuit::parse_deck_string(R"(* two-pole RC with symbols
Vin in 0 1
R1 in a 1k
C1 a 0 10p
R2 a out 2k
C2 out 0 5p
.symbol C2
.symbol R2
.input vin
.output out
.end
)");
  const auto out_node = *deck.netlist.find_node(deck.output_node);
  const auto model = core::CompiledModel::build(
      deck.netlist, deck.symbol_elements, deck.input_source, out_node, {.order = 2});
  ASSERT_EQ(model.symbol_names().size(), 2u);

  // Evaluate at the deck's own values -> must match the plain AWE run.
  const double c2 = 5e-12, r2 = 2e3;
  // symbols in deck order: c2 then r2.
  const auto rom = model.evaluate(std::vector<double>{c2, r2});
  const auto rom_ref = engine::run_awe(deck.netlist, "vin", out_node, {.order = 2});
  EXPECT_NEAR(rom.dc_gain(), rom_ref.dc_gain(), 1e-9);
  for (std::size_t i = 0; i < rom.order(); ++i) {
    double best = 1e300;
    for (std::size_t j = 0; j < rom_ref.order(); ++j)
      best = std::min(best, std::abs(rom.poles()[i] - rom_ref.poles()[j]));
    EXPECT_LT(best, 1e-6 * std::abs(rom.poles()[i]));
  }
}

TEST(Integration, AweStepResponseTracksTransient) {
  // AWE's claim to fame: the reduced model reproduces the SPICE-class
  // transient for RC interconnect.  Compare on the coupled lines (small).
  circuits::CoupledLineValues v;
  v.segments = 40;
  auto c = circuits::make_coupled_lines(v);

  const auto rom = engine::run_awe(c.netlist, circuits::CoupledLinesCircuit::kInput,
                                   c.line1_out, {.order = 3});

  transim::TransientSimulator sim(c.netlist);
  sim.set_waveform(circuits::CoupledLinesCircuit::kInput, transim::step(1.0));
  transim::TransientOptions topts;
  topts.t_stop = 400e-9;
  topts.dt = 0.2e-9;
  const auto res = sim.run(topts);
  const auto vt = res.node_voltage(sim.layout(), c.line1_out);

  double max_err = 0.0;
  for (std::size_t k = 0; k < res.time.size(); k += 20)
    max_err = std::max(max_err, std::abs(vt[k] - rom.step_response(res.time[k])));
  EXPECT_LT(max_err, 0.03);  // 3% of the unit step
}

TEST(Integration, CrosstalkCompiledModelMatchesTransientShape) {
  circuits::CoupledLineValues v;
  v.segments = 40;
  auto c = circuits::make_coupled_lines(v);
  const auto model = core::CompiledModel::build(
      c.netlist,
      {circuits::CoupledLinesCircuit::kSymbolRdriver,
       circuits::CoupledLinesCircuit::kSymbolCload},
      circuits::CoupledLinesCircuit::kInput, c.line2_out, {.order = 2});
  const auto rom = model.evaluate(std::vector<double>{v.r_driver, v.c_load});

  transim::TransientSimulator sim(c.netlist);
  sim.set_waveform(circuits::CoupledLinesCircuit::kInput, transim::step(1.0));
  transim::TransientOptions topts;
  topts.t_stop = 200e-9;
  topts.dt = 0.1e-9;
  const auto res = sim.run(topts);
  const auto vt = res.node_voltage(sim.layout(), c.line2_out);

  // Peak cross-talk amplitude and timing agree within model accuracy.
  double peak_t = 0.0, peak_v = 0.0;
  for (std::size_t k = 0; k < vt.size(); ++k)
    if (std::abs(vt[k]) > std::abs(peak_v)) {
      peak_v = vt[k];
      peak_t = res.time[k];
    }
  double rom_peak_v = 0.0;
  for (double t = 0; t <= 200e-9; t += 0.1e-9) {
    const double y = rom.step_response(t);
    if (std::abs(y) > std::abs(rom_peak_v)) rom_peak_v = y;
  }
  ASSERT_NE(peak_v, 0.0);
  EXPECT_NEAR(rom_peak_v / peak_v, 1.0, 0.35);
  EXPECT_GT(peak_t, 0.0);
}

TEST(Integration, OpampCompiledModelAgainstFullAweOnGrid) {
  // The paper's §3.1 workflow end to end: build the symbolic model of the
  // 741 with the two sensitivity-selected symbols, then sweep.
  auto amp = circuits::make_opamp741();
  const auto model = core::CompiledModel::build(
      amp.netlist,
      {circuits::Opamp741Circuit::kSymbolGout, circuits::Opamp741Circuit::kSymbolCcomp},
      circuits::Opamp741Circuit::kInput, amp.out, {.order = 2});

  for (const double gout : {1.0 / 150.0, 1.0 / 75.0}) {
    for (const double cc : {15e-12, 30e-12}) {
      const auto m_sym = model.moments_at(std::vector<double>{gout, cc});
      circuits::Opamp741Values v;
      v.gout_q14 = gout;
      v.c_comp = cc;
      auto ref = circuits::make_opamp741(v);
      const auto m_ref =
          engine::MomentGenerator(ref.netlist)
              .transfer_moments(circuits::Opamp741Circuit::kInput, ref.out, 4);
      for (std::size_t k = 0; k < 4; ++k)
        EXPECT_NEAR(m_sym[k], m_ref[k], 1e-6 * (std::abs(m_ref[k]) + 1e-20))
            << "gout=" << gout << " cc=" << cc << " k=" << k;
    }
  }
}

TEST(Integration, AutomaticSymbolSelectionFeedsModelBuild) {
  auto amp = circuits::make_opamp741();
  const auto symbols = core::select_symbols(
      amp.netlist, circuits::Opamp741Circuit::kInput, amp.out, 2, 2);
  ASSERT_EQ(symbols.size(), 2u);
  const auto model =
      core::CompiledModel::build(amp.netlist, symbols,
                                 circuits::Opamp741Circuit::kInput, amp.out, {.order = 1});
  // Evaluate at the nominal values of the selected elements.
  std::vector<double> vals;
  for (const auto& name : symbols)
    vals.push_back(amp.netlist.elements()[*amp.netlist.find_element(name)].value);
  const auto rom = model.evaluate(vals);
  EXPECT_TRUE(rom.is_stable());
}

}  // namespace
}  // namespace awe
