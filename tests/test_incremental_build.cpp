// Incremental partition-level rebuild (DESIGN.md §13).
//
// The hard correctness bar: a rebuild that reuses cached per-cell moment
// blocks must be BYTE-identical to a cold build of the edited netlist —
// across thread counts, and after a torn block store quarantines and
// rebuilds.  Anything weaker would let the incremental path drift from
// the cold path silently, and every downstream oracle compares models by
// bytes.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <sstream>
#include <string>

#include "circuit/parser.hpp"
#include "core/awesymbolic.hpp"
#include "health/failpoints.hpp"
#include "health/report.hpp"
#include "partition/partitioner.hpp"

namespace awe::core {
namespace {

namespace fp = health::failpoints;

/// Every test must leave the process with no armed sites.
struct FailpointGuard {
  FailpointGuard() { fp::reset(); }
  ~FailpointGuard() { fp::reset(); }
};

std::filesystem::path fresh_dir(const std::string& name) {
  const std::filesystem::path dir =
      std::filesystem::path(::testing::TempDir()) / ("incremental_" + name);
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

/// Numeric partition with three independent components (three cells):
/// {r1,c1} via internal node a, {r2,c2,r3} via internal node b, and {c3}
/// spanning only cut nodes.  Editing c1 dirties exactly the first cell.
circuit::ParsedDeck inc_deck() {
  return circuit::parse_deck_string(
      "* incremental fixture\n"
      "vin in 0 1\n"
      "r1 in a 1k\n"
      "c1 a 0 10p\n"
      "r2 in b 2k\n"
      "c2 b 0 20p\n"
      "r3 b out 3k\n"
      "c3 out 0 5p\n"
      "rsym out 0 10k\n"
      ".symbol rsym\n"
      ".input vin\n"
      ".output out\n");
}

std::string serialize(const CompiledModel& model) {
  std::ostringstream os;
  model.save(os);
  return os.str();
}

std::string build_bytes(const circuit::ParsedDeck& deck, const BuildOptions& bo) {
  const CompiledModel model = CompiledModel::build(
      deck.netlist, deck.symbol_elements, deck.input_source, deck.output_node, {}, bo);
  return serialize(model);
}

struct BlockCounters {
  std::uint64_t reused, built, quarantined;
};

BlockCounters counters_now() {
  auto& g = health::global_counters();
  return {g.partition_blocks_reused.load(), g.partition_blocks_built.load(),
          g.partition_blocks_quarantined.load()};
}

BlockCounters delta(const BlockCounters& before) {
  const BlockCounters now = counters_now();
  return {now.reused - before.reused, now.built - before.built,
          now.quarantined - before.quarantined};
}

TEST(IncrementalBuild, BitIdenticalToColdAcrossThreadCounts) {
  auto deck = inc_deck();
  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    const auto blocks = fresh_dir("bits_t" + std::to_string(threads));

    BuildOptions inc;
    inc.threads = threads;
    inc.incremental = true;
    inc.partition_block_dir = blocks.string();
    // Warm the block store with the pristine deck, then edit one element.
    (void)build_bytes(deck, inc);

    circuit::ParsedDeck edited = deck;
    edited.netlist.set_value("c1", 12e-12);

    BuildOptions cold;
    cold.threads = threads;
    const std::string cold_bytes = build_bytes(edited, cold);
    const std::string inc_bytes = build_bytes(edited, inc);
    EXPECT_EQ(inc_bytes, cold_bytes);

    // And the serial cold build agrees too: thread count is invisible.
    BuildOptions serial;
    serial.threads = 1;
    EXPECT_EQ(build_bytes(edited, serial), cold_bytes);
  }
}

TEST(IncrementalBuild, ReusesCleanCellsRebuildsDirtyOne) {
  auto deck = inc_deck();
  const auto blocks = fresh_dir("counters");
  BuildOptions inc;
  inc.incremental = true;
  inc.partition_block_dir = blocks.string();

  // Cold store: every cell is built, nothing reused.
  auto before = counters_now();
  (void)build_bytes(deck, inc);
  const BlockCounters first = delta(before);
  EXPECT_EQ(first.reused, 0u);
  EXPECT_EQ(first.built, 3u);  // three components -> three cells
  EXPECT_EQ(first.quarantined, 0u);

  // Unedited rebuild: every block reloads.
  before = counters_now();
  (void)build_bytes(deck, inc);
  const BlockCounters warm = delta(before);
  EXPECT_EQ(warm.reused, first.built);
  EXPECT_EQ(warm.built, 0u);

  // One-element edit: exactly that cell rebuilds.
  deck.netlist.set_value("c1", 12e-12);
  before = counters_now();
  (void)build_bytes(deck, inc);
  const BlockCounters edit = delta(before);
  EXPECT_EQ(edit.reused, first.built - 1);
  EXPECT_EQ(edit.built, 1u);
}

TEST(IncrementalBuild, TornBlockIsQuarantinedAndRebuilt) {
  FailpointGuard guard;
  auto deck = inc_deck();
  const auto blocks = fresh_dir("torn");
  BuildOptions inc;
  inc.incremental = true;
  inc.partition_block_dir = blocks.string();
  BuildOptions cold;
  const std::string cold_bytes = build_bytes(deck, cold);

  // First store tears its first block mid-write (no tmp+rename), exactly
  // like a builder that died at the wrong moment.
  fp::arm(fp::sites::kPartitionBlock, "once");
  EXPECT_EQ(build_bytes(deck, inc), cold_bytes);  // the build itself is unharmed
  fp::reset();

  // The reload must detect the torn block, quarantine it to <key>.bad,
  // rebuild it, and still produce cold-identical bytes.  The in-process
  // plan memo would serve all three clean blocks from memory; drop it so
  // this build probes the disk the way a fresh process (or CI's separate
  // rebuild step) would.
  part::clear_plan_cache();
  const auto before = counters_now();
  EXPECT_EQ(build_bytes(deck, inc), cold_bytes);
  const BlockCounters d = delta(before);
  EXPECT_EQ(d.quarantined, 1u);
  EXPECT_EQ(d.built, 1u);
  EXPECT_EQ(d.reused, 2u);

  std::size_t bad = 0;
  for (const auto& entry : std::filesystem::directory_iterator(blocks))
    if (entry.path().extension() == ".bad") ++bad;
  EXPECT_EQ(bad, 1u);

  // Quarantine is not re-probed: the next rebuild reloads all three.
  const auto before2 = counters_now();
  EXPECT_EQ(build_bytes(deck, inc), cold_bytes);
  const BlockCounters d2 = delta(before2);
  EXPECT_EQ(d2.quarantined, 0u);
  EXPECT_EQ(d2.reused, 3u);
}

TEST(IncrementalBuild, CacheDirResolvesBlockStore) {
  // ModelCache route: incremental=true with only cache_dir set lands the
  // block store at <cache_dir>/blocks.
  auto deck = inc_deck();
  const auto dir = fresh_dir("cachedir");
  BuildOptions bo;
  bo.cache_dir = dir.string();
  bo.incremental = true;
  const auto before = counters_now();
  (void)build_bytes(deck, bo);
  EXPECT_EQ(delta(before).built, 3u);
  EXPECT_TRUE(std::filesystem::is_directory(dir / "blocks"));
  std::size_t n = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir / "blocks"))
    if (entry.path().extension() == ".aweblock") ++n;
  EXPECT_EQ(n, 3u);
}

}  // namespace
}  // namespace awe::core
