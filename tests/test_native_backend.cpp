// Native AOT codegen backend (DESIGN.md §12): interpreter parity.
//
// What must hold, and what these tests pin down, on the paper's golden
// circuits (Figure 1 RC, the 741-class amplifier, the coupled-line pair):
//   - EvalBackend::kNative with EvalMode::kStrict is BIT-IDENTICAL to the
//     strict interpreter on every lane (the strict kernel's TU is compiled
//     with FP contraction off, so it executes the interpreter's exact IEEE
//     double sequence);
//   - kNative with kFast stays within the fused interpreter's ULP bound of
//     strict (same contraction license, so only rounding-order drift);
//   - lane rejection (det(Y0) == 0, zero resistance symbol) is decided
//     identically on both backends;
//   - the sweep engine produces bit-identical SweepResults through either
//     backend in strict mode, including the batched-Padé ROM samples;
//   - the .so artifact is content-addressed next to the model cache entry
//     and is only ever emitted when a caller opts into kNative.
// Every test degrades to GTEST_SKIP when the machine has no C compiler —
// the fallback behavior itself is covered by test_native_fallback.cpp.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "awe/pade.hpp"
#include "circuits/coupled_lines.hpp"
#include "circuits/fig1_rc.hpp"
#include "circuits/opamp741.hpp"
#include "core/awesymbolic.hpp"
#include "core/model_cache.hpp"
#include "core/native_backend.hpp"
#include "engine/sweep.hpp"

namespace awe {
namespace {

using core::CompiledModel;
using core::EvalBackend;
using core::EvalMode;

bool have_compiler() { return !core::native::find_compiler().empty(); }

/// Unique per-test module directory, removed on destruction.
struct TempDir {
  std::filesystem::path path;
  TempDir() {
    static int counter = 0;
    path = std::filesystem::temp_directory_path() /
           ("awe_native_test_" + std::to_string(::getpid()) + "_" +
            std::to_string(counter++));
    std::filesystem::create_directories(path);
  }
  ~TempDir() {
    std::error_code ec;
    std::filesystem::remove_all(path, ec);
  }
  std::string str() const { return path.string(); }
};

/// Deterministic SoA point block spreading each symbol geometrically
/// around its nominal value (0.5x .. 2x).
std::vector<double> spread_points(const std::vector<double>& nominal, std::size_t n) {
  std::vector<double> pts(nominal.size() * n);
  for (std::size_t i = 0; i < nominal.size(); ++i)
    for (std::size_t p = 0; p < n; ++p) {
      const double t = n > 1 ? static_cast<double>(p) / static_cast<double>(n - 1) : 0.5;
      pts[i * n + p] = nominal[i] * std::pow(2.0, 2.0 * t - 1.0);
    }
  return pts;
}

struct BatchRun {
  std::vector<double> moments;
  std::vector<unsigned char> ok;
};

BatchRun run_block(const CompiledModel& model, const std::vector<double>& pts,
                   std::size_t n, EvalMode mode, EvalBackend backend) {
  BatchRun r;
  r.moments.assign(model.moment_count() * n, 0.0);
  r.ok.assign(n, 1);
  auto ws = model.make_batch_workspace(n);
  model.moments_batch(pts, n, n, ws, r.moments, n, r.ok, mode, backend);
  return r;
}

/// Strict native == strict interpreter bit for bit; fast native within the
/// fused ULP envelope of strict; rejected lanes identical everywhere.
void expect_backend_parity(const CompiledModel& model, const std::vector<double>& pts,
                           std::size_t n) {
  const auto is = run_block(model, pts, n, EvalMode::kStrict, EvalBackend::kInterpreter);
  const auto ns = run_block(model, pts, n, EvalMode::kStrict, EvalBackend::kNative);
  const auto nf = run_block(model, pts, n, EvalMode::kFast, EvalBackend::kNative);
  const std::size_t nm = model.moment_count();
  for (std::size_t p = 0; p < n; ++p) {
    ASSERT_EQ(is.ok[p], ns.ok[p]) << "strict lane accept/reject differs at point " << p;
    ASSERT_EQ(is.ok[p], nf.ok[p]) << "fast lane accept/reject differs at point " << p;
    for (std::size_t k = 0; k < nm; ++k) {
      const double a = is.moments[k * n + p];
      const double b = ns.moments[k * n + p];
      if (!is.ok[p]) {
        EXPECT_TRUE(std::isnan(a) && std::isnan(b));
        continue;
      }
      EXPECT_EQ(a, b) << "native strict not bit-identical at moment " << k << ", point "
                      << p;
      const double f = nf.moments[k * n + p];
      EXPECT_NEAR(f, a, 1e-9 * (std::abs(a) + 1e-300))
          << "native fast outside ULP envelope at moment " << k << ", point " << p;
    }
  }
}

TEST(NativeBackendTest, Fig1StrictBitIdenticalFastClose) {
  if (!have_compiler()) GTEST_SKIP() << "no C compiler available";
  auto fig = circuits::make_fig1();
  auto model = CompiledModel::build(fig.netlist, {"g1", "g2", "c1", "c2"},
                                    circuits::Fig1Circuit::kInput, fig.v2, {.order = 2});
  TempDir dir;
  ASSERT_TRUE(model.attach_native(dir.str()).ok());
  ASSERT_TRUE(model.has_native());
  expect_backend_parity(model, spread_points({1.0, 1.0, 1.0, 1.0}, 37), 37);
}

TEST(NativeBackendTest, Opamp741StrictBitIdenticalFastClose) {
  if (!have_compiler()) GTEST_SKIP() << "no C compiler available";
  auto amp = circuits::make_opamp741();
  auto model = CompiledModel::build(
      amp.netlist,
      {circuits::Opamp741Circuit::kSymbolGout, circuits::Opamp741Circuit::kSymbolCcomp},
      circuits::Opamp741Circuit::kInput, amp.out, {.order = 2});
  TempDir dir;
  ASSERT_TRUE(model.attach_native(dir.str()).ok());
  ASSERT_TRUE(model.has_native());
  expect_backend_parity(model, spread_points({1.0 / 75.0, 30e-12}, 19), 19);
}

TEST(NativeBackendTest, CoupledLinesStrictBitIdenticalFastClose) {
  if (!have_compiler()) GTEST_SKIP() << "no C compiler available";
  auto lines = circuits::make_coupled_lines({.segments = 24});
  auto model = CompiledModel::build(lines.netlist,
                                    {circuits::CoupledLinesCircuit::kSymbolRdriver,
                                     circuits::CoupledLinesCircuit::kSymbolCload},
                                    circuits::CoupledLinesCircuit::kInput,
                                    lines.line2_out, {.order = 2});
  TempDir dir;
  ASSERT_TRUE(model.attach_native(dir.str()).ok());
  ASSERT_TRUE(model.has_native());
  expect_backend_parity(model, spread_points({100.0, 1e-12}, 19), 19);
}

TEST(NativeBackendTest, RejectedLanesIdenticalAcrossBackends) {
  if (!have_compiler()) GTEST_SKIP() << "no C compiler available";
  auto fig = circuits::make_fig1();
  auto model = CompiledModel::build(fig.netlist, {"g2", "c2"},
                                    circuits::Fig1Circuit::kInput, fig.v2, {.order = 2});
  TempDir dir;
  ASSERT_TRUE(model.attach_native(dir.str()).ok());
  // Point 1 kills det(Y0) (g2 = 0 opens the only path to the output).
  const std::size_t n = 3;
  const std::vector<double> pts{1.0, 0.0, 2.0,   // g2 lane
                                1.0, 1.0, 0.5};  // c2 lane
  expect_backend_parity(model, pts, n);
  const auto ns = run_block(model, pts, n, EvalMode::kStrict, EvalBackend::kNative);
  EXPECT_EQ(ns.ok[0], 1);
  EXPECT_EQ(ns.ok[1], 0);
  EXPECT_EQ(ns.ok[2], 1);
}

TEST(NativeBackendTest, SweepResultsBitIdenticalAcrossBackends) {
  if (!have_compiler()) GTEST_SKIP() << "no C compiler available";
  auto fig = circuits::make_fig1();
  auto model = CompiledModel::build(fig.netlist, {"g1", "g2", "c1", "c2"},
                                    circuits::Fig1Circuit::kInput, fig.v2, {.order = 2});
  TempDir dir;
  ASSERT_TRUE(model.attach_native(dir.str()).ok());

  const std::vector<sweep::Distribution> dists{
      sweep::Distribution::lognormal(1.0, 0.3), sweep::Distribution::lognormal(1.0, 0.3),
      sweep::Distribution::lognormal(1.0, 0.3), sweep::Distribution::lognormal(1.0, 0.3)};
  sweep::SweepOptions interp, native;
  interp.threads = 2;
  interp.batch_width = 16;
  interp.with_rom = true;
  native = interp;
  native.backend = EvalBackend::kNative;

  const auto a = sweep::monte_carlo(model, dists, 300, 42, interp);
  const auto b = sweep::monte_carlo(model, dists, 300, 42, native);
  // memcmp: bit-identity that also holds over NaN-padded slots.
  const auto bits_equal = [](const auto& x, const auto& y) {
    return x.size() == y.size() &&
           std::memcmp(x.data(), y.data(), x.size() * sizeof(x[0])) == 0;
  };
  EXPECT_TRUE(bits_equal(a.moments, b.moments)) << "strict sweep not bit-identical";
  EXPECT_EQ(a.ok, b.ok);
  EXPECT_EQ(a.ladder_stage, b.ladder_stage);
  ASSERT_TRUE(a.rom && b.rom);
  EXPECT_TRUE(bits_equal(a.rom->dc_gain, b.rom->dc_gain));
  EXPECT_EQ(a.rom->order, b.rom->order);
  EXPECT_TRUE(bits_equal(a.rom->poles, b.rom->poles));
  EXPECT_TRUE(bits_equal(a.rom->residues, b.rom->residues));
}

TEST(NativeBackendTest, ModuleIsContentAddressedNextToCacheEntry) {
  if (!have_compiler()) GTEST_SKIP() << "no C compiler available";
  auto fig = circuits::make_fig1();
  TempDir dir;
  core::ModelCache cache(dir.str());
  core::BuildOptions interp, native;
  native.backend = EvalBackend::kNative;

  // Interpreter builds must never emit a .so (cache dirs stay comparable).
  (void)cache.get_or_build(fig.netlist, {"g2", "c2"}, circuits::Fig1Circuit::kInput,
                           circuits::Fig1Circuit::kOutput, {.order = 2}, interp);
  std::size_t so_count = 0;
  for (const auto& e : std::filesystem::directory_iterator(dir.path))
    so_count += e.path().extension() == ".so";
  EXPECT_EQ(so_count, 0u);

  // A kNative build drops exactly one content-addressed module beside it.
  core::ModelCache cache2(dir.str());
  auto model = cache2.get_or_build(fig.netlist, {"g2", "c2"},
                                   circuits::Fig1Circuit::kInput,
                                   circuits::Fig1Circuit::kOutput, {.order = 2}, native);
  EXPECT_TRUE(model->has_native());
  std::vector<std::string> so_names;
  for (const auto& e : std::filesystem::directory_iterator(dir.path))
    if (e.path().extension() == ".so") so_names.push_back(e.path().filename().string());
  ASSERT_EQ(so_names.size(), 1u);
  EXPECT_TRUE(so_names[0].rfind("native_", 0) == 0) << so_names[0];

  // Re-attach on a fresh cache instance (disk hit): must reuse the module
  // byte-for-byte — validated load, no rewrite.
  const auto so_path = dir.path / so_names[0];
  const auto mtime = std::filesystem::last_write_time(so_path);
  const auto before = health::global_counters().native_compiled.load();
  auto model2 = core::ModelCache(dir.str()).get_or_build(
      fig.netlist, {"g2", "c2"}, circuits::Fig1Circuit::kInput,
      circuits::Fig1Circuit::kOutput, {.order = 2}, native);
  EXPECT_TRUE(model2->has_native());
  EXPECT_EQ(health::global_counters().native_compiled.load(), before + 1);
  EXPECT_EQ(std::filesystem::last_write_time(so_path), mtime);
}

// The sweep engine's batched q x q Padé solve (pade_solve_batch +
// from_pade) must reproduce the scalar from_moments path bit for bit —
// including the order-fallback probe — and leave rejected lanes at order 0
// for the scalar ladder.  Pure interpreter arithmetic: no compiler needed.
TEST(NativeBackendTest, PadeBatchMatchesScalarBitForBit) {
  auto fig = circuits::make_fig1();
  auto model = CompiledModel::build(fig.netlist, {"g1", "g2", "c1", "c2"},
                                    circuits::Fig1Circuit::kInput, fig.v2, {.order = 2});
  const std::size_t n = 16;
  auto pts = spread_points({1.0, 1.0, 1.0, 1.0}, n);
  pts[1 * n + 5] = 0.0;  // kill g2 on lane 5: det == 0, ok = 0
  const auto run = run_block(model, pts, n, EvalMode::kStrict, EvalBackend::kInterpreter);
  const std::size_t nm = model.moment_count();

  std::vector<engine::PadeResult> batch(n);
  const std::size_t solved = engine::pade_solve_batch(
      run.moments, n, n, 2, /*allow_fallback=*/true,
      std::span<const unsigned char>(run.ok.data(), n),
      std::span<engine::PadeResult>(batch.data(), n));
  EXPECT_EQ(solved, n - 1);
  EXPECT_EQ(batch[5].order, 0u);

  engine::RomOptions ropts;
  ropts.order = 2;
  std::vector<double> lane(nm);
  for (std::size_t p = 0; p < n; ++p) {
    if (!run.ok[p]) continue;
    ASSERT_GT(batch[p].order, 0u) << "lane " << p;
    for (std::size_t k = 0; k < nm; ++k) lane[k] = run.moments[k * n + p];
    const auto scalar = engine::ReducedOrderModel::from_moments(lane, ropts);
    const auto batched = engine::ReducedOrderModel::from_pade(batch[p], lane, ropts);
    EXPECT_EQ(scalar.order(), batched.order()) << "lane " << p;
    EXPECT_EQ(scalar.poles(), batched.poles()) << "lane " << p;
    EXPECT_EQ(scalar.residues(), batched.residues()) << "lane " << p;
    EXPECT_EQ(scalar.dc_gain(), batched.dc_gain()) << "lane " << p;
  }
}

TEST(NativeBackendTest, ScratchDirAttachWorksWithoutCacheDir) {
  if (!have_compiler()) GTEST_SKIP() << "no C compiler available";
  auto fig = circuits::make_fig1();
  auto model = CompiledModel::build(fig.netlist, {"g2", "c2"},
                                    circuits::Fig1Circuit::kInput, fig.v2, {.order = 2});
  ASSERT_TRUE(model.attach_native("").ok());
  EXPECT_TRUE(model.has_native());
  expect_backend_parity(model, spread_points({1.0, 1.0}, 9), 9);
}

}  // namespace
}  // namespace awe
