// C source emission (the native backend's front half): golden-source
// snapshots of to_c_source / to_c_source_batch, the emission gaps the AOT
// work closed (zero-input programs, %.17g constant precision, non-finite
// constants without <math.h>), and a full compile-and-execute roundtrip:
// emitted C -> system compiler -> dlopen'd module -> bit-compare against
// the interpreter.
//
// The snapshots are exact-string: the emitted text is part of the native
// backend's determinism story (the .so is content-addressed by the
// program, so the same program must always emit the same source).  If an
// intentional emitter change lands, re-record the strings here.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <filesystem>
#include <limits>
#include <string>
#include <vector>

#include "core/native_backend.hpp"
#include "symbolic/compile.hpp"

namespace awe {
namespace {

using symbolic::CompiledProgram;
using symbolic::EvalMode;
using symbolic::ExprGraph;
using symbolic::NodeId;

/// r0 = x*y - 2.5, r1 = r0 / (x - (-y)): exercises input, constant, mul,
/// add, neg, sub, div, a fusable mul+add pair, and a foldable neg.
CompiledProgram make_sample_program() {
  ExprGraph g;
  const auto x = g.input(0);
  const auto y = g.input(1);
  const auto r0 = g.add(g.mul(x, y), g.constant(-2.5));
  const auto r1 = g.div(r0, g.sub(x, g.neg(y)));
  return CompiledProgram(g, std::vector<NodeId>{r0, r1});
}

TEST(CodegenRoundtripTest, ScalarStrictGoldenSource) {
  const auto prog = make_sample_program();
  EXPECT_EQ(prog.to_c_source("f", EvalMode::kStrict),
            "void f(const double* in, double* out) {\n"
            "  double r[4];\n"
            "  r[0] = in[0];\n"
            "  r[1] = in[1];\n"
            "  r[2] = -2.5;\n"
            "  r[3] = r[0] * r[1];\n"
            "  r[3] = r[2] + r[3];\n"
            "  r[1] = -r[1];\n"
            "  r[1] = r[0] - r[1];\n"
            "  r[1] = r[3] / r[1];\n"
            "  out[0] = r[3];\n"
            "  out[1] = r[1];\n"
            "}\n");
}

TEST(CodegenRoundtripTest, ScalarFastGoldenSource) {
  // Fused stream: the mul+add contracts to fma(), the single-use neg folds
  // into the consuming sub (which becomes an add).
  const auto prog = make_sample_program();
  EXPECT_EQ(prog.to_c_source("f", EvalMode::kFast),
            "/* fused stream: requires <math.h> for fma() */\n"
            "void f(const double* in, double* out) {\n"
            "  double r[4];\n"
            "  r[0] = in[0];\n"
            "  r[1] = in[1];\n"
            "  r[2] = -2.5;\n"
            "  r[2] = fma(r[0], r[1], r[2]);\n"
            "  r[1] = r[0] + r[1];\n"
            "  r[1] = r[2] / r[1];\n"
            "  out[0] = r[2];\n"
            "  out[1] = r[1];\n"
            "}\n");
}

TEST(CodegenRoundtripTest, BatchStrictGoldenSource) {
  const auto prog = make_sample_program();
  EXPECT_EQ(prog.to_c_source_batch("fb", EvalMode::kStrict),
            "void fb(const double* in, double* out, unsigned long n) {\n"
            "  unsigned long p;\n"
            "  for (p = 0; p < n; ++p) {\n"
            "    double r[4];\n"
            "    r[0] = in[0 * n + p];\n"
            "    r[1] = in[1 * n + p];\n"
            "    r[2] = -2.5;\n"
            "    r[3] = r[0] * r[1];\n"
            "    r[3] = r[2] + r[3];\n"
            "    r[1] = -r[1];\n"
            "    r[1] = r[0] - r[1];\n"
            "    r[1] = r[3] / r[1];\n"
            "    out[0 * n + p] = r[3];\n"
            "    out[1 * n + p] = r[1];\n"
            "  }\n"
            "}\n");
}

TEST(CodegenRoundtripTest, BatchFastGoldenSource) {
  // The batch fast kernel spells the contraction as a*b + c (not fma()):
  // the TU is compiled with -ffp-contract=fast, giving the C compiler the
  // same fusion license EvalMode::kFast grants the interpreter, with no
  // <math.h> dependency.
  const auto prog = make_sample_program();
  EXPECT_EQ(prog.to_c_source_batch("fb", EvalMode::kFast),
            "void fb(const double* in, double* out, unsigned long n) {\n"
            "  unsigned long p;\n"
            "  for (p = 0; p < n; ++p) {\n"
            "    double r[4];\n"
            "    r[0] = in[0 * n + p];\n"
            "    r[1] = in[1 * n + p];\n"
            "    r[2] = -2.5;\n"
            "    r[2] = r[0] * r[1] + r[2];\n"
            "    r[1] = r[0] + r[1];\n"
            "    r[1] = r[2] / r[1];\n"
            "    out[0 * n + p] = r[2];\n"
            "    out[1 * n + p] = r[1];\n"
            "  }\n"
            "}\n");
}

TEST(CodegenRoundtripTest, ZeroInputProgramEmitsVoidCast) {
  // A constant-only program must still compile warning-clean: the unused
  // `in` parameter is explicitly discarded.
  ExprGraph g;
  const auto c = g.constant(3.0);
  CompiledProgram prog(g, std::vector<NodeId>{c});
  const auto scalar = prog.to_c_source("zi", EvalMode::kStrict);
  EXPECT_NE(scalar.find("  (void)in;\n"), std::string::npos) << scalar;
  const auto batch = prog.to_c_source_batch("zib", EvalMode::kStrict);
  EXPECT_NE(batch.find("  (void)in;\n"), std::string::npos) << batch;
}

TEST(CodegenRoundtripTest, ConstantsEmitFullPrecisionAndNonFiniteForms) {
  ExprGraph g;
  const auto x = g.input(0);
  const auto a = g.mul(x, g.constant(0.1));
  const auto b = g.add(a, g.constant(std::numeric_limits<double>::infinity()));
  const auto c = g.add(b, g.constant(-std::numeric_limits<double>::infinity()));
  const auto d = g.add(c, g.constant(std::nan("")));
  CompiledProgram prog(g, std::vector<NodeId>{d});
  const auto src = prog.to_c_source_batch("k", EvalMode::kStrict);
  // %.17g: 0.1 round-trips to the exact stored double.
  EXPECT_NE(src.find("0.10000000000000001"), std::string::npos) << src;
  // Non-finite constants become IEEE division expressions, keeping the
  // source self-contained (no <math.h> INFINITY/NAN macros).
  EXPECT_NE(src.find("(1.0 / 0.0)"), std::string::npos) << src;
  EXPECT_NE(src.find("(-1.0 / 0.0)"), std::string::npos) << src;
  EXPECT_NE(src.find("(0.0 / 0.0)"), std::string::npos) << src;
}

TEST(CodegenRoundtripTest, EmittedSourceCompilesAndMatchesInterpreter) {
  if (core::native::find_compiler().empty()) GTEST_SKIP() << "no C compiler available";
  const auto prog = make_sample_program();

  const auto dir = std::filesystem::temp_directory_path() /
                   ("awe_codegen_test_" + std::to_string(::getpid()));
  std::filesystem::create_directories(dir);
  health::Status why;
  const auto module = core::native::load_or_compile(prog, dir.string(), &why);
  ASSERT_TRUE(module) << why.message;
  EXPECT_EQ(module->checksum(), core::native::program_checksum(prog));
  EXPECT_EQ(module->input_count(), prog.input_count());
  EXPECT_EQ(module->output_count(), prog.output_count());
  EXPECT_EQ(module->path(),
            core::native::module_path(dir.string(), module->checksum()));

  const std::size_t n = 33;  // odd width: exercises any unroll remainder
  std::vector<double> in(2 * n), native(2 * n), interp(2 * n);
  for (std::size_t p = 0; p < n; ++p) {
    in[p] = 0.25 + 0.5 * static_cast<double>(p);
    in[n + p] = 3.0 - 0.125 * static_cast<double>(p);
  }
  std::vector<double> scratch(prog.register_count() * n);

  module->run_batch(in, native, n, EvalMode::kStrict);
  prog.run_batch(in, interp, scratch, n, EvalMode::kStrict);
  EXPECT_EQ(native, interp) << "strict kernel not bit-identical";

  module->run_batch(in, native, n, EvalMode::kFast);
  prog.run_batch(in, interp, scratch, n, EvalMode::kFast);
  for (std::size_t i = 0; i < native.size(); ++i)
    EXPECT_NEAR(native[i], interp[i], 1e-12 * (std::abs(interp[i]) + 1.0)) << i;

  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
}

}  // namespace
}  // namespace awe
