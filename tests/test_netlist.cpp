#include <gtest/gtest.h>

#include "circuit/netlist.hpp"

namespace awe::circuit {
namespace {

TEST(Netlist, NodeInterningAndGroundAliases) {
  Netlist nl;
  EXPECT_EQ(nl.node("0"), kGround);
  EXPECT_EQ(nl.node("gnd"), kGround);
  EXPECT_EQ(nl.node("GND"), kGround);
  const auto a = nl.node("a");
  EXPECT_EQ(nl.node("A"), a);  // case-insensitive
  EXPECT_NE(a, kGround);
  EXPECT_EQ(nl.num_nodes(), 1u);
  EXPECT_EQ(nl.node_name(a), "a");
}

TEST(Netlist, FindNodeDoesNotCreate) {
  Netlist nl;
  EXPECT_FALSE(nl.find_node("missing").has_value());
  nl.node("x");
  EXPECT_TRUE(nl.find_node("x").has_value());
  EXPECT_EQ(nl.num_nodes(), 1u);
}

TEST(Netlist, DuplicateElementNameRejected) {
  Netlist nl;
  nl.add_resistor("r1", nl.node("a"), kGround, 100.0);
  EXPECT_THROW(nl.add_resistor("r1", nl.node("b"), kGround, 100.0),
               std::invalid_argument);
}

TEST(Netlist, ValueValidation) {
  Netlist nl;
  EXPECT_THROW(nl.add_resistor("r", nl.node("a"), kGround, 0.0), std::invalid_argument);
  EXPECT_THROW(nl.add_resistor("rneg", nl.node("a"), kGround, -5.0), std::invalid_argument);
  EXPECT_THROW(nl.add_capacitor("c", nl.node("a"), kGround, -1e-12), std::invalid_argument);
  EXPECT_THROW(nl.add_inductor("l", nl.node("a"), kGround, -1e-9), std::invalid_argument);
  EXPECT_NO_THROW(nl.add_conductance("g", nl.node("a"), kGround, 1e-3));
}

TEST(Netlist, SetValueByName) {
  Netlist nl;
  nl.add_capacitor("c1", nl.node("a"), kGround, 1e-12);
  nl.set_value("c1", 5e-12);
  EXPECT_DOUBLE_EQ(nl.elements()[0].value, 5e-12);
  EXPECT_THROW(nl.set_value("nope", 1.0), std::invalid_argument);
}

TEST(Netlist, StorageElementCount) {
  Netlist nl;
  nl.add_resistor("r1", nl.node("a"), kGround, 1.0);
  nl.add_capacitor("c1", nl.node("a"), kGround, 1.0);
  nl.add_inductor("l1", nl.node("a"), nl.node("b"), 1.0);
  nl.add_voltage_source("v1", nl.node("b"), kGround, 1.0);
  EXPECT_EQ(nl.num_storage_elements(), 2u);
}

TEST(Netlist, ValidateFlagsFloatingNode) {
  Netlist nl;
  nl.add_resistor("r1", nl.node("a"), kGround, 1.0);
  nl.add_resistor("r2", nl.node("x"), nl.node("y"), 1.0);  // floating island
  const auto problems = nl.validate();
  ASSERT_EQ(problems.size(), 2u);
  const std::string all = problems[0] + " " + problems[1];
  EXPECT_NE(all.find("'x'"), std::string::npos);
  EXPECT_NE(all.find("'y'"), std::string::npos);
}

TEST(Netlist, ValidateFlagsDanglingControlRef) {
  Netlist nl;
  nl.add_cccs("f1", nl.node("a"), kGround, "vmissing", 2.0);
  const auto problems = nl.validate();
  ASSERT_FALSE(problems.empty());
  EXPECT_NE(problems.back().find("vmissing"), std::string::npos);
}

TEST(Netlist, ValidateCleanCircuit) {
  Netlist nl;
  nl.add_voltage_source("vin", nl.node("in"), kGround, 1.0);
  nl.add_resistor("r1", nl.node("in"), nl.node("out"), 1e3);
  nl.add_capacitor("c1", nl.node("out"), kGround, 1e-12);
  EXPECT_TRUE(nl.validate().empty());
}

TEST(Netlist, ElementKindNames) {
  EXPECT_STREQ(to_string(ElementKind::kResistor), "resistor");
  EXPECT_STREQ(to_string(ElementKind::kVccs), "vccs");
}

}  // namespace
}  // namespace awe::circuit
