#include <gtest/gtest.h>

#include <cmath>

#include "awe/moments.hpp"
#include "circuits/fig1_rc.hpp"

namespace awe::engine {
namespace {

using circuit::kGround;
using circuit::Netlist;

TEST(Moments, SingleRcPole) {
  // H(s) = 1/(1 + sRC): m_k = (-RC)^k.
  Netlist nl;
  const auto in = nl.node("in");
  const auto out = nl.node("out");
  nl.add_voltage_source("vin", in, kGround, 1.0);
  nl.add_resistor("r1", in, out, 1e3);
  nl.add_capacitor("c1", out, kGround, 1e-9);
  MomentGenerator gen(nl);
  const auto m = gen.transfer_moments("vin", out, 5);
  const double rc = 1e-6;
  for (std::size_t k = 0; k < m.size(); ++k)
    EXPECT_NEAR(m[k], std::pow(-rc, static_cast<double>(k)),
                1e-12 * std::pow(rc, static_cast<double>(k)));
}

TEST(Moments, Fig1MatchesClosedForm) {
  // H = n / (d0 + d1 s + d2 s^2); Maclaurin by long division.
  circuits::Fig1Values vals;
  vals.g1 = 2e-3;
  vals.g2 = 0.5e-3;
  vals.c1 = 3e-12;
  vals.c2 = 7e-12;
  auto fig = circuits::make_fig1(vals);
  const auto ex = circuits::fig1_exact(vals);

  MomentGenerator gen(fig.netlist);
  const auto m = gen.transfer_moments(circuits::Fig1Circuit::kInput, fig.v2, 6);

  // Recurrence: m_0 = n/d0; d0 m_k = -d1 m_{k-1} - d2 m_{k-2}.
  std::vector<double> expected(6);
  expected[0] = ex.num / ex.den_s0;
  expected[1] = -ex.den_s1 * expected[0] / ex.den_s0;
  for (std::size_t k = 2; k < 6; ++k)
    expected[k] = (-ex.den_s1 * expected[k - 1] - ex.den_s2 * expected[k - 2]) / ex.den_s0;
  for (std::size_t k = 0; k < 6; ++k)
    EXPECT_NEAR(m[k], expected[k], 1e-9 * std::abs(expected[k]) + 1e-30) << "k=" << k;
}

TEST(Moments, InductorMomentsMatchAnalytic) {
  // Series R-L driven by V source, output across L:
  // H(s) = sL/(R + sL) = s(L/R) - s^2 (L/R)^2 + ...
  Netlist nl;
  const auto in = nl.node("in");
  const auto out = nl.node("out");
  nl.add_voltage_source("vin", in, kGround, 1.0);
  nl.add_resistor("r1", in, out, 50.0);
  nl.add_inductor("l1", out, kGround, 1e-6);
  MomentGenerator gen(nl);
  const auto m = gen.transfer_moments("vin", out, 4);
  const double tau = 1e-6 / 50.0;
  EXPECT_NEAR(m[0], 0.0, 1e-15);
  EXPECT_NEAR(m[1], tau, 1e-12 * tau);
  EXPECT_NEAR(m[2], -tau * tau, 1e-12 * tau * tau);
}

TEST(Moments, StateMomentsDriveTransferMoments) {
  auto fig = circuits::make_fig1();
  MomentGenerator gen(fig.netlist);
  const auto xs = gen.state_moments(circuits::Fig1Circuit::kInput, 4);
  const auto m = gen.transfer_moments(circuits::Fig1Circuit::kInput, fig.v2, 4);
  const auto out = gen.assembler().layout().node_unknown(fig.v2);
  for (std::size_t k = 0; k < 4; ++k) EXPECT_DOUBLE_EQ(xs[k][out], m[k]);
}

TEST(Moments, AdjointIdentity) {
  // z_i^T b must equal m_i = c^T x_i (adjoint/direct duality):
  // z_i^T b = c^T (G^{-1} (-C G^{-1})^i) b = m_i.
  auto fig = circuits::make_fig1();
  MomentGenerator gen(fig.netlist);
  const auto zs = gen.adjoint_moments(fig.v2, 4);
  const auto m = gen.transfer_moments(circuits::Fig1Circuit::kInput, fig.v2, 4);
  const auto b = gen.assembler().rhs(circuits::Fig1Circuit::kInput, 1.0);
  for (std::size_t i = 0; i < 4; ++i) {
    double dot = 0.0;
    for (std::size_t k = 0; k < b.size(); ++k) dot += zs[i][k] * b[k];
    EXPECT_NEAR(dot, m[i], 1e-12 * (1.0 + std::abs(m[i]))) << "i=" << i;
  }
}

TEST(Moments, SingularDcMatrixRejected) {
  // A node with no DC path (series capacitor island) has singular G.
  Netlist nl;
  const auto in = nl.node("in");
  const auto mid = nl.node("mid");
  nl.add_voltage_source("vin", in, kGround, 1.0);
  nl.add_capacitor("c1", in, mid, 1e-12);
  nl.add_capacitor("c2", mid, kGround, 1e-12);
  EXPECT_THROW(MomentGenerator gen(nl), std::runtime_error);
}

}  // namespace
}  // namespace awe::engine
