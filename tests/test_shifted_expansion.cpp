// Frequency-shifted moment expansions (expansion about s0 != 0).
#include <gtest/gtest.h>

#include <cmath>

#include "awe/awe.hpp"
#include "awe/moments.hpp"
#include "circuits/fig1_rc.hpp"

namespace awe::engine {
namespace {

using circuit::kGround;
using circuit::Netlist;

Netlist single_rc() {
  Netlist nl;
  nl.add_voltage_source("vin", nl.node("in"), kGround, 1.0);
  nl.add_resistor("r1", nl.node("in"), nl.node("out"), 1e3);
  nl.add_capacitor("c1", nl.node("out"), kGround, 1e-9);
  return nl;
}

TEST(ShiftedExpansion, SingleRcMomentsAnalytic) {
  // H(s) = 1/(1 + RC s); H(s0 + sig) = A/(1 + A RC sig) with
  // A = 1/(1 + RC s0), so m_k = A (-A RC)^k.
  auto nl = single_rc();
  const double rc = 1e-6;
  for (const double s0 : {0.0, 1e5, 1e6, 1e7}) {
    MomentGenerator gen(nl, s0);
    EXPECT_DOUBLE_EQ(gen.expansion_point(), s0);
    const auto m = gen.transfer_moments("vin", *nl.find_node("out"), 4);
    const double a = 1.0 / (1.0 + rc * s0);
    for (std::size_t k = 0; k < 4; ++k) {
      const double expected = a * std::pow(-a * rc, static_cast<double>(k));
      EXPECT_NEAR(m[k], expected, 1e-12 * std::abs(expected)) << "s0=" << s0 << " k=" << k;
    }
  }
}

TEST(ShiftedExpansion, PoleRecoveredForAnyShift) {
  auto nl = single_rc();
  const auto out = *nl.find_node("out");
  for (const double s0 : {0.0, 2e5, 5e6}) {
    const auto rom = run_awe(nl, "vin", out, {.order = 1, .expansion_point = s0});
    ASSERT_EQ(rom.order(), 1u);
    EXPECT_NEAR(rom.poles()[0].real(), -1e6, 1.0) << "s0=" << s0;
    // The pole-residue form lives in the s domain: H(0) = 1 regardless.
    EXPECT_NEAR(rom.dc_gain(), 1.0, 1e-9);
  }
}

TEST(ShiftedExpansion, RescuesSingularDcMatrix) {
  // Capacitive-divider node with no DC path: G is genuinely singular and
  // the Maclaurin expansion fails; a shifted expansion recovers the exact
  // (strictly proper) transfer H(s) = C1 / (C1 + C2 + s R C1 C2).
  Netlist nl;
  const auto in = nl.node("in");
  const auto a = nl.node("a");
  const auto b = nl.node("b");
  nl.add_voltage_source("vin", in, kGround, 1.0);
  nl.add_resistor("r1", in, a, 1e3);
  nl.add_capacitor("c1", a, b, 1e-9);
  nl.add_capacitor("c2", b, kGround, 1e-9);
  EXPECT_THROW(MomentGenerator gen(nl), std::runtime_error);

  const double s0 = 1e6;
  const auto rom = run_awe(nl, "vin", b, {.order = 1, .expansion_point = s0});
  ASSERT_EQ(rom.order(), 1u);
  // Pole at -(C1+C2)/(R C1 C2) = -2e6; "DC gain" C1/(C1+C2) = 0.5.
  EXPECT_NEAR(rom.poles()[0].real(), -2e6, 1.0);
  EXPECT_NEAR(rom.dc_gain(), 0.5, 1e-6);
}

TEST(ShiftedExpansion, Fig1PolesMatchUnshifted) {
  auto fig = circuits::make_fig1({.g1 = 1e-3, .g2 = 2e-3, .c1 = 2e-12, .c2 = 1e-12});
  const auto rom0 = run_awe(fig.netlist, circuits::Fig1Circuit::kInput, fig.v2,
                            {.order = 2});
  const auto rom_shift = run_awe(fig.netlist, circuits::Fig1Circuit::kInput, fig.v2,
                                 {.order = 2, .expansion_point = 1e8});
  ASSERT_EQ(rom_shift.order(), 2u);
  for (const auto& p : rom0.poles()) {
    double best = 1e300;
    for (const auto& q : rom_shift.poles()) best = std::min(best, std::abs(q - p));
    EXPECT_LT(best, 1e-4 * std::abs(p));
  }
  // Frequency response agrees between the two expansions.
  for (const double f : {1e6, 1e8, 1e9}) {
    const auto a = rom0.transfer({0.0, 2 * M_PI * f});
    const auto b = rom_shift.transfer({0.0, 2 * M_PI * f});
    EXPECT_LT(std::abs(a - b), 1e-3 * (std::abs(a) + 1e-6)) << "f=" << f;
  }
}

}  // namespace
}  // namespace awe::engine
