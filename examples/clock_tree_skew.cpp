// Clock-tree skew modeling with a multi-output compiled symbolic model.
//
// The paper's closing motivation: "AWEsymbolic should serve as a useful
// mechanism for modeling interconnect delay in physical CAD design tools."
// This example builds a balanced RC clock tree, treats the driver
// resistance and a leaf load capacitance as symbols, compiles ONE model
// observing every leaf, and then explores skew (max leaf-to-leaf delay
// difference) across the design space — each design point costing
// microseconds instead of a full re-simulation.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "awe/tree_moments.hpp"
#include "circuits/ladders.hpp"
#include "core/awesymbolic.hpp"

int main() {
  using namespace awe;
  circuits::TreeValues tv;
  tv.depth = 3;  // 8 leaves — every leaf becomes a preserved port, and the
                 // symbolic port system is capped at 16 unknowns
  auto tree = circuits::make_rc_tree(tv);
  auto& nl = tree.netlist;
  std::printf("== clock-tree skew model (depth %zu, %zu elements) ==\n\n", tv.depth,
              nl.elements().size());

  // Unbalance one leaf's load so there is real skew to model, then treat
  // the driver resistance and that leaf's extra load as the symbols.
  const std::size_t leaves = std::size_t{1} << tv.depth;
  nl.set_value("cl1", 5e-12);  // leaf0's extra load (element names are 1-based)
  const std::vector<std::string> symbols{"rdrv", "cl1"};

  std::vector<circuit::NodeId> leaf_nodes;
  for (std::size_t i = 0; i < leaves; ++i)
    leaf_nodes.push_back(*nl.find_node("leaf" + std::to_string(i)));

  const auto model = core::MultiOutputModel::build(
      nl, symbols, circuits::TreeCircuit::kInput, leaf_nodes, {.order = 2});
  std::printf("one compiled model for %zu leaf outputs: %zu instructions, %zu ports\n\n",
              model.output_count(), model.instruction_count(), model.port_count());

  // O(n) tree-moment cross-check of the nominal Elmore delays.
  const auto pt = engine::RcTreeAnalyzer::build(nl, circuits::TreeCircuit::kInput);
  if (pt) {
    const auto all = pt->all_node_moments(2);
    std::printf("nominal Elmore delays (path-tracing, O(n)):\n");
    for (std::size_t i = 0; i < 4; ++i)
      std::printf("  leaf%-3zu %8.4f ns\n", i, -all[1][leaf_nodes[i]] * 1e9);
    std::printf("  ...\n\n");
  }

  auto skew_at = [&](double rdrv, double cl) {
    std::vector<double> t50(model.output_count());
    for (std::size_t o = 0; o < model.output_count(); ++o) {
      const auto rom = model.evaluate(o, std::vector<double>{rdrv, cl});
      t50[o] = *rom.step_crossing_time(0.5, 1e-6);
    }
    const auto [lo, hi] = std::minmax_element(t50.begin(), t50.end());
    return std::pair<double, double>(*hi - *lo, *hi);
  };

  std::printf("skew and max insertion delay vs (driver R, leaf0 extra load):\n");
  std::printf("%12s", "Rdrv\\Cl1");
  for (const double cl : {1e-12, 2e-12, 5e-12, 10e-12})
    std::printf("   %7.0fpF", cl * 1e12);
  std::printf("\n");
  for (const double r : {20.0, 50.0, 100.0, 200.0}) {
    std::printf("%10.0f", r);
    for (const double cl : {1e-12, 2e-12, 5e-12, 10e-12}) {
      const auto [skew, max_delay] = skew_at(r, cl);
      std::printf("  %5.3f/%4.2f", skew * 1e9, max_delay * 1e9);
    }
    std::printf("   (skew/max, ns)\n");
  }

  std::printf("\nbalancing experiment: find the leaf0 load that nulls the skew at "
              "Rdrv = 50:\n");
  double best_cl = 1e-12, best_skew = 1e9;
  for (double cl = 0.5e-12; cl <= 4e-12; cl += 0.125e-12) {
    const auto [skew, unused] = skew_at(50.0, cl);
    (void)unused;
    if (skew < best_skew) {
      best_skew = skew;
      best_cl = cl;
    }
  }
  std::printf("  min skew %.4f ns at Cl1 = %.3f pF "
              "(every probe reused the same compiled model)\n",
              best_skew * 1e9, best_cl * 1e12);
  return 0;
}
