// Quickstart: symbolic AWE analysis of the paper's Figure-1 RC circuit.
//
// Reproduces eqns (5)/(6): the full-symbolic and mixed numeric-symbolic
// transfer function coefficients, then builds a compiled model and shows
// that evaluating it matches a full numeric AWE run.
//
// Build & run:  cmake -B build -G Ninja && cmake --build build
//               ./build/examples/quickstart
#include <cstdio>

#include "awe/awe.hpp"
#include "circuit/parser.hpp"
#include "core/awesymbolic.hpp"

int main() {
  using namespace awe;

  // The paper's Figure 1, as a SPICE-like deck with AWEsymbolic
  // directives.  G1 is a 1-ohm conductance modelled as R1 = 1 ohm.
  const auto deck = circuit::parse_deck_string(R"(* figure 1 sample RC circuit
Vin in 0 1
R1 in v1 0.2      ; G1 = 5 S  (the paper's mixed-symbolic example)
R2 v1 v2 1
C1 v1 0 1
C2 v2 0 1
.symbol R2
.symbol C1
.symbol C2
.input vin
.output v2
.end
)");

  std::printf("== AWEsymbolic quickstart: paper Figure 1 ==\n\n");
  std::printf("circuit: %zu elements, %zu storage elements\n",
              deck.netlist.elements().size(), deck.netlist.num_storage_elements());

  // Build the compiled symbolic model (order 2 is exact for this 2-pole
  // circuit).  R2 is treated through its conductance G2 = 1/R2 internally.
  const auto model = core::CompiledModel::build(deck.netlist, deck.symbol_elements,
                                                deck.input_source, deck.output_node,
                                                {.order = 2});

  const auto names = model.symbol_names();
  std::printf("symbols:");
  for (const auto& n : names) std::printf(" %s", n.c_str());
  std::printf("\nports: %zu, compiled program: %zu instructions, %zu registers\n\n",
              model.port_count(), model.instruction_count(), model.register_count());

  // The mixed numeric-symbolic moment expressions (eqn (6) flavor: G1
  // fixed at 5, the rest symbolic).  Internal variables: r2 enters as its
  // conductance.
  const std::vector<std::string> internal{"g2", "c1", "c2"};
  std::printf("m0(e) = %s\n",
              model.symbolic_moments().moment(0).normalized().to_string(internal).c_str());
  std::printf("m1(e) = %s\n\n",
              model.symbolic_moments().moment(1).normalized().to_string(internal).c_str());

  // Evaluate the compiled model at the deck's nominal values and compare
  // against a full numeric AWE analysis — the paper's "identical results".
  const std::vector<double> values{1.0, 1.0, 1.0};  // R2, C1, C2
  const auto rom = model.evaluate(values);
  const auto rom_ref = engine::run_awe(deck.netlist, deck.input_source,
                                       std::string(deck.output_node), {.order = 2});

  std::printf("%-28s %-22s %-22s\n", "", "compiled symbolic", "full AWE");
  std::printf("%-28s %-22.6g %-22.6g\n", "DC gain", rom.dc_gain(), rom_ref.dc_gain());
  for (std::size_t i = 0; i < rom.order(); ++i)
    std::printf("pole %zu (rad/s)               %-10.6g%+.6gi    %-10.6g%+.6gi\n", i + 1,
                rom.poles()[i].real(), rom.poles()[i].imag(), rom_ref.poles()[i].real(),
                rom_ref.poles()[i].imag());
  std::printf("\nstep response (compiled model):\n");
  for (double t = 0.0; t <= 8.0; t += 1.0)
    std::printf("  t=%4.1fs   v(out)=%8.5f\n", t, rom.step_response(t));

  // Sweep one symbol to show the iterative use case.
  std::printf("\nsweep C2 with the compiled model (R2 = C1 = 1):\n");
  for (const double c2 : {0.25, 0.5, 1.0, 2.0, 4.0}) {
    const auto r = model.evaluate(std::vector<double>{1.0, 1.0, c2});
    std::printf("  C2=%-5.2f  p1=%9.5f rad/s   t50=%7.4f s\n", c2,
                r.dominant_pole()->real(), *r.step_crossing_time(0.5, 100.0));
  }
  return 0;
}
