// Time-domain symbolic timing model for coupled RC lines (paper §3.2).
//
// Two symmetric 1000-segment lines with capacitive coupling; the driver
// resistance of the active line and the victim's load capacitance are the
// symbols.  A first-order AWEsymbolic model captures the monotone direct
// transmission; the non-monotonic cross-talk needs second order.  The
// compiled models are then swept to produce the paper's Figures 9 and 10
// (cross-talk step response vs R_driver and vs C_load).
#include <cstdio>
#include <vector>

#include "circuits/coupled_lines.hpp"
#include "core/awesymbolic.hpp"

int main() {
  using namespace awe;
  circuits::CoupledLineValues values;  // 1000 segments by default
  auto c = circuits::make_coupled_lines(values);
  std::printf("== coupled-line timing model (2 x %zu-segment RC lines) ==\n\n",
              values.segments);
  std::printf("circuit: %zu elements, %zu MNA-relevant storage elements\n",
              c.netlist.elements().size(), c.netlist.num_storage_elements());
  std::printf("symbols: %s (driver resistance), %s (victim load capacitance)\n\n",
              circuits::CoupledLinesCircuit::kSymbolRdriver,
              circuits::CoupledLinesCircuit::kSymbolCload);

  const std::vector<std::string> symbols{circuits::CoupledLinesCircuit::kSymbolRdriver,
                                         circuits::CoupledLinesCircuit::kSymbolCload};

  // First order suffices for the direct line (paper: "A first order
  // approximation suffices to model the direct transmission").
  const auto direct = core::CompiledModel::build(
      c.netlist, symbols, circuits::CoupledLinesCircuit::kInput, c.line1_out,
      {.order = 1});
  // Second order for the non-monotonic cross-coupling response.
  const auto cross = core::CompiledModel::build(
      c.netlist, symbols, circuits::CoupledLinesCircuit::kInput, c.line2_out,
      {.order = 2});
  std::printf("direct model : order 1, %zu compiled instructions\n",
              direct.instruction_count());
  std::printf("cross model  : order 2, %zu compiled instructions\n\n",
              cross.instruction_count());

  const double r0 = values.r_driver, cl0 = values.c_load;

  std::printf("direct transmission 50%% delay vs driver resistance (C_load nominal):\n");
  for (const double r : {25.0, 50.0, 100.0, 200.0, 400.0}) {
    const auto rom = direct.evaluate(std::vector<double>{r, cl0});
    std::printf("  Rdrv=%6.1f ohm   t50=%8.3f ns\n", r,
                *rom.step_crossing_time(0.5, 1e-5) * 1e9);
  }

  // Figure 9: cross-talk transient as the driver resistance is varied.
  std::printf("\nFigure 9 — cross-talk step response as R_driver varies (C_load=%.1fpF):\n",
              cl0 * 1e12);
  std::printf("%8s", "t [ns]");
  const std::vector<double> rdrvs{25.0, 50.0, 100.0, 200.0, 400.0};
  for (const double r : rdrvs) std::printf("  R=%6.0f", r);
  std::printf("\n");
  std::vector<engine::ReducedOrderModel> roms9;
  for (const double r : rdrvs) roms9.push_back(cross.evaluate(std::vector<double>{r, cl0}));
  for (double t = 0.0; t <= 120e-9; t += 8e-9) {
    std::printf("%8.1f", t * 1e9);
    for (const auto& rom : roms9) std::printf(" %9.5f", rom.step_response(t));
    std::printf("\n");
  }

  // Figure 10: cross-talk transient as the victim load is varied.
  std::printf("\nFigure 10 — cross-talk step response as C_load varies (R_driver=%.0f ohm):\n",
              r0);
  std::printf("%8s", "t [ns]");
  const std::vector<double> cloads{0.25e-12, 0.5e-12, 1e-12, 2e-12, 4e-12};
  for (const double cl : cloads) std::printf("  C=%5.2fp", cl * 1e12);
  std::printf("\n");
  std::vector<engine::ReducedOrderModel> roms10;
  for (const double cl : cloads)
    roms10.push_back(cross.evaluate(std::vector<double>{r0, cl}));
  for (double t = 0.0; t <= 120e-9; t += 8e-9) {
    std::printf("%8.1f", t * 1e9);
    for (const auto& rom : roms10) std::printf(" %9.5f", rom.step_response(t));
    std::printf("\n");
  }

  // Cross-talk peak summary (the timing-model quantity a router would use).
  std::printf("\ncross-talk peak vs (R_driver, C_load):\n");
  for (const double r : rdrvs) {
    std::printf("  Rdrv=%6.1f:", r);
    for (const double cl : cloads) {
      const auto rom = cross.evaluate(std::vector<double>{r, cl});
      double peak = 0.0;
      for (double t = 0.0; t <= 300e-9; t += 0.5e-9)
        peak = std::max(peak, std::abs(rom.step_response(t)));
      std::printf("  %7.5f", peak);
    }
    std::printf("\n");
  }
  return 0;
}
