// Frequency-domain symbolic analysis of the 741 op-amp (paper §3.1).
//
// Workflow exactly as in the paper:
//   1. AWEsensitivity ranks elements; gout_q14 and c_comp come out on top
//      and are chosen as symbols.
//   2. A first-order AWEsymbolic model gives closed forms for the DC gain
//      and dominant pole (eqn (14) analogues) — plotted as grids over the
//      symbol values (Figures 4 and 5).
//   3. A second-order model produces unity-gain frequency and phase
//      margin surfaces (Figures 6 and 7), identical to full AWE.
#include <cmath>
#include <cstdio>

#include "awe/awe.hpp"
#include "awe/sensitivity.hpp"
#include "circuits/opamp741.hpp"
#include "core/awesymbolic.hpp"

int main() {
  using namespace awe;
  auto amp = circuits::make_opamp741();
  const auto& nl = amp.netlist;
  std::printf("== 741 operational amplifier, AWEsymbolic analysis ==\n\n");
  std::printf("linearized circuit: %zu linear elements, %zu energy-storage elements\n\n",
              nl.elements().size(), nl.num_storage_elements());

  // -- 1. automatic symbol selection via AWEsensitivity ------------------
  const auto ranked = engine::rank_symbol_candidates(
      nl, circuits::Opamp741Circuit::kInput, amp.out, 2);
  std::printf("top-5 normalized pole sensitivities (symbol candidates):\n");
  for (std::size_t i = 0; i < 5 && i < ranked.size(); ++i)
    std::printf("  %-12s %.3e\n", ranked[i].name.c_str(),
                ranked[i].normalized_sensitivity);

  const std::vector<std::string> symbols{circuits::Opamp741Circuit::kSymbolGout,
                                         circuits::Opamp741Circuit::kSymbolCcomp};
  std::printf("\nchosen symbols: %s, %s\n\n", symbols[0].c_str(), symbols[1].c_str());

  // -- 2. first-order closed forms (Figures 4, 5) ------------------------
  const auto model1 = core::CompiledModel::build(
      nl, symbols, circuits::Opamp741Circuit::kInput, amp.out, {.order = 1});
  std::printf("first-order symbolic forms (internal symbols g = gout_q14, c = c_comp):\n");
  const std::vector<std::string> names{"g", "c"};
  std::printf("  A0(g,c) = %s\n",
              model1.dc_gain_expression().to_string(names).c_str());
  std::printf("  p1(g,c) = %s\n\n",
              model1.first_order_pole_expression().to_string(names).c_str());

  const circuits::Opamp741Values nominal;
  const double g0 = nominal.gout_q14, c0 = nominal.c_comp;

  std::printf("Figure 4 — first pole p1/2pi [Hz] vs (gout_q14, c_comp), 1st-order form:\n");
  std::printf("%12s", "gout\\c_comp");
  for (int jc = 0; jc < 5; ++jc) std::printf(" %9.1fpF", c0 * (0.5 + 0.25 * jc) * 1e12);
  std::printf("\n");
  for (int jg = 0; jg < 5; ++jg) {
    const double g = g0 * (0.5 + 0.25 * jg);
    std::printf("%10.2fmS", g * 1e3);
    for (int jc = 0; jc < 5; ++jc) {
      const double c = c0 * (0.5 + 0.25 * jc);
      const auto rom = model1.evaluate(std::vector<double>{g, c});
      std::printf(" %11.3f", rom.dominant_pole()->real() / (2 * M_PI));
    }
    std::printf("\n");
  }

  std::printf("\nFigure 5 — DC gain vs (gout_q14, c_comp), 1st-order form:\n");
  for (int jg = 0; jg < 5; ++jg) {
    const double g = g0 * (0.5 + 0.25 * jg);
    std::printf("%10.2fmS", g * 1e3);
    for (int jc = 0; jc < 5; ++jc) {
      const double c = c0 * (0.5 + 0.25 * jc);
      const auto rom = model1.evaluate(std::vector<double>{g, c});
      std::printf(" %11.0f", std::abs(rom.dc_gain()));
    }
    std::printf("\n");
  }

  // -- 3. second-order model (Figures 6, 7) ------------------------------
  const auto model2 = core::CompiledModel::build(
      nl, symbols, circuits::Opamp741Circuit::kInput, amp.out, {.order = 2});
  std::printf("\nFigure 6 — unity-gain frequency [MHz] vs (gout_q14, c_comp), 2nd order:\n");
  for (int jg = 0; jg < 5; ++jg) {
    const double g = g0 * (0.5 + 0.25 * jg);
    std::printf("%10.2fmS", g * 1e3);
    for (int jc = 0; jc < 5; ++jc) {
      const double c = c0 * (0.5 + 0.25 * jc);
      const auto rom = model2.evaluate(std::vector<double>{g, c});
      std::printf(" %11.4f", rom.unity_gain_frequency() / 1e6);
    }
    std::printf("\n");
  }

  std::printf("\nFigure 7 — phase margin [deg] vs (gout_q14, c_comp), 2nd order:\n");
  for (int jg = 0; jg < 5; ++jg) {
    const double g = g0 * (0.5 + 0.25 * jg);
    std::printf("%10.2fmS", g * 1e3);
    for (int jc = 0; jc < 5; ++jc) {
      const double c = c0 * (0.5 + 0.25 * jc);
      const auto rom = model2.evaluate(std::vector<double>{g, c});
      std::printf(" %11.2f", rom.phase_margin_deg());
    }
    std::printf("\n");
  }

  // -- identity with a full AWE analysis at nominal ----------------------
  const auto rom_sym = model2.evaluate(std::vector<double>{g0, c0});
  const auto rom_awe = engine::run_awe(nl, circuits::Opamp741Circuit::kInput, amp.out,
                                       {.order = 2});
  std::printf("\nidentity check at nominal values (symbolic vs full AWE):\n");
  std::printf("  DC gain : %.8g vs %.8g\n", rom_sym.dc_gain(), rom_awe.dc_gain());
  std::printf("  f_unity : %.8g vs %.8g Hz\n", rom_sym.unity_gain_frequency(),
              rom_awe.unity_gain_frequency());
  std::printf("  PM      : %.6g vs %.6g deg\n", rom_sym.phase_margin_deg(),
              rom_awe.phase_margin_deg());
  return 0;
}
