// The full "linear(ized)" story, end to end:
//   nonlinear BJT amplifier  ->  Newton DC operating point  ->
//   small-signal linearization  ->  AWEsymbolic compiled model.
//
// This is the front half the paper assumes (its 741 arrives "after
// linearization"); here a two-stage BJT amplifier is linearized in-repo
// and the resulting small-signal circuit is handed to the compiled
// symbolic analysis with automatically selected symbols.
#include <cmath>
#include <cstdio>

#include "awe/awe.hpp"
#include "circuit/mna.hpp"
#include "core/awesymbolic.hpp"
#include "nonlinear/dc_solver.hpp"

int main() {
  using namespace awe;
  using namespace awe::nonlinear;

  // --- nonlinear two-stage amplifier ------------------------------------
  NonlinearCircuit ckt;
  auto& nl = ckt.linear;
  const auto vcc = nl.node("vcc");
  const auto b1 = nl.node("b1");
  const auto c1 = nl.node("c1");
  const auto b2 = nl.node("b2");
  const auto c2 = nl.node("c2");
  nl.add_voltage_source("vdd", vcc, circuit::kGround, 12.0);
  // Stage 1 bias + load.
  nl.add_resistor("rb1a", vcc, b1, 180e3);
  nl.add_resistor("rb1b", b1, circuit::kGround, 12e3);
  nl.add_resistor("rc1", vcc, c1, 6.8e3);
  // AC-coupled second stage with its own bias divider and emitter
  // degeneration (Vb2 ~ 2 V, Ic2 ~ (Vb2 - Vbe)/re2 ~ 2 mA).
  const auto e2 = nl.node("e2");
  nl.add_capacitor("ccouple", c1, b2, 1e-6);
  nl.add_resistor("rb2a", vcc, b2, 100e3);
  nl.add_resistor("rb2b", b2, circuit::kGround, 22e3);
  nl.add_resistor("rc2", vcc, c2, 3.3e3);
  nl.add_resistor("re2", e2, circuit::kGround, 560.0);
  BjtParams q;
  q.beta_f = 120.0;
  q.vaf = 90.0;
  q.cpi = 25e-12;
  q.cmu = 4e-12;
  ckt.add_bjt_npn("q1", c1, b1, circuit::kGround, q);
  ckt.add_bjt_npn("q2", c2, b2, e2, q);

  std::printf("== nonlinear two-stage BJT amplifier -> AWEsymbolic ==\n\n");
  const auto op = solve_dc(ckt);
  std::printf("Newton DC operating point: %s in %d iterations\n",
              op.converged ? "converged" : "FAILED", op.iterations);
  if (!op.converged) return 1;

  circuit::MnaAssembler asem(nl);
  auto v = [&](circuit::NodeId n) { return op.x[asem.layout().node_unknown(n)]; };
  std::printf("  V(b1)=%.3f V(c1)=%.3f V(b2)=%.3f V(c2)=%.3f\n", v(b1), v(c1), v(b2),
              v(c2));
  for (std::size_t i = 0; i < ckt.devices.size(); ++i)
    std::printf("  %s: Ic=%.3f mA, gm=%.2f mS, gpi=%.3f mS, go=%.1f uS\n",
                ckt.devices[i].name.c_str(), op.device_ss[i].i_main * 1e3,
                op.device_ss[i].gm * 1e3, op.device_ss[i].gpi * 1e3,
                op.device_ss[i].go * 1e6);

  // --- linearize and attach the small-signal input ----------------------
  auto ss = linearize(ckt, op);
  const auto in = ss.node("in");
  ss.add_voltage_source("vin", in, circuit::kGround, 1.0);
  ss.add_resistor("rsig", in, *ss.find_node("b1"), 600.0);
  std::printf("\nlinearized small-signal circuit: %zu elements (%zu storage)\n",
              ss.elements().size(), ss.num_storage_elements());

  // The AC-coupled amplifier is band-pass: H(0) = 0, so report the
  // midband gain and the upper -3 dB edge.
  const auto rom = engine::run_awe(ss, "vin", *ss.find_node("c2"), {.order = 3});
  const double midband = rom.magnitude(100e3);
  std::printf("full AWE: midband gain %.1f (%.1f dB), upper f_-3dB ~ ", midband,
              20 * std::log10(midband));
  const double target = midband / std::sqrt(2.0);
  double lo = 100e3, hi = 1e11;
  while (hi / lo > 1.0001) {
    const double mid = std::sqrt(lo * hi);
    (rom.magnitude(mid) > target ? lo : hi) = mid;
  }
  std::printf("%.3g Hz\n\n", std::sqrt(lo * hi));

  // --- AWEsymbolic on the linearized circuit -----------------------------
  const auto symbols = core::select_symbols(ss, "vin", *ss.find_node("c2"), 2, 2);
  std::printf("AWEsensitivity-selected symbols: %s, %s\n", symbols[0].c_str(),
              symbols[1].c_str());
  const auto model =
      core::CompiledModel::build(ss, symbols, "vin", *ss.find_node("c2"), {.order = 2});
  std::printf("compiled model: %zu instructions over %zu ports\n\n",
              model.instruction_count(), model.port_count());

  std::vector<double> nominal;
  for (const auto& s : symbols)
    nominal.push_back(ss.elements()[*ss.find_element(s)].value);
  std::printf("sweep of the first symbol (x0.5 .. x2):\n");
  for (const double f : {0.5, 0.7, 1.0, 1.4, 2.0}) {
    auto vals = nominal;
    vals[0] *= f;
    const auto r = model.evaluate(vals);
    std::printf("  %s x%.1f : midband gain %9.1f, lowest pole %10.3e rad/s\n",
                symbols[0].c_str(), f, r.magnitude(100e3),
                r.dominant_pole()->real());
  }
  return 0;
}
