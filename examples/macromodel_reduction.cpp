// Interconnect macromodeling: reduce a large RC subnetwork to an N-port
// pole/residue admittance model and use it in place of the full network.
//
// This is the companion use of the partitioner's port-moment machinery
// (AWE macromodels of VLSI interconnect): a 500-segment line becomes a
// 2-port model with a handful of poles per entry, accurate through the
// band of interest and evaluable in nanoseconds.
#include <cmath>
#include <complex>
#include <cstdio>

#include "circuit/netlist.hpp"
#include "partition/macromodel.hpp"

int main() {
  using namespace awe;
  // A 500-segment RC line between two ports.
  circuit::Netlist nl;
  const std::size_t segments = 500;
  auto prev = nl.node("p1");
  for (std::size_t i = 0; i < segments; ++i) {
    const auto n = (i + 1 == segments) ? nl.node("p2") : nl.node("n" + std::to_string(i));
    nl.add_resistor("r" + std::to_string(i), prev, n, 2.0);
    nl.add_capacitor("c" + std::to_string(i), n, circuit::kGround, 20e-15);
    prev = n;
  }
  const auto p1 = *nl.find_node("p1");
  const auto p2 = *nl.find_node("p2");
  std::printf("== N-port macromodel reduction of a %zu-segment RC line ==\n\n", segments);
  std::printf("full network: %zu elements, reduced to a 2-port model\n\n",
              nl.elements().size());

  for (const std::size_t order : {1u, 2u, 3u, 4u}) {
    const auto mm = part::PortMacromodel::build(nl, {p1, p2},
                                                {.order = order, .moments = 10});
    // Accuracy vs the raw moment series.  The series only converges below
    // the dominant pole (~1e9 rad/s here), so the reference is taken well
    // inside that radius; the fitted model itself stays valid far beyond.
    const double f = 1e7;
    const std::complex<double> s{0.0, 2 * M_PI * f};
    const auto& yk = mm.moment_blocks();
    std::complex<double> ref{0, 0}, sk{1, 0};
    for (std::size_t k = 0; k < yk.size(); ++k) {
      ref += yk[k][1] * sk;  // y12
      sk *= s;
    }
    const auto got = mm.admittance(0, 1, s);
    std::printf("order %zu: y12 poles=%zu, |error| at %.0e Hz = %.3e (|y12|=%.3e S)\n",
                order, mm.entry(0, 1).poles.size(), f, std::abs(got - ref),
                std::abs(ref));
  }

  const auto mm = part::PortMacromodel::build(nl, {p1, p2}, {.order = 3, .moments = 10});
  std::printf("\norder-3 model, entry y11: d0=%.4e S, d1=%.4e F, poles:\n",
              mm.entry(0, 0).d0, mm.entry(0, 0).d1);
  for (const auto& p : mm.entry(0, 0).poles)
    std::printf("  %.4e %+.4ei rad/s\n", p.real(), p.imag());

  std::printf("\ndriving-point admittance magnitude |y11(j2pi f)|:\n");
  for (double f = 1e6; f <= 1e10; f *= 10)
    std::printf("  f=%9.1e Hz   |y11| = %.5e S\n", f,
                std::abs(mm.admittance(0, 0, {0.0, 2 * M_PI * f})));
  return 0;
}
