* two-pole RC demo deck for awesym_cli
Vin in 0 1
R1 in a 1k
C1 a 0 10p
R2 a out 2k
C2 out 0 5p
.symbol R2
.symbol C2
.input vin
.output out
.end
