// awesym_cli — command-line AWEsymbolic driver.
//
// Reads a SPICE-like deck (with .input/.output/.symbol directives), builds
// the compiled symbolic model, and serves the iterative use cases the
// paper targets: parameter sweeps, transient/AC queries, closed forms and
// C export — all from the shell.
//
// Usage:
//   awesym_cli <deck.sp> [options]
// Options:
//   --order N              Padé order (default 2)
//   --symbols a,b,...      override the deck's .symbol directives
//   --auto-symbols K       pick K symbols by AWEsensitivity ranking
//   --at v1,v2,...         evaluate at these symbol element values
//                          (default: the deck's nominal values)
//   --sweep name=lo:hi:n   sweep one symbol (repeatable once more for 2-D)
//   --mc N                 Monte-Carlo sweep of N points through the
//                          parallel sweep engine with the per-point
//                          degradation ladder; prints an ok/degraded/
//                          quarantined disposition summary
//   --seed S               Monte-Carlo seed (default 42)
//   --threads N            sweep worker threads, 0 = hardware (default 0)
//   --backend B            interpreter | native (default interpreter).
//                          native AOT-compiles the moment program to a
//                          content-addressed .so (see --cache-dir) and
//                          runs batch evaluations through it; degrades to
//                          the interpreter — visible in --health-json —
//                          when no C compiler is available
//   --cache-dir DIR        build through the persistent model cache under
//                          DIR (also where --backend native keeps its .so)
//   --mmap                 with --cache-dir: mmap a v4 cache hit in place
//                          (CompiledModel::map_file) instead of stream-
//                          parsing it — the zero-copy warm-open path
//   --shm NAME             publish the built model into a SharedModelStore
//                          backed by POSIX shared memory ("/NAME.g1") and
//                          evaluate through the pinned view — exercises
//                          the cross-process hot-swap path end to end
//   --dump-moments FILE    with --mc: write every point's ok flag and raw
//                          moments as deterministic text ("-" for stdout);
//                          byte-identical across thread counts, backings
//                          (heap/mmap/shm) and backends in strict mode
//   --health-json FILE     write the run's HealthReport as JSON
//                          ("-" for stdout)
//   --measure M            dc | p1 | funity | pm | t50   (default dc)
//   --transient T:N        print N step-response samples up to time T
//   --ac f0:f1:N           print an AC sweep table from the model
//   --closed-forms         print symbolic pole/gain closed forms
//   --exact                also run the traditional exact symbolic analysis
//                          and print H(s, e) (small circuits only)
//   --emit-c FILE          write the compiled moment program as C source
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "awe/ac.hpp"
#include "awe/sensitivity.hpp"
#include "circuit/parser.hpp"
#include "core/awesymbolic.hpp"
#include "core/cli_support.hpp"
#include "engine/sweep.hpp"
#include "exact/exact_symbolic.hpp"
#include "health/report.hpp"

namespace {

using namespace awe;

/// Set before argument parsing so even the usage() exit can flush a valid
/// --health-json report (DESIGN.md §16.5).
const cli::HealthJsonSink* g_health_sink = nullptr;

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s <deck.sp> [--order N] [--symbols a,b] [--auto-symbols K]\n"
               "          [--at v1,v2] [--sweep name=lo:hi:n] [--mc N] [--seed S]\n"
               "          [--threads N] [--backend interpreter|native] [--cache-dir DIR]\n"
               "          [--mmap] [--shm NAME] [--dump-moments FILE]\n"
               "          [--health-json FILE] [--measure M]\n"
               "          [--transient T:N] [--ac f0:f1:N] [--closed-forms]\n"
               "          [--emit-c FILE]\n",
               argv0);
  if (g_health_sink) g_health_sink->flush();
  std::exit(2);
}

std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::istringstream is(s);
  std::string t;
  while (std::getline(is, t, sep)) out.push_back(t);
  return out;
}

struct Sweep {
  std::string name;
  double lo = 0.0, hi = 0.0;
  std::size_t steps = 0;
  double at(std::size_t i) const {
    if (steps <= 1) return lo;
    return lo + (hi - lo) * static_cast<double>(i) / static_cast<double>(steps - 1);
  }
};

Sweep parse_sweep(const std::string& spec) {
  const auto eq = spec.find('=');
  if (eq == std::string::npos) throw std::runtime_error("bad --sweep spec: " + spec);
  const auto parts = split(spec.substr(eq + 1), ':');
  if (parts.size() != 3) throw std::runtime_error("bad --sweep range: " + spec);
  Sweep s;
  s.name = spec.substr(0, eq);
  s.lo = circuit::parse_spice_value(parts[0]);
  s.hi = circuit::parse_spice_value(parts[1]);
  s.steps = static_cast<std::size_t>(std::stoul(parts[2]));
  if (s.steps == 0) throw std::runtime_error("sweep needs at least 1 step");
  return s;
}

double measure(const engine::ReducedOrderModel& rom, const std::string& what) {
  if (what == "dc") return rom.dc_gain();
  if (what == "p1") {
    const auto p = rom.dominant_pole();
    return p ? p->real() : 0.0;
  }
  if (what == "funity") return rom.unity_gain_frequency();
  if (what == "pm") return rom.phase_margin_deg();
  if (what == "t50") {
    const auto dom = rom.dominant_pole();
    const double horizon = dom ? 50.0 / std::abs(dom->real()) : 1.0;
    const auto t = rom.step_crossing_time(0.5, horizon);
    return t ? *t : -1.0;
  }
  throw std::runtime_error("unknown --measure '" + what + "'");
}

}  // namespace

int main(int argc, char** argv) {
  cli::install_sigpipe_guard();
  const cli::HealthJsonSink sink = cli::HealthJsonSink::from_argv(argc, argv);
  g_health_sink = &sink;
  if (argc < 2) usage(argv[0]);
  std::string deck_path;
  std::size_t order = 2;
  std::optional<std::vector<std::string>> symbols_override;
  std::size_t auto_symbols = 0;
  std::optional<std::vector<double>> at_values;
  std::vector<Sweep> sweeps;
  std::string what = "dc";
  std::optional<std::pair<double, std::size_t>> transient;
  std::optional<std::tuple<double, double, std::size_t>> ac_req;
  bool closed_forms = false;
  bool want_exact = false;
  std::string emit_c_path;
  std::size_t mc_points = 0;
  std::uint64_t mc_seed = 42;
  std::size_t threads = 0;
  core::EvalBackend backend = core::EvalBackend::kInterpreter;
  std::string cache_dir;
  std::string health_json;
  std::string shm_name;
  std::string dump_moments;
  bool use_mmap = false;

  try {
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      auto next = [&]() -> std::string {
        if (++i >= argc) usage(argv[0]);
        return argv[i];
      };
      if (arg == "--order") {
        order = std::stoul(next());
      } else if (arg == "--symbols") {
        symbols_override = split(next(), ',');
      } else if (arg == "--auto-symbols") {
        auto_symbols = std::stoul(next());
      } else if (arg == "--at") {
        at_values.emplace();
        for (const auto& v : split(next(), ','))
          at_values->push_back(circuit::parse_spice_value(v));
      } else if (arg == "--sweep") {
        sweeps.push_back(parse_sweep(next()));
      } else if (arg == "--mc") {
        mc_points = std::stoul(next());
      } else if (arg == "--seed") {
        mc_seed = std::stoull(next());
      } else if (arg == "--threads") {
        threads = std::stoul(next());
      } else if (arg == "--backend") {
        const std::string b = next();
        if (b == "interpreter") {
          backend = core::EvalBackend::kInterpreter;
        } else if (b == "native") {
          backend = core::EvalBackend::kNative;
        } else {
          usage(argv[0]);
        }
      } else if (arg == "--cache-dir") {
        cache_dir = next();
      } else if (arg == "--mmap") {
        use_mmap = true;
      } else if (arg == "--shm") {
        shm_name = next();
      } else if (arg == "--dump-moments") {
        dump_moments = next();
      } else if (arg == "--health-json") {
        health_json = next();
      } else if (arg == "--measure") {
        what = next();
      } else if (arg == "--transient") {
        const auto p = split(next(), ':');
        if (p.size() != 2) usage(argv[0]);
        transient = {circuit::parse_spice_value(p[0]), std::stoul(p[1])};
      } else if (arg == "--ac") {
        const auto p = split(next(), ':');
        if (p.size() != 3) usage(argv[0]);
        ac_req = {circuit::parse_spice_value(p[0]), circuit::parse_spice_value(p[1]),
                  std::stoul(p[2])};
      } else if (arg == "--closed-forms") {
        closed_forms = true;
      } else if (arg == "--exact") {
        want_exact = true;
      } else if (arg == "--emit-c") {
        emit_c_path = next();
      } else if (arg.rfind("--", 0) == 0) {
        usage(argv[0]);
      } else {
        deck_path = arg;
      }
    }
    if (deck_path.empty()) usage(argv[0]);

    std::ifstream in(deck_path);
    if (!in) {
      std::fprintf(stderr, "cannot open deck '%s'\n", deck_path.c_str());
      sink.flush();
      return 1;
    }
    auto deck = circuit::parse_deck(in);
    for (const auto& problem : deck.netlist.validate())
      std::fprintf(stderr, "warning: %s\n", problem.c_str());
    if (deck.input_source.empty() || deck.output_node.empty()) {
      std::fprintf(stderr, "deck needs .input and .output directives\n");
      sink.flush();
      return 1;
    }
    const auto out_node = deck.netlist.find_node(deck.output_node);
    if (!out_node) {
      std::fprintf(stderr, "unknown .output node '%s'\n", deck.output_node.c_str());
      sink.flush();
      return 1;
    }

    std::vector<std::string> symbols =
        symbols_override ? *symbols_override : deck.symbol_elements;
    if (auto_symbols > 0)
      symbols = core::select_symbols(deck.netlist, deck.input_source, *out_node, order,
                                     auto_symbols);
    if (symbols.empty()) {
      std::fprintf(stderr,
                   "no symbols: use .symbol directives, --symbols or --auto-symbols\n");
      sink.flush();
      return 1;
    }

    core::BuildOptions build_opts;
    build_opts.cache_dir = cache_dir;
    build_opts.backend = backend;
    build_opts.map_model = use_mmap;
    core::CompiledModel built = core::CompiledModel::build(deck.netlist, symbols,
                                                           deck.input_source, *out_node,
                                                           {.order = order}, build_opts);

    // --shm: publish into a shared-memory hot-swap store and evaluate
    // through a pinned view of the published generation — every downstream
    // query below runs against the shm region, not the heap build.  (The
    // pinned copy shares the region; attaching the native backend to it is
    // a local property of this process, not of the published bytes.)
    std::optional<core::SharedModelStore> store;
    std::shared_ptr<core::CompiledModel> shared;
    if (!shm_name.empty()) {
      store.emplace(shm_name, core::SharedModelStore::Backing::kShm);
      store->publish(built);
      shared = std::make_shared<core::CompiledModel>(*store->acquire());
      if (backend == core::EvalBackend::kNative)
        (void)shared->attach_native(cache_dir);
    } else {
      shared = std::make_shared<core::CompiledModel>(std::move(built));
    }
    const core::CompiledModel& model = *shared;
    std::printf("model: order %zu, symbols", order);
    for (const auto& s : model.symbol_names()) std::printf(" %s", s.c_str());
    std::printf(", %zu ports, %zu compiled instructions", model.port_count(),
                model.instruction_count());
    if (backend == core::EvalBackend::kNative)
      std::printf(", native backend %s", model.has_native() ? "attached" : "fallback");
    if (model.view_backed()) std::printf(", view-backed [%s]", model.blob_origin().c_str());
    std::printf("\n\n");

    // Nominal values.
    std::vector<double> values;
    if (at_values) {
      values = *at_values;
      if (values.size() != symbols.size()) {
        std::fprintf(stderr, "--at needs %zu values\n", symbols.size());
        sink.flush();
        return 1;
      }
    } else {
      for (const auto& s : model.symbol_names())
        values.push_back(
            deck.netlist.elements()[*deck.netlist.find_element(s)].value);
    }

    if (closed_forms) {
      const auto names = model.symbol_names();
      std::printf("closed forms (internal symbols; R symbols enter as 1/R):\n");
      std::printf("  A0 = %s\n", model.dc_gain_expression().to_string(names).c_str());
      if (order == 1)
        std::printf("  p1 = %s\n",
                    model.first_order_pole_expression().to_string(names).c_str());
      if (order <= 2) {
        const auto den = model.symbolic_denominator();
        for (std::size_t j = 1; j < den.size(); ++j)
          std::printf("  b%zu = %s\n", j, den[j].to_string(names).c_str());
      }
      std::printf("\n");
    }

    if (want_exact) {
      try {
        const auto xf = exact::exact_symbolic_transfer(
            deck.netlist, symbols, deck.input_source, *out_node);
        std::printf("exact symbolic transfer function (variables: s, symbols):\n");
        std::printf("  H(s,e) = %s\n\n", xf.h.to_string(xf.variable_names).c_str());
      } catch (const std::exception& e) {
        std::printf("exact analysis unavailable: %s\n\n", e.what());
      }
    }

    if (!emit_c_path.empty()) {
      std::ofstream cf(emit_c_path);
      cf << model.export_c_source("awesym_moments");
      std::printf("compiled moment program written to %s\n\n", emit_c_path.c_str());
    }

    if (mc_points > 0) {
      // Monte-Carlo through the fault-contained sweep engine: lognormal
      // spread for positive nominals (element values are scale parameters),
      // normal otherwise.  Pathological draws degrade or quarantine per
      // point; the run itself never aborts.
      std::vector<sweep::Distribution> dists;
      for (const double v : values)
        dists.push_back(v > 0.0 ? sweep::Distribution::lognormal(v, 0.2)
                                : sweep::Distribution::normal(v, 0.1 * std::abs(v) + 1e-12));
      sweep::SweepOptions sopts;
      sopts.threads = threads;
      sopts.backend = backend;
      sopts.with_rom = true;
      const auto sr = sweep::monte_carlo(model, dists, mc_points, mc_seed, sopts);
      const auto& h = sr.health;
      std::printf("monte carlo: %zu points, seed %llu\n", mc_points,
                  static_cast<unsigned long long>(mc_seed));
      std::printf("  ok %llu, degraded %llu, quarantined %llu\n",
                  static_cast<unsigned long long>(h.points_ok),
                  static_cast<unsigned long long>(h.points_degraded),
                  static_cast<unsigned long long>(h.points_quarantined));
      std::printf("  ladder: %llu strict re-evals, %llu order fallbacks, %llu shifted refits\n",
                  static_cast<unsigned long long>(h.strict_reevals),
                  static_cast<unsigned long long>(h.order_fallbacks),
                  static_cast<unsigned long long>(h.shifted_refits));
      if (sr.dc_gain_stats && sr.dc_gain_stats->count > 0)
        std::printf("  dc gain: mean %.8g, stddev %.8g over %zu fitted points\n",
                    sr.dc_gain_stats->mean, sr.dc_gain_stats->stddev,
                    sr.dc_gain_stats->count);
      if (!dump_moments.empty()) {
        // Deterministic text for the CI byte-compare: per point, the ok
        // flag and every raw moment at full precision.  %.17g round-trips
        // IEEE doubles exactly, so bit-identical moments produce
        // byte-identical dumps — across thread counts, heap/mmap/shm
        // backings and backends (strict mode).
        std::FILE* out =
            dump_moments == "-" ? stdout : std::fopen(dump_moments.c_str(), "w");
        if (!out) throw std::runtime_error("cannot write " + dump_moments);
        std::fprintf(out, "# awesym_cli moment dump points=%zu symbols=%zu moments=%zu\n",
                     sr.num_points, sr.num_symbols, sr.num_moments);
        for (std::size_t p = 0; p < sr.num_points; ++p) {
          std::fprintf(out, "%zu %u", p, static_cast<unsigned>(sr.ok[p]));
          for (std::size_t k = 0; k < sr.num_moments; ++k)
            std::fprintf(out, " %.17g", sr.moment(k, p));
          std::fprintf(out, "\n");
          // A dump piped into "| head" closes stdout early; with SIGPIPE
          // ignored that shows up as a stream error.  The consumer got
          // what it wanted — stop writing and exit 0, not die.
          if (out == stdout && !cli::stdout_alive()) break;
        }
        if (out != stdout) {
          if (std::ferror(out) || std::fclose(out) != 0)
            throw std::runtime_error("short write to " + dump_moments);
        } else {
          std::clearerr(stdout);
        }
      }
      sink.flush_report(sr.health);
      return 0;
    }

    if (sweeps.empty()) {
      const auto rom = model.evaluate(values);
      std::printf("at nominal values: %s = %.8g\n", what.c_str(), measure(rom, what));
      if (transient) {
        std::printf("\nstep response:\n");
        for (std::size_t i = 0; i <= transient->second; ++i) {
          const double t =
              transient->first * static_cast<double>(i) / transient->second;
          std::printf("  %12.5e  %12.6f\n", t, rom.step_response(t));
        }
      }
      if (ac_req) {
        const auto [f0, f1, n] = *ac_req;
        std::printf("\nAC sweep (from the reduced model):\n");
        for (const double f : engine::AcAnalysis::log_space(f0, f1, n))
          std::printf("  %12.5e Hz  |H|=%12.6g  phase=%8.2f deg\n", f, rom.magnitude(f),
                      rom.phase_deg(f));
      }
      sink.flush();
      return 0;
    }

    // Sweeps (1-D or 2-D).
    auto index_of = [&](const std::string& name) -> std::size_t {
      const auto names = model.symbol_names();
      for (std::size_t i = 0; i < names.size(); ++i)
        if (names[i] == name) return i;
      throw std::runtime_error("sweep name '" + name + "' is not a symbol");
    };
    if (sweeps.size() == 1) {
      const auto& sw = sweeps[0];
      const std::size_t si = index_of(sw.name);
      std::printf("%-14s %-14s\n", sw.name.c_str(), what.c_str());
      for (std::size_t i = 0; i < sw.steps; ++i) {
        values[si] = sw.at(i);
        std::printf("%-14.6g %-14.6g\n", values[si], measure(model.evaluate(values), what));
      }
    } else {
      const auto& s0 = sweeps[0];
      const auto& s1 = sweeps[1];
      const std::size_t i0 = index_of(s0.name), i1 = index_of(s1.name);
      std::printf("%s \\ %s (%s)\n%-12s", s0.name.c_str(), s1.name.c_str(), what.c_str(),
                  "");
      for (std::size_t j = 0; j < s1.steps; ++j) std::printf(" %11.4g", s1.at(j));
      std::printf("\n");
      for (std::size_t i = 0; i < s0.steps; ++i) {
        values[i0] = s0.at(i);
        std::printf("%-12.4g", values[i0]);
        for (std::size_t j = 0; j < s1.steps; ++j) {
          values[i1] = s1.at(j);
          std::printf(" %11.5g", measure(model.evaluate(values), what));
        }
        std::printf("\n");
      }
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    health::HealthReport report;
    report.record_failure(health::fail_class_of(e));
    sink.flush_report(report);
    return 1;
  }
  sink.flush();
  return 0;
}
