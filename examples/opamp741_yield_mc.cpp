// Monte Carlo yield analysis of the 741 op-amp with the sweep engine.
//
// The paper's Table 1 argument taken to its statistical conclusion: once
// the symbolic model is compiled, a full manufacturing-variation study is
// just a batch of cheap program evaluations.  gout_q14 and c_comp — the
// two most AWE-sensitive elements (§2.3) — vary lognormally around their
// nominals; each sample is reduced to a pole/residue ROM and judged
// against a pole-location spec, all on every core through the
// static-chunked thread pool.
#include <cmath>
#include <cstdio>
#include <thread>
#include <vector>

#include "circuits/opamp741.hpp"
#include "core/awesymbolic.hpp"
#include "engine/sweep.hpp"

int main() {
  using namespace awe;
  auto amp = circuits::make_opamp741();
  std::printf("== 741 op-amp Monte Carlo yield (compiled symbolic model) ==\n\n");

  const auto model = core::CompiledModel::build(
      amp.netlist,
      {circuits::Opamp741Circuit::kSymbolGout, circuits::Opamp741Circuit::kSymbolCcomp},
      circuits::Opamp741Circuit::kInput, amp.out, {.order = 2});
  std::printf("compiled model: %zu instructions, %zu registers\n",
              model.instruction_count(), model.register_count());

  // Manufacturing spread: ~20%-sigma lognormal around the nominals.
  const circuits::Opamp741Values nominal;
  const std::vector<sweep::Distribution> process{
      sweep::Distribution::lognormal(nominal.gout_q14, 0.2),
      sweep::Distribution::lognormal(nominal.c_comp, 0.2)};

  // Spec: stable, and the dominant (compensation) pole still slow enough
  // for single-pole integrator behavior — |Re p1|/2pi below 8 Hz (the
  // nominal design sits near 6.5 Hz, so the spread straddles the limit).
  sweep::SweepOptions opts;
  opts.with_rom = true;
  opts.pass_predicate = [](const engine::ReducedOrderModel& rom) {
    const auto p1 = rom.dominant_pole();
    return rom.is_stable() && p1.has_value() &&
           std::abs(p1->real()) / (2.0 * M_PI) < 8.0;
  };

  const std::size_t n = 20000;
  const auto res = sweep::monte_carlo(model, process, n, /*seed=*/1992, opts);

  std::printf("samples: %zu  (evaluated ok: %zu, threads: %u)\n", res.num_points,
              res.ok_count, std::thread::hardware_concurrency());
  std::printf("\nDC gain  : mean %.4g  min %.4g  max %.4g  sigma %.3g\n",
              res.dc_gain_stats->mean, res.dc_gain_stats->min, res.dc_gain_stats->max,
              res.dc_gain_stats->stddev);

  // Dominant-pole spread straight from the recorded per-point ROM samples.
  double f_min = 1e300, f_max = 0.0, f_sum = 0.0;
  std::size_t fitted = 0;
  for (std::size_t p = 0; p < n; ++p) {
    if (res.rom->order[p] == 0) continue;
    double slowest = 1e300;
    for (std::size_t j = 0; j < res.rom->order[p]; ++j)
      slowest = std::min(slowest,
                         std::abs(res.rom->poles[p * res.rom->max_order + j].real()));
    const double f = slowest / (2.0 * M_PI);
    f_min = std::min(f_min, f);
    f_max = std::max(f_max, f);
    f_sum += f;
    ++fitted;
  }
  std::printf("dominant pole [Hz]: mean %.4g  min %.4g  max %.4g  (%zu fitted)\n",
              f_sum / static_cast<double>(fitted), f_min, f_max, fitted);

  std::printf("\nyield against pole-location spec (|Re p1|/2pi < 8 Hz, stable): %.2f%%\n",
              100.0 * res.yield());

  // Sanity for the integration-test harness: the nominal point must pass.
  const auto nominal_rom =
      model.evaluate(std::vector<double>{nominal.gout_q14, nominal.c_comp});
  if (!opts.pass_predicate(nominal_rom)) {
    std::printf("FAIL: nominal design does not meet its own spec\n");
    return 1;
  }
  if (res.ok_count != n || res.yield() <= 0.5) {
    std::printf("FAIL: unexpected evaluation failures or collapsed yield\n");
    return 1;
  }
  std::printf("nominal design passes spec; yield consistent.\n");
  return 0;
}
