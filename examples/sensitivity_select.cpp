// AWEsensitivity demo (paper §2.3): adjoint pole-zero sensitivities as an
// automatic mechanism for identifying symbolic elements.
//
// Analyzes an RC clock-tree interconnect, ranks every differentiable
// element by normalized pole sensitivity, then verifies the ranking by
// perturbing the top and bottom elements and measuring the actual change
// in the dominant pole.
#include <cmath>
#include <cstdio>

#include "awe/awe.hpp"
#include "awe/sensitivity.hpp"
#include "circuits/ladders.hpp"
#include "core/awesymbolic.hpp"

int main() {
  using namespace awe;
  circuits::TreeValues tv;
  tv.depth = 4;
  auto tree = circuits::make_rc_tree(tv);
  const auto& nl = tree.netlist;
  std::printf("== AWEsensitivity on a depth-%zu RC clock tree (%zu elements) ==\n\n",
              tv.depth, nl.elements().size());

  const std::size_t order = 2;
  const auto ranked = engine::rank_symbol_candidates(
      nl, circuits::TreeCircuit::kInput, tree.first_leaf, order);

  std::printf("normalized pole sensitivities (top 10 of %zu):\n", ranked.size());
  for (std::size_t i = 0; i < 10 && i < ranked.size(); ++i)
    std::printf("  %2zu. %-8s %.4e\n", i + 1, ranked[i].name.c_str(),
                ranked[i].normalized_sensitivity);
  std::printf("  ...\n  last: %-8s %.4e\n\n", ranked.back().name.c_str(),
              ranked.back().normalized_sensitivity);

  // Validate the ranking: perturb top vs bottom element by +20% and watch
  // the dominant pole move.
  auto dominant_pole_with = [&](const std::string& name, double factor) {
    circuit::Netlist mutated = nl;
    const auto idx = *mutated.find_element(name);
    mutated.set_value(idx, mutated.elements()[idx].value * factor);
    const auto rom = engine::run_awe(mutated, circuits::TreeCircuit::kInput,
                                     tree.first_leaf, {.order = order});
    return rom.dominant_pole()->real();
  };
  const double p_base = engine::run_awe(nl, circuits::TreeCircuit::kInput,
                                        tree.first_leaf, {.order = order})
                            .dominant_pole()
                            ->real();
  const double d_top =
      std::abs(dominant_pole_with(ranked.front().name, 1.2) - p_base) / std::abs(p_base);
  const double d_bot =
      std::abs(dominant_pole_with(ranked.back().name, 1.2) - p_base) / std::abs(p_base);
  std::printf("+20%% on top-ranked  '%s': dominant pole moves %.3f%%\n",
              ranked.front().name.c_str(), 100.0 * d_top);
  std::printf("+20%% on last-ranked '%s': dominant pole moves %.3f%%\n\n",
              ranked.back().name.c_str(), 100.0 * d_bot);

  // Use the top two as symbols and build the compiled model.
  const auto symbols = core::select_symbols(nl, circuits::TreeCircuit::kInput,
                                            tree.first_leaf, order, 2);
  std::printf("selected symbols: %s, %s\n", symbols[0].c_str(), symbols[1].c_str());
  const auto model = core::CompiledModel::build(
      nl, symbols, circuits::TreeCircuit::kInput, tree.first_leaf, {.order = order});
  std::printf("compiled model: %zu instructions over %zu ports\n\n",
              model.instruction_count(), model.port_count());

  // Validate the symbol choice over its range (paper: "it may be
  // necessary to validate the choice ... the cost of validation is low").
  std::printf("validation sweep of the symbolic model (50%% delay):\n");
  std::vector<double> nominal;
  for (const auto& s : symbols)
    nominal.push_back(nl.elements()[*nl.find_element(s)].value);
  for (const double f0 : {0.5, 1.0, 2.0}) {
    for (const double f1 : {0.5, 1.0, 2.0}) {
      const auto rom = model.evaluate(std::vector<double>{nominal[0] * f0,
                                                          nominal[1] * f1});
      std::printf("  %s x%.1f, %s x%.1f : t50 = %8.4f ns\n", symbols[0].c_str(), f0,
                  symbols[1].c_str(), f1, *rom.step_crossing_time(0.5, 1e-5) * 1e9);
    }
  }
  return 0;
}
