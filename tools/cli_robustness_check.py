#!/usr/bin/env python3
"""CLI hardening checks (DESIGN.md §16.5): SIGPIPE and health-JSON exits.

Every tool must (a) survive a consumer that closes the pipe early —
``awesym_cli --dump-moments - | head`` is success, not a SIGPIPE death —
and (b) flush well-formed ``--health-json`` on EVERY exit path: normal
runs, usage errors, unreadable decks, thrown build errors.

Usage:
  cli_robustness_check.py --awesym-cli BIN --awe-build BIN --awe-opt BIN \
      --deck DECK --workdir DIR
"""
import argparse
import json
import os
import signal
import subprocess
import sys


def check(cond, what):
    if not cond:
        raise SystemExit("FAIL: " + what)
    print("ok: " + what)


def run(cmd, **kw):
    return subprocess.run(cmd, capture_output=True, text=True, timeout=120, **kw)


def run_piped_to_closed_reader(cmd, lines=2):
    """Run cmd with stdout piped to a reader that exits after `lines` lines
    (the `| head` shape).  Returns the producer's exit status."""
    reader = subprocess.Popen(
        ["head", "-n", str(lines)], stdin=subprocess.PIPE,
        stdout=subprocess.DEVNULL)
    producer = subprocess.Popen(cmd, stdout=reader.stdin,
                                stderr=subprocess.DEVNULL)
    reader.stdin.close()
    reader.wait(timeout=120)
    producer.wait(timeout=120)
    return producer.returncode


def load_health(path, what):
    check(os.path.exists(path), what + " (file exists)")
    with open(path) as f:
        doc = json.load(f)
    check("fail_classes" in doc and "points" in doc,
          what + " (well-formed report)")
    return doc


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("--awesym-cli", required=True)
    ap.add_argument("--awe-build", required=True)
    ap.add_argument("--awe-opt", required=True)
    ap.add_argument("--deck", required=True)
    ap.add_argument("--workdir", required=True)
    args = ap.parse_args()
    os.makedirs(args.workdir, exist_ok=True)
    h = lambda name: os.path.join(args.workdir, name + ".json")
    cache = os.path.join(args.workdir, "cache")

    # --- SIGPIPE: a consumed-enough pipe is success, not a signal death ---
    rc = run_piped_to_closed_reader(
        [args.awesym_cli, args.deck, "--mc", "4096", "--dump-moments", "-"])
    check(rc == 0, "awesym_cli --dump-moments | head exits 0 (got %s)" % rc)

    rc = run_piped_to_closed_reader(
        [args.awe_build, "--cache-dir", cache, "--health-json", "-",
         args.deck], lines=1)
    check(rc == 0, "awe_build --health-json - | head exits 0 (got %s)" % rc)

    rc = run_piped_to_closed_reader(
        [args.awe_opt, "--measure", "pole1", "--mc", "64", "--grad-dump", "-",
         args.deck], lines=2)
    check(rc == 0, "awe_opt --grad-dump - | head exits 0 (got %s)" % rc)

    # Signal deaths would be negative returncodes; belt-and-braces.
    check(rc != -signal.SIGPIPE, "no tool died of SIGPIPE")

    # --- health JSON on every exit path ----------------------------------
    # Normal run.
    r = run([args.awesym_cli, args.deck, "--mc", "64",
             "--health-json", h("cli_ok")])
    check(r.returncode == 0, "awesym_cli normal run exits 0")
    doc = load_health(h("cli_ok"), "awesym_cli normal-run health JSON")
    check(doc["points"]["total"] == 64, "normal-run health counts the sweep")

    # Usage error: flag soup must still flush valid JSON before exit 2.
    r = run([args.awesym_cli, "--definitely-not-a-flag",
             "--health-json", h("cli_usage")])
    check(r.returncode == 2, "awesym_cli usage error exits 2")
    load_health(h("cli_usage"), "awesym_cli usage-error health JSON")

    # Unreadable deck.
    r = run([args.awesym_cli, os.path.join(args.workdir, "missing.sp"),
             "--health-json", h("cli_nodeck")])
    check(r.returncode == 1, "awesym_cli missing deck exits 1")
    load_health(h("cli_nodeck"), "awesym_cli missing-deck health JSON")

    r = run([args.awe_build, "--cache-dir", cache,
             os.path.join(args.workdir, "missing.sp"),
             "--health-json", h("build_nodeck")])
    check(r.returncode == 2, "awe_build missing deck exits 2")
    load_health(h("build_nodeck"), "awe_build missing-deck health JSON")

    r = run([args.awe_build, "--health-json", h("build_usage")])
    check(r.returncode == 2, "awe_build usage error exits 2")
    load_health(h("build_usage"), "awe_build usage-error health JSON")

    # Thrown build error records its fail class in the report.
    r = run([args.awe_opt, "--measure", "pole1",
             os.path.join(args.workdir, "missing.sp"),
             "--health-json", h("opt_nodeck")])
    check(r.returncode == 2, "awe_opt missing deck exits 2")
    doc = load_health(h("opt_nodeck"), "awe_opt missing-deck health JSON")
    check(sum(doc["fail_classes"].values()) >= 1,
          "awe_opt early-exit report records a fail class")

    print("PASS: cli robustness checks")
    return 0


if __name__ == "__main__":
    sys.exit(main())
