// awe_loadgen — concurrent load generator for awe_serve (DESIGN.md §16).
//
// Thin CLI over serve::loadgen::run_campaign — the SAME campaign code
// bench_serve_latency times for the committed perf baseline, so the CLI's
// percentiles and the gated bench rows can never disagree.
//
// Usage:
//   awe_loadgen (--unix PATH | --host H --port P) [options]
// Options:
//   --connections N    concurrent client connections (default 4)
//   --requests N       requests per connection (default 32)
//   --duration-ms T    stop after T ms instead of a fixed count
//   --op ping|eval     request kind (default eval)
//   --mc N             eval via server-side Monte Carlo of N points (default 64)
//   --deadline-ms D    attach a per-request deadline
//   --summary          ask for summary responses (no per-point moments)
//   --seed S           base seed; connection c uses S+c (default 1)
//   --timeout-ms T     client-side response timeout (default 30000)
//   --json             emit one machine-readable JSON summary line
//   --quiet            suppress the human summary
//
// Exit status: 0 when every connection completed its protocol (shed and
// deadline-expired responses are VALID protocol outcomes — the daemon
// degrading under load is what they measure); 1 when any connection hit a
// transport error or a malformed response.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "core/cli_support.hpp"
#include "serve/loadgen.hpp"

namespace {

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s (--unix PATH | --host H --port P) [--connections N]\n"
               "          [--requests N] [--duration-ms T] [--op ping|eval] [--mc N]\n"
               "          [--deadline-ms D] [--summary] [--seed S] [--timeout-ms T]\n"
               "          [--json] [--quiet]\n",
               argv0);
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace awe;
  cli::install_sigpipe_guard();
  serve::loadgen::CampaignOptions opt;
  bool json = false;
  bool quiet = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) usage(argv[0]);
      return argv[++i];
    };
    if (arg == "--unix") opt.unix_path = next();
    else if (arg == "--host") opt.host = next();
    else if (arg == "--port") opt.port = static_cast<std::uint16_t>(std::strtoul(next(), nullptr, 10));
    else if (arg == "--connections") opt.connections = std::strtoull(next(), nullptr, 10);
    else if (arg == "--requests") opt.requests = std::strtoull(next(), nullptr, 10);
    else if (arg == "--duration-ms") opt.duration_ms = std::strtoull(next(), nullptr, 10);
    else if (arg == "--op") opt.op = next();
    else if (arg == "--mc") opt.mc = std::strtoull(next(), nullptr, 10);
    else if (arg == "--deadline-ms") opt.deadline_ms = std::strtoull(next(), nullptr, 10);
    else if (arg == "--summary") opt.summary = true;
    else if (arg == "--seed") opt.seed = std::strtoull(next(), nullptr, 10);
    else if (arg == "--timeout-ms") opt.timeout_ms = std::strtoull(next(), nullptr, 10);
    else if (arg == "--json") json = true;
    else if (arg == "--quiet") quiet = true;
    else usage(argv[0]);
  }
  if ((opt.unix_path.empty() && opt.port == 0) ||
      (!opt.unix_path.empty() && opt.port != 0) ||
      (opt.op != "ping" && opt.op != "eval") || opt.connections == 0)
    usage(argv[0]);

  const serve::loadgen::CampaignResult res = serve::loadgen::run_campaign(opt);
  const double p50 = res.percentile_us(50);
  const double p90 = res.percentile_us(90);
  const double p99 = res.percentile_us(99);

  if (!quiet)
    std::printf(
        "awe_loadgen: %zu conns — %llu ok, %llu shed, %llu deadline-expired, %llu errors\n"
        "  latency_us p50=%.1f p90=%.1f p99=%.1f  requests_per_s=%.1f\n",
        opt.connections, static_cast<unsigned long long>(res.ok),
        static_cast<unsigned long long>(res.shed),
        static_cast<unsigned long long>(res.deadline_expired),
        static_cast<unsigned long long>(res.errors), p50, p90, p99,
        res.requests_per_s());
  if (json)
    std::printf(
        "{\"ok\":%llu,\"shed\":%llu,\"deadline_expired\":%llu,\"errors\":%llu,"
        "\"latency_p50_us\":%.1f,\"latency_p90_us\":%.1f,\"latency_p99_us\":%.1f,"
        "\"requests_per_s\":%.1f,\"transport_error\":%s}\n",
        static_cast<unsigned long long>(res.ok),
        static_cast<unsigned long long>(res.shed),
        static_cast<unsigned long long>(res.deadline_expired),
        static_cast<unsigned long long>(res.errors), p50, p90, p99,
        res.requests_per_s(), res.transport_error ? "true" : "false");
  return res.transport_error ? 1 : 0;
}
