#!/usr/bin/env python3
"""Fault-matrix driver for awe_serve (DESIGN.md §16).

Each scenario starts a daemon, speaks the raw line-delimited JSON protocol
over its unix socket, injects one fault, and asserts the daemon's counters
and survival.  Used by the tool_awe_serve_smoke ctest and every leg of the
serve-robustness CI job.

  serve_probe.py --serve BIN --loadgen BIN --deck FILE --workdir DIR SCENARIO

Scenarios: smoke slow-client oversized poisoned backpressure deadline
           watchdog failpoints reload kill9 drain
"""

import argparse
import json
import os
import shutil
import signal
import socket
import subprocess
import sys
import time


class Probe:
    def __init__(self, args):
        self.args = args
        self.workdir = args.workdir
        os.makedirs(self.workdir, exist_ok=True)
        self.sock_path = os.path.join(self.workdir, "serve.sock")
        self.ready_file = os.path.join(self.workdir, "ready")
        self.health_file = os.path.join(self.workdir, "health.json")
        self.proc = None
        self.bufs = {}  # per-socket residue past the last consumed line

    # -- daemon lifecycle --------------------------------------------------

    def start(self, extra=(), env_extra=None, wait=True):
        for stale in (self.ready_file, self.sock_path):
            if os.path.exists(stale):
                os.unlink(stale)
        cmd = [
            self.args.serve,
            "--deck", self.args.deck,
            "--unix", self.sock_path,
            "--ready-file", self.ready_file,
            "--health-json", self.health_file,
        ] + list(extra)
        env = dict(os.environ)
        env.pop("AWE_FAILPOINTS", None)
        if env_extra:
            env.update(env_extra)
        self.proc = subprocess.Popen(cmd, env=env)
        if wait:
            self.wait_ready()
        return self.proc

    def wait_ready(self, timeout=30.0):
        deadline = time.time() + timeout
        while time.time() < deadline:
            if self.proc.poll() is not None:
                raise SystemExit("FAIL: daemon exited during startup (rc=%d)"
                                 % self.proc.returncode)
            if os.path.exists(self.ready_file):
                return
            time.sleep(0.05)
        raise SystemExit("FAIL: daemon never became ready")

    def terminate(self, sig=signal.SIGTERM, timeout=30.0):
        self.proc.send_signal(sig)
        try:
            rc = self.proc.wait(timeout=timeout)
        except subprocess.TimeoutExpired:
            self.proc.kill()
            raise SystemExit("FAIL: daemon did not exit after signal")
        return rc

    # -- protocol ----------------------------------------------------------

    def connect(self, timeout=30.0):
        s = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        s.settimeout(timeout)
        s.connect(self.sock_path)
        return s

    @staticmethod
    def send_line(sock, obj):
        sock.sendall((json.dumps(obj) + "\n").encode())

    def read_line(self, sock, timeout=30.0):
        # Responses can coalesce into one recv(); keep the residue per
        # socket so back-to-back reads never drop a line.
        sock.settimeout(timeout)
        buf = self.bufs.get(sock, b"")
        while b"\n" not in buf:
            chunk = sock.recv(65536)
            if not chunk:
                raise ConnectionError("connection closed mid-response")
            buf += chunk
        line, _, rest = buf.partition(b"\n")
        self.bufs[sock] = rest
        return json.loads(line.decode())

    def request(self, sock, obj, timeout=30.0):
        self.send_line(sock, obj)
        return self.read_line(sock, timeout)

    def one_shot(self, obj, timeout=30.0):
        s = self.connect()
        try:
            return self.request(s, obj, timeout)
        finally:
            s.close()

    def status(self):
        return self.one_shot({"op": "status"})

    def loadgen(self, extra=()):
        cmd = [self.args.loadgen, "--unix", self.sock_path, "--json",
               "--quiet"] + list(extra)
        out = subprocess.run(cmd, capture_output=True, text=True, timeout=120)
        if out.returncode != 0:
            raise SystemExit("FAIL: loadgen rc=%d stderr=%s"
                             % (out.returncode, out.stderr))
        return json.loads(out.stdout.strip().splitlines()[-1])


def check(cond, what):
    if not cond:
        raise SystemExit("FAIL: " + what)
    print("ok: " + what)


def read_health(probe):
    with open(probe.health_file) as f:
        return json.load(f)


# -- scenarios -------------------------------------------------------------

def scenario_smoke(p):
    p.start(["--workers", "2", "--quiet"])
    r = p.one_shot({"op": "ping", "id": 7})
    check(r["ok"] and r["op"] == "ping" and r["id"] == 7, "ping answers with id echo")
    info = p.one_shot({"op": "info"})
    check(info["ok"] and len(info["symbols"]) >= 1, "info lists symbols")
    nsym = len(info["symbols"])
    point = info["nominal"]
    ev = p.one_shot({"op": "eval", "points": [point, point]})
    check(ev["ok"] and ev["num_points"] == 2 and ev["ok_points"] == 2,
          "explicit-points eval evaluates both points")
    check(len(ev["moments"]) == 2 and len(ev["moments"][0]) == info["moment_count"],
          "eval returns per-point moments")
    mc = p.one_shot({"op": "eval", "mc": 32, "seed": 5, "summary": True})
    check(mc["ok"] and mc["num_points"] == 32 and "moments" not in mc,
          "mc eval with summary omits moments")
    mc2 = p.one_shot({"op": "eval", "mc": 32, "seed": 5, "summary": True})
    check(mc["moment_stats"] == mc2["moment_stats"],
          "same (mc, seed) is deterministic")
    bad = p.one_shot({"op": "eval", "points": [[1.0] * (nsym + 3)]})
    check(not bad["ok"] and bad["error"] == "bad_request",
          "wrong-arity point is a bad_request, not a death")
    lg = p.loadgen(["--connections", "4", "--requests", "8", "--mc", "16",
                    "--summary"])
    check(lg["ok"] == 32 and not lg["transport_error"], "loadgen smoke all ok")
    st = p.status()
    check(st["stats"]["requests"] >= 35, "status counts admitted evals")
    check(st["generation"] == 1, "still on generation 1")
    rc = p.terminate()
    check(rc == 0, "SIGTERM drain exits 0")
    h = read_health(p)
    check(h["serve"]["requests"] >= 35, "health JSON carries serve counters")


def scenario_slow_client(p):
    p.start(["--read-stall-ms", "200", "--quiet"])
    s = p.connect()
    s.sendall(b'{"op":"ping"')  # start a line, never finish it
    time.sleep(1.0)
    # The daemon must have evicted us: either the (courtesy) error line
    # arrives and then EOF, or the socket just resets.
    try:
        data = s.recv(65536)
        while data and b"\n" not in data:
            data += s.recv(65536)
    except OSError:
        data = b""
    s.close()
    st = p.status()
    check(st["stats"]["evicted"] >= 1, "mid-line stall was evicted")
    r = p.one_shot({"op": "ping"})
    check(r["ok"], "daemon serves after evicting the slow client")
    check(p.terminate() == 0, "clean exit")


def scenario_oversized(p):
    p.start(["--max-line-bytes", "1024", "--quiet"])
    s = p.connect()
    s.sendall(b'{"op":"eval","points":[[' + b"1.0," * 4096 + b"1.0]]}\n")
    try:
        resp = p.read_line(s, timeout=10.0)
        check(not resp["ok"], "oversized request answered with an error")
    except OSError:
        pass  # eviction without a courtesy line is also acceptable
    s.close()
    st = p.status()
    check(st["stats"]["evicted"] >= 1, "oversized request evicted")
    check(p.one_shot({"op": "ping"})["ok"], "daemon serves after oversized request")
    check(p.terminate() == 0, "clean exit")


def scenario_poisoned(p):
    # thread_pool.task=once poisons exactly one sweep task: that request
    # must come back with quarantined points, not take the daemon down.
    p.start(["--workers", "1", "--quiet"],
            env_extra={"AWE_FAILPOINTS": "thread_pool.task=once"})
    ev = p.one_shot({"op": "eval", "mc": 64, "summary": True})
    check(ev["ok"] and ev["quarantined"] >= 1,
          "poisoned request contained as quarantined points")
    ev2 = p.one_shot({"op": "eval", "mc": 64, "summary": True})
    check(ev2["ok"] and ev2["quarantined"] == 0, "next request is clean")
    st = p.status()
    check(st["fail_classes"]["injected-fault"] >= 1
          or st["fail_classes"]["task-exception"] >= 1,
          "status records the injected fault class")
    check(p.terminate() == 0, "clean exit")


def scenario_backpressure(p):
    p.start(["--workers", "1", "--max-queue", "1", "--debug-ops", "--quiet"])
    a = p.connect()
    p.send_line(a, {"op": "sleep", "ms": 1500})
    deadline = time.time() + 5
    while time.time() < deadline:
        if p.status()["executing"] >= 1:
            break
        time.sleep(0.02)
    check(p.status()["executing"] >= 1, "sleep occupies the worker")
    b = p.connect()
    results = []
    for i in range(3):
        p.send_line(b, {"op": "eval", "mc": 8, "summary": True, "id": i})
    for _ in range(3):
        results.append(p.read_line(b, timeout=30.0))
    shed = [r for r in results if not r["ok"] and r["error"] == "overloaded"]
    check(len(shed) >= 1, "queue overflow sheds with overloaded")
    check(all("retry_after_ms" in r for r in shed), "shed carries retry_after_ms")
    p.read_line(a, timeout=30.0)  # sleep completes
    a.close()
    b.close()
    st = p.status()
    check(st["stats"]["shed"] >= 1, "status counts shed requests")
    check(p.terminate() == 0, "clean exit")


def scenario_deadline(p):
    p.start(["--workers", "1", "--debug-ops", "--quiet"])
    s = p.connect()
    r = p.request(s, {"op": "eval", "mc": 256, "summary": True,
                      "cancel_after_checks": 1})
    check(r["ok"] and r["deadline_expired"] and r["deadline_points"] >= 1,
          "mid-sweep expiry returns partial kDeadline accounting")
    check(r["num_points"] == r["ok_points"] + r["degraded"] + r["quarantined"],
          "partial result is fully accounted")
    r2 = p.request(s, {"op": "eval", "mc": 32, "summary": True})
    check(r2["ok"] and not r2["deadline_expired"],
          "same connection serves the next request cleanly")
    s.close()
    st = p.status()
    check(st["stats"]["deadline_expired"] == 1, "exactly one deadline expiry counted")
    check(st["fail_classes"]["deadline"] >= 1, "deadline fail class recorded")
    check(p.terminate() == 0, "clean exit")


def scenario_watchdog(p):
    p.start(["--workers", "1", "--debug-ops", "--watchdog",
             "--watchdog-interval-ms", "50", "--watchdog-grace-ms", "100",
             "--quiet"])
    t0 = time.time()
    r = p.one_shot({"op": "sleep", "ms": 30000}, timeout=30.0)
    elapsed = time.time() - t0
    check(r["ok"] and r["cancelled"], "watchdog cancelled the wedged worker")
    check(elapsed < 10.0, "wedge freed well before its natural end")
    st = p.status()
    check(st["stats"]["watchdog_kicks"] >= 1, "watchdog kick counted")
    check(p.one_shot({"op": "ping"})["ok"], "daemon serves after the kick")
    check(p.terminate() == 0, "clean exit")


def scenario_failpoints(p):
    # serve.accept=once: first accepted connection is dropped, second works.
    p.start(["--quiet"], env_extra={"AWE_FAILPOINTS": "serve.accept=once"})
    dropped = False
    try:
        p.one_shot({"op": "ping"}, timeout=5.0)
    except OSError:
        dropped = True
    check(dropped, "first connection dropped by serve.accept injection")
    r = p.one_shot({"op": "ping"})
    check(r["ok"], "connection after serve.accept injection works")
    st = p.status()
    check(st["stats"]["accept_faults"] == 1, "accept fault counted once")
    check(p.terminate() == 0, "clean exit after serve.accept")

    # serve.read=once: first request line triggers an injected read fault.
    p.start(["--quiet"], env_extra={"AWE_FAILPOINTS": "serve.read=once"})
    faulted = False
    try:
        p.one_shot({"op": "ping"}, timeout=5.0)
    except OSError:
        faulted = True
    check(faulted, "first read faulted by serve.read injection")
    check(p.one_shot({"op": "ping"})["ok"], "read after serve.read injection works")
    st = p.status()
    check(st["stats"]["evicted"] >= 1, "read fault evicted the connection")
    check(p.terminate() == 0, "clean exit after serve.read")

    # serve.swap=once: the first reload attempt fails, backoff retries win.
    p.start(["--reload-backoff-ms", "10", "--quiet"],
            env_extra={"AWE_FAILPOINTS": "serve.swap=once"})
    r = p.one_shot({"op": "reload"})
    check(r["ok"] and r["generation"] == 2 and r["attempts"] == 2,
          "reload succeeded on the retry after serve.swap")
    st = p.status()
    check(st["stats"]["reload_failures"] == 1 and st["stats"]["reloads_ok"] == 1,
          "one failed attempt, one success counted")
    check(p.one_shot({"op": "eval", "mc": 8, "summary": True})["generation"] == 2,
          "evals now pin the new generation")
    check(p.terminate() == 0, "clean exit after serve.swap")


def scenario_reload(p):
    p.start(["--workers", "2", "--quiet"])
    g1 = p.one_shot({"op": "eval", "mc": 32, "summary": True})
    check(g1["ok"] and g1["generation"] == 1, "first eval pins generation 1")
    # Hot swap while a concurrent eval stream runs: generations only move
    # forward and every response is internally consistent.
    import threading
    results = []
    def hammer():
        s = p.connect()
        for _ in range(10):
            results.append(p.request(s, {"op": "eval", "mc": 16, "summary": True}))
        s.close()
    t = threading.Thread(target=hammer)
    t.start()
    r = p.one_shot({"op": "reload"})
    check(r["ok"] and r["generation"] == 2, "reload publishes generation 2")
    t.join()
    gens = [r["generation"] for r in results if r.get("ok")]
    check(len(gens) == 10, "all concurrent evals answered during the swap")
    check(all(g in (1, 2) for g in gens) and sorted(gens) == gens,
          "generations seen by the stream are monotonic")
    final = p.one_shot({"op": "eval", "mc": 16, "summary": True})
    check(final["generation"] == 2, "post-swap evals use the new generation")
    check(p.terminate() == 0, "clean exit")


def scenario_kill9(p):
    cache = os.path.join(p.workdir, "cache")
    shutil.rmtree(cache, ignore_errors=True)
    shm = "awe_probe_%d" % os.getpid()
    flags = ["--shm", shm, "--cache-dir", cache, "--quiet"]
    p.start(flags)
    check(p.one_shot({"op": "eval", "mc": 32, "summary": True})["ok"],
          "eval works before the crash")
    lg = subprocess.Popen([p.args.loadgen, "--unix", p.sock_path,
                           "--duration-ms", "4000", "--mc", "16", "--quiet"])
    time.sleep(0.5)
    p.proc.kill()  # SIGKILL mid-load: no drain, no cleanup
    p.proc.wait()
    lg.wait(timeout=30)  # loadgen must notice and exit, not hang
    # Restart against the SAME shm name, unix path, and cache directory.
    p.start(flags)
    check(p.one_shot({"op": "ping"})["ok"], "restart after kill -9 serves")
    ev = p.one_shot({"op": "eval", "mc": 32, "summary": True})
    check(ev["ok"] and ev["generation"] == 1, "restart republished generation 1")
    bad = [f for f in os.listdir(cache) if f.endswith(".bad")]
    check(not bad, "no .bad quarantine leakage after kill -9 (%r)" % bad)
    check(p.terminate() == 0, "clean exit after restart")


def scenario_drain(p):
    p.start(["--workers", "1", "--debug-ops", "--drain-timeout-ms", "10000",
             "--quiet"])
    a = p.connect()
    p.send_line(a, {"op": "sleep", "ms": 1000, "id": 1})
    deadline = time.time() + 5
    while time.time() < deadline and p.status()["executing"] < 1:
        time.sleep(0.02)
    b = p.connect()
    p.send_line(b, {"op": "eval", "mc": 16, "summary": True, "id": 2})
    time.sleep(0.1)  # let the eval reach the queue
    p.proc.send_signal(signal.SIGTERM)
    r1 = p.read_line(a, timeout=30.0)
    check(r1["ok"] and r1["id"] == 1, "in-flight sleep completed during drain")
    r2 = p.read_line(b, timeout=30.0)
    check(r2["ok"] and r2["id"] == 2, "queued eval answered during drain")
    rc = p.proc.wait(timeout=30)
    check(rc == 0, "drain exits 0")
    a.close()
    b.close()
    h = read_health(p)
    check(h["serve"]["requests"] >= 1, "drained daemon flushed health JSON")


SCENARIOS = {
    "smoke": scenario_smoke,
    "slow-client": scenario_slow_client,
    "oversized": scenario_oversized,
    "poisoned": scenario_poisoned,
    "backpressure": scenario_backpressure,
    "deadline": scenario_deadline,
    "watchdog": scenario_watchdog,
    "failpoints": scenario_failpoints,
    "reload": scenario_reload,
    "kill9": scenario_kill9,
    "drain": scenario_drain,
}


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("--serve", required=True)
    ap.add_argument("--loadgen", required=True)
    ap.add_argument("--deck", required=True)
    ap.add_argument("--workdir", required=True)
    ap.add_argument("scenario", choices=sorted(SCENARIOS) + ["all"])
    args = ap.parse_args()

    names = sorted(SCENARIOS) if args.scenario == "all" else [args.scenario]
    for name in names:
        print("=== scenario: %s ===" % name)
        probe = Probe(args)
        try:
            SCENARIOS[name](probe)
        finally:
            if probe.proc and probe.proc.poll() is None:
                probe.proc.kill()
                probe.proc.wait()
    print("PASS: %s" % ", ".join(names))


if __name__ == "__main__":
    main()
