// awe_opt — gradient-driven design optimization over compiled models
// (DESIGN.md §14).
//
// Built on the reverse-mode gradient subsystem: the deck's symbolic
// elements are the design variables, their exact compiled gradients drive
// nominal re-centering (hit a performance target) and worst-case corner
// search, and the batched sweep engine scores the result statistically
// (Monte Carlo yield before vs after).  Also the workhorse behind the
// gradient-determinism CI job: --grad-dump writes every sweep gradient as
// deterministic text, byte-compared across thread counts and backends.
//
// Usage:
//   awe_opt [options] deck.sp
// Options:
//   --order Q         Padé order (default 2)
//   --measure M       dcgain | elmore | pole1 (default pole1)
//   --target V        re-center the nominal so the measure hits V
//                     (log-space Gauss-Newton on the exact gradients)
//   --corners FRAC    worst/best-case corner search over the box
//                     [value*(1-FRAC), value*(1+FRAC)] per symbol
//   --mc N            Monte Carlo sample count for the yield study
//                     (lognormal around the nominal; with --target the
//                     yield is reported before AND after re-centering)
//   --sigma S         lognormal sigma for --mc (default 0.2)
//   --seed S          Monte Carlo seed (default 1992)
//   --spec-pole-hz F  yield spec: stable AND |Re p1|/2pi < F
//   --grad-dump FILE  run a gradient sweep over the --mc points and write
//                     moments, gradients and pole sensitivities as
//                     deterministic text ("-" for stdout) — byte-identical
//                     across thread counts in strict mode
//   --threads N       sweep workers, 0 = hardware (default 1)
//   --width W         sweep lane-block width (default 64)
//   --fast            EvalMode::kFast (default strict)
//   --native          AOT-compile the model and run kNative batches
//   --cache-dir DIR   persistent model cache to build through
//   --mmap            with --cache-dir: mmap a v4 cache hit in place
//                     instead of stream-parsing it (zero-copy warm open)
//   --health-json F   write a HealthReport as JSON to F ("-" for stdout)
//   --quiet           suppress the narrative lines
// Exit status: 0 on success, 1 when a requested optimization failed to
// improve/converge, 2 on bad usage or deck errors.
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <optional>
#include <string>
#include <vector>

#include "circuit/parser.hpp"
#include "core/cli_support.hpp"
#include "core/model_cache.hpp"
#include "engine/optimize.hpp"
#include "engine/sweep.hpp"
#include "health/report.hpp"

namespace {

using namespace awe;

/// Bound before argument parsing so usage() and every early exit still
/// flush a valid --health-json report (DESIGN.md §16.5).
const cli::HealthJsonSink* g_health_sink = nullptr;

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--order Q] [--measure dcgain|elmore|pole1] [--target V]\n"
               "          [--corners FRAC] [--mc N] [--sigma S] [--seed S]\n"
               "          [--spec-pole-hz F] [--grad-dump FILE] [--threads N]\n"
               "          [--width W] [--fast] [--native] [--cache-dir DIR] [--mmap]\n"
               "          [--health-json FILE] [--quiet] deck.sp\n",
               argv0);
  if (g_health_sink) g_health_sink->flush();
  std::exit(2);
}

/// Deterministic text serialization of a gradient sweep: every value
/// printed with %.17g (round-trips doubles exactly), rows in a fixed
/// order — so strict-mode runs byte-agree whatever the thread count.
void dump_gradients(std::FILE* out, const sweep::SweepResult& res) {
  // When dumping to stdout a downstream "| head" may close the pipe at any
  // row; under the SIGPIPE guard that surfaces as a stream error — stop
  // emitting (the consumer is done), don't die mid-dump.
  const bool to_stdout = out == stdout;
  const auto gone = [to_stdout] { return to_stdout && !cli::stdout_alive(); };
  std::fprintf(out, "# awe_opt grad dump points=%zu symbols=%zu moments=%zu\n",
               res.num_points, res.num_symbols, res.num_moments);
  for (std::size_t p = 0; p < res.num_points; ++p)
    std::fprintf(out, "ok %zu %u\n", p, static_cast<unsigned>(res.ok[p]));
  if (gone()) return;
  for (std::size_t k = 0; k < res.num_moments; ++k) {
    for (std::size_t p = 0; p < res.num_points; ++p)
      std::fprintf(out, "m %zu %zu %.17g\n", k, p, res.moment(k, p));
    if (gone()) return;
  }
  for (std::size_t i = 0; i < res.num_symbols; ++i) {
    for (std::size_t k = 0; k < res.num_moments; ++k)
      for (std::size_t p = 0; p < res.num_points; ++p)
        std::fprintf(out, "g %zu %zu %zu %.17g\n", i, k, p, res.gradient(i, k, p));
    if (gone()) return;
  }
  if (res.sensitivities) {
    const sweep::SensitivitySamples& ss = *res.sensitivities;
    for (std::size_t p = 0; p < res.num_points; ++p) {
      std::fprintf(out, "sok %zu %u\n", p, static_cast<unsigned>(ss.ok[p]));
      for (std::size_t j = 0; j < ss.max_order; ++j)
        for (std::size_t i = 0; i < ss.num_symbols; ++i) {
          const auto d = ss.dpole[(p * ss.max_order + j) * ss.num_symbols + i];
          std::fprintf(out, "s %zu %zu %zu %.17g %.17g\n", p, j, i, d.real(), d.imag());
        }
      if (gone()) return;
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  cli::install_sigpipe_guard();
  const cli::HealthJsonSink sink = cli::HealthJsonSink::from_argv(argc, argv);
  g_health_sink = &sink;
  core::ModelOptions mopts;
  mopts.with_gradients = true;
  core::BuildOptions bopts;
  sweep::SweepOptions sopts;
  sopts.threads = 1;
  opt::Measure measure = opt::Measure::kPole1Hz;
  std::optional<double> target;
  std::optional<double> corners_frac;
  std::size_t mc_n = 0;
  double mc_sigma = 0.2;
  std::uint64_t mc_seed = 1992;
  std::optional<double> spec_pole_hz;
  std::string grad_dump, cache_dir, health_json, deck_path;
  bool quiet = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) usage(argv[0]);
      return argv[++i];
    };
    if (arg == "--order") {
      mopts.order = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--measure") {
      if (!opt::parse_measure(next(), measure)) usage(argv[0]);
    } else if (arg == "--target") {
      target = std::strtod(next(), nullptr);
    } else if (arg == "--corners") {
      corners_frac = std::strtod(next(), nullptr);
      if (!(*corners_frac > 0.0 && *corners_frac < 1.0)) usage(argv[0]);
    } else if (arg == "--mc") {
      mc_n = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--sigma") {
      mc_sigma = std::strtod(next(), nullptr);
    } else if (arg == "--seed") {
      mc_seed = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--spec-pole-hz") {
      spec_pole_hz = std::strtod(next(), nullptr);
    } else if (arg == "--grad-dump") {
      grad_dump = next();
    } else if (arg == "--threads") {
      sopts.threads = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--width") {
      sopts.batch_width = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--fast") {
      sopts.mode = core::EvalMode::kFast;
    } else if (arg == "--native") {
      bopts.backend = core::EvalBackend::kNative;
      sopts.backend = core::EvalBackend::kNative;
    } else if (arg == "--cache-dir") {
      cache_dir = next();
    } else if (arg == "--mmap") {
      bopts.map_model = true;
    } else if (arg == "--health-json") {
      health_json = next();
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (!arg.empty() && arg[0] == '-') {
      usage(argv[0]);
    } else if (deck_path.empty()) {
      deck_path = arg;
    } else {
      usage(argv[0]);
    }
  }
  if (deck_path.empty() || mopts.order < 1) usage(argv[0]);
  bopts.cache_dir = cache_dir;

  int exit_code = 0;
  try {
    std::ifstream in(deck_path);
    if (!in) throw std::runtime_error("cannot open deck");
    const circuit::ParsedDeck deck = circuit::parse_deck(in);
    if (deck.symbol_elements.empty() || deck.input_source.empty() ||
        deck.output_node.empty())
      throw std::runtime_error("deck needs .symbol/.input/.output directives");

    const auto model =
        core::CompiledModel::build(deck.netlist, deck.symbol_elements, deck.input_source,
                                   deck.output_node, mopts, bopts);
    const std::size_t nsym = model.symbol_count();

    // The deck's symbol element values are the nominal design point.
    std::vector<double> nominal(nsym);
    {
      const auto names = model.symbol_names();
      for (std::size_t i = 0; i < nsym; ++i) {
        const auto idx = deck.netlist.find_element(names[i]);
        if (!idx) throw std::runtime_error("symbol element not in netlist");
        nominal[i] = deck.netlist.elements()[*idx].value;
      }
    }

    const auto m0 = opt::eval_measure(model, measure, nominal);
    if (!quiet) {
      std::printf("model: %zu symbols, %zu instructions (grad program attached)\n",
                  nsym, model.instruction_count());
      std::printf("nominal %s = %.6g  gradient [", opt::to_string(measure), m0.value);
      for (std::size_t i = 0; i < nsym; ++i)
        std::printf("%s%.6g", i ? ", " : "", m0.gradient[i]);
      std::printf("]\n");
    }

    const auto yield_of = [&](std::span<const double> center) {
      std::vector<sweep::Distribution> process;
      for (std::size_t i = 0; i < nsym; ++i)
        process.push_back(sweep::Distribution::lognormal(center[i], mc_sigma));
      sweep::SweepOptions yopts = sopts;
      yopts.with_rom = true;
      const double limit = *spec_pole_hz;
      yopts.pass_predicate = [limit](const engine::ReducedOrderModel& rom) {
        const auto p1 = rom.dominant_pole();
        return rom.is_stable() && p1.has_value() &&
               std::abs(p1->real()) / (2.0 * M_PI) < limit;
      };
      return sweep::monte_carlo(model, process, mc_n, mc_seed, yopts).yield();
    };

    std::vector<double> center = nominal;
    double yield_before = -1.0;
    if (mc_n > 0 && spec_pole_hz) {
      yield_before = yield_of(center);
      if (!quiet) std::printf("yield at nominal: %.2f%%\n", 100.0 * yield_before);
    }

    if (target) {
      opt::RecenterOptions ropts;
      ropts.measure = measure;
      ropts.target = *target;
      const auto rec = opt::recenter_nominal(model, ropts, nominal);
      if (!quiet) {
        std::printf("recenter: %s %.6g -> %.6g (target %.6g) in %zu iters, %s\n",
                    opt::to_string(measure), m0.value, rec.value, *target,
                    rec.iterations, rec.converged ? "converged" : "NOT converged");
        std::printf("recentered nominal [");
        for (std::size_t i = 0; i < nsym; ++i)
          std::printf("%s%.6g", i ? ", " : "", rec.x[i]);
        std::printf("]\n");
      }
      if (!rec.converged) exit_code = 1;
      center = rec.x;
      if (mc_n > 0 && spec_pole_hz) {
        const double yield_after = yield_of(center);
        if (!quiet)
          std::printf("yield after recenter: %.2f%% (was %.2f%%)\n",
                      100.0 * yield_after, 100.0 * yield_before);
        if (yield_after < yield_before) exit_code = 1;
      }
    }

    if (corners_frac) {
      opt::CornerSearchOptions copts;
      copts.measure = measure;
      copts.lo.resize(nsym);
      copts.hi.resize(nsym);
      for (std::size_t i = 0; i < nsym; ++i) {
        copts.lo[i] = center[i] * (1.0 - *corners_frac);
        copts.hi[i] = center[i] * (1.0 + *corners_frac);
      }
      for (const bool maximize : {true, false}) {
        copts.maximize = maximize;
        const auto cr = opt::worst_case_corner(model, copts);
        if (!quiet) {
          std::printf("%s-case corner: %s = %.6g at [", maximize ? "max" : "min",
                      opt::to_string(measure), cr.value);
          for (std::size_t i = 0; i < nsym; ++i)
            std::printf("%s%.6g", i ? ", " : "", cr.corner[i]);
          std::printf("] (%zu iters, %s)\n", cr.iterations,
                      cr.converged ? "fixed point" : "iteration limit");
        }
      }
    }

    if (!grad_dump.empty()) {
      const std::size_t n = mc_n > 0 ? mc_n : 256;
      std::vector<sweep::Distribution> process;
      for (std::size_t i = 0; i < nsym; ++i)
        process.push_back(sweep::Distribution::lognormal(center[i], mc_sigma));
      sweep::SweepOptions gopts = sopts;
      gopts.gradients = true;
      gopts.pole_sensitivities = true;
      const auto res = sweep::monte_carlo(model, process, n, mc_seed, gopts);
      std::FILE* out = grad_dump == "-" ? stdout : std::fopen(grad_dump.c_str(), "w");
      if (!out) throw std::runtime_error("cannot write " + grad_dump);
      dump_gradients(out, res);
      if (out != stdout) {
        if (std::ferror(out) || std::fclose(out) != 0)
          throw std::runtime_error("short write to " + grad_dump);
      } else {
        std::clearerr(stdout);
      }
      if (!quiet)
        std::printf("grad dump: %zu points x %zu symbols x %zu moments -> %s\n", n,
                    nsym, res.num_moments, grad_dump.c_str());
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "awe_opt: %s: %s\n", deck_path.c_str(), e.what());
    health::HealthReport report;
    report.record_failure(health::fail_class_of(e));
    sink.flush_report(report);
    return 2;
  }

  sink.flush();
  return exit_code;
}
