// awe_serve — fault-tolerant evaluation daemon (DESIGN.md §16).
//
// Serves line-delimited JSON eval requests for ONE deck's compiled model
// over a unix or TCP socket, with per-request deadlines, admission
// control, slow-client eviction, watchdog supervision, crash-safe hot
// reload over the shared model store, and a graceful SIGTERM drain.
//
// Usage:
//   awe_serve --deck FILE (--unix PATH | --tcp [--host H] [--port P]) [options]
// Options:
//   --deck FILE             circuit deck with .symbol/.input/.output
//   --order Q               Padé order (default 2)
//   --cache-dir DIR         build/reload through the persistent model
//                           cache (corrupt entries quarantine to .bad and
//                           rebuild instead of failing the reload)
//   --shm NAME              back the model store with POSIX shared memory
//                           ("/NAME.g<gen>"); default is private heap.  A
//                           kill -9'd predecessor's stale region names are
//                           replaced on startup — restart needs no cleanup
//   --workers N             eval worker threads (default 2)
//   --threads-per-worker N  sweep pool width per worker (default 1)
//   --max-queue N           queued requests before shedding (default 16)
//   --max-line-bytes N      request line cap; longer evicts (default 1MiB)
//   --max-inflight-bytes N  queued request bytes before shedding (default 8MiB)
//   --max-points N          per-request point cap (default 1Mi)
//   --default-deadline-ms N deadline applied when a request names none (0 = none)
//   --max-deadline-ms N     clamp for requested deadlines (default 60000)
//   --idle-timeout-ms N     evict silent connections after N ms (default: never)
//   --read-stall-ms N       mid-line stall eviction (default 2000)
//   --write-timeout-ms N    response write stall eviction (default 2000)
//   --drain-timeout-ms N    SIGTERM drain budget (default 10000)
//   --watchdog              monitor worker heartbeats; force-cancel a
//                           worker wedged past its request deadline and
//                           fail the queue fast when all workers wedge
//   --watchdog-interval-ms N / --watchdog-grace-ms N   (defaults 100 / 500)
//   --reload-attempts N     reload retry budget (default 3)
//   --reload-backoff-ms N   first retry backoff, doubling (default 25)
//   --debug-ops             enable the "sleep" op and eval.cancel_after_checks
//                           (deterministic fault-matrix testing only)
//   --health-json FILE      flush the server-lifetime HealthReport on exit
//                           ("-" for stdout).  Written on EVERY exit path,
//                           startup failures and bad usage included
//   --ready-file FILE       write "unix PATH\n" or "tcp HOST PORT\n" once
//                           listening (CI wait-for-ready handshake)
//   --quiet                 suppress the startup/shutdown lines
//
// Signals: SIGTERM starts a graceful drain (stop accepting, finish or
// deadline-out in-flight work, flush health, exit 0); SIGINT hard-stops.
// SIGPIPE is ignored — a vanished client is an eviction, not a death.
#include <fcntl.h>
#include <poll.h>
#include <unistd.h>

#include <atomic>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "core/cli_support.hpp"
#include "serve/server.hpp"

namespace {

std::atomic<int> g_signal{0};
int g_signal_pipe_write = -1;

void on_signal(int sig) {
  g_signal.store(sig, std::memory_order_relaxed);
  const char b = 1;
  // Async-signal-safe wake-up; a full pipe already has a wake-up pending.
  [[maybe_unused]] const ssize_t rc = ::write(g_signal_pipe_write, &b, 1);
}

int usage(const char* argv0, const awe::cli::HealthJsonSink& sink) {
  std::fprintf(stderr,
               "usage: %s --deck FILE (--unix PATH | --tcp [--host H] [--port P])\n"
               "          [--order Q] [--cache-dir DIR] [--shm NAME] [--workers N]\n"
               "          [--threads-per-worker N] [--max-queue N] [--max-line-bytes N]\n"
               "          [--max-inflight-bytes N] [--max-points N]\n"
               "          [--default-deadline-ms N] [--max-deadline-ms N]\n"
               "          [--idle-timeout-ms N] [--read-stall-ms N] [--write-timeout-ms N]\n"
               "          [--drain-timeout-ms N] [--watchdog] [--watchdog-interval-ms N]\n"
               "          [--watchdog-grace-ms N] [--reload-attempts N]\n"
               "          [--reload-backoff-ms N] [--debug-ops] [--health-json FILE]\n"
               "          [--ready-file FILE] [--quiet]\n",
               argv0);
  sink.flush();
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace awe;
  cli::install_sigpipe_guard();
  const cli::HealthJsonSink sink = cli::HealthJsonSink::from_argv(argc, argv);

  serve::ServerConfig cfg;
  std::string ready_file;
  bool quiet = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "awe_serve: %s needs a value\n", arg.c_str());
        std::exit(usage(argv[0], sink));
      }
      return argv[++i];
    };
    auto next_u64 = [&] { return std::strtoull(next(), nullptr, 10); };
    if (arg == "--deck") cfg.deck_path = next();
    else if (arg == "--unix") cfg.unix_path = next();
    else if (arg == "--tcp") cfg.tcp = true;
    else if (arg == "--host") cfg.host = next();
    else if (arg == "--port") cfg.port = static_cast<std::uint16_t>(next_u64());
    else if (arg == "--order") cfg.model.order = next_u64();
    else if (arg == "--cache-dir") cfg.cache_dir = next();
    else if (arg == "--shm") cfg.store_name = next();
    else if (arg == "--workers") cfg.workers = next_u64();
    else if (arg == "--threads-per-worker") cfg.threads_per_worker = next_u64();
    else if (arg == "--max-queue") cfg.max_queue = next_u64();
    else if (arg == "--max-line-bytes") cfg.max_line_bytes = next_u64();
    else if (arg == "--max-inflight-bytes") cfg.max_inflight_bytes = next_u64();
    else if (arg == "--max-points") cfg.max_points = next_u64();
    else if (arg == "--default-deadline-ms") cfg.default_deadline_ms = next_u64();
    else if (arg == "--max-deadline-ms") cfg.max_deadline_ms = next_u64();
    else if (arg == "--idle-timeout-ms")
      cfg.idle_timeout = std::chrono::milliseconds(next_u64());
    else if (arg == "--read-stall-ms")
      cfg.read_stall_timeout = std::chrono::milliseconds(next_u64());
    else if (arg == "--write-timeout-ms")
      cfg.write_timeout = std::chrono::milliseconds(next_u64());
    else if (arg == "--drain-timeout-ms")
      cfg.drain_timeout = std::chrono::milliseconds(next_u64());
    else if (arg == "--watchdog") cfg.watchdog = true;
    else if (arg == "--watchdog-interval-ms")
      cfg.watchdog_interval = std::chrono::milliseconds(next_u64());
    else if (arg == "--watchdog-grace-ms")
      cfg.watchdog_grace = std::chrono::milliseconds(next_u64());
    else if (arg == "--reload-attempts") cfg.reload_attempts = next_u64();
    else if (arg == "--reload-backoff-ms")
      cfg.reload_backoff = std::chrono::milliseconds(next_u64());
    else if (arg == "--debug-ops") cfg.debug_ops = true;
    else if (arg == "--health-json") (void)next();  // consumed by the sink
    else if (arg == "--ready-file") ready_file = next();
    else if (arg == "--quiet") quiet = true;
    else {
      std::fprintf(stderr, "awe_serve: unknown argument %s\n", arg.c_str());
      return usage(argv[0], sink);
    }
  }
  if (cfg.deck_path.empty() || (cfg.unix_path.empty() && !cfg.tcp) ||
      (!cfg.unix_path.empty() && cfg.tcp) || cfg.workers == 0 ||
      cfg.model.order < 1)
    return usage(argv[0], sink);

  serve::Server server(std::move(cfg));
  try {
    server.start();
  } catch (const std::exception& e) {
    // Startup failure still reports health: the JSON names the fail class
    // (bad deck, unbindable socket) so supervisors need not scrape stderr.
    std::fprintf(stderr, "awe_serve: startup failed: %s\n", e.what());
    sink.flush();
    return 2;
  }

  int pipe_fds[2];
  if (::pipe(pipe_fds) != 0) {
    std::fprintf(stderr, "awe_serve: pipe: %s\n", std::strerror(errno));
    server.stop();
    sink.flush();
    return 2;
  }
  ::fcntl(pipe_fds[0], F_SETFL, O_NONBLOCK);
  ::fcntl(pipe_fds[1], F_SETFL, O_NONBLOCK);
  g_signal_pipe_write = pipe_fds[1];
  std::signal(SIGTERM, on_signal);
  std::signal(SIGINT, on_signal);

  if (!quiet) {
    if (server.bound_port() != 0)
      std::fprintf(stderr, "awe_serve: listening on tcp port %u\n",
                   server.bound_port());
    else
      std::fprintf(stderr, "awe_serve: listening\n");
  }
  if (!ready_file.empty()) {
    const std::string tmp = ready_file + ".tmp";
    if (std::FILE* f = std::fopen(tmp.c_str(), "w")) {
      if (server.bound_port() != 0)
        std::fprintf(f, "tcp 127.0.0.1 %u\n", server.bound_port());
      else
        std::fprintf(f, "unix\n");
      std::fclose(f);
      std::rename(tmp.c_str(), ready_file.c_str());  // atomic ready signal
    }
  }

  // Wait for a signal; SIGTERM drains gracefully, SIGINT hard-stops.
  for (;;) {
    pollfd pfd{pipe_fds[0], POLLIN, 0};
    const int pr = ::poll(&pfd, 1, 500);
    if (pr < 0 && errno != EINTR) break;
    if (pr <= 0) continue;
    char buf[16];
    while (::read(pipe_fds[0], buf, sizeof(buf)) > 0) {
    }
    const int sig = g_signal.exchange(0, std::memory_order_relaxed);
    if (sig == SIGTERM) {
      if (!quiet) std::fprintf(stderr, "awe_serve: draining\n");
      server.request_drain();
      break;
    }
    if (sig != 0) {
      server.stop();
      break;
    }
  }
  server.wait();
  ::close(pipe_fds[0]);
  ::close(pipe_fds[1]);

  const auto s = server.stats().snapshot();
  if (!quiet)
    std::fprintf(stderr,
                 "awe_serve: exiting — %llu requests, %llu shed, %llu deadline-expired, "
                 "%llu evicted, %llu reload failures\n",
                 static_cast<unsigned long long>(s.requests),
                 static_cast<unsigned long long>(s.shed),
                 static_cast<unsigned long long>(s.deadline_expired),
                 static_cast<unsigned long long>(s.evicted),
                 static_cast<unsigned long long>(s.reload_failures));
  sink.flush_report(server.health_snapshot());
  return 0;
}
