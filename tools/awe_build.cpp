// awe_build — build compiled models from decks through the persistent
// model cache.
//
// The workhorse behind the cache-determinism CI job: building the same
// decks into two fresh cache directories must produce byte-identical
// entries, and a second run against a warm cache must load (not rebuild)
// every model.  Also handy interactively, to pre-warm a cache before a
// sweep campaign or to inspect cache keys.
//
// Usage:
//   awe_build --cache-dir DIR [options] deck.sp [deck2.sp ...]
// Options:
//   --cache-dir DIR   persistent cache directory (required)
//   --order Q         Padé order (default 2)
//   --threads N       extraction worker threads, 0 = hardware (default 1)
//   --gradients       also compile the exact symbolic gradients
//   --native          additionally AOT-compile each model to a
//                     content-addressed .so beside its cache entry
//                     (requires a C compiler; degrades to the interpreter
//                     and reports kNativeBackend in the health JSON when
//                     none is available).  Never the default: interpreter
//                     cache directories stay byte-comparable.
//   --health-json F   write a HealthReport (cache quarantines, rebuilds,
//                     failpoint fires, partition-block traffic) as JSON
//                     to F ("-" for stdout)
//   --quiet           suppress the per-deck lines
//   --incremental     keep a per-cell partition block store under
//                     <cache-dir>/blocks (DESIGN.md §13): an edited deck
//                     re-extracts only its dirty cells and re-links the
//                     model from cached blocks — bit-identical to a cold
//                     build of the edited deck
//   --edit NAME=VAL   set element NAME to value VAL in every deck before
//                     building (repeatable); unknown names fail the deck
//   --edit-first-numeric FACTOR
//                     multiply the value of the alphabetically first
//                     numeric (non-symbolic, non-input) R/G/C/L element
//                     by FACTOR — a deck-agnostic one-element edit for
//                     the incremental-determinism CI job
//   --save-model F    serialize the (last) built model to F, for
//                     bit-identity comparison against another build
//   --mmap            warm loads mmap the v4 cache entry in place
//                     (CompiledModel::map_file, O(pages touched)) instead
//                     of stream-parsing it; cold builds are unaffected
//   --pack-v4 DIR     maintenance mode (no decks needed): rewrite every
//                     *.awemodel under DIR as model format v4 via the
//                     atomic tmp+rename discipline.  Entries already in
//                     canonical v4 form are left byte-untouched; legacy v3
//                     entries are upgraded in place so an old cache
//                     becomes mmap-servable without rebuilding
//   --map-audit DIR   maintenance mode: mmap-open every v4 *.awemodel
//                     under DIR with FULL payload-checksum and structural
//                     verification (the audit pays the page faults the
//                     fast path skips — DESIGN.md §15.2); legacy v3
//                     entries get the equivalent stream verification.
//                     Damaged entries are quarantined to <entry>.bad;
//                     exit 2 if any were
//
// Per deck, prints:  <cache-key>  <cold|warm>  <deck-path>
// Exit status: 0 on success, 2 on bad usage or any failed deck.  A corrupt
// cache entry is NOT a failure: it is quarantined to <entry>.bad, rebuilt,
// and reported in the health JSON.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "circuit/parser.hpp"
#include "core/cli_support.hpp"
#include "core/model_blob.hpp"
#include "core/model_cache.hpp"
#include "core/model_format.hpp"
#include "health/report.hpp"
#include "symbolic/serialize.hpp"

namespace {

using namespace awe;

/// Bound before argument parsing so usage() and every early exit still
/// flush a valid --health-json report (DESIGN.md §16.5).
const cli::HealthJsonSink* g_health_sink = nullptr;

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --cache-dir DIR [--order Q] [--threads N] [--gradients]\n"
               "          [--native] [--incremental] [--mmap] [--edit NAME=VALUE ...]\n"
               "          [--edit-first-numeric FACTOR] [--save-model FILE]\n"
               "          [--health-json FILE] [--quiet] deck.sp [deck2.sp ...]\n"
               "       %s --pack-v4 DIR | --map-audit DIR\n",
               argv0, argv0);
  if (g_health_sink) g_health_sink->flush();
  std::exit(2);
}

/// --pack-v4: upgrade every *.awemodel under `dir` to format v4 in place.
/// Byte-deterministic: an entry already in canonical v4 form is detected
/// by comparing the repacked bytes and left untouched (no mtime churn, a
/// second run is a no-op), so repack . load . repack is a fixed point.
int pack_v4_dir(const std::string& dir, bool quiet) {
  namespace fs = std::filesystem;
  std::size_t upgraded = 0, unchanged = 0, failed = 0;
  for (const auto& ent : fs::directory_iterator(dir)) {
    if (!ent.is_regular_file() || ent.path().extension() != ".awemodel") continue;
    const std::string path = ent.path().string();
    try {
      std::ifstream in(path, std::ios::binary);
      std::ostringstream raw;
      raw << in.rdbuf();
      const std::string original = raw.str();
      awe::symbolic::io::imemstream is(original.data(), original.size());
      const awe::core::CompiledModel model = awe::core::CompiledModel::load(is);
      std::ostringstream repacked;
      model.save(repacked);
      const std::string packed = repacked.str();
      if (packed == original) {
        ++unchanged;
        continue;
      }
      const std::string tmp = path + ".pack.tmp";
      {
        std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
        out.write(packed.data(), static_cast<std::streamsize>(packed.size()));
        if (!out) throw std::runtime_error("cannot write " + tmp);
      }
      fs::rename(tmp, path);
      ++upgraded;
      if (!quiet) std::printf("pack  v4  %s\n", path.c_str());
    } catch (const std::exception& e) {
      std::fprintf(stderr, "awe_build: --pack-v4: %s: %s\n", path.c_str(), e.what());
      ++failed;
    }
  }
  if (!quiet)
    std::printf("awe_build: --pack-v4: %zu upgraded, %zu already v4, %zu failed\n",
                upgraded, unchanged, failed);
  return failed == 0 ? 0 : 2;
}

/// --map-audit: the integrity pass the mmap fast path deliberately skips.
/// v4 entries are mapped and verified fully (payload checksum + every
/// structural/cross-field check in from_blob); v3 entries get the stream
/// loader's equivalent verification.  Damage quarantines to <entry>.bad.
int map_audit_dir(const std::string& dir, bool quiet) {
  namespace fs = std::filesystem;
  std::size_t ok_v4 = 0, ok_v3 = 0, quarantined = 0;
  for (const auto& ent : fs::directory_iterator(dir)) {
    if (!ent.is_regular_file() || ent.path().extension() != ".awemodel") continue;
    const std::string path = ent.path().string();
    bool legacy = false;
    try {
      char head[8] = {};
      {
        std::ifstream in(path, std::ios::binary);
        in.read(head, sizeof(head));
        if (static_cast<std::size_t>(in.gcount()) != sizeof(head))
          throw std::runtime_error("truncated header");
      }
      std::uint32_t version = 0;
      std::memcpy(&version, head + 4, sizeof(version));
      if (version == awe::core::kModelFormatVersion) {
        (void)awe::core::CompiledModel::from_blob(awe::core::map_file_blob(path),
                                                  /*verify_checksum=*/true);
        ++ok_v4;
      } else {
        legacy = true;
        std::ifstream in(path, std::ios::binary);
        (void)awe::core::CompiledModel::load(in);
        ++ok_v3;
      }
      if (!quiet) std::printf("audit ok   %s %s\n", legacy ? "v3" : "v4", path.c_str());
    } catch (const std::exception& e) {
      std::error_code ec;
      const std::string bad = awe::core::ModelCache::quarantine_path(path);
      fs::remove(bad, ec);
      fs::rename(path, bad, ec);
      if (ec) fs::remove(path, ec);
      ++quarantined;
      std::fprintf(stderr, "awe_build: --map-audit: %s: %s (quarantined)\n",
                   path.c_str(), e.what());
    }
  }
  if (!quiet)
    std::printf("awe_build: --map-audit: %zu v4 ok, %zu v3 ok, %zu quarantined\n",
                ok_v4, ok_v3, quarantined);
  return quarantined == 0 ? 0 : 2;
}

/// Alphabetically first numeric two-terminal R/G/C/L of the deck — the
/// canonical "edit one element" target used by the CI determinism job.
std::string first_numeric_element(const circuit::ParsedDeck& deck) {
  std::string best;
  for (const auto& e : deck.netlist.elements()) {
    switch (e.kind) {
      case circuit::ElementKind::kResistor:
      case circuit::ElementKind::kConductance:
      case circuit::ElementKind::kCapacitor:
      case circuit::ElementKind::kInductor:
        break;
      default:
        continue;
    }
    bool excluded = e.name == deck.input_source;
    for (const auto& s : deck.symbol_elements) excluded = excluded || s == e.name;
    if (excluded) continue;
    if (best.empty() || e.name < best) best = e.name;
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  cli::install_sigpipe_guard();
  const cli::HealthJsonSink sink = cli::HealthJsonSink::from_argv(argc, argv);
  g_health_sink = &sink;
  std::string cache_dir;
  std::string pack_dir;
  std::string audit_dir;
  core::ModelOptions mopts;
  core::BuildOptions bopts;
  bool quiet = false;
  std::string health_json;
  std::string save_model;
  double edit_first_factor = 0.0;
  std::vector<std::pair<std::string, double>> edits;
  std::vector<std::string> decks;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) usage(argv[0]);
      return argv[++i];
    };
    if (arg == "--cache-dir") {
      cache_dir = next();
    } else if (arg == "--order") {
      mopts.order = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--threads") {
      bopts.threads = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--gradients") {
      mopts.with_gradients = true;
    } else if (arg == "--native") {
      bopts.backend = core::EvalBackend::kNative;
    } else if (arg == "--incremental") {
      bopts.incremental = true;
    } else if (arg == "--mmap") {
      bopts.map_model = true;
    } else if (arg == "--pack-v4") {
      pack_dir = next();
    } else if (arg == "--map-audit") {
      audit_dir = next();
    } else if (arg == "--edit") {
      const std::string spec = next();
      const auto eq = spec.find('=');
      if (eq == std::string::npos || eq == 0) usage(argv[0]);
      edits.emplace_back(spec.substr(0, eq),
                         std::strtod(spec.c_str() + eq + 1, nullptr));
    } else if (arg == "--edit-first-numeric") {
      edit_first_factor = std::strtod(next(), nullptr);
      if (edit_first_factor == 0.0) usage(argv[0]);
    } else if (arg == "--save-model") {
      save_model = next();
    } else if (arg == "--health-json") {
      health_json = next();
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (!arg.empty() && arg[0] == '-') {
      usage(argv[0]);
    } else {
      decks.push_back(arg);
    }
  }
  // Maintenance modes run standalone: no decks, no cache instance.
  if (!pack_dir.empty() || !audit_dir.empty()) {
    if (!decks.empty() || !cache_dir.empty()) usage(argv[0]);
    int rc = 0;
    if (!pack_dir.empty()) rc = pack_v4_dir(pack_dir, quiet);
    if (rc == 0 && !audit_dir.empty()) rc = map_audit_dir(audit_dir, quiet);
    sink.flush();
    return rc;
  }
  if (cache_dir.empty() || decks.empty() || mopts.order < 1) usage(argv[0]);

  core::ModelCache cache(cache_dir);
  int failures = 0;
  std::shared_ptr<const core::CompiledModel> last_model;
  for (const std::string& path : decks) {
    try {
      std::ifstream in(path);
      if (!in) throw std::runtime_error("cannot open deck");
      circuit::ParsedDeck deck = circuit::parse_deck(in);
      if (deck.symbol_elements.empty() || deck.input_source.empty() ||
          deck.output_node.empty())
        throw std::runtime_error("deck needs .symbol/.input/.output directives");

      // Pre-build edits: the deck on disk stays pristine; the edited
      // netlist is what gets keyed and built, exactly as if the file had
      // been edited — so a cold build of the edited file and an
      // incremental rebuild from here must byte-agree.
      for (const auto& [name, value] : edits) deck.netlist.set_value(name, value);
      if (edit_first_factor != 0.0) {
        const std::string target = first_numeric_element(deck);
        if (target.empty())
          throw std::runtime_error("--edit-first-numeric: no numeric element");
        const auto idx = deck.netlist.find_element(target);
        deck.netlist.set_value(*idx, deck.netlist.elements()[*idx].value *
                                         edit_first_factor);
        if (!quiet)
          std::printf("edit  %s *= %g  %s\n", target.c_str(), edit_first_factor,
                      path.c_str());
      }

      const auto out_node = deck.netlist.find_node(deck.output_node);
      if (!out_node) throw std::runtime_error("unknown output node");
      const circuit::NodeId outs[] = {*out_node};
      const std::string key = core::model_cache_key(
          deck.netlist, deck.symbol_elements, deck.input_source, outs, mopts);

      const auto before = cache.stats();
      last_model = cache.get_or_build(deck.netlist, deck.symbol_elements,
                                      deck.input_source, deck.output_node, mopts,
                                      bopts);
      const auto after = cache.stats();
      const char* how = after.misses > before.misses ? "cold" : "warm";
      if (!quiet) std::printf("%s  %s  %s\n", key.c_str(), how, path.c_str());
    } catch (const std::exception& e) {
      std::fprintf(stderr, "awe_build: %s: %s\n", path.c_str(), e.what());
      ++failures;
    }
  }

  if (!save_model.empty()) {
    if (!last_model) {
      std::fprintf(stderr, "awe_build: --save-model: no model was built\n");
      sink.flush();
      return 2;
    }
    std::ofstream out(save_model, std::ios::binary | std::ios::trunc);
    if (!out) {
      std::fprintf(stderr, "awe_build: cannot write %s\n", save_model.c_str());
      sink.flush();
      return 2;
    }
    last_model->save(out);
  }

  if (!quiet) {
    const auto s = cache.stats();
    std::printf("awe_build: %zu decks — %zu cold builds, %zu disk hits, %zu memory hits\n",
                decks.size(), s.misses, s.disk_hits, s.memory_hits);
  }

  // Under the SIGPIPE guard a consumer that closed stdout early (e.g.
  // "--health-json - | head") makes this write fail with EPIPE instead of
  // killing the process; that still exits 0 — the consumer chose to stop.
  sink.flush();
  return failures == 0 ? 0 : 2;
}
