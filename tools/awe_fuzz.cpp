// awe_fuzz — differential fuzzing driver.
//
// Generates seeded random netlists, cross-checks the five evaluation
// paths (exact symbolic, numeric AWE, compiled strict, compiled fast,
// sweep engine), shrinks any mismatch to a minimal reproducing deck, and
// writes deterministic JSON statistics.
//
// Usage:
//   awe_fuzz [options]
// Options:
//   --count N            cases to run (default 100)
//   --seed S             campaign master seed (default 42)
//   --order Q            Padé order; 2Q moments compared (default 2)
//   --max-dim D          MNA dimension budget, <= 16 (default 12)
//   --max-nodes N        spine node cap (default 6)
//   --fault F            none | perturb-fast  (inject a defect to test
//                        the detector; perturb-fast skews the fused
//                        kernel's m_0 by 2^-10)
//   --no-shrink          skip minimization of failing decks
//   --json FILE          write the JSON stats report to FILE
//   --minimized-out DIR  write each minimized failing deck to DIR
//   --emit-corpus DIR    ALSO write every deck whose oracles agree to DIR
//                        (regression-corpus seeding)
//   --cache-dir DIR      route every compiled-model build through the
//                        persistent cache under DIR and round-trip the
//                        model through the binary serializer before use —
//                        the serializer becomes a sixth implicit oracle
//                        (any save/load defect reports as a mismatch)
//   --native             AOT-compile each model to a shared object and
//                        cross-check its strict/fast lanes against the
//                        interpreter — the native codegen backend becomes
//                        a seventh oracle.  Without a C compiler the
//                        backend degrades to the interpreter and the
//                        native lanes are skipped (never a mismatch).
//   --gradients          rebuild each agreeing case with compiled
//                        reverse-mode gradients and cross-check every
//                        d(moment)/d(value) against central finite
//                        differences AND the adjoint numeric
//                        sensitivities — the gradient subsystem becomes
//                        an eighth oracle.  Non-differentiable symbol
//                        elements are skipped (never a mismatch).
//   --quiet              summary line only
//
// Exit status: 0 = no mismatches, 1 = mismatches found, 2 = bad usage.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>

#include "testing/fuzz.hpp"

namespace {

using namespace awe;

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--count N] [--seed S] [--order Q] [--max-dim D]\n"
               "          [--max-nodes N] [--fault none|perturb-fast] [--no-shrink]\n"
               "          [--json FILE] [--minimized-out DIR] [--emit-corpus DIR]\n"
               "          [--cache-dir DIR] [--native] [--gradients] [--quiet]\n",
               argv0);
  std::exit(2);
}

void write_file(const std::filesystem::path& path, const std::string& text) {
  std::ofstream os(path);
  if (!os) {
    std::fprintf(stderr, "awe_fuzz: cannot write %s\n", path.c_str());
    std::exit(2);
  }
  os << text;
}

}  // namespace

int main(int argc, char** argv) {
  testing::FuzzOptions opts;
  std::string json_file, minimized_dir, corpus_dir;
  bool quiet = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) usage(argv[0]);
      return argv[++i];
    };
    if (arg == "--count") {
      opts.count = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--seed") {
      opts.seed = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--order") {
      opts.oracle.order = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--max-dim") {
      opts.gen.max_mna_dim = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--max-nodes") {
      opts.gen.max_spine_nodes = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--fault") {
      const std::string f = next();
      if (f == "none") {
        opts.oracle.fault = testing::FaultInjection::kNone;
      } else if (f == "perturb-fast") {
        opts.oracle.fault = testing::FaultInjection::kPerturbFastMoment0;
      } else {
        usage(argv[0]);
      }
    } else if (arg == "--no-shrink") {
      opts.shrink = false;
    } else if (arg == "--json") {
      json_file = next();
    } else if (arg == "--minimized-out") {
      minimized_dir = next();
    } else if (arg == "--emit-corpus") {
      corpus_dir = next();
    } else if (arg == "--cache-dir") {
      opts.oracle.cache_dir = next();
    } else if (arg == "--native") {
      opts.oracle.native = true;
    } else if (arg == "--gradients") {
      opts.oracle.gradients = true;
    } else if (arg == "--quiet") {
      quiet = true;
    } else {
      usage(argv[0]);
    }
  }
  if (opts.oracle.order < 1 || opts.count < 1) usage(argv[0]);

  if (!corpus_dir.empty()) {
    std::filesystem::create_directories(corpus_dir);
    opts.on_case = [&](const testing::GeneratedDeck& g, const testing::OracleResult& r) {
      if (r.status != testing::OracleStatus::kAgree) return;
      char name[64];
      std::snprintf(name, sizeof name, "gen_%016llx.sp",
                    static_cast<unsigned long long>(g.seed));
      write_file(std::filesystem::path(corpus_dir) / name, g.text);
    };
  }

  const testing::FuzzSummary sum = testing::run_fuzz(opts);

  if (!minimized_dir.empty() && !sum.failures.empty()) {
    std::filesystem::create_directories(minimized_dir);
    for (const auto& f : sum.failures) {
      char name[64];
      std::snprintf(name, sizeof name, "minimized_%016llx.sp",
                    static_cast<unsigned long long>(f.seed));
      write_file(std::filesystem::path(minimized_dir) / name,
                 f.minimized.empty() ? f.deck : f.minimized);
    }
  }

  const std::string json = sum.to_json();
  if (!json_file.empty()) write_file(json_file, json);

  if (!quiet && json_file.empty()) std::fputs(json.c_str(), stdout);
  std::printf("awe_fuzz: %zu cases — %zu agree, %zu mismatch, %zu ill-conditioned, "
              "%zu singular (worst rel err %.3g @ seed %llu)\n",
              sum.count, sum.agree, sum.mismatch, sum.ill_conditioned, sum.singular,
              sum.worst_rel_err, static_cast<unsigned long long>(sum.worst_seed));
  for (const auto& f : sum.failures)
    std::printf("  MISMATCH seed=%llu (%zu-element repro): %s\n",
                static_cast<unsigned long long>(f.seed), f.minimized_elements,
                f.detail.c_str());
  return sum.mismatch == 0 ? 0 : 1;
}
