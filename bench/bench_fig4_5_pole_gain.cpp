// Figures 4 and 5 of the paper: 3-D surfaces of the first pole p1 and the
// DC gain of the 741 as functions of the two symbolic elements
// (gout_q14, c_comp), generated from the *first-order* symbolic form.
//
// The printed grids are the figure data; the registered benchmarks time
// one surface point through the compiled model (the quantity that makes
// surface generation cheap) and, for contrast, through a full AWE run.
#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdio>
#include <vector>

#include "awe/awe.hpp"
#include "bench_util.hpp"
#include "circuits/opamp741.hpp"
#include "core/awesymbolic.hpp"

namespace {

using namespace awe;

const std::vector<std::string> kSymbols{circuits::Opamp741Circuit::kSymbolGout,
                                        circuits::Opamp741Circuit::kSymbolCcomp};

core::CompiledModel build_model(std::size_t order) {
  auto amp = circuits::make_opamp741();
  return core::CompiledModel::build(amp.netlist, kSymbols,
                                    circuits::Opamp741Circuit::kInput, amp.out,
                                    {.order = order});
}

void print_figures() {
  const auto model = build_model(1);
  const circuits::Opamp741Values nominal;
  constexpr int kGrid = 9;
  auto gval = [&](int i) {
    return nominal.gout_q14 * (0.4 + 1.6 * i / double(kGrid - 1));
  };
  auto cval = [&](int j) {
    return nominal.c_comp * (0.4 + 1.6 * j / double(kGrid - 1));
  };

  std::printf("== Figure 4: first pole p1/2pi [Hz] from the 1st-order symbolic form ==\n\n");
  std::printf("%11s", "gout\\cc");
  for (int j = 0; j < kGrid; ++j) std::printf(" %8.1fp", cval(j) * 1e12);
  std::printf("\n");
  for (int i = 0; i < kGrid; ++i) {
    std::printf("%9.2fmS", gval(i) * 1e3);
    for (int j = 0; j < kGrid; ++j) {
      const auto rom = model.evaluate(std::vector<double>{gval(i), cval(j)});
      std::printf(" %9.3f", rom.dominant_pole()->real() / (2 * M_PI));
    }
    std::printf("\n");
  }

  std::printf("\n== Figure 5: DC gain from the 1st-order symbolic form ==\n\n");
  for (int i = 0; i < kGrid; ++i) {
    std::printf("%9.2fmS", gval(i) * 1e3);
    for (int j = 0; j < kGrid; ++j) {
      const auto rom = model.evaluate(std::vector<double>{gval(i), cval(j)});
      std::printf(" %9.0f", std::abs(rom.dc_gain()));
    }
    std::printf("\n");
  }

  // Identity with full AWE at the grid corners (the paper's "data is
  // identical to that obtained from a pure numerical AWE analysis").
  std::printf("\nidentity check vs full AWE (order 1) at grid corners:\n");
  auto amp = circuits::make_opamp741();
  double max_rel = 0.0;
  for (const int i : {0, kGrid - 1})
    for (const int j : {0, kGrid - 1}) {
      const auto rs = model.evaluate(std::vector<double>{gval(i), cval(j)});
      amp.netlist.set_value(kSymbols[0], gval(i));
      amp.netlist.set_value(kSymbols[1], cval(j));
      const auto rr = engine::run_awe(amp.netlist, circuits::Opamp741Circuit::kInput,
                                      amp.out, {.order = 1});
      max_rel = std::max(max_rel, std::abs(rs.dc_gain() / rr.dc_gain() - 1.0));
      max_rel = std::max(max_rel, std::abs(rs.dominant_pole()->real() /
                                               rr.dominant_pole()->real() -
                                           1.0));
    }
  std::printf("max relative deviation over corners: %.3e\n\n", max_rel);
}

void BM_SurfacePoint_Symbolic(benchmark::State& state) {
  const auto model = build_model(1);
  const circuits::Opamp741Values nominal;
  int i = 0;
  for (auto _ : state) {
    const double f = 0.5 + 0.001 * (i++ % 1000);
    const auto rom =
        model.evaluate(std::vector<double>{nominal.gout_q14 * f, nominal.c_comp * f});
    benchmark::DoNotOptimize(rom.dc_gain());
  }
}
BENCHMARK(BM_SurfacePoint_Symbolic)->Unit(benchmark::kMicrosecond);

void BM_SurfacePoint_FullAwe(benchmark::State& state) {
  auto amp = circuits::make_opamp741();
  const circuits::Opamp741Values nominal;
  int i = 0;
  for (auto _ : state) {
    const double f = 0.5 + 0.001 * (i++ % 1000);
    amp.netlist.set_value(kSymbols[0], nominal.gout_q14 * f);
    amp.netlist.set_value(kSymbols[1], nominal.c_comp * f);
    const auto rom = engine::run_awe(amp.netlist, circuits::Opamp741Circuit::kInput,
                                     amp.out, {.order = 1});
    benchmark::DoNotOptimize(rom.dc_gain());
  }
}
BENCHMARK(BM_SurfacePoint_FullAwe)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_figures();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
