// Ablation A: what moment-level partitioning buys (paper §2.4).
//
// The decoupling claim: after partitioning, the symbolic work depends on
// the number of PORTS (≈ symbols), not on circuit size — so the compiled
// model's incremental cost stays flat as the numeric circuit grows, while
// a full AWE re-analysis scales with circuit size.  Also measures how the
// symbolic solve cost grows with the number of symbols (the det/adjugate
// of the port matrix), which is the quantity partitioning keeps small.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>
#include <vector>

#include "awe/awe.hpp"
#include "bench_util.hpp"
#include "circuits/ladders.hpp"
#include "core/awesymbolic.hpp"

namespace {

using namespace awe;

circuits::LadderCircuit ladder(std::size_t segments) {
  circuits::LadderValues v;
  v.segments = segments;
  return circuits::make_rc_ladder(v);
}

void print_tables() {
  using benchutil::time_median;
  std::printf("== Ablation A: decoupling of numeric size from symbolic cost ==\n\n");
  std::printf("%-10s %16s %16s %16s %10s\n", "segments", "AWE/point", "sym setup",
              "sym incr/point", "ports");
  for (const std::size_t n : {32u, 128u, 512u, 2048u}) {
    auto lad = ladder(n);
    const std::vector<std::string> symbols{"rdrv", "cload"};
    circuits::LadderValues v;
    v.segments = n;
    v.c_load = 2e-12;
    lad = circuits::make_rc_ladder(v);

    const double t_awe = time_median(3, [&] {
      const auto rom = engine::run_awe(lad.netlist, circuits::LadderCircuit::kInput,
                                       lad.out, {.order = 2});
      benchmark::DoNotOptimize(rom.dc_gain());
    });
    const double t_setup = time_median(3, [&] {
      const auto m = core::CompiledModel::build(lad.netlist, symbols,
                                                circuits::LadderCircuit::kInput, lad.out,
                                                {.order = 2});
      benchmark::DoNotOptimize(m.port_count());
    });
    const auto model = core::CompiledModel::build(
        lad.netlist, symbols, circuits::LadderCircuit::kInput, lad.out, {.order = 2});
    const double t_inc = time_median(3, [&] {
      double acc = 0.0;
      for (int i = 0; i < 256; ++i) {
        const auto rom =
            model.evaluate(std::vector<double>{40.0 + i, 1e-12 * (1 + 0.01 * i)});
        acc += rom.dc_gain();
      }
      benchmark::DoNotOptimize(acc);
    }) / 256.0;
    std::printf("%-10zu %13.3f ms %13.3f ms %13.3f us %10zu\n", n, t_awe * 1e3,
                t_setup * 1e3, t_inc * 1e6, model.port_count());
  }

  std::printf("\nsymbolic solve cost vs number of symbols (128-segment ladder):\n");
  std::printf("%-10s %16s %16s %14s\n", "#symbols", "setup", "incr/point", "instrs");
  auto lad = ladder(128);
  std::vector<std::string> all_symbols{"r10", "c20", "r40", "c60", "r80"};
  for (std::size_t k = 1; k <= all_symbols.size(); ++k) {
    const std::vector<std::string> symbols(all_symbols.begin(),
                                           all_symbols.begin() + k);
    const double t_setup = time_median(3, [&] {
      const auto m = core::CompiledModel::build(lad.netlist, symbols,
                                                circuits::LadderCircuit::kInput, lad.out,
                                                {.order = 2});
      benchmark::DoNotOptimize(m.instruction_count());
    });
    const auto model = core::CompiledModel::build(
        lad.netlist, symbols, circuits::LadderCircuit::kInput, lad.out, {.order = 2});
    std::vector<double> vals;
    for (const auto& s : symbols)
      vals.push_back(lad.netlist.elements()[*lad.netlist.find_element(s)].value);
    const double t_inc = time_median(3, [&] {
      double acc = 0.0;
      for (int i = 0; i < 256; ++i) {
        vals[0] *= 1.0001;
        acc += model.evaluate(vals).dc_gain();
      }
      benchmark::DoNotOptimize(acc);
    }) / 256.0;
    std::printf("%-10zu %13.3f ms %13.3f us %14zu\n", k, t_setup * 1e3, t_inc * 1e6,
                model.instruction_count());
  }
  std::printf("\n");
}

void BM_SymbolicIncremental_BySize(benchmark::State& state) {
  auto lad = ladder(static_cast<std::size_t>(state.range(0)));
  const std::vector<std::string> symbols{"rdrv", "c0"};
  const auto model = core::CompiledModel::build(
      lad.netlist, symbols, circuits::LadderCircuit::kInput, lad.out, {.order = 2});
  int i = 0;
  for (auto _ : state) {
    const auto rom =
        model.evaluate(std::vector<double>{40.0 + (i++ % 100), 1e-12});
    benchmark::DoNotOptimize(rom.dc_gain());
  }
}
BENCHMARK(BM_SymbolicIncremental_BySize)->Arg(32)->Arg(512)->Arg(2048);

void BM_FullAwe_BySize(benchmark::State& state) {
  auto lad = ladder(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    const auto rom = engine::run_awe(lad.netlist, circuits::LadderCircuit::kInput,
                                     lad.out, {.order = 2});
    benchmark::DoNotOptimize(rom.dc_gain());
  }
}
BENCHMARK(BM_FullAwe_BySize)->Arg(32)->Arg(512)->Arg(2048)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_tables();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
