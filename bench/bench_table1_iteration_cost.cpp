// Table 1 of the paper: run time to generate N datapoints of the 741's
// system function at N different symbol values —
//
//   Datapoints      AWE       AWEsymbolic        (DECstation 5000, paper)
//   10              0.079s    2.27s
//   100             5.35s(*)  2.29s               (*) paper row reads 0.53s-
//   1000            53.2s     2.43s                   class scaling; incremental
//                                                     53.2ms vs 0.16ms => ~330x
//
// The claim to reproduce is the *shape*: AWEsymbolic pays a larger setup
// (the symbolic analysis) but its incremental cost per datapoint is
// orders of magnitude below a full AWE re-analysis, so it wins from some
// crossover count onward.
#include <benchmark/benchmark.h>

#include <array>
#include <cstdio>
#include <random>
#include <vector>

#include "awe/awe.hpp"
#include "awe/moments.hpp"
#include "bench_util.hpp"
#include "circuits/opamp741.hpp"
#include "core/awesymbolic.hpp"

namespace {

using namespace awe;

const std::vector<std::string> kSymbols{circuits::Opamp741Circuit::kSymbolGout,
                                        circuits::Opamp741Circuit::kSymbolCcomp};

std::vector<std::array<double, 2>> symbol_grid(std::size_t n) {
  std::vector<std::array<double, 2>> pts;
  pts.reserve(n);
  const circuits::Opamp741Values nominal;
  std::mt19937 rng(7);
  std::uniform_real_distribution<double> f(0.5, 2.0);
  for (std::size_t i = 0; i < n; ++i)
    pts.push_back({nominal.gout_q14 * f(rng), nominal.c_comp * f(rng)});
  return pts;
}

/// One full AWE datapoint: restamp, factor, 4 moments, Padé, poles.
double full_awe_datapoint(circuit::Netlist& nl, circuit::NodeId out,
                          const std::array<double, 2>& vals) {
  nl.set_value(kSymbols[0], vals[0]);
  nl.set_value(kSymbols[1], vals[1]);
  const auto rom = engine::run_awe(nl, circuits::Opamp741Circuit::kInput, out,
                                   {.order = 2});
  return rom.dc_gain();
}

void BM_FullAwe_PerDatapoint(benchmark::State& state) {
  auto amp = circuits::make_opamp741();
  const auto grid = symbol_grid(64);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        full_awe_datapoint(amp.netlist, amp.out, grid[i++ % grid.size()]));
  }
}
BENCHMARK(BM_FullAwe_PerDatapoint)->Unit(benchmark::kMillisecond);

void BM_AweSymbolic_PerDatapoint(benchmark::State& state) {
  auto amp = circuits::make_opamp741();
  const auto model = core::CompiledModel::build(
      amp.netlist, kSymbols, circuits::Opamp741Circuit::kInput, amp.out, {.order = 2});
  const auto grid = symbol_grid(64);
  std::size_t i = 0;
  for (auto _ : state) {
    const auto& v = grid[i++ % grid.size()];
    const auto rom = model.evaluate(std::vector<double>{v[0], v[1]});
    benchmark::DoNotOptimize(rom.dc_gain());
  }
}
BENCHMARK(BM_AweSymbolic_PerDatapoint)->Unit(benchmark::kMicrosecond);

void BM_AweSymbolic_MomentsOnly(benchmark::State& state) {
  // The pure compiled-program evaluation (paper: 0.37 us per evaluation of
  // the symbolic forms).
  auto amp = circuits::make_opamp741();
  const auto model = core::CompiledModel::build(
      amp.netlist, kSymbols, circuits::Opamp741Circuit::kInput, amp.out, {.order = 2});
  auto ws = model.make_workspace();
  const auto grid = symbol_grid(64);
  std::size_t i = 0;
  for (auto _ : state) {
    const auto& v = grid[i++ % grid.size()];
    model.moments_at(std::vector<double>{v[0], v[1]}, ws);
    benchmark::DoNotOptimize(ws.moments[0]);
  }
}
BENCHMARK(BM_AweSymbolic_MomentsOnly);

void BM_AweSymbolic_Setup(benchmark::State& state) {
  auto amp = circuits::make_opamp741();
  for (auto _ : state) {
    const auto model = core::CompiledModel::build(
        amp.netlist, kSymbols, circuits::Opamp741Circuit::kInput, amp.out, {.order = 2});
    benchmark::DoNotOptimize(model.instruction_count());
  }
}
BENCHMARK(BM_AweSymbolic_Setup)->Unit(benchmark::kMillisecond);

void print_table1() {
  using benchutil::time_median;
  auto amp = circuits::make_opamp741();
  const auto grid = symbol_grid(1000);

  const double t_setup = time_median(3, [&] {
    const auto m = core::CompiledModel::build(
        amp.netlist, kSymbols, circuits::Opamp741Circuit::kInput, amp.out, {.order = 2});
    benchmark::DoNotOptimize(m.port_count());
  });
  const auto model = core::CompiledModel::build(
      amp.netlist, kSymbols, circuits::Opamp741Circuit::kInput, amp.out, {.order = 2});

  const double t_awe = time_median(5, [&] {
    benchmark::DoNotOptimize(full_awe_datapoint(amp.netlist, amp.out, grid[0]));
  });
  const double t_inc = time_median(5, [&] {
    double acc = 0;
    for (std::size_t i = 0; i < 1000; ++i) {
      const auto rom = model.evaluate(std::vector<double>{grid[i][0], grid[i][1]});
      acc += rom.dc_gain();
    }
    benchmark::DoNotOptimize(acc);
  }) / 1000.0;

  std::printf("== Table 1: time to generate N datapoints (741, 2 symbols, order 2) ==\n\n");
  benchutil::print_time("AWEsymbolic setup (symbolic + compile)", t_setup);
  benchutil::print_time("full AWE cost per datapoint", t_awe);
  benchutil::print_time("AWEsymbolic incremental cost per datapoint", t_inc);
  std::printf("incremental speedup: %.0fx  (paper: ~330x on a DECstation 5000)\n\n",
              t_awe / t_inc);
  std::printf("%-12s %14s %14s\n", "Datapoints", "AWE", "AWEsymbolic");
  for (const std::size_t n : {10u, 100u, 1000u, 10000u}) {
    std::printf("%-12zu %12.4f s %12.4f s\n", static_cast<std::size_t>(n),
                t_awe * static_cast<double>(n),
                t_setup + t_inc * static_cast<double>(n));
  }
  const double crossover = t_setup / (t_awe - t_inc);
  std::printf("\ncrossover: AWEsymbolic wins beyond ~%.0f datapoints\n", crossover);
  std::printf("paper reference (DECstation 5000): 10 -> 0.079s vs 2.27s, "
              "1000 -> 53.2s vs 2.43s\n\n");
}

}  // namespace

int main(int argc, char** argv) {
  print_table1();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
