// Paper §3.2 run-time comparison on the coupled-line timing model:
//
//   "A single AWE analysis for this circuit requires on average 1.12
//    seconds on a DECStation5000, while the AWEsymbolic analysis requires
//    5.41 seconds ... However, the incremental cost, which is crucial in
//    iterative applications, is 0.11 milliseconds for AWEsymbolic.  This
//    is four orders of magnitude faster than a numeric analysis with AWE."
//
// Shape to reproduce: symbolic setup costs a small multiple of one AWE
// run, but the incremental evaluation is orders of magnitude cheaper.
//
// The build-pipeline series (BM_Build*) measures the setup cost itself
// under the two levers this codebase adds on top of the paper: the
// parallel extraction pipeline (BuildOptions::threads) and the persistent
// compiled-model cache (warm loads skip partition+symbolic+compile
// entirely).  Each reports a `builds_per_s` rate counter; the perf gate
// anchors the series to BM_BuildCold so the gated quantity is the
// warm/cold and parallel/cold speedup STRUCTURE, not machine speed.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <string_view>
#include <vector>

#include "awe/awe.hpp"
#include "bench_util.hpp"
#include "circuits/coupled_lines.hpp"
#include "core/model_cache.hpp"
#include "engine/thread_pool.hpp"
#include "partition/macromodel.hpp"

namespace {

using namespace awe;

const std::vector<std::string> kSymbols{circuits::CoupledLinesCircuit::kSymbolRdriver,
                                        circuits::CoupledLinesCircuit::kSymbolCload};

/// Fresh empty cache directory (under the system temp root) per call.
std::string fresh_cache_dir(const char* tag) {
  const auto dir = std::filesystem::temp_directory_path() /
                   (std::string("awe_bench_cache_") + tag);
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir.string();
}

/// The multi-partition macromodeling workload: the paper's 1000-segment
/// coupled pair cut into `count` independent sections, each reduced to a
/// 2-port macromodel at its far ends.  Partition builds each factor their
/// own MNA matrix — the serial bottleneck of a single build — so fanning
/// WHOLE partitions over the pool is what turns threads into wall-clock
/// speedup (intra-partition column parallelism cannot: the shared factor
/// dominates, the solves are ~5% of the build).
struct PartitionedBus {
  std::vector<circuits::CoupledLinesCircuit> sections;
  std::vector<part::PortMacromodel::PartitionSpec> parts;

  explicit PartitionedBus(std::size_t count, std::size_t total_segments) {
    sections.reserve(count);
    circuits::CoupledLineValues v;
    v.segments = total_segments / count;
    for (std::size_t i = 0; i < count; ++i) sections.push_back(circuits::make_coupled_lines(v));
    parts.reserve(count);
    for (const auto& s : sections)
      parts.push_back({&s.netlist, {s.line1_out, s.line2_out}});
  }
};

void print_comparison() {
  using benchutil::time_median;
  circuits::CoupledLineValues v;  // 1000 segments, as in the paper
  auto c = circuits::make_coupled_lines(v);

  std::printf("== coupled-line timing model: setup vs incremental cost ==\n");
  std::printf("(2 x %zu segments, %zu elements; symbols: driver R, load C)\n\n",
              v.segments, c.netlist.elements().size());

  const double t_awe = time_median(3, [&] {
    const auto rom = engine::run_awe(c.netlist, circuits::CoupledLinesCircuit::kInput,
                                     c.line2_out, {.order = 2});
    benchmark::DoNotOptimize(rom.dc_gain());
  });
  const double t_setup = time_median(3, [&] {
    const auto model = core::CompiledModel::build(
        c.netlist, kSymbols, circuits::CoupledLinesCircuit::kInput, c.line2_out,
        {.order = 2});
    benchmark::DoNotOptimize(model.instruction_count());
  });
  const auto model = core::CompiledModel::build(
      c.netlist, kSymbols, circuits::CoupledLinesCircuit::kInput, c.line2_out,
      {.order = 2});
  const double t_inc = time_median(5, [&] {
    double acc = 0.0;
    for (int i = 0; i < 1000; ++i) {
      const auto rom = model.evaluate(
          std::vector<double>{50.0 + 0.5 * i, 1e-12 * (0.5 + 0.001 * i)});
      acc += rom.step_response(10e-9);
    }
    benchmark::DoNotOptimize(acc);
  }) / 1000.0;

  // Build-pipeline levers: warm-cache loads of the same model, and the
  // multi-partition macromodel fan-out (8 bus sections) serial vs pooled.
  const std::string cache_dir = fresh_cache_dir("table");
  core::BuildOptions cached;
  cached.cache_dir = cache_dir;
  (void)core::CompiledModel::build(c.netlist, kSymbols,
                                   circuits::CoupledLinesCircuit::kInput, c.line2_out,
                                   {.order = 2}, cached);  // populate the entry
  const double t_warm = time_median(5, [&] {
    const auto m = core::CompiledModel::build(c.netlist, kSymbols,
                                              circuits::CoupledLinesCircuit::kInput,
                                              c.line2_out, {.order = 2}, cached);
    benchmark::DoNotOptimize(m.instruction_count());
  });
  // Incremental rebuild after a one-element edit (DESIGN.md §13): only
  // the dirty cell re-extracts; every clean cell reloads its cached
  // moment blocks bit-identically.
  core::BuildOptions inc;
  inc.incremental = true;
  inc.partition_block_dir = fresh_cache_dir("table_blocks");
  (void)core::CompiledModel::build(c.netlist, kSymbols,
                                   circuits::CoupledLinesCircuit::kInput, c.line2_out,
                                   {.order = 2}, inc);  // warm the block store
  const double r0 = c.netlist.elements()[*c.netlist.find_element("r1_500")].value;
  int edit_seq = 0;
  const double t_inc_edit = time_median(5, [&] {
    c.netlist.set_value("r1_500", r0 * (1.0 + 1e-6 * ++edit_seq));
    const auto m = core::CompiledModel::build(c.netlist, kSymbols,
                                              circuits::CoupledLinesCircuit::kInput,
                                              c.line2_out, {.order = 2}, inc);
    benchmark::DoNotOptimize(m.instruction_count());
  });
  c.netlist.set_value("r1_500", r0);
  std::filesystem::remove_all(inc.partition_block_dir);

  const PartitionedBus bus(8, v.segments);
  const double t_mm_serial = time_median(3, [&] {
    const auto mms = part::PortMacromodel::build_many(bus.parts, {.order = 2});
    benchmark::DoNotOptimize(mms.size());
  });
  sweep::ThreadPool pool(4);
  const double t_mm_par = time_median(3, [&] {
    const auto mms = part::PortMacromodel::build_many(bus.parts, {.order = 2}, &pool);
    benchmark::DoNotOptimize(mms.size());
  });
  std::filesystem::remove_all(cache_dir);

  benchutil::print_time("single full AWE analysis", t_awe);
  benchutil::print_time("AWEsymbolic setup (partition+symbolic+compile)", t_setup);
  benchutil::print_time("AWEsymbolic setup, warm model cache", t_warm);
  benchutil::print_time("one-element edit, incremental rebuild", t_inc_edit);
  benchutil::print_time("8-partition macromodel reduction, serial", t_mm_serial);
  benchutil::print_time("8-partition macromodel reduction, 4 threads", t_mm_par);
  benchutil::print_time("AWEsymbolic incremental cost per evaluation", t_inc);
  std::printf("\nsetup ratio   : symbolic/AWE = %.2fx   (paper: 5.41s/1.12s = 4.8x)\n",
              t_setup / t_awe);
  std::printf("incremental   : AWE/symbolic = %.0fx    (paper: ~1e4x)\n", t_awe / t_inc);
  std::printf("parallel build: serial/parallel = %.2fx   (8 partitions, 4 threads)\n",
              t_mm_serial / t_mm_par);
  std::printf("warm cache    : cold/warm = %.1fx   (acceptance floor: 10x)\n",
              t_setup / t_warm);
  std::printf("incr. rebuild : cold/edit = %.1fx   (acceptance floor: 10x)\n\n",
              t_setup / t_inc_edit);
}

void BM_FullAwe_CoupledLines(benchmark::State& state) {
  circuits::CoupledLineValues v;
  v.segments = static_cast<std::size_t>(state.range(0));
  auto c = circuits::make_coupled_lines(v);
  for (auto _ : state) {
    const auto rom = engine::run_awe(c.netlist, circuits::CoupledLinesCircuit::kInput,
                                     c.line2_out, {.order = 2});
    benchmark::DoNotOptimize(rom.dc_gain());
  }
}
BENCHMARK(BM_FullAwe_CoupledLines)->Arg(100)->Arg(1000)->Unit(benchmark::kMillisecond);

void BM_SymbolicSetup_CoupledLines(benchmark::State& state) {
  circuits::CoupledLineValues v;
  v.segments = static_cast<std::size_t>(state.range(0));
  auto c = circuits::make_coupled_lines(v);
  for (auto _ : state) {
    const auto model = core::CompiledModel::build(
        c.netlist, kSymbols, circuits::CoupledLinesCircuit::kInput, c.line2_out,
        {.order = 2});
    benchmark::DoNotOptimize(model.instruction_count());
  }
}
BENCHMARK(BM_SymbolicSetup_CoupledLines)->Arg(100)->Arg(1000)->Unit(benchmark::kMillisecond);

void BM_SymbolicIncremental_CoupledLines(benchmark::State& state) {
  circuits::CoupledLineValues v;
  v.segments = static_cast<std::size_t>(state.range(0));
  auto c = circuits::make_coupled_lines(v);
  const auto model = core::CompiledModel::build(
      c.netlist, kSymbols, circuits::CoupledLinesCircuit::kInput, c.line2_out,
      {.order = 2});
  int i = 0;
  for (auto _ : state) {
    const auto rom = model.evaluate(
        std::vector<double>{50.0 + 0.5 * (i % 500), 1e-12 * (0.5 + 0.001 * (i % 500))});
    ++i;
    benchmark::DoNotOptimize(rom.step_response(10e-9));
  }
}
BENCHMARK(BM_SymbolicIncremental_CoupledLines)
    ->Arg(100)
    ->Arg(1000)
    ->Unit(benchmark::kMicrosecond);

// -- build pipeline: cold / warm-cache / parallel -----------------------
//
// All three share one circuit size (1000 segments, the paper's coupled
// lines — the numeric extraction dominates the cold build there) and
// report `builds_per_s`.  BM_BuildCold is the in-run anchor: the perf
// gate divides the other two by it, so what is actually gated is the
// warm-cache and parallel-build speedup over a cold serial build.

constexpr std::size_t kBuildSegments = 1000;

void BM_BuildCold(benchmark::State& state) {
  circuits::CoupledLineValues v;
  v.segments = kBuildSegments;
  auto c = circuits::make_coupled_lines(v);
  for (auto _ : state) {
    const auto model = core::CompiledModel::build(
        c.netlist, kSymbols, circuits::CoupledLinesCircuit::kInput, c.line2_out,
        {.order = 2});
    benchmark::DoNotOptimize(model.instruction_count());
  }
  state.counters["builds_per_s"] =
      benchmark::Counter(static_cast<double>(state.iterations()),
                         benchmark::Counter::kIsRate);
}
BENCHMARK(BM_BuildCold)->Unit(benchmark::kMillisecond);

void BM_BuildWarmCache(benchmark::State& state) {
  circuits::CoupledLineValues v;
  v.segments = kBuildSegments;
  auto c = circuits::make_coupled_lines(v);
  core::BuildOptions opts;
  opts.cache_dir = fresh_cache_dir("warm");
  (void)core::CompiledModel::build(c.netlist, kSymbols,
                                   circuits::CoupledLinesCircuit::kInput, c.line2_out,
                                   {.order = 2}, opts);  // populate
  for (auto _ : state) {
    const auto model = core::CompiledModel::build(
        c.netlist, kSymbols, circuits::CoupledLinesCircuit::kInput, c.line2_out,
        {.order = 2}, opts);
    benchmark::DoNotOptimize(model.instruction_count());
  }
  state.counters["builds_per_s"] =
      benchmark::Counter(static_cast<double>(state.iterations()),
                         benchmark::Counter::kIsRate);
  std::filesystem::remove_all(opts.cache_dir);
}
BENCHMARK(BM_BuildWarmCache)->Unit(benchmark::kMillisecond);

// Incremental partition-level rebuild (DESIGN.md §13): each iteration
// edits ONE element (a fresh value every time, so its cell is genuinely
// dirty) and rebuilds against a warm per-cell block store — the dirty
// cell re-extracts, every clean cell reloads its cached moment blocks.
// Gated against BM_BuildCold: a one-element edit must rebuild >= 10x
// faster than a cold build of the same circuit.
void BM_BuildIncrementalEdit(benchmark::State& state) {
  circuits::CoupledLineValues v;
  v.segments = kBuildSegments;
  auto c = circuits::make_coupled_lines(v);
  core::BuildOptions opts;
  opts.incremental = true;
  opts.partition_block_dir = fresh_cache_dir("inc_blocks");
  (void)core::CompiledModel::build(c.netlist, kSymbols,
                                   circuits::CoupledLinesCircuit::kInput, c.line2_out,
                                   {.order = 2}, opts);  // warm the block store
  const double r0 = c.netlist.elements()[*c.netlist.find_element("r1_500")].value;
  int i = 0;
  for (auto _ : state) {
    c.netlist.set_value("r1_500", r0 * (1.0 + 1e-6 * ++i));
    const auto model = core::CompiledModel::build(
        c.netlist, kSymbols, circuits::CoupledLinesCircuit::kInput, c.line2_out,
        {.order = 2}, opts);
    benchmark::DoNotOptimize(model.instruction_count());
  }
  state.counters["builds_per_s"] =
      benchmark::Counter(static_cast<double>(state.iterations()),
                         benchmark::Counter::kIsRate);
  std::filesystem::remove_all(opts.partition_block_dir);
}
BENCHMARK(BM_BuildIncrementalEdit)->Unit(benchmark::kMillisecond);

// -- model open: v3 stream parse vs v4 zero-copy map --------------------
//
// The format-v4 acceptance series (DESIGN.md §15): ONE model serialized
// once into a temp directory as both the legacy v3 stream and the v4
// blob, then re-opened cold every iteration.  The gated quantity
// (check_bench_gate.py --dominates) is models_per_s of
// BM_ModelOpenV4MapFirstBatch over BM_ModelOpenV3Parse: the mmap open
// must beat the full parse by >= 10x EVEN WHEN it also pays for the
// first width-64 batch evaluation — i.e. "open and start sweeping" went
// from O(model size) to O(pages touched).
//
// The fixture deliberately carries the sections a moments-only first
// batch never touches — the gradient stream, the strict stream, and the
// serialized symbolic closed forms — because that asymmetry IS the
// measured claim: the v3 loader materializes all of them eagerly (the
// symbolic section as node-by-node expression trees), while the v4 open
// bounds-checks their section table entries and never faults their
// pages.  Ten symbols over a 200-segment coupled pair puts the blob near
// a megabyte, far past the fixed open/validate overheads.

struct OpenFixture {
  std::string dir;
  std::string v3_path;
  std::string v4_path;
  std::vector<double> nominals;  // per-symbol, in model symbol order

  OpenFixture() {
    circuits::CoupledLineValues v;
    v.segments = 200;
    auto c = circuits::make_coupled_lines(v);
    std::vector<std::string> syms = kSymbols;
    for (std::size_t i = 1; syms.size() < 10; ++i) {
      syms.push_back("r1_" + std::to_string(i));
      if (syms.size() < 10) syms.push_back("cg2_" + std::to_string(i));
    }
    const auto model = core::CompiledModel::build(
        c.netlist, syms, circuits::CoupledLinesCircuit::kInput, c.line2_out,
        {.order = 2, .with_gradients = true});
    for (const auto& name : model.symbol_names())
      nominals.push_back(
          c.netlist.elements()[*c.netlist.find_element(name)].value);
    dir = fresh_cache_dir("open");
    v3_path = dir + "/model_v3.awemodel";
    v4_path = dir + "/model_v4.awemodel";
    std::ofstream v3(v3_path, std::ios::binary);
    model.save_legacy_v3(v3);
    std::ofstream v4(v4_path, std::ios::binary);
    model.save(v4);
  }
  ~OpenFixture() { std::filesystem::remove_all(dir); }

  static const OpenFixture& instance() {
    static OpenFixture fixture;
    return fixture;
  }
};

void BM_ModelOpenV3Parse(benchmark::State& state) {
  const auto& fx = OpenFixture::instance();
  for (auto _ : state) {
    std::ifstream in(fx.v3_path, std::ios::binary);
    const auto model = core::CompiledModel::load(in);
    benchmark::DoNotOptimize(model.instruction_count());
  }
  state.counters["models_per_s"] =
      benchmark::Counter(static_cast<double>(state.iterations()),
                         benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ModelOpenV3Parse)->Unit(benchmark::kMillisecond);

void BM_ModelOpenV4Map(benchmark::State& state) {
  const auto& fx = OpenFixture::instance();
  for (auto _ : state) {
    const auto model = core::CompiledModel::map_file(fx.v4_path);
    benchmark::DoNotOptimize(model.instruction_count());
  }
  state.counters["models_per_s"] =
      benchmark::Counter(static_cast<double>(state.iterations()),
                         benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ModelOpenV4Map)->Unit(benchmark::kMillisecond);

void BM_ModelOpenV4MapFirstBatch(benchmark::State& state) {
  const auto& fx = OpenFixture::instance();
  constexpr std::size_t kWidth = 64;
  // SoA points: symbol i of point p at [i*kWidth + p], each a small
  // perturbation of the element's netlist value.
  std::vector<double> points(fx.nominals.size() * kWidth);
  for (std::size_t i = 0; i < fx.nominals.size(); ++i)
    for (std::size_t p = 0; p < kWidth; ++p)
      points[i * kWidth + p] =
          fx.nominals[i] * (1.0 + 0.002 * static_cast<double>(p));
  for (auto _ : state) {
    const auto model = core::CompiledModel::map_file(fx.v4_path);
    auto ws = model.make_batch_workspace(kWidth);
    std::vector<double> moments(model.moment_count() * kWidth);
    std::vector<unsigned char> ok(kWidth);
    model.moments_batch(points, kWidth, kWidth, ws, moments, kWidth, ok);
    benchmark::DoNotOptimize(moments.data());
  }
  state.counters["models_per_s"] =
      benchmark::Counter(static_cast<double>(state.iterations()),
                         benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ModelOpenV4MapFirstBatch)->Unit(benchmark::kMillisecond);

// The multi-partition series: 8 bus sections reduced per iteration via
// PortMacromodel::build_many.  builds_per_s counts PARTITION builds, so
// threads:4 / threads:1 is the partition-level parallel speedup the
// acceptance criterion gates on.
constexpr std::size_t kBuildPartitions = 8;

void BM_BuildParallel(benchmark::State& state) {
  const PartitionedBus bus(kBuildPartitions, kBuildSegments);
  sweep::ThreadPool pool(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    const auto mms = part::PortMacromodel::build_many(bus.parts, {.order = 2}, &pool);
    benchmark::DoNotOptimize(mms.size());
  }
  state.counters["builds_per_s"] = benchmark::Counter(
      static_cast<double>(state.iterations() * kBuildPartitions),
      benchmark::Counter::kIsRate);
}
// Real time, not main-thread CPU time: pool workers carry most of the
// work at threads>1, and the gated quantity is wall-clock builds/s.
BENCHMARK(BM_BuildParallel)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->ArgName("threads")
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  // The printed comparison table is for humans; CI bench runs set
  // AWE_BENCH_TABLE=0 and consume only the google-benchmark JSON.
  if (const char* e = std::getenv("AWE_BENCH_TABLE"); !e || std::string_view(e) != "0")
    print_comparison();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
