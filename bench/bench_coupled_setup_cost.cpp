// Paper §3.2 run-time comparison on the coupled-line timing model:
//
//   "A single AWE analysis for this circuit requires on average 1.12
//    seconds on a DECStation5000, while the AWEsymbolic analysis requires
//    5.41 seconds ... However, the incremental cost, which is crucial in
//    iterative applications, is 0.11 milliseconds for AWEsymbolic.  This
//    is four orders of magnitude faster than a numeric analysis with AWE."
//
// Shape to reproduce: symbolic setup costs a small multiple of one AWE
// run, but the incremental evaluation is orders of magnitude cheaper.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <vector>

#include "awe/awe.hpp"
#include "bench_util.hpp"
#include "circuits/coupled_lines.hpp"
#include "core/awesymbolic.hpp"

namespace {

using namespace awe;

const std::vector<std::string> kSymbols{circuits::CoupledLinesCircuit::kSymbolRdriver,
                                        circuits::CoupledLinesCircuit::kSymbolCload};

void print_comparison() {
  using benchutil::time_median;
  circuits::CoupledLineValues v;  // 1000 segments, as in the paper
  auto c = circuits::make_coupled_lines(v);

  std::printf("== coupled-line timing model: setup vs incremental cost ==\n");
  std::printf("(2 x %zu segments, %zu elements; symbols: driver R, load C)\n\n",
              v.segments, c.netlist.elements().size());

  const double t_awe = time_median(3, [&] {
    const auto rom = engine::run_awe(c.netlist, circuits::CoupledLinesCircuit::kInput,
                                     c.line2_out, {.order = 2});
    benchmark::DoNotOptimize(rom.dc_gain());
  });
  const double t_setup = time_median(3, [&] {
    const auto model = core::CompiledModel::build(
        c.netlist, kSymbols, circuits::CoupledLinesCircuit::kInput, c.line2_out,
        {.order = 2});
    benchmark::DoNotOptimize(model.instruction_count());
  });
  const auto model = core::CompiledModel::build(
      c.netlist, kSymbols, circuits::CoupledLinesCircuit::kInput, c.line2_out,
      {.order = 2});
  const double t_inc = time_median(5, [&] {
    double acc = 0.0;
    for (int i = 0; i < 1000; ++i) {
      const auto rom = model.evaluate(
          std::vector<double>{50.0 + 0.5 * i, 1e-12 * (0.5 + 0.001 * i)});
      acc += rom.step_response(10e-9);
    }
    benchmark::DoNotOptimize(acc);
  }) / 1000.0;

  benchutil::print_time("single full AWE analysis", t_awe);
  benchutil::print_time("AWEsymbolic setup (partition+symbolic+compile)", t_setup);
  benchutil::print_time("AWEsymbolic incremental cost per evaluation", t_inc);
  std::printf("\nsetup ratio   : symbolic/AWE = %.2fx   (paper: 5.41s/1.12s = 4.8x)\n",
              t_setup / t_awe);
  std::printf("incremental   : AWE/symbolic = %.0fx    (paper: ~1e4x)\n\n", t_awe / t_inc);
}

void BM_FullAwe_CoupledLines(benchmark::State& state) {
  circuits::CoupledLineValues v;
  v.segments = static_cast<std::size_t>(state.range(0));
  auto c = circuits::make_coupled_lines(v);
  for (auto _ : state) {
    const auto rom = engine::run_awe(c.netlist, circuits::CoupledLinesCircuit::kInput,
                                     c.line2_out, {.order = 2});
    benchmark::DoNotOptimize(rom.dc_gain());
  }
}
BENCHMARK(BM_FullAwe_CoupledLines)->Arg(100)->Arg(1000)->Unit(benchmark::kMillisecond);

void BM_SymbolicSetup_CoupledLines(benchmark::State& state) {
  circuits::CoupledLineValues v;
  v.segments = static_cast<std::size_t>(state.range(0));
  auto c = circuits::make_coupled_lines(v);
  for (auto _ : state) {
    const auto model = core::CompiledModel::build(
        c.netlist, kSymbols, circuits::CoupledLinesCircuit::kInput, c.line2_out,
        {.order = 2});
    benchmark::DoNotOptimize(model.instruction_count());
  }
}
BENCHMARK(BM_SymbolicSetup_CoupledLines)->Arg(100)->Arg(1000)->Unit(benchmark::kMillisecond);

void BM_SymbolicIncremental_CoupledLines(benchmark::State& state) {
  circuits::CoupledLineValues v;
  v.segments = static_cast<std::size_t>(state.range(0));
  auto c = circuits::make_coupled_lines(v);
  const auto model = core::CompiledModel::build(
      c.netlist, kSymbols, circuits::CoupledLinesCircuit::kInput, c.line2_out,
      {.order = 2});
  int i = 0;
  for (auto _ : state) {
    const auto rom = model.evaluate(
        std::vector<double>{50.0 + 0.5 * (i % 500), 1e-12 * (0.5 + 0.001 * (i % 500))});
    ++i;
    benchmark::DoNotOptimize(rom.step_response(10e-9));
  }
}
BENCHMARK(BM_SymbolicIncremental_CoupledLines)
    ->Arg(100)
    ->Arg(1000)
    ->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  print_comparison();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
