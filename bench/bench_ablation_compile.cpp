// Ablation C: what compilation buys over direct symbolic evaluation.
//
// The paper's "compiled set of operations" claim: evaluating the symbolic
// forms must be a short straight-line program, not a term-by-term walk of
// the polynomial expressions.  This bench compares three evaluation paths
// for the same symbolic moments:
//   1. compiled register program (CSE + Horner + register recycling),
//   2. uncompiled term-by-term polynomial evaluation,
//   3. full AWE re-analysis (no symbolic preprocessing at all),
// across models with growing symbol counts.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <vector>

#include "awe/awe.hpp"
#include "bench_util.hpp"
#include "circuits/ladders.hpp"
#include "circuits/opamp741.hpp"
#include "core/awesymbolic.hpp"

namespace {

using namespace awe;

struct Setup {
  circuit::Netlist netlist;
  circuit::NodeId out;
  std::vector<std::string> symbols;
  std::vector<double> nominal;
};

Setup ladder_setup(std::size_t nsymbols) {
  circuits::LadderValues v;
  v.segments = 64;
  auto lad = circuits::make_rc_ladder(v);
  const std::vector<std::string> pool{"r5", "c10", "r20", "c30", "r40", "c50"};
  Setup s;
  s.out = lad.out;
  s.symbols.assign(pool.begin(), pool.begin() + nsymbols);
  for (const auto& name : s.symbols)
    s.nominal.push_back(lad.netlist.elements()[*lad.netlist.find_element(name)].value);
  s.netlist = std::move(lad.netlist);
  return s;
}

void print_tables() {
  using benchutil::time_median;
  std::printf("== Ablation C: compiled program vs term-by-term evaluation ==\n\n");
  std::printf("%-9s %10s %14s %14s %14s %10s\n", "#symbols", "instrs",
              "compiled/pt", "uncompiled/pt", "full AWE/pt", "speedup");
  for (std::size_t k = 1; k <= 5; ++k) {
    auto s = ladder_setup(k);
    const auto model = core::CompiledModel::build(
        s.netlist, s.symbols, circuits::LadderCircuit::kInput, s.out, {.order = 2});
    auto ws = model.make_workspace();
    auto vals = s.nominal;

    const double t_comp = time_median(3, [&] {
      double acc = 0.0;
      for (int i = 0; i < 2048; ++i) {
        vals[0] *= 1.0000001;
        model.moments_at(vals, ws);
        acc += ws.moments[0];
      }
      benchmark::DoNotOptimize(acc);
    }) / 2048.0;

    const double t_unc = time_median(3, [&] {
      double acc = 0.0;
      for (int i = 0; i < 64; ++i) {
        vals[0] *= 1.0000001;
        acc += model.moments_uncompiled(vals)[0];
      }
      benchmark::DoNotOptimize(acc);
    }) / 64.0;

    const double t_awe = time_median(3, [&] {
      for (std::size_t j = 0; j < s.symbols.size(); ++j)
        s.netlist.set_value(s.symbols[j], vals[j]);
      const auto rom = engine::run_awe(s.netlist, circuits::LadderCircuit::kInput,
                                       s.out, {.order = 2});
      benchmark::DoNotOptimize(rom.dc_gain());
    });

    std::printf("%-9zu %10zu %11.3f us %11.3f us %11.3f us %9.1fx\n", k,
                model.instruction_count(), t_comp * 1e6, t_unc * 1e6, t_awe * 1e6,
                t_unc / t_comp);
  }

  // The 741 headline numbers (paper: 0.37 us per symbolic evaluation).
  auto amp = circuits::make_opamp741();
  const std::vector<std::string> symbols{circuits::Opamp741Circuit::kSymbolGout,
                                         circuits::Opamp741Circuit::kSymbolCcomp};
  const auto model = core::CompiledModel::build(
      amp.netlist, symbols, circuits::Opamp741Circuit::kInput, amp.out, {.order = 2});
  auto ws = model.make_workspace();
  const circuits::Opamp741Values nom;
  std::vector<double> vals{nom.gout_q14, nom.c_comp};
  const double t = time_median(5, [&] {
    double acc = 0.0;
    for (int i = 0; i < 4096; ++i) {
      vals[1] *= 1.0000001;
      model.moments_at(vals, ws);
      acc += ws.moments[0];
    }
    benchmark::DoNotOptimize(acc);
  }) / 4096.0;
  std::printf("\n741 compiled moment evaluation: %.3f us/point "
              "(paper: 0.37 us on a DECstation 5000)\n\n",
              t * 1e6);
}

void BM_CompiledMoments(benchmark::State& state) {
  auto s = ladder_setup(static_cast<std::size_t>(state.range(0)));
  const auto model = core::CompiledModel::build(
      s.netlist, s.symbols, circuits::LadderCircuit::kInput, s.out, {.order = 2});
  auto ws = model.make_workspace();
  auto vals = s.nominal;
  for (auto _ : state) {
    vals[0] *= 1.0000001;
    model.moments_at(vals, ws);
    benchmark::DoNotOptimize(ws.moments[0]);
  }
}
BENCHMARK(BM_CompiledMoments)->DenseRange(1, 5);

void BM_UncompiledMoments(benchmark::State& state) {
  auto s = ladder_setup(static_cast<std::size_t>(state.range(0)));
  const auto model = core::CompiledModel::build(
      s.netlist, s.symbols, circuits::LadderCircuit::kInput, s.out, {.order = 2});
  auto vals = s.nominal;
  for (auto _ : state) {
    vals[0] *= 1.0000001;
    benchmark::DoNotOptimize(model.moments_uncompiled(vals)[0]);
  }
}
BENCHMARK(BM_UncompiledMoments)->DenseRange(1, 5)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  print_tables();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
