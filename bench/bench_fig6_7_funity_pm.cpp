// Figures 6 and 7 of the paper: unity-gain frequency and phase margin of
// the 741 as functions of (gout_q14, c_comp), from the *second-order*
// symbolic form.  The DC-gain surface from the second-order form is also
// checked against the first-order one (the paper notes they are identical
// because the first moment is always exact).
#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "circuits/opamp741.hpp"
#include "core/awesymbolic.hpp"

namespace {

using namespace awe;

const std::vector<std::string> kSymbols{circuits::Opamp741Circuit::kSymbolGout,
                                        circuits::Opamp741Circuit::kSymbolCcomp};

core::CompiledModel build_model(std::size_t order) {
  auto amp = circuits::make_opamp741();
  return core::CompiledModel::build(amp.netlist, kSymbols,
                                    circuits::Opamp741Circuit::kInput, amp.out,
                                    {.order = order});
}

void print_figures() {
  const auto model2 = build_model(2);
  const auto model1 = build_model(1);
  const circuits::Opamp741Values nominal;
  constexpr int kGrid = 9;
  auto gval = [&](int i) {
    return nominal.gout_q14 * (0.4 + 1.6 * i / double(kGrid - 1));
  };
  auto cval = [&](int j) {
    return nominal.c_comp * (0.4 + 1.6 * j / double(kGrid - 1));
  };

  std::printf("== Figure 6: unity-gain frequency [MHz], 2nd-order symbolic form ==\n\n");
  std::printf("%11s", "gout\\cc");
  for (int j = 0; j < kGrid; ++j) std::printf(" %8.1fp", cval(j) * 1e12);
  std::printf("\n");
  for (int i = 0; i < kGrid; ++i) {
    std::printf("%9.2fmS", gval(i) * 1e3);
    for (int j = 0; j < kGrid; ++j) {
      const auto rom = model2.evaluate(std::vector<double>{gval(i), cval(j)});
      std::printf(" %9.4f", rom.unity_gain_frequency() / 1e6);
    }
    std::printf("\n");
  }

  std::printf("\n== Figure 7: phase margin [deg], 2nd-order symbolic form ==\n\n");
  for (int i = 0; i < kGrid; ++i) {
    std::printf("%9.2fmS", gval(i) * 1e3);
    for (int j = 0; j < kGrid; ++j) {
      const auto rom = model2.evaluate(std::vector<double>{gval(i), cval(j)});
      std::printf(" %9.2f", rom.phase_margin_deg());
    }
    std::printf("\n");
  }

  // Paper: "The DC gain plot from the second order form is identical to
  // that of the first order form ... the first moment computed by AWE is
  // always an exact form of the DC gain."
  double max_rel = 0.0;
  for (int i = 0; i < kGrid; i += 2)
    for (int j = 0; j < kGrid; j += 2) {
      const std::vector<double> v{gval(i), cval(j)};
      max_rel = std::max(max_rel, std::abs(model2.evaluate(v).dc_gain() /
                                               model1.evaluate(v).dc_gain() -
                                           1.0));
    }
  std::printf("\nDC gain: 2nd-order vs 1st-order surfaces, max relative deviation %.2e\n\n",
              max_rel);
}

void BM_Funity_SurfacePoint(benchmark::State& state) {
  const auto model = build_model(2);
  const circuits::Opamp741Values nominal;
  int i = 0;
  for (auto _ : state) {
    const double f = 0.5 + 0.001 * (i++ % 1000);
    const auto rom =
        model.evaluate(std::vector<double>{nominal.gout_q14 * f, nominal.c_comp * f});
    benchmark::DoNotOptimize(rom.unity_gain_frequency());
  }
}
BENCHMARK(BM_Funity_SurfacePoint)->Unit(benchmark::kMicrosecond);

void BM_PhaseMargin_SurfacePoint(benchmark::State& state) {
  const auto model = build_model(2);
  const circuits::Opamp741Values nominal;
  int i = 0;
  for (auto _ : state) {
    const double f = 0.5 + 0.001 * (i++ % 1000);
    const auto rom =
        model.evaluate(std::vector<double>{nominal.gout_q14 * f, nominal.c_comp * f});
    benchmark::DoNotOptimize(rom.phase_margin_deg());
  }
}
BENCHMARK(BM_PhaseMargin_SurfacePoint)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  print_figures();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
