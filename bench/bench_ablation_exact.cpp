// Ablation E: exact symbolic analysis (the traditional baseline the paper
// argues against) vs AWEsymbolic, as circuit size grows.
//
// The paper, §1: exact methods "compute an exact form of the network
// functions ... For high order systems, this can lead to complex symbolic
// forms, even when the number of symbols is low."  This bench measures
// that blowup directly — exact-form term counts and setup times explode
// (and the method hits its structural size limit almost immediately),
// while the AWEsymbolic compiled model stays port-sized no matter how
// large the numeric circuit grows.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "circuit/netlist.hpp"
#include "core/awesymbolic.hpp"
#include "exact/exact_symbolic.hpp"

namespace {

using namespace awe;

struct Ladder {
  circuit::Netlist netlist;
  circuit::NodeId out;
};

Ladder ladder(std::size_t nodes) {
  Ladder l;
  auto prev = l.netlist.node("in");
  l.netlist.add_voltage_source("vin", prev, circuit::kGround, 1.0);
  circuit::NodeId last = prev;
  for (std::size_t i = 0; i < nodes; ++i) {
    const auto n = l.netlist.node("n" + std::to_string(i));
    l.netlist.add_resistor("r" + std::to_string(i), last, n, 100.0 * (i + 1));
    l.netlist.add_capacitor("c" + std::to_string(i), n, circuit::kGround,
                            1e-12 * (i + 1));
    last = n;
  }
  l.out = last;
  return l;
}

void print_tables() {
  using benchutil::time_median;
  std::printf("== Ablation E: exact symbolic forms vs AWEsymbolic ==\n\n");
  std::printf("(RC ladder, 2 symbols {c0, r1}; exact H(s,e) by Cramer on the full\n"
              " symbolic MNA matrix vs order-2 compiled AWEsymbolic model)\n\n");
  std::printf("%-8s %14s %14s %14s %14s\n", "nodes", "exact terms", "exact setup",
              "AWEsym instrs", "AWEsym setup");
  for (const std::size_t nodes : {3u, 6u, 9u, 12u, 14u}) {
    auto l = ladder(nodes);
    const std::vector<std::string> symbols{"c0", "r1"};
    std::size_t exact_terms = 0;
    double t_exact = -1.0;
    std::string exact_note;
    try {
      t_exact = time_median(2, [&] {
        const auto xf =
            exact::exact_symbolic_transfer(l.netlist, symbols, "vin", l.out);
        exact_terms = xf.h.num().term_count() + xf.h.den().term_count();
      });
    } catch (const std::exception&) {
      exact_note = "REFUSED (>16 MNA unknowns)";
    }
    std::size_t instrs = 0;
    const double t_sym = time_median(2, [&] {
      const auto m = core::CompiledModel::build(l.netlist, symbols, "vin", l.out,
                                                {.order = 2});
      instrs = m.instruction_count();
    });
    if (exact_note.empty())
      std::printf("%-8zu %14zu %11.3f ms %14zu %11.3f ms\n", nodes, exact_terms,
                  t_exact * 1e3, instrs, t_sym * 1e3);
    else
      std::printf("%-8zu %14s %14s %14zu %11.3f ms\n", nodes, "-", exact_note.c_str(),
                  instrs, t_sym * 1e3);
  }
  std::printf("\n(the AWEsymbolic column keeps growing only with the PORT count —\n"
              " run bench_ablation_partitioning for the circuit-size sweep to 2048)\n\n");
}

void BM_ExactSetup(benchmark::State& state) {
  auto l = ladder(static_cast<std::size_t>(state.range(0)));
  const std::vector<std::string> symbols{"c0", "r1"};
  for (auto _ : state) {
    const auto xf = exact::exact_symbolic_transfer(l.netlist, symbols, "vin", l.out);
    benchmark::DoNotOptimize(xf.h.den().term_count());
  }
}
BENCHMARK(BM_ExactSetup)->Arg(3)->Arg(6)->Arg(9)->Arg(12)->Unit(benchmark::kMillisecond);

void BM_AwesymbolicSetup(benchmark::State& state) {
  auto l = ladder(static_cast<std::size_t>(state.range(0)));
  const std::vector<std::string> symbols{"c0", "r1"};
  for (auto _ : state) {
    const auto m =
        core::CompiledModel::build(l.netlist, symbols, "vin", l.out, {.order = 2});
    benchmark::DoNotOptimize(m.instruction_count());
  }
}
BENCHMARK(BM_AwesymbolicSetup)->Arg(3)->Arg(12)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_tables();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
