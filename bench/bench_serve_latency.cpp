// Request latency and throughput of the awe_serve evaluation daemon
// (DESIGN.md §16.6): an in-process Server on a unix socket, driven by the
// SAME serve::loadgen campaign the awe_loadgen CLI runs, so the committed
// baseline measures exactly what operators measure.
//
// Rows:
//   BM_ServePing/connections:1   protocol floor — one connection, ping
//                                round-trips (no eval work).  The ANCHOR:
//                                every serve counter is gated relative to
//                                it, so the baseline transfers across
//                                machines of different absolute speed.
//   BM_ServeEval/connections:N   eval mc=64 summary requests over N
//                                concurrent connections against 2 workers.
//
// Perf-CI contract: every row exports
//   serve_requests_per_s  completed requests/sec (throughput)
//   inv_p50_per_s         1e6 / p50_us  — inverse latency percentiles,
//   inv_p99_per_s         1e6 / p99_us    so "bigger is better" holds and
//                                         check_bench_gate.py's drop-below
//                                         threshold gates tail latency
//   p50_us, p99_us        the raw percentiles (informational, not gated)
// bench/check_bench_gate.py gates the first three against
// BENCH_baseline.json, anchored to BM_ServePing/connections:1.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>

#include "serve/loadgen.hpp"
#include "serve/server.hpp"

namespace {

using namespace awe;
namespace fs = std::filesystem;

constexpr const char* kDeck = R"(* serve latency deck
Vin in 0 1
R1 in a 1k
C1 a 0 10p
R2 a out 2k
C2 out 0 5p
.symbol R2
.symbol C2
.input vin
.output out
.end
)";

/// One daemon on a unix socket in a self-cleaning temp dir.
class ServerHarness {
 public:
  ServerHarness() {
    dir_ = fs::temp_directory_path() /
           ("awe_bench_serve_" + std::to_string(::getpid()));
    fs::create_directories(dir_);
    const std::string deck = (dir_ / "deck.sp").string();
    std::ofstream(deck) << kDeck;
    serve::ServerConfig cfg;
    cfg.deck_path = deck;
    cfg.unix_path = (dir_ / "s.sock").string();
    cfg.workers = 2;
    server_ = std::make_unique<serve::Server>(cfg);
    server_->start();
    unix_path_ = cfg.unix_path;
  }
  ~ServerHarness() {
    server_.reset();
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }
  const std::string& unix_path() const { return unix_path_; }

 private:
  fs::path dir_;
  std::string unix_path_;
  std::unique_ptr<serve::Server> server_;
};

/// Time one campaign per iteration (manual time: the campaign's own wall
/// clock, so multi-connection rows report true end-to-end throughput) and
/// export the latency-distribution counters.
void run_case(benchmark::State& state, const char* op, std::size_t mc,
              std::size_t connections) {
  ServerHarness harness;
  serve::loadgen::CampaignOptions opt;
  opt.unix_path = harness.unix_path();
  opt.connections = connections;
  opt.requests = 64;
  opt.op = op;
  opt.mc = mc;
  opt.summary = true;

  std::uint64_t total = 0;
  double p50_us = 0.0, p99_us = 0.0;
  for (auto _ : state) {
    const serve::loadgen::CampaignResult res = serve::loadgen::run_campaign(opt);
    if (res.transport_error || res.errors > 0) {
      state.SkipWithError("campaign hit transport/protocol errors");
      return;
    }
    state.SetIterationTime(res.elapsed_s);
    total += res.requests();
    p50_us = res.percentile_us(50);
    p99_us = res.percentile_us(99);
  }
  state.counters["serve_requests_per_s"] =
      benchmark::Counter(static_cast<double>(total), benchmark::Counter::kIsRate);
  state.counters["p50_us"] = p50_us;
  state.counters["p99_us"] = p99_us;
  state.counters["inv_p50_per_s"] = p50_us > 0 ? 1e6 / p50_us : 0.0;
  state.counters["inv_p99_per_s"] = p99_us > 0 ? 1e6 / p99_us : 0.0;
}

void BM_ServePing(benchmark::State& state) {
  run_case(state, "ping", 0, static_cast<std::size_t>(state.range(0)));
}
BENCHMARK(BM_ServePing)->ArgName("connections")->Arg(1)->UseManualTime();

void BM_ServeEval(benchmark::State& state) {
  run_case(state, "eval", 64, static_cast<std::size_t>(state.range(0)));
}
BENCHMARK(BM_ServeEval)
    ->ArgName("connections")
    ->Arg(1)
    ->Arg(4)
    ->UseManualTime();

}  // namespace

BENCHMARK_MAIN();
