#!/usr/bin/env python3
"""Perf gate for bench_sweep_scaling.

Compares the `norm_ops_per_s` counter (points/sec x compiled-program
instruction count — a wall-time-free work rate, see DESIGN.md "Perf gate")
of a fresh google-benchmark JSON run against the committed
BENCH_baseline.json and fails on a regression beyond the threshold.

Usage:
  check_bench_gate.py RESULTS.json BASELINE.json [--threshold 0.35]
                      [--counter norm_ops_per_s] [--anchor BM_ScalarLoop]
                      [--no-anchor] [--update]

Exit codes: 0 = pass, 1 = regression or missing benchmark, 2 = bad input.

By default every counter is divided by the same run's anchor benchmark
(BM_ScalarLoop) before comparing, so the gated quantity is the engine's
speedup STRUCTURE relative to the scalar interpreter on the same machine
— a committed baseline then transfers across runners of different
absolute speed.  --no-anchor compares raw counter values (only sensible
on dedicated, stable hardware).

The default threshold is deliberately loose (35%): shared CI runners have
noisy throughput even after anchoring, and the gate's job is to catch
*structural* regressions (an interpreter de-optimization, a fusion pass
that stopped firing, an accidental O(n) -> O(n^2)), not 5% jitter.
Tighten it only with dedicated hardware.

To regenerate the baseline after an intentional perf change:
  AWE_BENCH_TABLE=0 bench/bench_sweep_scaling \
      --benchmark_out=results.json --benchmark_out_format=json
  python3 bench/check_bench_gate.py results.json BENCH_baseline.json --update
"""

import argparse
import json
import math
import shutil
import sys


def load_counters(path, counter):
    """Map benchmark name -> counter value, skipping aggregate rows."""
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"error: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)
    out = {}
    for b in doc.get("benchmarks", []):
        if b.get("run_type") == "aggregate":
            continue
        name = b.get("name")
        val = b.get(counter)
        if name is None or val is None:
            continue
        out[name] = float(val)
    if not out:
        print(f"error: no '{counter}' counters found in {path}", file=sys.stderr)
        sys.exit(2)
    return out


def main():
    ap = argparse.ArgumentParser(description=__doc__,
                                 formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("results", help="fresh --benchmark_out JSON")
    ap.add_argument("baseline", help="committed BENCH_baseline.json")
    ap.add_argument("--threshold", type=float, default=0.35,
                    help="max allowed fractional drop vs baseline (default 0.35)")
    ap.add_argument("--counter", default="norm_ops_per_s",
                    help="counter to gate on (default norm_ops_per_s)")
    ap.add_argument("--anchor", default="BM_ScalarLoop",
                    help="benchmark to divide every counter by (default "
                         "BM_ScalarLoop)")
    ap.add_argument("--no-anchor", action="store_true",
                    help="gate on raw counter values instead of "
                         "anchor-relative ratios")
    ap.add_argument("--update", action="store_true",
                    help="copy RESULTS over BASELINE instead of gating")
    args = ap.parse_args()

    if args.update:
        shutil.copyfile(args.results, args.baseline)
        print(f"baseline updated: {args.baseline}")
        return 0

    cur = load_counters(args.results, args.counter)
    base = load_counters(args.baseline, args.counter)

    if not args.no_anchor:
        for name, table in (("results", cur), ("baseline", base)):
            a = table.get(args.anchor)
            if not a:
                print(f"error: anchor '{args.anchor}' missing from {name}",
                      file=sys.stderr)
                sys.exit(2)
            for k in table:
                table[k] /= a
        cur.pop(args.anchor, None)
        base.pop(args.anchor, None)
        print(f"(counters anchored to {args.anchor} within each run)")

    failures = []
    width = max(len(n) for n in base)
    print(f"perf gate on '{args.counter}' (fail below "
          f"{(1.0 - args.threshold) * 100:.0f}% of baseline):")
    for name in sorted(base):
        b = base[name]
        c = cur.get(name)
        if c is None:
            failures.append(name)
            print(f"  FAIL {name:<{width}}  missing from results")
            continue
        ratio = c / b if b > 0 else math.inf
        ok = ratio >= 1.0 - args.threshold
        tag = "ok  " if ok else "FAIL"
        print(f"  {tag} {name:<{width}}  {c:.3e} vs {b:.3e}  ({ratio:6.2%})")
        if not ok:
            failures.append(name)
    for name in sorted(set(cur) - set(base)):
        print(f"  note {name:<{width}}  not in baseline (run --update to adopt)")

    if failures:
        print(f"\nFAILED: {len(failures)} benchmark(s) regressed beyond "
              f"{args.threshold:.0%}. If intentional, regenerate the baseline "
              f"(see --help).", file=sys.stderr)
        return 1
    print("\nPASSED: all benchmarks within threshold.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
