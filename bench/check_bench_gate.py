#!/usr/bin/env python3
"""Perf gate for the benchmark suite.

Compares gated counters of fresh google-benchmark JSON runs against the
committed BENCH_baseline.json and fails on a regression beyond the
threshold.  Two counter families are gated by default:

  norm_ops_per_s  (bench_sweep_scaling)      anchored to BM_ScalarLoop
  builds_per_s    (bench_coupled_setup_cost) anchored to BM_BuildCold

Usage:
  check_bench_gate.py RESULTS.json [RESULTS2.json ...] BASELINE.json
                      [--threshold 0.35] [--gate COUNTER[:ANCHOR] ...]
                      [--expect-zero COUNTER ...] [--no-anchor] [--update]

--expect-zero gates a health counter rather than a rate: every RESULTS row
carrying it must report exactly 0 (e.g. degraded_points — the sweep
engine's degradation ladder must never fire on the golden example decks).
It checks the fresh results only; the baseline plays no part.

Exit codes: 0 = pass, 1 = regression or missing benchmark, 2 = bad input.

Several results files (one per benchmark binary) are merged into one run
before gating; the last positional argument is always the baseline.  Each
--gate names a counter and the benchmark whose counter anchors it;
repeat the flag to gate several families, or omit it for the defaults
above.  The legacy --counter/--anchor pair is still accepted and defines
a single gate.

By default every counter is divided by the same run's anchor benchmark
before comparing, so the gated quantity is a speedup STRUCTURE on the
same machine (interpreter speedup over the scalar loop; warm-cache and
parallel-build speedup over a cold serial build) — a committed baseline
then transfers across runners of different absolute speed.  --no-anchor
compares raw counter values (only sensible on dedicated, stable
hardware).

The default threshold is deliberately loose (35%): shared CI runners have
noisy throughput even after anchoring, and the gate's job is to catch
*structural* regressions (an interpreter de-optimization, a fusion pass
that stopped firing, a cache probe that silently started rebuilding), not
5% jitter.  Tighten it only with dedicated hardware.

To regenerate the baseline after an intentional perf change:
  AWE_BENCH_TABLE=0 bench/bench_sweep_scaling \
      --benchmark_out=sweep.json --benchmark_out_format=json
  AWE_BENCH_TABLE=0 bench/bench_coupled_setup_cost \
      --benchmark_out=build.json --benchmark_out_format=json
  python3 bench/check_bench_gate.py sweep.json build.json \
      BENCH_baseline.json --update
"""

import argparse
import json
import math
import sys


def load_rows(path):
    """Benchmark rows of one google-benchmark JSON file (no aggregates)."""
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"error: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)
    rows = [b for b in doc.get("benchmarks", [])
            if b.get("run_type") != "aggregate" and b.get("name")]
    if not rows:
        print(f"error: no benchmark rows in {path}", file=sys.stderr)
        sys.exit(2)
    return doc, rows


def merge_rows(paths):
    """Merge several runs into one name -> row map (later files win)."""
    merged = {}
    for path in paths:
        _, rows = load_rows(path)
        for b in rows:
            merged[b["name"]] = b
    return merged


def counter_table(rows, counter, origin):
    """Map benchmark name -> counter value for rows that carry it."""
    out = {name: float(b[counter]) for name, b in rows.items()
           if b.get(counter) is not None}
    if not out:
        print(f"error: no '{counter}' counters found in {origin}",
              file=sys.stderr)
        sys.exit(2)
    return out


def gate_one(counter, anchor, cur_rows, base_rows, threshold, use_anchor):
    """Gate one counter family; returns the list of failing benchmarks."""
    cur = counter_table(cur_rows, counter, "results")
    base = counter_table(base_rows, counter, "baseline")

    if use_anchor:
        for origin, table in (("results", cur), ("baseline", base)):
            a = table.get(anchor)
            if not a:
                print(f"error: anchor '{anchor}' missing from {origin}",
                      file=sys.stderr)
                sys.exit(2)
            for k in table:
                table[k] /= a
        cur.pop(anchor, None)
        base.pop(anchor, None)
        print(f"(counters anchored to {anchor} within each run)")

    # A gate whose counter exists on no baseline row beyond the anchor
    # would otherwise gate nothing and "pass" vacuously (or crash on the
    # width computation): refuse loudly instead — the --gate spec or the
    # committed baseline is wrong.
    if not base:
        print(f"error: counter '{counter}' has no gated baseline rows "
              f"(beyond the anchor); wrong --gate or stale baseline?",
              file=sys.stderr)
        sys.exit(2)

    failures = []
    width = max(len(n) for n in set(base) | set(cur))
    print(f"perf gate on '{counter}' (fail below "
          f"{(1.0 - threshold) * 100:.0f}% of baseline):")
    for name in sorted(base):
        b = base[name]
        c = cur.get(name)
        if c is None:
            failures.append(name)
            print(f"  FAIL {name:<{width}}  missing from results")
            continue
        ratio = c / b if b > 0 else math.inf
        ok = ratio >= 1.0 - threshold
        tag = "ok  " if ok else "FAIL"
        print(f"  {tag} {name:<{width}}  {c:.3e} vs {b:.3e}  ({ratio:6.2%})")
        if not ok:
            failures.append(name)
    for name in sorted(set(cur) - set(base)):
        print(f"  note {name:<{width}}  not in baseline (run --update to adopt)")
    return failures


def dominates(spec, cur_rows):
    """Results-only ordering gate: WINNER's counter must exceed LOSER's.

    Spec is WINNER,LOSER[,COUNTER[,FACTOR]] (counter defaults to
    norm_ops_per_s, factor to 1.0; comma-separated because
    google-benchmark row names contain colons).  The gate passes when
    winner > factor * loser, so FACTOR asserts a minimum speedup — e.g.
    the incremental rebuild must beat a cold build by at least 10x.
    Both rows come from the same fresh run, so no anchoring is needed —
    the comparison is within-machine by construction.  Used to assert
    structural superiority claims, e.g. the native AOT backend beating the
    fast interpreter on the sweep workload.
    """
    parts = spec.split(",")
    if len(parts) not in (2, 3, 4) or not all(parts):
        print(f"error: bad --dominates '{spec}' "
              f"(want WINNER,LOSER[,COUNTER[,FACTOR]])", file=sys.stderr)
        sys.exit(2)
    winner, loser = parts[0], parts[1]
    counter = parts[2] if len(parts) >= 3 else "norm_ops_per_s"
    try:
        factor = float(parts[3]) if len(parts) == 4 else 1.0
    except ValueError:
        factor = -1.0
    if factor <= 0.0 or not math.isfinite(factor):
        print(f"error: bad --dominates factor in '{spec}' "
              f"(want a positive number)", file=sys.stderr)
        sys.exit(2)
    values = {}
    for name in (winner, loser):
        row = cur_rows.get(name)
        if row is None or row.get(counter) is None:
            print(f"error: --dominates: no '{counter}' for '{name}' in results",
                  file=sys.stderr)
            sys.exit(2)
        values[name] = float(row[counter])
    ok = values[winner] > factor * values[loser]
    ratio = values[winner] / values[loser] if values[loser] > 0 else math.inf
    print(f"dominance gate on '{counter}' (need winner > {factor:g}x loser):")
    print(f"  {'ok  ' if ok else 'FAIL'} {winner} ({values[winner]:.3e}) "
          f"{'>' if ok else '<='} {factor:g} x {loser} ({values[loser]:.3e})"
          f"  ({ratio:.2f}x)")
    return [] if ok else [f"{winner} !> {factor:g}*{loser}"]


def expect_zero(counter, cur_rows):
    """Fail every results row whose `counter` is nonzero (results-only)."""
    carriers = {name: float(b[counter]) for name, b in cur_rows.items()
                if b.get(counter) is not None}
    if not carriers:
        print(f"error: --expect-zero '{counter}': no results row carries it",
              file=sys.stderr)
        sys.exit(2)
    failures = []
    width = max(len(n) for n in carriers)
    print(f"zero gate on '{counter}' (any nonzero value fails):")
    for name in sorted(carriers):
        v = carriers[name]
        ok = v == 0.0
        print(f"  {'ok  ' if ok else 'FAIL'} {name:<{width}}  {v:g}")
        if not ok:
            failures.append(name)
    return failures


def main():
    ap = argparse.ArgumentParser(description=__doc__,
                                 formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("results", nargs="+",
                    help="fresh --benchmark_out JSON file(s), baseline last")
    ap.add_argument("baseline", help="committed BENCH_baseline.json")
    ap.add_argument("--threshold", type=float, default=0.35,
                    help="max allowed fractional drop vs baseline (default 0.35)")
    ap.add_argument("--gate", action="append", metavar="COUNTER[:ANCHOR]",
                    help="counter family to gate, with its anchor benchmark; "
                         "repeatable (default: norm_ops_per_s:BM_ScalarLoop "
                         "and builds_per_s:BM_BuildCold)")
    ap.add_argument("--counter", default=None,
                    help="legacy: single counter to gate on")
    ap.add_argument("--anchor", default="BM_ScalarLoop",
                    help="legacy: anchor for --counter (default BM_ScalarLoop)")
    ap.add_argument("--expect-zero", action="append", metavar="COUNTER",
                    default=[],
                    help="health counter that must be exactly 0 in every "
                         "results row carrying it; repeatable")
    ap.add_argument("--dominates", action="append",
                    metavar="WINNER,LOSER[,COUNTER[,FACTOR]]",
                    default=[],
                    help="results-only ordering gate: WINNER's counter "
                         "(default norm_ops_per_s) must exceed FACTOR "
                         "(default 1.0) times LOSER's in the fresh run; "
                         "repeatable")
    ap.add_argument("--no-anchor", action="store_true",
                    help="gate on raw counter values instead of "
                         "anchor-relative ratios")
    ap.add_argument("--update", action="store_true",
                    help="write merged RESULTS over BASELINE instead of gating")
    args = ap.parse_args()

    if args.update:
        doc, _ = load_rows(args.results[0])
        merged = merge_rows(args.results)
        doc["benchmarks"] = list(merged.values())
        with open(args.baseline, "w", encoding="utf-8") as f:
            json.dump(doc, f, indent=1)
            f.write("\n")
        print(f"baseline updated: {args.baseline} "
              f"({len(merged)} benchmarks from {len(args.results)} run(s))")
        return 0

    if args.counter is not None:
        gates = [(args.counter, args.anchor)]
    else:
        specs = args.gate or ["norm_ops_per_s:BM_ScalarLoop",
                              "builds_per_s:BM_BuildCold"]
        gates = []
        for spec in specs:
            counter, sep, anchor = spec.partition(":")
            if not counter or (not args.no_anchor and not anchor):
                print(f"error: bad --gate '{spec}' (want COUNTER:ANCHOR)",
                      file=sys.stderr)
                sys.exit(2)
            gates.append((counter, anchor))

    cur_rows = merge_rows(args.results)
    base_rows = merge_rows([args.baseline])

    failures = []
    for i, (counter, anchor) in enumerate(gates):
        if i:
            print()
        failures += gate_one(counter, anchor, cur_rows, base_rows,
                             args.threshold, not args.no_anchor)
    zero_failures = []
    for counter in args.expect_zero:
        print()
        zero_failures += expect_zero(counter, cur_rows)
    dom_failures = []
    for spec in args.dominates:
        print()
        dom_failures += dominates(spec, cur_rows)

    if failures or zero_failures or dom_failures:
        if failures:
            print(f"\nFAILED: {len(failures)} benchmark(s) regressed beyond "
                  f"{args.threshold:.0%}. If intentional, regenerate the "
                  f"baseline (see --help).", file=sys.stderr)
        if zero_failures:
            print(f"\nFAILED: {len(zero_failures)} benchmark(s) reported a "
                  f"nonzero health counter that must be 0.", file=sys.stderr)
        if dom_failures:
            print(f"\nFAILED: {len(dom_failures)} dominance gate(s) not met: "
                  f"{'; '.join(dom_failures)}.", file=sys.stderr)
        return 1
    print("\nPASSED: all benchmarks within threshold.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
