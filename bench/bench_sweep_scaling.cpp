// Sweep-engine scaling: points/sec of the parallel batched sweep vs the
// scalar per-point loop on a Monte-Carlo-sized point set (the paper's
// repeated-evaluation workload at statistical-analysis scale), in both
// interpreter modes — kStrict (unfused, bit-reproducible) and kFast (the
// peephole-fused stream).
//
// Methodology (documented in DESIGN.md "Batch and parallel evaluation"):
// the baseline is the best the PRE-ENGINE code could do — a single-thread
// loop over CompiledModel::moments_at with a reused Workspace, i.e.
// allocation-free but scalar and serial.  The engine rows then isolate
// three effects: batch width (SoA interpreter, 1 thread), thread count
// (static-chunked pool at the best width), and fusion (kFast vs kStrict at
// identical geometry — the fused-vs-unfused series).
//
// Perf-CI contract: every registered google-benchmark case exports a
// `norm_ops_per_s` counter = points/sec x strict-stream instruction count.
// That is the work rate in *model operations*, normalized so the number is
// comparable across PRs even when the compiled program's length changes;
// bench/check_bench_gate.py gates it against BENCH_baseline.json.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string_view>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "circuits/opamp741.hpp"
#include "core/awesymbolic.hpp"
#include "core/native_backend.hpp"
#include "engine/sweep.hpp"

namespace {

using namespace awe;

constexpr std::size_t kPoints = 100000;  // >= 1e5-point sweep

core::CompiledModel build_opamp_model(bool with_gradients = false) {
  auto amp = circuits::make_opamp741();
  return core::CompiledModel::build(
      amp.netlist,
      {circuits::Opamp741Circuit::kSymbolGout, circuits::Opamp741Circuit::kSymbolCcomp},
      circuits::Opamp741Circuit::kInput, amp.out,
      {.order = 2, .with_gradients = with_gradients});
}

const core::CompiledModel& opamp_model() {
  static const core::CompiledModel model = build_opamp_model();
  return model;
}

/// The same 741 model compiled with the reverse-mode gradient stream
/// (DESIGN.md §14), for the gradient-sweep overhead rows.
const core::CompiledModel& opamp_gradient_model() {
  static const core::CompiledModel model = build_opamp_model(/*with_gradients=*/true);
  return model;
}

/// The same model with the AOT .so attached (compiled into the shared
/// scratch dir), or nullptr when the machine has no C compiler — native
/// rows then SkipWithError instead of silently benchmarking the fallback.
const core::CompiledModel* native_opamp_model() {
  static const core::CompiledModel* model = []() -> const core::CompiledModel* {
    auto m = std::make_unique<core::CompiledModel>(build_opamp_model());
    if (!m->attach_native("").ok()) return nullptr;
    return m.release();
  }();
  return model;
}

std::vector<double> mc_points(std::size_t n) {
  const circuits::Opamp741Values nominal;
  const std::vector<sweep::Distribution> dists{
      sweep::Distribution::lognormal(nominal.gout_q14, 0.2),
      sweep::Distribution::lognormal(nominal.c_comp, 0.2)};
  return sweep::sample_points(dists, n, 2024);
}

/// Scalar baseline: serial allocation-free per-point loop.
double scalar_loop_seconds(const core::CompiledModel& model,
                           const std::vector<double>& pts, std::size_t n) {
  return benchutil::time_median(3, [&] {
    auto ws = model.make_workspace();
    std::vector<double> vals(2);
    double acc = 0.0;
    for (std::size_t p = 0; p < n; ++p) {
      vals[0] = pts[p];
      vals[1] = pts[n + p];
      model.moments_at(vals, ws);
      acc += ws.moments[0];
    }
    benchmark::DoNotOptimize(acc);
  });
}

double sweep_seconds(const core::CompiledModel& model, const std::vector<double>& pts,
                     std::size_t n, std::size_t threads, std::size_t width,
                     core::EvalMode mode,
                     core::EvalBackend backend = core::EvalBackend::kInterpreter) {
  sweep::SweepOptions opts;
  opts.threads = threads;
  opts.batch_width = width;
  opts.mode = mode;
  opts.backend = backend;
  return benchutil::time_median(3, [&] {
    const auto res = sweep::run_sweep(model, pts, n, opts);
    benchmark::DoNotOptimize(res.moment_stats[0].mean);
  });
}

void print_scaling_table() {
  const auto& model = opamp_model();
  const auto pts = mc_points(kPoints);
  const double n = static_cast<double>(kPoints);

  std::printf("== Sweep scaling: %zu-point Monte Carlo over the 741 model ==\n", kPoints);
  std::printf(
      "   (%zu strict / %zu fused instructions, %zu registers per point; "
      "hardware threads: %u)\n\n",
      model.instruction_count(), model.fused_instruction_count(), model.register_count(),
      std::thread::hardware_concurrency());

  const double t_scalar = scalar_loop_seconds(model, pts, kPoints);
  benchutil::print_time("scalar per-point loop (baseline)", t_scalar);
  std::printf("%-44s %10.0f pts/s\n\n", "baseline throughput", n / t_scalar);

  for (const auto mode : {core::EvalMode::kStrict, core::EvalMode::kFast}) {
    const char* tag = mode == core::EvalMode::kStrict ? "strict (unfused)" : "fast (fused)";
    std::printf("batch width sweep, 1 thread, %s:\n", tag);
    for (const std::size_t width : {std::size_t{1}, std::size_t{8}, std::size_t{64},
                                    std::size_t{256}}) {
      const double t = sweep_seconds(model, pts, kPoints, 1, width, mode);
      std::printf("  width %4zu  %10.0f pts/s  %6.2fx vs scalar\n", width, n / t,
                  t_scalar / t);
    }
    std::printf("\n");
  }

  std::printf("fused-vs-unfused at batch width 64 (the perf-CI headline):\n");
  for (const std::size_t threads : {std::size_t{1}, std::size_t{2}, std::size_t{4},
                                    std::size_t{8}}) {
    const double ts = sweep_seconds(model, pts, kPoints, threads, 64,
                                    core::EvalMode::kStrict);
    const double tf = sweep_seconds(model, pts, kPoints, threads, 64,
                                    core::EvalMode::kFast);
    std::printf(
        "  threads %2zu  strict %10.0f pts/s   fast %10.0f pts/s   fast/strict %5.2fx\n",
        threads, n / ts, n / tf, ts / tf);
  }
  std::printf("\n");

  if (const auto* native = native_opamp_model()) {
    std::printf("native AOT backend vs interpreter at batch width 64:\n");
    for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
      const double ti = sweep_seconds(model, pts, kPoints, threads, 64,
                                      core::EvalMode::kFast);
      const double tn = sweep_seconds(*native, pts, kPoints, threads, 64,
                                      core::EvalMode::kFast,
                                      core::EvalBackend::kNative);
      std::printf(
          "  threads %2zu  interp-fast %10.0f pts/s   native-fast %10.0f pts/s   "
          "native/interp %5.2fx\n",
          threads, n / ti, n / tn, ti / tn);
    }
  } else {
    std::printf("native AOT backend: no C compiler found, skipping\n");
  }
  std::printf("\n");
}

/// Instruction-count-normalized work-rate counter shared by every case:
/// points/sec x strict instruction count = compiled model operations/sec.
/// The perf gate compares THIS, not wall time, so a change to the program
/// length (more moments, deeper Horner) rescales the counter rather than
/// masquerading as an interpreter regression.
void set_norm_counter(benchmark::State& state, std::size_t points_per_iter) {
  const double ops = static_cast<double>(state.iterations()) *
                     static_cast<double>(points_per_iter) *
                     static_cast<double>(opamp_model().instruction_count());
  state.counters["norm_ops_per_s"] =
      benchmark::Counter(ops, benchmark::Counter::kIsRate);
  state.counters["pts_per_s"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * static_cast<double>(points_per_iter),
      benchmark::Counter::kIsRate);
}

void BM_ScalarLoop(benchmark::State& state) {
  const auto& model = opamp_model();
  const auto pts = mc_points(4096);
  auto ws = model.make_workspace();
  std::vector<double> vals(2);
  std::size_t p = 0;
  for (auto _ : state) {
    vals[0] = pts[p];
    vals[1] = pts[4096 + p];
    model.moments_at(vals, ws);
    benchmark::DoNotOptimize(ws.moments[0]);
    p = (p + 1) % 4096;
  }
  set_norm_counter(state, 1);
}
BENCHMARK(BM_ScalarLoop);

void BM_SweepEngine(benchmark::State& state) {
  const bool native = state.range(3) != 0;
  const core::CompiledModel* model_ptr = native ? native_opamp_model() : &opamp_model();
  if (!model_ptr) {
    state.SkipWithError("no C compiler: native backend unavailable");
    return;
  }
  const auto& model = *model_ptr;
  const std::size_t n = 4096;
  const auto pts = mc_points(n);
  sweep::SweepOptions opts;
  opts.threads = static_cast<std::size_t>(state.range(0));
  opts.batch_width = static_cast<std::size_t>(state.range(1));
  opts.mode = state.range(2) ? core::EvalMode::kFast : core::EvalMode::kStrict;
  opts.backend = native ? core::EvalBackend::kNative : core::EvalBackend::kInterpreter;
  sweep::ThreadPool pool(opts.threads);
  opts.pool = &pool;
  std::uint64_t degraded = 0;
  for (auto _ : state) {
    const auto res = sweep::run_sweep(model, pts, n, opts);
    benchmark::DoNotOptimize(res.ok_count);
    degraded = res.health.points_degraded + res.health.points_quarantined;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
  set_norm_counter(state, n);
  // Health gate: on the golden 741 Monte-Carlo deck every point must fit
  // on the primary path — any degradation here is a correctness smell the
  // perf CI fails on (check_bench_gate.py --expect-zero degraded_points).
  state.counters["degraded_points"] =
      benchmark::Counter(static_cast<double>(degraded));
}
BENCHMARK(BM_SweepEngine)
    ->ArgNames({"threads", "width", "fast", "native"})
    ->Args({1, 64, 0, 0})
    ->Args({1, 64, 1, 0})
    ->Args({2, 64, 0, 0})
    ->Args({2, 64, 1, 0})
    ->Args({4, 64, 0, 0})
    ->Args({4, 64, 1, 0})
    ->Args({4, 8, 0, 0})
    ->Args({4, 8, 1, 0})
    ->Args({4, 256, 0, 0})
    ->Args({4, 256, 1, 0})
    // AOT rows (DESIGN.md §12): same geometry as the headline interpreter
    // rows.  The perf CI enforces native > interpreter-fast via --dominates.
    ->Args({1, 64, 0, 1})
    ->Args({1, 64, 1, 1})
    ->Args({4, 64, 0, 1})
    ->Args({4, 64, 1, 1})
    ->Unit(benchmark::kMillisecond);

/// Gradient-sweep overhead rows (DESIGN.md §14): the same Monte-Carlo
/// workload with SweepOptions::gradients — one gradient-program run per
/// lane block yields moments AND d(m_k)/d(symbol) for every symbol.  The
/// perf CI gates pts_per_s here against the forward-only row at identical
/// geometry via --dominates with factor 0.4, i.e. the full gradient sweep
/// must cost at most 2.5x a forward-only sweep on this 2-symbol model.
void BM_SweepGradients(benchmark::State& state) {
  const auto& model = opamp_gradient_model();
  const std::size_t n = 4096;
  const auto pts = mc_points(n);
  sweep::SweepOptions opts;
  opts.threads = static_cast<std::size_t>(state.range(0));
  opts.batch_width = static_cast<std::size_t>(state.range(1));
  opts.mode = state.range(2) ? core::EvalMode::kFast : core::EvalMode::kStrict;
  opts.gradients = true;
  sweep::ThreadPool pool(opts.threads);
  opts.pool = &pool;
  for (auto _ : state) {
    const auto res = sweep::run_sweep(model, pts, n, opts);
    benchmark::DoNotOptimize(res.gradients.data());
    benchmark::DoNotOptimize(res.ok_count);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
  // pts_per_s feeds the dominance gate against the forward row.  The
  // normalized work rate uses the GRADIENT stream's strict instruction
  // count — the row measures the gradient interpreter's op throughput, so
  // a longer adjoint stream must rescale the counter, not look like a
  // regression.
  const double pts_done =
      static_cast<double>(state.iterations()) * static_cast<double>(n);
  state.counters["pts_per_s"] = benchmark::Counter(pts_done, benchmark::Counter::kIsRate);
  state.counters["norm_ops_per_s"] = benchmark::Counter(
      pts_done * static_cast<double>(model.gradient_instruction_count()),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SweepGradients)
    ->ArgNames({"threads", "width", "fast"})
    ->Args({4, 64, 0})
    ->Args({4, 64, 1})
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  // With --benchmark_format=json the headline table would corrupt the
  // stream, so it is skipped there (the gate uses --benchmark_out=FILE,
  // which keeps stdout free).  AWE_BENCH_TABLE=0 skips it unconditionally.
  bool show_table = true;
  for (int i = 1; i < argc; ++i)
    if (std::string_view(argv[i]) == "--benchmark_format=json") show_table = false;
  if (const char* e = std::getenv("AWE_BENCH_TABLE"); e && std::string_view(e) == "0")
    show_table = false;
  if (show_table) print_scaling_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
