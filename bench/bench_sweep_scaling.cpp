// Sweep-engine scaling: points/sec of the parallel batched sweep vs the
// scalar per-point loop on a Monte-Carlo-sized point set (the paper's
// repeated-evaluation workload at statistical-analysis scale).
//
// Methodology (documented in DESIGN.md "Batch and parallel evaluation"):
// the baseline is the best the PRE-ENGINE code could do — a single-thread
// loop over CompiledModel::moments_at with a reused Workspace, i.e.
// allocation-free but scalar and serial.  The engine rows then isolate the
// two effects: batch width (SoA interpreter, 1 thread) and thread count
// (static-chunked pool at the best width).  All configurations produce
// bit-identical results, so the comparison is purely about throughput.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "circuits/opamp741.hpp"
#include "core/awesymbolic.hpp"
#include "engine/sweep.hpp"

namespace {

using namespace awe;

constexpr std::size_t kPoints = 100000;  // >= 1e5-point sweep

const core::CompiledModel& opamp_model() {
  static const core::CompiledModel model = [] {
    auto amp = circuits::make_opamp741();
    return core::CompiledModel::build(
        amp.netlist,
        {circuits::Opamp741Circuit::kSymbolGout, circuits::Opamp741Circuit::kSymbolCcomp},
        circuits::Opamp741Circuit::kInput, amp.out, {.order = 2});
  }();
  return model;
}

std::vector<double> mc_points(const core::CompiledModel& model, std::size_t n) {
  const circuits::Opamp741Values nominal;
  const std::vector<sweep::Distribution> dists{
      sweep::Distribution::lognormal(nominal.gout_q14, 0.2),
      sweep::Distribution::lognormal(nominal.c_comp, 0.2)};
  (void)model;
  return sweep::sample_points(dists, n, 2024);
}

/// Scalar baseline: serial allocation-free per-point loop.
double scalar_loop_seconds(const core::CompiledModel& model,
                           const std::vector<double>& pts, std::size_t n) {
  return benchutil::time_median(3, [&] {
    auto ws = model.make_workspace();
    std::vector<double> vals(2);
    double acc = 0.0;
    for (std::size_t p = 0; p < n; ++p) {
      vals[0] = pts[p];
      vals[1] = pts[n + p];
      model.moments_at(vals, ws);
      acc += ws.moments[0];
    }
    benchmark::DoNotOptimize(acc);
  });
}

double sweep_seconds(const core::CompiledModel& model, const std::vector<double>& pts,
                     std::size_t n, std::size_t threads, std::size_t width) {
  sweep::SweepOptions opts;
  opts.threads = threads;
  opts.batch_width = width;
  return benchutil::time_median(3, [&] {
    const auto res = sweep::run_sweep(model, pts, n, opts);
    benchmark::DoNotOptimize(res.moment_stats[0].mean);
  });
}

void print_scaling_table() {
  const auto& model = opamp_model();
  const auto pts = mc_points(model, kPoints);
  const double n = static_cast<double>(kPoints);

  std::printf("== Sweep scaling: %zu-point Monte Carlo over the 741 model ==\n", kPoints);
  std::printf("   (%zu instructions, %zu registers per point; hardware threads: %u)\n\n",
              model.instruction_count(), model.register_count(),
              std::thread::hardware_concurrency());

  const double t_scalar = scalar_loop_seconds(model, pts, kPoints);
  benchutil::print_time("scalar per-point loop (baseline)", t_scalar);
  std::printf("%-44s %10.0f pts/s\n\n", "baseline throughput", n / t_scalar);

  std::printf("batch width sweep (1 thread):\n");
  for (const std::size_t width : {std::size_t{1}, std::size_t{8}, std::size_t{64},
                                  std::size_t{256}}) {
    const double t = sweep_seconds(model, pts, kPoints, 1, width);
    std::printf("  width %4zu  %10.0f pts/s  %6.2fx vs scalar\n", width, n / t,
                t_scalar / t);
  }

  std::printf("\nthread scaling (batch width 64):\n");
  for (const std::size_t threads : {std::size_t{1}, std::size_t{2}, std::size_t{4},
                                    std::size_t{8}}) {
    const double t = sweep_seconds(model, pts, kPoints, threads, 64);
    std::printf("  threads %2zu  %10.0f pts/s  %6.2fx vs scalar  %6.2fx vs 1 thread\n",
                threads, n / t, t_scalar / t,
                sweep_seconds(model, pts, kPoints, 1, 64) / t);
  }
  std::printf("\n");
}

void BM_ScalarLoop(benchmark::State& state) {
  const auto& model = opamp_model();
  const auto pts = mc_points(model, 4096);
  auto ws = model.make_workspace();
  std::vector<double> vals(2);
  std::size_t p = 0;
  for (auto _ : state) {
    vals[0] = pts[p];
    vals[1] = pts[4096 + p];
    model.moments_at(vals, ws);
    benchmark::DoNotOptimize(ws.moments[0]);
    p = (p + 1) % 4096;
  }
}
BENCHMARK(BM_ScalarLoop);

void BM_SweepEngine(benchmark::State& state) {
  const auto& model = opamp_model();
  const std::size_t n = 4096;
  const auto pts = mc_points(model, n);
  sweep::SweepOptions opts;
  opts.threads = static_cast<std::size_t>(state.range(0));
  opts.batch_width = static_cast<std::size_t>(state.range(1));
  sweep::ThreadPool pool(opts.threads);
  opts.pool = &pool;
  for (auto _ : state) {
    const auto res = sweep::run_sweep(model, pts, n, opts);
    benchmark::DoNotOptimize(res.ok_count);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_SweepEngine)
    ->Args({1, 64})
    ->Args({2, 64})
    ->Args({4, 64})
    ->Args({4, 8})
    ->Args({4, 256})
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_scaling_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
