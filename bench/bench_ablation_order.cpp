// Ablation B: approximation order vs accuracy vs evaluation cost.
//
// The paper: "the order of a reasonably accurate AWE approximation is
// typically low, often less than five" and "a second order AWE
// approximation is used to insure accuracy in the cross talk analysis ...
// A first order approximation suffices to model the direct transmission."
// This bench quantifies both statements: waveform error vs a transient
// reference for orders 1..5, on the direct and the cross-talk outputs,
// plus the growth of the compiled model with order.
#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdio>
#include <vector>

#include "awe/awe.hpp"
#include "bench_util.hpp"
#include "circuits/coupled_lines.hpp"
#include "core/awesymbolic.hpp"
#include "transim/transim.hpp"

namespace {

using namespace awe;

void print_tables() {
  circuits::CoupledLineValues v;
  v.segments = 100;
  auto c = circuits::make_coupled_lines(v);

  // Transient reference.
  transim::TransientSimulator sim(c.netlist);
  sim.set_waveform(circuits::CoupledLinesCircuit::kInput, transim::step(1.0));
  transim::TransientOptions topts;
  topts.t_stop = 120e-9;
  topts.dt = 0.05e-9;
  const auto res = sim.run(topts);
  const auto v_direct = res.node_voltage(sim.layout(), c.line1_out);
  const auto v_cross = res.node_voltage(sim.layout(), c.line2_out);

  auto max_err = [&](const engine::ReducedOrderModel& rom,
                     const std::vector<double>& ref) {
    double e = 0.0;
    for (std::size_t k = 0; k < ref.size(); k += 8)
      e = std::max(e, std::abs(ref[k] - rom.step_response(res.time[k])));
    return e;
  };

  std::printf("== Ablation B: order vs accuracy (vs trapezoidal reference) ==\n\n");
  std::printf("%-7s %18s %18s %14s\n", "order", "direct max err", "cross max err",
              "poles kept");
  for (std::size_t q = 1; q <= 5; ++q) {
    const auto rd = engine::run_awe(c.netlist, circuits::CoupledLinesCircuit::kInput,
                                    c.line1_out, {.order = q});
    std::printf("%-7zu %18.5f ", q, max_err(rd, v_direct));
    try {
      // Purely capacitive coupling has m0 = 0, so a first-order Padé of
      // the cross-talk is structurally infeasible (H == 0) — the reason
      // the paper uses second order for the coupling path.
      const auto rx = engine::run_awe(c.netlist, circuits::CoupledLinesCircuit::kInput,
                                      c.line2_out, {.order = q, .allow_order_fallback = false});
      std::printf("%18.5f %8zu/%zu\n", max_err(rx, v_cross), rd.order(), rx.order());
    } catch (const std::exception&) {
      std::printf("%18s %8zu/-\n", "infeasible", rd.order());
    }
  }

  std::printf("\ncompiled-model growth with order (coupled lines, 2 symbols):\n");
  std::printf("%-7s %12s %12s %14s\n", "order", "instrs", "registers", "setup[ms]");
  const std::vector<std::string> symbols{circuits::CoupledLinesCircuit::kSymbolRdriver,
                                         circuits::CoupledLinesCircuit::kSymbolCload};
  for (std::size_t q = 1; q <= 5; ++q) {
    double t_setup = 0.0;
    std::size_t instrs = 0, regs = 0;
    t_setup = benchutil::time_median(3, [&] {
      const auto m = core::CompiledModel::build(
          c.netlist, symbols, circuits::CoupledLinesCircuit::kInput, c.line2_out,
          {.order = q});
      instrs = m.instruction_count();
      regs = m.register_count();
    });
    std::printf("%-7zu %12zu %12zu %14.3f\n", q, instrs, regs, t_setup * 1e3);
  }
  std::printf("\n");
}

void BM_Evaluate_ByOrder(benchmark::State& state) {
  circuits::CoupledLineValues v;
  v.segments = 100;
  auto c = circuits::make_coupled_lines(v);
  const std::vector<std::string> symbols{circuits::CoupledLinesCircuit::kSymbolRdriver,
                                         circuits::CoupledLinesCircuit::kSymbolCload};
  const auto model = core::CompiledModel::build(
      c.netlist, symbols, circuits::CoupledLinesCircuit::kInput, c.line2_out,
      {.order = static_cast<std::size_t>(state.range(0))});
  int i = 0;
  for (auto _ : state) {
    const auto rom =
        model.evaluate(std::vector<double>{50.0 + (i++ % 300), v.c_load});
    benchmark::DoNotOptimize(rom.step_response(10e-9));
  }
}
// Order 1 is structurally infeasible for the cross-talk output (m0 = 0).
BENCHMARK(BM_Evaluate_ByOrder)->DenseRange(2, 5)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  print_tables();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
