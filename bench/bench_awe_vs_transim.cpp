// The paper's inherited claim (via Pillage & Rohrer): "AWE has also been
// benchmarked to be at least an order of magnitude faster than SPICE for
// this class of problem."  This harness times a full AWE analysis against
// the trapezoidal transient baseline at matched waveform accuracy on RC
// interconnect, and reports the accuracy actually achieved.
#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdio>

#include "awe/awe.hpp"
#include "bench_util.hpp"
#include "circuits/coupled_lines.hpp"
#include "awe/tree_moments.hpp"
#include "circuits/ladders.hpp"
#include "transim/transim.hpp"

namespace {

using namespace awe;

struct Workload {
  const char* name;
  circuit::Netlist netlist;
  circuit::NodeId out;
  const char* input;
  double t_stop;
  double dt;
};

std::vector<Workload> workloads() {
  std::vector<Workload> w;
  {
    circuits::LadderValues v;
    v.segments = 200;
    auto lad = circuits::make_rc_ladder(v);
    // Elmore delay ~ 200^2/2 * 100ohm*1pF/segment ~ 2us; simulate 4 taus.
    w.push_back({"rc-ladder-200", std::move(lad.netlist), lad.out,
                 circuits::LadderCircuit::kInput, 10e-6, 2e-9});
  }
  {
    circuits::CoupledLineValues v;
    v.segments = 200;
    auto c = circuits::make_coupled_lines(v);
    w.push_back({"coupled-lines-200 (victim)", std::move(c.netlist), c.line2_out,
                 circuits::CoupledLinesCircuit::kInput, 100e-9, 0.1e-9});
  }
  return w;
}

void print_comparison() {
  using benchutil::time_median;
  std::printf("== AWE vs traditional transient simulation (step response) ==\n\n");
  for (auto& w : workloads()) {
    const double t_awe = time_median(3, [&] {
      const auto rom = engine::run_awe(w.netlist, w.input, w.out, {.order = 3});
      benchmark::DoNotOptimize(rom.step_response(w.t_stop));
    });
    transim::TransientSimulator sim(w.netlist);
    sim.set_waveform(w.input, transim::step(1.0));
    transim::TransientOptions topts;
    topts.t_stop = w.t_stop;
    topts.dt = w.dt;
    transim::TransientResult res;
    const double t_sim = time_median(1, [&] { res = sim.run(topts); });

    // Waveform agreement between the two methods.
    const auto rom = engine::run_awe(w.netlist, w.input, w.out, {.order = 3});
    const auto vt = res.node_voltage(sim.layout(), w.out);
    double max_err = 0.0;
    for (std::size_t k = 0; k < vt.size(); k += 16)
      max_err = std::max(max_err, std::abs(vt[k] - rom.step_response(res.time[k])));

    std::printf("%s:\n", w.name);
    benchutil::print_time("  AWE (order 3, incl. factorization)", t_awe);
    benchutil::print_time("  transient (trapezoidal)", t_sim);
    std::printf("  speedup %.0fx, max |waveform error| %.4f (unit step)\n\n",
                t_sim / t_awe, max_err);
  }
}

void BM_Awe_Ladder(benchmark::State& state) {
  circuits::LadderValues v;
  v.segments = static_cast<std::size_t>(state.range(0));
  auto lad = circuits::make_rc_ladder(v);
  for (auto _ : state) {
    const auto rom =
        engine::run_awe(lad.netlist, circuits::LadderCircuit::kInput, lad.out, {.order = 3});
    benchmark::DoNotOptimize(rom.dc_gain());
  }
}
BENCHMARK(BM_Awe_Ladder)->Arg(50)->Arg(200)->Arg(800)->Unit(benchmark::kMillisecond);

void BM_TreeMoments_Ladder(benchmark::State& state) {
  // Path-tracing moments: O(n) per order, no factorization at all — the
  // RICE-style fast path for tree interconnect.
  circuits::LadderValues v;
  v.segments = static_cast<std::size_t>(state.range(0));
  auto lad = circuits::make_rc_ladder(v);
  const auto tree =
      engine::RcTreeAnalyzer::build(lad.netlist, circuits::LadderCircuit::kInput);
  for (auto _ : state) {
    const auto m = tree->transfer_moments(lad.out, 6);
    benchmark::DoNotOptimize(m[1]);
  }
}
BENCHMARK(BM_TreeMoments_Ladder)->Arg(50)->Arg(200)->Arg(800)->Unit(benchmark::kMicrosecond);

void BM_SparseLuMoments_Ladder(benchmark::State& state) {
  circuits::LadderValues v;
  v.segments = static_cast<std::size_t>(state.range(0));
  auto lad = circuits::make_rc_ladder(v);
  for (auto _ : state) {
    engine::MomentGenerator gen(lad.netlist);
    const auto m = gen.transfer_moments(circuits::LadderCircuit::kInput, lad.out, 6);
    benchmark::DoNotOptimize(m[1]);
  }
}
BENCHMARK(BM_SparseLuMoments_Ladder)
    ->Arg(50)
    ->Arg(200)
    ->Arg(800)
    ->Unit(benchmark::kMicrosecond);

void BM_Transim_Ladder(benchmark::State& state) {
  circuits::LadderValues v;
  v.segments = static_cast<std::size_t>(state.range(0));
  auto lad = circuits::make_rc_ladder(v);
  transim::TransientSimulator sim(lad.netlist);
  sim.set_waveform(circuits::LadderCircuit::kInput, transim::step(1.0));
  transim::TransientOptions topts;
  const double n = static_cast<double>(v.segments);
  topts.t_stop = 4.0 * 0.5 * n * n * 100.0 * 1e-12;  // ~4 Elmore delays
  topts.dt = topts.t_stop / 4096.0;
  for (auto _ : state) {
    const auto res = sim.run(topts);
    benchmark::DoNotOptimize(res.samples.back()[0]);
  }
}
BENCHMARK(BM_Transim_Ladder)->Arg(50)->Arg(200)->Arg(800)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_comparison();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
