#!/usr/bin/env python3
"""Self-test for check_bench_gate.py (runs the script as a subprocess).

Exercises the exit-code contract the CI bench-gate job relies on:
  0 = pass, 1 = regression / gate not met, 2 = bad input — and "bad
input" must be a clean one-line error, never a traceback.  The cases
cover the anchored regression gate, the vacuous-gate refusal (a --gate
whose counter lives only on the anchor row), the --expect-zero health
gate and the --dominates ordering gate with a minimum-speedup factor.
"""

import json
import os
import subprocess
import sys
import tempfile
import unittest

SCRIPT = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                      "check_bench_gate.py")


def bench_doc(rows):
    """Minimal google-benchmark JSON with the given (name, counters) rows."""
    return {
        "context": {"library_build_type": "release"},
        "benchmarks": [dict({"name": name, "run_type": "iteration"}, **counters)
                       for name, counters in rows],
    }


class GateScriptTest(unittest.TestCase):
    def setUp(self):
        self.tmp = tempfile.TemporaryDirectory()
        self.addCleanup(self.tmp.cleanup)

    def path(self, name, doc):
        p = os.path.join(self.tmp.name, name)
        with open(p, "w", encoding="utf-8") as f:
            json.dump(doc, f)
        return p

    def run_gate(self, *args):
        return subprocess.run([sys.executable, SCRIPT, *args],
                              capture_output=True, text=True)

    def std_results(self, cold=100.0, warm=400.0):
        return bench_doc([("BM_BuildCold", {"builds_per_s": cold}),
                          ("BM_BuildWarm", {"builds_per_s": warm})])

    def test_pass_when_results_match_baseline(self):
        results = self.path("r.json", self.std_results())
        baseline = self.path("b.json", self.std_results())
        r = self.run_gate(results, baseline, "--gate", "builds_per_s:BM_BuildCold")
        self.assertEqual(r.returncode, 0, r.stderr)
        self.assertIn("PASSED", r.stdout)

    def test_regression_beyond_threshold_fails(self):
        # Warm speedup collapses from 4x to 1.2x: far past the 35% gate.
        results = self.path("r.json", self.std_results(warm=120.0))
        baseline = self.path("b.json", self.std_results())
        r = self.run_gate(results, baseline, "--gate", "builds_per_s:BM_BuildCold")
        self.assertEqual(r.returncode, 1, r.stdout + r.stderr)
        self.assertIn("FAILED", r.stderr)

    def test_counter_missing_from_results_is_loud(self):
        results = self.path("r.json", self.std_results())
        baseline = self.path("b.json", self.std_results())
        r = self.run_gate(results, baseline, "--gate", "no_such_counter:BM_BuildCold")
        self.assertEqual(r.returncode, 2, r.stdout + r.stderr)
        self.assertIn("no_such_counter", r.stderr)
        self.assertNotIn("Traceback", r.stderr)

    def test_counter_only_on_anchor_row_is_loud_not_a_crash(self):
        # The counter exists, but only on the anchor row: after anchoring
        # there is nothing left to gate.  Must refuse with exit 2, not
        # pass vacuously or die in the report formatting.
        doc = bench_doc([("BM_BuildCold", {"builds_per_s": 100.0}),
                         ("BM_BuildWarm", {"other": 1.0})])
        results = self.path("r.json", doc)
        baseline = self.path("b.json", doc)
        r = self.run_gate(results, baseline, "--gate", "builds_per_s:BM_BuildCold")
        self.assertEqual(r.returncode, 2, r.stdout + r.stderr)
        self.assertIn("builds_per_s", r.stderr)
        self.assertNotIn("Traceback", r.stderr)

    def test_expect_zero(self):
        results = self.path("r.json", bench_doc(
            [("BM_BuildCold", {"builds_per_s": 100.0, "degraded": 0.0}),
             ("BM_Sweep", {"builds_per_s": 90.0, "degraded": 2.0})]))
        baseline = self.path("b.json", self.std_results())
        r = self.run_gate(results, baseline, "--gate", "builds_per_s:BM_BuildCold",
                          "--expect-zero", "degraded")
        self.assertEqual(r.returncode, 1, r.stdout + r.stderr)
        self.assertIn("nonzero health counter", r.stderr)

    def test_dominates_with_factor(self):
        results = self.path("r.json", bench_doc(
            [("BM_BuildCold", {"builds_per_s": 100.0}),
             ("BM_BuildWarm", {"builds_per_s": 400.0}),
             ("BM_BuildIncrementalEdit", {"builds_per_s": 1500.0})]))
        baseline = self.path("b.json", self.std_results())
        common = [results, baseline, "--gate", "builds_per_s:BM_BuildCold"]
        # 15x > 10x: passes.
        r = self.run_gate(*common, "--dominates",
                          "BM_BuildIncrementalEdit,BM_BuildCold,builds_per_s,10")
        self.assertEqual(r.returncode, 0, r.stdout + r.stderr)
        # 15x is not > 20x: fails with exit 1 and names the gate.
        r = self.run_gate(*common, "--dominates",
                          "BM_BuildIncrementalEdit,BM_BuildCold,builds_per_s,20")
        self.assertEqual(r.returncode, 1, r.stdout + r.stderr)
        self.assertIn("dominance gate", r.stderr)

    def test_dominates_bad_factor_is_loud(self):
        results = self.path("r.json", self.std_results())
        baseline = self.path("b.json", self.std_results())
        r = self.run_gate(results, baseline, "--gate", "builds_per_s:BM_BuildCold",
                          "--dominates", "BM_BuildWarm,BM_BuildCold,builds_per_s,zero")
        self.assertEqual(r.returncode, 2, r.stdout + r.stderr)
        self.assertIn("factor", r.stderr)

    def test_missing_dominates_row_is_loud(self):
        results = self.path("r.json", self.std_results())
        baseline = self.path("b.json", self.std_results())
        r = self.run_gate(results, baseline, "--gate", "builds_per_s:BM_BuildCold",
                          "--dominates", "BM_DoesNotExist,BM_BuildCold,builds_per_s")
        self.assertEqual(r.returncode, 2, r.stdout + r.stderr)
        self.assertIn("BM_DoesNotExist", r.stderr)


if __name__ == "__main__":
    unittest.main()
