// Shared helpers for the benchmark harness.
#pragma once

#include <chrono>
#include <cstdio>
#include <functional>

namespace awe::benchutil {

/// Wall-clock seconds of one invocation.
inline double time_once(const std::function<void()>& fn) {
  const auto t0 = std::chrono::steady_clock::now();
  fn();
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t1 - t0).count();
}

/// Median-of-`reps` wall-clock seconds (cheap robust timing for the
/// headline tables; the registered google-benchmark cases provide the
/// statistically rigorous numbers).
inline double time_median(int reps, const std::function<void()>& fn) {
  double best = 1e300;
  for (int i = 0; i < reps; ++i) best = std::min(best, time_once(fn));
  return best;
}

/// Pretty seconds with sensible units.
inline void print_time(const char* label, double seconds) {
  if (seconds >= 1.0)
    std::printf("%-44s %10.3f s\n", label, seconds);
  else if (seconds >= 1e-3)
    std::printf("%-44s %10.3f ms\n", label, seconds * 1e3);
  else
    std::printf("%-44s %10.3f us\n", label, seconds * 1e6);
}

}  // namespace awe::benchutil
