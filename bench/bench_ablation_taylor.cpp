// Ablation D: exact compiled symbolic model vs first-order Taylor moment
// expansion (the cheap "partial" alternative, cf. the paper's partial
// Padé remark in §3.1).
//
// Shape: the Taylor model is cheaper to set up (one AWE run + adjoint
// chain, no partitioning/compilation) and as fast to evaluate, but its
// accuracy collapses away from the expansion point while the symbolic
// model stays exact over the whole symbol range — the reason AWEsymbolic
// is the right tool for wide-range design-space exploration.
#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdio>
#include <vector>

#include "awe/moments.hpp"
#include "bench_util.hpp"
#include "circuits/opamp741.hpp"
#include "core/awesymbolic.hpp"
#include "core/taylor_model.hpp"

namespace {

using namespace awe;

const std::vector<std::string> kSymbols{circuits::Opamp741Circuit::kSymbolGout,
                                        circuits::Opamp741Circuit::kSymbolCcomp};

void print_tables() {
  using benchutil::time_median;
  auto amp = circuits::make_opamp741();
  const circuits::Opamp741Values nominal;

  const double t_setup_sym = time_median(3, [&] {
    const auto m = core::CompiledModel::build(
        amp.netlist, kSymbols, circuits::Opamp741Circuit::kInput, amp.out, {.order = 2});
    benchmark::DoNotOptimize(m.port_count());
  });
  const double t_setup_taylor = time_median(3, [&] {
    const auto m = core::TaylorMomentModel::build(
        amp.netlist, kSymbols, circuits::Opamp741Circuit::kInput, amp.out, {.order = 2});
    benchmark::DoNotOptimize(m.expansion_point().size());
  });

  const auto sym = core::CompiledModel::build(
      amp.netlist, kSymbols, circuits::Opamp741Circuit::kInput, amp.out, {.order = 2});
  const auto taylor = core::TaylorMomentModel::build(
      amp.netlist, kSymbols, circuits::Opamp741Circuit::kInput, amp.out, {.order = 2});

  std::printf("== Ablation D: compiled symbolic vs first-order Taylor model (741) ==\n\n");
  benchutil::print_time("symbolic setup", t_setup_sym);
  benchutil::print_time("Taylor setup", t_setup_taylor);

  std::printf("\nmoment accuracy vs distance from the expansion point (both symbols\n"
              "scaled by the factor; reference = full AWE at that point):\n");
  std::printf("%-10s %18s %18s\n", "factor", "Taylor max rel err", "symbolic max rel err");
  for (const double f : {1.01, 1.1, 1.25, 1.5, 2.0, 4.0}) {
    const std::vector<double> vals{nominal.gout_q14 * f, nominal.c_comp * f};
    amp.netlist.set_value(kSymbols[0], vals[0]);
    amp.netlist.set_value(kSymbols[1], vals[1]);
    const auto m_ref =
        engine::MomentGenerator(amp.netlist)
            .transfer_moments(circuits::Opamp741Circuit::kInput, amp.out, 4);
    const auto m_taylor = taylor.moments_at(vals);
    const auto m_sym = sym.moments_at(vals);
    double e_taylor = 0.0, e_sym = 0.0;
    for (std::size_t k = 0; k < 4; ++k) {
      const double scale = std::abs(m_ref[k]) + 1e-30;
      e_taylor = std::max(e_taylor, std::abs(m_taylor[k] - m_ref[k]) / scale);
      e_sym = std::max(e_sym, std::abs(m_sym[k] - m_ref[k]) / scale);
    }
    std::printf("%-10.2f %18.3e %18.3e\n", f, e_taylor, e_sym);
  }
  std::printf("\n");
}

void BM_TaylorEvaluate(benchmark::State& state) {
  auto amp = circuits::make_opamp741();
  const auto taylor = core::TaylorMomentModel::build(
      amp.netlist, kSymbols, circuits::Opamp741Circuit::kInput, amp.out, {.order = 2});
  const circuits::Opamp741Values nominal;
  int i = 0;
  for (auto _ : state) {
    const double f = 0.9 + 0.0001 * (i++ % 1000);
    const auto rom = taylor.evaluate(
        std::vector<double>{nominal.gout_q14 * f, nominal.c_comp * f});
    benchmark::DoNotOptimize(rom.dc_gain());
  }
}
BENCHMARK(BM_TaylorEvaluate)->Unit(benchmark::kMicrosecond);

void BM_SymbolicEvaluate(benchmark::State& state) {
  auto amp = circuits::make_opamp741();
  const auto sym = core::CompiledModel::build(
      amp.netlist, kSymbols, circuits::Opamp741Circuit::kInput, amp.out, {.order = 2});
  const circuits::Opamp741Values nominal;
  int i = 0;
  for (auto _ : state) {
    const double f = 0.9 + 0.0001 * (i++ % 1000);
    const auto rom =
        sym.evaluate(std::vector<double>{nominal.gout_q14 * f, nominal.c_comp * f});
    benchmark::DoNotOptimize(rom.dc_gain());
  }
}
BENCHMARK(BM_SymbolicEvaluate)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  print_tables();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
