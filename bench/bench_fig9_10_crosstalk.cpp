// Figures 9 and 10 of the paper: cross-talk step-response transients of
// the coupled-line pair as the driver resistance (Fig. 9) and the victim
// load capacitance (Fig. 10) are varied, generated from the second-order
// compiled symbolic model.  A transient-simulator reference validates the
// curve at the nominal point.
#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "circuits/coupled_lines.hpp"
#include "core/awesymbolic.hpp"
#include "transim/transim.hpp"

namespace {

using namespace awe;

const std::vector<std::string> kSymbols{circuits::CoupledLinesCircuit::kSymbolRdriver,
                                        circuits::CoupledLinesCircuit::kSymbolCload};

void print_figures() {
  circuits::CoupledLineValues v;  // 1000 segments
  auto c = circuits::make_coupled_lines(v);
  const auto model = core::CompiledModel::build(
      c.netlist, kSymbols, circuits::CoupledLinesCircuit::kInput, c.line2_out,
      {.order = 2});

  std::printf("== Figure 9: cross-talk transient as R_driver is varied ==\n\n");
  const std::vector<double> rdrvs{25, 50, 100, 200, 400};
  std::printf("%8s", "t[ns]");
  for (const double r : rdrvs) std::printf("   R=%5.0f", r);
  std::printf("\n");
  std::vector<engine::ReducedOrderModel> roms;
  for (const double r : rdrvs)
    roms.push_back(model.evaluate(std::vector<double>{r, v.c_load}));
  for (double t = 0; t <= 100e-9; t += 5e-9) {
    std::printf("%8.1f", t * 1e9);
    for (const auto& rom : roms) std::printf(" %9.5f", rom.step_response(t));
    std::printf("\n");
  }

  std::printf("\n== Figure 10: cross-talk transient as C_load is varied ==\n\n");
  const std::vector<double> cloads{0.25e-12, 0.5e-12, 1e-12, 2e-12, 4e-12};
  std::printf("%8s", "t[ns]");
  for (const double cl : cloads) std::printf("  C=%5.2fp", cl * 1e12);
  std::printf("\n");
  roms.clear();
  for (const double cl : cloads)
    roms.push_back(model.evaluate(std::vector<double>{v.r_driver, cl}));
  for (double t = 0; t <= 100e-9; t += 5e-9) {
    std::printf("%8.1f", t * 1e9);
    for (const auto& rom : roms) std::printf(" %9.5f", rom.step_response(t));
    std::printf("\n");
  }

  // Validation at the nominal corner against the transient baseline
  // (on a reduced 100-segment version to keep the check quick).
  circuits::CoupledLineValues vs;
  vs.segments = 100;
  auto cs = circuits::make_coupled_lines(vs);
  const auto model_s = core::CompiledModel::build(
      cs.netlist, kSymbols, circuits::CoupledLinesCircuit::kInput, cs.line2_out,
      {.order = 2});
  const auto rom = model_s.evaluate(std::vector<double>{vs.r_driver, vs.c_load});
  transim::TransientSimulator sim(cs.netlist);
  sim.set_waveform(circuits::CoupledLinesCircuit::kInput, transim::step(1.0));
  transim::TransientOptions topts;
  topts.t_stop = 100e-9;
  topts.dt = 0.1e-9;
  const auto res = sim.run(topts);
  const auto vt = res.node_voltage(sim.layout(), cs.line2_out);
  double peak_sim = 0.0, peak_rom = 0.0;
  for (std::size_t k = 0; k < vt.size(); ++k) {
    peak_sim = std::max(peak_sim, std::abs(vt[k]));
    peak_rom = std::max(peak_rom, std::abs(rom.step_response(res.time[k])));
  }
  std::printf("\nvalidation (100 segments): cross-talk peak %.5f (model) vs %.5f "
              "(transient), ratio %.3f\n\n",
              peak_rom, peak_sim, peak_rom / peak_sim);
}

void BM_CrosstalkCurve_Symbolic(benchmark::State& state) {
  // One full figure curve (model evaluation + 64 time points).
  circuits::CoupledLineValues v;
  auto c = circuits::make_coupled_lines(v);
  const auto model = core::CompiledModel::build(
      c.netlist, kSymbols, circuits::CoupledLinesCircuit::kInput, c.line2_out,
      {.order = 2});
  int i = 0;
  for (auto _ : state) {
    const auto rom =
        model.evaluate(std::vector<double>{50.0 + (i++ % 400), v.c_load});
    double acc = 0.0;
    for (int k = 0; k < 64; ++k) acc += rom.step_response(2e-9 * k);
    benchmark::DoNotOptimize(acc);
  }
}
BENCHMARK(BM_CrosstalkCurve_Symbolic)->Unit(benchmark::kMicrosecond);

void BM_CrosstalkCurve_Transient100(benchmark::State& state) {
  // The traditional-simulator cost of one such curve (100 segments only;
  // the 1000-segment version is ~10x this).
  circuits::CoupledLineValues v;
  v.segments = 100;
  auto c = circuits::make_coupled_lines(v);
  transim::TransientSimulator sim(c.netlist);
  sim.set_waveform(circuits::CoupledLinesCircuit::kInput, transim::step(1.0));
  transim::TransientOptions topts;
  topts.t_stop = 100e-9;
  topts.dt = 0.5e-9;
  for (auto _ : state) {
    const auto res = sim.run(topts);
    benchmark::DoNotOptimize(res.samples.back()[0]);
  }
}
BENCHMARK(BM_CrosstalkCurve_Transient100)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_figures();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
