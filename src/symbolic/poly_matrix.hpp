// Dense matrices of multivariate polynomials, with division-free
// determinant and adjugate.
//
// The moment-level partitioner reduces the circuit to a small port-level
// admittance matrix whose entries are polynomials in the symbolic
// elements.  The recursive moment equations  Y0 * Vk = rhs_k  are solved
// symbolically via the adjugate:  Vk = adj(Y0) * rhs_k / det(Y0), keeping
// every intermediate a pure polynomial.  No polynomial division (and hence
// no multivariate GCD) is ever needed — the denominator det(Y0)^{k+1} is
// carried structurally.
//
// Determinants use dynamic programming over column subsets (O(2^n * n)
// polynomial operations), exact and fast for the port-level sizes that
// arise in practice (n <= ~16, enforced).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "symbolic/polynomial.hpp"

namespace awe::symbolic {

class PolyMatrix {
 public:
  PolyMatrix() = default;
  PolyMatrix(std::size_t rows, std::size_t cols, std::size_t nvars);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t nvars() const { return nvars_; }

  Polynomial& operator()(std::size_t r, std::size_t c);
  const Polynomial& operator()(std::size_t r, std::size_t c) const;

  PolyMatrix& operator+=(const PolyMatrix& o);
  friend PolyMatrix operator*(const PolyMatrix& a, const PolyMatrix& b);

  /// y = A x for a polynomial vector x.
  std::vector<Polynomial> multiply(const std::vector<Polynomial>& x) const;

  /// Matrix with row r and column c deleted.
  PolyMatrix minor_matrix(std::size_t r, std::size_t c) const;

  /// Evaluate every entry at a numeric point (row-major result).
  std::vector<double> evaluate(std::span<const double> values) const;

 private:
  std::size_t rows_ = 0, cols_ = 0, nvars_ = 0;
  std::vector<Polynomial> entries_;  // row-major
};

/// Determinant of a square PolyMatrix (subset-DP expansion). Throws for
/// matrices larger than 16x16 — the partitioned port systems are tiny by
/// construction, and exceeding this signals a partitioning bug.
Polynomial determinant(const PolyMatrix& a);

/// Adjugate (transposed cofactor matrix): A * adj(A) = det(A) * I.
PolyMatrix adjugate(const PolyMatrix& a);

/// Cramer solve numerators: returns N with  A x = b  <=>  x = N / det(A).
/// Requires `adj` = adjugate(A).
std::vector<Polynomial> solve_with_adjugate(const PolyMatrix& adj,
                                            const std::vector<Polynomial>& b);

}  // namespace awe::symbolic
