// Multivariate polynomials over double coefficients.
//
// The symbolic objects in AWEsymbolic are low-degree multivariate
// polynomials in the symbolic circuit elements: MNA stamps are linear per
// symbol, determinants/adjugates of the small port matrix are multilinear,
// and the k-th composite moment numerator has total degree O(k * #symbols).
// A sorted dense-exponent term list is therefore the right representation —
// no sparse-exponent tricks, no arbitrary-precision coefficients.
//
// Division is avoided by construction everywhere in the pipeline (adjugate
// based solves), so the ring interface is pure: +, -, *, scalar ops,
// differentiation, evaluation and substitution.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace awe::symbolic {

/// Exponent vector; size equals the ambient number of variables.
using Monomial = std::vector<std::uint16_t>;

/// One term: coefficient times a monomial.
struct Term {
  Monomial exponents;
  double coeff = 0.0;
};

/// Graded-lexicographic monomial order (total degree first).
bool monomial_less(const Monomial& a, const Monomial& b);

/// Immutable-ish multivariate polynomial in a fixed number of variables.
/// Terms are kept sorted by monomial_less and never contain zero
/// coefficients or duplicate monomials (the class invariant).
class Polynomial {
 public:
  Polynomial() = default;  // zero polynomial in 0 variables

  explicit Polynomial(std::size_t nvars) : nvars_(nvars) {}

  /// The constant polynomial `c` in `nvars` variables.
  static Polynomial constant(std::size_t nvars, double c);

  /// The single variable x_index in `nvars` variables.
  static Polynomial variable(std::size_t nvars, std::size_t index);

  /// Build from an arbitrary term list (merges duplicates, drops zeros).
  static Polynomial from_terms(std::size_t nvars, std::vector<Term> terms);

  std::size_t nvars() const { return nvars_; }
  const std::vector<Term>& terms() const { return terms_; }
  bool is_zero() const { return terms_.empty(); }
  bool is_constant() const;
  /// Value of the constant term (0 when absent).
  double constant_value() const;

  /// Total degree (0 for constants; -1 represented as 0 for the zero poly).
  std::size_t total_degree() const;
  /// Degree in a single variable.
  std::size_t degree_in(std::size_t var) const;
  std::size_t term_count() const { return terms_.size(); }

  Polynomial operator-() const;
  Polynomial& operator+=(const Polynomial& o);
  Polynomial& operator-=(const Polynomial& o);
  Polynomial& operator*=(double k);

  friend Polynomial operator+(Polynomial a, const Polynomial& b) { return a += b; }
  friend Polynomial operator-(Polynomial a, const Polynomial& b) { return a -= b; }
  friend Polynomial operator*(const Polynomial& a, const Polynomial& b);
  friend Polynomial operator*(Polynomial a, double k) { return a *= k; }
  friend Polynomial operator*(double k, Polynomial a) { return a *= k; }

  bool operator==(const Polynomial& o) const;

  /// Evaluate at a point (values.size() == nvars()).
  double evaluate(std::span<const double> values) const;

  /// Partial derivative with respect to variable `var`.
  Polynomial derivative(std::size_t var) const;

  /// Substitute a numeric value for one variable, producing a polynomial in
  /// the same ambient variable set (the substituted variable's exponents
  /// become zero).
  Polynomial substitute(std::size_t var, double value) const;

  /// Largest absolute coefficient (0 for the zero polynomial).
  double max_abs_coeff() const;

  /// Drop terms with |coeff| <= tol * max_abs_coeff(). Used only to clean
  /// floating-point cancellation debris, never as heuristic pruning.
  Polynomial cleaned(double rel_tol = 1e-14) const;

  /// Human-readable form, e.g. "3*x0^2*x1 - 1.5*x1 + 2".
  std::string to_string(std::span<const std::string> var_names = {}) const;

 private:
  void normalize();  // sort + merge + drop zeros

  std::size_t nvars_ = 0;
  std::vector<Term> terms_;
};

}  // namespace awe::symbolic
