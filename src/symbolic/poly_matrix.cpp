#include "symbolic/poly_matrix.hpp"

#include <bit>
#include <cassert>
#include <stdexcept>
#include <unordered_map>

namespace awe::symbolic {

PolyMatrix::PolyMatrix(std::size_t rows, std::size_t cols, std::size_t nvars)
    : rows_(rows), cols_(cols), nvars_(nvars),
      entries_(rows * cols, Polynomial(nvars)) {}

Polynomial& PolyMatrix::operator()(std::size_t r, std::size_t c) {
  assert(r < rows_ && c < cols_);
  return entries_[r * cols_ + c];
}

const Polynomial& PolyMatrix::operator()(std::size_t r, std::size_t c) const {
  assert(r < rows_ && c < cols_);
  return entries_[r * cols_ + c];
}

PolyMatrix& PolyMatrix::operator+=(const PolyMatrix& o) {
  if (rows_ != o.rows_ || cols_ != o.cols_)
    throw std::invalid_argument("PolyMatrix shape mismatch");
  for (std::size_t i = 0; i < entries_.size(); ++i) entries_[i] += o.entries_[i];
  return *this;
}

PolyMatrix operator*(const PolyMatrix& a, const PolyMatrix& b) {
  if (a.cols_ != b.rows_) throw std::invalid_argument("PolyMatrix product shape mismatch");
  PolyMatrix c(a.rows_, b.cols_, a.nvars_);
  for (std::size_t i = 0; i < a.rows_; ++i)
    for (std::size_t k = 0; k < a.cols_; ++k) {
      const Polynomial& aik = a(i, k);
      if (aik.is_zero()) continue;
      for (std::size_t j = 0; j < b.cols_; ++j) {
        if (b(k, j).is_zero()) continue;
        c(i, j) += aik * b(k, j);
      }
    }
  return c;
}

std::vector<Polynomial> PolyMatrix::multiply(const std::vector<Polynomial>& x) const {
  if (x.size() != cols_) throw std::invalid_argument("PolyMatrix::multiply size mismatch");
  std::vector<Polynomial> y(rows_, Polynomial(nvars_));
  for (std::size_t i = 0; i < rows_; ++i)
    for (std::size_t j = 0; j < cols_; ++j) {
      const Polynomial& aij = (*this)(i, j);
      if (aij.is_zero() || x[j].is_zero()) continue;
      y[i] += aij * x[j];
    }
  return y;
}

PolyMatrix PolyMatrix::minor_matrix(std::size_t dr, std::size_t dc) const {
  assert(dr < rows_ && dc < cols_);
  PolyMatrix m(rows_ - 1, cols_ - 1, nvars_);
  for (std::size_t r = 0, mr = 0; r < rows_; ++r) {
    if (r == dr) continue;
    for (std::size_t c = 0, mc = 0; c < cols_; ++c) {
      if (c == dc) continue;
      m(mr, mc) = (*this)(r, c);
      ++mc;
    }
    ++mr;
  }
  return m;
}

std::vector<double> PolyMatrix::evaluate(std::span<const double> values) const {
  std::vector<double> out(entries_.size());
  for (std::size_t i = 0; i < entries_.size(); ++i) out[i] = entries_[i].evaluate(values);
  return out;
}

Polynomial determinant(const PolyMatrix& a) {
  if (a.rows() != a.cols()) throw std::invalid_argument("determinant: square required");
  const std::size_t n = a.rows();
  if (n > 16) throw std::invalid_argument("determinant: port system too large (>16)");
  if (n == 0) return Polynomial::constant(a.nvars(), 1.0);

  // DP over column subsets: level[S] = det of the submatrix formed by the
  // last popcount(S) rows and the column set S.  Built bottom-up from
  // single columns (last row) to the full set.
  const std::size_t full = (std::size_t{1} << n) - 1;
  std::vector<Polynomial> dp(full + 1, Polynomial(a.nvars()));
  dp[0] = Polynomial::constant(a.nvars(), 1.0);
  // Process subsets in order of increasing population count; a subset S of
  // size k corresponds to rows n-k .. n-1.
  std::vector<std::vector<std::size_t>> by_count(n + 1);
  for (std::size_t s = 1; s <= full; ++s)
    by_count[static_cast<std::size_t>(std::popcount(s))].push_back(s);
  for (std::size_t k = 1; k <= n; ++k) {
    const std::size_t row = n - k;
    for (const std::size_t s : by_count[k]) {
      Polynomial det_s(a.nvars());
      int sign = 1;
      for (std::size_t c = 0; c < n; ++c) {
        if (!(s & (std::size_t{1} << c))) continue;
        const Polynomial& entry = a(row, c);
        if (!entry.is_zero()) {
          const Polynomial& sub = dp[s & ~(std::size_t{1} << c)];
          if (!sub.is_zero()) {
            Polynomial contrib = entry * sub;
            if (sign < 0) contrib *= -1.0;
            det_s += contrib;
          }
        }
        sign = -sign;
      }
      dp[s] = std::move(det_s);
    }
    // Free the previous level to bound memory (subsets of size k-1 are no
    // longer needed).
    if (k >= 2)
      for (const std::size_t s : by_count[k - 1]) dp[s] = Polynomial(a.nvars());
  }
  return dp[full];
}

PolyMatrix adjugate(const PolyMatrix& a) {
  if (a.rows() != a.cols()) throw std::invalid_argument("adjugate: square required");
  const std::size_t n = a.rows();
  PolyMatrix adj(n, n, a.nvars());
  if (n == 0) return adj;
  if (n == 1) {
    adj(0, 0) = Polynomial::constant(a.nvars(), 1.0);
    return adj;
  }
  for (std::size_t r = 0; r < n; ++r)
    for (std::size_t c = 0; c < n; ++c) {
      Polynomial cof = determinant(a.minor_matrix(r, c));
      if ((r + c) % 2 == 1) cof *= -1.0;
      adj(c, r) = std::move(cof);  // adjugate is the transposed cofactor matrix
    }
  return adj;
}

std::vector<Polynomial> solve_with_adjugate(const PolyMatrix& adj,
                                            const std::vector<Polynomial>& b) {
  return adj.multiply(b);
}

}  // namespace awe::symbolic
