// Compilation of an expression DAG into a flat register program.
//
// This realizes the paper's central efficiency claim: "the symbolic form
// provides a compiled set of operations which can quickly produce a final
// AWE approximation, where the operands are the values of the symbols."
// The program is a straight-line instruction vector over a small register
// file; registers are recycled after the last use of each intermediate, so
// the working set stays cache resident even for thousand-operation models.
#pragma once

#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "symbolic/expr.hpp"
#include "symbolic/polynomial.hpp"
#include "symbolic/rational.hpp"

namespace awe::symbolic {

struct Instr {
  OpCode op{};
  std::uint32_t dst = 0;
  std::uint32_t a = 0;  // register, input index (kInput) or constant index (kConst)
  std::uint32_t b = 0;
};

class CompiledProgram {
 public:
  /// Compile the subgraph reachable from `roots`.  Output k of run() is the
  /// value of roots[k].
  CompiledProgram(const ExprGraph& graph, std::span<const NodeId> roots);

  std::size_t output_count() const { return output_regs_.size(); }
  std::size_t input_count() const { return input_count_; }
  std::size_t instruction_count() const { return instrs_.size(); }
  std::size_t register_count() const { return register_count_; }

  /// Evaluate: inputs are the symbol values; outputs receives the root
  /// values.  Thread-safe (no internal mutable state) when each caller
  /// supplies its own scratch via run_with_scratch.
  void run(std::span<const double> inputs, std::span<double> outputs) const;

  /// Same, with caller-provided scratch of size register_count() — the
  /// allocation-free hot path for iterative evaluation.
  void run_with_scratch(std::span<const double> inputs, std::span<double> outputs,
                        std::span<double> scratch) const;

  /// Batched structure-of-arrays execution of `count` independent points.
  /// Lane stride is `count`: input i of point p sits at inputs[i*count + p],
  /// output k of point p lands at outputs[k*count + p], and scratch must
  /// hold register_count()*count doubles.  Each instruction is executed
  /// across all lanes before the next one, so the inner loops are tight,
  /// branch-free and SIMD-friendly; per-lane arithmetic is performed in
  /// exactly the scalar order, so every lane's result is bit-identical to
  /// run() on that point regardless of `count`.
  void run_batch(std::span<const double> inputs, std::span<double> outputs,
                 std::span<double> scratch, std::size_t count) const;

  /// Emit the program as a standalone C function
  ///   void <name>(const double* in, double* out);
  /// so a compiled model can be exported from the tool and linked into a
  /// downstream application with zero interpreter overhead.
  std::string to_c_source(std::string_view function_name) const;

 private:
  std::vector<Instr> instrs_;
  std::vector<double> constants_;
  std::vector<std::uint32_t> output_regs_;
  std::size_t register_count_ = 0;
  std::size_t input_count_ = 0;
};

/// Lower a polynomial into the DAG with recursive Horner factoring:
/// repeatedly pull out the variable of highest degree, emitting
/// (((c_d x + c_{d-1}) x + ...) x + c_0) with polynomial coefficients
/// lowered recursively.  var_nodes[i] is the DAG node for variable i.
NodeId lower_polynomial(ExprGraph& graph, const Polynomial& poly,
                        std::span<const NodeId> var_nodes);

/// Lower a rational function: lower_polynomial(num) / lower_polynomial(den).
NodeId lower_rational(ExprGraph& graph, const RationalFunction& rf,
                      std::span<const NodeId> var_nodes);

}  // namespace awe::symbolic
