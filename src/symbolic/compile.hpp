// Compilation of an expression DAG into a flat register program.
//
// This realizes the paper's central efficiency claim: "the symbolic form
// provides a compiled set of operations which can quickly produce a final
// AWE approximation, where the operands are the values of the symbols."
// The program is a straight-line instruction vector over a small register
// file; registers are recycled after the last use of each intermediate, so
// the working set stays cache resident even for thousand-operation models.
//
// Two instruction streams are built from the same DAG:
//   - the STRICT stream: one instruction per DAG node, exactly the scalar
//     operation order, bit-for-bit reproducible (EvalMode::kStrict);
//   - the FUSED stream: a post-compilation peephole pass contracts the
//     kMul+kAdd/kSub pairs emitted by Horner lowering into kFma/kFms ops,
//     folds single-use kNeg into consuming adds/subs, and renumbers
//     registers by liveness over the shorter sequence (EvalMode::kFast).
// kFast trades the bit-for-bit guarantee for throughput: fused ops may be
// contracted to hardware FMA (single rounding), so results can drift from
// strict by a few ULP per fused operation.  See DESIGN.md "Fused
// evaluation and the strict/fast contract".
#pragma once

#include <cstddef>
#include <iosfwd>
#include <span>
#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

#include "symbolic/expr.hpp"
#include "symbolic/polynomial.hpp"
#include "symbolic/rational.hpp"

namespace awe::symbolic {

struct Instr {
  OpCode op{};
  std::uint32_t dst = 0;
  std::uint32_t a = 0;  // register, input index (kInput) or constant index (kConst)
  std::uint32_t b = 0;
  std::uint32_t c = 0;  // third operand register (kFma/kFms only)
};

/// Non-owning executable view of a compiled program: the exact spans the
/// interpreter and the C emitters read.  For an owning CompiledProgram the
/// spans alias its internal vectors; for a view-backed one (model format
/// v4, DESIGN.md §15) they point straight into a mapped file or shared
/// memory region — the region's records ARE the instruction stream, so
/// opening a model touches no per-instruction allocation at all.  The
/// backing region must outlive every program built over it (CompiledModel
/// pins it with a shared handle).
struct ProgramCode {
  std::span<const Instr> strict;
  std::span<const Instr> fused;
  std::span<const double> constants;
  std::span<const std::uint32_t> outputs;        ///< strict-stream output registers
  std::span<const std::uint32_t> fused_outputs;  ///< fused-stream output registers
  std::size_t input_count = 0;
  std::size_t register_count = 0;  ///< max of the two streams' register files
};

/// Numeric evaluation contract for the batched interpreter.
enum class EvalMode : std::uint8_t {
  /// Unfused instruction stream; every lane is bit-identical to run().
  kStrict,
  /// Fused (peephole) stream with FMA contraction permitted: faster, and
  /// within a small ULP bound of kStrict, but not bit-reproducible across
  /// hardware or batch geometry.
  kFast,
};

class CompiledProgram {
 public:
  /// Compile the subgraph reachable from `roots`.  Output k of run() is the
  /// value of roots[k].
  CompiledProgram(const ExprGraph& graph, std::span<const NodeId> roots);

  std::size_t output_count() const { return output_regs_.size(); }
  std::size_t input_count() const { return input_count_; }
  std::size_t instruction_count() const { return instrs_.size(); }
  /// Length of the peephole-fused stream (<= instruction_count()).
  std::size_t fused_instruction_count() const { return fused_instrs_.size(); }
  /// Scratch registers per lane.  Sized for BOTH streams (max of the two
  /// register files), so one scratch allocation serves either EvalMode.
  std::size_t register_count() const { return register_count_; }

  /// Evaluate: inputs are the symbol values; outputs receives the root
  /// values.  Always strict.  Thread-safe (no internal mutable state) when
  /// each caller supplies its own scratch via run_with_scratch.
  void run(std::span<const double> inputs, std::span<double> outputs) const;

  /// Same, with caller-provided scratch — the allocation-free hot path for
  /// iterative evaluation.
  /// Preconditions (validated, std::invalid_argument on violation):
  ///   inputs.size() >= input_count(), outputs.size() == output_count(),
  ///   scratch.size() >= register_count().
  void run_with_scratch(std::span<const double> inputs, std::span<double> outputs,
                        std::span<double> scratch) const;

  /// Batched structure-of-arrays execution of `count` independent points.
  /// Lane stride is `count`: input i of point p sits at inputs[i*count + p],
  /// output k of point p lands at outputs[k*count + p].
  ///
  /// Preconditions (validated, std::invalid_argument on violation):
  ///   inputs.size()  >= input_count()*count,
  ///   outputs.size() >= output_count()*count,
  ///   scratch.size() >= register_count()*count.
  ///
  /// EvalMode::kStrict interprets the unfused stream, each instruction
  /// executed across all lanes in exactly the scalar operation order, so
  /// every lane's result is bit-identical to run() on that point regardless
  /// of `count`.  EvalMode::kFast interprets the fused stream through
  /// width-8 unrolled kernels; results are within a small ULP bound of
  /// strict (see EvalMode).
  void run_batch(std::span<const double> inputs, std::span<double> outputs,
                 std::span<double> scratch, std::size_t count,
                 EvalMode mode = EvalMode::kStrict) const;

  /// Emit the program as a standalone C function
  ///   void <name>(const double* in, double* out);
  /// so a compiled model can be exported from the tool and linked into a
  /// downstream application with zero interpreter overhead.  kFast emits
  /// the fused stream using C99 fma() (the caller must include <math.h>).
  std::string to_c_source(std::string_view function_name,
                          EvalMode mode = EvalMode::kStrict) const;

  /// Emit the program as a standalone width-N SoA batch kernel
  ///   void <name>(const double* in, double* out, unsigned long n);
  /// evaluating n independent points with lane stride n (input i of point p
  /// at in[i*n + p], output k of point p at out[k*n + p]) — the same memory
  /// layout as run_batch, and the source form the native AOT backend
  /// compiles into a .so (DESIGN.md §12).  kStrict emits the unfused stream
  /// one IEEE operation per statement: compiled with FP contraction off it
  /// is bit-identical to the strict interpreter.  kFast emits the fused
  /// stream as a*b + c expressions so the C compiler may contract them to
  /// hardware FMA — the same rounding freedom EvalMode::kFast grants the
  /// interpreter.  The source is self-contained (no headers needed, even
  /// for non-finite constants).
  std::string to_c_source_batch(std::string_view function_name,
                                EvalMode mode = EvalMode::kStrict) const;

  /// Binary serialization of the full program state: both instruction
  /// streams, the constant pool (bit-exact doubles) and both output maps.
  /// The byte stream is versioned and deterministic — save(load(save(p)))
  /// is byte-identical to save(p) — which is what the persistent model
  /// cache relies on.  See DESIGN.md "Persistent compiled-model cache".
  void save(std::ostream& os) const;
  /// Throws std::runtime_error on truncated/corrupt input or on a format
  /// version this build does not understand.
  static CompiledProgram load(std::istream& is);

  /// The executable view of this program.  For an owning program the spans
  /// alias internal storage and stay valid as long as the program lives;
  /// for a view-backed program they alias the external region it was built
  /// over.
  ProgramCode code() const {
    return {instrs_,      fused_instrs_, constants_,     output_regs_,
            fused_output_regs_, input_count_,  register_count_};
  }

  /// Construct a program that executes directly out of `code` without
  /// copying any stream — the model-format-v4 zero-copy path.  The caller
  /// owns the backing region and must keep it alive and immutable for the
  /// program's lifetime.  Runs the same structural validation as load()
  /// (register/constant/input bounds on every instruction); throws
  /// std::runtime_error on violation so a corrupt mapped file can never
  /// index out of the register file.
  static CompiledProgram from_code(const ProgramCode& code);

  /// True when the instruction streams alias an external region (mapped
  /// file / shared memory) rather than internal storage.
  bool view_backed() const { return external_; }

 private:
  CompiledProgram() = default;  // for load() / from_code()

  /// Structural validation of the current streams: every operand register,
  /// constant index and input index in bounds, output maps in bounds.
  /// Throws std::runtime_error with a "CompiledProgram::load:" message.
  void validate() const;
  /// Point the execution spans at the owned vectors (after the owned
  /// storage has been (re)filled or copied/moved).
  void rebind();

  void run_batch_strict(std::span<const double> inputs, std::span<double> outputs,
                        std::span<double> scratch, std::size_t count) const;
  void run_batch_fast(std::span<const double> inputs, std::span<double> outputs,
                      std::span<double> scratch, std::size_t count) const;

  // Owned storage.  Empty for view-backed programs (external_ == true),
  // where the execution spans below alias a caller-owned region instead.
  std::vector<Instr> own_instrs_;
  std::vector<Instr> own_fused_instrs_;
  std::vector<double> own_constants_;
  std::vector<std::uint32_t> own_output_regs_;
  std::vector<std::uint32_t> own_fused_output_regs_;

  // Execution views — the only thing the run/emit paths ever read.
  std::span<const Instr> instrs_;        // strict stream
  std::span<const Instr> fused_instrs_;  // peephole-fused stream
  std::span<const double> constants_;
  std::span<const std::uint32_t> output_regs_;        // strict stream
  std::span<const std::uint32_t> fused_output_regs_;  // fused stream
  std::size_t register_count_ = 0;  // max of the two streams' register files
  std::size_t input_count_ = 0;
  bool external_ = false;

 public:
  // Copy/move must re-point the spans at the destination's own_* storage
  // (or keep aliasing the external region for view-backed programs);
  // defaulted versions would leave a copy's spans dangling into the source.
  CompiledProgram(const CompiledProgram& other);
  CompiledProgram(CompiledProgram&& other) noexcept;
  CompiledProgram& operator=(const CompiledProgram& other);
  CompiledProgram& operator=(CompiledProgram&& other) noexcept;
  ~CompiledProgram() = default;
};

static_assert(sizeof(Instr) == 20, "Instr layout is part of model format v4");
static_assert(alignof(Instr) == 4, "Instr alignment is part of model format v4");
static_assert(offsetof(Instr, op) == 0 && offsetof(Instr, dst) == 4 &&
                  offsetof(Instr, a) == 8 && offsetof(Instr, b) == 12 &&
                  offsetof(Instr, c) == 16,
              "Instr field offsets are part of model format v4");
static_assert(std::is_trivially_copyable_v<Instr>,
              "mapped instruction streams are reinterpreted in place");

/// Reverse-mode differentiation over the DAG (DESIGN.md §14): for each
/// root, one backward sweep appends adjoint expression nodes computing
/// d(root)/d(input i) for ALL inputs simultaneously, into the SAME graph —
/// hash-consing shares every primal subterm with the forward pass and CSEs
/// adjoint terms across roots, so compiling [roots..., jac...] as one
/// CompiledProgram evaluates primals and gradients in a single stream.
///
/// Returns jac with jac[r * graph.input_count() + i] = node for
/// d(roots[r])/d(input i); inputs a root does not depend on map to the
/// constant-0 node.  Operand ids are always smaller than their consumer's
/// id (nodes are interned bottom-up), so one descending id sweep per root
/// is a valid reverse-topological order even while adjoint nodes are being
/// appended.  Throws std::invalid_argument if the graph contains fused ops
/// (kFma/kFms never appear in an ExprGraph).
std::vector<NodeId> reverse_gradients(ExprGraph& graph, std::span<const NodeId> roots);

/// Lower a polynomial into the DAG with recursive Horner factoring:
/// repeatedly pull out the variable of highest degree, emitting
/// (((c_d x + c_{d-1}) x + ...) x + c_0) with polynomial coefficients
/// lowered recursively.  var_nodes[i] is the DAG node for variable i.
NodeId lower_polynomial(ExprGraph& graph, const Polynomial& poly,
                        std::span<const NodeId> var_nodes);

/// Lower a rational function: lower_polynomial(num) / lower_polynomial(den).
NodeId lower_rational(ExprGraph& graph, const RationalFunction& rf,
                      std::span<const NodeId> var_nodes);

}  // namespace awe::symbolic
