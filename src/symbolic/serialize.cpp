#include "symbolic/serialize.hpp"

#include <cstring>
#include <istream>
#include <ostream>
#include <stdexcept>

namespace awe::symbolic::io {

namespace {

void write_bytes(std::ostream& os, const void* data, std::size_t n) {
  os.write(static_cast<const char*>(data), static_cast<std::streamsize>(n));
  if (!os) throw std::runtime_error("serialize: write failed");
}

void read_bytes(std::istream& is, void* data, std::size_t n) {
  is.read(static_cast<char*>(data), static_cast<std::streamsize>(n));
  if (!is || is.gcount() != static_cast<std::streamsize>(n))
    throw std::runtime_error("serialize: truncated input");
}

template <typename T>
void write_le(std::ostream& os, T v) {
  // Serialize little-endian regardless of host order.
  unsigned char buf[sizeof(T)];
  for (std::size_t i = 0; i < sizeof(T); ++i)
    buf[i] = static_cast<unsigned char>((v >> (8 * i)) & 0xff);
  write_bytes(os, buf, sizeof(T));
}

template <typename T>
T read_le(std::istream& is) {
  unsigned char buf[sizeof(T)];
  read_bytes(is, buf, sizeof(T));
  T v = 0;
  for (std::size_t i = 0; i < sizeof(T); ++i) v |= static_cast<T>(buf[i]) << (8 * i);
  return v;
}

}  // namespace

void write_u8(std::ostream& os, std::uint8_t v) { write_le<std::uint8_t>(os, v); }
void write_u16(std::ostream& os, std::uint16_t v) { write_le<std::uint16_t>(os, v); }
void write_u32(std::ostream& os, std::uint32_t v) { write_le<std::uint32_t>(os, v); }
void write_u64(std::ostream& os, std::uint64_t v) { write_le<std::uint64_t>(os, v); }

void write_f64(std::ostream& os, double v) {
  std::uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  write_u64(os, bits);
}

void write_string(std::ostream& os, const std::string& s) {
  write_u64(os, s.size());
  if (!s.empty()) write_bytes(os, s.data(), s.size());
}

std::uint8_t read_u8(std::istream& is) { return read_le<std::uint8_t>(is); }
std::uint16_t read_u16(std::istream& is) { return read_le<std::uint16_t>(is); }
std::uint32_t read_u32(std::istream& is) { return read_le<std::uint32_t>(is); }
std::uint64_t read_u64(std::istream& is) { return read_le<std::uint64_t>(is); }

double read_f64(std::istream& is) {
  const std::uint64_t bits = read_u64(is);
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

std::string read_string(std::istream& is) {
  const std::uint64_t n = read_count(is);
  std::string s(n, '\0');
  if (n) read_bytes(is, s.data(), n);
  return s;
}

std::uint64_t read_count(std::istream& is, std::uint64_t limit) {
  const std::uint64_t n = read_u64(is);
  if (n > limit) throw std::runtime_error("serialize: count exceeds sanity bound");
  return n;
}

void save_polynomial(std::ostream& os, const Polynomial& poly) {
  write_u64(os, poly.nvars());
  write_u64(os, poly.terms().size());
  for (const Term& t : poly.terms()) {
    // The exponent vector size equals nvars — no per-term length prefix.
    for (std::uint16_t e : t.exponents) write_u16(os, e);
    write_f64(os, t.coeff);
  }
}

Polynomial load_polynomial(std::istream& is) {
  const std::uint64_t nvars = read_count(is, 1u << 20);
  const std::uint64_t nterms = read_count(is);
  std::vector<Term> terms(nterms);
  for (Term& t : terms) {
    t.exponents.resize(nvars);
    for (std::uint16_t& e : t.exponents) e = read_u16(is);
    t.coeff = read_f64(is);
  }
  // from_terms re-normalizes (sort + merge); serialized terms already
  // satisfy the invariant, so this is an identity pass and a load→save
  // round trip is byte-stable.
  return Polynomial::from_terms(nvars, std::move(terms));
}

}  // namespace awe::symbolic::io
