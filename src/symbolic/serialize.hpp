// Binary serialization primitives shared by the compiled-program and
// compiled-model writers (symbolic/compile_io.cpp, core/model_io.cpp).
//
// The format is deliberately boring: little-endian fixed-width integers,
// raw IEEE-754 doubles (bit-exact round trips, no text formatting drift)
// and length-prefixed strings.  Every field is written in a fixed order
// from fully-ordered containers, so serializing the same object twice —
// or serializing, loading and re-serializing — produces byte-identical
// output.  That determinism is what the on-disk model cache and the CI
// cache-determinism job assert.
//
// Readers validate as they go and throw std::runtime_error on truncated
// or malformed input; they never read uninitialized memory.  Sizes are
// sanity-bounded so a corrupt length prefix cannot trigger a huge
// allocation.
#pragma once

#include <cstdint>
#include <istream>
#include <streambuf>
#include <string>

#include "symbolic/polynomial.hpp"

namespace awe::symbolic::io {

/// Read-only istream over an external byte range — parse in place, no
/// copy into an istringstream.  The caller keeps the range alive for the
/// stream's lifetime.  Used by the legacy model loader (single-read
/// in-place parse) and the lazy v4 symbolics section.
class imembuf : public std::streambuf {
 public:
  imembuf(const char* data, std::size_t size) {
    char* p = const_cast<char*>(data);  // std::streambuf API; never written
    setg(p, p, p + size);
  }
};

class imemstream : private imembuf, public std::istream {
 public:
  imemstream(const char* data, std::size_t size)
      : imembuf(data, size), std::istream(static_cast<std::streambuf*>(this)) {}
};

/// Upper bound accepted for any length prefix (elements, not bytes); a
/// corrupt file fails fast instead of attempting a multi-GB allocation.
inline constexpr std::uint64_t kMaxCount = 1ull << 28;

void write_u8(std::ostream& os, std::uint8_t v);
void write_u16(std::ostream& os, std::uint16_t v);
void write_u32(std::ostream& os, std::uint32_t v);
void write_u64(std::ostream& os, std::uint64_t v);
void write_f64(std::ostream& os, double v);
void write_string(std::ostream& os, const std::string& s);

std::uint8_t read_u8(std::istream& is);
std::uint16_t read_u16(std::istream& is);
std::uint32_t read_u32(std::istream& is);
std::uint64_t read_u64(std::istream& is);
double read_f64(std::istream& is);
std::string read_string(std::istream& is);

/// Reads a length prefix and validates it against `limit`.
std::uint64_t read_count(std::istream& is, std::uint64_t limit = kMaxCount);

void save_polynomial(std::ostream& os, const Polynomial& poly);
Polynomial load_polynomial(std::istream& is);

}  // namespace awe::symbolic::io
