#include "symbolic/rational.hpp"

#include <cmath>
#include <stdexcept>

namespace awe::symbolic {

RationalFunction::RationalFunction(Polynomial num, Polynomial den)
    : num_(std::move(num)), den_(std::move(den)) {
  if (den_.is_zero()) throw std::invalid_argument("RationalFunction: zero denominator");
  if (num_.nvars() != den_.nvars())
    throw std::invalid_argument("RationalFunction: nvars mismatch");
}

RationalFunction RationalFunction::from_polynomial(Polynomial p) {
  const std::size_t n = p.nvars();
  return RationalFunction(std::move(p), Polynomial::constant(n, 1.0));
}

RationalFunction RationalFunction::constant(std::size_t nvars, double c) {
  return RationalFunction(Polynomial::constant(nvars, c), Polynomial::constant(nvars, 1.0));
}

RationalFunction RationalFunction::operator-() const {
  return RationalFunction(-num_, den_);
}

RationalFunction operator+(const RationalFunction& a, const RationalFunction& b) {
  if (a.den_ == b.den_) return RationalFunction(a.num_ + b.num_, a.den_);
  return RationalFunction(a.num_ * b.den_ + b.num_ * a.den_, a.den_ * b.den_);
}

RationalFunction operator-(const RationalFunction& a, const RationalFunction& b) {
  if (a.den_ == b.den_) return RationalFunction(a.num_ - b.num_, a.den_);
  return RationalFunction(a.num_ * b.den_ - b.num_ * a.den_, a.den_ * b.den_);
}

RationalFunction operator*(const RationalFunction& a, const RationalFunction& b) {
  return RationalFunction(a.num_ * b.num_, a.den_ * b.den_);
}

RationalFunction operator/(const RationalFunction& a, const RationalFunction& b) {
  if (b.num_.is_zero()) throw std::domain_error("RationalFunction: division by zero");
  return RationalFunction(a.num_ * b.den_, a.den_ * b.num_);
}

RationalFunction RationalFunction::operator*(double k) const {
  return RationalFunction(num_ * k, den_);
}

double RationalFunction::evaluate(std::span<const double> values) const {
  const double d = den_.evaluate(values);
  if (d == 0.0) throw std::domain_error("RationalFunction::evaluate: pole hit");
  return num_.evaluate(values) / d;
}

RationalFunction RationalFunction::derivative(std::size_t var) const {
  return RationalFunction(num_.derivative(var) * den_ - num_ * den_.derivative(var),
                          den_ * den_);
}

RationalFunction RationalFunction::normalized() const {
  if (num_ == den_) return constant(nvars(), 1.0);
  double scale = den_.max_abs_coeff();
  if (scale == 0.0) return *this;
  // Make the largest-magnitude denominator coefficient +1 (sign included,
  // so printed forms come out with a positive leading denominator term).
  // NOTE: no coefficient cleaning here — circuit quantities legitimately
  // span dozens of decades (farads vs siemens), so a relative-to-max
  // threshold would delete real physics.  Polynomial::cleaned() remains
  // available as an explicit, caller-judged operation.
  for (const auto& t : den_.terms())
    if (std::abs(t.coeff) == scale) {
      scale = t.coeff;
      break;
    }
  const double inv = 1.0 / scale;
  return RationalFunction(num_ * inv, den_ * inv);
}

std::string RationalFunction::to_string(std::span<const std::string> var_names) const {
  if (den_.is_constant() && den_.constant_value() == 1.0) return num_.to_string(var_names);
  return "(" + num_.to_string(var_names) + ") / (" + den_.to_string(var_names) + ")";
}

}  // namespace awe::symbolic
