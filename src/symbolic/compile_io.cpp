// CompiledProgram binary save/load.  Format (version 1, all little-endian):
//   magic "AWEP", u32 version,
//   u64 input_count, u64 register_count,
//   u64 nconstants, f64[nconstants],
//   stream x2 (strict, fused): u64 ninstr, per instr {u8 op, u32 dst,a,b,c},
//   outputs x2 (strict, fused): u64 n, u32[n].
// Bumping the version invalidates every cached model (the cache key also
// embeds the version, so stale entries are simply never looked up).
#include <cstring>
#include <istream>
#include <ostream>
#include <stdexcept>

#include "symbolic/compile.hpp"
#include "symbolic/serialize.hpp"

namespace awe::symbolic {

namespace {

constexpr char kMagic[4] = {'A', 'W', 'E', 'P'};
constexpr std::uint32_t kVersion = 1;

void save_stream(std::ostream& os, std::span<const Instr> instrs) {
  io::write_u64(os, instrs.size());
  for (const Instr& in : instrs) {
    io::write_u8(os, static_cast<std::uint8_t>(in.op));
    io::write_u32(os, in.dst);
    io::write_u32(os, in.a);
    io::write_u32(os, in.b);
    io::write_u32(os, in.c);
  }
}

std::vector<Instr> load_stream(std::istream& is) {
  const std::uint64_t n = io::read_count(is);
  std::vector<Instr> instrs(n);
  for (Instr& in : instrs) {
    const std::uint8_t op = io::read_u8(is);
    if (op > static_cast<std::uint8_t>(OpCode::kFms))
      throw std::runtime_error("CompiledProgram::load: unknown opcode");
    in.op = static_cast<OpCode>(op);
    in.dst = io::read_u32(is);
    in.a = io::read_u32(is);
    in.b = io::read_u32(is);
    in.c = io::read_u32(is);
  }
  return instrs;
}

void save_regs(std::ostream& os, std::span<const std::uint32_t> regs) {
  io::write_u64(os, regs.size());
  for (std::uint32_t r : regs) io::write_u32(os, r);
}

std::vector<std::uint32_t> load_regs(std::istream& is) {
  const std::uint64_t n = io::read_count(is);
  std::vector<std::uint32_t> regs(n);
  for (std::uint32_t& r : regs) r = io::read_u32(is);
  return regs;
}

}  // namespace

void CompiledProgram::save(std::ostream& os) const {
  os.write(kMagic, sizeof(kMagic));
  io::write_u32(os, kVersion);
  io::write_u64(os, input_count_);
  io::write_u64(os, register_count_);
  io::write_u64(os, constants_.size());
  for (double c : constants_) io::write_f64(os, c);
  save_stream(os, instrs_);
  save_stream(os, fused_instrs_);
  save_regs(os, output_regs_);
  save_regs(os, fused_output_regs_);
  if (!os) throw std::runtime_error("CompiledProgram::save: write failed");
}

CompiledProgram CompiledProgram::load(std::istream& is) {
  char magic[4];
  is.read(magic, sizeof(magic));
  if (!is || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0)
    throw std::runtime_error("CompiledProgram::load: bad magic");
  const std::uint32_t version = io::read_u32(is);
  if (version != kVersion)
    throw std::runtime_error("CompiledProgram::load: unsupported format version");

  CompiledProgram p;
  p.input_count_ = io::read_count(is);
  p.register_count_ = io::read_count(is);
  const std::uint64_t nconst = io::read_count(is);
  p.own_constants_.resize(nconst);
  for (double& c : p.own_constants_) c = io::read_f64(is);
  p.own_instrs_ = load_stream(is);
  p.own_fused_instrs_ = load_stream(is);
  p.own_output_regs_ = load_regs(is);
  p.own_fused_output_regs_ = load_regs(is);
  p.rebind();
  p.validate();
  return p;
}

void CompiledProgram::validate() const {
  // Structural validation: every operand must stay inside the loaded
  // register/constant/input bounds so a corrupt file (or mapped region)
  // cannot make run() read out of range.
  auto check_reg = [&](std::uint32_t r) {
    if (r >= register_count_)
      throw std::runtime_error("CompiledProgram::load: register out of range");
  };
  auto check_stream = [&](std::span<const Instr> instrs) {
    for (const Instr& in : instrs) {
      if (static_cast<std::uint8_t>(in.op) > static_cast<std::uint8_t>(OpCode::kFms))
        throw std::runtime_error("CompiledProgram::load: unknown opcode");
      check_reg(in.dst);
      switch (in.op) {
        case OpCode::kConst:
          if (in.a >= constants_.size())
            throw std::runtime_error("CompiledProgram::load: constant out of range");
          break;
        case OpCode::kInput:
          if (in.a >= input_count_)
            throw std::runtime_error("CompiledProgram::load: input out of range");
          break;
        case OpCode::kNeg:
          check_reg(in.a);
          break;
        case OpCode::kFma:
        case OpCode::kFms:
          check_reg(in.c);
          [[fallthrough]];
        default:
          check_reg(in.a);
          check_reg(in.b);
          break;
      }
    }
  };
  check_stream(instrs_);
  check_stream(fused_instrs_);
  for (std::uint32_t r : output_regs_) check_reg(r);
  for (std::uint32_t r : fused_output_regs_) check_reg(r);
  if (output_regs_.size() != fused_output_regs_.size())
    throw std::runtime_error("CompiledProgram::load: output count mismatch");
}

}  // namespace awe::symbolic
