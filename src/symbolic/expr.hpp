// Hash-consed expression DAG.
//
// AWEsymbolic "compiles" the symbolic moment expressions into a reduced
// set of operations (paper §1, §3).  The DAG is the intermediate
// representation: every arithmetic node is hash-consed so that common
// subexpressions across all moments (e.g. shared denominator powers,
// repeated symbol products) are stored and later evaluated exactly once.
// Algebraic identities that are safe over IEEE doubles when one operand is
// a literal constant (x+0, x*1, x*0, constant folding) are applied at
// construction.
#pragma once

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

namespace awe::symbolic {

using NodeId = std::uint32_t;

enum class OpCode : std::uint8_t {
  kConst,  ///< literal; `value` holds it
  kInput,  ///< runtime input (symbol value); `a` is the input index
  kAdd,
  kSub,
  kMul,
  kDiv,
  kNeg,
  // Instruction-level fused ops, produced only by the compile-time peephole
  // pass (CompiledProgram's kFast path); an ExprGraph never contains them.
  kFma,  ///< dst = a*b + c
  kFms,  ///< dst = a*b - c
};

struct ExprNode {
  OpCode op{};
  double value = 0.0;  // kConst only
  NodeId a = 0;        // operand / input index
  NodeId b = 0;        // second operand
};

class ExprGraph {
 public:
  NodeId constant(double v);
  NodeId input(std::uint32_t index);
  NodeId add(NodeId a, NodeId b);
  NodeId sub(NodeId a, NodeId b);
  NodeId mul(NodeId a, NodeId b);
  NodeId div(NodeId a, NodeId b);
  NodeId neg(NodeId a);
  /// a^e by binary powering (e >= 0; a^0 is the constant 1).
  NodeId pow(NodeId a, std::uint32_t e);

  const ExprNode& node(NodeId id) const { return nodes_[id]; }
  std::size_t node_count() const { return nodes_.size(); }
  std::uint32_t input_count() const { return input_count_; }

  /// Reference (slow) evaluation of a single node — used in tests to
  /// validate the compiled program.
  double evaluate_node(NodeId id, std::span<const double> inputs) const;

 private:
  struct Key {
    OpCode op;
    double value;
    NodeId a, b;
    bool operator==(const Key&) const = default;
  };
  struct KeyHash {
    std::size_t operator()(const Key& k) const;
  };

  NodeId intern(Key k);
  bool is_const(NodeId id, double v) const {
    return nodes_[id].op == OpCode::kConst && nodes_[id].value == v;
  }

  std::vector<ExprNode> nodes_;
  std::unordered_map<Key, NodeId, KeyHash> interned_;
  std::uint32_t input_count_ = 0;
};

}  // namespace awe::symbolic
