#include "symbolic/polynomial.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <map>
#include <sstream>
#include <stdexcept>

namespace awe::symbolic {

bool monomial_less(const Monomial& a, const Monomial& b) {
  assert(a.size() == b.size());
  std::size_t da = 0, db = 0;
  for (auto e : a) da += e;
  for (auto e : b) db += e;
  if (da != db) return da < db;
  return std::lexicographical_compare(a.begin(), a.end(), b.begin(), b.end());
}

Polynomial Polynomial::constant(std::size_t nvars, double c) {
  Polynomial p(nvars);
  if (c != 0.0) p.terms_.push_back({Monomial(nvars, 0), c});
  return p;
}

Polynomial Polynomial::variable(std::size_t nvars, std::size_t index) {
  if (index >= nvars) throw std::out_of_range("Polynomial::variable index");
  Polynomial p(nvars);
  Monomial m(nvars, 0);
  m[index] = 1;
  p.terms_.push_back({std::move(m), 1.0});
  return p;
}

Polynomial Polynomial::from_terms(std::size_t nvars, std::vector<Term> terms) {
  Polynomial p(nvars);
  p.terms_ = std::move(terms);
  for (const auto& t : p.terms_)
    if (t.exponents.size() != nvars)
      throw std::invalid_argument("Polynomial::from_terms exponent size mismatch");
  p.normalize();
  return p;
}

void Polynomial::normalize() {
  std::sort(terms_.begin(), terms_.end(),
            [](const Term& a, const Term& b) { return monomial_less(a.exponents, b.exponents); });
  std::vector<Term> merged;
  merged.reserve(terms_.size());
  for (auto& t : terms_) {
    if (!merged.empty() && merged.back().exponents == t.exponents) {
      merged.back().coeff += t.coeff;
    } else {
      merged.push_back(std::move(t));
    }
  }
  merged.erase(std::remove_if(merged.begin(), merged.end(),
                              [](const Term& t) { return t.coeff == 0.0; }),
               merged.end());
  terms_ = std::move(merged);
}

bool Polynomial::is_constant() const {
  if (terms_.empty()) return true;
  if (terms_.size() > 1) return false;
  for (auto e : terms_[0].exponents)
    if (e != 0) return false;
  return true;
}

double Polynomial::constant_value() const {
  if (terms_.empty()) return 0.0;
  const auto& t = terms_.front();  // constant term sorts first (degree 0)
  for (auto e : t.exponents)
    if (e != 0) return 0.0;
  return t.coeff;
}

std::size_t Polynomial::total_degree() const {
  std::size_t d = 0;
  for (const auto& t : terms_) {
    std::size_t td = 0;
    for (auto e : t.exponents) td += e;
    d = std::max(d, td);
  }
  return d;
}

std::size_t Polynomial::degree_in(std::size_t var) const {
  std::size_t d = 0;
  for (const auto& t : terms_) d = std::max<std::size_t>(d, t.exponents[var]);
  return d;
}

Polynomial Polynomial::operator-() const {
  Polynomial r = *this;
  for (auto& t : r.terms_) t.coeff = -t.coeff;
  return r;
}

Polynomial& Polynomial::operator+=(const Polynomial& o) {
  if (nvars_ != o.nvars_) throw std::invalid_argument("Polynomial nvars mismatch");
  // Merge two sorted term lists.
  std::vector<Term> out;
  out.reserve(terms_.size() + o.terms_.size());
  std::size_t i = 0, j = 0;
  while (i < terms_.size() && j < o.terms_.size()) {
    if (terms_[i].exponents == o.terms_[j].exponents) {
      const double c = terms_[i].coeff + o.terms_[j].coeff;
      if (c != 0.0) out.push_back({terms_[i].exponents, c});
      ++i;
      ++j;
    } else if (monomial_less(terms_[i].exponents, o.terms_[j].exponents)) {
      out.push_back(terms_[i++]);
    } else {
      out.push_back(o.terms_[j++]);
    }
  }
  while (i < terms_.size()) out.push_back(terms_[i++]);
  while (j < o.terms_.size()) out.push_back(o.terms_[j++]);
  terms_ = std::move(out);
  return *this;
}

Polynomial& Polynomial::operator-=(const Polynomial& o) { return *this += -o; }

Polynomial& Polynomial::operator*=(double k) {
  if (k == 0.0) {
    terms_.clear();
    return *this;
  }
  for (auto& t : terms_) t.coeff *= k;
  return *this;
}

Polynomial operator*(const Polynomial& a, const Polynomial& b) {
  if (a.nvars_ != b.nvars_) throw std::invalid_argument("Polynomial nvars mismatch");
  Polynomial r(a.nvars_);
  if (a.is_zero() || b.is_zero()) return r;
  std::map<Monomial, double, decltype(&monomial_less)> acc(&monomial_less);
  Monomial m(a.nvars_);
  for (const auto& ta : a.terms_) {
    for (const auto& tb : b.terms_) {
      for (std::size_t v = 0; v < a.nvars_; ++v)
        m[v] = static_cast<std::uint16_t>(ta.exponents[v] + tb.exponents[v]);
      acc[m] += ta.coeff * tb.coeff;
    }
  }
  r.terms_.reserve(acc.size());
  for (auto& [mono, c] : acc)
    if (c != 0.0) r.terms_.push_back({mono, c});
  return r;
}

bool Polynomial::operator==(const Polynomial& o) const {
  if (nvars_ != o.nvars_ || terms_.size() != o.terms_.size()) return false;
  for (std::size_t i = 0; i < terms_.size(); ++i)
    if (terms_[i].exponents != o.terms_[i].exponents || terms_[i].coeff != o.terms_[i].coeff)
      return false;
  return true;
}

double Polynomial::evaluate(std::span<const double> values) const {
  if (values.size() != nvars_) throw std::invalid_argument("Polynomial::evaluate arity");
  double sum = 0.0;
  for (const auto& t : terms_) {
    double prod = t.coeff;
    for (std::size_t v = 0; v < nvars_; ++v) {
      for (std::uint16_t e = 0; e < t.exponents[v]; ++e) prod *= values[v];
    }
    sum += prod;
  }
  return sum;
}

Polynomial Polynomial::derivative(std::size_t var) const {
  if (var >= nvars_) throw std::out_of_range("Polynomial::derivative var");
  std::vector<Term> out;
  for (const auto& t : terms_) {
    if (t.exponents[var] == 0) continue;
    Term d = t;
    d.coeff *= t.exponents[var];
    d.exponents[var] -= 1;
    out.push_back(std::move(d));
  }
  return from_terms(nvars_, std::move(out));
}

Polynomial Polynomial::substitute(std::size_t var, double value) const {
  if (var >= nvars_) throw std::out_of_range("Polynomial::substitute var");
  std::vector<Term> out;
  out.reserve(terms_.size());
  for (const auto& t : terms_) {
    Term s = t;
    for (std::uint16_t e = 0; e < t.exponents[var]; ++e) s.coeff *= value;
    s.exponents[var] = 0;
    out.push_back(std::move(s));
  }
  return from_terms(nvars_, std::move(out));
}

double Polynomial::max_abs_coeff() const {
  double m = 0.0;
  for (const auto& t : terms_) m = std::max(m, std::abs(t.coeff));
  return m;
}

Polynomial Polynomial::cleaned(double rel_tol) const {
  const double cutoff = rel_tol * max_abs_coeff();
  std::vector<Term> kept;
  kept.reserve(terms_.size());
  for (const auto& t : terms_)
    if (std::abs(t.coeff) > cutoff) kept.push_back(t);
  Polynomial p(nvars_);
  p.terms_ = std::move(kept);
  return p;
}

std::string Polynomial::to_string(std::span<const std::string> var_names) const {
  if (terms_.empty()) return "0";
  std::ostringstream os;
  bool first = true;
  // Print highest degree first for readability.
  for (auto it = terms_.rbegin(); it != terms_.rend(); ++it) {
    const Term& t = *it;
    double c = t.coeff;
    if (!first) {
      os << (c < 0.0 ? " - " : " + ");
      c = std::abs(c);
    } else if (c < 0.0) {
      os << "-";
      c = std::abs(c);
    }
    bool printed_factor = false;
    bool monomial_trivial = true;
    for (auto e : t.exponents)
      if (e != 0) monomial_trivial = false;
    if (c != 1.0 || monomial_trivial) {
      os << c;
      printed_factor = true;
    }
    for (std::size_t v = 0; v < nvars_; ++v) {
      if (t.exponents[v] == 0) continue;
      if (printed_factor) os << "*";
      if (v < var_names.size())
        os << var_names[v];
      else
        os << "x" << v;
      if (t.exponents[v] > 1) os << "^" << t.exponents[v];
      printed_factor = true;
    }
    first = false;
  }
  return os.str();
}

}  // namespace awe::symbolic
