// Rational functions (ratios of multivariate polynomials).
//
// Composite AWE moments are rational in the symbolic elements with the
// structured denominator det(Y0)^{k+1}; the pipeline preserves that
// structure so no multivariate GCD is ever required.  This class provides
// the generic ring operations used when combining moments into transfer
// function coefficients, pole formulas and performance measures.
#pragma once

#include <span>
#include <string>

#include "symbolic/polynomial.hpp"

namespace awe::symbolic {

class RationalFunction {
 public:
  RationalFunction() = default;  // 0/1 in 0 variables

  /// num / den; throws if den is the zero polynomial.
  RationalFunction(Polynomial num, Polynomial den);

  /// p / 1
  static RationalFunction from_polynomial(Polynomial p);
  static RationalFunction constant(std::size_t nvars, double c);

  const Polynomial& num() const { return num_; }
  const Polynomial& den() const { return den_; }
  std::size_t nvars() const { return num_.nvars(); }
  bool is_zero() const { return num_.is_zero(); }

  RationalFunction operator-() const;
  friend RationalFunction operator+(const RationalFunction& a, const RationalFunction& b);
  friend RationalFunction operator-(const RationalFunction& a, const RationalFunction& b);
  friend RationalFunction operator*(const RationalFunction& a, const RationalFunction& b);
  friend RationalFunction operator/(const RationalFunction& a, const RationalFunction& b);
  RationalFunction operator*(double k) const;

  /// Evaluate at a point; throws std::domain_error when the denominator
  /// vanishes there.
  double evaluate(std::span<const double> values) const;

  /// Partial derivative (quotient rule), denominator becomes den^2.
  RationalFunction derivative(std::size_t var) const;

  /// Scale num and den so that den's largest |coefficient| is 1 and drop
  /// round-off debris; also cancels identical num/den (to the constant).
  RationalFunction normalized() const;

  std::string to_string(std::span<const std::string> var_names = {}) const;

 private:
  Polynomial num_;
  Polynomial den_;
};

}  // namespace awe::symbolic
