#include "symbolic/compile.hpp"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <map>
#include <stdexcept>
#include <string>

namespace awe::symbolic {
namespace {

constexpr std::uint32_t kUnassigned = 0xffffffffu;

}  // namespace

CompiledProgram::CompiledProgram(const ExprGraph& graph, std::span<const NodeId> roots) {
  input_count_ = graph.input_count();

  // Nodes are created bottom-up, so ascending NodeId is a topological
  // order.  Mark the reachable subgraph.
  std::vector<unsigned char> reachable(graph.node_count(), 0);
  {
    std::vector<NodeId> stack(roots.begin(), roots.end());
    while (!stack.empty()) {
      const NodeId id = stack.back();
      stack.pop_back();
      if (reachable[id]) continue;
      reachable[id] = 1;
      const ExprNode& n = graph.node(id);
      switch (n.op) {
        case OpCode::kConst:
        case OpCode::kInput:
          break;
        case OpCode::kNeg:
          stack.push_back(n.a);
          break;
        default:
          stack.push_back(n.a);
          stack.push_back(n.b);
      }
    }
  }

  // Last use of each reachable node, for register recycling.
  std::vector<NodeId> last_use(graph.node_count(), 0);
  for (NodeId id = 0; id < graph.node_count(); ++id) {
    if (!reachable[id]) continue;
    const ExprNode& n = graph.node(id);
    switch (n.op) {
      case OpCode::kConst:
      case OpCode::kInput:
        break;
      case OpCode::kNeg:
        last_use[n.a] = id;
        break;
      default:
        last_use[n.a] = id;
        last_use[n.b] = id;
    }
  }
  // Roots stay live to the end of the program.
  for (const NodeId r : roots) last_use[r] = static_cast<NodeId>(graph.node_count());

  std::vector<std::uint32_t> reg_of(graph.node_count(), kUnassigned);
  std::vector<std::uint32_t> free_regs;
  std::uint32_t next_reg = 0;
  auto alloc_reg = [&]() -> std::uint32_t {
    if (!free_regs.empty()) {
      const std::uint32_t r = free_regs.back();
      free_regs.pop_back();
      return r;
    }
    return next_reg++;
  };
  // Nodes (sorted by id) whose register frees once the emitting instruction
  // for their last_use id has been issued.
  std::multimap<NodeId, std::uint32_t> frees;

  auto const_index = [&](double v) -> std::uint32_t {
    const auto it = std::find(constants_.begin(), constants_.end(), v);
    if (it != constants_.end())
      return static_cast<std::uint32_t>(it - constants_.begin());
    constants_.push_back(v);
    return static_cast<std::uint32_t>(constants_.size() - 1);
  };

  for (NodeId id = 0; id < graph.node_count(); ++id) {
    if (!reachable[id]) continue;
    const ExprNode& n = graph.node(id);
    Instr ins;
    ins.op = n.op;
    switch (n.op) {
      case OpCode::kConst:
        ins.a = const_index(n.value);
        break;
      case OpCode::kInput:
        ins.a = n.a;
        break;
      case OpCode::kNeg:
        ins.a = reg_of[n.a];
        assert(ins.a != kUnassigned);
        break;
      default:
        ins.a = reg_of[n.a];
        ins.b = reg_of[n.b];
        assert(ins.a != kUnassigned && ins.b != kUnassigned);
    }
    // Release registers whose owning node was last used by this node.
    for (auto it = frees.find(id); it != frees.end() && it->first == id;) {
      free_regs.push_back(it->second);
      it = frees.erase(it);
    }
    const std::uint32_t dst = alloc_reg();
    ins.dst = dst;
    reg_of[id] = dst;
    frees.emplace(last_use[id], dst);
    instrs_.push_back(ins);
  }
  register_count_ = next_reg;

  output_regs_.reserve(roots.size());
  for (const NodeId r : roots) {
    assert(reg_of[r] != kUnassigned);
    output_regs_.push_back(reg_of[r]);
  }
}

void CompiledProgram::run(std::span<const double> inputs, std::span<double> outputs) const {
  std::vector<double> scratch(register_count_);
  run_with_scratch(inputs, outputs, scratch);
}

void CompiledProgram::run_with_scratch(std::span<const double> inputs,
                                       std::span<double> outputs,
                                       std::span<double> scratch) const {
  if (inputs.size() < input_count_)
    throw std::invalid_argument("CompiledProgram::run: too few inputs");
  if (outputs.size() != output_regs_.size())
    throw std::invalid_argument("CompiledProgram::run: output size mismatch");
  if (scratch.size() < register_count_)
    throw std::invalid_argument("CompiledProgram::run: scratch too small");

  double* const r = scratch.data();
  for (const Instr& ins : instrs_) {
    switch (ins.op) {
      case OpCode::kConst:
        r[ins.dst] = constants_[ins.a];
        break;
      case OpCode::kInput:
        r[ins.dst] = inputs[ins.a];
        break;
      case OpCode::kAdd:
        r[ins.dst] = r[ins.a] + r[ins.b];
        break;
      case OpCode::kSub:
        r[ins.dst] = r[ins.a] - r[ins.b];
        break;
      case OpCode::kMul:
        r[ins.dst] = r[ins.a] * r[ins.b];
        break;
      case OpCode::kDiv:
        r[ins.dst] = r[ins.a] / r[ins.b];
        break;
      case OpCode::kNeg:
        r[ins.dst] = -r[ins.a];
        break;
    }
  }
  for (std::size_t k = 0; k < output_regs_.size(); ++k) outputs[k] = r[output_regs_[k]];
}

void CompiledProgram::run_batch(std::span<const double> inputs, std::span<double> outputs,
                                std::span<double> scratch, std::size_t count) const {
  if (count == 0) return;
  if (inputs.size() < input_count_ * count)
    throw std::invalid_argument("CompiledProgram::run_batch: too few inputs");
  if (outputs.size() < output_regs_.size() * count)
    throw std::invalid_argument("CompiledProgram::run_batch: output size mismatch");
  if (scratch.size() < register_count_ * count)
    throw std::invalid_argument("CompiledProgram::run_batch: scratch too small");

  double* const r = scratch.data();
  const double* const in = inputs.data();
  const std::size_t w = count;
  for (const Instr& ins : instrs_) {
    double* const d = r + ins.dst * w;
    switch (ins.op) {
      case OpCode::kConst: {
        const double c = constants_[ins.a];
        for (std::size_t l = 0; l < w; ++l) d[l] = c;
        break;
      }
      case OpCode::kInput: {
        const double* const s = in + ins.a * w;
        for (std::size_t l = 0; l < w; ++l) d[l] = s[l];
        break;
      }
      case OpCode::kAdd: {
        const double* const a = r + ins.a * w;
        const double* const b = r + ins.b * w;
        for (std::size_t l = 0; l < w; ++l) d[l] = a[l] + b[l];
        break;
      }
      case OpCode::kSub: {
        const double* const a = r + ins.a * w;
        const double* const b = r + ins.b * w;
        for (std::size_t l = 0; l < w; ++l) d[l] = a[l] - b[l];
        break;
      }
      case OpCode::kMul: {
        const double* const a = r + ins.a * w;
        const double* const b = r + ins.b * w;
        for (std::size_t l = 0; l < w; ++l) d[l] = a[l] * b[l];
        break;
      }
      case OpCode::kDiv: {
        const double* const a = r + ins.a * w;
        const double* const b = r + ins.b * w;
        for (std::size_t l = 0; l < w; ++l) d[l] = a[l] / b[l];
        break;
      }
      case OpCode::kNeg: {
        const double* const a = r + ins.a * w;
        for (std::size_t l = 0; l < w; ++l) d[l] = -a[l];
        break;
      }
    }
  }
  for (std::size_t k = 0; k < output_regs_.size(); ++k) {
    const double* const s = r + output_regs_[k] * w;
    double* const d = outputs.data() + k * w;
    for (std::size_t l = 0; l < w; ++l) d[l] = s[l];
  }
}

std::string CompiledProgram::to_c_source(std::string_view function_name) const {
  std::string src;
  src += "void " + std::string(function_name) + "(const double* in, double* out) {\n";
  src += "  double r[" + std::to_string(register_count_ == 0 ? 1 : register_count_) +
         "];\n";
  char buf[64];
  auto num = [&](double v) {
    std::snprintf(buf, sizeof buf, "%.17g", v);
    return std::string(buf);
  };
  for (const Instr& ins : instrs_) {
    const std::string d = "  r[" + std::to_string(ins.dst) + "] = ";
    const std::string a = "r[" + std::to_string(ins.a) + "]";
    const std::string b = "r[" + std::to_string(ins.b) + "]";
    switch (ins.op) {
      case OpCode::kConst:
        src += d + num(constants_[ins.a]) + ";\n";
        break;
      case OpCode::kInput:
        src += d + "in[" + std::to_string(ins.a) + "];\n";
        break;
      case OpCode::kAdd:
        src += d + a + " + " + b + ";\n";
        break;
      case OpCode::kSub:
        src += d + a + " - " + b + ";\n";
        break;
      case OpCode::kMul:
        src += d + a + " * " + b + ";\n";
        break;
      case OpCode::kDiv:
        src += d + a + " / " + b + ";\n";
        break;
      case OpCode::kNeg:
        src += d + "-" + a + ";\n";
        break;
    }
  }
  for (std::size_t k = 0; k < output_regs_.size(); ++k)
    src += "  out[" + std::to_string(k) + "] = r[" + std::to_string(output_regs_[k]) +
           "];\n";
  src += "}\n";
  return src;
}

namespace {

/// Recursive Horner lowering. `terms` all share the ambient nvars.
NodeId lower_terms(ExprGraph& graph, std::span<const Term> terms, std::size_t nvars,
                   std::span<const NodeId> var_nodes) {
  if (terms.empty()) return graph.constant(0.0);

  // Content factoring: pull out the largest monomial dividing every term
  // (common in moment numerators, where whole symbol products factor out);
  // the remainder then Horner-factors with smaller exponents.
  if (terms.size() > 1) {
    Monomial common(nvars, 0);
    bool any = false;
    for (std::size_t v = 0; v < nvars; ++v) {
      std::uint16_t mn = terms[0].exponents[v];
      for (const Term& t : terms) mn = std::min(mn, t.exponents[v]);
      common[v] = mn;
      any = any || mn > 0;
    }
    if (any) {
      std::vector<Term> reduced(terms.begin(), terms.end());
      for (Term& t : reduced)
        for (std::size_t v = 0; v < nvars; ++v)
          t.exponents[v] = static_cast<std::uint16_t>(t.exponents[v] - common[v]);
      NodeId factor = graph.constant(1.0);
      for (std::size_t v = 0; v < nvars; ++v)
        if (common[v] > 0) factor = graph.mul(factor, graph.pow(var_nodes[v], common[v]));
      return graph.mul(factor, lower_terms(graph, reduced, nvars, var_nodes));
    }
  }

  // Constant polynomial?
  if (terms.size() == 1) {
    const Term& t = terms[0];
    NodeId node = graph.constant(t.coeff);
    for (std::size_t v = 0; v < nvars; ++v)
      if (t.exponents[v] > 0) node = graph.mul(node, graph.pow(var_nodes[v], t.exponents[v]));
    return node;
  }

  // Pick the variable with the highest degree across these terms; ties go
  // to the variable appearing in the most terms (maximizes sharing).
  std::size_t best_var = nvars;
  std::size_t best_deg = 0, best_count = 0;
  for (std::size_t v = 0; v < nvars; ++v) {
    std::size_t deg = 0, count = 0;
    for (const Term& t : terms) {
      deg = std::max<std::size_t>(deg, t.exponents[v]);
      if (t.exponents[v] > 0) ++count;
    }
    if (deg == 0) continue;
    if (deg > best_deg || (deg == best_deg && count > best_count)) {
      best_deg = deg;
      best_count = count;
      best_var = v;
    }
  }
  if (best_var == nvars) {
    // All terms are constants (can only be one after normalization).
    double sum = 0.0;
    for (const Term& t : terms) sum += t.coeff;
    return graph.constant(sum);
  }

  // Bucket terms by exponent of best_var (exponent cleared in the bucket).
  std::vector<std::vector<Term>> buckets(best_deg + 1);
  for (const Term& t : terms) {
    Term reduced = t;
    const std::size_t e = t.exponents[best_var];
    reduced.exponents[best_var] = 0;
    buckets[e].push_back(std::move(reduced));
  }

  // Horner: result = (((c_d x + c_{d-1}) x + c_{d-2}) x + ...) with gaps
  // handled by repeated multiplication.
  const NodeId x = var_nodes[best_var];
  NodeId acc = lower_terms(graph, buckets[best_deg], nvars, var_nodes);
  for (std::size_t e = best_deg; e-- > 0;) {
    acc = graph.mul(acc, x);
    if (!buckets[e].empty())
      acc = graph.add(acc, lower_terms(graph, buckets[e], nvars, var_nodes));
  }
  return acc;
}

}  // namespace

NodeId lower_polynomial(ExprGraph& graph, const Polynomial& poly,
                        std::span<const NodeId> var_nodes) {
  if (var_nodes.size() != poly.nvars())
    throw std::invalid_argument("lower_polynomial: var_nodes size mismatch");
  return lower_terms(graph, poly.terms(), poly.nvars(), var_nodes);
}

NodeId lower_rational(ExprGraph& graph, const RationalFunction& rf,
                      std::span<const NodeId> var_nodes) {
  const NodeId num = lower_polynomial(graph, rf.num(), var_nodes);
  if (rf.den().is_constant() && rf.den().constant_value() == 1.0) return num;
  return graph.div(num, lower_polynomial(graph, rf.den(), var_nodes));
}

}  // namespace awe::symbolic
