#include "symbolic/compile.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>
#include <limits>
#include <map>
#include <stdexcept>
#include <string>

namespace awe::symbolic {
namespace {

constexpr std::uint32_t kUnassigned = 0xffffffffu;

/// One SSA-form instruction over DAG node ids, before register allocation.
/// `id` is the defining node; operands reference other defining nodes.
struct VInstr {
  OpCode op{};
  NodeId id = 0;
  std::uint32_t imm = 0;  // const index (kConst) or input index (kInput)
  NodeId a = 0, b = 0, c = 0;
};

/// How many register operands an instruction-level op reads.
int operand_count(OpCode op) {
  switch (op) {
    case OpCode::kConst:
    case OpCode::kInput:
      return 0;
    case OpCode::kNeg:
      return 1;
    case OpCode::kAdd:
    case OpCode::kSub:
    case OpCode::kMul:
    case OpCode::kDiv:
      return 2;
    case OpCode::kFma:
    case OpCode::kFms:
      return 3;
  }
  return 0;
}

/// Liveness-based register assignment over an SSA sequence: registers are
/// recycled at each value's last read, and the register file is renumbered
/// from scratch for THIS sequence — so the fused stream's working set
/// shrinks along with its instruction count.
struct AllocResult {
  std::vector<Instr> instrs;
  std::vector<std::uint32_t> output_regs;
  std::size_t register_count = 0;
};

AllocResult allocate_registers(const std::vector<VInstr>& seq,
                               std::span<const NodeId> roots, std::size_t node_count) {
  constexpr std::size_t kLiveToEnd = std::numeric_limits<std::size_t>::max();
  std::vector<std::size_t> last_use(node_count, 0);
  for (std::size_t i = 0; i < seq.size(); ++i) {
    const VInstr& v = seq[i];
    const int n = operand_count(v.op);
    if (n >= 1) last_use[v.a] = i;
    if (n >= 2) last_use[v.b] = i;
    if (n >= 3) last_use[v.c] = i;
  }
  for (const NodeId r : roots) last_use[r] = kLiveToEnd;

  std::vector<std::uint32_t> reg_of(node_count, kUnassigned);
  std::vector<std::uint32_t> free_regs;
  std::uint32_t next_reg = 0;
  auto alloc_reg = [&]() -> std::uint32_t {
    if (!free_regs.empty()) {
      const std::uint32_t r = free_regs.back();
      free_regs.pop_back();
      return r;
    }
    return next_reg++;
  };
  // Sequence positions whose emitting instruction releases a register.
  std::multimap<std::size_t, std::uint32_t> frees;

  AllocResult out;
  out.instrs.reserve(seq.size());
  for (std::size_t i = 0; i < seq.size(); ++i) {
    const VInstr& v = seq[i];
    Instr ins;
    ins.op = v.op;
    const int n = operand_count(v.op);
    if (n == 0) {
      ins.a = v.imm;
    } else {
      ins.a = reg_of[v.a];
      if (n >= 2) ins.b = reg_of[v.b];
      if (n >= 3) ins.c = reg_of[v.c];
      assert(ins.a != kUnassigned);
      assert(n < 2 || ins.b != kUnassigned);
      assert(n < 3 || ins.c != kUnassigned);
    }
    // Release registers whose owning value was last read here; the freed
    // register may immediately become this instruction's dst (the batch
    // kernels read each lane before writing it, so dst==src is safe).
    for (auto it = frees.find(i); it != frees.end() && it->first == i;) {
      free_regs.push_back(it->second);
      it = frees.erase(it);
    }
    const std::uint32_t dst = alloc_reg();
    ins.dst = dst;
    reg_of[v.id] = dst;
    frees.emplace(last_use[v.id], dst);
    out.instrs.push_back(ins);
  }
  out.register_count = next_reg;

  out.output_regs.reserve(roots.size());
  for (const NodeId r : roots) {
    assert(reg_of[r] != kUnassigned);
    out.output_regs.push_back(reg_of[r]);
  }
  return out;
}

}  // namespace

CompiledProgram::CompiledProgram(const ExprGraph& graph, std::span<const NodeId> roots) {
  input_count_ = graph.input_count();
  const std::size_t nnodes = graph.node_count();

  // Nodes are created bottom-up, so ascending NodeId is a topological
  // order.  Mark the reachable subgraph.
  std::vector<unsigned char> reachable(nnodes, 0);
  {
    std::vector<NodeId> stack(roots.begin(), roots.end());
    while (!stack.empty()) {
      const NodeId id = stack.back();
      stack.pop_back();
      if (reachable[id]) continue;
      reachable[id] = 1;
      const ExprNode& n = graph.node(id);
      switch (n.op) {
        case OpCode::kConst:
        case OpCode::kInput:
          break;
        case OpCode::kNeg:
          stack.push_back(n.a);
          break;
        default:
          stack.push_back(n.a);
          stack.push_back(n.b);
      }
    }
  }

  auto const_index = [&](double v) -> std::uint32_t {
    const auto it = std::find(own_constants_.begin(), own_constants_.end(), v);
    if (it != own_constants_.end())
      return static_cast<std::uint32_t>(it - own_constants_.begin());
    own_constants_.push_back(v);
    return static_cast<std::uint32_t>(own_constants_.size() - 1);
  };

  // ---- strict stream: one VInstr per reachable node, scalar op order ----
  std::vector<VInstr> strict_seq;
  strict_seq.reserve(nnodes);
  for (NodeId id = 0; id < nnodes; ++id) {
    if (!reachable[id]) continue;
    const ExprNode& n = graph.node(id);
    VInstr v;
    v.op = n.op;
    v.id = id;
    switch (n.op) {
      case OpCode::kConst:
        v.imm = const_index(n.value);
        break;
      case OpCode::kInput:
        v.imm = n.a;
        break;
      default:
        v.a = n.a;
        v.b = n.b;
    }
    strict_seq.push_back(v);
  }
  AllocResult strict = allocate_registers(strict_seq, roots, nnodes);
  own_instrs_ = std::move(strict.instrs);
  own_output_regs_ = std::move(strict.output_regs);

  // ---- peephole fusion for the fast stream ------------------------------
  // Operand-occurrence counts over the reachable subgraph (roots count as
  // uses): a value feeding exactly one consumer can be folded into it.
  std::vector<std::uint32_t> uses(nnodes, 0);
  for (NodeId id = 0; id < nnodes; ++id) {
    if (!reachable[id]) continue;
    const ExprNode& n = graph.node(id);
    const int nops = operand_count(n.op);
    if (nops >= 1) ++uses[n.a];
    if (nops >= 2) ++uses[n.b];
  }
  std::vector<unsigned char> is_root(nnodes, 0);
  for (const NodeId r : roots) {
    ++uses[r];
    is_root[r] = 1;
  }

  std::vector<unsigned char> fused_away(nnodes, 0);
  auto fusable = [&](NodeId x, OpCode want) {
    return !is_root[x] && uses[x] == 1 && !fused_away[x] && graph.node(x).op == want;
  };

  // Per-add/sub rewrite decisions.  Folding a single-use kNeg operand flips
  // add<->sub (bit-identical over IEEE doubles); a single-use kMul operand
  // of the (possibly flipped) add/sub then contracts to kFma / kFms.
  struct Rewrite {
    OpCode op{};
    NodeId a = 0, b = 0, c = 0;
  };
  std::vector<Rewrite> rewrite(nnodes);
  std::vector<unsigned char> has_rewrite(nnodes, 0);
  for (NodeId id = 0; id < nnodes; ++id) {
    if (!reachable[id]) continue;
    const ExprNode& n = graph.node(id);
    if (n.op != OpCode::kAdd && n.op != OpCode::kSub) continue;
    OpCode op = n.op;
    NodeId a = n.a, b = n.b;
    for (;;) {  // neg folding can cascade at most twice (both operands)
      if (op == OpCode::kAdd && fusable(b, OpCode::kNeg)) {
        op = OpCode::kSub;
        fused_away[b] = 1;
        b = graph.node(b).a;
      } else if (op == OpCode::kAdd && fusable(a, OpCode::kNeg)) {
        op = OpCode::kSub;
        fused_away[a] = 1;
        const NodeId na = graph.node(a).a;
        a = b;
        b = na;
      } else if (op == OpCode::kSub && fusable(b, OpCode::kNeg)) {
        op = OpCode::kAdd;
        fused_away[b] = 1;
        b = graph.node(b).a;
      } else {
        break;
      }
    }
    Rewrite rw;
    if (op == OpCode::kAdd && fusable(a, OpCode::kMul)) {
      fused_away[a] = 1;
      rw = {OpCode::kFma, graph.node(a).a, graph.node(a).b, b};
    } else if (op == OpCode::kAdd && fusable(b, OpCode::kMul)) {
      fused_away[b] = 1;
      rw = {OpCode::kFma, graph.node(b).a, graph.node(b).b, a};
    } else if (op == OpCode::kSub && fusable(a, OpCode::kMul)) {
      fused_away[a] = 1;
      rw = {OpCode::kFms, graph.node(a).a, graph.node(a).b, b};
    } else if (op != n.op || a != n.a || b != n.b) {
      rw = {op, a, b, 0};
    } else {
      continue;
    }
    rewrite[id] = rw;
    has_rewrite[id] = 1;
  }

  std::vector<VInstr> fused_seq;
  fused_seq.reserve(strict_seq.size());
  for (NodeId id = 0; id < nnodes; ++id) {
    if (!reachable[id] || fused_away[id]) continue;
    const ExprNode& n = graph.node(id);
    VInstr v;
    v.id = id;
    if (has_rewrite[id]) {
      const Rewrite& rw = rewrite[id];
      v.op = rw.op;
      v.a = rw.a;
      v.b = rw.b;
      v.c = rw.c;
    } else {
      v.op = n.op;
      switch (n.op) {
        case OpCode::kConst:
          v.imm = const_index(n.value);
          break;
        case OpCode::kInput:
          v.imm = n.a;
          break;
        default:
          v.a = n.a;
          v.b = n.b;
      }
    }
    fused_seq.push_back(v);
  }
  AllocResult fused = allocate_registers(fused_seq, roots, nnodes);
  own_fused_instrs_ = std::move(fused.instrs);
  own_fused_output_regs_ = std::move(fused.output_regs);

  // One scratch allocation serves either stream.
  register_count_ = std::max(strict.register_count, fused.register_count);
  rebind();
}

void CompiledProgram::rebind() {
  instrs_ = own_instrs_;
  fused_instrs_ = own_fused_instrs_;
  constants_ = own_constants_;
  output_regs_ = own_output_regs_;
  fused_output_regs_ = own_fused_output_regs_;
}

CompiledProgram::CompiledProgram(const CompiledProgram& other)
    : own_instrs_(other.own_instrs_),
      own_fused_instrs_(other.own_fused_instrs_),
      own_constants_(other.own_constants_),
      own_output_regs_(other.own_output_regs_),
      own_fused_output_regs_(other.own_fused_output_regs_),
      instrs_(other.instrs_),
      fused_instrs_(other.fused_instrs_),
      constants_(other.constants_),
      output_regs_(other.output_regs_),
      fused_output_regs_(other.fused_output_regs_),
      register_count_(other.register_count_),
      input_count_(other.input_count_),
      external_(other.external_) {
  if (!external_) rebind();
}

CompiledProgram::CompiledProgram(CompiledProgram&& other) noexcept
    : own_instrs_(std::move(other.own_instrs_)),
      own_fused_instrs_(std::move(other.own_fused_instrs_)),
      own_constants_(std::move(other.own_constants_)),
      own_output_regs_(std::move(other.own_output_regs_)),
      own_fused_output_regs_(std::move(other.own_fused_output_regs_)),
      instrs_(other.instrs_),
      fused_instrs_(other.fused_instrs_),
      constants_(other.constants_),
      output_regs_(other.output_regs_),
      fused_output_regs_(other.fused_output_regs_),
      register_count_(other.register_count_),
      input_count_(other.input_count_),
      external_(other.external_) {
  // vector move transfers the heap buffer, so the copied spans still alias
  // valid storage; rebind anyway to keep the invariant trivially auditable.
  if (!external_) rebind();
}

CompiledProgram& CompiledProgram::operator=(const CompiledProgram& other) {
  if (this == &other) return *this;
  CompiledProgram tmp(other);
  *this = std::move(tmp);
  return *this;
}

CompiledProgram& CompiledProgram::operator=(CompiledProgram&& other) noexcept {
  if (this == &other) return *this;
  own_instrs_ = std::move(other.own_instrs_);
  own_fused_instrs_ = std::move(other.own_fused_instrs_);
  own_constants_ = std::move(other.own_constants_);
  own_output_regs_ = std::move(other.own_output_regs_);
  own_fused_output_regs_ = std::move(other.own_fused_output_regs_);
  instrs_ = other.instrs_;
  fused_instrs_ = other.fused_instrs_;
  constants_ = other.constants_;
  output_regs_ = other.output_regs_;
  fused_output_regs_ = other.fused_output_regs_;
  register_count_ = other.register_count_;
  input_count_ = other.input_count_;
  external_ = other.external_;
  if (!external_) rebind();
  return *this;
}

CompiledProgram CompiledProgram::from_code(const ProgramCode& code) {
  CompiledProgram p;
  p.instrs_ = code.strict;
  p.fused_instrs_ = code.fused;
  p.constants_ = code.constants;
  p.output_regs_ = code.outputs;
  p.fused_output_regs_ = code.fused_outputs;
  p.input_count_ = code.input_count;
  p.register_count_ = code.register_count;
  p.external_ = true;
  p.validate();
  return p;
}

void CompiledProgram::run(std::span<const double> inputs, std::span<double> outputs) const {
  std::vector<double> scratch(register_count_);
  run_with_scratch(inputs, outputs, scratch);
}

void CompiledProgram::run_with_scratch(std::span<const double> inputs,
                                       std::span<double> outputs,
                                       std::span<double> scratch) const {
  if (inputs.size() < input_count_)
    throw std::invalid_argument("CompiledProgram::run: too few inputs");
  if (outputs.size() != output_regs_.size())
    throw std::invalid_argument("CompiledProgram::run: output size mismatch");
  if (scratch.size() < register_count_)
    throw std::invalid_argument("CompiledProgram::run: scratch too small");

  double* const r = scratch.data();
  for (const Instr& ins : instrs_) {
    switch (ins.op) {
      case OpCode::kConst:
        r[ins.dst] = constants_[ins.a];
        break;
      case OpCode::kInput:
        r[ins.dst] = inputs[ins.a];
        break;
      case OpCode::kAdd:
        r[ins.dst] = r[ins.a] + r[ins.b];
        break;
      case OpCode::kSub:
        r[ins.dst] = r[ins.a] - r[ins.b];
        break;
      case OpCode::kMul:
        r[ins.dst] = r[ins.a] * r[ins.b];
        break;
      case OpCode::kDiv:
        r[ins.dst] = r[ins.a] / r[ins.b];
        break;
      case OpCode::kNeg:
        r[ins.dst] = -r[ins.a];
        break;
      case OpCode::kFma:  // never emitted into the strict stream
        r[ins.dst] = std::fma(r[ins.a], r[ins.b], r[ins.c]);
        break;
      case OpCode::kFms:
        r[ins.dst] = std::fma(r[ins.a], r[ins.b], -r[ins.c]);
        break;
    }
  }
  for (std::size_t k = 0; k < output_regs_.size(); ++k) outputs[k] = r[output_regs_[k]];
}

void CompiledProgram::run_batch(std::span<const double> inputs, std::span<double> outputs,
                                std::span<double> scratch, std::size_t count,
                                EvalMode mode) const {
  if (count == 0) return;
  if (inputs.size() < input_count_ * count)
    throw std::invalid_argument("CompiledProgram::run_batch: too few inputs");
  if (outputs.size() < output_regs_.size() * count)
    throw std::invalid_argument("CompiledProgram::run_batch: output size mismatch");
  if (scratch.size() < register_count_ * count)
    throw std::invalid_argument("CompiledProgram::run_batch: scratch too small");
  if (mode == EvalMode::kFast)
    run_batch_fast(inputs, outputs, scratch, count);
  else
    run_batch_strict(inputs, outputs, scratch, count);
}

void CompiledProgram::run_batch_strict(std::span<const double> inputs,
                                       std::span<double> outputs, std::span<double> scratch,
                                       std::size_t count) const {
  double* const r = scratch.data();
  const double* const in = inputs.data();
  const std::size_t w = count;
  for (const Instr& ins : instrs_) {
    double* const d = r + ins.dst * w;
    switch (ins.op) {
      case OpCode::kConst: {
        const double c = constants_[ins.a];
        for (std::size_t l = 0; l < w; ++l) d[l] = c;
        break;
      }
      case OpCode::kInput: {
        const double* const s = in + ins.a * w;
        for (std::size_t l = 0; l < w; ++l) d[l] = s[l];
        break;
      }
      case OpCode::kAdd: {
        const double* const a = r + ins.a * w;
        const double* const b = r + ins.b * w;
        for (std::size_t l = 0; l < w; ++l) d[l] = a[l] + b[l];
        break;
      }
      case OpCode::kSub: {
        const double* const a = r + ins.a * w;
        const double* const b = r + ins.b * w;
        for (std::size_t l = 0; l < w; ++l) d[l] = a[l] - b[l];
        break;
      }
      case OpCode::kMul: {
        const double* const a = r + ins.a * w;
        const double* const b = r + ins.b * w;
        for (std::size_t l = 0; l < w; ++l) d[l] = a[l] * b[l];
        break;
      }
      case OpCode::kDiv: {
        const double* const a = r + ins.a * w;
        const double* const b = r + ins.b * w;
        for (std::size_t l = 0; l < w; ++l) d[l] = a[l] / b[l];
        break;
      }
      case OpCode::kNeg: {
        const double* const a = r + ins.a * w;
        for (std::size_t l = 0; l < w; ++l) d[l] = -a[l];
        break;
      }
      case OpCode::kFma: {  // never emitted into the strict stream
        const double* const a = r + ins.a * w;
        const double* const b = r + ins.b * w;
        const double* const c = r + ins.c * w;
        for (std::size_t l = 0; l < w; ++l) d[l] = std::fma(a[l], b[l], c[l]);
        break;
      }
      case OpCode::kFms: {
        const double* const a = r + ins.a * w;
        const double* const b = r + ins.b * w;
        const double* const c = r + ins.c * w;
        for (std::size_t l = 0; l < w; ++l) d[l] = std::fma(a[l], b[l], -c[l]);
        break;
      }
    }
  }
  for (std::size_t k = 0; k < output_regs_.size(); ++k) {
    const double* const s = r + output_regs_[k] * w;
    double* const d = outputs.data() + k * w;
    for (std::size_t l = 0; l < w; ++l) d[l] = s[l];
  }
}

// Width-8 manually unrolled lane kernels for the fused stream.  The
// fixed-trip inner loops vectorize cleanly without intrinsics; AWE_SIMD
// adds an `omp simd` hint where -fopenmp-simd (or OpenMP proper) is on.
// FMA expressions are written as a*b + c so the compiler may contract them
// to hardware FMA under its fp-contract rules — that contraction is exactly
// the rounding freedom EvalMode::kFast grants.
#if defined(_OPENMP) || defined(AWE_HAVE_OPENMP_SIMD)
#define AWE_SIMD _Pragma("omp simd")
#else
#define AWE_SIMD
#endif

namespace {

constexpr std::size_t kUnroll = 8;

#define AWE_LANE_KERNEL(expr)                                              \
  do {                                                                     \
    std::size_t l = 0;                                                     \
    for (; l + kUnroll <= w; l += kUnroll) {                               \
      AWE_SIMD                                                             \
      for (std::size_t u = 0; u < kUnroll; ++u) {                          \
        const std::size_t j = l + u;                                       \
        d[j] = (expr);                                                     \
      }                                                                    \
    }                                                                      \
    for (; l < w; ++l) {                                                   \
      const std::size_t j = l;                                             \
      d[j] = (expr);                                                       \
    }                                                                      \
  } while (0)

}  // namespace

void CompiledProgram::run_batch_fast(std::span<const double> inputs,
                                     std::span<double> outputs, std::span<double> scratch,
                                     std::size_t count) const {
  double* const r = scratch.data();
  const double* const in = inputs.data();
  const std::size_t w = count;
  for (const Instr& ins : fused_instrs_) {
    double* const d = r + ins.dst * w;
    switch (ins.op) {
      case OpCode::kConst: {
        const double cv = constants_[ins.a];
        AWE_LANE_KERNEL(cv);
        break;
      }
      case OpCode::kInput: {
        const double* const a = in + ins.a * w;
        AWE_LANE_KERNEL(a[j]);
        break;
      }
      case OpCode::kAdd: {
        const double* const a = r + ins.a * w;
        const double* const b = r + ins.b * w;
        AWE_LANE_KERNEL(a[j] + b[j]);
        break;
      }
      case OpCode::kSub: {
        const double* const a = r + ins.a * w;
        const double* const b = r + ins.b * w;
        AWE_LANE_KERNEL(a[j] - b[j]);
        break;
      }
      case OpCode::kMul: {
        const double* const a = r + ins.a * w;
        const double* const b = r + ins.b * w;
        AWE_LANE_KERNEL(a[j] * b[j]);
        break;
      }
      case OpCode::kDiv: {
        const double* const a = r + ins.a * w;
        const double* const b = r + ins.b * w;
        AWE_LANE_KERNEL(a[j] / b[j]);
        break;
      }
      case OpCode::kNeg: {
        const double* const a = r + ins.a * w;
        AWE_LANE_KERNEL(-a[j]);
        break;
      }
      case OpCode::kFma: {
        const double* const a = r + ins.a * w;
        const double* const b = r + ins.b * w;
        const double* const c = r + ins.c * w;
        AWE_LANE_KERNEL(a[j] * b[j] + c[j]);
        break;
      }
      case OpCode::kFms: {
        const double* const a = r + ins.a * w;
        const double* const b = r + ins.b * w;
        const double* const c = r + ins.c * w;
        AWE_LANE_KERNEL(a[j] * b[j] - c[j]);
        break;
      }
    }
  }
  for (std::size_t k = 0; k < fused_output_regs_.size(); ++k) {
    const double* const s = r + fused_output_regs_[k] * w;
    double* const d = outputs.data() + k * w;
    for (std::size_t l = 0; l < w; ++l) d[l] = s[l];
  }
}

#undef AWE_LANE_KERNEL
#undef AWE_SIMD

namespace {

/// Format a double as a self-contained C expression.  %.17g round-trips
/// every finite value; infinities and NaN have no portable C literal, so
/// they are emitted as IEEE division expressions (no <math.h> required).
std::string c_literal(double v) {
  if (std::isnan(v)) return "(0.0 / 0.0)";
  if (std::isinf(v)) return v > 0.0 ? "(1.0 / 0.0)" : "(-1.0 / 0.0)";
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return std::string(buf);
}

}  // namespace

std::string CompiledProgram::to_c_source(std::string_view function_name,
                                         EvalMode mode) const {
  const std::span<const Instr> stream =
      mode == EvalMode::kFast ? fused_instrs_ : instrs_;
  const std::span<const std::uint32_t> out_regs =
      mode == EvalMode::kFast ? fused_output_regs_ : output_regs_;

  std::string src;
  if (mode == EvalMode::kFast)
    src += "/* fused stream: requires <math.h> for fma() */\n";
  src += "void " + std::string(function_name) + "(const double* in, double* out) {\n";
  if (input_count_ == 0) src += "  (void)in;\n";  // a constant program reads no inputs
  src += "  double r[" + std::to_string(register_count_ == 0 ? 1 : register_count_) +
         "];\n";
  auto num = [](double v) { return c_literal(v); };
  for (const Instr& ins : stream) {
    const std::string d = "  r[" + std::to_string(ins.dst) + "] = ";
    const std::string a = "r[" + std::to_string(ins.a) + "]";
    const std::string b = "r[" + std::to_string(ins.b) + "]";
    const std::string c = "r[" + std::to_string(ins.c) + "]";
    switch (ins.op) {
      case OpCode::kConst:
        src += d + num(constants_[ins.a]) + ";\n";
        break;
      case OpCode::kInput:
        src += d + "in[" + std::to_string(ins.a) + "];\n";
        break;
      case OpCode::kAdd:
        src += d + a + " + " + b + ";\n";
        break;
      case OpCode::kSub:
        src += d + a + " - " + b + ";\n";
        break;
      case OpCode::kMul:
        src += d + a + " * " + b + ";\n";
        break;
      case OpCode::kDiv:
        src += d + a + " / " + b + ";\n";
        break;
      case OpCode::kNeg:
        src += d + "-" + a + ";\n";
        break;
      case OpCode::kFma:
        src += d + "fma(" + a + ", " + b + ", " + c + ");\n";
        break;
      case OpCode::kFms:
        src += d + "fma(" + a + ", " + b + ", -" + c + ");\n";
        break;
    }
  }
  for (std::size_t k = 0; k < out_regs.size(); ++k)
    src += "  out[" + std::to_string(k) + "] = r[" + std::to_string(out_regs[k]) +
           "];\n";
  src += "}\n";
  return src;
}

std::string CompiledProgram::to_c_source_batch(std::string_view function_name,
                                               EvalMode mode) const {
  const std::span<const Instr> stream =
      mode == EvalMode::kFast ? fused_instrs_ : instrs_;
  const std::span<const std::uint32_t> out_regs =
      mode == EvalMode::kFast ? fused_output_regs_ : output_regs_;

  // Per-point loop with a per-iteration register file: the registers are
  // scalarized into machine registers by any optimizing C compiler, so the
  // generated kernel carries zero dispatch and zero lane-array traffic.
  // Fused ops are emitted as a*b + c so FP-contract rules (not an explicit
  // libm fma() call) decide contraction per target.
  std::string src;
  src += "void " + std::string(function_name) +
         "(const double* in, double* out, unsigned long n) {\n";
  if (input_count_ == 0) src += "  (void)in;\n";  // a constant program reads no inputs
  src += "  unsigned long p;\n";
  src += "  for (p = 0; p < n; ++p) {\n";
  src += "    double r[" + std::to_string(register_count_ == 0 ? 1 : register_count_) +
         "];\n";
  for (const Instr& ins : stream) {
    const std::string d = "    r[" + std::to_string(ins.dst) + "] = ";
    const std::string a = "r[" + std::to_string(ins.a) + "]";
    const std::string b = "r[" + std::to_string(ins.b) + "]";
    const std::string c = "r[" + std::to_string(ins.c) + "]";
    switch (ins.op) {
      case OpCode::kConst:
        src += d + c_literal(constants_[ins.a]) + ";\n";
        break;
      case OpCode::kInput:
        src += d + "in[" + std::to_string(ins.a) + " * n + p];\n";
        break;
      case OpCode::kAdd:
        src += d + a + " + " + b + ";\n";
        break;
      case OpCode::kSub:
        src += d + a + " - " + b + ";\n";
        break;
      case OpCode::kMul:
        src += d + a + " * " + b + ";\n";
        break;
      case OpCode::kDiv:
        src += d + a + " / " + b + ";\n";
        break;
      case OpCode::kNeg:
        src += d + "-" + a + ";\n";
        break;
      case OpCode::kFma:
        src += d + a + " * " + b + " + " + c + ";\n";
        break;
      case OpCode::kFms:
        src += d + a + " * " + b + " - " + c + ";\n";
        break;
    }
  }
  for (std::size_t k = 0; k < out_regs.size(); ++k)
    src += "    out[" + std::to_string(k) + " * n + p] = r[" +
           std::to_string(out_regs[k]) + "];\n";
  src += "  }\n";
  src += "}\n";
  return src;
}

std::vector<NodeId> reverse_gradients(ExprGraph& graph, std::span<const NodeId> roots) {
  constexpr NodeId kNone = 0xffffffffu;
  const std::uint32_t ninputs = graph.input_count();

  // Map input index -> defining node.  Scanned once up front: the adjoint
  // nodes appended below never introduce new inputs.
  const std::size_t primal_nodes = graph.node_count();
  std::vector<NodeId> input_node(ninputs, kNone);
  for (NodeId id = 0; id < primal_nodes; ++id) {
    const ExprNode& n = graph.node(id);
    if (n.op == OpCode::kInput) input_node[n.a] = id;
  }
  const NodeId zero = graph.constant(0.0);
  const NodeId one = graph.constant(1.0);

  std::vector<NodeId> jac(roots.size() * ninputs, zero);
  std::vector<NodeId> adj(primal_nodes, kNone);
  std::vector<NodeId> touched;  // adjoint slots to reset between roots
  for (std::size_t r = 0; r < roots.size(); ++r) {
    const NodeId root = roots[r];
    if (root >= primal_nodes)
      throw std::invalid_argument("reverse_gradients: root is not a primal node");
    for (const NodeId id : touched) adj[id] = kNone;
    touched.clear();
    adj[root] = one;
    touched.push_back(root);

    auto accumulate = [&](NodeId x, NodeId g) {
      if (adj[x] == kNone) {
        adj[x] = g;
        touched.push_back(x);
      } else {
        adj[x] = graph.add(adj[x], g);
      }
    };

    // Operand ids are strictly smaller than their consumer's id, so one
    // descending sweep from the root reaches every node only after all of
    // its consumers: each adjoint is final at the moment it is propagated.
    for (NodeId id = root + 1; id-- > 0;) {
      if (adj[id] == kNone) continue;
      const NodeId g = adj[id];
      // Copied BY VALUE: the graph.add/mul/div/neg calls below append nodes
      // and may reallocate the node store, which would leave a reference
      // dangling mid-case and propagate garbage operand ids.
      const ExprNode n = graph.node(id);
      switch (n.op) {
        case OpCode::kConst:
        case OpCode::kInput:
          break;
        case OpCode::kAdd:
          accumulate(n.a, g);
          accumulate(n.b, g);
          break;
        case OpCode::kSub:
          accumulate(n.a, g);
          accumulate(n.b, graph.neg(g));
          break;
        case OpCode::kMul:
          accumulate(n.a, graph.mul(g, n.b));
          accumulate(n.b, graph.mul(g, n.a));
          break;
        case OpCode::kDiv:
          // q = a/b: dq/da = 1/b, dq/db = -q/b.  Expressing db's term
          // through the primal quotient node `id` (instead of a/b^2) lets
          // hash-consing share it with the forward value.
          accumulate(n.a, graph.div(g, n.b));
          accumulate(n.b, graph.neg(graph.div(graph.mul(g, id), n.b)));
          break;
        case OpCode::kNeg:
          accumulate(n.a, graph.neg(g));
          break;
        case OpCode::kFma:
        case OpCode::kFms:
          throw std::invalid_argument("reverse_gradients: fused node in graph");
      }
    }

    for (std::uint32_t i = 0; i < ninputs; ++i) {
      const NodeId in = input_node[i];
      if (in != kNone && adj[in] != kNone) jac[r * ninputs + i] = adj[in];
    }
  }
  return jac;
}

namespace {

/// Recursive Horner lowering. `terms` all share the ambient nvars.
NodeId lower_terms(ExprGraph& graph, std::span<const Term> terms, std::size_t nvars,
                   std::span<const NodeId> var_nodes) {
  if (terms.empty()) return graph.constant(0.0);

  // Content factoring: pull out the largest monomial dividing every term
  // (common in moment numerators, where whole symbol products factor out);
  // the remainder then Horner-factors with smaller exponents.
  if (terms.size() > 1) {
    Monomial common(nvars, 0);
    bool any = false;
    for (std::size_t v = 0; v < nvars; ++v) {
      std::uint16_t mn = terms[0].exponents[v];
      for (const Term& t : terms) mn = std::min(mn, t.exponents[v]);
      common[v] = mn;
      any = any || mn > 0;
    }
    if (any) {
      std::vector<Term> reduced(terms.begin(), terms.end());
      for (Term& t : reduced)
        for (std::size_t v = 0; v < nvars; ++v)
          t.exponents[v] = static_cast<std::uint16_t>(t.exponents[v] - common[v]);
      NodeId factor = graph.constant(1.0);
      for (std::size_t v = 0; v < nvars; ++v)
        if (common[v] > 0) factor = graph.mul(factor, graph.pow(var_nodes[v], common[v]));
      return graph.mul(factor, lower_terms(graph, reduced, nvars, var_nodes));
    }
  }

  // Constant polynomial?
  if (terms.size() == 1) {
    const Term& t = terms[0];
    NodeId node = graph.constant(t.coeff);
    for (std::size_t v = 0; v < nvars; ++v)
      if (t.exponents[v] > 0) node = graph.mul(node, graph.pow(var_nodes[v], t.exponents[v]));
    return node;
  }

  // Pick the variable with the highest degree across these terms; ties go
  // to the variable appearing in the most terms (maximizes sharing).
  std::size_t best_var = nvars;
  std::size_t best_deg = 0, best_count = 0;
  for (std::size_t v = 0; v < nvars; ++v) {
    std::size_t deg = 0, count = 0;
    for (const Term& t : terms) {
      deg = std::max<std::size_t>(deg, t.exponents[v]);
      if (t.exponents[v] > 0) ++count;
    }
    if (deg == 0) continue;
    if (deg > best_deg || (deg == best_deg && count > best_count)) {
      best_deg = deg;
      best_count = count;
      best_var = v;
    }
  }
  if (best_var == nvars) {
    // All terms are constants (can only be one after normalization).
    double sum = 0.0;
    for (const Term& t : terms) sum += t.coeff;
    return graph.constant(sum);
  }

  // Bucket terms by exponent of best_var (exponent cleared in the bucket).
  std::vector<std::vector<Term>> buckets(best_deg + 1);
  for (const Term& t : terms) {
    Term reduced = t;
    const std::size_t e = t.exponents[best_var];
    reduced.exponents[best_var] = 0;
    buckets[e].push_back(std::move(reduced));
  }

  // Horner: result = (((c_d x + c_{d-1}) x + c_{d-2}) x + ...) with gaps
  // handled by repeated multiplication.
  const NodeId x = var_nodes[best_var];
  NodeId acc = lower_terms(graph, buckets[best_deg], nvars, var_nodes);
  for (std::size_t e = best_deg; e-- > 0;) {
    acc = graph.mul(acc, x);
    if (!buckets[e].empty())
      acc = graph.add(acc, lower_terms(graph, buckets[e], nvars, var_nodes));
  }
  return acc;
}

}  // namespace

NodeId lower_polynomial(ExprGraph& graph, const Polynomial& poly,
                        std::span<const NodeId> var_nodes) {
  if (var_nodes.size() != poly.nvars())
    throw std::invalid_argument("lower_polynomial: var_nodes size mismatch");
  return lower_terms(graph, poly.terms(), poly.nvars(), var_nodes);
}

NodeId lower_rational(ExprGraph& graph, const RationalFunction& rf,
                      std::span<const NodeId> var_nodes) {
  const NodeId num = lower_polynomial(graph, rf.num(), var_nodes);
  if (rf.den().is_constant() && rf.den().constant_value() == 1.0) return num;
  return graph.div(num, lower_polynomial(graph, rf.den(), var_nodes));
}

}  // namespace awe::symbolic
