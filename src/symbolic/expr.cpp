#include "symbolic/expr.hpp"

#include <bit>
#include <cstring>
#include <functional>
#include <stdexcept>

namespace awe::symbolic {

std::size_t ExprGraph::KeyHash::operator()(const Key& k) const {
  std::uint64_t bits;
  static_assert(sizeof(bits) == sizeof(k.value));
  std::memcpy(&bits, &k.value, sizeof(bits));
  std::size_t h = std::hash<std::uint64_t>{}(bits);
  h ^= std::hash<std::uint32_t>{}((static_cast<std::uint32_t>(k.op) << 24) ^ k.a) +
       0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  h ^= std::hash<std::uint32_t>{}(k.b) + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  return h;
}

NodeId ExprGraph::intern(Key k) {
  const auto it = interned_.find(k);
  if (it != interned_.end()) return it->second;
  const NodeId id = static_cast<NodeId>(nodes_.size());
  nodes_.push_back({k.op, k.value, k.a, k.b});
  interned_.emplace(k, id);
  return id;
}

NodeId ExprGraph::constant(double v) { return intern({OpCode::kConst, v, 0, 0}); }

NodeId ExprGraph::input(std::uint32_t index) {
  if (index >= input_count_) input_count_ = index + 1;
  return intern({OpCode::kInput, 0.0, index, 0});
}

NodeId ExprGraph::add(NodeId a, NodeId b) {
  const auto& na = nodes_[a];
  const auto& nb = nodes_[b];
  if (na.op == OpCode::kConst && nb.op == OpCode::kConst)
    return constant(na.value + nb.value);
  if (is_const(a, 0.0)) return b;
  if (is_const(b, 0.0)) return a;
  if (a > b) std::swap(a, b);  // canonical order for commutative op
  return intern({OpCode::kAdd, 0.0, a, b});
}

NodeId ExprGraph::sub(NodeId a, NodeId b) {
  const auto& na = nodes_[a];
  const auto& nb = nodes_[b];
  if (na.op == OpCode::kConst && nb.op == OpCode::kConst)
    return constant(na.value - nb.value);
  if (is_const(b, 0.0)) return a;
  if (is_const(a, 0.0)) return neg(b);
  if (a == b) return constant(0.0);
  return intern({OpCode::kSub, 0.0, a, b});
}

NodeId ExprGraph::mul(NodeId a, NodeId b) {
  const auto& na = nodes_[a];
  const auto& nb = nodes_[b];
  if (na.op == OpCode::kConst && nb.op == OpCode::kConst)
    return constant(na.value * nb.value);
  if (is_const(a, 1.0)) return b;
  if (is_const(b, 1.0)) return a;
  if (is_const(a, 0.0) || is_const(b, 0.0)) return constant(0.0);
  if (a > b) std::swap(a, b);
  return intern({OpCode::kMul, 0.0, a, b});
}

NodeId ExprGraph::div(NodeId a, NodeId b) {
  const auto& na = nodes_[a];
  const auto& nb = nodes_[b];
  if (nb.op == OpCode::kConst && nb.value == 0.0)
    throw std::domain_error("ExprGraph::div by constant zero");
  if (na.op == OpCode::kConst && nb.op == OpCode::kConst)
    return constant(na.value / nb.value);
  if (is_const(b, 1.0)) return a;
  if (a == b) return constant(1.0);
  return intern({OpCode::kDiv, 0.0, a, b});
}

NodeId ExprGraph::neg(NodeId a) {
  const auto& na = nodes_[a];
  if (na.op == OpCode::kConst) return constant(-na.value);
  if (na.op == OpCode::kNeg) return na.a;  // --x = x
  return intern({OpCode::kNeg, 0.0, a, 0});
}

NodeId ExprGraph::pow(NodeId a, std::uint32_t e) {
  if (e == 0) return constant(1.0);
  NodeId result = 0;
  bool have = false;
  NodeId base = a;
  while (e > 0) {
    if (e & 1u) {
      result = have ? mul(result, base) : base;
      have = true;
    }
    e >>= 1;
    if (e > 0) base = mul(base, base);
  }
  return result;
}

double ExprGraph::evaluate_node(NodeId id, std::span<const double> inputs) const {
  const ExprNode& n = nodes_[id];
  switch (n.op) {
    case OpCode::kConst:
      return n.value;
    case OpCode::kInput:
      return inputs[n.a];
    case OpCode::kAdd:
      return evaluate_node(n.a, inputs) + evaluate_node(n.b, inputs);
    case OpCode::kSub:
      return evaluate_node(n.a, inputs) - evaluate_node(n.b, inputs);
    case OpCode::kMul:
      return evaluate_node(n.a, inputs) * evaluate_node(n.b, inputs);
    case OpCode::kDiv:
      return evaluate_node(n.a, inputs) / evaluate_node(n.b, inputs);
    case OpCode::kNeg:
      return -evaluate_node(n.a, inputs);
    case OpCode::kFma:
    case OpCode::kFms:
      break;  // instruction-level only; never valid as a graph node
  }
  throw std::logic_error("ExprGraph::evaluate_node: bad opcode");
}

}  // namespace awe::symbolic
