#include "health/report.hpp"

#include <sstream>

namespace awe::health {

void HealthReport::merge(const HealthReport& other) {
  for (std::size_t i = 0; i < kFailClassCount; ++i)
    fail_counts[i] += other.fail_counts[i];
  points_total += other.points_total;
  points_ok += other.points_ok;
  points_degraded += other.points_degraded;
  points_quarantined += other.points_quarantined;
  strict_reevals += other.strict_reevals;
  order_fallbacks += other.order_fallbacks;
  shifted_refits += other.shifted_refits;
  cache_corrupt_quarantined += other.cache_corrupt_quarantined;
  cache_rebuilds += other.cache_rebuilds;
  native_compiled += other.native_compiled;
  native_fallbacks += other.native_fallbacks;
  partition_blocks_reused += other.partition_blocks_reused;
  partition_blocks_built += other.partition_blocks_built;
  partition_blocks_quarantined += other.partition_blocks_quarantined;
  serve_requests += other.serve_requests;
  serve_shed += other.serve_shed;
  serve_deadline_expired += other.serve_deadline_expired;
  serve_evicted += other.serve_evicted;
  serve_reload_failures += other.serve_reload_failures;
  failpoint_fires += other.failpoint_fires;
}

std::string HealthReport::to_json(int indent) const {
  const std::string pad(static_cast<std::size_t>(indent), ' ');
  const std::string in1 = pad + "  ";
  const std::string in2 = pad + "    ";
  std::ostringstream os;
  os << "{\n";
  os << in1 << "\"points\": {\"total\": " << points_total << ", \"ok\": " << points_ok
     << ", \"degraded\": " << points_degraded
     << ", \"quarantined\": " << points_quarantined << "},\n";
  os << in1 << "\"ladder\": {\"strict_reevals\": " << strict_reevals
     << ", \"order_fallbacks\": " << order_fallbacks
     << ", \"shifted_refits\": " << shifted_refits << "},\n";
  os << in1 << "\"cache\": {\"corrupt_quarantined\": " << cache_corrupt_quarantined
     << ", \"rebuilds\": " << cache_rebuilds << "},\n";
  os << in1 << "\"native\": {\"compiled\": " << native_compiled
     << ", \"fallbacks\": " << native_fallbacks << "},\n";
  os << in1 << "\"partition_blocks\": {\"reused\": " << partition_blocks_reused
     << ", \"built\": " << partition_blocks_built
     << ", \"quarantined\": " << partition_blocks_quarantined << "},\n";
  os << in1 << "\"serve\": {\"requests\": " << serve_requests
     << ", \"shed\": " << serve_shed
     << ", \"deadline_expired\": " << serve_deadline_expired
     << ", \"evicted\": " << serve_evicted
     << ", \"reload_failures\": " << serve_reload_failures << "},\n";
  os << in1 << "\"failpoint_fires\": " << failpoint_fires << ",\n";
  os << in1 << "\"fail_classes\": {\n";
  // kNone is a non-event; every real class appears, fired or not.
  for (std::size_t i = 1; i < kFailClassCount; ++i) {
    os << in2 << "\"" << code(static_cast<FailClass>(i)) << "\": " << fail_counts[i]
       << (i + 1 < kFailClassCount ? ",\n" : "\n");
  }
  os << in1 << "}\n";
  os << pad << "}";
  return os.str();
}

GlobalCounters& global_counters() {
  static GlobalCounters g;
  return g;
}

void absorb_global_counters(HealthReport& report) {
  const GlobalCounters& g = global_counters();
  report.cache_corrupt_quarantined =
      g.cache_corrupt_quarantined.load(std::memory_order_relaxed);
  report.cache_rebuilds = g.cache_rebuilds.load(std::memory_order_relaxed);
  report.failpoint_fires = g.failpoint_fires.load(std::memory_order_relaxed);
  report.native_compiled = g.native_compiled.load(std::memory_order_relaxed);
  report.native_fallbacks = g.native_fallbacks.load(std::memory_order_relaxed);
  report.partition_blocks_reused =
      g.partition_blocks_reused.load(std::memory_order_relaxed);
  report.partition_blocks_built =
      g.partition_blocks_built.load(std::memory_order_relaxed);
  report.partition_blocks_quarantined =
      g.partition_blocks_quarantined.load(std::memory_order_relaxed);
  for (std::size_t i = 0; i < kFailClassCount; ++i)
    report.fail_counts[i] += g.native_fail_counts[i].load(std::memory_order_relaxed);
}

}  // namespace awe::health
