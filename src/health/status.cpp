#include "health/status.hpp"

namespace awe::health {

const char* to_string(FailClass c) {
  switch (c) {
    case FailClass::kNone: return "no failure";
    case FailClass::kSingularY0: return "singular DC admittance matrix";
    case FailClass::kHankelIllConditioned: return "Hankel system ill-conditioned";
    case FailClass::kOrderCollapse: return "no feasible Pade order";
    case FailClass::kAllPolesUnstable: return "all Pade poles unstable";
    case FailClass::kNonFiniteEval: return "non-finite evaluation";
    case FailClass::kCacheCorrupt: return "cache entry corrupt";
    case FailClass::kInjectedFault: return "injected fault";
    case FailClass::kTaskException: return "task exception";
    case FailClass::kUnknown: return "unknown failure";
    case FailClass::kNativeBackend: return "native backend unavailable";
    case FailClass::kModelFormat: return "model format rejected";
    case FailClass::kDeadline: return "request deadline expired";
    case FailClass::kOverload: return "request shed under overload";
  }
  return "?";
}

const char* code(FailClass c) {
  switch (c) {
    case FailClass::kNone: return "none";
    case FailClass::kSingularY0: return "singular-y0";
    case FailClass::kHankelIllConditioned: return "hankel-ill-conditioned";
    case FailClass::kOrderCollapse: return "order-collapse";
    case FailClass::kAllPolesUnstable: return "all-poles-unstable";
    case FailClass::kNonFiniteEval: return "non-finite-eval";
    case FailClass::kCacheCorrupt: return "cache-corrupt";
    case FailClass::kInjectedFault: return "injected-fault";
    case FailClass::kTaskException: return "task-exception";
    case FailClass::kUnknown: return "unknown";
    case FailClass::kNativeBackend: return "native-backend";
    case FailClass::kModelFormat: return "model-format";
    case FailClass::kDeadline: return "deadline";
    case FailClass::kOverload: return "overloaded";
  }
  return "?";
}

FailClass fail_class_of(const std::exception& e) {
  if (const auto* fe = dynamic_cast<const FailError*>(&e)) return fe->fail_class();
  return FailClass::kUnknown;
}

}  // namespace awe::health
