// Deterministic fault injection (DESIGN.md §11).
//
// A failpoint is a named site in production code that, when armed, either
// reports "fire now" (data-corruption sites decide what the corruption
// looks like) or throws FailError(kInjectedFault).  Sites are armed by API
// or by the AWE_FAILPOINTS environment variable:
//
//   AWE_FAILPOINTS="model_cache.store_truncate=once,linalg.lu_singular=nth:3"
//
// Modes: "always", "once" (fire on the first check, then disarm),
// "nth:<k>" (fire on the k-th check of that site only, 1-based), "off".
// Firing is a pure function of the per-site check counter, so a given
// arming produces the same injection schedule run to run (modulo thread
// interleaving when several threads race on one site).
//
// Zero-cost when disabled: every check first reads one relaxed atomic that
// is false unless at least one site has ever been armed, so production hot
// paths pay a single predictable-branch load.
#pragma once

#include <atomic>
#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "health/status.hpp"

namespace awe::health::failpoints {

/// Registered site names.  New sites must be added here so tests and the
/// failpoint-matrix CI job can enumerate them.
namespace sites {
inline constexpr const char* kLuSingular = "linalg.lu_singular";
inline constexpr const char* kSparseSingular = "linalg.sparse_singular";
inline constexpr const char* kPartitionMomentSolve = "partition.moment_solve";
inline constexpr const char* kCacheStoreTruncate = "model_cache.store_truncate";
inline constexpr const char* kCacheStoreBitflip = "model_cache.store_bitflip";
inline constexpr const char* kCacheStoreCrash = "model_cache.store_crash";
inline constexpr const char* kCacheLoadCorrupt = "model_cache.load_corrupt";
inline constexpr const char* kPartitionBlock = "cache.partition";
inline constexpr const char* kThreadPoolTask = "thread_pool.task";
inline constexpr const char* kNativeCompile = "native.compile";
inline constexpr const char* kNativeDlopen = "native.dlopen";
inline constexpr const char* kServeAccept = "serve.accept";
inline constexpr const char* kServeRead = "serve.read";
inline constexpr const char* kServeSwap = "serve.swap";
}  // namespace sites

/// All registered site names, in registry order.
std::vector<std::string> registered_sites();

namespace detail {
extern std::atomic<bool> g_enabled;
bool fires_slow(std::string_view site);
}  // namespace detail

/// True once any site has been armed this process (and not since reset).
inline bool enabled() {
  return detail::g_enabled.load(std::memory_order_relaxed);
}

/// Arm `site` with a mode string ("always" | "once" | "nth:<k>" | "off").
/// Throws std::invalid_argument for unknown sites or malformed modes.
void arm(const std::string& site, const std::string& mode);

/// Parse and apply a comma-separated "site=mode,..." spec (the
/// AWE_FAILPOINTS syntax).  Empty spec is a no-op.
void arm_from_spec(const std::string& spec);

/// Disarm every site and zero all hit counters.
void reset();

/// Check the site: returns true when an armed mode says to inject now.
/// Counts a check either way (see hits()).  The fast path is one relaxed
/// atomic load when nothing is armed.
inline bool fires(std::string_view site) {
  if (!enabled()) return false;
  return detail::fires_slow(site);
}

/// fires(), but throwing FailError(kInjectedFault) naming the site.
void maybe_fail(std::string_view site);

/// Number of times the site actually fired since the last reset().
std::size_t fire_count(std::string_view site);

}  // namespace awe::health::failpoints
