// Aggregated health counters (DESIGN.md §11).
//
// A HealthReport is the machine-readable answer to "how did that run
// degrade": per-FailClass failure counts, the point disposition of a sweep
// (fitted / degraded-with-stage / quarantined), ladder-stage counters, and
// cache quarantine activity.  SweepResult carries one; awesym_cli,
// awe_build and awe_fuzz emit it as JSON.  to_json is deterministic (fixed
// key order, no timestamps) so run-twice-diff CI jobs stay byte-stable.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <string>

#include "health/status.hpp"

namespace awe::health {

struct HealthReport {
  /// Failure events by class, indexed by FailClass.  A degraded point that
  /// recovered does NOT count here; only terminal failures do.
  std::array<std::uint64_t, kFailClassCount> fail_counts{};

  // Point disposition of a sweep: total == ok + degraded + quarantined.
  std::uint64_t points_total = 0;
  std::uint64_t points_ok = 0;           ///< fitted first try, no ladder
  std::uint64_t points_degraded = 0;     ///< recovered at a later stage
  std::uint64_t points_quarantined = 0;  ///< terminal failure, FailClass recorded

  // Degradation-ladder stage counters (attempts that RAN, recovered or not).
  std::uint64_t strict_reevals = 0;   ///< fast-mode point re-run in strict
  std::uint64_t order_fallbacks = 0;  ///< Padé order fallback attempted
  std::uint64_t shifted_refits = 0;   ///< shifted-moment refit attempted

  // Persistent-cache fault containment.
  std::uint64_t cache_corrupt_quarantined = 0;  ///< entries moved to .bad
  std::uint64_t cache_rebuilds = 0;             ///< rebuilds after quarantine

  // Native AOT backend (DESIGN.md §12).
  std::uint64_t native_compiled = 0;   ///< .so modules compiled or validated+loaded
  std::uint64_t native_fallbacks = 0;  ///< attach attempts that fell back to the interpreter

  // Incremental partition-level rebuild (DESIGN.md §13).
  std::uint64_t partition_blocks_reused = 0;       ///< cell blocks loaded from the store
  std::uint64_t partition_blocks_built = 0;        ///< cell blocks extracted fresh
  std::uint64_t partition_blocks_quarantined = 0;  ///< torn/corrupt blocks moved to .bad

  // Evaluation daemon (DESIGN.md §16).  Filled by awe_serve's ServeStats
  // snapshot; always present (zero) in reports from other tools so the
  // JSON shape stays fixed.
  std::uint64_t serve_requests = 0;        ///< eval requests admitted
  std::uint64_t serve_shed = 0;            ///< requests rejected by admission control
  std::uint64_t serve_deadline_expired = 0;///< requests that hit their deadline
  std::uint64_t serve_evicted = 0;         ///< slow/oversized clients disconnected
  std::uint64_t serve_reload_failures = 0; ///< model reload attempts that failed

  std::uint64_t failpoint_fires = 0;  ///< injected faults observed

  void record_failure(FailClass c) {
    ++fail_counts[static_cast<std::size_t>(c)];
  }
  std::uint64_t failures(FailClass c) const {
    return fail_counts[static_cast<std::size_t>(c)];
  }
  /// Element-wise sum of every counter.
  void merge(const HealthReport& other);

  /// Deterministic JSON: fixed key order, every FailClass key present
  /// (zero or not) under "fail_classes" so diffs never depend on which
  /// failures happened to occur.
  std::string to_json(int indent = 0) const;
};

/// Process-global counters for events raised on static paths (cache
/// quarantine, failpoint fires) that have no SweepResult to land in.
/// Tools snapshot() these into the HealthReport they emit.
struct GlobalCounters {
  std::atomic<std::uint64_t> cache_corrupt_quarantined{0};
  std::atomic<std::uint64_t> cache_rebuilds{0};
  std::atomic<std::uint64_t> failpoint_fires{0};
  std::atomic<std::uint64_t> native_compiled{0};
  std::atomic<std::uint64_t> native_fallbacks{0};
  std::atomic<std::uint64_t> partition_blocks_reused{0};
  std::atomic<std::uint64_t> partition_blocks_built{0};
  std::atomic<std::uint64_t> partition_blocks_quarantined{0};
  /// Terminal FailClass of each native fallback, indexed by FailClass
  /// (attach happens on static build paths with no HealthReport in scope).
  std::array<std::atomic<std::uint64_t>, kFailClassCount> native_fail_counts{};
};

GlobalCounters& global_counters();

/// Fold the process-global counters into `report` (overwrites the scalar
/// fields — they are process-scope, not additive per sweep — and ADDS the
/// native per-class failure counts into fail_counts; call once per report).
void absorb_global_counters(HealthReport& report);

}  // namespace awe::health
