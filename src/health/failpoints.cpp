#include "health/failpoints.hpp"

#include <cstdlib>
#include <mutex>
#include <stdexcept>
#include <unordered_map>

#include "health/report.hpp"

namespace awe::health::failpoints {

namespace {

constexpr const char* kAllSites[] = {
    sites::kLuSingular,         sites::kSparseSingular,
    sites::kPartitionMomentSolve, sites::kCacheStoreTruncate,
    sites::kCacheStoreBitflip,  sites::kCacheStoreCrash,
    sites::kCacheLoadCorrupt,   sites::kThreadPoolTask,
    sites::kNativeCompile,      sites::kNativeDlopen,
    sites::kPartitionBlock,     sites::kServeAccept,
    sites::kServeRead,          sites::kServeSwap,
};

enum class Mode : std::uint8_t { kOff, kAlways, kOnce, kNth };

struct SiteState {
  Mode mode = Mode::kOff;
  std::size_t nth = 0;     ///< 1-based check index to fire on (Mode::kNth)
  std::size_t checks = 0;  ///< fires()/maybe_fail() calls since reset
  std::size_t fired = 0;   ///< times the site actually injected
};

struct Registry {
  std::mutex mu;
  std::unordered_map<std::string, SiteState> sites;
  std::size_t armed = 0;  ///< sites with mode != kOff
};

Registry& registry() {
  static Registry r;
  return r;
}

bool known_site(std::string_view site) {
  for (const char* s : kAllSites)
    if (site == s) return true;
  return false;
}

/// One-time AWE_FAILPOINTS pickup.  Runs on the first check/arm, not at
/// static-init time, so arming order vs other globals never matters.
void ensure_env_loaded() {
  static const bool loaded = [] {
    if (const char* spec = std::getenv("AWE_FAILPOINTS")) arm_from_spec(spec);
    return true;
  }();
  (void)loaded;
}

}  // namespace

namespace detail {

std::atomic<bool> g_enabled{std::getenv("AWE_FAILPOINTS") != nullptr};

bool fires_slow(std::string_view site) {
  ensure_env_loaded();
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  auto it = r.sites.find(std::string(site));
  if (it == r.sites.end()) return false;
  SiteState& s = it->second;
  ++s.checks;
  bool fire = false;
  switch (s.mode) {
    case Mode::kOff: break;
    case Mode::kAlways: fire = true; break;
    case Mode::kOnce:
      fire = true;
      s.mode = Mode::kOff;
      --r.armed;
      break;
    case Mode::kNth:
      if (s.checks == s.nth) {
        fire = true;
        s.mode = Mode::kOff;
        --r.armed;
      }
      break;
  }
  if (fire) {
    ++s.fired;
    global_counters().failpoint_fires.fetch_add(1, std::memory_order_relaxed);
  }
  return fire;
}

}  // namespace detail

std::vector<std::string> registered_sites() {
  return {std::begin(kAllSites), std::end(kAllSites)};
}

void arm(const std::string& site, const std::string& mode) {
  if (!known_site(site))
    throw std::invalid_argument("failpoints: unknown site '" + site + "'");
  SiteState next;
  if (mode == "off") {
    next.mode = Mode::kOff;
  } else if (mode == "always") {
    next.mode = Mode::kAlways;
  } else if (mode == "once") {
    next.mode = Mode::kOnce;
  } else if (mode.rfind("nth:", 0) == 0) {
    next.mode = Mode::kNth;
    next.nth = std::strtoull(mode.c_str() + 4, nullptr, 10);
    if (next.nth == 0)
      throw std::invalid_argument("failpoints: nth:<k> needs k >= 1 in '" + mode + "'");
  } else {
    throw std::invalid_argument("failpoints: bad mode '" + mode +
                                "' (want off|always|once|nth:<k>)");
  }
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  SiteState& s = r.sites[site];
  const bool was_armed = s.mode != Mode::kOff;
  const bool now_armed = next.mode != Mode::kOff;
  s.mode = next.mode;
  s.nth = next.nth;
  s.checks = 0;
  if (!was_armed && now_armed) ++r.armed;
  if (was_armed && !now_armed) --r.armed;
  detail::g_enabled.store(r.armed > 0, std::memory_order_relaxed);
}

void arm_from_spec(const std::string& spec) {
  std::size_t start = 0;
  while (start < spec.size()) {
    std::size_t comma = spec.find(',', start);
    if (comma == std::string::npos) comma = spec.size();
    const std::string entry = spec.substr(start, comma - start);
    start = comma + 1;
    if (entry.empty()) continue;
    const std::size_t eq = entry.find('=');
    if (eq == std::string::npos)
      throw std::invalid_argument("failpoints: bad spec entry '" + entry +
                                  "' (want site=mode)");
    arm(entry.substr(0, eq), entry.substr(eq + 1));
  }
}

void reset() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  r.sites.clear();
  r.armed = 0;
  detail::g_enabled.store(false, std::memory_order_relaxed);
}

void maybe_fail(std::string_view site) {
  if (fires(site))
    throw FailError(FailClass::kInjectedFault,
                    "injected fault at failpoint '" + std::string(site) + "'");
}

std::size_t fire_count(std::string_view site) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  auto it = r.sites.find(std::string(site));
  return it == r.sites.end() ? 0 : it->second.fired;
}

}  // namespace awe::health::failpoints
