// Structured failure taxonomy for the evaluation pipeline (DESIGN.md §11).
//
// AWE's Padé-via-moments step is numerically fragile by construction: the
// Hankel moment systems go ill-conditioned and poles go unstable at the
// edges of exactly the parameter ranges a Monte-Carlo sweep explores.  A
// serving path must degrade per point, never abort per sweep — which
// requires every failure to carry a machine-readable class, not just a
// what() string.  FailError is the typed exception the numeric layers
// throw; it derives from std::runtime_error so call sites that predate the
// taxonomy keep working unchanged.
#pragma once

#include <cstddef>
#include <cstdint>
#include <exception>
#include <stdexcept>
#include <string>

namespace awe::health {

/// Why a point / build / cache probe failed.  Values are stable across
/// releases (they appear in JSON health reports and fuzz signatures);
/// append only.
enum class FailClass : std::uint8_t {
  kNone = 0,              ///< no failure
  kSingularY0 = 1,        ///< det(Y0) == 0 / zero reciprocal symbol / DC-singular MNA
  kHankelIllConditioned = 2,  ///< singular or degenerate Hankel moment system
  kOrderCollapse = 3,     ///< no feasible Padé order at all
  kAllPolesUnstable = 4,  ///< stability filter discarded every pole
  kNonFiniteEval = 5,     ///< evaluation produced NaN/Inf moments
  kCacheCorrupt = 6,      ///< persistent cache entry failed validation
  kInjectedFault = 7,     ///< a failpoint fired (testing only)
  kTaskException = 8,     ///< a thread-pool task died; point never processed
  kUnknown = 9,           ///< classified failure of unrecognized origin
  kNativeBackend = 10,    ///< native .so compile/load/validate failed; interpreter used
  kModelFormat = 11,      ///< model blob rejected: endianness/alignment/layout guard
  kDeadline = 12,         ///< request deadline expired; evaluation cancelled mid-sweep
  kOverload = 13,         ///< request shed by admission control (queue/byte limits)
};

inline constexpr std::size_t kFailClassCount = 14;

/// Long human-readable name ("Hankel system ill-conditioned").
const char* to_string(FailClass c);

/// Stable short code ("hankel-ill-conditioned") used in JSON reports and
/// fuzz mismatch signatures.
const char* code(FailClass c);

/// Coded outcome for APIs that report instead of throw.
struct Status {
  FailClass fail_class = FailClass::kNone;
  std::string message;
  bool ok() const { return fail_class == FailClass::kNone; }
  static Status success() { return {}; }
  static Status failure(FailClass c, std::string msg) {
    return {c, std::move(msg)};
  }
};

/// Typed failure thrown by the numeric layers (Padé fit, ROM stability
/// filter, partition moment solve, failpoints).  Derives std::runtime_error
/// so pre-taxonomy catch sites and EXPECT_THROW(..., std::runtime_error)
/// assertions keep holding.
class FailError : public std::runtime_error {
 public:
  FailError(FailClass c, const std::string& message)
      : std::runtime_error(message), class_(c) {}
  FailClass fail_class() const { return class_; }

 private:
  FailClass class_;
};

/// FailError -> its class; any other exception -> kUnknown.
FailClass fail_class_of(const std::exception& e);

}  // namespace awe::health

namespace awe {
using health::FailClass;
using health::Status;
}  // namespace awe
