#include "transim/transim.hpp"

#include <cmath>
#include <stdexcept>

namespace awe::transim {

Waveform dc(double value) {
  return [value](double) { return value; };
}

Waveform step(double level, double delay, double rise) {
  return [=](double t) {
    if (t <= delay) return 0.0;
    if (rise <= 0.0 || t >= delay + rise) return level;
    return level * (t - delay) / rise;
  };
}

Waveform sine(double amplitude, double freq_hz, double phase_rad) {
  return [=](double t) { return amplitude * std::sin(2.0 * M_PI * freq_hz * t + phase_rad); };
}

Waveform pwl(std::vector<std::pair<double, double>> points) {
  if (points.empty()) throw std::invalid_argument("pwl: need at least one point");
  return [pts = std::move(points)](double t) {
    if (t <= pts.front().first) return pts.front().second;
    for (std::size_t i = 1; i < pts.size(); ++i) {
      if (t <= pts[i].first) {
        const auto& [t0, v0] = pts[i - 1];
        const auto& [t1, v1] = pts[i];
        if (t1 == t0) return v1;
        return v0 + (v1 - v0) * (t - t0) / (t1 - t0);
      }
    }
    return pts.back().second;
  };
}

std::vector<double> TransientResult::node_voltage(const circuit::MnaLayout& layout,
                                                  circuit::NodeId node) const {
  std::vector<double> v;
  v.reserve(samples.size());
  const std::size_t idx = layout.node_unknown(node);
  for (const auto& x : samples) v.push_back(x[idx]);
  return v;
}

TransientSimulator::TransientSimulator(const circuit::Netlist& netlist)
    : netlist_(&netlist), assembler_(netlist) {}

void TransientSimulator::set_waveform(const std::string& source_name, Waveform w) {
  const auto idx = netlist_->find_element(source_name);
  if (!idx) throw std::invalid_argument("no such source: " + source_name);
  const auto kind = netlist_->elements()[*idx].kind;
  if (kind != circuit::ElementKind::kVoltageSource &&
      kind != circuit::ElementKind::kCurrentSource)
    throw std::invalid_argument("'" + source_name + "' is not an independent source");
  waveforms_[source_name] = std::move(w);
}

linalg::Vector TransientSimulator::source_vector(double t) const {
  linalg::Vector b(assembler_.layout().dim(), 0.0);
  const auto& elements = netlist_->elements();
  for (std::size_t i = 0; i < elements.size(); ++i) {
    const auto& e = elements[i];
    double amp;
    if (e.kind == circuit::ElementKind::kVoltageSource ||
        e.kind == circuit::ElementKind::kCurrentSource) {
      const auto it = waveforms_.find(e.name);
      amp = (it != waveforms_.end()) ? it->second(t) : e.value;
    } else {
      continue;
    }
    if (amp == 0.0) continue;
    const auto one = assembler_.rhs(e.name, amp);
    for (std::size_t k = 0; k < b.size(); ++k) b[k] += one[k];
  }
  return b;
}

TransientResult TransientSimulator::run(const TransientOptions& opts) const {
  if (opts.dt <= 0.0 || opts.t_stop <= 0.0)
    throw std::invalid_argument("transient: dt and t_stop must be positive");
  const std::size_t dim = assembler_.layout().dim();
  const auto g = assembler_.build_g();
  const auto c = assembler_.build_c();
  const double h = opts.dt;

  // Companion matrix M = G + a C with a = 1/h (BE) or 2/h (trapezoidal).
  const double a = (opts.integrator == Integrator::kBackwardEuler) ? 1.0 / h : 2.0 / h;
  linalg::TripletMatrix m_trip(dim, dim);
  for (std::size_t col = 0; col < dim; ++col) {
    for (std::size_t k = g.col_ptr()[col]; k < g.col_ptr()[col + 1]; ++k)
      m_trip.add(g.row_idx()[k], col, g.values()[k]);
    for (std::size_t k = c.col_ptr()[col]; k < c.col_ptr()[col + 1]; ++k)
      m_trip.add(c.row_idx()[k], col, a * c.values()[k]);
  }
  const auto m = m_trip.compress();
  const auto lu = linalg::SparseLu::factor(m);
  if (!lu) throw std::runtime_error("transient: companion matrix is singular");

  // Initial condition.
  linalg::Vector x(dim, 0.0);
  linalg::Vector b_prev = source_vector(0.0);
  if (opts.dc_initial_condition) {
    const auto glu = linalg::SparseLu::factor(g);
    if (!glu) throw std::runtime_error("transient: DC matrix is singular");
    x = glu->solve(b_prev);
  }

  TransientResult result;
  const std::size_t steps = static_cast<std::size_t>(std::ceil(opts.t_stop / h));
  result.time.reserve(steps + 1);
  result.samples.reserve(steps + 1);
  result.time.push_back(0.0);
  result.samples.push_back(x);

  for (std::size_t n = 1; n <= steps; ++n) {
    const double t = static_cast<double>(n) * h;
    linalg::Vector b = source_vector(t);
    linalg::Vector rhs(dim);
    if (opts.integrator == Integrator::kBackwardEuler) {
      // (G + C/h) x_{n+1} = b_{n+1} + (C/h) x_n
      const auto cx = c.multiply(x);
      for (std::size_t k = 0; k < dim; ++k) rhs[k] = b[k] + cx[k] / h;
    } else {
      // (G + 2C/h) x_{n+1} = b_{n+1} + b_n + (2C/h - G) x_n
      const auto cx = c.multiply(x);
      const auto gx = g.multiply(x);
      for (std::size_t k = 0; k < dim; ++k)
        rhs[k] = b[k] + b_prev[k] + 2.0 * cx[k] / h - gx[k];
    }
    lu->solve_in_place(rhs);
    x = std::move(rhs);
    b_prev = std::move(b);
    result.time.push_back(t);
    result.samples.push_back(x);
  }
  return result;
}

}  // namespace awe::transim
