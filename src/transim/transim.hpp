// Linear transient simulator — the "traditional circuit simulator"
// baseline (SPICE2-class integration on the MNA equations).
//
// Integrates  G x + C x' = b(t)  with backward Euler or the trapezoidal
// rule on a uniform step.  The companion-model matrix (G + a*C) is
// factored once and reused across all time points, which is the fair
// (fast) version of the baseline that AWE is benchmarked against.
#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "circuit/mna.hpp"
#include "linalg/sparse_lu.hpp"

namespace awe::transim {

enum class Integrator { kBackwardEuler, kTrapezoidal };

/// Time-dependent amplitude of an independent source.
using Waveform = std::function<double(double /*t*/)>;

/// Standard waveforms.
Waveform dc(double value);
/// 0 before `delay`, then linear rise over `rise` to `level`.
Waveform step(double level, double delay = 0.0, double rise = 0.0);
Waveform sine(double amplitude, double freq_hz, double phase_rad = 0.0);
/// Piecewise-linear through (t, v) points (flat extrapolation).
Waveform pwl(std::vector<std::pair<double, double>> points);

struct TransientOptions {
  double t_stop = 1e-6;
  double dt = 1e-9;
  Integrator integrator = Integrator::kTrapezoidal;
  /// Start from the DC solution of b(0) (otherwise zero state).
  bool dc_initial_condition = true;
};

struct TransientResult {
  std::vector<double> time;
  /// samples[k] is the full MNA solution at time[k].
  std::vector<linalg::Vector> samples;

  /// Voltage waveform of one node (by MNA layout).
  std::vector<double> node_voltage(const circuit::MnaLayout& layout,
                                   circuit::NodeId node) const;
};

class TransientSimulator {
 public:
  explicit TransientSimulator(const circuit::Netlist& netlist);

  /// Override the waveform of an independent source (default: DC at the
  /// netlist value).
  void set_waveform(const std::string& source_name, Waveform w);

  TransientResult run(const TransientOptions& opts) const;

  const circuit::MnaLayout& layout() const { return assembler_.layout(); }

 private:
  linalg::Vector source_vector(double t) const;

  const circuit::Netlist* netlist_;
  circuit::MnaAssembler assembler_;
  std::unordered_map<std::string, Waveform> waveforms_;
};

}  // namespace awe::transim
