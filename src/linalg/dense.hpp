// Dense real matrix / vector types used throughout AWEsymbolic.
//
// The matrices in this project are small (moment Hankel systems, companion
// matrices, port-level admittance blocks) so a straightforward row-major
// dense representation is the right tool.  Large circuit matrices use the
// sparse types in sparse.hpp.
#pragma once

#include <cassert>
#include <complex>
#include <cstddef>
#include <initializer_list>
#include <span>
#include <stdexcept>
#include <vector>

namespace awe::linalg {

using Vector = std::vector<double>;
using CVector = std::vector<std::complex<double>>;

/// Row-major dense real matrix.
class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  /// Build from nested initializer list: Matrix{{1,2},{3,4}}.
  Matrix(std::initializer_list<std::initializer_list<double>> init) {
    rows_ = init.size();
    cols_ = rows_ ? init.begin()->size() : 0;
    data_.reserve(rows_ * cols_);
    for (const auto& row : init) {
      if (row.size() != cols_) throw std::invalid_argument("ragged Matrix initializer");
      data_.insert(data_.end(), row.begin(), row.end());
    }
  }

  static Matrix identity(std::size_t n) {
    Matrix m(n, n);
    for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
    return m;
  }

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  bool empty() const { return data_.empty(); }

  double& operator()(std::size_t r, std::size_t c) {
    assert(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }
  double operator()(std::size_t r, std::size_t c) const {
    assert(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }

  std::span<double> row(std::size_t r) {
    assert(r < rows_);
    return {data_.data() + r * cols_, cols_};
  }
  std::span<const double> row(std::size_t r) const {
    assert(r < rows_);
    return {data_.data() + r * cols_, cols_};
  }

  std::vector<double>& data() { return data_; }
  const std::vector<double>& data() const { return data_; }

  Matrix transposed() const {
    Matrix t(cols_, rows_);
    for (std::size_t r = 0; r < rows_; ++r)
      for (std::size_t c = 0; c < cols_; ++c) t(c, r) = (*this)(r, c);
    return t;
  }

  Matrix& operator+=(const Matrix& o) {
    check_same_shape(o);
    for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += o.data_[i];
    return *this;
  }
  Matrix& operator-=(const Matrix& o) {
    check_same_shape(o);
    for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= o.data_[i];
    return *this;
  }
  Matrix& operator*=(double k) {
    for (double& v : data_) v *= k;
    return *this;
  }

  friend Matrix operator+(Matrix a, const Matrix& b) { return a += b; }
  friend Matrix operator-(Matrix a, const Matrix& b) { return a -= b; }
  friend Matrix operator*(Matrix a, double k) { return a *= k; }
  friend Matrix operator*(double k, Matrix a) { return a *= k; }

  friend Matrix operator*(const Matrix& a, const Matrix& b) {
    if (a.cols_ != b.rows_) throw std::invalid_argument("Matrix product shape mismatch");
    Matrix c(a.rows_, b.cols_);
    for (std::size_t i = 0; i < a.rows_; ++i)
      for (std::size_t k = 0; k < a.cols_; ++k) {
        const double aik = a(i, k);
        if (aik == 0.0) continue;
        for (std::size_t j = 0; j < b.cols_; ++j) c(i, j) += aik * b(k, j);
      }
    return c;
  }

  friend Vector operator*(const Matrix& a, const Vector& x) {
    if (a.cols_ != x.size()) throw std::invalid_argument("Matrix*Vector shape mismatch");
    Vector y(a.rows_, 0.0);
    for (std::size_t i = 0; i < a.rows_; ++i) {
      double s = 0.0;
      for (std::size_t j = 0; j < a.cols_; ++j) s += a(i, j) * x[j];
      y[i] = s;
    }
    return y;
  }

 private:
  void check_same_shape(const Matrix& o) const {
    if (rows_ != o.rows_ || cols_ != o.cols_)
      throw std::invalid_argument("Matrix shape mismatch");
  }

  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// Euclidean norm of a vector.
double norm2(std::span<const double> v);

/// Infinity norm of a vector.
double norm_inf(std::span<const double> v);

/// Dot product.
double dot(std::span<const double> a, std::span<const double> b);

/// y += k * x
void axpy(double k, std::span<const double> x, std::span<double> y);

}  // namespace awe::linalg
