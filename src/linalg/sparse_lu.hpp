// Sparse LU factorization for MNA matrices.
//
// Left-looking Gilbert–Peierls factorization with threshold partial
// pivoting, optionally preceded by a fill-reducing minimum-degree column
// ordering on the pattern of A + A^T.  This is the workhorse behind both
// the transient baseline and AWE moment generation on circuit-sized
// systems (thousands of MNA unknowns for the coupled-line benchmarks).
#pragma once

#include <cstddef>
#include <optional>
#include <span>
#include <vector>

#include "linalg/sparse.hpp"

namespace awe::linalg {

/// Fill-reducing orderings.
enum class OrderingKind {
  kNatural,    ///< identity permutation
  kMinDegree,  ///< greedy minimum degree on pattern of A + A^T
};

/// Compute a column ordering of `a` for the requested strategy.
std::vector<std::size_t> compute_ordering(const SparseMatrix& a, OrderingKind kind);

/// Sparse LU factorization  A(rperm, cperm) = L * U.
class SparseLu {
 public:
  struct Options {
    OrderingKind ordering = OrderingKind::kMinDegree;
    /// Threshold pivoting parameter in (0, 1]: the diagonal candidate is
    /// kept when |diag| >= threshold * |column max| (favors sparsity).
    double pivot_threshold = 1e-3;
    /// Columns whose largest candidate is below this are singular.
    double singular_tol = 1e-14;
  };

  /// Factor `a`; std::nullopt when numerically singular.
  static std::optional<SparseLu> factor(const SparseMatrix& a, const Options& opts);
  static std::optional<SparseLu> factor(const SparseMatrix& a) { return factor(a, Options{}); }

  /// Solve A x = b.
  void solve_in_place(std::span<double> b) const;
  Vector solve(Vector b) const;

  /// Solve A^T x = b (adjoint analyses).
  void solve_transposed_in_place(std::span<double> b) const;
  Vector solve_transposed(Vector b) const;

  std::size_t size() const { return n_; }
  std::size_t l_nnz() const { return l_values_.size(); }
  std::size_t u_nnz() const { return u_values_.size(); }

 private:
  SparseLu() = default;

  std::size_t n_ = 0;
  // L: unit lower triangular, CSC, diagonal not stored.
  std::vector<std::size_t> l_col_ptr_, l_row_idx_;
  std::vector<double> l_values_;
  // U: upper triangular, CSC, diagonal stored last in each column.
  std::vector<std::size_t> u_col_ptr_, u_row_idx_;
  std::vector<double> u_values_;
  std::vector<std::size_t> rperm_;  // rperm_[k] = original row pivoted at step k
  std::vector<std::size_t> cperm_;  // cperm_[k] = original column factored at step k
};

}  // namespace awe::linalg
