#include "linalg/lu.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "health/failpoints.hpp"

namespace awe::linalg {

std::optional<LuFactorization> LuFactorization::factor(Matrix a, double pivot_tol) {
  if (a.rows() != a.cols()) throw std::invalid_argument("LU requires square matrix");
  // Injection site: report the matrix as singular (pivot degeneracy) so
  // every caller exercises its ill-conditioned-factor handling.
  if (health::failpoints::fires(health::failpoints::sites::kLuSingular))
    return std::nullopt;
  const std::size_t n = a.rows();
  std::vector<std::size_t> perm(n);
  for (std::size_t i = 0; i < n; ++i) perm[i] = i;
  int sign = 1;

  // Row scales for the pivot-degeneracy test.
  std::vector<double> scale(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) scale[i] = std::max(scale[i], std::abs(a(i, j)));
    if (scale[i] == 0.0) scale[i] = 1.0;
  }

  for (std::size_t k = 0; k < n; ++k) {
    // Partial pivoting: pick the largest scaled entry in column k.
    std::size_t piv = k;
    double best = std::abs(a(k, k)) / scale[k];
    for (std::size_t i = k + 1; i < n; ++i) {
      const double cand = std::abs(a(i, k)) / scale[i];
      if (cand > best) {
        best = cand;
        piv = i;
      }
    }
    if (best < pivot_tol) return std::nullopt;
    if (piv != k) {
      for (std::size_t j = 0; j < n; ++j) std::swap(a(k, j), a(piv, j));
      std::swap(perm[k], perm[piv]);
      std::swap(scale[k], scale[piv]);
      sign = -sign;
    }
    const double pivot = a(k, k);
    for (std::size_t i = k + 1; i < n; ++i) {
      const double m = a(i, k) / pivot;
      a(i, k) = m;
      if (m == 0.0) continue;
      for (std::size_t j = k + 1; j < n; ++j) a(i, j) -= m * a(k, j);
    }
  }
  return LuFactorization(std::move(a), std::move(perm), sign);
}

void LuFactorization::solve_in_place(std::span<double> b) const {
  const std::size_t n = lu_.rows();
  if (b.size() != n) throw std::invalid_argument("LU solve size mismatch");
  // Apply permutation: y = P b.
  Vector y(n);
  for (std::size_t i = 0; i < n; ++i) y[i] = b[perm_[i]];
  // Forward substitution L z = y (unit diagonal).
  for (std::size_t i = 1; i < n; ++i) {
    double s = y[i];
    for (std::size_t j = 0; j < i; ++j) s -= lu_(i, j) * y[j];
    y[i] = s;
  }
  // Back substitution U x = z.
  for (std::size_t ii = n; ii-- > 0;) {
    double s = y[ii];
    for (std::size_t j = ii + 1; j < n; ++j) s -= lu_(ii, j) * y[j];
    y[ii] = s / lu_(ii, ii);
  }
  std::copy(y.begin(), y.end(), b.begin());
}

Vector LuFactorization::solve(Vector b) const {
  solve_in_place(b);
  return b;
}

void LuFactorization::solve_transposed_in_place(std::span<double> b) const {
  const std::size_t n = lu_.rows();
  if (b.size() != n) throw std::invalid_argument("LU solve size mismatch");
  // A^T = (P^T L U)^T = U^T L^T P, so solve U^T z = b, L^T w = z, x = P^T w.
  Vector y(b.begin(), b.end());
  // Forward substitution U^T z = b.
  for (std::size_t i = 0; i < n; ++i) {
    double s = y[i];
    for (std::size_t j = 0; j < i; ++j) s -= lu_(j, i) * y[j];
    y[i] = s / lu_(i, i);
  }
  // Back substitution L^T w = z (unit diagonal).
  for (std::size_t ii = n; ii-- > 0;) {
    double s = y[ii];
    for (std::size_t j = ii + 1; j < n; ++j) s -= lu_(j, ii) * y[j];
    y[ii] = s;
  }
  // x = P^T w: x[perm[i]] = w[i].
  for (std::size_t i = 0; i < n; ++i) b[perm_[i]] = y[i];
}

Vector LuFactorization::solve_transposed(Vector b) const {
  solve_transposed_in_place(b);
  return b;
}

double LuFactorization::determinant() const {
  double d = perm_sign_;
  for (std::size_t i = 0; i < lu_.rows(); ++i) d *= lu_(i, i);
  return d;
}

double LuFactorization::min_abs_pivot() const {
  double m = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < lu_.rows(); ++i) m = std::min(m, std::abs(lu_(i, i)));
  return m;
}

Vector solve_dense(Matrix a, Vector b) {
  auto lu = LuFactorization::factor(std::move(a));
  if (!lu) throw std::runtime_error("solve_dense: singular matrix");
  return lu->solve(std::move(b));
}

}  // namespace awe::linalg
