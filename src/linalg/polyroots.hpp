// Polynomial root finding for Padé denominators / numerators.
//
// Roots are computed as companion-matrix eigenvalues and then polished
// with a few complex Newton steps on the original coefficients, which
// recovers the accuracy lost to balancing/QR round-off.  A pure
// Aberth–Ehrlich iteration is provided as an independent fallback (and is
// exercised against the companion path in the property tests).
#pragma once

#include <complex>
#include <span>
#include <vector>

#include "linalg/dense.hpp"

namespace awe::linalg {

/// Roots of  c[0] + c[1] x + ... + c[n] x^n  (ascending coefficients).
/// Leading zero coefficients are trimmed; zero roots from trailing zero
/// coefficients are returned explicitly.  Throws on the zero polynomial.
CVector poly_roots(std::span<const double> coeffs);

/// Aberth–Ehrlich simultaneous iteration (independent algorithm, used for
/// cross-checking).  Same coefficient convention as poly_roots.
CVector poly_roots_aberth(std::span<const double> coeffs, int max_iters = 200);

/// Evaluate polynomial (ascending coefficients) at complex x via Horner.
std::complex<double> poly_eval(std::span<const double> coeffs, std::complex<double> x);

/// Evaluate derivative of polynomial at complex x.
std::complex<double> poly_eval_derivative(std::span<const double> coeffs,
                                          std::complex<double> x);

}  // namespace awe::linalg
