#include "linalg/polyroots.hpp"

#include <cmath>
#include <stdexcept>

#include "linalg/eig.hpp"

namespace awe::linalg {
namespace {

/// Trim leading (high-order) zeros; returns trimmed ascending coefficients.
std::vector<double> trim_leading(std::span<const double> coeffs) {
  std::size_t deg = coeffs.size();
  while (deg > 0 && coeffs[deg - 1] == 0.0) --deg;
  return {coeffs.begin(), coeffs.begin() + static_cast<std::ptrdiff_t>(deg)};
}

}  // namespace

std::complex<double> poly_eval(std::span<const double> coeffs, std::complex<double> x) {
  std::complex<double> acc{0.0, 0.0};
  for (std::size_t i = coeffs.size(); i-- > 0;) acc = acc * x + coeffs[i];
  return acc;
}

std::complex<double> poly_eval_derivative(std::span<const double> coeffs,
                                          std::complex<double> x) {
  std::complex<double> acc{0.0, 0.0};
  for (std::size_t i = coeffs.size(); i-- > 1;)
    acc = acc * x + coeffs[i] * static_cast<double>(i);
  return acc;
}

CVector poly_roots(std::span<const double> coeffs) {
  std::vector<double> c = trim_leading(coeffs);
  if (c.empty()) throw std::invalid_argument("poly_roots: zero polynomial");
  CVector roots;
  // Factor out x^k for trailing zero coefficients (exact zero roots).
  std::size_t first_nonzero = 0;
  while (first_nonzero < c.size() && c[first_nonzero] == 0.0) ++first_nonzero;
  for (std::size_t i = 0; i < first_nonzero; ++i) roots.emplace_back(0.0, 0.0);
  c.erase(c.begin(), c.begin() + static_cast<std::ptrdiff_t>(first_nonzero));

  const std::size_t n = c.size() - 1;  // degree
  if (n == 0) return roots;
  if (n == 1) {
    roots.emplace_back(-c[0] / c[1], 0.0);
    return roots;
  }
  if (n == 2) {
    // Stable quadratic formula.
    const double a = c[2], b = c[1], c0 = c[0];
    const double disc = b * b - 4.0 * a * c0;
    if (disc >= 0.0) {
      const double q = -0.5 * (b + (b >= 0.0 ? 1.0 : -1.0) * std::sqrt(disc));
      roots.emplace_back(q / a, 0.0);
      roots.emplace_back(q != 0.0 ? c0 / q : 0.0, 0.0);
    } else {
      const double re = -b / (2.0 * a);
      const double im = std::sqrt(-disc) / (2.0 * a);
      roots.emplace_back(re, im);
      roots.emplace_back(re, -im);
    }
    return roots;
  }

  // Companion matrix of the monic polynomial.
  Matrix comp(n, n);
  for (std::size_t i = 0; i + 1 < n; ++i) comp(i + 1, i) = 1.0;
  for (std::size_t i = 0; i < n; ++i) comp(i, n - 1) = -c[i] / c[n];
  CVector eigs = eigenvalues(std::move(comp));

  // Polish with complex Newton on the original coefficients.
  for (auto& r : eigs) {
    for (int it = 0; it < 8; ++it) {
      const auto f = poly_eval(c, r);
      const auto fp = poly_eval_derivative(c, r);
      if (std::abs(fp) == 0.0) break;
      const auto step = f / fp;
      r -= step;
      if (std::abs(step) <= 1e-14 * (1.0 + std::abs(r))) break;
    }
    // Snap nearly-real roots onto the real axis.
    if (std::abs(r.imag()) <= 1e-10 * (1.0 + std::abs(r.real()))) r = {r.real(), 0.0};
  }
  roots.insert(roots.end(), eigs.begin(), eigs.end());
  return roots;
}

CVector poly_roots_aberth(std::span<const double> coeffs, int max_iters) {
  std::vector<double> c = trim_leading(coeffs);
  if (c.size() < 2) throw std::invalid_argument("poly_roots_aberth: degree must be >= 1");
  const std::size_t n = c.size() - 1;

  // Initial guesses on a circle of radius given by the Cauchy bound,
  // slightly rotated off the real axis so conjugate symmetry cannot trap
  // the iteration.
  double radius = 0.0;
  for (std::size_t i = 0; i < n; ++i) radius = std::max(radius, std::abs(c[i] / c[n]));
  radius = 1.0 + radius;
  CVector z(n);
  for (std::size_t k = 0; k < n; ++k) {
    const double theta = 2.0 * M_PI * static_cast<double>(k) / static_cast<double>(n) + 0.4;
    z[k] = std::polar(radius * 0.8, theta);
  }

  for (int it = 0; it < max_iters; ++it) {
    double max_step = 0.0;
    for (std::size_t k = 0; k < n; ++k) {
      const auto f = poly_eval(c, z[k]);
      const auto fp = poly_eval_derivative(c, z[k]);
      std::complex<double> ratio = (fp != 0.0) ? f / fp : std::complex<double>{0.0, 0.0};
      std::complex<double> rep{0.0, 0.0};
      for (std::size_t j = 0; j < n; ++j)
        if (j != k) rep += 1.0 / (z[k] - z[j]);
      const auto denom = 1.0 - ratio * rep;
      const auto step = (std::abs(denom) > 1e-300) ? ratio / denom : ratio;
      z[k] -= step;
      max_step = std::max(max_step, std::abs(step));
    }
    if (max_step < 1e-14 * radius) break;
  }
  for (auto& r : z)
    if (std::abs(r.imag()) <= 1e-9 * (1.0 + std::abs(r.real()))) r = {r.real(), 0.0};
  return z;
}

}  // namespace awe::linalg
