#include "linalg/sparse.hpp"

#include <algorithm>
#include <cassert>
#include <numeric>
#include <stdexcept>

namespace awe::linalg {

void TripletMatrix::add(std::size_t r, std::size_t c, double value) {
  assert(r < rows_ && c < cols_);
  rows_idx_.push_back(r);
  cols_idx_.push_back(c);
  values_.push_back(value);
}

SparseMatrix TripletMatrix::compress(bool keep_zeros) const {
  const std::size_t nnz_in = values_.size();
  // Count entries per column, prefix-sum into col_ptr, then scatter.
  std::vector<std::size_t> count(cols_ + 1, 0);
  for (std::size_t k = 0; k < nnz_in; ++k) ++count[cols_idx_[k] + 1];
  std::partial_sum(count.begin(), count.end(), count.begin());

  std::vector<std::size_t> row_idx(nnz_in);
  std::vector<double> values(nnz_in);
  {
    std::vector<std::size_t> next(count.begin(), count.end() - 1);
    for (std::size_t k = 0; k < nnz_in; ++k) {
      const std::size_t pos = next[cols_idx_[k]]++;
      row_idx[pos] = rows_idx_[k];
      values[pos] = values_[k];
    }
  }

  // Sort each column by row and merge duplicates.
  std::vector<std::size_t> col_ptr(cols_ + 1, 0);
  std::vector<std::size_t> out_rows;
  std::vector<double> out_vals;
  out_rows.reserve(nnz_in);
  out_vals.reserve(nnz_in);
  std::vector<std::size_t> order;
  for (std::size_t c = 0; c < cols_; ++c) {
    const std::size_t lo = count[c], hi = count[c + 1];
    order.resize(hi - lo);
    std::iota(order.begin(), order.end(), lo);
    std::sort(order.begin(), order.end(),
              [&](std::size_t a, std::size_t b) { return row_idx[a] < row_idx[b]; });
    std::size_t i = 0;
    while (i < order.size()) {
      const std::size_t r = row_idx[order[i]];
      double sum = 0.0;
      while (i < order.size() && row_idx[order[i]] == r) sum += values[order[i++]];
      if (sum != 0.0 || keep_zeros) {
        out_rows.push_back(r);
        out_vals.push_back(sum);
      }
    }
    col_ptr[c + 1] = out_rows.size();
  }
  return SparseMatrix(rows_, cols_, std::move(col_ptr), std::move(out_rows),
                      std::move(out_vals));
}

Matrix TripletMatrix::to_dense() const {
  Matrix m(rows_, cols_);
  for (std::size_t k = 0; k < values_.size(); ++k)
    m(rows_idx_[k], cols_idx_[k]) += values_[k];
  return m;
}

double SparseMatrix::at(std::size_t r, std::size_t c) const {
  assert(r < rows_ && c < cols_);
  const auto begin = row_idx_.begin() + static_cast<std::ptrdiff_t>(col_ptr_[c]);
  const auto end = row_idx_.begin() + static_cast<std::ptrdiff_t>(col_ptr_[c + 1]);
  const auto it = std::lower_bound(begin, end, r);
  if (it == end || *it != r) return 0.0;
  return values_[static_cast<std::size_t>(it - row_idx_.begin())];
}

Vector SparseMatrix::multiply(std::span<const double> x) const {
  if (x.size() != cols_) throw std::invalid_argument("SparseMatrix::multiply size mismatch");
  Vector y(rows_, 0.0);
  for (std::size_t c = 0; c < cols_; ++c) {
    const double xc = x[c];
    if (xc == 0.0) continue;
    for (std::size_t k = col_ptr_[c]; k < col_ptr_[c + 1]; ++k)
      y[row_idx_[k]] += values_[k] * xc;
  }
  return y;
}

Vector SparseMatrix::multiply_transposed(std::span<const double> x) const {
  if (x.size() != rows_)
    throw std::invalid_argument("SparseMatrix::multiply_transposed size mismatch");
  Vector y(cols_, 0.0);
  for (std::size_t c = 0; c < cols_; ++c) {
    double s = 0.0;
    for (std::size_t k = col_ptr_[c]; k < col_ptr_[c + 1]; ++k)
      s += values_[k] * x[row_idx_[k]];
    y[c] = s;
  }
  return y;
}

Matrix SparseMatrix::to_dense() const {
  Matrix m(rows_, cols_);
  for (std::size_t c = 0; c < cols_; ++c)
    for (std::size_t k = col_ptr_[c]; k < col_ptr_[c + 1]; ++k)
      m(row_idx_[k], c) += values_[k];
  return m;
}

}  // namespace awe::linalg
