#include "linalg/sparse_lu.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

#include "health/failpoints.hpp"

namespace awe::linalg {
namespace {

/// Symmetrized adjacency (pattern of A + A^T, no diagonal).
std::vector<std::vector<std::size_t>> symmetric_adjacency(const SparseMatrix& a) {
  const std::size_t n = a.cols();
  std::vector<std::vector<std::size_t>> adj(n);
  const auto cp = a.col_ptr();
  const auto ri = a.row_idx();
  for (std::size_t c = 0; c < n; ++c) {
    for (std::size_t k = cp[c]; k < cp[c + 1]; ++k) {
      const std::size_t r = ri[k];
      if (r == c) continue;
      adj[c].push_back(r);
      adj[r].push_back(c);
    }
  }
  for (auto& nb : adj) {
    std::sort(nb.begin(), nb.end());
    nb.erase(std::unique(nb.begin(), nb.end()), nb.end());
  }
  return adj;
}

std::vector<std::size_t> min_degree_ordering(const SparseMatrix& a) {
  const std::size_t n = a.cols();
  auto adj = symmetric_adjacency(a);
  std::vector<bool> eliminated(n, false);
  std::vector<std::size_t> order;
  order.reserve(n);

  // Greedy minimum degree with clique formation on elimination.  The
  // circuits we factor are nearly banded, so the simple quadratic scan is
  // cheap in practice; this is an ordering heuristic, not a bottleneck.
  std::vector<std::size_t> degree(n);
  for (std::size_t i = 0; i < n; ++i) degree[i] = adj[i].size();

  for (std::size_t step = 0; step < n; ++step) {
    std::size_t best = n;
    std::size_t best_deg = ~std::size_t{0};
    for (std::size_t i = 0; i < n; ++i) {
      if (!eliminated[i] && degree[i] < best_deg) {
        best_deg = degree[i];
        best = i;
      }
    }
    eliminated[best] = true;
    order.push_back(best);

    // Collect live neighbors and connect them pairwise (fill edges).
    std::vector<std::size_t> live;
    for (std::size_t nb : adj[best])
      if (!eliminated[nb]) live.push_back(nb);
    for (std::size_t u : live) {
      auto& lu = adj[u];
      for (std::size_t v : live) {
        if (v == u) continue;
        const auto it = std::lower_bound(lu.begin(), lu.end(), v);
        if (it == lu.end() || *it != v) lu.insert(it, v);
      }
      // Recompute live degree of u.
      std::size_t d = 0;
      for (std::size_t w : lu)
        if (!eliminated[w]) ++d;
      degree[u] = d;
    }
  }
  return order;
}

}  // namespace

std::vector<std::size_t> compute_ordering(const SparseMatrix& a, OrderingKind kind) {
  const std::size_t n = a.cols();
  if (kind == OrderingKind::kNatural) {
    std::vector<std::size_t> id(n);
    for (std::size_t i = 0; i < n; ++i) id[i] = i;
    return id;
  }
  return min_degree_ordering(a);
}

std::optional<SparseLu> SparseLu::factor(const SparseMatrix& a, const Options& opts) {
  if (a.rows() != a.cols()) throw std::invalid_argument("SparseLu requires square matrix");
  // Injection site: report the matrix as singular so MNA-layer callers
  // exercise their singular-Y0 handling.
  if (health::failpoints::fires(health::failpoints::sites::kSparseSingular))
    return std::nullopt;
  const std::size_t n = a.rows();
  constexpr std::size_t kNone = ~std::size_t{0};

  SparseLu f;
  f.n_ = n;
  f.cperm_ = compute_ordering(a, opts.ordering);
  f.rperm_.assign(n, kNone);
  f.l_col_ptr_.assign(n + 1, 0);
  f.u_col_ptr_.assign(n + 1, 0);

  // pinv[orig_row] = pivot step at which the row was chosen, or kNone.
  std::vector<std::size_t> pinv(n, kNone);

  const auto a_cp = a.col_ptr();
  const auto a_ri = a.row_idx();
  const auto a_vx = a.values();

  std::vector<double> x(n, 0.0);          // dense accumulator (indexed by orig row)
  std::vector<std::size_t> pattern;       // nonzero orig-row indices of x
  std::vector<unsigned char> marked(n, 0);
  std::vector<std::size_t> stack, path;   // DFS state

  for (std::size_t j = 0; j < n; ++j) {
    const std::size_t col = f.cperm_[j];

    // --- Symbolic step: reach of column `col` through finished L columns.
    // A nonzero in a pivoted row r (pinv[r] = k < j) is eliminated using L
    // column k, which injects L's pattern; depth-first search discovers the
    // full fill-in pattern in topological order.
    pattern.clear();
    for (std::size_t k = a_cp[col]; k < a_cp[col + 1]; ++k) {
      const std::size_t r0 = a_ri[k];
      if (marked[r0]) continue;
      // Iterative DFS from r0 through L.
      stack.assign(1, r0);
      path.clear();
      while (!stack.empty()) {
        const std::size_t r = stack.back();
        if (!marked[r]) {
          marked[r] = 1;
          path.push_back(r);
          const std::size_t piv = pinv[r];
          if (piv != kNone) {
            for (std::size_t q = f.l_col_ptr_[piv]; q < f.l_col_ptr_[piv + 1]; ++q) {
              const std::size_t child = f.l_row_idx_[q];
              if (!marked[child]) stack.push_back(child);
            }
            continue;
          }
        }
        stack.pop_back();
      }
      pattern.insert(pattern.end(), path.begin(), path.end());
    }

    // --- Numeric step: scatter A(:, col) then eliminate pivoted rows in
    // dependency order.  Order pattern by pivot step so that every update
    // uses already-final values.
    for (std::size_t r : pattern) x[r] = 0.0;
    for (std::size_t k = a_cp[col]; k < a_cp[col + 1]; ++k) x[a_ri[k]] = a_vx[k];

    std::sort(pattern.begin(), pattern.end(), [&](std::size_t p, std::size_t q) {
      const std::size_t sp = pinv[p] == kNone ? n : pinv[p];
      const std::size_t sq = pinv[q] == kNone ? n : pinv[q];
      return sp < sq;
    });

    for (std::size_t r : pattern) {
      const std::size_t piv = pinv[r];
      if (piv == kNone) continue;
      const double xr = x[r];
      if (xr == 0.0) continue;
      for (std::size_t q = f.l_col_ptr_[piv]; q < f.l_col_ptr_[piv + 1]; ++q)
        x[f.l_row_idx_[q]] -= f.l_values_[q] * xr;
    }

    // --- Pivot selection among unpivoted rows (threshold pivoting with
    // preference for the natural diagonal to limit fill).
    double col_max = 0.0;
    std::size_t arg_max = kNone;
    for (std::size_t r : pattern) {
      if (pinv[r] != kNone) continue;
      const double v = std::abs(x[r]);
      if (v > col_max) {
        col_max = v;
        arg_max = r;
      }
    }
    if (arg_max == kNone || col_max < opts.singular_tol) {
      for (std::size_t r : pattern) marked[r] = 0;
      return std::nullopt;
    }
    std::size_t pivot_row = arg_max;
    if (marked[col] && pinv[col] == kNone &&
        std::abs(x[col]) >= opts.pivot_threshold * col_max && x[col] != 0.0)
      pivot_row = col;

    const double pivot = x[pivot_row];
    pinv[pivot_row] = j;
    f.rperm_[j] = pivot_row;

    // --- Gather into U (pivoted rows) and L (unpivoted rows, scaled).
    for (std::size_t r : pattern) {
      marked[r] = 0;
      const double v = x[r];
      if (r == pivot_row) continue;
      if (v == 0.0) continue;
      if (pinv[r] != kNone) {
        f.u_row_idx_.push_back(pinv[r]);
        f.u_values_.push_back(v);
      } else {
        f.l_row_idx_.push_back(r);  // original row index; finalized below
        f.l_values_.push_back(v / pivot);
      }
    }
    f.u_row_idx_.push_back(j);  // diagonal of U stored last
    f.u_values_.push_back(pivot);
    f.u_col_ptr_[j + 1] = f.u_values_.size();
    f.l_col_ptr_[j + 1] = f.l_values_.size();
  }

  // Rewrite L row indices from original rows to pivot steps.
  for (auto& r : f.l_row_idx_) r = pinv[r];
  return f;
}

void SparseLu::solve_in_place(std::span<double> b) const {
  if (b.size() != n_) throw std::invalid_argument("SparseLu solve size mismatch");
  // Permute rows: y[k] = b[rperm_[k]].
  Vector y(n_);
  for (std::size_t k = 0; k < n_; ++k) y[k] = b[rperm_[k]];
  // L y = y (unit diagonal, column oriented forward substitution).
  for (std::size_t j = 0; j < n_; ++j) {
    const double yj = y[j];
    if (yj == 0.0) continue;
    for (std::size_t q = l_col_ptr_[j]; q < l_col_ptr_[j + 1]; ++q)
      y[l_row_idx_[q]] -= l_values_[q] * yj;
  }
  // U x = y (diagonal stored last in each column).
  for (std::size_t jj = n_; jj-- > 0;) {
    const std::size_t last = u_col_ptr_[jj + 1] - 1;
    assert(u_row_idx_[last] == jj);
    const double xj = y[jj] / u_values_[last];
    y[jj] = xj;
    if (xj == 0.0) continue;
    for (std::size_t q = u_col_ptr_[jj]; q < last; ++q)
      y[u_row_idx_[q]] -= u_values_[q] * xj;
  }
  // Undo column permutation: b[cperm_[k]] = y[k].
  for (std::size_t k = 0; k < n_; ++k) b[cperm_[k]] = y[k];
}

Vector SparseLu::solve(Vector b) const {
  solve_in_place(b);
  return b;
}

void SparseLu::solve_transposed_in_place(std::span<double> b) const {
  if (b.size() != n_) throw std::invalid_argument("SparseLu solve size mismatch");
  // A^T x = b with A(rperm, cperm) = L U:  U^T L^T w = b(cperm), x(rperm) = w.
  Vector y(n_);
  for (std::size_t k = 0; k < n_; ++k) y[k] = b[cperm_[k]];
  // U^T w = y: forward substitution, rows of U^T are columns of U.
  for (std::size_t j = 0; j < n_; ++j) {
    const std::size_t last = u_col_ptr_[j + 1] - 1;
    double s = y[j];
    for (std::size_t q = u_col_ptr_[j]; q < last; ++q)
      s -= u_values_[q] * y[u_row_idx_[q]];
    y[j] = s / u_values_[last];
  }
  // L^T w = y: back substitution (unit diagonal).
  for (std::size_t jj = n_; jj-- > 0;) {
    double s = y[jj];
    for (std::size_t q = l_col_ptr_[jj]; q < l_col_ptr_[jj + 1]; ++q)
      s -= l_values_[q] * y[l_row_idx_[q]];
    y[jj] = s;
  }
  for (std::size_t k = 0; k < n_; ++k) b[rperm_[k]] = y[k];
}

Vector SparseLu::solve_transposed(Vector b) const {
  solve_transposed_in_place(b);
  return b;
}

}  // namespace awe::linalg
