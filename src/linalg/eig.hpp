// Eigenvalues of small dense real matrices.
//
// AWE extracts approximate poles as the roots of the Padé denominator,
// computed as eigenvalues of the companion matrix.  Orders are small
// (the paper: "typically low, often less than five"), so a classic
// balanced Hessenberg + Francis double-shift QR is both adequate and
// dependency-free.
#pragma once

#include "linalg/dense.hpp"

namespace awe::linalg {

/// All eigenvalues of a general real square matrix (complex in conjugate
/// pairs).  Throws std::runtime_error if the QR iteration fails to
/// converge (pathological input).
CVector eigenvalues(Matrix a);

/// Balance a matrix in place (diagonal similarity scaling), improving the
/// accuracy of the subsequent eigenvalue computation.
void balance_in_place(Matrix& a);

/// Reduce to upper Hessenberg form in place via stabilized elimination.
void hessenberg_in_place(Matrix& a);

}  // namespace awe::linalg
