// Sparse matrix types for circuit-sized MNA systems.
//
// Circuits assemble naturally as coordinate (triplet) lists — each element
// stamp adds a handful of (row, col, value) contributions, and duplicates
// must sum.  Solvers want compressed sparse column (CSC).  `TripletMatrix`
// collects stamps; `SparseMatrix` is the immutable CSC product.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "linalg/dense.hpp"

namespace awe::linalg {

/// Mutable coordinate-format accumulator for matrix assembly.
class TripletMatrix {
 public:
  TripletMatrix() = default;
  TripletMatrix(std::size_t rows, std::size_t cols) : rows_(rows), cols_(cols) {}

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  /// Accumulate `value` at (r, c). Duplicate entries are summed on compress.
  void add(std::size_t r, std::size_t c, double value);

  std::size_t entry_count() const { return rows_idx_.size(); }

  /// Compress into CSC, summing duplicates and dropping explicit zeros
  /// (unless keep_zeros, which preserves the symbolic pattern — needed when
  /// a pattern is shared across factorizations).
  class SparseMatrix compress(bool keep_zeros = false) const;

  Matrix to_dense() const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<std::size_t> rows_idx_;
  std::vector<std::size_t> cols_idx_;
  std::vector<double> values_;
};

/// Immutable compressed-sparse-column matrix.
class SparseMatrix {
 public:
  SparseMatrix() = default;
  SparseMatrix(std::size_t rows, std::size_t cols, std::vector<std::size_t> col_ptr,
               std::vector<std::size_t> row_idx, std::vector<double> values)
      : rows_(rows),
        cols_(cols),
        col_ptr_(std::move(col_ptr)),
        row_idx_(std::move(row_idx)),
        values_(std::move(values)) {}

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t nnz() const { return values_.size(); }

  std::span<const std::size_t> col_ptr() const { return col_ptr_; }
  std::span<const std::size_t> row_idx() const { return row_idx_; }
  std::span<const double> values() const { return values_; }

  /// Entry lookup (binary search within the column); 0.0 if not stored.
  double at(std::size_t r, std::size_t c) const;

  /// y = A x
  Vector multiply(std::span<const double> x) const;
  /// y = A^T x
  Vector multiply_transposed(std::span<const double> x) const;

  Matrix to_dense() const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<std::size_t> col_ptr_;  // size cols+1
  std::vector<std::size_t> row_idx_;  // size nnz, sorted within column
  std::vector<double> values_;        // size nnz
};

}  // namespace awe::linalg
