// Dense LU factorization with partial pivoting.
//
// AWE's moment recursion solves the same DC matrix against many right-hand
// sides, so the factorization is kept and re-applied (factor once, solve
// many) — the property that makes AWE an order of magnitude cheaper than
// repeated full solves.
#pragma once

#include <cstddef>
#include <optional>
#include <span>
#include <vector>

#include "linalg/dense.hpp"

namespace awe::linalg {

/// LU factorization P*A = L*U of a square dense matrix.
class LuFactorization {
 public:
  /// Factor `a`; returns std::nullopt when the matrix is numerically
  /// singular (pivot below `pivot_tol` times the row scale).
  static std::optional<LuFactorization> factor(Matrix a, double pivot_tol = 1e-13);

  /// Solve A x = b in place.
  void solve_in_place(std::span<double> b) const;
  Vector solve(Vector b) const;

  /// Solve A^T x = b in place (used by adjoint sensitivity analysis).
  void solve_transposed_in_place(std::span<double> b) const;
  Vector solve_transposed(Vector b) const;

  /// Determinant of A (product of pivots times permutation sign).
  double determinant() const;

  std::size_t size() const { return lu_.rows(); }

  /// Estimate of the reciprocal pivot growth; small values flag ill
  /// conditioning.
  double min_abs_pivot() const;

 private:
  LuFactorization(Matrix lu, std::vector<std::size_t> perm, int perm_sign)
      : lu_(std::move(lu)), perm_(std::move(perm)), perm_sign_(perm_sign) {}

  Matrix lu_;                       // L below diagonal (unit), U on/above
  std::vector<std::size_t> perm_;   // row permutation
  int perm_sign_ = 1;
};

/// Convenience: one-shot dense solve. Throws std::runtime_error on singular A.
Vector solve_dense(Matrix a, Vector b);

}  // namespace awe::linalg
