#include "linalg/eig.hpp"

#include <cmath>
#include <stdexcept>

namespace awe::linalg {

void balance_in_place(Matrix& a) {
  const std::size_t n = a.rows();
  constexpr double kRadix = 2.0;
  bool done = false;
  while (!done) {
    done = true;
    for (std::size_t i = 0; i < n; ++i) {
      double r = 0.0, c = 0.0;
      for (std::size_t j = 0; j < n; ++j) {
        if (j == i) continue;
        c += std::abs(a(j, i));
        r += std::abs(a(i, j));
      }
      if (c == 0.0 || r == 0.0) continue;
      double g = r / kRadix;
      double f = 1.0;
      const double s = c + r;
      while (c < g) {
        f *= kRadix;
        c *= kRadix * kRadix;
      }
      g = r * kRadix;
      while (c > g) {
        f /= kRadix;
        c /= kRadix * kRadix;
      }
      if ((c + r) / f < 0.95 * s) {
        done = false;
        const double inv_f = 1.0 / f;
        for (std::size_t j = 0; j < n; ++j) a(i, j) *= inv_f;
        for (std::size_t j = 0; j < n; ++j) a(j, i) *= f;
      }
    }
  }
}

void hessenberg_in_place(Matrix& a) {
  const std::size_t n = a.rows();
  if (n < 3) return;
  for (std::size_t m = 1; m + 1 < n; ++m) {
    // Find pivot below the subdiagonal in column m-1.
    double x = 0.0;
    std::size_t piv = m;
    for (std::size_t j = m; j < n; ++j) {
      if (std::abs(a(j, m - 1)) > std::abs(x)) {
        x = a(j, m - 1);
        piv = j;
      }
    }
    if (piv != m) {
      for (std::size_t j = m - 1; j < n; ++j) std::swap(a(piv, j), a(m, j));
      for (std::size_t j = 0; j < n; ++j) std::swap(a(j, piv), a(j, m));
    }
    if (x != 0.0) {
      for (std::size_t i = m + 1; i < n; ++i) {
        double y = a(i, m - 1);
        if (y == 0.0) continue;
        y /= x;
        a(i, m - 1) = y;
        for (std::size_t j = m; j < n; ++j) a(i, j) -= y * a(m, j);
        for (std::size_t j = 0; j < n; ++j) a(j, m) += y * a(j, i);
      }
    }
  }
  // Zero the lower triangle left behind by the elimination multipliers.
  for (std::size_t i = 2; i < n; ++i)
    for (std::size_t j = 0; j + 1 < i; ++j) a(i, j) = 0.0;
}

namespace {

/// Francis double-shift QR on an upper Hessenberg matrix (EISPACK `hqr`).
CVector hqr(Matrix& a) {
  const std::size_t size = a.rows();
  CVector roots;
  roots.reserve(size);
  if (size == 0) return roots;

  double anorm = 0.0;
  for (std::size_t i = 0; i < size; ++i)
    for (std::size_t j = (i == 0 ? 0 : i - 1); j < size; ++j)
      anorm += std::abs(a(i, j));
  if (anorm == 0.0) {
    roots.assign(size, {0.0, 0.0});
    return roots;
  }

  long nn = static_cast<long>(size) - 1;  // signed: index arithmetic dips below 0
  double t = 0.0;
  while (nn >= 0) {
    int its = 0;
    long l;
    for (;;) {
      // Look for a small subdiagonal element.
      for (l = nn; l >= 1; --l) {
        const double s0 =
            std::abs(a(static_cast<std::size_t>(l - 1), static_cast<std::size_t>(l - 1))) +
            std::abs(a(static_cast<std::size_t>(l), static_cast<std::size_t>(l)));
        const double s = (s0 == 0.0) ? anorm : s0;
        if (std::abs(a(static_cast<std::size_t>(l), static_cast<std::size_t>(l - 1))) <=
            1e-15 * s) {
          a(static_cast<std::size_t>(l), static_cast<std::size_t>(l - 1)) = 0.0;
          break;
        }
      }
      auto A = [&](long i, long j) -> double& {
        return a(static_cast<std::size_t>(i), static_cast<std::size_t>(j));
      };
      double x = A(nn, nn);
      if (l == nn) {  // one real root found
        roots.emplace_back(x + t, 0.0);
        --nn;
        break;
      }
      double y = A(nn - 1, nn - 1);
      double w = A(nn, nn - 1) * A(nn - 1, nn);
      if (l == nn - 1) {  // two roots found
        double p = 0.5 * (y - x);
        double q = p * p + w;
        double z = std::sqrt(std::abs(q));
        x += t;
        if (q >= 0.0) {  // real pair
          z = p + (p >= 0.0 ? z : -z);
          roots.emplace_back(x + z, 0.0);
          roots.emplace_back(z != 0.0 ? x - w / z : x + z, 0.0);
        } else {  // complex pair
          roots.emplace_back(x + p, z);
          roots.emplace_back(x + p, -z);
        }
        nn -= 2;
        break;
      }
      if (its == 60) throw std::runtime_error("eigenvalues: QR iteration did not converge");
      double p = 0.0, q = 0.0, z = 0.0, r = 0.0, s = 0.0;
      if (its == 10 || its == 20) {  // exceptional shift
        t += x;
        for (long i = 0; i <= nn; ++i) A(i, i) -= x;
        s = std::abs(A(nn, nn - 1)) + std::abs(A(nn - 1, nn - 2));
        x = y = 0.75 * s;
        w = -0.4375 * s * s;
      }
      ++its;
      long m;
      for (m = nn - 2; m >= l; --m) {  // look for two consecutive small subdiagonals
        z = A(m, m);
        r = x - z;
        s = y - z;
        p = (r * s - w) / A(m + 1, m) + A(m, m + 1);
        q = A(m + 1, m + 1) - z - r - s;
        r = A(m + 2, m + 1);
        s = std::abs(p) + std::abs(q) + std::abs(r);
        p /= s;
        q /= s;
        r /= s;
        if (m == l) break;
        const double u = std::abs(A(m, m - 1)) * (std::abs(q) + std::abs(r));
        const double v = std::abs(p) * (std::abs(A(m - 1, m - 1)) + std::abs(z) +
                                        std::abs(A(m + 1, m + 1)));
        if (u <= 1e-15 * v) break;
      }
      for (long i = m + 2; i <= nn; ++i) {
        A(i, i - 2) = 0.0;
        if (i != m + 2) A(i, i - 3) = 0.0;
      }
      for (long k = m; k <= nn - 1; ++k) {  // double QR step
        if (k != m) {
          p = A(k, k - 1);
          q = A(k + 1, k - 1);
          r = (k != nn - 1) ? A(k + 2, k - 1) : 0.0;
          x = std::abs(p) + std::abs(q) + std::abs(r);
          if (x != 0.0) {
            p /= x;
            q /= x;
            r /= x;
          }
        }
        s = std::sqrt(p * p + q * q + r * r);
        if (p < 0.0) s = -s;
        if (s == 0.0) continue;
        if (k == m) {
          if (l != m) A(k, k - 1) = -A(k, k - 1);
        } else {
          A(k, k - 1) = -s * x;
        }
        p += s;
        x = p / s;
        y = q / s;
        z = r / s;
        q /= p;
        r /= p;
        for (long j = k; j <= nn; ++j) {  // row modification
          p = A(k, j) + q * A(k + 1, j);
          if (k != nn - 1) {
            p += r * A(k + 2, j);
            A(k + 2, j) -= p * z;
          }
          A(k + 1, j) -= p * y;
          A(k, j) -= p * x;
        }
        const long mmin = (nn < k + 3) ? nn : k + 3;
        for (long i = l; i <= mmin; ++i) {  // column modification
          p = x * A(i, k) + y * A(i, k + 1);
          if (k != nn - 1) {
            p += z * A(i, k + 2);
            A(i, k + 2) -= p * r;
          }
          A(i, k + 1) -= p * q;
          A(i, k) -= p;
        }
      }
    }
  }
  return roots;
}

}  // namespace

CVector eigenvalues(Matrix a) {
  if (a.rows() != a.cols()) throw std::invalid_argument("eigenvalues: square matrix required");
  if (a.rows() == 0) return {};
  if (a.rows() == 1) return {std::complex<double>(a(0, 0), 0.0)};
  balance_in_place(a);
  hessenberg_in_place(a);
  return hqr(a);
}

}  // namespace awe::linalg
