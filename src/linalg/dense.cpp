#include "linalg/dense.hpp"

#include <cmath>

namespace awe::linalg {

double norm2(std::span<const double> v) {
  double s = 0.0;
  for (double x : v) s += x * x;
  return std::sqrt(s);
}

double norm_inf(std::span<const double> v) {
  double m = 0.0;
  for (double x : v) m = std::max(m, std::abs(x));
  return m;
}

double dot(std::span<const double> a, std::span<const double> b) {
  assert(a.size() == b.size());
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}

void axpy(double k, std::span<const double> x, std::span<double> y) {
  assert(x.size() == y.size());
  for (std::size_t i = 0; i < x.size(); ++i) y[i] += k * x[i];
}

}  // namespace awe::linalg
