// AWEsymbolic — compiled symbolic AWE analysis (the paper's contribution).
//
// Build once:   netlist + symbolic elements  ->  symbolic moments (via
// moment-level partitioning)  ->  compiled register program.
// Evaluate many:  symbol values  ->  program run  ->  numeric moments  ->
// Padé  ->  reduced-order model, at a per-iteration cost orders of
// magnitude below a full AWE re-analysis (paper Table 1).
#pragma once

#include <cstddef>
#include <cstdint>
#include <filesystem>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "awe/rom.hpp"
#include "circuit/netlist.hpp"
#include "core/model_blob.hpp"
#include "health/status.hpp"
#include "partition/partitioner.hpp"
#include "symbolic/compile.hpp"

namespace awe::sweep {
class ThreadPool;
}

namespace awe::core {

/// Numeric contract of the batched interpreter (re-exported from
/// symbolic::EvalMode): kStrict is bit-identical to the scalar path,
/// kFast runs the peephole-fused stream within a small ULP bound.
using symbolic::EvalMode;

namespace native {
class NativeModule;
}

/// Which executable form of the compiled program runs a batch (orthogonal
/// to EvalMode, which is the numeric contract).  kNative selects the AOT
/// machine-code module (DESIGN.md §12) when one is attached; when the
/// attach failed — no compiler, compile error, bad .so — evaluation falls
/// back to the interpreter transparently, so asking for kNative is always
/// safe and never changes which answers are correct.
enum class EvalBackend : std::uint8_t {
  kInterpreter,  ///< batched interpreter over the register program
  kNative,       ///< dlopen'd AOT-compiled kernels (same SoA layout)
};

/// Structure-of-arrays scratch for batched evaluation: `width` points per
/// lane-block, arrays sized field_count * width with lane stride equal to
/// the block's point count.  Built by make_batch_workspace(); one per
/// worker thread keeps the parallel sweep hot path allocation-free.
struct BatchWorkspace {
  std::size_t width = 0;
  std::vector<double> symbol_values;    ///< nsym * width
  std::vector<double> program_outputs;  ///< program output count * width
  std::vector<double> registers;        ///< register count * width
};

struct ModelOptions {
  std::size_t order = 2;
  bool enforce_stability = true;
  bool allow_order_fallback = true;
  /// Also compile the exact symbolic gradients via reverse-mode
  /// differentiation over the compiled DAG (DESIGN.md §14): one backward
  /// sweep per moment root yields dN_k/de for ALL symbols at once, appended
  /// to the same hash-consed graph so the gradient program shares every
  /// primal subterm.  Enables moments_and_gradients() and
  /// moments_and_gradients_batch() — sensitivity information over the
  /// whole symbol range at compiled-evaluation cost.
  bool with_gradients = false;
};

/// How a build RUNS, orthogonal to what it computes (ModelOptions): worker
/// threads for the numeric-partition extraction, and the persistent
/// compiled-model cache.  Every combination yields bit-identical models —
/// parallel extraction writes disjoint slots in a fixed order, and cached
/// loads restore the exact serialized bytes (DESIGN.md §10).
struct BuildOptions {
  /// Workers for the port-moment extraction (the m port RHS columns fan
  /// out against one shared LU factor).  1 = serial (default); 0 = one
  /// per hardware thread.  Ignored when `pool` is supplied.
  std::size_t threads = 1;
  /// Reuse an existing pool across builds instead of spawning one per
  /// call (same pattern as sweep::SweepOptions::pool).  Not owned.
  sweep::ThreadPool* pool = nullptr;
  /// When non-empty: look the model up in the content-addressed on-disk
  /// cache under this directory before building, and store it there after
  /// a cold build.  The directory is created on demand.  See
  /// core/model_cache.hpp for the key derivation and ModelCache for the
  /// in-process LRU layered on top.
  std::string cache_dir;
  /// kNative: after the build (cold or cached), compile/load the native
  /// AOT module for the program — content-addressed .so next to the model
  /// artifact when cache_dir is set, in a temp scratch dir otherwise — and
  /// attach it to the model.  Attach failure is not a build failure: the
  /// model comes back interpreter-only with the degradation recorded in
  /// health::global_counters() (kNativeBackend).  Note a .so is only ever
  /// written when this is kNative, keeping interpreter-run cache
  /// directories byte-identical across machines.
  EvalBackend backend = EvalBackend::kInterpreter;
  /// Incremental partition-level rebuild (DESIGN.md §13): persist per-cell
  /// port-moment blocks under <cache_dir>/blocks (or partition_block_dir
  /// when set) and reuse the blocks of unedited cells on the next build.
  /// The rebuilt model is bit-identical to a cold build either way — the
  /// flag only trades disk for extraction time.  Default off: a plain
  /// cache directory stays exactly one entry per model, byte-comparable
  /// across runs.
  bool incremental = false;
  /// Explicit block-store directory for the incremental path; empty means
  /// derive <cache_dir>/blocks when `incremental` is set.
  std::string partition_block_dir;
  /// When set (requires cache_dir): satisfy a warm cache hit by
  /// mmap-opening the v4 entry in place (CompiledModel::map_file) instead
  /// of stream-parsing it — O(pages touched) instead of O(model size).
  /// Evaluation results are bit-identical either way (asserted by the
  /// mmap-determinism CI job); a v3 or corrupt entry transparently falls
  /// back to the parse-load/quarantine path.
  bool map_model = false;
};

class CompiledModel {
 public:
  /// Build the compiled symbolic model of the transfer from `input_source`
  /// to v(`output_node`), with the named elements treated symbolically.
  static CompiledModel build(const circuit::Netlist& netlist,
                             std::vector<std::string> symbol_elements,
                             const std::string& input_source,
                             circuit::NodeId output_node, const ModelOptions& opts = {},
                             const BuildOptions& build_opts = {});
  static CompiledModel build(const circuit::Netlist& netlist,
                             std::vector<std::string> symbol_elements,
                             const std::string& input_source,
                             const std::string& output_node, const ModelOptions& opts = {},
                             const BuildOptions& build_opts = {});

  std::size_t order() const { return opts_.order; }
  const ModelOptions& options() const { return opts_; }
  /// 2*order — NOT derived from the polynomial side, which view-backed
  /// models parse lazily (see full_sym()).
  std::size_t moment_count() const { return 2 * opts_.order; }
  std::size_t symbol_count() const { return sym_.symbols.size(); }
  /// The full symbolic side (numerator/denominator polynomials included).
  /// For a view-backed model this parses the cold kSymbolics section on
  /// first use (thread-safe, shared across copies); evaluation never needs
  /// it.
  const part::SymbolicMoments& symbolic_moments() const { return full_sym(); }
  std::vector<std::string> symbol_names() const { return sym_.symbol_names(); }

  /// Reusable allocation-free evaluation scratch for the hot path.
  struct Workspace {
    std::vector<double> symbol_values;
    std::vector<double> program_outputs;
    std::vector<double> registers;
    std::vector<double> moments;
  };
  Workspace make_workspace() const;

  /// Numeric moments m_0..m_{2q-1} at the given element values (one per
  /// symbol, in symbolic_moments().symbols order), via the compiled
  /// program.
  std::vector<double> moments_at(std::span<const double> element_values) const;
  /// Allocation-free variant; result lives in ws.moments.
  /// Precondition: `ws` must have been produced by THIS model's
  /// make_workspace() — a workspace sized for a different model is
  /// rejected with std::invalid_argument.
  void moments_at(std::span<const double> element_values, Workspace& ws) const;

  /// Batched structure-of-arrays scratch sized for lane blocks of up to
  /// `width` points.
  BatchWorkspace make_batch_workspace(std::size_t width) const;

  /// Evaluate moments for `count` points at once (count <= ws.width).
  /// Element value i of point p is read from element_values[i*stride + p];
  /// moment k of point p lands in moments_out[k*out_stride + p].  ok[p]
  /// (size count) is set to 0 — and the point's moments to NaN — exactly
  /// where the scalar moments_at() would throw (zero resistance value or
  /// vanishing det(Y0)); in EvalMode::kStrict every other lane is
  /// bit-identical to the scalar path, in EvalMode::kFast it is within the
  /// fused interpreter's ULP bound.  Thread-safe for concurrent callers
  /// with distinct workspaces.
  void moments_batch(std::span<const double> element_values, std::size_t stride,
                     std::size_t count, BatchWorkspace& ws, std::span<double> moments_out,
                     std::size_t out_stride, std::span<unsigned char> ok,
                     EvalMode mode = EvalMode::kStrict,
                     EvalBackend backend = EvalBackend::kInterpreter) const;

  /// Attach the native AOT module for this model's program (compiling it
  /// under `dir` if needed; empty = temp scratch dir).  Returns the
  /// attach outcome: on failure the model simply stays interpreter-only
  /// and kNative requests keep evaluating correctly.  Counters for both
  /// outcomes land in health::global_counters() (DESIGN.md §12).
  Status attach_native(const std::string& dir);
  /// True when a validated native module is attached (kNative will
  /// actually run machine code rather than fall back).
  bool has_native() const { return native_ != nullptr; }

  /// Full evaluation: compiled moments -> Padé -> reduced-order model.
  engine::ReducedOrderModel evaluate(std::span<const double> element_values) const;

  /// Moments plus their exact gradients with respect to the ELEMENT
  /// values (reciprocal transforms chain-ruled).  Requires
  /// ModelOptions::with_gradients at build time.
  struct MomentsAndGradients {
    std::vector<double> moments;              ///< m_0..m_{2q-1}
    std::vector<std::vector<double>> dm;      ///< dm[k][i] = dm_k/d(value_i)
  };
  MomentsAndGradients moments_and_gradients(
      std::span<const double> element_values) const;
  bool has_gradients() const { return grad_program_.has_value(); }

  /// Batched structure-of-arrays scratch sized for the GRADIENT program
  /// (same shape as make_batch_workspace, but with the gradient stream's
  /// larger output block and register file).  Requires with_gradients.
  BatchWorkspace make_gradient_batch_workspace(std::size_t width) const;

  /// Batched moments AND gradients: ONE gradient-program run per lane
  /// block evaluates the primal moments and d(moments)/d(element value)
  /// for every symbol simultaneously (the gradient stream embeds the
  /// primal outputs — DESIGN.md §14).  Same layout contract as
  /// moments_batch for element_values/moments_out/ok; gradient (k, i) of
  /// point p lands at grads_out[(i*moment_count() + k)*grad_stride + p],
  /// chain-ruled to ELEMENT values (reciprocal symbols included) exactly
  /// as moments_and_gradients().  Failed lanes (ok[p] == 0) get NaN
  /// moments and gradients.  In EvalMode::kStrict every lane is
  /// bit-identical to the scalar moments_and_gradients() regardless of
  /// count, thread, or backend.  Requires with_gradients (throws
  /// std::logic_error otherwise).
  void moments_and_gradients_batch(std::span<const double> element_values,
                                   std::size_t stride, std::size_t count,
                                   BatchWorkspace& ws, std::span<double> moments_out,
                                   std::size_t out_stride, std::span<double> grads_out,
                                   std::size_t grad_stride, std::span<unsigned char> ok,
                                   EvalMode mode = EvalMode::kStrict,
                                   EvalBackend backend = EvalBackend::kInterpreter) const;

  /// True when a validated native module is attached for the gradient
  /// program as well (kNative gradient batches run machine code).
  bool has_native_gradients() const { return native_grad_ != nullptr; }

  /// Reference (uncompiled) moment evaluation — term-by-term polynomial
  /// evaluation; used by tests and the compilation ablation bench.
  std::vector<double> moments_uncompiled(std::span<const double> element_values) const;

  // -- closed forms (first-order analysis, paper eqn (14)) --------------
  /// DC gain A_0 = m_0 as an explicit rational function of the symbols.
  symbolic::RationalFunction dc_gain_expression() const;
  /// First-order dominant pole p_1 = m_0 / m_1.
  symbolic::RationalFunction first_order_pole_expression() const;

  /// Symbolic Padé denominator coefficients [1, b_1, .., b_q] as rational
  /// functions of the symbols (the paper's factorable symbolic forms;
  /// orders 1 and 2 supported, higher orders throw — by then the
  /// closed forms are no longer "algebraically compact").
  std::vector<symbolic::RationalFunction> symbolic_denominator() const;
  /// Symbolic Padé numerator coefficients [a_0, .., a_{q-1}], same orders.
  std::vector<symbolic::RationalFunction> symbolic_numerator() const;

  // -- program statistics (the "reduced set of operations") -------------
  std::size_t instruction_count() const { return program_.instruction_count(); }
  std::size_t fused_instruction_count() const { return program_.fused_instruction_count(); }
  std::size_t register_count() const { return program_.register_count(); }
  /// Strict-stream length of the reverse-mode gradient program (0 when the
  /// model was built without gradients) — the work-rate normalizer for the
  /// gradient-sweep bench rows.
  std::size_t gradient_instruction_count() const {
    return grad_program_ ? grad_program_->instruction_count() : 0;
  }
  std::size_t port_count() const { return sym_.port_count; }

  /// Export the compiled moment program as standalone C source:
  ///   void <name>(const double* symbols, double* out)
  /// with out = [N_0 .. N_{2q-1}, det(Y0)]; moment k is out[k]/out[2q]^{k+1}.
  /// Symbol inputs are the *internal* variables (resistor symbols enter as
  /// conductances — see SymbolSpec::reciprocal).
  std::string export_c_source(std::string_view function_name) const;

  /// Binary serialization of the COMPLETE model state — ModelOptions, the
  /// symbolic moments (symbol specs + numerator/denominator polynomials)
  /// and the compiled program(s) — so a loaded model is fully functional:
  /// moments_at/moments_batch/evaluate and the closed forms all work and
  /// are bit-identical to the freshly built model.  The byte stream is
  /// versioned and deterministic: save(load(save(m))) == save(m).
  void save(std::ostream& os) const;
  /// Throws std::runtime_error on truncated input or a format version this
  /// build does not understand, and FailError(kCacheCorrupt) when the
  /// payload checksum does not match (bit damage on otherwise well-formed
  /// bytes).  The cache layer turns either into quarantine + miss.
  /// Understands both the current v4 blob (read whole, checksum verified)
  /// and the legacy v3 stream.
  static CompiledModel load(std::istream& is);

  /// Serialize in the legacy v3 stream layout (kept for the
  /// cross-version fixtures and the v3-vs-v4 open benchmark; save()
  /// always writes v4).
  void save_legacy_v3(std::ostream& os) const;

  /// Open a v4 blob IN PLACE: structural validation + program views over
  /// the region, no stream parsing, no per-instruction allocation.  The
  /// blob is pinned by the returned model (and all its copies) via
  /// shared_ptr.  `verify_checksum` additionally recomputes the payload
  /// FNV — O(model size), publish/audit paths only.  Throws like load(),
  /// plus FailError(kModelFormat) for endianness/alignment guard trips.
  static CompiledModel from_blob(std::shared_ptr<const ModelBlob> blob,
                                 bool verify_checksum = false);
  /// mmap(MAP_PRIVATE) `path` and from_blob() it: the zero-copy open path
  /// (O(pages touched)).  Same validation/throw contract as from_blob.
  static CompiledModel map_file(const std::filesystem::path& path,
                                bool verify_checksum = false);
  /// True when this model executes out of an external region (mmap/shm/
  /// heap blob) rather than owned vectors.
  bool view_backed() const { return blob_ != nullptr; }
  /// Region provenance for health/audit output ("heap", file path, or
  /// "shm:/name"); empty for built/parsed models.
  std::string blob_origin() const { return blob_ ? blob_->origin() : std::string(); }

 private:
  /// Header-less body shared by save_legacy_v3/load: the v3 checksummed
  /// payload.
  void save_payload(std::ostream& os) const;
  static CompiledModel load_payload(std::istream& is);
  static CompiledModel load_v4(std::istream& is);

  /// Serialize the kSymbolics section payload ({u64 nnum, polynomial[nnum],
  /// polynomial det_y0}); view-backed models copy the raw section instead
  /// of parse+reserialize, preserving byte determinism for free.
  std::string symbolics_payload() const;

  /// Lazily-parsed polynomial side for view-backed models.  Shared across
  /// copies of the model: the cold section is parsed at most once.
  struct LazySymbolics {
    std::mutex mu;
    bool parsed = false;
    part::SymbolicMoments full;
  };
  const part::SymbolicMoments& full_sym() const;

  CompiledModel(part::SymbolicMoments sym, symbolic::CompiledProgram program,
                std::optional<symbolic::CompiledProgram> grad_program, ModelOptions opts)
      : sym_(std::move(sym)),
        program_(std::move(program)),
        grad_program_(std::move(grad_program)),
        opts_(opts) {}

  part::SymbolicMoments sym_;
  symbolic::CompiledProgram program_;  // outputs: [N_0 .. N_{2q-1}, det(Y0)]
  /// Reverse-mode gradient program (DESIGN.md §14).  Outputs embed the
  /// primal block first, then one adjoint block per symbol:
  ///   [N_0 .. N_{2q-1}, det,
  ///    per symbol i: dN_0/ds_i .. dN_{2q-1}/ds_i, d det/ds_i]
  /// over the INTERNAL symbol variables s (resistors enter as
  /// conductances; the element-value chain rule is applied at evaluation
  /// time).  One run yields moments and all gradients.
  std::optional<symbolic::CompiledProgram> grad_program_;
  /// AOT module for program_, when attach_native succeeded (shared: copies
  /// of the model share one dlopen handle).  Never required for
  /// correctness — every kNative call path falls back to the interpreter
  /// when this is null.
  std::shared_ptr<const native::NativeModule> native_;
  /// AOT module for grad_program_, attached alongside native_ when the
  /// model carries gradients.  Same fallback contract.
  std::shared_ptr<const native::NativeModule> native_grad_;
  ModelOptions opts_;
  /// v4 region this model executes out of (null for built/parsed models).
  /// Keeps the mapped/shared pages alive for as long as any copy of the
  /// model exists — the hot-swap retirement contract of SharedModelStore.
  std::shared_ptr<const ModelBlob> blob_;
  /// Lazy polynomial side + raw section for view-backed models.
  std::shared_ptr<LazySymbolics> lazy_;
  std::span<const std::byte> symbolics_raw_;  ///< into *blob_
  /// fnv1a64(program.save()) carried in the v4 meta: lets attach_native
  /// content-address the .so without re-serializing the mapped program.
  /// 0 = unknown (owned models compute it on demand).
  std::uint64_t program_checksum_ = 0;
  std::uint64_t gradient_checksum_ = 0;
};

/// Several outputs compiled from ONE partition: the numeric reduction,
/// det(Y0)/adjugate and the cross-moment CSE are all shared, so modeling
/// e.g. both the direct and the cross-talk end of a coupled-line pair
/// costs barely more than one of them (the hash-consed DAG dedupes the
/// common subexpressions across outputs automatically).
class MultiOutputModel {
 public:
  /// `build_opts`: threads/pool parallelize the partition extraction;
  /// cache_dir is ignored here (multi-output models are not cached —
  /// they're built once per composite analysis, not per sweep).
  static MultiOutputModel build(const circuit::Netlist& netlist,
                                std::vector<std::string> symbol_elements,
                                const std::string& input_source,
                                std::vector<circuit::NodeId> output_nodes,
                                const ModelOptions& opts = {},
                                const BuildOptions& build_opts = {});

  std::size_t output_count() const { return sym_.outputs.size(); }
  circuit::NodeId output_node(std::size_t o) const { return sym_.outputs.at(o); }
  std::size_t order() const { return opts_.order; }
  const ModelOptions& options() const { return opts_; }
  std::size_t moment_count() const { return 2 * opts_.order; }
  std::size_t symbol_count() const { return sym_.symbols.size(); }
  const part::MultiSymbolicMoments& symbolic_moments() const { return sym_; }
  std::size_t instruction_count() const { return program_.instruction_count(); }
  std::size_t port_count() const { return sym_.port_count; }
  std::vector<std::string> symbol_names() const;

  /// Moments of output `o` at the given element values.
  std::vector<double> moments_at(std::size_t o, std::span<const double> element_values) const;
  /// Reduced-order model of output `o`.
  engine::ReducedOrderModel evaluate(std::size_t o,
                                     std::span<const double> element_values) const;

  /// Batched scratch for lane blocks of up to `width` points.
  BatchWorkspace make_batch_workspace(std::size_t width) const;

  /// Batched evaluation of ALL outputs: one shared program run per lane
  /// block.  Same layout contract as CompiledModel::moments_batch, except
  /// moment k of output o for point p lands at
  /// moments_out[(o*moment_count() + k)*out_stride + p].
  /// `backend` is accepted for signature parity with CompiledModel but
  /// multi-output programs are not AOT-compiled (they are built once per
  /// composite analysis, not per sweep) — kNative falls back to the
  /// interpreter, which is the documented contract of the backend anyway.
  void moments_batch(std::span<const double> element_values, std::size_t stride,
                     std::size_t count, BatchWorkspace& ws, std::span<double> moments_out,
                     std::size_t out_stride, std::span<unsigned char> ok,
                     EvalMode mode = EvalMode::kStrict,
                     EvalBackend backend = EvalBackend::kInterpreter) const;

 private:
  MultiOutputModel(part::MultiSymbolicMoments sym, symbolic::CompiledProgram program,
                   ModelOptions opts)
      : sym_(std::move(sym)), program_(std::move(program)), opts_(opts) {}

  part::MultiSymbolicMoments sym_;
  symbolic::CompiledProgram program_;  // outputs: [o0: N_0..N_{2q-1}]... , det(Y0)
  ModelOptions opts_;
};

/// Automatic symbolic-element selection (paper §2.3): run AWEsensitivity
/// and return the `how_many` differentiable elements with the largest
/// normalized pole sensitivities.
std::vector<std::string> select_symbols(const circuit::Netlist& netlist,
                                        const std::string& input_source,
                                        circuit::NodeId output_node, std::size_t order,
                                        std::size_t how_many);

}  // namespace awe::core
