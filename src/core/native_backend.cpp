#include "core/native_backend.hpp"

#include <dlfcn.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "health/failpoints.hpp"
#include "health/report.hpp"

namespace awe::core::native {

namespace fs = std::filesystem;

namespace {

std::uint64_t fnv1a(const std::string& bytes) {
  std::uint64_t h = 1469598103934665603ull;
  for (const unsigned char c : bytes) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

std::string hex16(std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%016llx", static_cast<unsigned long long>(v));
  return buf;
}

/// Single-quote `s` for /bin/sh (cache dirs can contain spaces).
std::string sh_quote(const std::string& s) {
  std::string q = "'";
  for (const char c : s) {
    if (c == '\'')
      q += "'\\''";
    else
      q += c;
  }
  q += "'";
  return q;
}

bool is_executable(const std::string& path) {
  return ::access(path.c_str(), X_OK) == 0;
}

/// Resolve a compiler candidate: a path with '/' must itself be
/// executable; a bare name is searched on PATH.
bool resolvable(const std::string& cand) {
  if (cand.empty()) return false;
  if (cand.find('/') != std::string::npos) return is_executable(cand);
  const char* path_env = std::getenv("PATH");
  if (!path_env) return false;
  const std::string path(path_env);
  std::size_t start = 0;
  while (start <= path.size()) {
    std::size_t colon = path.find(':', start);
    if (colon == std::string::npos) colon = path.size();
    const std::string entry = path.substr(start, colon - start);
    if (!entry.empty() && is_executable(entry + "/" + cand)) return true;
    start = colon + 1;
  }
  return false;
}

/// Scratch module directory for builds with no cache_dir: content
/// addressing makes one shared directory safe across processes.
std::string default_scratch_dir() {
  std::error_code ec;
  fs::path tmp = fs::temp_directory_path(ec);
  if (ec) tmp = "/tmp";
  return (tmp / "awe_native_cache").string();
}

/// Run `cmd` under sh with stderr captured to `log_path`; on failure
/// return the first chunk of the log as a diagnostic.
bool run_command(const std::string& cmd, const std::string& log_path,
                 std::string* diagnostic) {
  const int rc = std::system((cmd + " 2> " + sh_quote(log_path)).c_str());
  if (rc == 0) return true;
  if (diagnostic) {
    std::ifstream log(log_path);
    char buf[512] = {};
    log.read(buf, sizeof buf - 1);
    *diagnostic = buf;
    // First line is enough to identify the error in a Status message.
    const std::size_t nl = diagnostic->find('\n');
    if (nl != std::string::npos) diagnostic->resize(nl);
  }
  return false;
}

}  // namespace

namespace detail {

std::shared_ptr<NativeModule> open_and_validate(const std::string& path,
                                                std::uint64_t expect_checksum,
                                                std::size_t expect_inputs,
                                                std::size_t expect_outputs,
                                                std::string* err) {
  void* handle = ::dlopen(path.c_str(), RTLD_NOW | RTLD_LOCAL);
  if (!handle) {
    const char* why = ::dlerror();
    *err = std::string("dlopen failed: ") + (why ? why : "unknown error");
    return nullptr;
  }
  auto sym = [&](const char* name) { return ::dlsym(handle, name); };
  using MetaFn = unsigned long (*)(void);
  using ChecksumFn = unsigned long long (*)(void);
  const auto abi_fn = reinterpret_cast<MetaFn>(sym("awe_abi_version"));
  const auto checksum_fn = reinterpret_cast<ChecksumFn>(sym("awe_program_checksum"));
  const auto inputs_fn = reinterpret_cast<MetaFn>(sym("awe_input_count"));
  const auto outputs_fn = reinterpret_cast<MetaFn>(sym("awe_output_count"));
  const auto strict_fn =
      reinterpret_cast<NativeModule::BatchFn>(sym("awe_run_batch_strict"));
  const auto fast_fn = reinterpret_cast<NativeModule::BatchFn>(sym("awe_run_batch_fast"));
  auto reject = [&](const std::string& why) -> std::shared_ptr<NativeModule> {
    ::dlclose(handle);
    *err = why;
    return nullptr;
  };
  if (!abi_fn || !checksum_fn || !inputs_fn || !outputs_fn || !strict_fn || !fast_fn)
    return reject("module is missing a required awe_* symbol");
  if (abi_fn() != kAbiVersion)
    return reject("ABI version mismatch: module has " + std::to_string(abi_fn()) +
                  ", expected " + std::to_string(kAbiVersion));
  if (checksum_fn() != expect_checksum)
    return reject("program checksum mismatch: module was compiled from a different "
                  "program (have " +
                  hex16(checksum_fn()) + ", expected " + hex16(expect_checksum) + ")");
  if (inputs_fn() != expect_inputs || outputs_fn() != expect_outputs)
    return reject("input/output arity mismatch");

  auto m = std::shared_ptr<NativeModule>(new NativeModule());
  m->handle_ = handle;
  m->strict_fn_ = strict_fn;
  m->fast_fn_ = fast_fn;
  m->input_count_ = expect_inputs;
  m->output_count_ = expect_outputs;
  m->checksum_ = expect_checksum;
  m->path_ = path;
  return m;
}

}  // namespace detail

using detail::open_and_validate;

std::uint64_t program_checksum(const symbolic::CompiledProgram& program) {
  std::ostringstream os;
  program.save(os);
  return fnv1a(os.str());
}

std::string module_path(const std::string& dir, std::uint64_t checksum) {
  return dir + "/native_" + hex16(checksum) + ".so";
}

std::string find_compiler() {
  // AWE_CC is an absolute override: a value that does not resolve DISABLES
  // the backend (this is how CI simulates a machine without a toolchain).
  if (const char* awe_cc = std::getenv("AWE_CC"))
    return resolvable(awe_cc) ? std::string(awe_cc) : std::string();
  if (const char* cc = std::getenv("CC"))
    if (resolvable(cc)) return cc;
  for (const char* cand : {"cc", "gcc", "clang"})
    if (resolvable(cand)) return cand;
  return {};
}

NativeModule::~NativeModule() {
  if (handle_) ::dlclose(handle_);
}

void NativeModule::run_batch(std::span<const double> inputs, std::span<double> outputs,
                             std::size_t count, symbolic::EvalMode mode) const {
  if (inputs.size() < input_count_ * count || outputs.size() < output_count_ * count)
    throw std::invalid_argument("NativeModule::run_batch: span too small");
  const BatchFn fn = mode == symbolic::EvalMode::kFast ? fast_fn_ : strict_fn_;
  fn(inputs.data(), outputs.data(), static_cast<unsigned long>(count));
}

std::shared_ptr<const NativeModule> load_or_compile(
    const symbolic::CompiledProgram& program, const std::string& dir,
    health::Status* why, std::optional<std::uint64_t> known_checksum) {
  namespace failpoints = health::failpoints;
  health::Status local;
  if (!why) why = &local;

  auto fallback = [&](FailClass c, std::string msg) -> std::shared_ptr<const NativeModule> {
    auto& g = health::global_counters();
    g.native_fallbacks.fetch_add(1, std::memory_order_relaxed);
    g.native_fail_counts[static_cast<std::size_t>(c)].fetch_add(
        1, std::memory_order_relaxed);
    *why = health::Status::failure(c, std::move(msg));
    return nullptr;
  };
  auto attached = [&](std::shared_ptr<NativeModule> m) {
    health::global_counters().native_compiled.fetch_add(1, std::memory_order_relaxed);
    *why = health::Status::success();
    return std::shared_ptr<const NativeModule>(std::move(m));
  };

  const std::uint64_t checksum =
      known_checksum ? *known_checksum : program_checksum(program);
  const std::string d = dir.empty() ? default_scratch_dir() : dir;
  std::error_code ec;
  fs::create_directories(d, ec);
  if (ec)
    return fallback(FailClass::kNativeBackend,
                    "cannot create module directory " + d + ": " + ec.message());
  const std::string so_path = module_path(d, checksum);

  std::string err;
  if (fs::exists(so_path, ec) && !ec) {
    if (failpoints::fires(failpoints::sites::kNativeDlopen))
      return fallback(FailClass::kInjectedFault,
                      "injected fault at failpoint 'native.dlopen'");
    auto m = open_and_validate(so_path, checksum, program.input_count(),
                               program.output_count(), &err);
    if (m) return attached(std::move(m));
    // Damaged or stale module: quarantine the evidence (mirroring the
    // model cache's .bad convention) and fall through to a recompile.
    fs::rename(so_path, so_path + ".bad", ec);
  }

  if (failpoints::fires(failpoints::sites::kNativeCompile))
    return fallback(FailClass::kInjectedFault,
                    "injected fault at failpoint 'native.compile'");

  const std::string cc = find_compiler();
  if (cc.empty())
    return fallback(FailClass::kNativeBackend, "no C compiler available");

  // Unique intermediate names (pid suffix) so concurrent compilers of the
  // same program never clobber each other; the final rename is atomic and
  // both produce byte-equivalent modules anyway.
  const std::string base = so_path + "." + std::to_string(::getpid());
  const std::string strict_c = base + ".strict.c";
  const std::string fast_c = base + ".fast.c";
  const std::string strict_o = base + ".strict.o";
  const std::string fast_o = base + ".fast.o";
  const std::string so_tmp = base + ".so.tmp";
  const std::string log = base + ".log";
  auto cleanup = [&] {
    std::error_code ignore;
    for (const std::string& f : {strict_c, fast_c, strict_o, fast_o, so_tmp, log})
      fs::remove(f, ignore);
  };

  {
    std::ofstream strict_src(strict_c);
    strict_src << "/* AWEsymbolic native module " << hex16(checksum)
               << " - generated code; do not edit. */\n"
               << "unsigned long awe_abi_version(void) { return " << kAbiVersion
               << "ul; }\n"
               << "unsigned long long awe_program_checksum(void) { return 0x"
               << hex16(checksum) << "ull; }\n"
               << "unsigned long awe_input_count(void) { return "
               << program.input_count() << "ul; }\n"
               << "unsigned long awe_output_count(void) { return "
               << program.output_count() << "ul; }\n"
               << program.to_c_source_batch("awe_run_batch_strict",
                                            symbolic::EvalMode::kStrict);
    std::ofstream fast_src(fast_c);
    fast_src << program.to_c_source_batch("awe_run_batch_fast",
                                          symbolic::EvalMode::kFast);
    if (!strict_src || !fast_src) {
      cleanup();
      return fallback(FailClass::kNativeBackend, "cannot write kernel source under " + d);
    }
  }

  // The strict TU MUST disable FP contraction: the bit-identity contract
  // requires exactly one rounding per emitted statement, and compilers
  // otherwise fuse mul+add across statements at -O2.  The fast TU enables
  // it — the same license the fused interpreter's TU is built with.
  std::string diag;
  const bool compiled =
      run_command(sh_quote(cc) + " -O2 -fPIC -ffp-contract=off -c " +
                      sh_quote(strict_c) + " -o " + sh_quote(strict_o),
                  log, &diag) &&
      run_command(sh_quote(cc) + " -O2 -fPIC -ffp-contract=fast -c " +
                      sh_quote(fast_c) + " -o " + sh_quote(fast_o),
                  log, &diag) &&
      run_command(sh_quote(cc) + " -shared -o " + sh_quote(so_tmp) + " " +
                      sh_quote(strict_o) + " " + sh_quote(fast_o),
                  log, &diag);
  if (!compiled) {
    cleanup();
    return fallback(FailClass::kNativeBackend,
                    "native compile failed (" + cc + "): " + diag);
  }
  fs::rename(so_tmp, so_path, ec);
  if (ec) {
    cleanup();
    return fallback(FailClass::kNativeBackend,
                    "cannot install module " + so_path + ": " + ec.message());
  }
  cleanup();

  if (failpoints::fires(failpoints::sites::kNativeDlopen))
    return fallback(FailClass::kInjectedFault,
                    "injected fault at failpoint 'native.dlopen'");
  auto m = open_and_validate(so_path, checksum, program.input_count(),
                             program.output_count(), &err);
  if (!m)
    return fallback(FailClass::kNativeBackend,
                    "freshly compiled module failed validation: " + err);
  return attached(std::move(m));
}

}  // namespace awe::core::native
