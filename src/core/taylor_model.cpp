#include "core/taylor_model.hpp"

#include <stdexcept>

#include "awe/moments.hpp"
#include "awe/sensitivity.hpp"

namespace awe::core {

TaylorMomentModel TaylorMomentModel::build(const circuit::Netlist& netlist,
                                           std::vector<std::string> symbol_elements,
                                           const std::string& input_source,
                                           circuit::NodeId output_node,
                                           const Options& opts) {
  if (opts.order == 0) throw std::invalid_argument("TaylorMomentModel: order must be >= 1");
  if (symbol_elements.empty())
    throw std::invalid_argument("TaylorMomentModel: need at least one symbol");

  TaylorMomentModel model;
  model.opts_ = opts;
  std::vector<std::size_t> indices;
  for (const auto& name : symbol_elements) {
    const auto idx = netlist.find_element(name);
    if (!idx) throw std::invalid_argument("TaylorMomentModel: unknown element '" + name + "'");
    indices.push_back(*idx);
    model.names_.push_back(name);
    model.nominal_.push_back(netlist.elements()[*idx].value);
  }

  const std::size_t count = 2 * opts.order;
  engine::MomentGenerator gen(netlist);
  model.m0_ = gen.transfer_moments(input_source, output_node, count);
  const auto ms = engine::moment_sensitivities(gen, input_source, output_node, count);
  model.dm_.assign(count, std::vector<double>(indices.size(), 0.0));
  for (std::size_t k = 0; k < count; ++k)
    for (std::size_t i = 0; i < indices.size(); ++i) {
      if (!ms.differentiable[indices[i]])
        throw std::invalid_argument("TaylorMomentModel: element '" + model.names_[i] +
                                    "' has no differentiable value");
      model.dm_[k][i] = ms.dm[k][indices[i]];
    }
  return model;
}

std::vector<double> TaylorMomentModel::moments_at(
    std::span<const double> element_values) const {
  if (element_values.size() != nominal_.size())
    throw std::invalid_argument("TaylorMomentModel: wrong number of element values");
  std::vector<double> m = m0_;
  for (std::size_t k = 0; k < m.size(); ++k)
    for (std::size_t i = 0; i < nominal_.size(); ++i)
      m[k] += dm_[k][i] * (element_values[i] - nominal_[i]);
  return m;
}

engine::ReducedOrderModel TaylorMomentModel::evaluate(
    std::span<const double> element_values) const {
  engine::RomOptions ropts;
  ropts.order = opts_.order;
  ropts.enforce_stability = opts_.enforce_stability;
  return engine::ReducedOrderModel::from_moments(moments_at(element_values), ropts);
}

}  // namespace awe::core
