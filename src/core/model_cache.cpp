#include "core/model_cache.hpp"

#include <unistd.h>

#include <atomic>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <unordered_set>
#include <utility>

#include "circuit/content_hash.hpp"
#include "core/model_format.hpp"
#include "health/failpoints.hpp"
#include "health/report.hpp"

namespace awe::core {

namespace {

// -- canonical request serialization ------------------------------------
//
// Hashing lives in circuit/content_hash.hpp (shared with the partition
// block store); this file owns only the whole-model request encoding.
// The encoding is compact: element terminals are node IDs, not repeated
// name strings — the node-name table, encoded once in id order, pins
// down what each id means.

using enc::put_f64;
using enc::put_str;
using enc::put_u32;
using enc::put_u64;
using enc::put_u8;

std::atomic<std::uint64_t> g_tmp_counter{0};

/// Quarantine a damaged entry to "<path>.bad" and count it.  Best-effort:
/// a quarantine that cannot rename still surfaces as a miss, never as an
/// exception.
void quarantine_entry(const std::string& path, bool* corrupt_quarantined) {
  std::error_code ec;
  std::filesystem::remove(ModelCache::quarantine_path(path), ec);
  std::filesystem::rename(path, ModelCache::quarantine_path(path), ec);
  if (ec) std::filesystem::remove(path, ec);
  health::global_counters().cache_corrupt_quarantined.fetch_add(
      1, std::memory_order_relaxed);
  if (corrupt_quarantined) *corrupt_quarantined = true;
}

}  // namespace

std::string model_cache_key(const circuit::Netlist& netlist,
                            std::span<const std::string> symbol_elements,
                            const std::string& input_source,
                            std::span<const circuit::NodeId> output_nodes,
                            const ModelOptions& opts) {
  // Values of symbolic elements and of the input source never enter the
  // compiled model (runtime inputs / unit-normalized excitation), so they
  // are excluded from the encoding: editing them must still hit.
  std::unordered_set<std::string> value_excluded(symbol_elements.begin(),
                                                 symbol_elements.end());
  value_excluded.insert(input_source);

  std::string buf;
  buf.reserve(256 + 48 * (netlist.num_nodes() + netlist.elements().size()));
  put_u64(buf, kModelFormatVersion);

  // Node NAMES in id order (ids are an interning artifact; two decks that
  // intern the same names in the same order are the same circuit).
  put_u64(buf, netlist.num_nodes());
  for (circuit::NodeId id = 0; id <= netlist.num_nodes(); ++id)
    put_str(buf, netlist.node_name(id));

  put_u64(buf, netlist.elements().size());
  for (const circuit::Element& e : netlist.elements()) {
    // Terminals by node id — the name table above fixes their meaning.
    // Control fields appear only for the kinds that read them; the kind
    // byte leads, so the conditional layout stays self-describing.
    put_u8(buf, static_cast<std::uint8_t>(e.kind));
    put_str(buf, e.name);
    put_u32(buf, e.pos);
    put_u32(buf, e.neg);
    switch (e.kind) {
      case circuit::ElementKind::kVccs:
      case circuit::ElementKind::kVcvs:
        put_u32(buf, e.ctrl_pos);
        put_u32(buf, e.ctrl_neg);
        break;
      case circuit::ElementKind::kCccs:
      case circuit::ElementKind::kCcvs:
        put_str(buf, e.ctrl_source);
        break;
      case circuit::ElementKind::kMutual:
        put_str(buf, e.ctrl_source);
        put_str(buf, e.ctrl_source2);
        break;
      default:
        break;
    }
    const bool value_matters = value_excluded.find(e.name) == value_excluded.end();
    put_u8(buf, value_matters ? 1 : 0);
    if (value_matters) put_f64(buf, e.value);
  }

  // Symbol order is model-visible (it fixes the input layout), so the set
  // is encoded in caller order, not sorted.
  put_u64(buf, symbol_elements.size());
  for (const std::string& s : symbol_elements) put_str(buf, s);
  put_str(buf, input_source);
  put_u64(buf, output_nodes.size());
  for (circuit::NodeId out : output_nodes) put_u32(buf, out);

  put_u64(buf, opts.order);
  put_u8(buf, opts.enforce_stability ? 1 : 0);
  put_u8(buf, opts.allow_order_fallback ? 1 : 0);
  put_u8(buf, opts.with_gradients ? 1 : 0);

  return enc::digest_hex(buf);
}

ModelCache::ModelCache(std::string cache_dir, std::size_t max_entries)
    : dir_(std::move(cache_dir)), max_entries_(max_entries) {}

std::string ModelCache::entry_path(const std::string& dir, const std::string& key) {
  return (std::filesystem::path(dir) / (key + ".awemodel")).string();
}

std::optional<CompiledModel> ModelCache::load_file(const std::string& path,
                                                   bool* corrupt_quarantined) {
  namespace fp = health::failpoints;
  if (corrupt_quarantined) *corrupt_quarantined = false;
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  // Injection site: treat a perfectly good entry as corrupt, driving the
  // quarantine path below without having to damage bytes first.
  bool corrupt = fp::fires(fp::sites::kCacheLoadCorrupt);
  std::optional<CompiledModel> model;
  if (!corrupt) {
    try {
      model = CompiledModel::load(in);
    } catch (const std::exception&) {
      corrupt = true;
    }
  }
  if (!corrupt) return model;
  in.close();
  // Corrupt/truncated/foreign-version entry: quarantine it to <path>.bad
  // (evidence preserved, never re-probed) and report a miss; the cold
  // build that follows stores a fresh entry at the original path.
  quarantine_entry(path, corrupt_quarantined);
  return std::nullopt;
}

std::optional<CompiledModel> ModelCache::map_file(const std::string& path,
                                                  bool* corrupt_quarantined) {
  namespace fp = health::failpoints;
  if (corrupt_quarantined) *corrupt_quarantined = false;
  // Peek magic + version only; anything that is not a well-formed v4
  // header falls through to the parsing loader, which owns the legacy-v3
  // path and the quarantine policy for malformed files.
  char head[8] = {};
  {
    std::ifstream in(path, std::ios::binary);
    if (!in) return std::nullopt;
    in.read(head, sizeof(head));
    if (static_cast<std::size_t>(in.gcount()) != sizeof(head) ||
        std::memcmp(head, kModelMagic, sizeof(kModelMagic)) != 0)
      return load_file(path, corrupt_quarantined);
  }
  std::uint32_t version = 0;
  std::memcpy(&version, head + 4, sizeof(version));
  if (version != kModelFormatVersion) return load_file(path, corrupt_quarantined);
  if (!fp::fires(fp::sites::kCacheLoadCorrupt)) {
    try {
      return CompiledModel::map_file(path);
    } catch (const std::exception&) {
      // fall through to quarantine
    }
  }
  quarantine_entry(path, corrupt_quarantined);
  return std::nullopt;
}

void ModelCache::store_file(const std::string& dir, const std::string& key,
                            const CompiledModel& model) {
  namespace fs = std::filesystem;
  namespace fp = health::failpoints;
  fs::create_directories(dir);
  const std::string final_path = entry_path(dir, key);
  // Injection site: a writer that died mid-store WITHOUT the atomic
  // tmp+rename discipline, leaving a torn entry at the final path.  The
  // next load must quarantine it, never throw.
  if (fp::fires(fp::sites::kCacheStoreCrash)) {
    std::ostringstream bytes;
    model.save(bytes);
    const std::string s = bytes.str();
    std::ofstream out(final_path, std::ios::binary | std::ios::trunc);
    out.write(s.data(), static_cast<std::streamsize>(s.size() / 2));
    return;
  }
  // Unique temp name per process+store, atomically renamed into place: a
  // reader never opens a half-written entry, and the last of several
  // racing builders wins with an identical byte stream anyway.
  std::ostringstream tmp_name;
  tmp_name << final_path << ".tmp." << ::getpid() << "."
           << g_tmp_counter.fetch_add(1, std::memory_order_relaxed);
  const std::string tmp_path = tmp_name.str();
  {
    std::ofstream out(tmp_path, std::ios::binary | std::ios::trunc);
    if (!out) throw std::runtime_error("ModelCache: cannot write " + tmp_path);
    model.save(out);
    if (!out) throw std::runtime_error("ModelCache: write failed for " + tmp_path);
  }
  std::error_code ec;
  fs::rename(tmp_path, final_path, ec);
  if (ec) {
    fs::remove(tmp_path, ec);
    throw std::runtime_error("ModelCache: rename into " + final_path + " failed");
  }
  // Injection sites: post-rename media damage (truncation, a flipped bit)
  // that the load-side validation must catch and quarantine.
  if (fp::fires(fp::sites::kCacheStoreTruncate)) {
    const auto size = fs::file_size(final_path, ec);
    if (!ec) fs::resize_file(final_path, size / 2, ec);
  }
  if (fp::fires(fp::sites::kCacheStoreBitflip)) {
    std::fstream f(final_path, std::ios::binary | std::ios::in | std::ios::out);
    const auto size = fs::file_size(final_path, ec);
    if (f && !ec && size > 0) {
      const auto pos = static_cast<std::streamoff>(size / 2);
      f.seekg(pos);
      char byte = 0;
      f.get(byte);
      f.seekp(pos);
      f.put(static_cast<char>(byte ^ 0x10));
    }
  }
}

std::shared_ptr<const CompiledModel> ModelCache::memory_get(const std::string& key) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it == index_.end()) return nullptr;
  lru_.splice(lru_.begin(), lru_, it->second);  // bump to MRU
  ++stats_.memory_hits;
  return it->second->second;
}

void ModelCache::memory_put(const std::string& key,
                            std::shared_ptr<const CompiledModel> model) {
  if (max_entries_ == 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it != index_.end()) {
    lru_.splice(lru_.begin(), lru_, it->second);
    it->second->second = std::move(model);
    return;
  }
  lru_.emplace_front(key, std::move(model));
  index_.emplace(key, lru_.begin());
  while (lru_.size() > max_entries_) {
    index_.erase(lru_.back().first);
    lru_.pop_back();
    ++stats_.evictions;
  }
}

std::shared_ptr<const CompiledModel> ModelCache::get_or_build(
    const circuit::Netlist& netlist, std::vector<std::string> symbol_elements,
    const std::string& input_source, const std::string& output_node,
    const ModelOptions& opts, const BuildOptions& build_opts) {
  const auto out_id = netlist.find_node(output_node);
  if (!out_id)
    throw std::invalid_argument("ModelCache: unknown output node '" + output_node + "'");
  const circuit::NodeId outs[] = {*out_id};
  const std::string key =
      model_cache_key(netlist, symbol_elements, input_source, outs, opts);

  if (auto hit = memory_get(key)) return hit;

  bool quarantined = false;
  if (!dir_.empty()) {
    const std::string path = entry_path(dir_, key);
    auto loaded = build_opts.map_model ? map_file(path, &quarantined)
                                       : load_file(path, &quarantined);
    if (loaded) {
      if (build_opts.backend == EvalBackend::kNative) (void)loaded->attach_native(dir_);
      auto model = std::make_shared<const CompiledModel>(std::move(*loaded));
      {
        std::lock_guard<std::mutex> lock(mu_);
        ++stats_.disk_hits;
      }
      memory_put(key, model);
      return model;
    }
    if (quarantined) {
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.corrupt_quarantined;
    }
  }

  // Cold build runs OUTSIDE the lock (it can take seconds); concurrent
  // misses on one key build redundantly but harmlessly — the results are
  // byte-identical and the store is atomic.
  BuildOptions bo = build_opts;
  // The per-cell block store rides inside this cache's directory; resolve
  // it before cache_dir is cleared below.
  if (bo.incremental && bo.partition_block_dir.empty() && !dir_.empty())
    bo.partition_block_dir =
        (std::filesystem::path(dir_) / "blocks").string();
  bo.cache_dir.clear();  // this cache is the cache layer; no recursion
  bo.backend = EvalBackend::kInterpreter;  // attached below, next to OUR entry
  CompiledModel built = CompiledModel::build(netlist, std::move(symbol_elements),
                                             input_source, *out_id, opts, bo);
  if (!dir_.empty()) store_file(dir_, key, built);
  // The .so lands beside the .awemodel entry, content-addressed by program
  // checksum (a scratch directory for memory-only caches).  Only requested
  // builds ever emit one, keeping interpreter cache dirs byte-comparable.
  if (build_opts.backend == EvalBackend::kNative) (void)built.attach_native(dir_);
  auto model = std::make_shared<const CompiledModel>(std::move(built));
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.misses;
    if (quarantined) ++stats_.rebuilds_after_quarantine;
  }
  if (quarantined)
    health::global_counters().cache_rebuilds.fetch_add(1, std::memory_order_relaxed);
  memory_put(key, model);
  return model;
}

ModelCache::Stats ModelCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

std::size_t ModelCache::memory_entries() const {
  std::lock_guard<std::mutex> lock(mu_);
  return lru_.size();
}

}  // namespace awe::core
