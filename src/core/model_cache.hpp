// Persistent compiled-model cache (DESIGN.md §10).
//
// Building a CompiledModel is the expensive part of an AWEsymbolic run:
// the numeric partition reduction, the adjugate recursion over polynomial
// matrices and the CSE/compile pass all scale with circuit size and moment
// order, while the artifact they produce — a flat register program plus a
// handful of polynomials — serializes to a few kilobytes.  The cache makes
// that cost once-per-circuit instead of once-per-process:
//
//   key   = content hash of (canonical netlist, symbol set, input, outputs,
//           ModelOptions, format version)      -- model_cache_key()
//   disk  = <cache_dir>/<key>.awemodel         -- atomic tmp+rename store
//   RAM   = in-process LRU of shared_ptr<const CompiledModel>
//
// Because CompiledModel::save is deterministic and load restores the exact
// bytes, a cached model is bit-identical to a cold build — in kStrict AND
// kFast — which the cache-determinism CI job and test_model_cache assert.
#pragma once

#include <cstddef>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/awesymbolic.hpp"

namespace awe::core {

/// Deterministic content key (32 lowercase hex chars) of a CompiledModel
/// build request.  Covers everything the build output depends on:
/// canonicalized netlist topology (node NAMES in id order; per element:
/// kind, name, terminal/controlling node names, control-source names),
/// non-symbolic element values (they are folded into the numeric partition
/// and become program constants), the symbolic element set, input source,
/// output node(s) and ModelOptions, plus the serialization format version.
/// Deliberately EXCLUDED: the values of symbolic elements and of the input
/// source — neither enters the compiled model (symbols are runtime inputs;
/// the excitation is unit-normalized), so editing them must still hit.
std::string model_cache_key(const circuit::Netlist& netlist,
                            std::span<const std::string> symbol_elements,
                            const std::string& input_source,
                            std::span<const circuit::NodeId> output_nodes,
                            const ModelOptions& opts);

/// Two-level (memory LRU + disk) cache of compiled models.  All public
/// methods are thread-safe; the build itself runs outside the lock, so
/// concurrent misses on the same key may each build once — the atomic
/// store keeps the disk entry coherent and the LRU keeps one copy.
class ModelCache {
 public:
  /// `cache_dir` may be empty for a memory-only cache.  `max_entries` caps
  /// the in-process LRU (0 disables the memory level).
  explicit ModelCache(std::string cache_dir, std::size_t max_entries = 64);

  /// "<dir>/<key>.awemodel".
  static std::string entry_path(const std::string& dir, const std::string& key);

  /// Load one cache file.  Returns nullopt when the file is absent OR
  /// unreadable/corrupt — a damaged entry is a miss, never an error, so
  /// callers fall back to a cold build.  A corrupt entry is additionally
  /// QUARANTINED: renamed to "<path>.bad" (preserving the evidence for
  /// inspection) and counted in health::global_counters(), so the rebuild
  /// stores a fresh entry instead of overwriting the damaged one in place.
  /// `corrupt_quarantined`, when non-null, reports whether that happened.
  static std::optional<CompiledModel> load_file(const std::string& path,
                                                bool* corrupt_quarantined = nullptr);

  /// "<path>.bad" — where a corrupt entry gets quarantined.
  static std::string quarantine_path(const std::string& path) { return path + ".bad"; }

  /// Zero-copy variant of load_file: peek the version field and, for a v4
  /// entry, mmap it in place (CompiledModel::map_file) instead of parsing
  /// the stream — O(pages touched) instead of O(model size).  A v3 entry
  /// silently falls back to the parsing path, so a cache directory mixing
  /// generations keeps working.  The miss/quarantine contract is identical
  /// to load_file: any damage (truncated publish, bad section table,
  /// foreign version) quarantines the entry to "<path>.bad" and reports a
  /// miss.  The mapped open skips the full-payload checksum by design
  /// (DESIGN.md §15.2) — structural validation still bounds-checks every
  /// section and instruction, so a damaged entry can fail wrong only
  /// within its own numbers, never out of its region.
  static std::optional<CompiledModel> map_file(const std::string& path,
                                               bool* corrupt_quarantined = nullptr);

  /// Persist `model` as `dir`/<key>.awemodel, creating `dir` on demand.
  /// Writes to a unique temp file then renames — concurrent builders can
  /// race on the same key and readers still only ever see complete files.
  static void store_file(const std::string& dir, const std::string& key,
                         const CompiledModel& model);

  /// LRU -> disk -> cold build, returning a shared handle (models are
  /// immutable, so one instance serves any number of concurrent sweeps).
  /// `build_opts.cache_dir` is ignored — this cache IS the cache layer.
  /// `build_opts.backend == kNative` AOT-compiles the program into a
  /// content-addressed .so beside the cache entry (on cold build and disk
  /// hit; a memory hit returns the instance as first attached).
  std::shared_ptr<const CompiledModel> get_or_build(
      const circuit::Netlist& netlist, std::vector<std::string> symbol_elements,
      const std::string& input_source, const std::string& output_node,
      const ModelOptions& opts = {}, const BuildOptions& build_opts = {});

  struct Stats {
    std::size_t memory_hits = 0;
    std::size_t disk_hits = 0;
    std::size_t misses = 0;  ///< cold builds
    std::size_t evictions = 0;
    std::size_t corrupt_quarantined = 0;  ///< entries moved to .bad on load
    std::size_t rebuilds_after_quarantine = 0;  ///< cold builds replacing them
  };
  Stats stats() const;
  std::size_t memory_entries() const;
  const std::string& cache_dir() const { return dir_; }

 private:
  std::shared_ptr<const CompiledModel> memory_get(const std::string& key);
  void memory_put(const std::string& key, std::shared_ptr<const CompiledModel> model);

  std::string dir_;
  std::size_t max_entries_;
  mutable std::mutex mu_;
  /// MRU-first list of (key, model); map points into the list.
  std::list<std::pair<std::string, std::shared_ptr<const CompiledModel>>> lru_;
  std::unordered_map<std::string, decltype(lru_)::iterator> index_;
  Stats stats_;
};

}  // namespace awe::core
