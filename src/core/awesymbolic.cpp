#include "core/awesymbolic.hpp"

#include <limits>
#include <optional>
#include <stdexcept>

#include "awe/sensitivity.hpp"
#include "core/model_cache.hpp"
#include "core/native_backend.hpp"
#include "engine/thread_pool.hpp"
#include "health/report.hpp"
#include "symbolic/serialize.hpp"

namespace awe::core {

using symbolic::CompiledProgram;
using symbolic::ExprGraph;

namespace {

/// Pack a lane block of element values (SoA, point stride `stride`) into
/// ws.symbol_values (lane stride `count`), applying the reciprocal
/// transforms.  Lanes where a reciprocal symbol is exactly zero — the
/// scalar path's throw condition — get ok[p] = 0 and a zero input.
void pack_symbol_block(std::span<const part::SymbolSpec> symbols,
                       std::span<const double> element_values, std::size_t stride,
                       std::size_t count, BatchWorkspace& ws,
                       std::span<unsigned char> ok) {
  for (std::size_t p = 0; p < count; ++p) ok[p] = 1;
  for (std::size_t i = 0; i < symbols.size(); ++i) {
    const double* const src = element_values.data() + i * stride;
    double* const dst = ws.symbol_values.data() + i * count;
    if (symbols[i].reciprocal) {
      for (std::size_t p = 0; p < count; ++p) {
        if (src[p] == 0.0) {
          ok[p] = 0;
          dst[p] = 0.0;
        } else {
          dst[p] = 1.0 / src[p];
        }
      }
    } else {
      for (std::size_t p = 0; p < count; ++p) dst[p] = src[p];
    }
  }
}

void check_batch_args(std::size_t nsym, std::size_t out_rows,
                      std::span<const double> element_values, std::size_t stride,
                      std::size_t count, const BatchWorkspace& ws,
                      std::span<const double> moments_out, std::size_t out_stride,
                      std::span<const unsigned char> ok) {
  if (count > ws.width)
    throw std::invalid_argument("moments_batch: count exceeds workspace width");
  if (stride < count || out_stride < count)
    throw std::invalid_argument("moments_batch: stride smaller than count");
  if (nsym > 0 && element_values.size() < (nsym - 1) * stride + count)
    throw std::invalid_argument("moments_batch: element_values span too small");
  if (out_rows > 0 && moments_out.size() < (out_rows - 1) * out_stride + count)
    throw std::invalid_argument("moments_batch: moments_out span too small");
  if (ok.size() < count)
    throw std::invalid_argument("moments_batch: ok span too small");
}

/// Resolve BuildOptions to the pool a build should run with: the caller's
/// pool when supplied, a build-scoped pool when threads != 1, else serial.
/// `local` owns the build-scoped pool so it outlives the extraction.
sweep::ThreadPool* resolve_pool(const BuildOptions& build_opts,
                                std::optional<sweep::ThreadPool>& local) {
  if (build_opts.pool) return build_opts.pool;
  if (build_opts.threads == 1) return nullptr;
  local.emplace(build_opts.threads);
  return &*local;
}

/// Extraction knobs for a build: the resolved pool plus the per-cell
/// block store directory (explicit partition_block_dir, or derived from
/// cache_dir when the incremental flag is set).
part::ExtractOptions resolve_extract_options(const BuildOptions& build_opts,
                                             sweep::ThreadPool* pool) {
  part::ExtractOptions eo;
  eo.pool = pool;
  eo.block_dir = build_opts.partition_block_dir;
  if (eo.block_dir.empty() && build_opts.incremental && !build_opts.cache_dir.empty())
    eo.block_dir = build_opts.cache_dir + "/blocks";
  return eo;
}

}  // namespace

CompiledModel CompiledModel::build(const circuit::Netlist& netlist,
                                   std::vector<std::string> symbol_elements,
                                   const std::string& input_source,
                                   circuit::NodeId output_node, const ModelOptions& opts,
                                   const BuildOptions& build_opts) {
  if (opts.order == 0) throw std::invalid_argument("CompiledModel: order must be >= 1");

  // Cache probe before any expensive work: a hit skips partitioning,
  // adjugate recursion and compilation entirely.  A corrupt entry is
  // quarantined to .bad inside load_file and the build proceeds cold —
  // cache damage must never surface to the caller as an exception.
  std::string cache_key;
  bool cache_quarantined = false;
  if (!build_opts.cache_dir.empty()) {
    const circuit::NodeId outs[] = {output_node};
    cache_key = model_cache_key(netlist, symbol_elements, input_source, outs, opts);
    const std::string path = ModelCache::entry_path(build_opts.cache_dir, cache_key);
    // map_model mmap-opens a v4 hit in place (O(pages touched)) instead of
    // stream-parsing it; corrupt or legacy entries degrade exactly like
    // the parsing path.
    auto cached = build_opts.map_model ? ModelCache::map_file(path, &cache_quarantined)
                                       : ModelCache::load_file(path, &cache_quarantined);
    if (cached) {
      // Attach outcome deliberately ignored: a failed attach degrades to
      // the interpreter and is already counted in global_counters().
      if (build_opts.backend == EvalBackend::kNative)
        (void)cached->attach_native(build_opts.cache_dir);
      return std::move(*cached);
    }
  }

  std::optional<sweep::ThreadPool> local_pool;
  sweep::ThreadPool* pool = resolve_pool(build_opts, local_pool);

  part::MomentPartitioner partitioner(netlist, std::move(symbol_elements), input_source,
                                      output_node);
  part::SymbolicMoments sym =
      partitioner.compute(2 * opts.order, resolve_extract_options(build_opts, pool));

  // Lower [N_0 .. N_{2q-1}, det(Y0)] onto one shared DAG so the CSE pass
  // works across all moments, then compile.
  ExprGraph graph;
  const std::size_t nvars = sym.symbols.size();
  std::vector<symbolic::NodeId> vars;
  vars.reserve(nvars);
  for (std::size_t i = 0; i < nvars; ++i)
    vars.push_back(graph.input(static_cast<std::uint32_t>(i)));
  std::vector<symbolic::NodeId> roots;
  roots.reserve(sym.numerators.size() + 1);
  for (const auto& numerator : sym.numerators)
    roots.push_back(lower_polynomial(graph, numerator, vars));
  roots.push_back(lower_polynomial(graph, sym.det_y0, vars));
  CompiledProgram program(graph, roots);

  std::optional<CompiledProgram> grad_program;
  if (opts.with_gradients) {
    // Reverse-mode differentiation over the SAME graph (DESIGN.md §14):
    // one backward sweep per root yields its derivative with respect to
    // every symbol at once, and hash-consing shares all primal subterms
    // between the forward values and the adjoint expressions.  The
    // gradient program's roots embed the primal block first, so a single
    // run produces moments and gradients together:
    //   [N_0..N_{2q-1}, det, per symbol i: dN_0/ds_i..dN_{2q-1}/ds_i,
    //    d det/ds_i].
    const std::vector<symbolic::NodeId> jac = symbolic::reverse_gradients(graph, roots);
    std::vector<symbolic::NodeId> groots(roots.begin(), roots.end());
    groots.reserve(roots.size() * (nvars + 1));
    for (std::size_t i = 0; i < nvars; ++i)
      for (std::size_t r = 0; r < roots.size(); ++r)
        groots.push_back(jac[r * nvars + i]);
    grad_program.emplace(graph, groots);
  }
  CompiledModel model(std::move(sym), std::move(program), std::move(grad_program), opts);
  if (!cache_key.empty()) {
    ModelCache::store_file(build_opts.cache_dir, cache_key, model);
    if (cache_quarantined)
      health::global_counters().cache_rebuilds.fetch_add(1, std::memory_order_relaxed);
  }
  if (build_opts.backend == EvalBackend::kNative)
    (void)model.attach_native(build_opts.cache_dir);
  return model;
}

Status CompiledModel::attach_native(const std::string& dir) {
  Status why;
  // View-backed models carry the program checksums in the mapped v4 meta,
  // so content-addressing the .so needs no re-serialization of the mapped
  // streams (attach stays O(1) in model size).
  const auto known = [](std::uint64_t c) {
    return c != 0 ? std::optional<std::uint64_t>(c) : std::nullopt;
  };
  native_ = native::load_or_compile(program_, dir, &why, known(program_checksum_));
  // The gradient program gets its own content-addressed module.  A failed
  // gradient attach is not a model-level failure: gradient batches simply
  // keep running through the interpreter (same fallback contract as the
  // forward path), and the degradation is already counted at attach time.
  if (grad_program_) {
    Status grad_why;
    native_grad_ = native::load_or_compile(*grad_program_, dir, &grad_why,
                                           known(gradient_checksum_));
  }
  return why;
}

// ---- model format v4: zero-copy open (DESIGN.md §15) ---------------------

CompiledModel CompiledModel::from_blob(std::shared_ptr<const ModelBlob> blob,
                                       bool verify_checksum) {
  const ModelView view = ModelView::open(blob->bytes());
  if (verify_checksum && !view.verify_checksum())
    throw health::FailError(health::FailClass::kCacheCorrupt,
                            "CompiledModel::load: payload checksum mismatch");
  const v4::Meta& meta = view.meta();
  if (meta.order == 0 || meta.order > (1u << 16))
    throw std::runtime_error("CompiledModel::load: bad model order");

  ModelOptions opts;
  opts.order = static_cast<std::size_t>(meta.order);
  opts.enforce_stability = meta.enforce_stability != 0;
  opts.allow_order_fallback = meta.allow_order_fallback != 0;
  opts.with_gradients = meta.with_gradients != 0;

  // Eager side: the tiny symbol table (needed by every batch for the
  // reciprocal transforms).  The polynomial side stays raw until full_sym().
  part::SymbolicMoments sym;
  sym.port_count = static_cast<std::size_t>(meta.port_count);
  sym.global_dim = static_cast<std::size_t>(meta.global_dim);
  sym.symbols.reserve(view.symbols().size());
  for (const v4::SymbolEntry& s : view.symbols()) {
    part::SymbolSpec spec;
    spec.element_index = static_cast<std::size_t>(s.element_index);
    spec.name = std::string(view.symbol_name(s));
    spec.reciprocal = s.reciprocal != 0;
    sym.symbols.push_back(std::move(spec));
  }

  // from_code validates register/constant/input bounds over the mapped
  // streams — a damaged region throws here, it can never index out of the
  // register file at run time.
  CompiledProgram program = CompiledProgram::from_code(view.program_code());
  std::optional<CompiledProgram> grad_program;
  if (view.has_gradient())
    grad_program.emplace(CompiledProgram::from_code(view.gradient_code()));

  // Cross-field consistency, mirroring the v3 stream loader.
  if (meta.numerator_count != 2 * meta.order)
    throw std::runtime_error("CompiledModel::load: moment count mismatch");
  if (program.input_count() != sym.symbols.size() ||
      program.output_count() != meta.numerator_count + 1)
    throw std::runtime_error("CompiledModel::load: program/moments mismatch");
  if (grad_program &&
      (grad_program->input_count() != sym.symbols.size() ||
       grad_program->output_count() !=
           (sym.symbols.size() + 1) * (meta.numerator_count + 1)))
    throw std::runtime_error("CompiledModel::load: gradient program layout mismatch");

  CompiledModel model(std::move(sym), std::move(program), std::move(grad_program), opts);
  model.symbolics_raw_ = view.symbolics_blob();
  model.program_checksum_ = meta.program_checksum;
  model.gradient_checksum_ = meta.gradient_checksum;
  model.lazy_ = std::make_shared<LazySymbolics>();
  model.blob_ = std::move(blob);  // pin the region last: nothing above escapes it
  return model;
}

CompiledModel CompiledModel::map_file(const std::filesystem::path& path,
                                      bool verify_checksum) {
  return from_blob(map_file_blob(path), verify_checksum);
}

const part::SymbolicMoments& CompiledModel::full_sym() const {
  if (!lazy_) return sym_;
  std::lock_guard<std::mutex> lock(lazy_->mu);
  if (!lazy_->parsed) {
    namespace io = symbolic::io;
    io::imemstream is(reinterpret_cast<const char*>(symbolics_raw_.data()),
                      symbolics_raw_.size());
    part::SymbolicMoments full;
    full.symbols = sym_.symbols;
    full.port_count = sym_.port_count;
    full.global_dim = sym_.global_dim;
    const std::uint64_t nnum = io::read_count(is);
    if (nnum != moment_count())
      throw std::runtime_error("CompiledModel::load: moment count mismatch");
    full.numerators.reserve(nnum);
    for (std::uint64_t k = 0; k < nnum; ++k)
      full.numerators.push_back(io::load_polynomial(is));
    full.det_y0 = io::load_polynomial(is);
    lazy_->full = std::move(full);
    lazy_->parsed = true;
  }
  return lazy_->full;
}

CompiledModel CompiledModel::build(const circuit::Netlist& netlist,
                                   std::vector<std::string> symbol_elements,
                                   const std::string& input_source,
                                   const std::string& output_node,
                                   const ModelOptions& opts, const BuildOptions& build_opts) {
  const auto node = netlist.find_node(output_node);
  if (!node)
    throw std::invalid_argument("CompiledModel: unknown output node '" + output_node + "'");
  return build(netlist, std::move(symbol_elements), input_source, *node, opts, build_opts);
}

CompiledModel::Workspace CompiledModel::make_workspace() const {
  Workspace ws;
  ws.symbol_values.resize(sym_.symbols.size());
  ws.program_outputs.resize(program_.output_count());
  ws.registers.resize(program_.register_count());
  ws.moments.resize(moment_count());
  return ws;
}

void CompiledModel::moments_at(std::span<const double> element_values, Workspace& ws) const {
  if (element_values.size() != sym_.symbols.size())
    throw std::invalid_argument("CompiledModel: wrong number of element values");
  // Precondition (documented in the header): ws comes from THIS model's
  // make_workspace().  A workspace built for a different model would make
  // the writes below run out of bounds, so reject it outright.
  if (ws.symbol_values.size() != sym_.symbols.size() ||
      ws.program_outputs.size() != program_.output_count() ||
      ws.registers.size() < program_.register_count() || ws.moments.size() != moment_count())
    throw std::invalid_argument(
        "CompiledModel: workspace does not match this model (use make_workspace())");
  for (std::size_t i = 0; i < sym_.symbols.size(); ++i) {
    double v = element_values[i];
    if (sym_.symbols[i].reciprocal) {
      if (v == 0.0) throw std::domain_error("CompiledModel: zero resistance symbol value");
      v = 1.0 / v;
    }
    ws.symbol_values[i] = v;
  }
  program_.run_with_scratch(ws.symbol_values, ws.program_outputs, ws.registers);
  const double d = ws.program_outputs.back();
  if (d == 0.0) throw std::domain_error("CompiledModel: det(Y0) vanishes at this point");
  double dp = d;
  for (std::size_t k = 0; k < moment_count(); ++k) {
    ws.moments[k] = ws.program_outputs[k] / dp;
    dp *= d;
  }
}

std::vector<double> CompiledModel::moments_at(std::span<const double> element_values) const {
  Workspace ws = make_workspace();
  moments_at(element_values, ws);
  return ws.moments;
}

BatchWorkspace CompiledModel::make_batch_workspace(std::size_t width) const {
  if (width == 0) throw std::invalid_argument("make_batch_workspace: width must be >= 1");
  BatchWorkspace ws;
  ws.width = width;
  ws.symbol_values.resize(sym_.symbols.size() * width);
  ws.program_outputs.resize(program_.output_count() * width);
  ws.registers.resize(program_.register_count() * width);
  return ws;
}

void CompiledModel::moments_batch(std::span<const double> element_values, std::size_t stride,
                                  std::size_t count, BatchWorkspace& ws,
                                  std::span<double> moments_out, std::size_t out_stride,
                                  std::span<unsigned char> ok, EvalMode mode,
                                  EvalBackend backend) const {
  if (count == 0) return;
  const std::size_t nsym = sym_.symbols.size();
  const std::size_t nm = moment_count();
  check_batch_args(nsym, nm, element_values, stride, count, ws, moments_out, out_stride, ok);
  if (ws.symbol_values.size() < nsym * count ||
      ws.program_outputs.size() < program_.output_count() * count ||
      ws.registers.size() < program_.register_count() * count)
    throw std::invalid_argument(
        "CompiledModel: batch workspace does not match this model (use "
        "make_batch_workspace())");

  pack_symbol_block(sym_.symbols, element_values, stride, count, ws, ok);
  // kNative without an attached module silently runs the interpreter: the
  // fallback was counted once at attach time, and the numeric contract
  // (strict bit-identity, fast ULP bound) holds on either backend.
  if (backend == EvalBackend::kNative && native_) {
    native_->run_batch(std::span<const double>(ws.symbol_values.data(), nsym * count),
                       std::span<double>(ws.program_outputs.data(),
                                         program_.output_count() * count),
                       count, mode);
  } else {
    program_.run_batch(std::span<const double>(ws.symbol_values.data(), nsym * count),
                       std::span<double>(ws.program_outputs.data(),
                                         program_.output_count() * count),
                       std::span<double>(ws.registers.data(),
                                         program_.register_count() * count),
                       count, mode);
  }
  const double* const det = ws.program_outputs.data() + nm * count;
  constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();
  for (std::size_t p = 0; p < count; ++p) {
    if (det[p] == 0.0) ok[p] = 0;
    if (!ok[p]) {
      for (std::size_t k = 0; k < nm; ++k) moments_out[k * out_stride + p] = kNaN;
      continue;
    }
    double dp = det[p];
    for (std::size_t k = 0; k < nm; ++k) {
      moments_out[k * out_stride + p] = ws.program_outputs[k * count + p] / dp;
      dp *= det[p];
    }
  }
}

engine::ReducedOrderModel CompiledModel::evaluate(
    std::span<const double> element_values) const {
  const auto m = moments_at(element_values);
  engine::RomOptions ropts;
  ropts.order = opts_.order;
  ropts.enforce_stability = opts_.enforce_stability;
  ropts.allow_order_fallback = opts_.allow_order_fallback;
  return engine::ReducedOrderModel::from_moments(m, ropts);
}

CompiledModel::MomentsAndGradients CompiledModel::moments_and_gradients(
    std::span<const double> element_values) const {
  if (!grad_program_)
    throw std::logic_error(
        "CompiledModel: build with ModelOptions::with_gradients for gradients");
  const std::size_t nvars = sym_.symbols.size();
  const std::size_t count = moment_count();
  if (element_values.size() != nvars)
    throw std::invalid_argument("CompiledModel: wrong number of element values");

  // Internal symbol values + chain-rule factors d(symbol)/d(element value).
  std::vector<double> inputs(nvars), chain(nvars, 1.0);
  for (std::size_t i = 0; i < nvars; ++i) {
    double v = element_values[i];
    if (sym_.symbols[i].reciprocal) {
      if (v == 0.0) throw std::domain_error("CompiledModel: zero resistance symbol value");
      chain[i] = -1.0 / (v * v);  // d(1/v)/dv
      v = 1.0 / v;
    }
    inputs[i] = v;
  }

  // ONE run of the gradient program yields the primal block and every
  // adjoint block (the primal roots are embedded first — DESIGN.md §14).
  std::vector<double> goutputs(grad_program_->output_count());
  grad_program_->run(inputs, goutputs);
  const double d = goutputs[count];  // det(Y0) closes the primal block
  if (d == 0.0) throw std::domain_error("CompiledModel: det(Y0) vanishes at this point");

  MomentsAndGradients out;
  out.moments.resize(count);
  double dp = d;
  for (std::size_t k = 0; k < count; ++k) {
    out.moments[k] = goutputs[k] / dp;
    dp *= d;
  }
  out.dm.assign(count, std::vector<double>(nvars, 0.0));
  for (std::size_t i = 0; i < nvars; ++i) {
    const double* per_sym = goutputs.data() + (i + 1) * (count + 1);
    const double dd = per_sym[count];  // d det / d symbol_i
    double dpk = d;                    // d^{k+1}
    for (std::size_t k = 0; k < count; ++k) {
      // m_k = N_k / d^{k+1}:
      //   dm_k = dN_k / d^{k+1} - (k+1) m_k (dd / d).
      const double dm_sym =
          per_sym[k] / dpk - static_cast<double>(k + 1) * out.moments[k] * (dd / d);
      out.dm[k][i] = dm_sym * chain[i];
      dpk *= d;
    }
  }
  return out;
}

BatchWorkspace CompiledModel::make_gradient_batch_workspace(std::size_t width) const {
  if (!grad_program_)
    throw std::logic_error(
        "CompiledModel: build with ModelOptions::with_gradients for gradients");
  if (width == 0) throw std::invalid_argument("make_gradient_batch_workspace: width must be >= 1");
  BatchWorkspace ws;
  ws.width = width;
  ws.symbol_values.resize(sym_.symbols.size() * width);
  ws.program_outputs.resize(grad_program_->output_count() * width);
  ws.registers.resize(grad_program_->register_count() * width);
  return ws;
}

void CompiledModel::moments_and_gradients_batch(
    std::span<const double> element_values, std::size_t stride, std::size_t count,
    BatchWorkspace& ws, std::span<double> moments_out, std::size_t out_stride,
    std::span<double> grads_out, std::size_t grad_stride, std::span<unsigned char> ok,
    EvalMode mode, EvalBackend backend) const {
  if (!grad_program_)
    throw std::logic_error(
        "CompiledModel: build with ModelOptions::with_gradients for gradients");
  if (count == 0) return;
  const std::size_t nsym = sym_.symbols.size();
  const std::size_t nm = moment_count();
  check_batch_args(nsym, nm, element_values, stride, count, ws, moments_out, out_stride, ok);
  if (grad_stride < count)
    throw std::invalid_argument("moments_and_gradients_batch: grad_stride smaller than count");
  if (nsym * nm > 0 && grads_out.size() < (nsym * nm - 1) * grad_stride + count)
    throw std::invalid_argument("moments_and_gradients_batch: grads_out span too small");
  if (ws.symbol_values.size() < nsym * count ||
      ws.program_outputs.size() < grad_program_->output_count() * count ||
      ws.registers.size() < grad_program_->register_count() * count)
    throw std::invalid_argument(
        "CompiledModel: batch workspace does not match the gradient program (use "
        "make_gradient_batch_workspace())");

  pack_symbol_block(sym_.symbols, element_values, stride, count, ws, ok);
  if (backend == EvalBackend::kNative && native_grad_) {
    native_grad_->run_batch(
        std::span<const double>(ws.symbol_values.data(), nsym * count),
        std::span<double>(ws.program_outputs.data(), grad_program_->output_count() * count),
        count, mode);
  } else {
    grad_program_->run_batch(
        std::span<const double>(ws.symbol_values.data(), nsym * count),
        std::span<double>(ws.program_outputs.data(), grad_program_->output_count() * count),
        std::span<double>(ws.registers.data(), grad_program_->register_count() * count),
        count, mode);
  }

  const double* const det = ws.program_outputs.data() + nm * count;
  constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();
  for (std::size_t p = 0; p < count; ++p) {
    if (det[p] == 0.0) ok[p] = 0;
    if (!ok[p]) {
      for (std::size_t k = 0; k < nm; ++k) moments_out[k * out_stride + p] = kNaN;
      for (std::size_t row = 0; row < nsym * nm; ++row)
        grads_out[row * grad_stride + p] = kNaN;
      continue;
    }
    const double d = det[p];
    double dp = d;
    for (std::size_t k = 0; k < nm; ++k) {
      moments_out[k * out_stride + p] = ws.program_outputs[k * count + p] / dp;
      dp *= d;
    }
    for (std::size_t i = 0; i < nsym; ++i) {
      // Chain factor d(symbol)/d(element value), computed from the element
      // value with the EXACT expression the scalar path uses, so strict
      // lanes bit-agree with moments_and_gradients().
      double chain = 1.0;
      if (sym_.symbols[i].reciprocal) {
        const double v = element_values[i * stride + p];
        chain = -1.0 / (v * v);
      }
      const double* const per_sym = ws.program_outputs.data() + (i + 1) * (nm + 1) * count;
      const double dd = per_sym[nm * count + p];  // d det / d symbol_i
      double dpk = d;
      for (std::size_t k = 0; k < nm; ++k) {
        const double m_k = moments_out[k * out_stride + p];
        const double dm_sym =
            per_sym[k * count + p] / dpk - static_cast<double>(k + 1) * m_k * (dd / d);
        grads_out[(i * nm + k) * grad_stride + p] = dm_sym * chain;
        dpk *= d;
      }
    }
  }
}

std::vector<double> CompiledModel::moments_uncompiled(
    std::span<const double> element_values) const {
  return full_sym().evaluate(element_values);
}

symbolic::RationalFunction CompiledModel::dc_gain_expression() const {
  return full_sym().moment(0).normalized();
}

symbolic::RationalFunction CompiledModel::first_order_pole_expression() const {
  // Order-1 Padé: H(s) = m0 / (1 - (m1/m0) s), pole p1 = m0 / m1.
  // With m_k = N_k / d^{k+1} this cancels to  p1 = N_0 d / N_1.
  const part::SymbolicMoments& sym = full_sym();
  const auto& n = sym.numerators;
  return symbolic::RationalFunction(n.at(0) * sym.det_y0, n.at(1)).normalized();
}

std::vector<symbolic::RationalFunction> CompiledModel::symbolic_denominator() const {
  // All moments share the structured denominator m_k = N_k / d^{k+1}, so
  // the Cramer solutions cancel to compact forms instead of accumulating
  // blind d^k factors through generic rational arithmetic.
  using symbolic::Polynomial;
  using symbolic::RationalFunction;
  const part::SymbolicMoments& sym = full_sym();
  const auto& n = sym.numerators;
  const Polynomial& d = sym.det_y0;
  const RationalFunction one = RationalFunction::constant(sym_.symbols.size(), 1.0);
  if (opts_.order == 1) {
    // b1 = -m1/m0 = -N1 / (d N0).
    return {one, RationalFunction(-n.at(1), d * n.at(0)).normalized()};
  }
  if (opts_.order == 2) {
    // [m1 m0; m2 m1][b1; b2] = [-m2; -m3]; with the shared d-powers the
    // 2x2 determinant is (N1^2 - N0 N2)/d^4 and
    //   b1 = (N0 N3 - N1 N2) / (d  (N1^2 - N0 N2)),
    //   b2 = (N2^2 - N1 N3) / (d^2 (N1^2 - N0 N2)).
    const Polynomial det = n.at(1) * n.at(1) - n.at(0) * n.at(2);
    const Polynomial b1_num = n.at(0) * n.at(3) - n.at(1) * n.at(2);
    const Polynomial b2_num = n.at(2) * n.at(2) - n.at(1) * n.at(3);
    return {one, RationalFunction(b1_num, d * det).normalized(),
            RationalFunction(b2_num, d * d * det).normalized()};
  }
  throw std::invalid_argument(
      "symbolic_denominator: closed forms supported for orders 1 and 2 only");
}

std::vector<symbolic::RationalFunction> CompiledModel::symbolic_numerator() const {
  using symbolic::Polynomial;
  using symbolic::RationalFunction;
  const part::SymbolicMoments& sym = full_sym();
  const auto& n = sym.numerators;
  const Polynomial& d = sym.det_y0;
  if (opts_.order == 1) return {RationalFunction(n.at(0), d).normalized()};
  if (opts_.order == 2) {
    // a0 = m0 = N0/d;
    // a1 = m1 + b1 m0 = [N1 (N1^2 - N0 N2) + N0 (N0 N3 - N1 N2)]
    //                   / (d^2 (N1^2 - N0 N2)).
    const Polynomial det = n.at(1) * n.at(1) - n.at(0) * n.at(2);
    const Polynomial a1_num =
        n.at(1) * det + n.at(0) * (n.at(0) * n.at(3) - n.at(1) * n.at(2));
    return {RationalFunction(n.at(0), d).normalized(),
            RationalFunction(a1_num, d * d * det).normalized()};
  }
  throw std::invalid_argument(
      "symbolic_numerator: closed forms supported for orders 1 and 2 only");
}

MultiOutputModel MultiOutputModel::build(const circuit::Netlist& netlist,
                                         std::vector<std::string> symbol_elements,
                                         const std::string& input_source,
                                         std::vector<circuit::NodeId> output_nodes,
                                         const ModelOptions& opts,
                                         const BuildOptions& build_opts) {
  if (opts.order == 0) throw std::invalid_argument("MultiOutputModel: order must be >= 1");
  std::optional<sweep::ThreadPool> local_pool;
  sweep::ThreadPool* pool = resolve_pool(build_opts, local_pool);
  part::MomentPartitioner partitioner(netlist, std::move(symbol_elements), input_source,
                                      std::move(output_nodes));
  part::MultiSymbolicMoments sym =
      partitioner.compute_all(2 * opts.order, resolve_extract_options(build_opts, pool));

  ExprGraph graph;
  std::vector<symbolic::NodeId> vars;
  for (std::size_t i = 0; i < sym.symbols.size(); ++i)
    vars.push_back(graph.input(static_cast<std::uint32_t>(i)));
  std::vector<symbolic::NodeId> roots;
  for (const auto& per_output : sym.numerators)
    for (const auto& numerator : per_output)
      roots.push_back(lower_polynomial(graph, numerator, vars));
  roots.push_back(lower_polynomial(graph, sym.det_y0, vars));

  CompiledProgram program(graph, roots);
  return MultiOutputModel(std::move(sym), std::move(program), opts);
}

std::vector<std::string> MultiOutputModel::symbol_names() const {
  std::vector<std::string> names;
  for (const auto& s : sym_.symbols) names.push_back(s.name);
  return names;
}

std::vector<double> MultiOutputModel::moments_at(
    std::size_t o, std::span<const double> element_values) const {
  if (o >= sym_.outputs.size()) throw std::out_of_range("MultiOutputModel: output index");
  if (element_values.size() != sym_.symbols.size())
    throw std::invalid_argument("MultiOutputModel: wrong number of element values");
  std::vector<double> inputs(element_values.begin(), element_values.end());
  for (std::size_t i = 0; i < sym_.symbols.size(); ++i)
    if (sym_.symbols[i].reciprocal) {
      if (inputs[i] == 0.0)
        throw std::domain_error("MultiOutputModel: zero resistance symbol value");
      inputs[i] = 1.0 / inputs[i];
    }
  const std::size_t count = 2 * opts_.order;
  std::vector<double> outputs(program_.output_count());
  program_.run(inputs, outputs);
  const double d = outputs.back();
  if (d == 0.0) throw std::domain_error("MultiOutputModel: det(Y0) vanishes");
  std::vector<double> m(count);
  double dp = d;
  for (std::size_t k = 0; k < count; ++k) {
    m[k] = outputs[o * count + k] / dp;
    dp *= d;
  }
  return m;
}

BatchWorkspace MultiOutputModel::make_batch_workspace(std::size_t width) const {
  if (width == 0) throw std::invalid_argument("make_batch_workspace: width must be >= 1");
  BatchWorkspace ws;
  ws.width = width;
  ws.symbol_values.resize(sym_.symbols.size() * width);
  ws.program_outputs.resize(program_.output_count() * width);
  ws.registers.resize(program_.register_count() * width);
  return ws;
}

void MultiOutputModel::moments_batch(std::span<const double> element_values,
                                     std::size_t stride, std::size_t count,
                                     BatchWorkspace& ws, std::span<double> moments_out,
                                     std::size_t out_stride,
                                     std::span<unsigned char> ok, EvalMode mode,
                                     EvalBackend /*backend: interpreter only*/) const {
  if (count == 0) return;
  const std::size_t nsym = sym_.symbols.size();
  const std::size_t nm = moment_count();
  const std::size_t nout = sym_.outputs.size();
  check_batch_args(nsym, nout * nm, element_values, stride, count, ws, moments_out,
                   out_stride, ok);
  if (ws.symbol_values.size() < nsym * count ||
      ws.program_outputs.size() < program_.output_count() * count ||
      ws.registers.size() < program_.register_count() * count)
    throw std::invalid_argument(
        "MultiOutputModel: batch workspace does not match this model (use "
        "make_batch_workspace())");

  pack_symbol_block(sym_.symbols, element_values, stride, count, ws, ok);
  program_.run_batch(std::span<const double>(ws.symbol_values.data(), nsym * count),
                     std::span<double>(ws.program_outputs.data(),
                                       program_.output_count() * count),
                     std::span<double>(ws.registers.data(), program_.register_count() * count),
                     count, mode);
  const double* const det = ws.program_outputs.data() + nout * nm * count;
  constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();
  for (std::size_t p = 0; p < count; ++p) {
    if (det[p] == 0.0) ok[p] = 0;
    if (!ok[p]) {
      for (std::size_t row = 0; row < nout * nm; ++row)
        moments_out[row * out_stride + p] = kNaN;
      continue;
    }
    for (std::size_t o = 0; o < nout; ++o) {
      double dp = det[p];
      for (std::size_t k = 0; k < nm; ++k) {
        moments_out[(o * nm + k) * out_stride + p] =
            ws.program_outputs[(o * nm + k) * count + p] / dp;
        dp *= det[p];
      }
    }
  }
}

engine::ReducedOrderModel MultiOutputModel::evaluate(
    std::size_t o, std::span<const double> element_values) const {
  engine::RomOptions ropts;
  ropts.order = opts_.order;
  ropts.enforce_stability = opts_.enforce_stability;
  ropts.allow_order_fallback = opts_.allow_order_fallback;
  return engine::ReducedOrderModel::from_moments(moments_at(o, element_values), ropts);
}

std::string CompiledModel::export_c_source(std::string_view function_name) const {
  std::string src = "/* AWEsymbolic compiled moment program.\n";
  src += " * inputs : ";
  for (const auto& s : sym_.symbols) {
    src += s.name;
    if (s.reciprocal) src += " (as conductance 1/value)";
    src += "  ";
  }
  src += "\n * outputs: N_0..N_" + std::to_string(moment_count() - 1) +
         ", det(Y0); moment k = out[k] / out[" + std::to_string(moment_count()) +
         "]^(k+1)\n */\n";
  return src + program_.to_c_source(function_name);
}

std::vector<std::string> select_symbols(const circuit::Netlist& netlist,
                                        const std::string& input_source,
                                        circuit::NodeId output_node, std::size_t order,
                                        std::size_t how_many) {
  const auto ranked =
      engine::rank_symbol_candidates(netlist, input_source, output_node, order);
  std::vector<std::string> names;
  for (std::size_t i = 0; i < ranked.size() && names.size() < how_many; ++i)
    names.push_back(ranked[i].name);
  return names;
}

}  // namespace awe::core
