// First-order Taylor moment model — the "partial" alternative to a full
// symbolic analysis (ablation comparator).
//
// Instead of exact symbolic moment expressions, expand each moment to
// first order about the nominal symbol values using the adjoint moment
// sensitivities of AWEsensitivity:
//     m_k(e) ~= m_k(e0) + sum_i  dm_k/de_i |_{e0} (e_i - e0_i).
// Setup costs one AWE run plus one adjoint chain (much cheaper than the
// partitioned symbolic analysis); evaluation is a handful of FLOPs; but
// accuracy degrades away from the expansion point, whereas the compiled
// symbolic model is exact everywhere.  The ablation bench quantifies this
// trade (DESIGN.md, ablation index).
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "awe/rom.hpp"
#include "circuit/netlist.hpp"

namespace awe::core {

class TaylorMomentModel {
 public:
  struct Options {
    std::size_t order = 2;
    bool enforce_stability = true;
  };

  /// Expand about the elements' current netlist values.
  static TaylorMomentModel build(const circuit::Netlist& netlist,
                                 std::vector<std::string> symbol_elements,
                                 const std::string& input_source,
                                 circuit::NodeId output_node, const Options& opts);

  const std::vector<std::string>& symbol_names() const { return names_; }
  const std::vector<double>& expansion_point() const { return nominal_; }

  /// Approximate moments at the given element values.
  std::vector<double> moments_at(std::span<const double> element_values) const;

  /// Approximate reduced-order model at the given element values.
  engine::ReducedOrderModel evaluate(std::span<const double> element_values) const;

 private:
  TaylorMomentModel() = default;

  std::vector<std::string> names_;
  std::vector<double> nominal_;             // expansion point e0
  std::vector<double> m0_;                  // m_k(e0)
  std::vector<std::vector<double>> dm_;     // dm_[k][i] = dm_k/de_i
  Options opts_;
};

}  // namespace awe::core
