// On-disk compiled-model format identity, shared by the serializer
// (model_io.cpp) and the cache key derivation (model_cache.cpp): bumping
// the version both rejects old files at load time AND changes every cache
// key, so stale entries are simply never looked up again.
#pragma once

#include <cstdint>

namespace awe::core {

inline constexpr char kModelMagic[4] = {'A', 'W', 'E', 'M'};
// v3: the optional gradient section switched from the forward-mode
// derivative-only layout to the reverse-mode stream (primal block embedded
// first, then one adjoint block per symbol — DESIGN.md §14).  The section
// framing is unchanged; the bump exists to reject v2 gradient programs,
// whose outputs a v3 reader would misinterpret.
// v4: offset-based, 64-byte-aligned, mmap-executable blob (DESIGN.md §15,
// core/model_blob.hpp).  save() writes v4; load() still reads the v3
// stream, and the cache-key version bump means v3 entries are simply
// never looked up again (awe_build --pack-v4 upgrades a directory in
// place).
inline constexpr std::uint32_t kModelFormatVersion = 4;

}  // namespace awe::core
