// On-disk compiled-model format identity, shared by the serializer
// (model_io.cpp) and the cache key derivation (model_cache.cpp): bumping
// the version both rejects old files at load time AND changes every cache
// key, so stale entries are simply never looked up again.
#pragma once

#include <cstdint>

namespace awe::core {

inline constexpr char kModelMagic[4] = {'A', 'W', 'E', 'M'};
// v3: the optional gradient section switched from the forward-mode
// derivative-only layout to the reverse-mode stream (primal block embedded
// first, then one adjoint block per symbol — DESIGN.md §14).  The section
// framing is unchanged; the bump exists to reject v2 gradient programs,
// whose outputs a v3 reader would misinterpret.
inline constexpr std::uint32_t kModelFormatVersion = 3;

}  // namespace awe::core
