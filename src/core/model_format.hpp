// On-disk compiled-model format identity, shared by the serializer
// (model_io.cpp) and the cache key derivation (model_cache.cpp): bumping
// the version both rejects old files at load time AND changes every cache
// key, so stale entries are simply never looked up again.
#pragma once

#include <cstdint>

namespace awe::core {

inline constexpr char kModelMagic[4] = {'A', 'W', 'E', 'M'};
inline constexpr std::uint32_t kModelFormatVersion = 2;

}  // namespace awe::core
