#include "core/model_store.hpp"

#include <sstream>
#include <utility>

#include "core/model_blob.hpp"

namespace awe::core {

SharedModelStore::SharedModelStore(std::string name, Backing backing)
    : name_(std::move(name)), backing_(backing) {}

SharedModelStore::~SharedModelStore() {
  std::lock_guard<std::mutex> lock(mu_);
  if (backing_ == Backing::kShm && generation_ != 0)
    unlink_shm_blob(shm_name(generation_));
}

std::string SharedModelStore::shm_name(std::uint64_t gen) const {
  return name_ + ".g" + std::to_string(gen);
}

std::uint64_t SharedModelStore::publish(const CompiledModel& model) {
  std::ostringstream os;
  model.save(os);
  return publish_packed(os.str());
}

std::uint64_t SharedModelStore::publish_packed(std::string_view blob) {
  // Region creation, the copy, and checksum verification all happen
  // before the lock: a failed publish leaves the store on its previous
  // generation, and concurrent acquire()s only ever wait for the swap.
  std::uint64_t gen;
  {
    std::lock_guard<std::mutex> lock(mu_);
    gen = generation_ + 1;
  }
  const auto bytes = std::span<const std::byte>(
      reinterpret_cast<const std::byte*>(blob.data()), blob.size());
  std::shared_ptr<const ModelBlob> region =
      backing_ == Backing::kShm ? create_shm_blob(shm_name(gen), bytes)
                                : make_heap_blob(blob);
  auto model = std::make_shared<const CompiledModel>(
      CompiledModel::from_blob(region, /*verify_checksum=*/true));

  std::shared_ptr<const CompiledModel> prev;
  std::uint64_t prev_gen = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    prev = std::move(current_);
    prev_gen = generation_;
    if (prev) retired_.push_back(prev);
    // Another publisher may have raced past our reserved number; stay
    // monotonic either way.
    gen = std::max(gen, generation_ + 1);
    current_ = std::move(model);
    generation_ = gen;
    std::erase_if(retired_, [](const std::weak_ptr<const CompiledModel>& w) {
      return w.expired();
    });
  }
  // Unlink the retired NAME outside the lock: its pages stay mapped for
  // readers still pinning `prev` (POSIX shm semantics), but no new
  // reader can open it and the name cannot collide with a future store.
  if (backing_ == Backing::kShm && prev_gen != 0) unlink_shm_blob(shm_name(prev_gen));
  return gen;
}

std::shared_ptr<const CompiledModel> SharedModelStore::acquire() const {
  std::lock_guard<std::mutex> lock(mu_);
  return current_;
}

std::uint64_t SharedModelStore::generation() const {
  std::lock_guard<std::mutex> lock(mu_);
  return generation_;
}

std::size_t SharedModelStore::live_generations() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::size_t live = current_ ? 1 : 0;
  for (const auto& w : retired_)
    if (!w.expired()) ++live;
  return live;
}

}  // namespace awe::core
