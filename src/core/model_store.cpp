#include "core/model_store.hpp"

#include <sstream>
#include <utility>

#include "core/model_blob.hpp"

namespace awe::core {

SharedModelStore::SharedModelStore(std::string name, Backing backing)
    : name_(std::move(name)), backing_(backing) {}

SharedModelStore::~SharedModelStore() {
  std::lock_guard<std::mutex> lock(mu_);
  if (backing_ == Backing::kShm && generation_ != 0)
    unlink_shm_blob(shm_name(generation_));
}

std::string SharedModelStore::shm_name(std::uint64_t gen) const {
  return name_ + ".g" + std::to_string(gen);
}

std::uint64_t SharedModelStore::publish(const CompiledModel& model) {
  std::ostringstream os;
  model.save(os);
  return publish_packed(os.str());
}

std::uint64_t SharedModelStore::publish_packed(std::string_view blob) {
  // Region creation, the copy, and checksum verification all happen
  // before the lock: a failed publish leaves the store on its previous
  // generation, and concurrent acquire()s only ever wait for the swap.
  // The generation number is RESERVED (next_generation_ incremented) up
  // front so concurrent publishers each build into a uniquely named
  // region — reserving with `generation_ + 1` would hand two racing
  // publishers the same shm name, where the second create's replace-
  // stale-object unlink would rip the name out from under the first.
  std::uint64_t gen;
  {
    std::lock_guard<std::mutex> lock(mu_);
    gen = ++next_generation_;
  }
  const auto bytes = std::span<const std::byte>(
      reinterpret_cast<const std::byte*>(blob.data()), blob.size());
  std::shared_ptr<const ModelBlob> region =
      backing_ == Backing::kShm ? create_shm_blob(shm_name(gen), bytes)
                                : make_heap_blob(blob);
  auto model = std::make_shared<const CompiledModel>(
      CompiledModel::from_blob(region, /*verify_checksum=*/true));

  std::shared_ptr<const CompiledModel> retired_model;
  std::uint64_t retired_gen = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (gen > generation_) {
      retired_model = std::move(current_);
      retired_gen = generation_;
      current_ = std::move(model);
      generation_ = gen;
    } else {
      // A publisher with a later reservation already swapped in: our
      // freshly verified generation was obsolete on arrival.  Retire it
      // without ever exposing it — generations stay monotonic for readers.
      retired_model = std::move(model);
      retired_gen = gen;
    }
    if (retired_model) retired_.push_back(retired_model);
    std::erase_if(retired_, [](const std::weak_ptr<const CompiledModel>& w) {
      return w.expired();
    });
  }
  // Unlink the retired NAME outside the lock: its pages stay mapped for
  // readers still pinning it (POSIX shm semantics), but no new reader can
  // open it and the name cannot collide with a future store.
  if (backing_ == Backing::kShm && retired_gen != 0)
    unlink_shm_blob(shm_name(retired_gen));
  return gen;
}

std::shared_ptr<const CompiledModel> SharedModelStore::acquire(
    std::uint64_t* generation_out) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (generation_out) *generation_out = generation_;
  return current_;
}

std::uint64_t SharedModelStore::generation() const {
  std::lock_guard<std::mutex> lock(mu_);
  return generation_;
}

std::size_t SharedModelStore::live_generations() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::size_t live = current_ ? 1 : 0;
  for (const auto& w : retired_)
    if (!w.expired()) ++live;
  return live;
}

}  // namespace awe::core
