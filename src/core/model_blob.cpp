// Model format v4 packing, validation and region backings (DESIGN.md §15).
#include "core/model_blob.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <bit>
#include <cerrno>
#include <cstring>
#include <new>
#include <vector>
#include <stdexcept>

#include "health/status.hpp"

namespace awe::core {

namespace {

using symbolic::Instr;

constexpr std::size_t kAlign = 64;
constexpr std::uint32_t kFlagHasGradient = 1u << 0;
constexpr std::uint32_t kMaxSections = 64;

std::size_t align_up(std::size_t n) { return (n + (kAlign - 1)) & ~(kAlign - 1); }

/// The v4 format is little-endian by definition; a big-endian host would
/// reinterpret every multi-byte field wrong, so it must fail loudly with a
/// classified error instead of loading a plausible-but-wrong model.
void require_little_endian_host(const char* who) {
  static_assert(std::endian::native == std::endian::little ||
                    std::endian::native == std::endian::big,
                "mixed-endian hosts are not supported");
  if (std::endian::native != std::endian::little)
    throw health::FailError(health::FailClass::kModelFormat,
                            std::string(who) +
                                ": model format v4 requires a little-endian host");
}

void append_u32(std::string& out, std::uint32_t v) {
  char b[4];
  for (int i = 0; i < 4; ++i) b[i] = static_cast<char>((v >> (8 * i)) & 0xff);
  out.append(b, 4);
}

void append_u64(std::string& out, std::uint64_t v) {
  char b[8];
  for (int i = 0; i < 8; ++i) b[i] = static_cast<char>((v >> (8 * i)) & 0xff);
  out.append(b, 8);
}

void append_zeros(std::string& out, std::size_t n) { out.append(n, '\0'); }

void pad_to(std::string& out, std::size_t offset) {
  if (out.size() > offset) throw std::logic_error("pack_model_v4: layout overflow");
  append_zeros(out, offset - out.size());
}

/// Emit one instruction as exactly 20 bytes at the static_assert-pinned
/// field offsets, padding bytes explicitly zeroed — memcpy of the struct
/// would leak indeterminate padding and break byte-determinism.
void append_instr(std::string& out, const Instr& in) {
  char b[sizeof(Instr)] = {};
  b[0] = static_cast<char>(in.op);
  std::memcpy(b + offsetof(Instr, dst), &in.dst, 4);
  std::memcpy(b + offsetof(Instr, a), &in.a, 4);
  std::memcpy(b + offsetof(Instr, b), &in.b, 4);
  std::memcpy(b + offsetof(Instr, c), &in.c, 4);
  out.append(b, sizeof(Instr));
}

struct SectionPlan {
  v4::SectionKind kind;
  std::uint64_t size = 0;
  std::uint64_t offset = 0;
};

[[noreturn]] void bad(const char* what) {
  throw std::runtime_error(std::string("CompiledModel::load: ") + what);
}

// ---- region backings ----------------------------------------------------

class HeapBlob final : public ModelBlob {
 public:
  explicit HeapBlob(std::string_view bytes) : size_(bytes.size()) {
    data_ = static_cast<std::byte*>(::operator new(size_, std::align_val_t(kAlign)));
    std::memcpy(data_, bytes.data(), size_);
  }
  ~HeapBlob() override { ::operator delete(data_, std::align_val_t(kAlign)); }
  std::span<const std::byte> bytes() const override { return {data_, size_}; }
  std::string origin() const override { return "heap"; }

 private:
  std::byte* data_ = nullptr;
  std::size_t size_ = 0;
};

class MappedBlob final : public ModelBlob {
 public:
  MappedBlob(void* addr, std::size_t size, std::string origin)
      : addr_(addr), size_(size), origin_(std::move(origin)) {}
  ~MappedBlob() override {
    if (addr_ != nullptr) ::munmap(addr_, size_);
  }
  std::span<const std::byte> bytes() const override {
    return {static_cast<const std::byte*>(addr_), size_};
  }
  std::string origin() const override { return origin_; }

 private:
  void* addr_ = nullptr;
  std::size_t size_ = 0;
  std::string origin_;
};

std::string shm_path(const std::string& name) {
  return name.empty() || name[0] != '/' ? "/" + name : name;
}

[[noreturn]] void throw_errno(const std::string& what) {
  throw std::runtime_error(what + ": " + std::strerror(errno));
}

}  // namespace

std::uint64_t fnv1a64(const void* data, std::size_t size) {
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint64_t h = 1469598103934665603ull;
  for (std::size_t i = 0; i < size; ++i) {
    h ^= p[i];
    h *= 1099511628211ull;
  }
  return h;
}

std::shared_ptr<const ModelBlob> make_heap_blob(std::string_view bytes) {
  return std::make_shared<HeapBlob>(bytes);
}

std::shared_ptr<const ModelBlob> map_file_blob(const std::filesystem::path& path) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) throw_errno("map_file_blob: open " + path.string());
  struct stat st{};
  if (::fstat(fd, &st) != 0 || st.st_size <= 0) {
    ::close(fd);
    throw std::runtime_error("map_file_blob: empty or unreadable " + path.string());
  }
  const auto size = static_cast<std::size_t>(st.st_size);
  void* addr = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);
  if (addr == MAP_FAILED) throw_errno("map_file_blob: mmap " + path.string());
  return std::make_shared<MappedBlob>(addr, size, path.string());
}

std::shared_ptr<const ModelBlob> create_shm_blob(const std::string& name,
                                                 std::span<const std::byte> bytes) {
  const std::string path = shm_path(name);
  ::shm_unlink(path.c_str());  // replace any stale object of the same name
  const int fd = ::shm_open(path.c_str(), O_CREAT | O_EXCL | O_RDWR, 0600);
  if (fd < 0) throw_errno("create_shm_blob: shm_open " + path);
  if (::ftruncate(fd, static_cast<off_t>(bytes.size())) != 0) {
    ::close(fd);
    ::shm_unlink(path.c_str());
    throw_errno("create_shm_blob: ftruncate " + path);
  }
  void* addr = ::mmap(nullptr, bytes.size(), PROT_READ | PROT_WRITE, MAP_SHARED, fd, 0);
  ::close(fd);
  if (addr == MAP_FAILED) {
    ::shm_unlink(path.c_str());
    throw_errno("create_shm_blob: mmap " + path);
  }
  std::memcpy(addr, bytes.data(), bytes.size());
  return std::make_shared<MappedBlob>(addr, bytes.size(), "shm:" + path);
}

std::shared_ptr<const ModelBlob> open_shm_blob(const std::string& name) {
  const std::string path = shm_path(name);
  const int fd = ::shm_open(path.c_str(), O_RDONLY, 0);
  if (fd < 0) throw_errno("open_shm_blob: shm_open " + path);
  struct stat st{};
  if (::fstat(fd, &st) != 0 || st.st_size <= 0) {
    ::close(fd);
    throw std::runtime_error("open_shm_blob: empty shared-memory object " + path);
  }
  const auto size = static_cast<std::size_t>(st.st_size);
  void* addr = ::mmap(nullptr, size, PROT_READ, MAP_SHARED, fd, 0);
  ::close(fd);
  if (addr == MAP_FAILED) throw_errno("open_shm_blob: mmap " + path);
  return std::make_shared<MappedBlob>(addr, size, "shm:" + path);
}

void unlink_shm_blob(const std::string& name) {
  ::shm_unlink(shm_path(name).c_str());
}

// ---- validated view -----------------------------------------------------

ModelView ModelView::open(std::span<const std::byte> region) {
  require_little_endian_host("ModelView::open");
  if (reinterpret_cast<std::uintptr_t>(region.data()) % kAlign != 0)
    throw health::FailError(health::FailClass::kModelFormat,
                            "ModelView::open: model region not 64-byte aligned");
  if (region.size() < sizeof(v4::Header)) bad("truncated payload");

  ModelView view;
  const auto* header = reinterpret_cast<const v4::Header*>(region.data());
  if (std::memcmp(header->magic, "AWEM", 4) != 0) bad("bad magic");
  if (header->version != 4) bad("unsupported format version");
  if (header->endian_tag != 1)
    throw health::FailError(health::FailClass::kModelFormat,
                            "ModelView::open: model endianness mismatch");
  if (header->total_size < sizeof(v4::Header) || header->total_size > region.size())
    bad("truncated payload");
  if (header->section_count == 0 || header->section_count > kMaxSections)
    bad("bad section table");
  const std::uint64_t table_end =
      sizeof(v4::Header) +
      std::uint64_t{header->section_count} * sizeof(v4::SectionEntry);
  if (table_end > header->total_size) bad("bad section table");

  view.region_ = region.first(static_cast<std::size_t>(header->total_size));
  view.header_ = header;
  const auto* table =
      reinterpret_cast<const v4::SectionEntry*>(region.data() + sizeof(v4::Header));

  // Resolve each kind at most once, bounds-checked.
  const v4::SectionEntry* by_kind[kMaxSections + 1] = {};
  for (std::uint32_t i = 0; i < header->section_count; ++i) {
    const v4::SectionEntry& e = table[i];
    if (e.kind == 0 || e.kind > kMaxSections) bad("unknown section kind");
    if (by_kind[e.kind] != nullptr) bad("duplicate section");
    if (e.offset % kAlign != 0 || e.offset < table_end) bad("misaligned section");
    if (e.offset > header->total_size || e.size > header->total_size - e.offset)
      bad("section out of bounds");
    by_kind[e.kind] = &e;
  }
  auto require = [&](v4::SectionKind k) -> const v4::SectionEntry& {
    const v4::SectionEntry* e = by_kind[static_cast<std::uint32_t>(k)];
    if (e == nullptr) bad("missing section");
    return *e;
  };
  auto section = [&](const v4::SectionEntry& e) -> std::span<const std::byte> {
    return view.region_.subspan(static_cast<std::size_t>(e.offset),
                                static_cast<std::size_t>(e.size));
  };

  // Meta.
  const v4::SectionEntry& meta_e = require(v4::SectionKind::kMeta);
  if (meta_e.size != sizeof(v4::Meta)) bad("bad meta section");
  view.meta_ = reinterpret_cast<const v4::Meta*>(section(meta_e).data());
  const v4::Meta& meta = *view.meta_;
  const bool flag_grad = (header->flags & kFlagHasGradient) != 0;
  if (flag_grad != (meta.with_gradients != 0)) bad("gradient flag mismatch");

  // Symbols + strings.
  const v4::SectionEntry& sym_e = require(v4::SectionKind::kSymbols);
  const v4::SectionEntry& str_e = require(v4::SectionKind::kStrings);
  if (sym_e.size != meta.symbol_count * sizeof(v4::SymbolEntry))
    bad("bad symbol section");
  view.symbols_ = {reinterpret_cast<const v4::SymbolEntry*>(section(sym_e).data()),
                   static_cast<std::size_t>(meta.symbol_count)};
  view.strings_ = std::string_view(
      reinterpret_cast<const char*>(section(str_e).data()),
      static_cast<std::size_t>(str_e.size));
  for (const v4::SymbolEntry& s : view.symbols_) {
    if (std::uint64_t{s.name_offset} + s.name_length > str_e.size)
      bad("symbol name out of bounds");
  }

  // Program sections -> executable views.
  auto code_span = [&](v4::SectionKind k) -> std::span<const Instr> {
    const v4::SectionEntry& e = require(k);
    if (e.size % sizeof(Instr) != 0) bad("bad instruction section");
    return {reinterpret_cast<const Instr*>(section(e).data()),
            static_cast<std::size_t>(e.size / sizeof(Instr))};
  };
  auto f64_span = [&](v4::SectionKind k) -> std::span<const double> {
    const v4::SectionEntry& e = require(k);
    if (e.size % sizeof(double) != 0) bad("bad constant section");
    return {reinterpret_cast<const double*>(section(e).data()),
            static_cast<std::size_t>(e.size / sizeof(double))};
  };
  auto u32_span = [&](v4::SectionKind k) -> std::span<const std::uint32_t> {
    const v4::SectionEntry& e = require(k);
    if (e.size % sizeof(std::uint32_t) != 0) bad("bad output section");
    return {reinterpret_cast<const std::uint32_t*>(section(e).data()),
            static_cast<std::size_t>(e.size / sizeof(std::uint32_t))};
  };

  view.program_ = symbolic::ProgramCode{
      code_span(v4::SectionKind::kStrictCode),
      code_span(v4::SectionKind::kFusedCode),
      f64_span(v4::SectionKind::kConstants),
      u32_span(v4::SectionKind::kOutputRegs),
      u32_span(v4::SectionKind::kFusedOutputRegs),
      static_cast<std::size_t>(meta.prog_input_count),
      static_cast<std::size_t>(meta.prog_register_count)};
  if (flag_grad) {
    view.gradient_ = symbolic::ProgramCode{
        code_span(v4::SectionKind::kGradStrictCode),
        code_span(v4::SectionKind::kGradFusedCode),
        f64_span(v4::SectionKind::kGradConstants),
        u32_span(v4::SectionKind::kGradOutputRegs),
        u32_span(v4::SectionKind::kGradFusedOutputRegs),
        static_cast<std::size_t>(meta.grad_input_count),
        static_cast<std::size_t>(meta.grad_register_count)};
  } else if (by_kind[static_cast<std::uint32_t>(v4::SectionKind::kGradStrictCode)]) {
    bad("gradient flag mismatch");
  }

  view.symbolics_ = section(require(v4::SectionKind::kSymbolics));
  return view;
}

bool ModelView::verify_checksum() const {
  const std::span<const std::byte> payload = region_.subspan(sizeof(v4::Header));
  return fnv1a64(payload.data(), payload.size()) == header_->checksum;
}

// ---- packing ------------------------------------------------------------

std::string pack_model_v4(const PackInput& in) {
  require_little_endian_host("pack_model_v4");

  std::vector<SectionPlan> plan;
  plan.push_back({v4::SectionKind::kMeta, sizeof(v4::Meta)});
  plan.push_back({v4::SectionKind::kSymbols,
                  in.symbols.size() * sizeof(v4::SymbolEntry)});
  std::uint64_t strings_size = 0;
  for (const part::SymbolSpec& s : in.symbols) strings_size += s.name.size();
  plan.push_back({v4::SectionKind::kStrings, strings_size});

  auto plan_program = [&](const symbolic::ProgramCode& p, bool gradient) {
    const auto base = static_cast<std::uint32_t>(
        gradient ? v4::SectionKind::kGradStrictCode : v4::SectionKind::kStrictCode);
    plan.push_back({static_cast<v4::SectionKind>(base + 0),
                    p.strict.size() * sizeof(Instr)});
    plan.push_back({static_cast<v4::SectionKind>(base + 1),
                    p.fused.size() * sizeof(Instr)});
    plan.push_back({static_cast<v4::SectionKind>(base + 2),
                    p.constants.size() * sizeof(double)});
    plan.push_back({static_cast<v4::SectionKind>(base + 3),
                    p.outputs.size() * sizeof(std::uint32_t)});
    plan.push_back({static_cast<v4::SectionKind>(base + 4),
                    p.fused_outputs.size() * sizeof(std::uint32_t)});
  };
  plan_program(in.program, /*gradient=*/false);
  if (in.gradient) plan_program(*in.gradient, /*gradient=*/true);
  plan.push_back({v4::SectionKind::kSymbolics, in.symbolics_blob.size()});

  const std::uint64_t table_end =
      sizeof(v4::Header) + plan.size() * sizeof(v4::SectionEntry);
  std::uint64_t cursor = align_up(static_cast<std::size_t>(table_end));
  for (SectionPlan& s : plan) {
    s.offset = cursor;
    cursor = align_up(static_cast<std::size_t>(cursor + s.size));
  }
  // The tail is padded to the alignment quantum too, so total_size (and
  // every file/shm region holding a blob) is a whole number of 64-byte
  // units — concatenation-safe and mappable with no trailing slack page
  // arithmetic.
  const std::uint64_t total_size = align_up(static_cast<std::size_t>(
      plan.empty() ? table_end : plan.back().offset + plan.back().size));

  std::string out;
  out.reserve(static_cast<std::size_t>(total_size));
  append_zeros(out, sizeof(v4::Header));  // header patched in below
  for (const SectionPlan& s : plan) {
    append_u32(out, static_cast<std::uint32_t>(s.kind));
    append_u32(out, 0);
    append_u64(out, s.offset);
    append_u64(out, s.size);
  }

  auto emit = [&](const SectionPlan& s, auto&& body) {
    pad_to(out, static_cast<std::size_t>(s.offset));
    body();
    if (out.size() != s.offset + s.size)
      throw std::logic_error("pack_model_v4: section size mismatch");
  };

  std::size_t pi = 0;
  emit(plan[pi++], [&] {  // kMeta
    append_u64(out, in.order);
    append_u64(out, in.port_count);
    append_u64(out, in.global_dim);
    append_u64(out, in.symbols.size());
    append_u64(out, in.numerator_count);
    append_u64(out, in.program_checksum);
    append_u64(out, in.gradient ? in.gradient_checksum : 0);
    append_u64(out, in.program.input_count);
    append_u64(out, in.program.register_count);
    append_u64(out, in.gradient ? in.gradient->input_count : 0);
    append_u64(out, in.gradient ? in.gradient->register_count : 0);
    out.push_back(in.enforce_stability ? 1 : 0);
    out.push_back(in.allow_order_fallback ? 1 : 0);
    out.push_back(in.gradient ? 1 : 0);
    append_zeros(out, 5);
  });
  emit(plan[pi++], [&] {  // kSymbols
    std::uint32_t name_off = 0;
    for (const part::SymbolSpec& s : in.symbols) {
      append_u64(out, s.element_index);
      append_u32(out, name_off);
      append_u32(out, static_cast<std::uint32_t>(s.name.size()));
      out.push_back(s.reciprocal ? 1 : 0);
      append_zeros(out, 7);
      name_off += static_cast<std::uint32_t>(s.name.size());
    }
  });
  emit(plan[pi++], [&] {  // kStrings
    for (const part::SymbolSpec& s : in.symbols) out.append(s.name);
  });
  auto emit_program = [&](const symbolic::ProgramCode& p) {
    emit(plan[pi++], [&] {
      for (const Instr& ins : p.strict) append_instr(out, ins);
    });
    emit(plan[pi++], [&] {
      for (const Instr& ins : p.fused) append_instr(out, ins);
    });
    emit(plan[pi++], [&] {
      for (const double c : p.constants) append_u64(out, std::bit_cast<std::uint64_t>(c));
    });
    emit(plan[pi++], [&] {
      for (const std::uint32_t r : p.outputs) append_u32(out, r);
    });
    emit(plan[pi++], [&] {
      for (const std::uint32_t r : p.fused_outputs) append_u32(out, r);
    });
  };
  emit_program(in.program);
  if (in.gradient) emit_program(*in.gradient);
  emit(plan[pi++], [&] { out.append(in.symbolics_blob); });
  pad_to(out, static_cast<std::size_t>(total_size));

  // Header, now that the checksummed payload is final.
  std::string header;
  header.reserve(sizeof(v4::Header));
  header.append("AWEM", 4);
  append_u32(header, 4);  // version
  append_u64(header, total_size);
  append_u64(header, fnv1a64(out.data() + sizeof(v4::Header),
                             out.size() - sizeof(v4::Header)));
  append_u32(header, static_cast<std::uint32_t>(plan.size()));
  append_u32(header, in.gradient ? kFlagHasGradient : 0);
  header.push_back('\x01');  // endian tag: little
  append_zeros(header, 31);
  out.replace(0, sizeof(v4::Header), header);
  return out;
}

}  // namespace awe::core
