// Shared CLI hardening helpers (DESIGN.md §16.5).
//
// Two failure modes every tool here must survive:
//
//  * A downstream pipe closing early ("awesym_cli --dump-moments | head").
//    Default SIGPIPE semantics kill the process mid-dump with no exit
//    status a script can reason about.  install_sigpipe_guard() turns the
//    signal off so writes fail with EPIPE instead, and stdout_alive()
//    lets dump loops notice and stop quietly — a consumed-enough pipe is
//    SUCCESS, not an error.
//
//  * Dying before the --health-json report is written.  Supervisors and
//    the CI robustness matrix treat that file as the tool's black box
//    recorder; a usage error or a model-load throw must still produce
//    valid JSON.  HealthJsonSink pre-scans argv for --health-json BEFORE
//    any real argument parsing, so even "bad flags" exit paths can flush.
//
// Header-only on purpose: tools link different library subsets and this
// must not add a dependency edge.
#pragma once

#include <csignal>
#include <cstdio>
#include <fstream>
#include <string>

#include "health/report.hpp"

namespace awe::cli {

/// Ignore SIGPIPE process-wide.  Call first thing in main(); after this a
/// closed-pipe write returns EPIPE (and sets the stream error flag)
/// instead of killing the process.
inline void install_sigpipe_guard() { std::signal(SIGPIPE, SIG_IGN); }

/// True while stdout has not failed.  After a write, a false return means
/// the consumer is gone (EPIPE under the guard above) — stop emitting and
/// exit 0: "| head" took what it wanted.
inline bool stdout_alive() {
  if (std::ferror(stdout)) return false;
  if (std::fflush(stdout) != 0) return false;
  return !std::ferror(stdout);
}

/// Deterministic health-JSON flusher bound to the --health-json flag.
class HealthJsonSink {
 public:
  /// Pre-scan argv for "--health-json FILE".  Runs before real argument
  /// parsing so EVERY exit path — usage errors included — can flush().
  static HealthJsonSink from_argv(int argc, char** argv) {
    HealthJsonSink sink;
    for (int i = 1; i + 1 < argc; ++i)
      if (std::string(argv[i]) == "--health-json") sink.path_ = argv[i + 1];
    return sink;
  }

  bool enabled() const { return !path_.empty(); }
  const std::string& path() const { return path_; }

  /// Flush a fresh report carrying only the process-global counters: the
  /// early-exit form, valid JSON whatever already went wrong.
  void flush() const {
    if (path_.empty()) return;
    health::HealthReport report;
    health::absorb_global_counters(report);
    flush_report(report);
  }

  /// Flush a caller-built report.  Absorbs the process-global counters
  /// here — callers must NOT have done so already (absorb_global_counters
  /// ADDS the native per-class failure counts; twice double-counts).
  void flush_report(health::HealthReport report) const {
    if (path_.empty()) return;
    health::absorb_global_counters(report);
    const std::string json = report.to_json() + "\n";
    if (path_ == "-") {
      std::fputs(json.c_str(), stdout);
      std::fflush(stdout);
      return;
    }
    std::ofstream out(path_);
    if (out) out << json;
  }

 private:
  std::string path_;
};

}  // namespace awe::cli
