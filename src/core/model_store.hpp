// Shared hot-swap model store (DESIGN.md §15.4).
//
// A long-lived evaluation service wants to keep sweeping while a newer
// compiled model is published underneath it.  SharedModelStore holds ONE
// logical model as a sequence of immutable generations: publish() packs
// (or accepts) a v4 blob, places it in a fresh region — a named POSIX
// shared-memory object ("/<name>.g<gen>") or a 64-byte-aligned heap
// region — verifies the payload checksum ONCE, opens a view-backed
// CompiledModel over it, and atomically swaps it in as the new current
// generation.  acquire() pins whatever generation is current at that
// instant; the returned shared_ptr (and every copy the sweep engine
// makes) keeps that generation's region mapped until the last reader
// drops it.  The store unlinks a retired shm name immediately after the
// swap, so the region's NAME disappears while its PAGES survive for
// exactly as long as someone is still evaluating against them — readers
// never observe a torn or partially-published model.
//
// Concurrency contract: publish() and acquire() may race freely from any
// number of threads.  acquire() is a mutex-protected shared_ptr copy
// (nanoseconds); publish() holds the same mutex only for the pointer swap
// itself — packing, region creation and checksum verification all happen
// outside the lock.  Generations are monotonically increasing and a
// sweep pinned on generation N completes bit-identically while N+1 (or
// N+5) publishes — asserted by test_model_v4 and the CI mmap-determinism
// job.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "core/awesymbolic.hpp"

namespace awe::core {

class SharedModelStore {
 public:
  /// Where published generations live.
  enum class Backing : std::uint8_t {
    kHeap,  ///< 64-byte-aligned private heap regions (single process)
    kShm,   ///< shm_open regions "/<name>.g<gen>" (cross-process readers)
  };

  /// `name` scopes the shm object names; keep it unique per store.
  explicit SharedModelStore(std::string name, Backing backing = Backing::kHeap);
  /// Unlinks the live generation's shm name.  Pinned readers in this or
  /// other processes keep their mappings until they drop them.
  ~SharedModelStore();

  SharedModelStore(const SharedModelStore&) = delete;
  SharedModelStore& operator=(const SharedModelStore&) = delete;

  /// Pack `model` to v4 bytes and publish as the next generation.
  /// Returns the new generation number.  Throws (store unchanged) if the
  /// region cannot be created or the packed blob fails verification.
  std::uint64_t publish(const CompiledModel& model);

  /// Publish pre-packed v4 bytes (e.g. a cache entry read verbatim).  The
  /// payload checksum is verified against the region AFTER the copy, so a
  /// torn or damaged source fails here — never at a reader.
  std::uint64_t publish_packed(std::string_view blob);

  /// Pin and return the current generation's model, or nullptr when
  /// nothing has been published yet.  Never blocks a publish; the result
  /// keeps its generation's region alive independent of later swaps.
  /// `generation_out` (optional) receives the pinned generation number in
  /// the same atomic step — a separate generation() call could race a
  /// concurrent publish and report a generation the pin doesn't hold.
  std::shared_ptr<const CompiledModel> acquire(
      std::uint64_t* generation_out = nullptr) const;

  /// Monotonic generation counter; 0 until the first publish.
  std::uint64_t generation() const;

  const std::string& name() const { return name_; }
  Backing backing() const { return backing_; }

  /// Generations whose regions are still mapped: the current one plus any
  /// retired generations pinned by outstanding readers.  Observability
  /// for tests and leak triage, not a synchronization primitive.
  std::size_t live_generations() const;

 private:
  std::string shm_name(std::uint64_t gen) const;

  std::string name_;
  Backing backing_;
  mutable std::mutex mu_;
  /// Reservation counter for publishers: each publish_packed takes a
  /// UNIQUE generation (and therefore a unique shm name) up front, so
  /// concurrent publishers never race on one region name.  generation_
  /// below tracks which reserved generation is currently serving; a
  /// publisher that loses the swap race retires its own region instead.
  std::uint64_t next_generation_ = 0;
  std::uint64_t generation_ = 0;
  std::shared_ptr<const CompiledModel> current_;
  /// Retired generations, weakly held so live_generations() can count
  /// which ones readers still pin; pruned opportunistically on publish.
  mutable std::vector<std::weak_ptr<const CompiledModel>> retired_;
};

}  // namespace awe::core
