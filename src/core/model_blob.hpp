// Model format v4: a single relocatable, 64-byte-aligned, little-endian
// blob that the interpreter executes IN PLACE (DESIGN.md §15).
//
// v3 and earlier were stream formats: every load re-parsed the payload
// field by field into freshly allocated vectors, so process start paid
// O(model size) before the first point could be evaluated.  v4 is an
// offset-based section format — fixed header, section table, then
// 64-aligned sections whose bytes ARE the in-memory representation of the
// instruction streams, constant pool and output maps (no pointers, no
// varints, every record at its static_assert-pinned layout).  Opening a
// model is therefore mmap + bounds validation: O(pages touched), not
// O(model size); the same blob also serves unchanged from a heap buffer
// or a POSIX shared-memory region (SharedModelStore hot-swap).
//
// Only the symbolic-polynomial section keeps the legacy stream encoding:
// it is cold (needed for symbolic_denominator()-style introspection, never
// for evaluation), so CompiledModel parses it lazily on first use.
//
// Integrity contract: the header carries an FNV-1a checksum over the whole
// payload, verified when a file is *published* (cache store, --map-audit,
// SharedModelStore::publish) and on the legacy full-read load path — but
// deliberately NOT on the mmap open path, where it would fault in every
// page and destroy the O(pages touched) win.  Mapped opens instead run the
// full structural validation (section bounds + per-instruction register/
// constant/input bounds), so a damaged mapped model can fail wrong but can
// never index out of range; the cache layer quarantines on any validation
// throw exactly as it does for stream corruption.
#pragma once

#include <cstddef>
#include <cstdint>
#include <filesystem>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <string_view>

#include "partition/partitioner.hpp"
#include "symbolic/compile.hpp"

namespace awe::core {

namespace v4 {

/// Fixed 64-byte file header.  All integers little-endian; the blob after
/// it is a section table followed by 64-aligned sections.
struct Header {
  char magic[4];            ///< "AWEM"
  std::uint32_t version;    ///< 4
  std::uint64_t total_size; ///< whole blob, header included
  std::uint64_t checksum;   ///< fnv1a64 over bytes [64, total_size)
  std::uint32_t section_count;
  std::uint32_t flags;      ///< bit0: gradient sections present
  std::uint8_t endian_tag;  ///< 1 = little-endian producer
  std::uint8_t reserved[31];
};
static_assert(sizeof(Header) == 64, "v4 header is exactly one alignment unit");

enum class SectionKind : std::uint32_t {
  kMeta = 1,             ///< one Meta record
  kSymbols = 2,          ///< SymbolEntry[symbol_count]
  kStrings = 3,          ///< concatenated symbol-name bytes
  kStrictCode = 4,       ///< Instr[] — strict stream, executable in place
  kFusedCode = 5,        ///< Instr[] — fused stream
  kConstants = 6,        ///< double[]
  kOutputRegs = 7,       ///< uint32[]
  kFusedOutputRegs = 8,  ///< uint32[]
  kGradStrictCode = 9,   ///< gradient program, same five sections
  kGradFusedCode = 10,
  kGradConstants = 11,
  kGradOutputRegs = 12,
  kGradFusedOutputRegs = 13,
  kSymbolics = 14,  ///< legacy-stream polynomial payload, lazily parsed
};

struct SectionEntry {
  std::uint32_t kind;  ///< SectionKind
  std::uint32_t reserved;
  std::uint64_t offset;  ///< from blob start; 64-aligned
  std::uint64_t size;    ///< payload bytes (padding to the next section excluded)
};
static_assert(sizeof(SectionEntry) == 24);

/// Fixed-layout model metadata (the fields CompiledModel needs without
/// touching the cold symbolics section).
struct Meta {
  std::uint64_t order;
  std::uint64_t port_count;
  std::uint64_t global_dim;
  std::uint64_t symbol_count;
  std::uint64_t numerator_count;      ///< == 2*order
  std::uint64_t program_checksum;     ///< fnv1a64(program.save()) — native .so key
  std::uint64_t gradient_checksum;    ///< 0 when no gradient program
  std::uint64_t prog_input_count;
  std::uint64_t prog_register_count;
  std::uint64_t grad_input_count;     ///< 0 when no gradient program
  std::uint64_t grad_register_count;  ///< 0 when no gradient program
  std::uint8_t enforce_stability;
  std::uint8_t allow_order_fallback;
  std::uint8_t with_gradients;
  std::uint8_t reserved[5];
};
static_assert(sizeof(Meta) == 96);

struct SymbolEntry {
  std::uint64_t element_index;
  std::uint32_t name_offset;  ///< into the kStrings section
  std::uint32_t name_length;
  std::uint8_t reciprocal;
  std::uint8_t reserved[7];
};
static_assert(sizeof(SymbolEntry) == 24);

static_assert(alignof(Header) <= 64 && alignof(Meta) <= 64 &&
              alignof(SymbolEntry) <= 64);

}  // namespace v4

/// FNV-1a 64-bit over a byte range (the model checksum primitive, shared
/// with the v3 stream loader and the native-backend content addressing).
std::uint64_t fnv1a64(const void* data, std::size_t size);

/// Abstract owner of a model region: heap buffer, mmap'd cache file, or a
/// named shared-memory segment.  CompiledModel pins the blob with a
/// shared_ptr so the region outlives every program view built over it —
/// including through SharedModelStore hot-swap retirement.
class ModelBlob {
 public:
  virtual ~ModelBlob() = default;
  virtual std::span<const std::byte> bytes() const = 0;
  /// Where the region came from, for health/audit messages ("heap",
  /// file path, or shm name).
  virtual std::string origin() const = 0;
};

/// Copy `bytes` into a fresh 64-byte-aligned heap buffer.
std::shared_ptr<const ModelBlob> make_heap_blob(std::string_view bytes);
/// mmap(MAP_PRIVATE, PROT_READ) the whole file.  Pages fault lazily: no
/// checksum is computed here (see the integrity contract above).
/// Throws std::runtime_error (errno text included) on open/map failure.
std::shared_ptr<const ModelBlob> map_file_blob(const std::filesystem::path& path);
/// Create (or replace) a POSIX shared-memory object `/name` holding a copy
/// of `bytes`, and return a mapping of it.
std::shared_ptr<const ModelBlob> create_shm_blob(const std::string& name,
                                                 std::span<const std::byte> bytes);
/// Map an existing shared-memory object read-only.
std::shared_ptr<const ModelBlob> open_shm_blob(const std::string& name);
/// Remove the name; existing mappings stay valid until unmapped.
void unlink_shm_blob(const std::string& name);

/// Non-owning, validated view over a v4 blob.  Construction via open()
/// performs the full structural validation (everything except the
/// checksum); accessors afterwards are plain pointer arithmetic.
class ModelView {
 public:
  /// Validate `region` as a v4 blob and build the view.  Checks, in order:
  /// platform guard (little-endian host, 64-byte base alignment) — throws
  /// health::FailError(kModelFormat); then magic / version ("CompiledModel::
  /// load: bad magic" / "...unsupported format version" — the same texts as
  /// the stream loader so version-mismatch handling is uniform); then
  /// header/section-table/section bounds, required-section set, and record
  /// layout checks (std::runtime_error).  Does NOT verify the checksum.
  static ModelView open(std::span<const std::byte> region);

  std::span<const std::byte> bytes() const { return region_; }
  const v4::Header& header() const { return *header_; }
  const v4::Meta& meta() const { return *meta_; }
  bool has_gradient() const { return meta_->with_gradients != 0; }

  std::span<const v4::SymbolEntry> symbols() const { return symbols_; }
  std::string_view symbol_name(const v4::SymbolEntry& s) const {
    return std::string_view(strings_.data() + s.name_offset, s.name_length);
  }

  /// Executable view of the primal program, aliasing the region directly.
  symbolic::ProgramCode program_code() const { return program_; }
  /// Executable view of the gradient program; empty spans when absent.
  symbolic::ProgramCode gradient_code() const { return gradient_; }

  /// The legacy-stream polynomial payload ({u64 nnum, polynomial[nnum],
  /// polynomial det_y0}) for lazy parsing.
  std::span<const std::byte> symbolics_blob() const { return symbolics_; }

  /// Recompute fnv1a64 over [64, total_size) and compare with the header.
  /// Touches every page — publish/audit only, never the mapped-open path.
  bool verify_checksum() const;

 private:
  std::span<const std::byte> region_;
  const v4::Header* header_ = nullptr;
  const v4::Meta* meta_ = nullptr;
  std::span<const v4::SymbolEntry> symbols_;
  std::string_view strings_;
  symbolic::ProgramCode program_;
  symbolic::ProgramCode gradient_;
  std::span<const std::byte> symbolics_;
};

/// Everything pack_model_v4 needs; spans/views alias caller storage.
struct PackInput {
  std::uint64_t order = 0;
  bool enforce_stability = true;
  bool allow_order_fallback = true;
  std::span<const part::SymbolSpec> symbols;
  std::uint64_t numerator_count = 0;
  std::uint64_t port_count = 0;
  std::uint64_t global_dim = 0;
  symbolic::ProgramCode program;
  std::optional<symbolic::ProgramCode> gradient;
  std::uint64_t program_checksum = 0;
  std::uint64_t gradient_checksum = 0;
  /// Serialized polynomial payload for the kSymbolics section.
  std::string_view symbolics_blob;
};

/// Serialize to a complete v4 blob (header + table + sections, all padding
/// zeroed).  Deterministic: identical input produces byte-identical blobs,
/// which the cache-determinism contract relies on.
std::string pack_model_v4(const PackInput& in);

}  // namespace awe::core
