// Native AOT codegen backend (DESIGN.md §12).
//
// The interpreter realizes the paper's compiled-evaluation claim up to one
// remaining per-instruction dispatch on the sweep hot path.  This backend
// removes it: the CompiledProgram is emitted as C (width-N SoA batch
// kernels via CompiledProgram::to_c_source_batch), compiled by the system
// C compiler into a content-addressed shared object next to the model
// artifact, and dlopen'd with symbol/version/checksum validation.  The
// pipeline is emit -> compile -> cache -> dlopen -> validate, and every
// rung can fail without consequence: the caller keeps the interpreter and
// records the degradation (FailClass::kNativeBackend) in the health report.
//
// Strict/fast contract: the strict kernel's translation unit is compiled
// with FP contraction OFF, so its per-point operation sequence is the same
// IEEE double sequence the strict interpreter executes — bit-identical
// results.  The fast kernel's TU is compiled with contraction ON (the same
// freedom EvalMode::kFast grants the fused interpreter), so it is ULP-close
// to strict but not bit-reproducible across compilers or targets.
//
// Determinism note: a .so is only ever emitted when a caller explicitly
// selects EvalBackend::kNative — cache directories stay byte-identical
// across machines for interpreter-only runs.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>

#include "health/status.hpp"
#include "symbolic/compile.hpp"

namespace awe::core::native {

/// ABI contract version baked into every emitted module as
/// awe_abi_version(); bump when the exported symbol set or the kernel
/// signature changes so stale .so files are rejected, not misused.
inline constexpr std::uint64_t kAbiVersion = 1;

/// FNV-1a over the program's deterministic serialization — the identity a
/// module is content-addressed and validated by.  Two programs with the
/// same checksum produce byte-identical kernels.
std::uint64_t program_checksum(const symbolic::CompiledProgram& program);

/// "<dir>/native_<16-hex-checksum>.so" — where the module for `checksum`
/// lives (next to the .awemodel artifacts when dir is a model cache).
std::string module_path(const std::string& dir, std::uint64_t checksum);

/// Resolve the C compiler the backend will invoke.  AWE_CC overrides
/// everything (pointing it at a non-executable path deliberately disables
/// the backend — how CI exercises the no-compiler fallback); then CC; then
/// the first of cc/gcc/clang found on PATH.  Empty when none is available.
/// Re-resolved on every call so tests can flip the environment.
std::string find_compiler();

class NativeModule;

namespace detail {
/// dlopen `path` and validate symbols, ABI version, checksum and arity
/// against the expectations.  Returns nullptr (with `err` explaining why)
/// on any failure, leaving no handle open.
std::shared_ptr<NativeModule> open_and_validate(const std::string& path,
                                                std::uint64_t expect_checksum,
                                                std::size_t expect_inputs,
                                                std::size_t expect_outputs,
                                                std::string* err);
}  // namespace detail

/// A validated, loaded native module.  Immutable and thread-safe: the
/// kernels are pure functions over their argument arrays.  Closes the
/// dlopen handle on destruction.
class NativeModule {
 public:
  ~NativeModule();
  NativeModule(const NativeModule&) = delete;
  NativeModule& operator=(const NativeModule&) = delete;

  std::size_t input_count() const { return input_count_; }
  std::size_t output_count() const { return output_count_; }
  std::uint64_t checksum() const { return checksum_; }
  const std::string& path() const { return path_; }

  /// SoA batch evaluation of `count` points — the exact memory contract of
  /// CompiledProgram::run_batch (lane stride = count), minus the scratch
  /// array: registers live in machine registers inside the kernel.
  /// kStrict is bit-identical to the strict interpreter; kFast is within
  /// the fused interpreter's ULP bound of strict.
  void run_batch(std::span<const double> inputs, std::span<double> outputs,
                 std::size_t count, symbolic::EvalMode mode) const;

 private:
  friend std::shared_ptr<NativeModule> detail::open_and_validate(
      const std::string&, std::uint64_t, std::size_t, std::size_t, std::string*);
  NativeModule() = default;

  using BatchFn = void (*)(const double*, double*, unsigned long);
  void* handle_ = nullptr;
  BatchFn strict_fn_ = nullptr;
  BatchFn fast_fn_ = nullptr;
  std::size_t input_count_ = 0;
  std::size_t output_count_ = 0;
  std::uint64_t checksum_ = 0;
  std::string path_;
};

/// The backend's single entry point: return a validated module for
/// `program`, loading the content-addressed .so under `dir` when one
/// exists and compiling it otherwise.  `dir` empty selects a shared
/// scratch directory under the system temp dir (sweeps without a model
/// cache still get native speed).  An existing .so that fails dlopen or
/// validation is quarantined to "<path>.bad" and recompiled once.
///
/// Never throws: on any failure (no compiler, compile error, dlopen error,
/// ABI/checksum mismatch, armed native.* failpoint) returns nullptr and
/// explains why in `why` (FailClass::kNativeBackend, or kInjectedFault for
/// failpoints).  Success/fallback counters land in
/// health::global_counters() here — exactly once per attach attempt.
/// `known_checksum`: the program's checksum when the caller already has it
/// (model format v4 carries it in the mapped header) — skips the
/// re-serialization that program_checksum() would otherwise pay, keeping
/// the mapped-model attach path O(1) in model size.
std::shared_ptr<const NativeModule> load_or_compile(
    const symbolic::CompiledProgram& program, const std::string& dir,
    health::Status* why = nullptr,
    std::optional<std::uint64_t> known_checksum = std::nullopt);

}  // namespace awe::core::native
